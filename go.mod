module matproj

go 1.22
