// mplint runs the repo-native static-analysis suite over the module:
// six analyzers enforcing the datastore's concurrency, determinism,
// and durability invariants (see internal/analysis/lint).
//
// Exit-code contract (scripts/check.sh relies on it):
//
//	0 — every selected analyzer came back clean
//	1 — at least one finding (printed one per line, or -json)
//	2 — usage error, load failure, or a package that does not type-check
//
// Usage:
//
//	mplint [-json] [-only a,b] [-skip a,b] [-list] [-C dir] [patterns]
//
// Patterns are module-relative ("./...", "internal/cluster",
// "./internal/..."); the default is the whole module.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"matproj/internal/analysis/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit findings as a JSON array")
		only    = fs.String("only", "", "comma-separated analyzers to run (default: all)")
		skip    = fs.String("skip", "", "comma-separated analyzers to skip")
		list    = fs.Bool("list", false, "list analyzers and exit")
		chdir   = fs.String("C", "", "module root (default: nearest go.mod above the working directory)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected, err := lint.Select(analyzers, splitList(*only), splitList(*skip))
	if err != nil {
		fmt.Fprintln(stderr, "mplint:", err)
		return 2
	}

	root := *chdir
	if root == "" {
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "mplint:", err)
			return 2
		}
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "mplint:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(stderr, "mplint:", err)
		return 2
	}
	cfg := lint.DefaultConfig(loader.ModulePath)
	pkgs = filterPackages(pkgs, cfg, fs.Args())

	broken := false
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(stderr, "mplint: %s: type error: %v\n", p.Path, terr)
			broken = true
		}
	}
	if broken {
		return 2
	}

	diags := lint.RunAll(pkgs, cfg, selected)
	if *jsonOut {
		type jsonDiag struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			rel := d.Pos.Filename
			if r, err := filepath.Rel(root, rel); err == nil {
				rel = r
			}
			out = append(out, jsonDiag{d.Analyzer, rel, d.Pos.Line, d.Pos.Column, d.Message})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "mplint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, relDiag(root, d))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "mplint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func relDiag(root string, d lint.Diagnostic) string {
	file := d.Pos.Filename
	if r, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(r, "..") {
		file = r
	}
	return fmt.Sprintf("%s:%d:%d: %s (%s)", file, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s (use -C)", dir)
		}
		dir = parent
	}
}

// filterPackages applies module-relative patterns: "./..." (or no
// patterns) keeps everything, "x/..." keeps the subtree, anything else
// must match exactly.
func filterPackages(pkgs []*lint.Package, cfg *lint.Config, patterns []string) []*lint.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	keep := func(rel string) bool {
		for _, pat := range patterns {
			pat = strings.TrimPrefix(pat, "./")
			if pat == "..." || pat == "" {
				return true
			}
			if sub, ok := strings.CutSuffix(pat, "/..."); ok {
				if rel == sub || strings.HasPrefix(rel, sub+"/") {
					return true
				}
				continue
			}
			if rel == pat {
				return true
			}
		}
		return false
	}
	var out []*lint.Package
	for _, p := range pkgs {
		if keep(cfg.Rel(p.Path)) {
			out = append(out, p)
		}
	}
	return out
}
