// mplint runs the repo-native static-analysis suite over the module:
// ten analyzers enforcing the datastore's concurrency, determinism,
// and durability invariants (see internal/analysis/lint).
//
// Exit-code contract (scripts/check.sh relies on it):
//
//	0 — every selected analyzer came back clean
//	1 — at least one finding (printed one per line, or -json)
//	2 — usage error, load failure, or a package that does not type-check
//
// Usage:
//
//	mplint [-json] [-only a,b] [-skip a,b] [-baseline file.json]
//	       [-graph] [-summaries] [-ignored] [-list] [-C dir] [patterns]
//
// Patterns are module-relative ("./...", "internal/cluster",
// "./internal/..."); the default is the whole module. The
// interprocedural fact base (call graph, lock graph, termination and
// held-lock summaries) is always built over the whole module, so
// findings in a filtered run still see cross-package facts; patterns
// only restrict which packages are reported on.
//
// -graph and -summaries dump the interprocedural layer itself (the
// lock-acquisition graph and the per-function summaries) for debugging
// analyzer findings. -ignored lists every //lint:ignore directive with
// its reason. -baseline suppresses findings recorded in a previous
// -json run (matched by analyzer, file, and message — line numbers may
// drift), so a tree with accepted findings can still gate on new ones.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"matproj/internal/analysis/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the -json output record and the -baseline input record.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut   = fs.Bool("json", false, "emit findings as a JSON array")
		only      = fs.String("only", "", "comma-separated analyzers to run (default: all)")
		skip      = fs.String("skip", "", "comma-separated analyzers to skip")
		list      = fs.Bool("list", false, "list analyzers and exit")
		graph     = fs.Bool("graph", false, "dump the global lock-acquisition graph and exit")
		summaries = fs.Bool("summaries", false, "dump per-function interprocedural summaries and exit")
		ignored   = fs.Bool("ignored", false, "list //lint:ignore suppressions with reasons and exit (respects -only)")
		baseline  = fs.String("baseline", "", "JSON findings file (from a prior -json run) to suppress")
		chdir     = fs.String("C", "", "module root (default: nearest go.mod above the working directory)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected, err := lint.Select(analyzers, splitList(*only), splitList(*skip))
	if err != nil {
		fmt.Fprintln(stderr, "mplint:", err)
		return 2
	}

	root := *chdir
	if root == "" {
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "mplint:", err)
			return 2
		}
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "mplint:", err)
		return 2
	}
	all, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(stderr, "mplint:", err)
		return 2
	}
	cfg := lint.DefaultConfig(loader.ModulePath)
	pkgs := filterPackages(all, cfg, fs.Args())

	broken := false
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(stderr, "mplint: %s: type error: %v\n", p.Path, terr)
			broken = true
		}
	}
	if broken {
		return 2
	}

	// The fact base spans the whole module regardless of the report
	// filter: a goroutine in a filtered-out package may close a channel
	// a reported package drains, and vice versa.
	prog := lint.NewProgram(all, cfg)

	if *graph {
		for _, e := range prog.LockEdges() {
			fmt.Fprintf(stdout, "%s -> %s  at %s (%s)\n", e.From, e.To, relPos(root, e.Witness), e.Func)
		}
		return 0
	}
	if *summaries {
		for _, s := range prog.Summaries() {
			line := s.Func
			if len(s.Acquires) > 0 {
				line += "  acquires=" + strings.Join(s.Acquires, ",")
			}
			if s.Forever {
				line += "  forever"
			}
			fmt.Fprintln(stdout, line)
		}
		return 0
	}
	if *ignored {
		onlySet := map[string]bool{}
		for _, n := range splitList(*only) {
			onlySet[n] = true
		}
		n := 0
		for _, p := range pkgs {
			for _, ig := range lint.Ignores(p) {
				if len(onlySet) > 0 && !ignoreMatches(ig, onlySet) {
					continue
				}
				scope := strings.Join(ig.Analyzers, ",")
				if ig.WholeFile {
					scope += " (whole file)"
				}
				reason := ig.Reason
				if reason == "" {
					reason = "<no reason given>"
				}
				fmt.Fprintf(stdout, "%s: %s: %s\n", relPos(root, ig.Pos), scope, reason)
				n++
			}
		}
		fmt.Fprintf(stderr, "mplint: %d suppression(s)\n", n)
		return 0
	}

	diags := lint.RunProgram(prog, pkgs, selected)
	if *baseline != "" {
		diags, err = applyBaseline(root, *baseline, diags)
		if err != nil {
			fmt.Fprintln(stderr, "mplint:", err)
			return 2
		}
	}
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{d.Analyzer, relFile(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "mplint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, relDiag(root, d))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "mplint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// ignoreMatches reports whether a suppression covers any analyzer in
// the -only set. A whole-file or analyzer-less directive covers all.
func ignoreMatches(ig lint.Ignore, onlySet map[string]bool) bool {
	if len(ig.Analyzers) == 0 {
		return true
	}
	for _, a := range ig.Analyzers {
		if onlySet[a] {
			return true
		}
	}
	return false
}

// applyBaseline drops findings recorded in a prior -json run. Matching
// is by analyzer, module-relative file, and message — not line — so an
// accepted finding stays accepted when unrelated edits shift it.
func applyBaseline(root, path string, diags []lint.Diagnostic) ([]lint.Diagnostic, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var old []jsonDiag
	if err := json.Unmarshal(raw, &old); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	accepted := make(map[string]bool, len(old))
	for _, d := range old {
		accepted[d.Analyzer+"\x00"+filepath.ToSlash(d.File)+"\x00"+d.Message] = true
	}
	var out []lint.Diagnostic
	for _, d := range diags {
		key := d.Analyzer + "\x00" + filepath.ToSlash(relFile(root, d.Pos.Filename)) + "\x00" + d.Message
		if accepted[key] {
			continue
		}
		out = append(out, d)
	}
	return out, nil
}

func relFile(root, file string) string {
	if r, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return file
}

func relPos(root string, p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", relFile(root, p.Filename), p.Line, p.Column)
}

func relDiag(root string, d lint.Diagnostic) string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", relFile(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s (use -C)", dir)
		}
		dir = parent
	}
}

// filterPackages applies module-relative patterns: "./..." (or no
// patterns) keeps everything, "x/..." keeps the subtree, anything else
// must match exactly.
func filterPackages(pkgs []*lint.Package, cfg *lint.Config, patterns []string) []*lint.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	keep := func(rel string) bool {
		for _, pat := range patterns {
			pat = strings.TrimPrefix(pat, "./")
			if pat == "..." || pat == "" {
				return true
			}
			if sub, ok := strings.CutSuffix(pat, "/..."); ok {
				if rel == sub || strings.HasPrefix(rel, sub+"/") {
					return true
				}
				continue
			}
			if rel == pat {
				return true
			}
		}
		return false
	}
	var out []*lint.Package
	for _, p := range pkgs {
		if keep(cfg.Rel(p.Path)) {
			out = append(out, p)
		}
	}
	return out
}
