// Command mpquery runs ad-hoc Mongo-style queries against a durable
// store from the command line:
//
//	mpquery -data ./mpdata -c materials -q '{"elements": {"$all": ["Li", "O"]}}' -limit 5
//	mpquery -data ./mpdata -c tasks -q '{"state": "successful"}' -count
//	mpquery -data ./mpdata -collections
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

func main() {
	dataDir := flag.String("data", "", "durable store directory")
	coll := flag.String("c", "materials", "collection to query")
	queryJSON := flag.String("q", "{}", "filter as JSON (Mongo query operators supported)")
	projJSON := flag.String("p", "", "projection as JSON, e.g. {\"pretty_formula\": 1}")
	sortSpec := flag.String("sort", "", "comma-separated sort fields, prefix - for descending")
	limit := flag.Int("limit", 10, "max documents to print (0 = all)")
	count := flag.Bool("count", false, "print the match count only")
	distinct := flag.String("distinct", "", "print distinct values of this field")
	listColls := flag.Bool("collections", false, "list collections and exit")
	flag.Parse()

	if *dataDir == "" {
		log.Fatal("mpquery: -data is required (a durable store directory)")
	}
	store, err := datastore.Open(*dataDir)
	if err != nil {
		log.Fatalf("mpquery: %v", err)
	}
	defer store.Close()

	if *listColls {
		for _, name := range store.Collections() {
			st := store.C(name).Stats()
			fmt.Printf("%-20s %8d docs %10d bytes indexes=%v\n", name, st.Documents, st.Bytes, st.Indexes)
		}
		return
	}

	filter, err := document.FromJSON([]byte(*queryJSON))
	if err != nil {
		log.Fatalf("mpquery: filter: %v", err)
	}
	c := store.C(*coll)

	switch {
	case *count:
		n, err := c.Count(filter)
		if err != nil {
			log.Fatalf("mpquery: %v", err)
		}
		fmt.Println(n)
	case *distinct != "":
		vals, err := c.Distinct(*distinct, filter)
		if err != nil {
			log.Fatalf("mpquery: %v", err)
		}
		for _, v := range vals {
			fmt.Println(v)
		}
	default:
		opts := &datastore.FindOpts{Limit: *limit}
		if *projJSON != "" {
			proj, err := document.FromJSON([]byte(*projJSON))
			if err != nil {
				log.Fatalf("mpquery: projection: %v", err)
			}
			opts.Projection = proj
		}
		if *sortSpec != "" {
			opts.Sort = strings.Split(*sortSpec, ",")
		}
		docs, err := c.FindAll(filter, opts)
		if err != nil {
			log.Fatalf("mpquery: %v", err)
		}
		for _, d := range docs {
			fmt.Println(d.String())
		}
		fmt.Printf("# %d documents\n", len(docs))
	}
}
