// Command mpworker runs the computation tier standalone: it loads
// synthetic ICSD records into a store, creates VASP fireworks for them,
// and executes everything on the simulated HPC cluster with task-farming
// batch jobs, reporting workflow and cluster statistics.
//
//	mpworker -materials 120 -nodes 32 -walltime 12h -data ./mpdata
package main

import (
	"flag"
	"log"
	"time"

	"matproj/internal/datastore"
	"matproj/internal/dft"
	"matproj/internal/document"
	"matproj/internal/fireworks"
	"matproj/internal/hpc"
	"matproj/internal/icsd"
)

func main() {
	nMaterials := flag.Int("materials", 60, "synthetic ICSD records")
	nodes := flag.Int("nodes", 16, "cluster nodes")
	queueLimit := flag.Int("queue-limit", 8, "per-user batch queue limit (0 = unlimited)")
	workers := flag.Int("workers", 8, "task-farm jobs per round")
	walltime := flag.Duration("walltime", 24*time.Hour, "batch job walltime (virtual)")
	dupRate := flag.Float64("dup-rate", 0.15, "ICSD redetermination rate")
	seed := flag.Int64("seed", 2012, "dataset seed")
	dataDir := flag.String("data", "", "durable store directory (empty = in-memory)")
	selector := flag.String("selector", "", `optional claim selector as JSON, e.g. {"stage.nelectrons": {"$lte": 200}}`)
	flag.Parse()

	store, err := datastore.Open(*dataDir)
	if err != nil {
		log.Fatalf("mpworker: %v", err)
	}
	defer store.Close()

	pad := fireworks.NewLaunchPad(store, 5)
	fireworks.RegisterVASP(pad)
	mps := store.C("mps")
	var fws []fireworks.Firework
	for _, r := range icsd.Generate(icsd.Config{Seed: *seed, DuplicateRate: *dupRate}, *nMaterials) {
		mdoc := r.ToDoc()
		if _, err := mps.Insert(mdoc); err != nil {
			log.Fatalf("mpworker: insert mps: %v", err)
		}
		fws = append(fws, fireworks.NewVASPFirework(mdoc, "relax", dft.DefaultParams(), *walltime/4))
	}
	if _, err := pad.AddWorkflow(fws); err != nil {
		log.Fatalf("mpworker: add workflow: %v", err)
	}
	log.Printf("registered %d fireworks", len(fws))

	var sel document.D
	if *selector != "" {
		sel, err = document.FromJSON([]byte(*selector))
		if err != nil {
			log.Fatalf("mpworker: selector: %v", err)
		}
	}

	cluster := hpc.NewCluster(*nodes, *queueLimit,
		hpc.Policy{WorkerOutbound: false, ProxyHost: "mongoproxy01"})
	start := time.Now()
	jobs, err := fireworks.DriveCluster(pad, fireworks.NewVASPAssembler(store), cluster,
		"mp_prod", *workers, *walltime, sel)
	if err != nil {
		log.Fatalf("mpworker: drive: %v", err)
	}
	st := cluster.Stats()
	log.Printf("done in %v real time", time.Since(start).Round(time.Millisecond))
	log.Printf("batch jobs: %d  virtual makespan: %v", jobs, st.Makespan.Round(time.Minute))
	log.Printf("tasks done: %d  killed at walltime: %d", st.TasksDone, st.TasksKilled)
	nTasks, _ := store.C("tasks").Count(nil)
	nOK, _ := store.C("tasks").Count(document.D{"state": "successful"})
	log.Printf("tasks collection: %d documents (%d successful)", nTasks, nOK)
	for _, state := range []fireworks.State{fireworks.StateCompleted, fireworks.StateDefused} {
		n, _ := store.C(fireworks.EnginesCollection).Count(document.D{"state": string(state)})
		log.Printf("fireworks %s: %d", state, n)
	}
}
