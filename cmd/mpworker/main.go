// Command mpworker runs the computation tier standalone: it loads
// synthetic ICSD records into a store, creates VASP fireworks for them,
// and executes everything on the simulated HPC cluster with task-farming
// batch jobs, reporting workflow and cluster statistics.
//
//	mpworker -materials 120 -nodes 32 -walltime 12h -data ./mpdata
//
// The -chaos-* flags drive the deterministic fault-injection harness:
// workers crash silently mid-run (recovered by the lease sweep inside
// the drive loop) and, with -chaos-tear-journal, the durable store's
// journal tail is torn after the run and the store reopened to prove
// recovery.
//
//	mpworker -data ./mpdata -chaos-crash-rate 0.2 -chaos-tear-journal -chaos-seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"matproj/internal/datastore"
	"matproj/internal/dft"
	"matproj/internal/document"
	"matproj/internal/faults"
	"matproj/internal/fireworks"
	"matproj/internal/hpc"
	"matproj/internal/icsd"
	"matproj/internal/obs"
)

func main() {
	nMaterials := flag.Int("materials", 60, "synthetic ICSD records")
	nodes := flag.Int("nodes", 16, "cluster nodes")
	queueLimit := flag.Int("queue-limit", 8, "per-user batch queue limit (0 = unlimited)")
	workers := flag.Int("workers", 8, "task-farm jobs per round")
	walltime := flag.Duration("walltime", 24*time.Hour, "batch job walltime (virtual)")
	dupRate := flag.Float64("dup-rate", 0.15, "ICSD redetermination rate")
	seed := flag.Int64("seed", 2012, "dataset seed")
	dataDir := flag.String("data", "", "durable store directory (empty = in-memory)")
	selector := flag.String("selector", "", `optional claim selector as JSON, e.g. {"stage.nelectrons": {"$lte": 200}}`)
	chaosCrashRate := flag.Float64("chaos-crash-rate", 0, "probability a worker crashes silently mid-run")
	chaosTear := flag.Bool("chaos-tear-journal", false, "tear the journal tail after the run and reopen (needs -data)")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-injection seed")
	metrics := flag.Bool("metrics", true, "record live metrics and print a registry snapshot at exit")
	slowQueryMs := flag.Float64("slow-query-ms", 250, "slow-op log threshold in milliseconds (0 disables the log)")
	flag.Parse()

	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metrics {
		reg = obs.NewRegistry()
		if *slowQueryMs > 0 {
			tracer = obs.NewTracer(time.Duration(*slowQueryMs*float64(time.Millisecond)), 0)
		}
	}

	store, err := datastore.Open(*dataDir)
	if err != nil {
		log.Fatalf("mpworker: %v", err)
	}
	defer store.Close()
	store.Observe(reg, tracer)

	pad := fireworks.NewLaunchPad(store, 5)
	pad.Observe(reg)
	fireworks.RegisterVASP(pad)
	mps := store.C("mps")
	var fws []fireworks.Firework
	for _, r := range icsd.Generate(icsd.Config{Seed: *seed, DuplicateRate: *dupRate}, *nMaterials) {
		mdoc := r.ToDoc()
		if _, err := mps.Insert(mdoc); err != nil {
			log.Fatalf("mpworker: insert mps: %v", err)
		}
		fws = append(fws, fireworks.NewVASPFirework(mdoc, "relax", dft.DefaultParams(), *walltime/4))
	}
	if _, err := pad.AddWorkflow(fws); err != nil {
		log.Fatalf("mpworker: add workflow: %v", err)
	}
	log.Printf("registered %d fireworks", len(fws))

	var sel document.D
	if *selector != "" {
		sel, err = document.FromJSON([]byte(*selector))
		if err != nil {
			log.Fatalf("mpworker: selector: %v", err)
		}
	}

	cluster := hpc.NewCluster(*nodes, *queueLimit,
		hpc.Policy{WorkerOutbound: false, ProxyHost: "mongoproxy01"})
	var injector *faults.Injector
	if *chaosCrashRate > 0 || *chaosTear {
		injector = faults.New(faults.Config{Seed: *chaosSeed, WorkerCrashRate: *chaosCrashRate})
		cluster.InjectFaults(injector)
		log.Printf("chaos: seed %d, worker crash rate %.2f", *chaosSeed, *chaosCrashRate)
	}
	start := time.Now()
	jobs, err := fireworks.DriveCluster(pad, fireworks.NewVASPAssembler(store), cluster,
		"mp_prod", *workers, *walltime, sel)
	if err != nil {
		log.Fatalf("mpworker: drive: %v", err)
	}
	st := cluster.Stats()
	log.Printf("done in %v real time", time.Since(start).Round(time.Millisecond))
	log.Printf("batch jobs: %d  virtual makespan: %v", jobs, st.Makespan.Round(time.Minute))
	log.Printf("tasks done: %d  killed at walltime: %d  worker crashes: %d",
		st.TasksDone, st.TasksKilled, st.WorkerCrashes)
	nTasks, _ := store.C("tasks").Count(nil)
	nOK, _ := store.C("tasks").Count(document.D{"state": "successful"})
	log.Printf("tasks collection: %d documents (%d successful)", nTasks, nOK)
	for _, state := range []fireworks.State{fireworks.StateCompleted, fireworks.StateDefused, fireworks.StateRunning} {
		n, _ := store.C(fireworks.EnginesCollection).Count(document.D{"state": string(state)})
		log.Printf("fireworks %s: %d", state, n)
	}

	if reg != nil {
		fmt.Println("--- metrics snapshot ---")
		reg.Snapshot().WriteText(os.Stdout)
		if tracer != nil {
			total, slow := tracer.Counts()
			fmt.Printf("ops traced: %d  slow: %d (threshold %.1f ms)\n", total, slow, *slowQueryMs)
			for _, op := range tracer.SlowOps() {
				fmt.Printf("  %s %10.3f ms  %s  %s\n",
					op.At.Format("15:04:05.000"), op.DurationMs, op.Op, op.Detail)
			}
		}
	}

	if *chaosTear {
		if *dataDir == "" {
			log.Fatal("mpworker: -chaos-tear-journal needs -data")
		}
		if err := store.Close(); err != nil {
			log.Fatalf("mpworker: close before tear: %v", err)
		}
		cut, err := injector.TearTail(datastore.JournalFile(*dataDir), 64)
		if err != nil {
			log.Fatalf("mpworker: tear: %v", err)
		}
		log.Printf("chaos: tore %d bytes off the journal tail", cut)
		reopened, err := datastore.Open(*dataDir)
		if err != nil {
			log.Fatalf("mpworker: reopen after tear: %v", err)
		}
		defer reopened.Close()
		rec := reopened.Recovery()
		log.Printf("recovery: snapshot=%d journal=%d dropped=%d truncated=%dB repaired=%v",
			rec.SnapshotRecords, rec.JournalRecords, rec.DroppedRecords, rec.TruncatedBytes, rec.Repaired)
	}
}
