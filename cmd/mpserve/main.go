// Command mpserve builds (or reopens) a Materials Project deployment and
// serves the Materials API over HTTP:
//
//	mpserve -addr :8651 -materials 100
//	mpserve -addr :8651 -data ./mpdata        # durable store
//
// Sign up for an API key, then query:
//
//	curl -X POST 'http://localhost:8651/auth/signup?provider=google&email=you@example.com'
//	curl -H "X-API-KEY: $KEY" http://localhost:8651/rest/v1/materials/Fe2O3/vasp/energy
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"matproj/internal/pipeline"
	"matproj/internal/restapi"
	"matproj/internal/webui"
)

func main() {
	addr := flag.String("addr", ":8651", "listen address")
	nMaterials := flag.Int("materials", 80, "synthetic ICSD records to compute on first build")
	dataDir := flag.String("data", "", "directory for a durable store (empty = in-memory)")
	seed := flag.Int64("seed", 2012, "dataset seed")
	flag.Parse()

	cfg := pipeline.DefaultConfig()
	cfg.NMaterials = *nMaterials
	cfg.PersistDir = *dataDir
	cfg.Seed = *seed
	log.Printf("building deployment (%d materials)...", cfg.NMaterials)
	d, err := pipeline.Build(cfg)
	if err != nil {
		log.Fatalf("mpserve: build: %v", err)
	}
	st := d.Store.Stats()
	log.Printf("store ready: %d collections, %d documents, ~%d KB", st.Collections, st.Documents, st.Bytes/1024)
	log.Printf("materials=%d tasks=%d bandstructures=%d xrd=%d batteries=%d",
		d.Materials, d.Tasks, d.Bands, d.XRDPatterns, d.Batteries)

	auth := restapi.NewAuth(d.Store)
	api := restapi.NewServer(d.Engine, auth, d.Store)
	portal := webui.NewServer(d.Engine, d.Store)
	mux := http.NewServeMux()
	mux.Handle("/rest/", api)
	mux.Handle("/auth/", api)
	mux.Handle("/", portal)
	log.Printf("Materials API + web portal listening on %s", *addr)
	fmt.Printf("portal:  http://localhost%s/\n", *addr)
	fmt.Printf("example: curl -X POST 'http://localhost%s/auth/signup?provider=google&email=you@example.com'\n", *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatalf("mpserve: %v", err)
	}
}
