// Command mpserve builds (or reopens) a Materials Project deployment and
// serves the Materials API over HTTP:
//
//	mpserve -addr :8651 -materials 100
//	mpserve -addr :8651 -data ./mpdata        # durable store
//
// Sign up for an API key, then query:
//
//	curl -X POST 'http://localhost:8651/auth/signup?provider=google&email=you@example.com'
//	curl -H "X-API-KEY: $KEY" http://localhost:8651/rest/v1/materials/Fe2O3/vasp/energy
//
// Beyond the default standalone role, mpserve can run as one tier of a
// networked shard cluster (the paper's §IV-D2 scaling path):
//
//	mpserve -role node -addr :9001            # a shard node (internal API)
//	mpserve -role node -addr :9002
//	mpserve -role node -addr :9003
//	mpserve -role node -addr :9004
//	mpserve -role router -addr :8651 -shards 2 \
//	    -peers http://localhost:9001,http://localhost:9002,http://localhost:9003,http://localhost:9004
//
// The router assigns peers to shard groups round-robin (with -shards 2
// the four peers above become group 0 = {9001, 9003} and group 1 =
// {9002, 9004}; the first member of each group starts as primary), builds
// the corpus locally, loads it through the router so every document lands
// on its shard with replicas, and serves the public Materials API on top.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"matproj/internal/cluster"
	"matproj/internal/datastore"
	"matproj/internal/obs"
	"matproj/internal/pipeline"
	"matproj/internal/queryengine"
	"matproj/internal/rcache"
	"matproj/internal/restapi"
	"matproj/internal/webui"
)

func main() {
	addr := flag.String("addr", ":8651", "listen address")
	role := flag.String("role", "standalone", "process role: standalone, node, or router")
	nMaterials := flag.Int("materials", 80, "synthetic ICSD records to compute on first build (standalone, router)")
	dataDir := flag.String("data", "", "directory for a durable store (empty = in-memory)")
	seed := flag.Int64("seed", 2012, "dataset seed")
	metrics := flag.Bool("metrics", true, "record live metrics and serve GET /metrics and GET /status")
	slowQueryMs := flag.Float64("slow-query-ms", 250, "slow-query log threshold in milliseconds (0 disables the log)")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	nodeID := flag.String("id", "", "node identifier (node role; defaults to the listen address)")
	peers := flag.String("peers", "", "comma-separated shard node base URLs (router role)")
	shards := flag.Int("shards", 1, "shard group count; peers are assigned round-robin (router role)")
	healthEvery := flag.Duration("health-interval", 2*time.Second, "router health-check period (0 disables the loop)")
	cacheSize := flag.Int("cache-size", 4096, "result cache capacity in entries (standalone, router)")
	cacheOff := flag.Bool("cache-off", false, "disable the read-path result cache")
	orderedIndexes := flag.String("ordered-index", "",
		"ordered compound indexes to create after load, as coll:path1,path2 specs separated by ';' (standalone, router)")
	maxBodyBytes := flag.Int64("max-body-bytes", restapi.DefaultMaxBodyBytes,
		"request body size cap in bytes; oversized bodies get 413 (negative disables the cap)")
	flag.Parse()

	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metrics {
		reg = obs.NewRegistry()
		if *slowQueryMs > 0 {
			tracer = obs.NewTracer(time.Duration(*slowQueryMs*float64(time.Millisecond)), 0)
		}
	}

	// The result cache serves repeated hot reads without recomputing the
	// query (nodes don't get one: the router caches on their behalf).
	var rc *rcache.Cache
	if !*cacheOff {
		rc = rcache.New(*cacheSize, reg)
	}

	oindexes, err := parseOrderedIndexSpecs(*orderedIndexes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpserve: %v\n", err)
		os.Exit(2)
	}

	switch *role {
	case "standalone":
		runStandalone(*addr, *nMaterials, *dataDir, *seed, oindexes, rc, reg, tracer, *metrics, *pprofFlag, *slowQueryMs, *maxBodyBytes)
	case "node":
		runNode(*addr, *nodeID, *dataDir, reg)
	case "router":
		runRouter(*addr, *peers, *shards, *nMaterials, *seed, *healthEvery, oindexes, rc, reg, tracer, *metrics, *pprofFlag, *slowQueryMs, *maxBodyBytes)
	default:
		fmt.Fprintf(os.Stderr, "mpserve: unknown role %q (want standalone, node, or router)\n", *role)
		os.Exit(2)
	}
}

// orderedIndexSpec names one ordered compound index to create after the
// corpus loads.
type orderedIndexSpec struct {
	collection string
	paths      []string
}

// parseOrderedIndexSpecs parses the -ordered-index flag value:
// "coll:path1,path2;coll2:path3".
func parseOrderedIndexSpecs(raw string) ([]orderedIndexSpec, error) {
	var specs []orderedIndexSpec
	for _, part := range strings.Split(raw, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		coll, pathList, ok := strings.Cut(part, ":")
		if !ok || coll == "" {
			return nil, fmt.Errorf("-ordered-index spec %q: want coll:path1,path2", part)
		}
		var paths []string
		for _, p := range strings.Split(pathList, ",") {
			if p = strings.TrimSpace(p); p != "" {
				paths = append(paths, p)
			}
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("-ordered-index spec %q: no paths", part)
		}
		specs = append(specs, orderedIndexSpec{collection: coll, paths: paths})
	}
	return specs, nil
}

// runNode serves a bare shard node: a datastore exposed over the internal
// cluster wire protocol, with no pipeline build and no public API — dumb
// storage the router fans out to.
func runNode(addr, id, dataDir string, reg *obs.Registry) {
	if id == "" {
		id = "node" + addr
	}
	store, err := datastore.Open(dataDir)
	if err != nil {
		log.Fatalf("mpserve: node store: %v", err)
	}
	if reg != nil {
		store.Observe(reg, nil)
	}
	node := cluster.NewNode(id, store, reg)
	log.Printf("shard node %q serving the internal cluster API on %s", id, addr)
	if err := http.ListenAndServe(addr, node); err != nil {
		log.Fatalf("mpserve: %v", err)
	}
}

// runRouter builds the corpus locally, loads it through the query router
// onto the shard nodes, and serves the public Materials API backed by
// scatter-gathered reads. Auth keys and status live in a router-local
// store (the paper isolates "the various roles of the database to
// separate servers").
func runRouter(addr, peers string, shards, nMaterials int, seed int64, healthEvery time.Duration,
	oindexes []orderedIndexSpec, rc *rcache.Cache, reg *obs.Registry, tracer *obs.Tracer,
	metrics, pprofFlag bool, slowQueryMs float64, maxBodyBytes int64) {
	var urls []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			urls = append(urls, strings.TrimSuffix(p, "/"))
		}
	}
	if len(urls) == 0 {
		log.Fatal("mpserve: router role needs -peers")
	}
	if shards < 1 || shards > len(urls) {
		log.Fatalf("mpserve: -shards %d invalid for %d peers", shards, len(urls))
	}
	groups := make([][]string, shards)
	for i, u := range urls {
		groups[i%shards] = append(groups[i%shards], u)
	}
	router, err := cluster.NewRouter(cluster.RouterOptions{
		Groups:         groups,
		Registry:       reg,
		HealthInterval: healthEvery,
		Cache:          rc,
		Tracer:         tracer,
	})
	if err != nil {
		log.Fatalf("mpserve: router: %v", err)
	}
	for gi, g := range groups {
		log.Printf("shard group %d: primary %s, %d replica(s)", gi, g[0], len(g)-1)
	}

	// Build the corpus in-process (the workflow tier is local), then fan
	// the collections out to the shard nodes through the router.
	cfg := pipeline.DefaultConfig()
	cfg.NMaterials = nMaterials
	cfg.Seed = seed
	log.Printf("building deployment (%d materials)...", cfg.NMaterials)
	d, err := pipeline.Build(cfg)
	if err != nil {
		log.Fatalf("mpserve: build: %v", err)
	}
	copied, err := pipeline.CopyCollections(router, d.Store)
	if err != nil {
		log.Fatalf("mpserve: load cluster: %v", err)
	}
	log.Printf("loaded %d documents onto %d shard group(s)", copied, shards)
	for _, spec := range oindexes {
		router.EnsureOrderedIndex(spec.collection, spec.paths...)
		log.Printf("ordered index on %s(%s) created on every shard member",
			spec.collection, strings.Join(spec.paths, ","))
	}

	// The dissemination layer runs unchanged in front of the cluster.
	eng := queryengine.NewWithBackend(router, queryengine.WithRateLimit(10000, time.Minute))
	eng.SetCache(rc)
	if reg != nil || tracer != nil {
		eng.Observe(reg, tracer)
	}
	eng.AddAlias("materials", "formula", "pretty_formula")
	eng.AddAlias("materials", "energy", "final_energy")
	eng.AddAlias("materials", "bandgap", "band_gap")

	// Auth and status stay router-local.
	local := datastore.MustOpenMemory()
	serveAPI(addr, eng, local, reg, tracer, metrics, pprofFlag, slowQueryMs, maxBodyBytes,
		fmt.Sprintf("Materials API (routed, %d shards × %d peers)", shards, len(urls)))
}

func runStandalone(addr string, nMaterials int, dataDir string, seed int64,
	oindexes []orderedIndexSpec, rc *rcache.Cache, reg *obs.Registry, tracer *obs.Tracer,
	metrics, pprofFlag bool, slowQueryMs float64, maxBodyBytes int64) {
	cfg := pipeline.DefaultConfig()
	cfg.NMaterials = nMaterials
	cfg.PersistDir = dataDir
	cfg.Seed = seed
	cfg.Obs = reg
	cfg.Tracer = tracer
	log.Printf("building deployment (%d materials)...", cfg.NMaterials)
	d, err := pipeline.Build(cfg)
	if err != nil {
		log.Fatalf("mpserve: build: %v", err)
	}
	d.Engine.SetCache(rc)
	for _, spec := range oindexes {
		d.Store.C(spec.collection).EnsureOrderedIndex(spec.paths...)
		log.Printf("ordered index on %s(%s)", spec.collection, strings.Join(spec.paths, ","))
	}
	st := d.Store.Stats()
	log.Printf("store ready: %d collections, %d documents, ~%d KB", st.Collections, st.Documents, st.Bytes/1024)
	log.Printf("materials=%d tasks=%d bandstructures=%d xrd=%d batteries=%d",
		d.Materials, d.Tasks, d.Bands, d.XRDPatterns, d.Batteries)
	serveAPI(addr, d.Engine, d.Store, reg, tracer, metrics, pprofFlag, slowQueryMs, maxBodyBytes,
		"Materials API + web portal")
}

// serveAPI mounts the public API (plus portal, metrics, pprof) and
// serves until the process dies.
func serveAPI(addr string, eng *queryengine.Engine, store *datastore.Store,
	reg *obs.Registry, tracer *obs.Tracer, metrics, pprofFlag bool, slowQueryMs float64,
	maxBodyBytes int64, banner string) {
	auth := restapi.NewAuth(store)
	api := restapi.NewServer(eng, auth, store)
	api.MaxBodyBytes = maxBodyBytes
	if metrics {
		api.Observe(reg, tracer)
	}
	if pprofFlag {
		api.EnablePprof()
	}
	portal := webui.NewServer(eng, store)
	mux := http.NewServeMux()
	mux.Handle("/rest/", api)
	mux.Handle("/auth/", api)
	if metrics {
		mux.Handle("/metrics", api)
		mux.Handle("/status", api)
		if tracer != nil {
			log.Printf("slow-query log armed at %.1f ms", slowQueryMs)
		}
	}
	if pprofFlag {
		mux.Handle("/debug/pprof/", api)
		log.Printf("pprof exposed at /debug/pprof/")
	}
	mux.Handle("/", portal)
	log.Printf("%s listening on %s", banner, addr)
	fmt.Printf("portal:  http://localhost%s/\n", addr)
	fmt.Printf("example: curl -X POST 'http://localhost%s/auth/signup?provider=google&email=you@example.com'\n", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Fatalf("mpserve: %v", err)
	}
}
