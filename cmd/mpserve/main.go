// Command mpserve builds (or reopens) a Materials Project deployment and
// serves the Materials API over HTTP:
//
//	mpserve -addr :8651 -materials 100
//	mpserve -addr :8651 -data ./mpdata        # durable store
//
// Sign up for an API key, then query:
//
//	curl -X POST 'http://localhost:8651/auth/signup?provider=google&email=you@example.com'
//	curl -H "X-API-KEY: $KEY" http://localhost:8651/rest/v1/materials/Fe2O3/vasp/energy
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"matproj/internal/obs"
	"matproj/internal/pipeline"
	"matproj/internal/restapi"
	"matproj/internal/webui"
)

func main() {
	addr := flag.String("addr", ":8651", "listen address")
	nMaterials := flag.Int("materials", 80, "synthetic ICSD records to compute on first build")
	dataDir := flag.String("data", "", "directory for a durable store (empty = in-memory)")
	seed := flag.Int64("seed", 2012, "dataset seed")
	metrics := flag.Bool("metrics", true, "record live metrics and serve GET /metrics and GET /status")
	slowQueryMs := flag.Float64("slow-query-ms", 250, "slow-query log threshold in milliseconds (0 disables the log)")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()

	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metrics {
		reg = obs.NewRegistry()
		if *slowQueryMs > 0 {
			tracer = obs.NewTracer(time.Duration(*slowQueryMs*float64(time.Millisecond)), 0)
		}
	}

	cfg := pipeline.DefaultConfig()
	cfg.NMaterials = *nMaterials
	cfg.PersistDir = *dataDir
	cfg.Seed = *seed
	cfg.Obs = reg
	cfg.Tracer = tracer
	log.Printf("building deployment (%d materials)...", cfg.NMaterials)
	d, err := pipeline.Build(cfg)
	if err != nil {
		log.Fatalf("mpserve: build: %v", err)
	}
	st := d.Store.Stats()
	log.Printf("store ready: %d collections, %d documents, ~%d KB", st.Collections, st.Documents, st.Bytes/1024)
	log.Printf("materials=%d tasks=%d bandstructures=%d xrd=%d batteries=%d",
		d.Materials, d.Tasks, d.Bands, d.XRDPatterns, d.Batteries)

	auth := restapi.NewAuth(d.Store)
	api := restapi.NewServer(d.Engine, auth, d.Store)
	if *metrics {
		api.Observe(reg, tracer)
	}
	if *pprofFlag {
		api.EnablePprof()
	}
	portal := webui.NewServer(d.Engine, d.Store)
	mux := http.NewServeMux()
	mux.Handle("/rest/", api)
	mux.Handle("/auth/", api)
	if *metrics {
		mux.Handle("/metrics", api)
		mux.Handle("/status", api)
		if tracer != nil {
			log.Printf("slow-query log armed at %.1f ms", *slowQueryMs)
		}
	}
	if *pprofFlag {
		mux.Handle("/debug/pprof/", api)
		log.Printf("pprof exposed at /debug/pprof/")
	}
	mux.Handle("/", portal)
	log.Printf("Materials API + web portal listening on %s", *addr)
	fmt.Printf("portal:  http://localhost%s/\n", *addr)
	fmt.Printf("example: curl -X POST 'http://localhost%s/auth/signup?provider=google&email=you@example.com'\n", *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatalf("mpserve: %v", err)
	}
}
