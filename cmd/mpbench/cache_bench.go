package main

import (
	"fmt"
	"math/rand"
	"time"

	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/experiments"
	"matproj/internal/queryengine"
	"matproj/internal/rcache"
)

// The cache experiment quantifies the read-path result cache on the
// dissemination workload the paper's Fig. 5 describes: a small set of
// hot queries served over and over. Two workloads, each run with the
// cache on and off, written to BENCH_cache.json:
//
//   - hot: one fixed query repeated — with the cache on, every request
//     after the first is a generation-validated hit, so the speedup is
//     the full cost of the scan it skips (target: >5x);
//   - miss: a never-repeating query per op — every request misses, so
//     the delta is the cache's bookkeeping tax on the worst case
//     (target: <5% overhead).

// cacheBenchResult is one timed workload in BENCH_cache.json.
type cacheBenchResult struct {
	Name      string  `json:"name"`
	Iters     int     `json:"iters"`
	MsPerOp   float64 `json:"ms_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

func runCacheBench(sc experiments.Scale, out string) error {
	nDocs := 20000
	itersHot := 4000
	itersMiss := 300
	if sc.Materials < 100 { // small scale: keep CI fast
		nDocs = 6000
		itersHot = 1500
		itersMiss = 150
	}
	const rounds = 3 // best-of to shed scheduler noise

	rng := rand.New(rand.NewSource(11))
	store := datastore.MustOpenMemory()
	for i := 0; i < nDocs; i++ {
		if _, err := store.C("bench").Insert(document.D{
			"_id":   fmt.Sprintf("bench-%06d", i),
			"value": rng.Float64() * 100,
			"group": int64(rng.Intn(40)),
		}); err != nil {
			return err
		}
	}

	engOff := queryengine.New(store)
	engOn := queryengine.New(store, queryengine.WithCache(rcache.New(4096, nil)))
	// The miss engine gets a small cache so the measurement reaches the
	// steady state a miss-heavy workload actually runs at — a bounded
	// cache churning under LRU eviction — instead of timing an
	// ever-growing retained set (which mostly measures GC, not cache
	// bookkeeping).
	engMiss := queryengine.New(store, queryengine.WithCache(rcache.New(64, nil)))

	// Hot query: unindexed scan + sort + top-K, the shape of a portal
	// page everyone loads.
	hotFilter := document.D{"value": document.D{"$gte": 95.0}}
	hotOpts := &datastore.FindOpts{Sort: []string{"-value"}, Limit: 20}
	// Miss workload: a strictly increasing threshold so no two ops (in
	// any round) share a cache key.
	missSeq := 0
	missFilter := func() document.D {
		missSeq++
		return document.D{"value": document.D{"$gte": 90.0 + float64(missSeq)/1e6}}
	}

	measure := func(name string, iters int, f func() error) (cacheBenchResult, error) {
		best := cacheBenchResult{Name: name, Iters: iters}
		for round := 0; round < rounds; round++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				if err := f(); err != nil {
					return best, fmt.Errorf("%s: %w", name, err)
				}
			}
			elapsed := time.Since(start)
			per := float64(elapsed.Nanoseconds()) / float64(iters) / 1e6
			if best.MsPerOp == 0 || per < best.MsPerOp {
				best.MsPerOp = per
				best.OpsPerSec = float64(iters) / elapsed.Seconds()
			}
		}
		fmt.Printf("  %-16s %6d iters  %8.4f ms/op  %10.1f ops/s\n", name, best.Iters, best.MsPerOp, best.OpsPerSec)
		return best, nil
	}

	fmt.Printf("corpus: %d docs, best of %d rounds\n", nDocs, rounds)
	var results []cacheBenchResult
	run := func(name string, iters int, f func() error) error {
		r, err := measure(name, iters, f)
		if err != nil {
			return err
		}
		results = append(results, r)
		return nil
	}

	if err := run("hot.uncached", itersHot/4, func() error {
		_, err := engOff.Find("bench", "bench", hotFilter, hotOpts)
		return err
	}); err != nil {
		return err
	}
	if err := run("hot.cached", itersHot, func() error {
		_, err := engOn.Find("bench", "bench", hotFilter, hotOpts)
		return err
	}); err != nil {
		return err
	}
	if err := run("miss.uncached", itersMiss, func() error {
		_, err := engOff.Find("bench", "bench", missFilter(), hotOpts)
		return err
	}); err != nil {
		return err
	}
	if err := run("miss.cached", itersMiss, func() error {
		_, err := engMiss.Find("bench", "bench", missFilter(), hotOpts)
		return err
	}); err != nil {
		return err
	}

	byName := map[string]cacheBenchResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	speedup := byName["hot.uncached"].MsPerOp / byName["hot.cached"].MsPerOp
	overhead := (byName["miss.cached"].MsPerOp - byName["miss.uncached"].MsPerOp) /
		byName["miss.uncached"].MsPerOp * 100

	payload := struct {
		Docs            int                `json:"docs"`
		Rounds          int                `json:"rounds"`
		Results         []cacheBenchResult `json:"results"`
		HotSpeedup      float64            `json:"hot_read_speedup"`
		MissOverheadPct float64            `json:"miss_path_overhead_pct"`
	}{Docs: nDocs, Rounds: rounds, Results: results, HotSpeedup: speedup, MissOverheadPct: overhead}
	if err := writeJSON(out, payload); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	fmt.Printf("  hot-read speedup:   %.1fx (target >5x)\n", speedup)
	fmt.Printf("  miss-path overhead: %+.2f%% (target <5%%)\n", overhead)
	return nil
}
