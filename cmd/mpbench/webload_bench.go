package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"matproj/internal/document"
	"matproj/internal/mpclient"
	"matproj/internal/webload"
)

// The webload experiment drives a RUNNING mpserve deployment (usually
// the routed cluster the check.sh failover smoke boots) with the same
// open-loop mix over HTTP, issuing every read with a max_staleness
// budget so the router may serve it from a follower. It doubles as the
// SLO gate for external chaos: check.sh kills and restarts a shard
// replica while this runs, and a p99 over budget or any probe read
// older than its staleness bound exits nonzero.

// webloadResult is the BENCH_webload.json schema.
type webloadResult struct {
	URL          string  `json:"url"`
	RateQPS      float64 `json:"rate_qps"`
	DurationSec  float64 `json:"duration_sec"`
	MaxStaleness int     `json:"max_staleness"`
	ProbeGroups  int     `json:"probe_groups"`
	Sent         int     `json:"sent"`
	Errors       int     `json:"errors"`
	Records      int     `json:"records"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	P999Ms       float64 `json:"p999_ms"`
	SloP99Ms     float64 `json:"slo_p99_ms"`
	ProbesAcked  int64   `json:"probes_acked"`
	ProbeReads   int64   `json:"probe_reads"`
	Violations   int64   `json:"staleness_violations"`
}

// webloadVocab samples the served corpus for workload vocabulary.
func webloadVocab(c *mpclient.Client) (formulas, elements []string, err error) {
	docs, err := c.Query(document.D{}, []string{"pretty_formula", "elements"}, 300)
	if err != nil {
		return nil, nil, fmt.Errorf("webload: sampling corpus: %w", err)
	}
	fseen, eseen := map[string]bool{}, map[string]bool{}
	for _, d := range docs {
		if f := d.GetString("pretty_formula"); f != "" && !fseen[f] {
			fseen[f] = true
			formulas = append(formulas, f)
		}
		for _, e := range d.GetArray("elements") {
			if s, ok := e.(string); ok && !eseen[s] {
				eseen[s] = true
				elements = append(elements, s)
			}
		}
	}
	return formulas, elements, nil
}

func runWebloadBench(out, url, apiKey string, rate float64, dur time.Duration,
	maxStale, probeGroups int, sloP99Ms float64) error {
	if url == "" {
		return fmt.Errorf("webload: -url is required")
	}
	var c *mpclient.Client
	if apiKey != "" {
		c = mpclient.New(url, apiKey)
	} else {
		signed, err := mpclient.Signup(url, "google", "webload@bench.local")
		if err != nil {
			return fmt.Errorf("webload: signup (pass -api-key to skip): %w", err)
		}
		c = signed
	}

	formulas, elements, err := webloadVocab(c)
	if err != nil {
		return err
	}
	gen, err := webload.NewVocabGenerator(2012, formulas, elements)
	if err != nil {
		return err
	}

	var probe webload.Probe
	var probesAcked, probeReads, violations atomic.Int64
	stopProbes := make(chan struct{})
	var probeWG sync.WaitGroup
	probeWG.Add(2)
	go func() {
		defer probeWG.Done()
		seq := int64(0)
		for {
			select {
			case <-stopProbes:
				return
			case <-time.After(8 * time.Millisecond):
			}
			seq++
			if _, err := c.Insert("materials", webload.ProbeDoc(seq)); err != nil {
				continue
			}
			probe.Ack(seq)
			probesAcked.Store(seq)
		}
	}()
	go func() {
		defer probeWG.Done()
		opts := mpclient.QueryOpts{Sort: []string{"-probe_seq"}, Limit: 1, MaxStaleness: maxStale}
		for {
			select {
			case <-stopProbes:
				return
			case <-time.After(10 * time.Millisecond):
			}
			acked := probe.Acked()
			docs, err := c.QueryWith(document.D(webload.ProbeFilter()), nil, opts)
			if err != nil {
				continue
			}
			probeReads.Add(1)
			if webload.ProbeViolation(webload.ObservedSeq(docs), acked, probeGroups, maxStale) {
				violations.Add(1)
			}
		}
	}()

	fmt.Printf("open-loop HTTP load on %s: %.0f q/s for %v (max_staleness=%d)...\n",
		url, rate, dur, maxStale)
	res, err := gen.RunOpenLoop(func(q webload.Query) (int, error) {
		opts := mpclient.QueryOpts{MaxStaleness: maxStale}
		if q.Opts != nil {
			opts.Limit = q.Opts.Limit
			opts.Skip = q.Opts.Skip
			opts.Sort = q.Opts.Sort
		}
		if q.Kind == webload.KindCount {
			// The public API has no count verb; a bounded find exercises
			// the same scatter path.
			opts.Limit = 40
		}
		docs, err := c.QueryWith(q.Filter, nil, opts)
		return len(docs), err
	}, webload.OpenLoopConfig{Rate: rate, Duration: dur})
	if err != nil {
		return err
	}
	close(stopProbes)
	probeWG.Wait()

	result := webloadResult{
		URL:          url,
		RateQPS:      rate,
		DurationSec:  dur.Seconds(),
		MaxStaleness: maxStale,
		ProbeGroups:  probeGroups,
		Sent:         res.Sent,
		Errors:       res.Errors,
		Records:      res.Records,
		P50Ms:        float64(webload.LatencyQuantile(res.Samples, 0.50)) / 1e6,
		P99Ms:        float64(webload.LatencyQuantile(res.Samples, 0.99)) / 1e6,
		P999Ms:       float64(webload.LatencyQuantile(res.Samples, 0.999)) / 1e6,
		SloP99Ms:     sloP99Ms,
		ProbesAcked:  probesAcked.Load(),
		ProbeReads:   probeReads.Load(),
		Violations:   violations.Load(),
	}
	if err := writeJSON(out, result); err != nil {
		return err
	}
	fmt.Printf("  sent=%d errors=%d records=%d  p50=%.2fms p99=%.2fms p999=%.2fms\n",
		result.Sent, result.Errors, result.Records, result.P50Ms, result.P99Ms, result.P999Ms)
	fmt.Printf("  probes acked=%d reads=%d violations=%d\n",
		result.ProbesAcked, result.ProbeReads, result.Violations)
	fmt.Printf("wrote %s\n", out)

	if result.P99Ms > sloP99Ms {
		return fmt.Errorf("webload: p99 %.2f ms exceeds SLO budget %.2f ms", result.P99Ms, sloP99Ms)
	}
	if result.Violations > 0 {
		return fmt.Errorf("webload: %d probe reads observed data older than the staleness bound", result.Violations)
	}
	if result.ProbeReads == 0 {
		return fmt.Errorf("webload: the staleness prober never completed a read")
	}
	return nil
}
