package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"matproj/internal/document"
	"matproj/internal/experiments"
	"matproj/internal/mapreduce"
	"matproj/internal/obs"
	"matproj/internal/pipeline"
	"matproj/internal/webload"
)

// The bench experiment builds one instrumented deployment and drives the
// core data-path operations through it in timed loops, writing two
// machine-readable artifacts:
//
//   - BENCH_core.json — per-operation wall-clock timings (find,
//     aggregate, MapReduce builtin vs parallel, webload replay)
//   - BENCH_obs.json  — the live metrics registry snapshot plus the
//     slow-query log, i.e. exactly what GET /metrics would have served
//     after the same traffic
//
// The obs artifact is the point: the timed loops say what the harness
// measured from outside, the registry says what the system observed about
// itself, and the two must agree.

// benchResult is one timed loop in BENCH_core.json.
type benchResult struct {
	Name    string             `json:"name"`
	Iters   int                `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	MsPerOp float64            `json:"ms_per_op"`
	Extra   map[string]float64 `json:"extra,omitempty"`
}

func timed(name string, iters int, f func() error) (benchResult, error) {
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return benchResult{}, fmt.Errorf("%s: %w", name, err)
		}
	}
	per := float64(time.Since(start).Nanoseconds()) / float64(iters)
	return benchResult{Name: name, Iters: iters, NsPerOp: per, MsPerOp: per / 1e6}, nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchMapper / benchReducer group tasks per structure and keep the
// lowest energy — the materials-builder reduction in miniature.
func benchMapper(t document.D, emit func(string, any)) {
	if t.GetString("state") != "successful" {
		return
	}
	if sid := t.GetString("result.structure_id"); sid != "" {
		e, _ := t.GetFloat("result.energy_per_atom")
		emit(sid, e)
	}
}

func benchReducer(_ string, vs []any) any {
	best, _ := document.AsFloat(vs[0])
	for _, v := range vs[1:] {
		if f, _ := document.AsFloat(v); f < best {
			best = f
		}
	}
	return best
}

func runBench(sc experiments.Scale, coreOut, obsOut string) error {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(250*time.Millisecond, 0)
	cfg := pipeline.DefaultConfig()
	cfg.NMaterials = sc.Materials
	cfg.Obs = reg
	cfg.Tracer = tracer
	fmt.Printf("building instrumented deployment (%d materials)...\n", cfg.NMaterials)
	d, err := pipeline.Build(cfg)
	if err != nil {
		return err
	}
	defer d.Store.Close()

	var results []benchResult
	record := func(r benchResult, err error) error {
		if err != nil {
			return err
		}
		results = append(results, r)
		fmt.Printf("  %-32s %8d iters  %10.3f ms/op\n", r.Name, r.Iters, r.MsPerOp)
		return nil
	}

	findFilter := document.MustFromJSON(`{"bandgap": {"$gte": 0.5}}`)
	if err := record(timed("queryengine.Find", 200, func() error {
		_, err := d.Engine.Find("bench", "materials", findFilter, nil)
		return err
	})); err != nil {
		return err
	}

	stages := []document.D{
		{"$match": map[string]any{"band_gap": map[string]any{"$gte": 0.0}}},
		{"$group": document.MustFromJSON(`{"_id": "$nelements", "n": {"$sum": 1}, "gap": {"$avg": "$band_gap"}}`)},
		{"$sort": document.MustFromJSON(`{"_id": 1}`)},
	}
	if err := record(timed("queryengine.Aggregate", 100, func() error {
		_, err := d.Engine.Aggregate("bench", "materials", stages)
		return err
	})); err != nil {
		return err
	}

	tasks := d.Store.C("tasks")
	if err := record(timed("mapreduce.Builtin", 50, func() error {
		_, err := tasks.MapReduce(nil, benchMapper, benchReducer)
		return err
	})); err != nil {
		return err
	}
	if err := record(timed("mapreduce.Parallel4", 50, func() error {
		_, err := mapreduce.RunCollection(tasks, nil, benchMapper, benchReducer,
			mapreduce.Config{MapWorkers: 4})
		return err
	})); err != nil {
		return err
	}

	gen, err := webload.NewGenerator(7, d.Store.C("materials"))
	if err != nil {
		return err
	}
	var records int
	r, err := timed("webload.Replay", 1, func() error {
		_, records, err = webload.Replay(gen, d.Engine, "materials", sc.Queries)
		return err
	})
	if err != nil {
		return err
	}
	r.Extra = map[string]float64{"queries": float64(sc.Queries), "records": float64(records)}
	if err := record(r, nil); err != nil {
		return err
	}

	if err := writeJSON(coreOut, results); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d results)\n", coreOut, len(results))

	snap := reg.Snapshot()
	total, slow := tracer.Counts()
	obsPayload := struct {
		obs.Snapshot
		OpsTraced    uint64       `json:"ops_traced"`
		SlowOpsTotal uint64       `json:"slow_ops_total"`
		SlowOps      []obs.SlowOp `json:"slow_ops,omitempty"`
	}{Snapshot: snap, OpsTraced: total, SlowOpsTotal: slow, SlowOps: tracer.SlowOps()}
	if err := writeJSON(obsOut, obsPayload); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d counters, %d histograms)\n", obsOut, len(snap.Counters), len(snap.Histograms))

	fmt.Println("\nlive registry after the run (Fig. 5-comparable text render):")
	snap.WriteText(os.Stdout)
	return nil
}
