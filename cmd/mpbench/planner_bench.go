package main

import (
	"fmt"
	"math/rand"
	"time"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

// The planner experiment measures what the ordered secondary indexes buy
// on the workload the query planner was built for: a selective range
// query over a numeric field (the shape of every "band_gap between x
// and y" screening query in the paper's §IV). Each corpus size runs the
// same ~1%-selectivity range read two ways — against a collection with
// an ordered index on the field (the planner picks the index scan) and
// against an index-free twin (full scan) — and BENCH_planner.json
// records both, plus the speedup. The run fails when the 100k-doc
// speedup lands under -planner-min-speedup (default 10x), making the
// artifact a regression gate and not just a report.

// plannerBenchResult is one timed workload in BENCH_planner.json.
type plannerBenchResult struct {
	Name      string  `json:"name"`
	Docs      int     `json:"docs"`
	Iters     int     `json:"iters"`
	MsPerOp   float64 `json:"ms_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Plan      string  `json:"plan"`
}

func runPlannerBench(out string, minSpeedup float64) error {
	sizes := []int{10000, 100000}
	const rounds = 3 // best-of to shed scheduler noise

	var results []plannerBenchResult
	speedups := map[int]float64{}
	for _, n := range sizes {
		indexed, scan, err := plannerCorpus(n)
		if err != nil {
			return err
		}
		// ~1% selectivity window in the middle of the value range.
		filter := document.D{"value": document.D{"$gte": 49.5, "$lt": 50.5}}
		opts := &datastore.FindOpts{Sort: []string{"value"}}

		iters := 2000
		if n >= 100000 {
			iters = 500
		}
		ri, err := plannerMeasure(fmt.Sprintf("range.indexed.%dk", n/1000), indexed, filter, opts, n, iters, rounds)
		if err != nil {
			return err
		}
		// Full scans at 100k are ~ms each; fewer iters keep the run short.
		rs, err := plannerMeasure(fmt.Sprintf("range.scan.%dk", n/1000), scan, filter, opts, n, iters/10, rounds)
		if err != nil {
			return err
		}
		if ri.Plan == rs.Plan {
			return fmt.Errorf("planner bench: both sides ran plan %q — the index was not used", ri.Plan)
		}
		results = append(results, ri, rs)
		speedups[n] = rs.MsPerOp / ri.MsPerOp
	}

	payload := struct {
		Rounds      int                  `json:"rounds"`
		Results     []plannerBenchResult `json:"results"`
		Speedup10k  float64              `json:"speedup_10k"`
		Speedup100k float64              `json:"speedup_100k"`
		MinSpeedup  float64              `json:"min_speedup_gate"`
	}{Rounds: rounds, Results: results, Speedup10k: speedups[10000], Speedup100k: speedups[100000], MinSpeedup: minSpeedup}
	if err := writeJSON(out, payload); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	fmt.Printf("  indexed range speedup:  10k %.1fx, 100k %.1fx (gate: >=%.0fx at 100k)\n",
		speedups[10000], speedups[100000], minSpeedup)
	if speedups[100000] < minSpeedup {
		return fmt.Errorf("planner bench: 100k-doc indexed range speedup %.1fx under the %.0fx gate", speedups[100000], minSpeedup)
	}
	return nil
}

// plannerCorpus builds two memory collections with identical documents:
// one with an ordered index on "value", one index-free.
func plannerCorpus(n int) (indexed, scan *datastore.Collection, err error) {
	rng := rand.New(rand.NewSource(int64(n)))
	si := datastore.MustOpenMemory()
	ss := datastore.MustOpenMemory()
	indexed = si.C("bench")
	scan = ss.C("bench")
	indexed.EnsureOrderedIndex("value")
	for i := 0; i < n; i++ {
		doc := document.D{
			"_id":   fmt.Sprintf("bench-%06d", i),
			"value": rng.Float64() * 100,
			"group": int64(rng.Intn(40)),
		}
		if _, err := indexed.Insert(doc.Copy()); err != nil {
			return nil, nil, err
		}
		if _, err := scan.Insert(doc); err != nil {
			return nil, nil, err
		}
	}
	return indexed, scan, nil
}

// plannerMeasure times one query shape best-of-rounds, recording the
// planner's reported mode so the artifact proves which side used the
// index. A warmup query first amortizes the index's lazy key-sort.
func plannerMeasure(name string, c *datastore.Collection, filter document.D, opts *datastore.FindOpts,
	docs, iters, rounds int) (plannerBenchResult, error) {
	plan, err := c.Explain(filter, opts)
	if err != nil {
		return plannerBenchResult{}, fmt.Errorf("%s: explain: %w", name, err)
	}
	mode, _ := plan["mode"].(string)
	res := plannerBenchResult{Name: name, Docs: docs, Iters: iters, Plan: mode}
	if _, err := c.FindAll(filter, opts); err != nil { // warmup
		return res, fmt.Errorf("%s: warmup: %w", name, err)
	}
	for round := 0; round < rounds; round++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := c.FindAll(filter, opts); err != nil {
				return res, fmt.Errorf("%s: %w", name, err)
			}
		}
		elapsed := time.Since(start)
		per := float64(elapsed.Nanoseconds()) / float64(iters) / 1e6
		if res.MsPerOp == 0 || per < res.MsPerOp {
			res.MsPerOp = per
			res.OpsPerSec = float64(iters) / elapsed.Seconds()
		}
	}
	fmt.Printf("  %-20s %6d iters  %8.4f ms/op  %10.1f ops/s  plan=%s\n", name, res.Iters, res.MsPerOp, res.OpsPerSec, res.Plan)
	return res, nil
}
