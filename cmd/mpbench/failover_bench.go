package main

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"matproj/internal/cluster"
	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/obs"
	"matproj/internal/webload"
)

// The failover experiment is the ISSUE's SLO-gated chaos scenario in
// process: a 2-shard × 2-member cluster takes a fixed-rate open-loop
// web workload with bounded-staleness follower reads while one replica
// is killed outright and later restarted. The background health loop
// must re-admit it through incremental log catch-up (verified by the
// cluster.repl_catchup_entries counter), the p99 must hold the budget
// through the whole run, and no probe read may observe data older than
// its staleness bound. Results land in BENCH_failover.json; a gate
// breach is an error (nonzero exit).

// failoverResult is the BENCH_failover.json schema.
type failoverResult struct {
	RateQPS        float64 `json:"rate_qps"`
	DurationSec    float64 `json:"duration_sec"`
	MaxStaleness   int     `json:"max_staleness"`
	Sent           int     `json:"sent"`
	Errors         int     `json:"errors"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	P999Ms         float64 `json:"p999_ms"`
	SloP99Ms       float64 `json:"slo_p99_ms"`
	ProbesAcked    int64   `json:"probes_acked"`
	ProbeReads     int64   `json:"probe_reads"`
	Violations     int64   `json:"staleness_violations"`
	Readmissions   uint64  `json:"repl_readmissions"`
	CatchUpShipped uint64  `json:"repl_catchup_entries"`
	SnapshotCopies uint64  `json:"repl_snapshot_copies"`
	FollowerReads  uint64  `json:"follower_reads"`
	WriteFailures  uint64  `json:"replica_write_failures"`
	ReadRetries    uint64  `json:"read_retries"`
}

// benchServer is a shard node on a restartable TCP listener (httptest
// servers cannot rebind their port after Close, a killed-and-restarted
// replica must).
type benchServer struct {
	addr string
	node *cluster.Node
	mu   sync.Mutex
	srv  *http.Server
}

func startBenchServer(n *cluster.Node) (*benchServer, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &benchServer{addr: lis.Addr().String(), node: n, srv: &http.Server{Handler: n}}
	go s.srv.Serve(lis)
	return s, nil
}

func (s *benchServer) url() string { return "http://" + s.addr }

func (s *benchServer) kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.srv.Close()
}

func (s *benchServer) restart() error {
	lis, err := net.Listen("tcp", s.addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.srv = &http.Server{Handler: s.node}
	go s.srv.Serve(lis)
	s.mu.Unlock()
	return nil
}

// failoverCorpus seeds materials-shaped docs and returns the vocabulary
// the workload generator samples from.
func failoverCorpus(routed interface {
	Insert(doc document.D) (string, error)
}, n int) (formulas, elements []string, err error) {
	symbols := []string{"Li", "Fe", "O", "P", "Na", "Cl", "Mn", "Co", "Ni", "S"}
	rng := rand.New(rand.NewSource(2012))
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		f := fmt.Sprintf("X%dO%d", i%9, i%3+1)
		if !seen[f] {
			seen[f] = true
			formulas = append(formulas, f)
		}
		els := make([]any, 0, 3)
		for _, j := range rng.Perm(len(symbols))[:3] {
			els = append(els, symbols[j])
		}
		doc := document.D{
			"_id":            fmt.Sprintf("mat-%05d", i),
			"pretty_formula": f,
			"elements":       els,
			"band_gap":       rng.Float64() * 5,
			"e_per_atom":     -rng.Float64() * 10,
			"nelectrons":     int64(20 + rng.Intn(400)),
		}
		if _, err := routed.Insert(doc); err != nil {
			return nil, nil, err
		}
	}
	return formulas, symbols, nil
}

func runFailoverBench(out string, rate float64, dur time.Duration, maxStale int, sloP99Ms float64) error {
	const shards, corpus = 2, 1200
	reg := obs.NewRegistry()
	var groups [][]string
	var servers []*benchServer
	for gi := 0; gi < shards; gi++ {
		var urls []string
		for mi := 0; mi < 2; mi++ {
			n := cluster.NewNode(fmt.Sprintf("fo-node-%d-%d", gi, mi), datastore.MustOpenMemory(), reg)
			s, err := startBenchServer(n)
			if err != nil {
				return err
			}
			defer s.kill()
			servers = append(servers, s)
			urls = append(urls, s.url())
		}
		groups = append(groups, urls)
	}
	r, err := cluster.NewRouter(cluster.RouterOptions{
		Groups:         groups,
		Registry:       reg,
		HealthInterval: 150 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer r.Close()
	routed := r.C("materials")

	fmt.Printf("seeding %d docs across %d×2 cluster...\n", corpus, shards)
	formulas, elements, err := failoverCorpus(routed, corpus)
	if err != nil {
		return err
	}
	gen, err := webload.NewVocabGenerator(2012, formulas, elements)
	if err != nil {
		return err
	}

	// Probe writer: the ground truth for the staleness check. Ack only
	// after the cluster acknowledged the insert.
	var probe webload.Probe
	var probesAcked, probeReads, violations atomic.Int64
	stopProbes := make(chan struct{})
	var probeWG sync.WaitGroup
	probeWG.Add(2)
	go func() {
		defer probeWG.Done()
		seq := int64(0)
		for {
			select {
			case <-stopProbes:
				return
			case <-time.After(4 * time.Millisecond):
			}
			seq++
			if _, err := routed.Insert(document.D(webload.ProbeDoc(seq))); err != nil {
				continue // outage blip; the seq is simply never acked
			}
			probe.Ack(seq)
			probesAcked.Store(seq)
		}
	}()
	go func() {
		defer probeWG.Done()
		for {
			select {
			case <-stopProbes:
				return
			case <-time.After(5 * time.Millisecond):
			}
			acked := probe.Acked()
			docs, err := routed.FindAll(webload.ProbeFilter(), webload.ProbeOpts(maxStale))
			if err != nil {
				continue
			}
			probeReads.Add(1)
			if webload.ProbeViolation(webload.ObservedSeq(docs), acked, shards, maxStale) {
				violations.Add(1)
			}
		}
	}()

	// Chaos: kill group 0's replica a third of the way in, bring it
	// back at two thirds; the health loop must re-admit it via log
	// catch-up while the load keeps arriving.
	replica := servers[1] // groups[0][1]
	go func() {
		time.Sleep(dur / 3)
		fmt.Printf("chaos: killing replica %s\n", replica.url())
		replica.kill()
		time.Sleep(dur / 3)
		fmt.Printf("chaos: restarting replica %s\n", replica.url())
		if err := replica.restart(); err != nil {
			fmt.Printf("chaos: restart failed: %v\n", err)
		}
	}()

	fmt.Printf("open-loop load: %.0f q/s for %v (max_staleness=%d)...\n", rate, dur, maxStale)
	res, err := gen.RunOpenLoop(func(q webload.Query) (int, error) {
		if q.Kind == webload.KindCount {
			return routed.Count(q.Filter)
		}
		opts := datastore.FindOpts{MaxStaleness: maxStale}
		if q.Opts != nil {
			opts = *q.Opts
			opts.MaxStaleness = maxStale
		}
		docs, err := routed.FindAll(q.Filter, &opts)
		return len(docs), err
	}, webload.OpenLoopConfig{Rate: rate, Duration: dur, Reg: reg})
	if err != nil {
		return err
	}
	close(stopProbes)
	probeWG.Wait()
	// One final sweep so a re-admission racing the end of the load
	// window is not missed.
	r.CheckNow()

	result := failoverResult{
		RateQPS:        rate,
		DurationSec:    dur.Seconds(),
		MaxStaleness:   maxStale,
		Sent:           res.Sent,
		Errors:         res.Errors,
		P50Ms:          float64(webload.LatencyQuantile(res.Samples, 0.50)) / 1e6,
		P99Ms:          float64(webload.LatencyQuantile(res.Samples, 0.99)) / 1e6,
		P999Ms:         float64(webload.LatencyQuantile(res.Samples, 0.999)) / 1e6,
		SloP99Ms:       sloP99Ms,
		ProbesAcked:    probesAcked.Load(),
		ProbeReads:     probeReads.Load(),
		Violations:     violations.Load(),
		Readmissions:   reg.Counter("cluster.repl_readmissions").Value(),
		CatchUpShipped: reg.Counter("cluster.repl_catchup_entries").Value(),
		SnapshotCopies: reg.Counter("cluster.repl_snapshot_copies").Value(),
		FollowerReads:  reg.Counter("cluster.follower_reads_total").Value(),
		WriteFailures:  reg.Counter("cluster.replica_write_failures").Value(),
		ReadRetries:    reg.Counter("cluster.read_retries_total").Value(),
	}
	if err := writeJSON(out, result); err != nil {
		return err
	}

	fmt.Printf("\n  sent=%d errors=%d  p50=%.2fms p99=%.2fms p999=%.2fms\n",
		result.Sent, result.Errors, result.P50Ms, result.P99Ms, result.P999Ms)
	fmt.Printf("  probes acked=%d reads=%d violations=%d\n",
		result.ProbesAcked, result.ProbeReads, result.Violations)
	fmt.Printf("  readmissions=%d catchup_entries=%d snapshot_copies=%d follower_reads=%d\n",
		result.Readmissions, result.CatchUpShipped, result.SnapshotCopies, result.FollowerReads)
	if snap, ok := reg.Snapshot().Histograms["webload.query_ms"]; ok {
		fmt.Printf("\nlive latency histogram (Fig. 5 buckets):\n%s\n", snap.Render("ms", 40))
	}
	fmt.Printf("wrote %s\n", out)

	// The gates. Every one of these is an acceptance criterion, not a
	// soft warning.
	if result.P99Ms > sloP99Ms {
		return fmt.Errorf("failover: p99 %.2f ms exceeds SLO budget %.2f ms", result.P99Ms, sloP99Ms)
	}
	if result.Violations > 0 {
		return fmt.Errorf("failover: %d probe reads observed data older than the staleness bound", result.Violations)
	}
	if result.Readmissions == 0 {
		return fmt.Errorf("failover: the killed replica was never re-admitted")
	}
	if result.CatchUpShipped == 0 {
		return fmt.Errorf("failover: re-admission shipped no log entries (full copy instead of catch-up?)")
	}
	return nil
}
