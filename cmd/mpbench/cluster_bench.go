package main

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"matproj/internal/cluster"
	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/experiments"
	"matproj/internal/obs"
	"matproj/internal/queryengine"
	"matproj/internal/shard"
)

// The cluster experiment compares the same Find and Aggregate workloads
// on a standalone store against a networked router fronting 1, 2, and 4
// shard nodes (each an in-process HTTP server), writing
// BENCH_cluster.json.
//
// The corpus is sharded on its "group" field, so the experiment measures
// both faces of §IV-D2 sharding:
//
//   - targeted workloads ({group: k} equality, and pipelines whose
//     leading $match pins the key): the router routes to ONE shard whose
//     collection is 1/N the corpus, so the unindexed scan behind each
//     query shrinks with the fleet — throughput rises over 1 shard even
//     on a single-core host, because the win is partitioned data, not
//     parallel CPU;
//   - scatter workloads (no shard key in the filter): every shard scans
//     and the router merge-sorts, which buys latency only when shards
//     run on real parallel hardware and otherwise pays the fan-out tax.
//
// The headline scaling claim rides on the targeted numbers.

// clusterBenchResult is one timed workload in BENCH_cluster.json.
type clusterBenchResult struct {
	Name      string  `json:"name"`
	Shards    int     `json:"shards"` // 0 = standalone (no network)
	Iters     int     `json:"iters"`
	MsPerOp   float64 `json:"ms_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

const benchGroups = 40 // distinct "group" values (the shard key)

// clusterBenchDoc synthesizes one row of the bench corpus.
func clusterBenchDoc(rng *rand.Rand, i int) document.D {
	elements := []string{"Li", "Fe", "O", "P", "Na", "Cl", "Mn", "Co", "Ni", "S"}
	els := make([]any, 0, 3)
	for _, e := range rng.Perm(len(elements))[:3] {
		els = append(els, elements[e])
	}
	return document.D{
		"_id":      fmt.Sprintf("bench-%06d", i),
		"value":    rng.Float64() * 100,
		"group":    int64(rng.Intn(benchGroups)),
		"elements": els,
	}
}

// loadDirect places the corpus straight into the member stores using the
// same hash the router routes by — loading is not what this experiment
// measures, only serving.
func loadDirect(nodes [][]*cluster.Node, docs []document.D) {
	for _, d := range docs {
		gi := shard.HashShard(d["group"], len(nodes))
		for _, n := range nodes[gi] {
			n.Store().C("bench").Insert(d)
		}
	}
}

// timedConcurrent drives f from workers goroutines for iters total ops.
// Each call receives a rotating sequence number (for workloads that vary
// a parameter per op).
func timedConcurrent(name string, shards, iters, workers int, f func(seq int) error) (clusterBenchResult, error) {
	var wg sync.WaitGroup
	var seq atomic.Int64
	errs := make([]error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters/workers; i++ {
				if err := f(int(seq.Add(1))); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return clusterBenchResult{}, fmt.Errorf("%s: %w", name, err)
		}
	}
	done := (iters / workers) * workers
	per := float64(elapsed.Nanoseconds()) / float64(done)
	return clusterBenchResult{
		Name:      name,
		Shards:    shards,
		Iters:     done,
		MsPerOp:   per / 1e6,
		OpsPerSec: float64(done) / elapsed.Seconds(),
	}, nil
}

func runClusterBench(sc experiments.Scale, out string) error {
	nDocs := 24000
	iters := 160
	if sc.Materials < 100 { // small scale: keep CI fast
		nDocs = 6000
		iters = 80
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}

	rng := rand.New(rand.NewSource(7))
	docs := make([]document.D, nDocs)
	for i := range docs {
		docs[i] = clusterBenchDoc(rng, i)
	}

	// Scatter workload: no shard key in the filter, every shard scans.
	scatterFilter := document.D{"value": document.D{"$gte": 97.0}}
	scatterOpts := &datastore.FindOpts{Sort: []string{"-value"}, Limit: 20}
	// Targeted workloads: {group: k} pins the shard key, so the router
	// touches one shard holding ~1/N of the corpus.
	targetedFilter := func(seq int) document.D {
		return document.D{"group": int64(seq % benchGroups)}
	}
	// Top-K within the group, so the scan (which shrinks with the fleet)
	// dominates the op rather than result serialization (which doesn't).
	targetedOpts := &datastore.FindOpts{Sort: []string{"-value"}, Limit: 25}
	targetedPipeline := func(seq int) []document.D {
		return []document.D{
			{"$match": document.D{"group": int64(seq % benchGroups)}},
			{"$group": document.D{"_id": nil, "n": document.D{"$sum": 1}, "avg": document.D{"$avg": "$value"}}},
		}
	}

	var results []clusterBenchResult
	record := func(r clusterBenchResult, err error) error {
		if err != nil {
			return err
		}
		results = append(results, r)
		fmt.Printf("  %-28s %6d iters  %8.3f ms/op  %10.1f ops/s\n", r.Name, r.Iters, r.MsPerOp, r.OpsPerSec)
		return nil
	}
	benchEngine := func(label string, shards int, eng *queryengine.Engine) error {
		if err := record(timedConcurrent(label+".Find.targeted", shards, iters, workers, func(seq int) error {
			_, err := eng.Find("bench", "bench", targetedFilter(seq), targetedOpts)
			return err
		})); err != nil {
			return err
		}
		if err := record(timedConcurrent(label+".Aggregate.targeted", shards, iters, workers, func(seq int) error {
			_, err := eng.Aggregate("bench", "bench", targetedPipeline(seq))
			return err
		})); err != nil {
			return err
		}
		return record(timedConcurrent(label+".Find.scatter", shards, iters/2, workers, func(int) error {
			_, err := eng.Find("bench", "bench", scatterFilter, scatterOpts)
			return err
		}))
	}

	// Baseline: the same engine surface over a local store.
	fmt.Printf("corpus: %d docs, %d workers, shard key \"group\"\n", nDocs, workers)
	local := datastore.MustOpenMemory()
	for _, d := range docs {
		if _, err := local.C("bench").Insert(d); err != nil {
			return err
		}
	}
	if err := benchEngine("standalone", 0, queryengine.New(local)); err != nil {
		return err
	}

	// Routed: 1, 2, and 4 single-member shard groups on live HTTP.
	for _, shards := range []int{1, 2, 4} {
		reg := obs.NewRegistry()
		var groups [][]string
		var nodes [][]*cluster.Node
		var servers []*httptest.Server
		for gi := 0; gi < shards; gi++ {
			n := cluster.NewNode(fmt.Sprintf("bench-node-%d", gi), datastore.MustOpenMemory(), reg)
			srv := httptest.NewServer(n)
			servers = append(servers, srv)
			groups = append(groups, []string{srv.URL})
			nodes = append(nodes, []*cluster.Node{n})
		}
		loadDirect(nodes, docs)
		router, err := cluster.NewRouter(cluster.RouterOptions{Groups: groups, ShardKey: "group", Registry: reg})
		if err != nil {
			return err
		}
		err = benchEngine(fmt.Sprintf("routed%d", shards), shards, queryengine.NewWithBackend(router))
		router.Close()
		for _, srv := range servers {
			srv.Close()
		}
		if err != nil {
			return err
		}
	}

	payload := struct {
		Docs        int                  `json:"docs"`
		Concurrency int                  `json:"concurrency"`
		ShardKey    string               `json:"shard_key"`
		Results     []clusterBenchResult `json:"results"`
		Speedups    map[string]float64   `json:"speedup_vs_1shard"`
	}{Docs: nDocs, Concurrency: workers, ShardKey: "group", Results: results, Speedups: map[string]float64{}}
	byName := map[string]clusterBenchResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	for _, op := range []string{"Find.targeted", "Aggregate.targeted", "Find.scatter"} {
		base := byName["routed1."+op]
		for _, shards := range []int{2, 4} {
			if r, ok := byName[fmt.Sprintf("routed%d.%s", shards, op)]; ok && base.OpsPerSec > 0 {
				payload.Speedups[fmt.Sprintf("%s_%dshard", op, shards)] = r.OpsPerSec / base.OpsPerSec
			}
		}
	}
	if err := writeJSON(out, payload); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d results)\n", out, len(results))
	for _, op := range []string{"Find.targeted", "Aggregate.targeted", "Find.scatter"} {
		for _, shards := range []int{2, 4} {
			k := fmt.Sprintf("%s_%dshard", op, shards)
			if v, ok := payload.Speedups[k]; ok {
				fmt.Printf("  speedup %-28s %.2fx\n", k, v)
			}
		}
	}
	return nil
}
