package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

// The ingest experiment measures what the group-commit write path buys
// on the workload it was built for: bulk ingest into a durable store.
// Three writers load the same synthetic task documents into a fresh
// journaled store:
//
//   - insert.seq: one Insert per document, sequential — every document
//     pays its own fsync (the pre-group-commit cost model).
//   - insert.conc: one Insert per document from 16 goroutines — the
//     group-commit queue coalesces concurrent appends, so one fsync
//     acks many in-flight records.
//   - insertMany: documents in batches through the single-lock batch
//     path — one fsync per batch.
//
// BENCH_ingest.json records docs/sec for each plus the batched-over-
// sequential speedup; the run fails when that speedup lands under
// -ingest-min-speedup (default 5x), making the artifact a durability-
// path performance gate.

// ingestBenchResult is one timed workload in BENCH_ingest.json.
type ingestBenchResult struct {
	Name       string  `json:"name"`
	Docs       int     `json:"docs"`
	BatchSize  int     `json:"batch_size,omitempty"`
	Writers    int     `json:"writers,omitempty"`
	DocsPerSec float64 `json:"docs_per_sec"`
	MsPerDoc   float64 `json:"ms_per_doc"`
}

// ingestDoc synthesizes the i-th ingest document (a small task record).
func ingestDoc(i int) document.D {
	return document.D{
		"task_id": fmt.Sprintf("task-%06d", i),
		"state":   "successful",
		"formula": "Fe2O3",
		"energy":  -6.5,
		"nsites":  int64(10),
	}
}

// ingestStore opens a fresh durable store in a throwaway directory.
func ingestStore() (*datastore.Store, func(), error) {
	dir, err := os.MkdirTemp("", "mpbench-ingest-*")
	if err != nil {
		return nil, nil, err
	}
	s, err := datastore.Open(dir)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	cleanup := func() {
		s.Close()
		os.RemoveAll(dir)
	}
	return s, cleanup, nil
}

func runIngestBench(out string, minSpeedup float64) error {
	const (
		seqDocs   = 500  // fsync-per-doc is ~ms each; keep the slow side short
		fastDocs  = 5000 // batched/coalesced sides are cheap, use more for stable timing
		batchSize = 500
		writers   = 16
	)

	// Sequential singleton inserts: the baseline cost model.
	seq, err := ingestTimed("insert.seq", seqDocs, 0, 0, func(s *datastore.Store) error {
		c := s.C("tasks")
		for i := 0; i < seqDocs; i++ {
			if _, err := c.Insert(ingestDoc(i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Concurrent singletons: same per-document API, but the commit queue
	// coalesces overlapping appends into shared fsyncs.
	conc, err := ingestTimed("insert.conc", fastDocs, 0, writers, func(s *datastore.Store) error {
		c := s.C("tasks")
		var wg sync.WaitGroup
		errs := make([]error, writers)
		for w := 0; w < writers; w++ {
			lo, hi := w*fastDocs/writers, (w+1)*fastDocs/writers
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					if _, err := c.Insert(ingestDoc(i)); err != nil {
						errs[w] = err
						return
					}
				}
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Batched inserts: one lock section and one fsync per batch.
	batch, err := ingestTimed("insertMany", fastDocs, batchSize, 0, func(s *datastore.Store) error {
		c := s.C("tasks")
		for lo := 0; lo < fastDocs; lo += batchSize {
			docs := make([]document.D, 0, batchSize)
			for i := lo; i < lo+batchSize && i < fastDocs; i++ {
				docs = append(docs, ingestDoc(i))
			}
			if _, err := c.InsertMany(docs); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	speedup := batch.DocsPerSec / seq.DocsPerSec
	concSpeedup := conc.DocsPerSec / seq.DocsPerSec
	payload := struct {
		Results      []ingestBenchResult `json:"results"`
		BatchSpeedup float64             `json:"batch_speedup"`
		ConcSpeedup  float64             `json:"concurrent_speedup"`
		MinSpeedup   float64             `json:"min_speedup_gate"`
	}{Results: []ingestBenchResult{seq, conc, batch}, BatchSpeedup: speedup, ConcSpeedup: concSpeedup, MinSpeedup: minSpeedup}
	if err := writeJSON(out, payload); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	fmt.Printf("  batched ingest speedup: %.1fx, coalesced concurrent: %.1fx (gate: >=%.0fx batched)\n",
		speedup, concSpeedup, minSpeedup)
	if speedup < minSpeedup {
		return fmt.Errorf("ingest bench: batched speedup %.1fx under the %.0fx gate", speedup, minSpeedup)
	}
	return nil
}

// ingestTimed runs one ingest workload against a fresh durable store,
// verifying afterwards that every document was acked into the journal
// (count check) so a buggy fast path cannot win the benchmark.
func ingestTimed(name string, docs, batchSize, writers int, f func(*datastore.Store) error) (ingestBenchResult, error) {
	s, cleanup, err := ingestStore()
	if err != nil {
		return ingestBenchResult{}, err
	}
	defer cleanup()
	start := time.Now()
	if err := f(s); err != nil {
		return ingestBenchResult{}, fmt.Errorf("%s: %w", name, err)
	}
	elapsed := time.Since(start)
	n, err := s.C("tasks").Count(nil)
	if err != nil {
		return ingestBenchResult{}, err
	}
	if n != docs {
		return ingestBenchResult{}, fmt.Errorf("%s: stored %d of %d docs", name, n, docs)
	}
	res := ingestBenchResult{
		Name:       name,
		Docs:       docs,
		BatchSize:  batchSize,
		Writers:    writers,
		DocsPerSec: float64(docs) / elapsed.Seconds(),
		MsPerDoc:   elapsed.Seconds() * 1e3 / float64(docs),
	}
	fmt.Printf("  %-12s %6d docs  %8.3f ms/doc  %10.1f docs/s\n", res.Name, res.Docs, res.MsPerDoc, res.DocsPerSec)
	return res, nil
}
