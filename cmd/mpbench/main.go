// Command mpbench regenerates every table and figure of the paper from
// the reproduction pipeline and prints them as text. Run all experiments
// or a single one:
//
//	mpbench -exp all
//	mpbench -exp table1
//	mpbench -exp fig1 -scale full
//
// Experiments: table1, fig1, fig2, fig3, fig4, fig5, mapreduce, taskfarm,
// fireworks, weekstats, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"matproj/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1|fig1|fig2|fig3|fig4|fig5|mapreduce|taskfarm|fireworks|weekstats|bench|cluster|cache|failover|planner|ingest|webload|all)")
	scaleName := flag.String("scale", "full", "experiment scale (small|full)")
	benchOut := flag.String("bench-out", "BENCH_core.json", "bench mode: timed-loop results file")
	obsOut := flag.String("obs-out", "BENCH_obs.json", "bench mode: metrics registry snapshot file")
	clusterOut := flag.String("cluster-out", "BENCH_cluster.json", "cluster mode: standalone-vs-routed results file")
	cacheOut := flag.String("cache-out", "BENCH_cache.json", "cache mode: result-cache hot/miss results file")
	failoverOut := flag.String("failover-out", "BENCH_failover.json", "failover mode: SLO-gated chaos results file")
	webloadOut := flag.String("webload-out", "BENCH_webload.json", "webload mode: open-loop HTTP load results file")
	plannerOut := flag.String("planner-out", "BENCH_planner.json", "planner mode: indexed-vs-scan range query results file")
	plannerMin := flag.Float64("planner-min-speedup", 10, "planner mode: minimum 100k-doc indexed range speedup; under it the run fails")
	ingestOut := flag.String("ingest-out", "BENCH_ingest.json", "ingest mode: batched-vs-singleton durable write results file")
	ingestMin := flag.Float64("ingest-min-speedup", 5, "ingest mode: minimum batched-over-sequential speedup; under it the run fails")
	rate := flag.Float64("rate", 150, "open-loop arrival rate in queries/sec (failover, webload)")
	loadDur := flag.Duration("load-duration", 4*time.Second, "open-loop load window (failover, webload)")
	maxStale := flag.Int("max-staleness", 4, "staleness budget in generations for follower reads (failover, webload)")
	sloP99 := flag.Float64("slo-p99-ms", 250, "p99 latency budget; exceeding it fails the run (failover, webload)")
	urlFlag := flag.String("url", "", "webload mode: base URL of a running mpserve deployment")
	apiKey := flag.String("api-key", "", "webload mode: API key (empty = self-signup)")
	probeGroups := flag.Int("probe-groups", 2, "webload mode: target's shard group count (staleness slack)")
	flag.Parse()

	sc := experiments.Full
	if *scaleName == "small" {
		sc = experiments.Small
	}

	runners := map[string]func() error{
		"table1": func() error {
			rows, err := experiments.TableI(sc)
			if err != nil {
				return err
			}
			experiments.RenderTableI(os.Stdout, rows)
			return nil
		},
		"fig1": func() error {
			r, err := experiments.Fig1(sc)
			if err != nil {
				return err
			}
			experiments.RenderFig1(os.Stdout, r)
			return nil
		},
		"fig2": func() error {
			r, err := experiments.Fig2(sc)
			if err != nil {
				return err
			}
			experiments.RenderFig2(os.Stdout, r)
			return nil
		},
		"fig3": func() error {
			steps, err := experiments.Fig3(sc)
			if err != nil {
				return err
			}
			experiments.RenderFig3(os.Stdout, steps)
			return nil
		},
		"fig4": func() error {
			r, err := experiments.Fig4(sc)
			if err != nil {
				return err
			}
			experiments.RenderFig4(os.Stdout, r)
			return nil
		},
		"fig5": func() error {
			r, err := experiments.Fig5(sc)
			if err != nil {
				return err
			}
			experiments.RenderFig5(os.Stdout, r)
			return nil
		},
		"mapreduce": func() error {
			rows, err := experiments.MapReduceComparison(sc, []int{1, 2, 4, 8})
			if err != nil {
				return err
			}
			experiments.RenderMR(os.Stdout, rows)
			return nil
		},
		"taskfarm": func() error {
			rows, err := experiments.TaskFarm(sc)
			if err != nil {
				return err
			}
			experiments.RenderTaskFarm(os.Stdout, rows)
			return nil
		},
		"fireworks": func() error {
			r, err := experiments.FireworksFeatures(sc)
			if err != nil {
				return err
			}
			experiments.RenderFireworksFeatures(os.Stdout, r)
			return nil
		},
		"weekstats": func() error {
			r, err := experiments.WeekStats(sc)
			if err != nil {
				return err
			}
			fmt.Printf("Week accounting (paper: 3315 distinct queries, 12,951,099 records)\n")
			fmt.Printf("  queries: %d\n  records: %d\n", r.Queries, r.Records)
			return nil
		},
		// bench is not part of -exp all: it writes BENCH_core.json /
		// BENCH_obs.json artifacts rather than rendering a paper figure.
		"bench": func() error {
			return runBench(sc, *benchOut, *obsOut)
		},
		// cluster is likewise artifact-writing: standalone vs routed
		// 1/2/4-shard Find+Aggregate throughput into BENCH_cluster.json.
		"cluster": func() error {
			return runClusterBench(sc, *clusterOut)
		},
		// cache writes the result-cache hot-read speedup and miss-path
		// overhead into BENCH_cache.json.
		"cache": func() error {
			return runCacheBench(sc, *cacheOut)
		},
		// failover is the in-process SLO-gated chaos run: open-loop load
		// over a 2×2 cluster while a replica is killed and re-admitted
		// via log catch-up. Writes BENCH_failover.json; fails on a p99
		// or staleness-bound breach.
		"failover": func() error {
			return runFailoverBench(*failoverOut, *rate, *loadDur, *maxStale, *sloP99)
		},
		// planner writes the ordered-index-vs-full-scan range query
		// speedup into BENCH_planner.json, gated on -planner-min-speedup.
		"planner": func() error {
			return runPlannerBench(*plannerOut, *plannerMin)
		},
		// ingest writes the group-commit ingest throughput comparison
		// (sequential vs coalesced-concurrent vs batched durable writes)
		// into BENCH_ingest.json, gated on -ingest-min-speedup.
		"ingest": func() error {
			return runIngestBench(*ingestOut, *ingestMin)
		},
		// webload drives a running mpserve deployment (-url) with the
		// same open-loop mix over HTTP, gating on p99 and staleness.
		"webload": func() error {
			return runWebloadBench(*webloadOut, *urlFlag, *apiKey, *rate, *loadDur, *maxStale, *probeGroups, *sloP99)
		},
	}

	order := []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "mapreduce", "taskfarm", "fireworks", "weekstats"}
	names := order
	if *exp != "all" {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "mpbench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		names = []string{*exp}
	}
	for _, name := range names {
		fmt.Printf("==== %s ====\n", name)
		start := time.Now()
		if err := runners[name](); err != nil {
			fmt.Fprintf(os.Stderr, "mpbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("---- %s done in %v ----\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
