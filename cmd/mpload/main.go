// Command mpload runs the post-processing tier (§IV-C): it incrementally
// loads raw run logs from a staging directory into the tasks collection,
// rebuilds the materials collection with the MapReduce builder, and runs
// the standard validation & verification suite.
//
//	mpload -data ./mpdata -staging ./outcars -engine parallel
package main

import (
	"flag"
	"log"

	"matproj/internal/builder"
	"matproj/internal/datastore"
	"matproj/internal/dft"
)

func main() {
	dataDir := flag.String("data", "", "durable store directory (empty = in-memory)")
	staging := flag.String("staging", "", "staging directory of *.outcar files (optional)")
	engine := flag.String("engine", "parallel", "materials builder engine (builtin|parallel)")
	workers := flag.Int("workers", 0, "parallel engine workers (0 = GOMAXPROCS)")
	skipVV := flag.Bool("skip-vv", false, "skip validation & verification")
	stability := flag.Bool("stability", true, "annotate materials with hull stability")
	flag.Parse()

	store, err := datastore.Open(*dataDir)
	if err != nil {
		log.Fatalf("mpload: %v", err)
	}
	defer store.Close()

	if *staging != "" {
		loader := &builder.Loader{Store: store, Dir: *staging}
		res, err := loader.Run()
		if err != nil {
			log.Fatalf("mpload: load: %v", err)
		}
		log.Printf("load pass: %d loaded, %d skipped (already loaded), %d failed %v",
			res.Loaded, res.Skipped, len(res.Failed), res.Failed)
	}

	var eng builder.Engine
	switch *engine {
	case "builtin":
		eng = builder.EngineBuiltin
	case "parallel":
		eng = builder.EngineParallel
	default:
		log.Fatalf("mpload: unknown engine %q", *engine)
	}
	mb := &builder.MaterialsBuilder{Store: store, Engine: eng, Workers: *workers}
	n, err := mb.Build()
	if err != nil {
		log.Fatalf("mpload: build: %v", err)
	}
	log.Printf("materials collection rebuilt: %d materials", n)

	if *stability {
		sb := &builder.StabilityBuilder{Store: store, RefEnergy: dft.ElementalEnergy}
		annotated, skipped, err := sb.Build()
		if err != nil {
			log.Fatalf("mpload: stability: %v", err)
		}
		log.Printf("stability annotation: %d materials, %d skipped", annotated, skipped)
	}

	if !*skipVV {
		runner := &builder.Runner{Store: store, Workers: *workers}
		violations, err := runner.RunChecks(builder.StandardChecks(store))
		if err != nil {
			log.Fatalf("mpload: v&v: %v", err)
		}
		if len(violations) == 0 {
			log.Printf("V&V: clean")
		} else {
			for _, v := range violations {
				log.Printf("V&V VIOLATION [%s] %s: %s", v.Check, v.Key, v.Message)
			}
			log.Fatalf("mpload: %d V&V violations", len(violations))
		}
	}
	if *dataDir != "" {
		if err := store.Snapshot(); err != nil {
			log.Fatalf("mpload: snapshot: %v", err)
		}
		log.Printf("snapshot written")
	}
}
