// Materials API: programmatic data access over HTTP (§III-D2, Fig. 4).
//
// Builds a small deployment, serves it with the real HTTP server, signs
// up through delegated third-party auth, and exercises the API the way
// an external analysis tool (the pymatgen role) would: the Fig. 4 energy
// URI, a chemical-system search, and the structured query endpoint.
//
//	go run ./examples/materials_api
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"matproj/internal/pipeline"
	"matproj/internal/restapi"
)

func main() {
	cfg := pipeline.DefaultConfig()
	cfg.NMaterials = 40
	d, err := pipeline.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	auth := restapi.NewAuth(d.Store)
	srv := httptest.NewServer(restapi.NewServer(d.Engine, auth, d.Store))
	defer srv.Close()
	fmt.Printf("Materials API serving %d materials at %s\n\n", d.Materials, srv.URL)

	// 1. Delegated signup: no password, just a trusted provider.
	resp, err := http.Post(srv.URL+"/auth/signup?provider=google&email=alice@example.com", "", nil)
	if err != nil {
		log.Fatal(err)
	}
	var signup struct {
		Response []struct {
			APIKey string `json:"api_key"`
		} `json:"response"`
	}
	decode(resp, &signup)
	key := signup.Response[0].APIKey
	fmt.Printf("signed up via Google, API key %s...\n\n", key[:10])

	get := func(path string) string {
		req, _ := http.NewRequest("GET", srv.URL+path, nil)
		req.Header.Set("X-API-KEY", key)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		defer r.Body.Close()
		body, _ := io.ReadAll(r.Body)
		return fmt.Sprintf("HTTP %d %s", r.StatusCode, truncate(string(body), 200))
	}

	// 2. The Fig. 4 URI (first formula in the corpus plays Fe2O3's role).
	first := firstFormula(d)
	fmt.Printf("GET /rest/v1/materials/%s/vasp/energy\n  %s\n\n", first, get("/rest/v1/materials/"+first+"/vasp/energy"))

	// 3. Chemical-system search.
	fmt.Printf("GET /rest/v1/materials/Li-O/vasp/band_gap\n  %s\n\n", get("/rest/v1/materials/Li-O/vasp/band_gap"))

	// 4. Derived properties.
	fmt.Printf("GET /rest/v1/batteries?ion=Li\n  %s\n\n", get("/rest/v1/batteries?ion=Li"))

	// 5. Structured query with criteria in the Mongo language.
	body := `{"criteria": {"band_gap": {"$gte": 2.0}}, "properties": ["formula", "band_gap"], "limit": 3}`
	req, _ := http.NewRequest("POST", srv.URL+"/rest/v1/query", strings.NewReader(body))
	req.Header.Set("X-API-KEY", key)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	raw, _ := io.ReadAll(r.Body)
	r.Body.Close()
	fmt.Printf("POST /rest/v1/query %s\n  HTTP %d %s\n", body, r.StatusCode, truncate(string(raw), 300))
}

func decode(resp *http.Response, v any) {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}

func firstFormula(d *pipeline.Deployment) string {
	m, err := d.Store.C("materials").FindOne(nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	return m.GetString("pretty_formula")
}

func truncate(s string, n int) string {
	s = strings.TrimSpace(s)
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
