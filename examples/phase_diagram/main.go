// Phase diagram from the Materials API: the §III-D3 "joint analysis of
// local and remote data" workflow. An external analysis tool signs up,
// pulls a chemical system from a running Materials API, combines it with
// local elemental references, builds a convex-hull phase diagram, and
// reports which phases are synthesizable — exactly what pymatgen users
// did against the production API.
//
//	go run ./examples/phase_diagram
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"sort"

	"matproj/internal/analysis"
	"matproj/internal/dft"
	"matproj/internal/mpclient"
	"matproj/internal/pipeline"
	"matproj/internal/restapi"
)

func main() {
	// Stand up a deployment and its API ("the remote side").
	cfg := pipeline.DefaultConfig()
	cfg.NMaterials = 60
	d, err := pipeline.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(restapi.NewServer(d.Engine, restapi.NewAuth(d.Store), d.Store))
	defer srv.Close()
	fmt.Printf("Materials API serving %d materials\n", d.Materials)

	// The local analyst's side starts here: only the URL is shared.
	client, err := mpclient.Signup(srv.URL, "google", "analyst@example.com")
	if err != nil {
		log.Fatal(err)
	}

	// Pick the corpus's busiest chemical system to analyze.
	system := busiestSystem(client)
	fmt.Printf("analyzing the %v chemical system\n\n", system)

	entries, err := client.Entries(system, dft.ElementalEnergy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pulled %d entries from the API (elemental references synthesized locally)\n", len(entries))

	pd, err := analysis.NewPhaseDiagram(entries)
	if err != nil {
		log.Fatal(err)
	}
	type row struct {
		id      string
		formula string
		ef      float64
		above   float64
	}
	var rows []row
	for _, e := range entries {
		above, err := pd.EAboveHull(e)
		if err != nil {
			continue
		}
		rows = append(rows, row{
			id:      e.ID,
			formula: e.Composition.ReducedFormula(),
			ef:      pd.FormationEnergyPerAtom(e),
			above:   above,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].above < rows[j].above })

	fmt.Printf("\n%-14s %-12s %14s %16s %s\n", "entry", "formula", "Ef (eV/atom)", "E>hull (eV/atom)", "verdict")
	for _, r := range rows {
		verdict := "unstable"
		switch {
		case r.above < 1e-8:
			verdict = "STABLE (on the hull)"
		case r.above < 0.05:
			verdict = "metastable, maybe synthesizable"
		}
		fmt.Printf("%-14s %-12s %14.3f %16.3f %s\n", r.id, r.formula, r.ef, r.above, verdict)
	}
}

// busiestSystem finds the chemical system with the most materials: a
// server-side aggregation projects each material's element set, and the
// client groups by the full system.
func busiestSystem(c *mpclient.Client) []string {
	rows, err := c.Query(nil, []string{"elements"}, 0)
	if err != nil || len(rows) == 0 {
		log.Fatal(err)
	}
	counts := map[string]int{}
	members := map[string][]string{}
	for _, r := range rows {
		var sys []string
		for _, e := range r.GetArray("elements") {
			if s, ok := e.(string); ok {
				sys = append(sys, s)
			}
		}
		sort.Strings(sys)
		key := fmt.Sprint(sys)
		counts[key]++
		members[key] = sys
	}
	bestKey, best := "", 0
	for k, n := range counts {
		if n > best || (n == best && k < bestKey) {
			bestKey, best = k, n
		}
	}
	return members[bestKey]
}
