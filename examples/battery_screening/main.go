// Battery screening: the paper's motivating application (Fig. 1).
//
// Generates synthetic battery-framework crystals, computes lithiated and
// delithiated energies with the DFT simulator, evaluates each couple's
// voltage and gravimetric capacity, and prints the screen alongside the
// experimentally known cathodes — the candidates broaden the property
// envelope beyond the known-materials band, which is the whole point of
// high-throughput screening.
//
//	go run ./examples/battery_screening
package main

import (
	"fmt"
	"log"
	"sort"

	"matproj/internal/analysis"
	"matproj/internal/pipeline"
)

func main() {
	candidates, err := pipeline.BatteryScreen(2012, 60)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].SpecificEnergy > candidates[j].SpecificEnergy
	})

	fmt.Printf("screened %d candidate electrodes\n\n", len(candidates))
	fmt.Printf("top 10 by specific energy:\n")
	fmt.Printf("%-16s %-4s %8s %12s %12s\n", "formula", "ion", "V (V)", "C (mAh/g)", "E (Wh/kg)")
	for i, c := range candidates {
		if i >= 10 {
			break
		}
		fmt.Printf("%-16s %-4s %8.2f %12.1f %12.1f\n", c.Formula, c.Ion, c.Voltage, c.Capacity, c.SpecificEnergy)
	}

	known := analysis.KnownElectrodes()
	fmt.Printf("\nknown cathodes for reference:\n")
	for _, k := range known {
		fmt.Printf("%-16s %-4s %8.2f %12.1f %12.1f\n", k.Formula, k.Ion, k.Voltage, k.Capacity, k.SpecificEnergy)
	}

	// How many candidates escape the known band?
	outside := 0
	for _, c := range candidates {
		if c.Voltage < 2.5 || c.Voltage > 5 || c.Capacity < 100 || c.Capacity > 200 {
			outside++
		}
	}
	fmt.Printf("\n%d of %d candidates fall outside the known-materials property band\n", outside, len(candidates))
	fmt.Println("(compare Fig. 1: screening reveals chemistries beyond the narrow known range)")
}
