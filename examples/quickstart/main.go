// Quickstart: the document store in five minutes.
//
// Demonstrates the core datastore API the whole system is built on:
// collections, Mongo-style queries (including the exact job-selection
// query from the paper), atomic updates, find-and-modify as a task-queue
// primitive, indexes, and the built-in MapReduce.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

func main() {
	store := datastore.MustOpenMemory()
	crystals := store.C("crystals")

	// Insert a few crystal records. Documents are plain nested maps.
	rows := []string{
		`{"formula": "LiFePO4", "elements": ["Li", "Fe", "P", "O"], "nelectrons": 78, "state": "ready"}`,
		`{"formula": "LiCoO2",  "elements": ["Li", "Co", "O"],      "nelectrons": 46, "state": "ready"}`,
		`{"formula": "NaCl",    "elements": ["Cl", "Na"],           "nelectrons": 28, "state": "ready"}`,
		`{"formula": "Li2O",    "elements": ["Li", "O"],            "nelectrons": 14, "state": "ready"}`,
		`{"formula": "Fe2O3",   "elements": ["Fe", "O"],            "nelectrons": 76, "state": "ready"}`,
	}
	for _, r := range rows {
		if _, err := crystals.Insert(document.MustFromJSON(r)); err != nil {
			log.Fatal(err)
		}
	}
	crystals.EnsureIndex("elements")

	// The paper's §III-B2 example: "select jobs for crystals containing
	// both lithium and oxygen atoms with less than 200 electrons".
	filter := document.MustFromJSON(`{"elements": {"$all": ["Li", "O"]}, "nelectrons": {"$lte": 200}}`)
	matches, err := crystals.FindAll(filter, &datastore.FindOpts{Sort: []string{"nelectrons"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("crystals with Li and O, ≤200 electrons:")
	for _, m := range matches {
		fmt.Printf("  %-10s nelectrons=%v\n", m["formula"], m["nelectrons"])
	}

	// FindAndModify is the task-queue claim primitive: each call hands a
	// distinct "ready" document to a worker, atomically.
	claimed, err := crystals.FindAndModify(
		document.D{"state": "ready"},
		document.D{"$set": document.D{"state": "running", "worker": "w1"}},
		[]string{"nelectrons"}, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworker w1 claimed: %v (state now %v)\n", claimed["formula"], claimed["state"])

	// Atomic updates with Mongo operator syntax.
	if _, err := crystals.UpdateMany(
		document.D{"elements": "Li"},
		document.MustFromJSON(`{"$set": {"tags": ["battery"]}, "$inc": {"views": 1}}`)); err != nil {
		log.Fatal(err)
	}

	// Built-in MapReduce: count crystals per first element.
	counts, err := crystals.MapReduce(nil,
		func(d document.D, emit func(string, any)) {
			if els := d.GetArray("elements"); len(els) > 0 {
				emit(els[0].(string), int64(1))
			}
		},
		func(_ string, vs []any) any {
			var n int64
			for _, v := range vs {
				n += v.(int64)
			}
			return n
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncrystals per leading element:")
	for _, c := range counts {
		fmt.Printf("  %-4v %v\n", c["_id"], c["value"])
	}

	st := store.Stats()
	fmt.Printf("\nstore: %d collections, %d documents, ~%d bytes\n", st.Collections, st.Documents, st.Bytes)
}
