// Sandbox lifecycle: the envisioned discovery workflow of Fig. 3.
//
// A user takes an idea (a) through candidate MPS records (b), the
// workflow engine (c), a private sandbox shared with a collaborator (d),
// stability analysis (e), and public release with annotations (f).
//
//	go run ./examples/sandbox_lifecycle
package main

import (
	"fmt"
	"log"
	"time"

	"matproj/internal/datastore"
	"matproj/internal/dft"
	"matproj/internal/document"
	"matproj/internal/fireworks"
	"matproj/internal/hpc"
	"matproj/internal/icsd"
	"matproj/internal/sandbox"
)

func main() {
	store := datastore.MustOpenMemory()
	pad := fireworks.NewLaunchPad(store, 5)
	fireworks.RegisterVASP(pad)
	sb := sandbox.New(store, "materials")

	// (a) the idea: new sodium battery frameworks.
	fmt.Println("(a) idea: screen Na-bearing frameworks for cathodes")

	// (b) candidates serialized as MPS records.
	recs := icsd.GenerateBatteryFrameworks(99, 5)
	mps := store.C("mps")
	var fws []fireworks.Firework
	for i, r := range recs {
		r.ID = fmt.Sprintf("mps-user-%03d", i)
		r.Source = "user"
		r.CreatedBy = "alice"
		mdoc := r.ToDoc()
		if _, err := mps.Insert(mdoc); err != nil {
			log.Fatal(err)
		}
		fws = append(fws, fireworks.NewVASPFirework(mdoc, "relax", dft.DefaultParams(), 12*time.Hour))
	}
	fmt.Printf("(b) %d candidate crystals serialized to MPS records\n", len(recs))

	// (c) computation through FireWorks on the cluster.
	if _, err := pad.AddWorkflow(fws); err != nil {
		log.Fatal(err)
	}
	cluster := hpc.NewCluster(4, 0, hpc.Policy{})
	if _, err := fireworks.DriveCluster(pad, fireworks.NewVASPAssembler(store), cluster,
		"alice", 2, 48*time.Hour, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(c) workflow consumed %v of virtual compute\n", cluster.Now().Round(time.Minute))

	// (d) results into a private sandbox; invite a collaborator.
	sbID, err := sb.Create("alice-na-cathodes", "alice")
	if err != nil {
		log.Fatal(err)
	}
	if err := sb.AddCollaborator(sbID, "alice", "bob"); err != nil {
		log.Fatal(err)
	}
	var docIDs []string
	for _, r := range recs {
		task, err := store.C("tasks").FindOne(
			document.D{"result.mps_id": r.ID, "state": "successful"}, nil)
		if err != nil {
			continue
		}
		id, err := sb.Submit(sbID, "alice", document.D{
			"pretty_formula": task.GetString("result.formula"),
			"final_energy":   task.GetDoc("result")["final_energy"],
			"band_gap":       task.GetDoc("result")["bandgap"],
		})
		if err != nil {
			log.Fatal(err)
		}
		docIDs = append(docIDs, id)
	}
	fmt.Printf("(d) %d results in sandbox %s, visible to alice and bob only\n", len(docIDs), sbID)
	if _, err := sb.List(sbID, "eve"); err != nil {
		fmt.Printf("    eve is denied: %v\n", err)
	}

	// (e) analysis: collaborator checks which results look synthesizable.
	docs, err := sb.List(sbID, "bob")
	if err != nil {
		log.Fatal(err)
	}
	kept := docIDs[:0]
	for i, d := range docs {
		if e, ok := d.GetFloat("final_energy"); ok && e < 0 {
			kept = append(kept, docIDs[i])
		}
	}
	fmt.Printf("(e) bob's analysis keeps %d/%d bound compounds\n", len(kept), len(docs))

	// (f) public release plus a community annotation.
	released := 0
	var firstPublic string
	for _, id := range kept {
		pubID, err := sb.Release(sbID, "alice", id)
		if err != nil {
			log.Fatal(err)
		}
		if firstPublic == "" {
			firstPublic = pubID
		}
		released++
	}
	fmt.Printf("(f) %d materials released to the public core database\n", released)
	if firstPublic != "" {
		if _, err := sb.Annotate(firstPublic, "bob", "promising — compare to NaCoO2 layered phases"); err != nil {
			log.Fatal(err)
		}
		notes, _ := sb.Annotations(firstPublic)
		fmt.Printf("    public annotation on %s: %q\n", firstPublic, notes[0].GetString("text"))
	}
	n, _ := store.C("materials").Count(nil)
	fmt.Printf("\ncore database now holds %d public materials\n", n)
}
