// Workflow pipeline: FireWorks driving simulated VASP on a simulated
// HPC cluster, end to end.
//
// Shows the four §III-C3 features working: re-runs after walltime kills,
// detours after ZBRENT errors, duplicate detection via binders, and
// iterative non-convergence recovery — then builds the materials
// collection out of the tasks and prints what happened.
//
//	go run ./examples/workflow_pipeline
package main

import (
	"fmt"
	"log"
	"time"

	"matproj/internal/builder"
	"matproj/internal/datastore"
	"matproj/internal/dft"
	"matproj/internal/document"
	"matproj/internal/fireworks"
	"matproj/internal/hpc"
	"matproj/internal/icsd"
)

func main() {
	store := datastore.MustOpenMemory()
	pad := fireworks.NewLaunchPad(store, 5)
	fireworks.RegisterVASP(pad)

	// Load a duplicate-rich synthetic ICSD batch and make one relaxation
	// firework per record.
	mps := store.C("mps")
	recs := icsd.Generate(icsd.Config{Seed: 7, DuplicateRate: 0.25}, 50)
	var fws []fireworks.Firework
	for _, r := range recs {
		mdoc := r.ToDoc()
		if _, err := mps.Insert(mdoc); err != nil {
			log.Fatal(err)
		}
		fws = append(fws, fireworks.NewVASPFirework(mdoc, "relax", dft.DefaultParams(), 4*time.Hour))
	}
	wfID, err := pad.AddWorkflow(fws)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow %s: %d fireworks over %d ICSD records\n", wfID, len(fws), len(recs))

	// Execute with deliberately tight 45-minute batch jobs so some runs
	// die at the walltime and must be re-run.
	cluster := hpc.NewCluster(8, 4, hpc.Policy{WorkerOutbound: false, ProxyHost: "mongoproxy01"})
	jobs, err := fireworks.DriveCluster(pad, fireworks.NewVASPAssembler(store), cluster,
		"alice", 4, 45*time.Minute, nil)
	if err != nil {
		log.Fatal(err)
	}
	st := cluster.Stats()
	fmt.Printf("\ncluster: %d batch jobs, %v virtual makespan\n", jobs, st.Makespan.Round(time.Minute))
	fmt.Printf("tasks: %d completed on-node, %d killed at walltime\n", st.TasksDone, st.TasksKilled)

	// What did the recovery machinery do?
	engines := store.C(fireworks.EnginesCollection)
	count := func(f document.D) int {
		n, err := engines.Count(f)
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	fmt.Printf("\nFireWorks feature accounting:\n")
	fmt.Printf("  completed : %d\n", count(document.D{"state": string(fireworks.StateCompleted)}))
	fmt.Printf("  re-run    : %d fireworks needed at least one rerun\n", count(document.D{"reruns": document.D{"$gte": 1}}))
	fmt.Printf("  detours   : %d (ZBRENT, POTIM lowered)\n", count(document.D{"detour_of": document.D{"$exists": true}}))
	fmt.Printf("  duplicates: %d completed by pointer, no CPU spent\n", count(document.D{"output.duplicate_of": document.D{"$exists": true}}))
	fmt.Printf("  defused   : %d need manual intervention\n", count(document.D{"state": string(fireworks.StateDefused)}))

	// Post-process: tasks → materials.
	mb := &builder.MaterialsBuilder{Store: store, Engine: builder.EngineParallel}
	n, err := mb.Build()
	if err != nil {
		log.Fatal(err)
	}
	nTasks, _ := store.C("tasks").Count(nil)
	fmt.Printf("\nbuilder: %d tasks reduced to %d materials (dedup + best-energy pick)\n", nTasks, n)

	// And validate.
	runner := &builder.Runner{Store: store}
	violations, err := runner.RunChecks(builder.StandardChecks(store))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("V&V: %d violations\n", len(violations))
}
