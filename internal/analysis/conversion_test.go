package analysis

import (
	"math"
	"testing"

	"matproj/internal/crystal"
	"matproj/internal/dft"
)

func TestConversionElectrodeFeO(t *testing.T) {
	// FeO + 2 Li → Fe + Li2O with the shared model energy.
	host := crystal.MustParseFormula("FeO")
	c, err := ConversionElectrode(host, "Li", dft.CompositionEnergy, dft.ElementalEnergy("Li"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Voltage <= 0 || c.Voltage > 5 {
		t.Errorf("voltage = %v", c.Voltage)
	}
	// FeO conversion: 2 Li per 71.8 g/mol → ~746 mAh/g theoretical.
	want := 2 * 26801.4 / host.Weight()
	if math.Abs(c.Capacity-want) > 1e-6 {
		t.Errorf("capacity = %v, want %v", c.Capacity, want)
	}
	if c.Capacity < 500 {
		t.Errorf("conversion capacity %v suspiciously low", c.Capacity)
	}
	if c.Ion != "Li" || c.Formula != "FeO" {
		t.Errorf("candidate = %+v", c)
	}
}

func TestConversionBeatsIntercalationOnCapacity(t *testing.T) {
	// The defining property of conversion chemistry: much higher
	// gravimetric capacity than intercalation (FeO ~746 vs LiFePO4 ~170).
	host := crystal.MustParseFormula("FeO")
	conv, err := ConversionElectrode(host, "Li", dft.CompositionEnergy, dft.ElementalEnergy("Li"))
	if err != nil {
		t.Fatal(err)
	}
	if conv.Capacity < 3*170 {
		t.Errorf("conversion capacity %v should dwarf intercalation ~170", conv.Capacity)
	}
}

func TestConversionElectrodeErrors(t *testing.T) {
	e := dft.CompositionEnergy
	li := dft.ElementalEnergy("Li")
	if _, err := ConversionElectrode(crystal.MustParseFormula("LiFeO2"), "Li", e, li); err == nil {
		t.Error("lithiated host accepted")
	}
	if _, err := ConversionElectrode(crystal.MustParseFormula("Fe"), "Li", e, li); err == nil {
		t.Error("elemental host accepted")
	}
	if _, err := ConversionElectrode(crystal.MustParseFormula("FeNi"), "Li", e, li); err == nil {
		t.Error("anion-free host accepted")
	}
	if _, err := ConversionElectrode(crystal.MustParseFormula("FeO"), "Li", nil, li); err == nil {
		t.Error("nil energy fn accepted")
	}
}

func TestScreenConversion(t *testing.T) {
	hosts := []crystal.Composition{
		crystal.MustParseFormula("FeO"),
		crystal.MustParseFormula("CoO"),
		crystal.MustParseFormula("NiO"),
		crystal.MustParseFormula("Fe2O3"),
		crystal.MustParseFormula("FeF2"),
		crystal.MustParseFormula("Fe"),     // rejected: no anion
		crystal.MustParseFormula("LiFeO2"), // rejected: has Li
	}
	out := ScreenConversion(hosts, "Li", dft.CompositionEnergy, dft.ElementalEnergy("Li"))
	if len(out) < 3 {
		t.Fatalf("survivors = %d", len(out))
	}
	for _, c := range out {
		if c.Voltage <= 0 || c.Voltage > 4.5 {
			t.Errorf("%s voltage %v outside window", c.Formula, c.Voltage)
		}
		if c.ID == "" {
			t.Error("missing id")
		}
	}
	// Fluoride conversions run at higher voltage than oxides in the model
	// (F is more electronegative).
	var vF, vO float64
	for _, c := range out {
		if c.Formula == "FeF2" {
			vF = c.Voltage
		}
		if c.Formula == "FeO" {
			vO = c.Voltage
		}
	}
	if vF != 0 && vO != 0 && vF <= vO {
		t.Errorf("FeF2 (%v V) should exceed FeO (%v V)", vF, vO)
	}
}
