// Package analysis is the open analytics platform of the reproduction —
// the role pymatgen plays in the paper (§III-D3): a materials object
// model with "a well-tested set of structure and thermodynamic analysis
// tools". It provides convex-hull phase diagrams (stability analysis),
// the battery electrode analyzer behind Fig. 1, X-ray diffraction
// patterns, and band-structure document forms.
package analysis

import (
	"fmt"
	"math"
	"sort"

	"matproj/internal/crystal"
)

// Entry is one point on a phase diagram: a composition with its computed
// total energy (eV per formula unit as given).
type Entry struct {
	ID          string
	Composition crystal.Composition
	Energy      float64 // total energy of the given composition
}

// EnergyPerAtom returns the entry's energy per atom.
func (e Entry) EnergyPerAtom() float64 {
	n := e.Composition.NumAtoms()
	if n == 0 {
		return 0
	}
	return e.Energy / n
}

// PhaseDiagram computes thermodynamic stability over a chemical system
// via the convex hull of formation energies, the analysis "to determine
// the stability and ... synthesis potential of the new materials" in the
// paper's Fig. 3 narrative.
type PhaseDiagram struct {
	Elements []string
	entries  []Entry
	// refs holds the elemental reference energy per atom for each element.
	refs map[string]float64
	// ef caches formation energies per atom, parallel to entries.
	ef []float64
}

// NewPhaseDiagram builds a phase diagram from entries. Every element
// appearing in any entry must have at least one pure-element entry to
// serve as its reference; the lowest-energy-per-atom elemental entry is
// chosen.
func NewPhaseDiagram(entries []Entry) (*PhaseDiagram, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("analysis: no entries")
	}
	elemSet := map[string]bool{}
	refs := map[string]float64{}
	hasRef := map[string]bool{}
	for _, e := range entries {
		syms := e.Composition.Elements()
		if len(syms) == 0 {
			return nil, fmt.Errorf("analysis: entry %q has empty composition", e.ID)
		}
		for _, s := range syms {
			elemSet[s] = true
		}
		if len(syms) == 1 {
			epa := e.EnergyPerAtom()
			if !hasRef[syms[0]] || epa < refs[syms[0]] {
				refs[syms[0]] = epa
				hasRef[syms[0]] = true
			}
		}
	}
	var elems []string
	for s := range elemSet {
		if !hasRef[s] {
			return nil, fmt.Errorf("analysis: no elemental reference entry for %s", s)
		}
		elems = append(elems, s)
	}
	sort.Strings(elems)
	pd := &PhaseDiagram{Elements: elems, entries: entries, refs: refs}
	pd.ef = make([]float64, len(entries))
	for i, e := range entries {
		pd.ef[i] = pd.FormationEnergyPerAtom(e)
	}
	return pd, nil
}

// FormationEnergyPerAtom is the entry's energy per atom minus the
// composition-weighted elemental references. Stable compounds are
// negative; elemental references are zero by construction.
func (pd *PhaseDiagram) FormationEnergyPerAtom(e Entry) float64 {
	n := e.Composition.NumAtoms()
	if n == 0 {
		return 0
	}
	ref := 0.0
	for sym, amt := range e.Composition {
		ref += pd.refs[sym] * amt
	}
	return (e.Energy - ref) / n
}

// HullEnergyPerAtom returns the convex-hull (lower envelope) formation
// energy at the given composition: the minimum composition-weighted
// mixture of entries that reproduces it. The LP is solved exactly by
// enumerating basic feasible solutions (subsets of at most D entries,
// where D is the number of elements), which is exact for the small
// chemical systems materials screening works with.
func (pd *PhaseDiagram) HullEnergyPerAtom(comp crystal.Composition) (float64, error) {
	frac := comp.Fractional()
	target := make([]float64, len(pd.Elements))
	for i, el := range pd.Elements {
		target[i] = frac[el]
	}
	for el := range frac {
		known := false
		for _, pe := range pd.Elements {
			if pe == el {
				known = true
			}
		}
		if !known {
			return 0, fmt.Errorf("analysis: composition element %s outside phase diagram system %v", el, pd.Elements)
		}
	}
	// Candidate vectors: each entry's fractional composition.
	cands := make([]cand, len(pd.entries))
	for i, e := range pd.entries {
		f := e.Composition.Fractional()
		x := make([]float64, len(pd.Elements))
		for j, el := range pd.Elements {
			x[j] = f[el]
		}
		cands[i] = cand{x: x, ef: pd.ef[i]}
	}
	d := len(pd.Elements)
	best := math.Inf(1)
	var rec func(start int, chosen []int)
	rec = func(start int, chosen []int) {
		if len(chosen) > 0 {
			if v, ok := mixValue(cands, chosen, target); ok && v < best {
				best = v
			}
		}
		if len(chosen) == d {
			return
		}
		for i := start; i < len(cands); i++ {
			rec(i+1, append(chosen, i))
		}
	}
	rec(0, nil)
	if math.IsInf(best, 1) {
		return 0, fmt.Errorf("analysis: no feasible decomposition for %s", comp.Formula())
	}
	return best, nil
}

// cand is one hull candidate: an entry's fractional composition vector
// and formation energy per atom.
type cand struct {
	x  []float64
	ef float64
}

// mixValue solves for nonnegative weights of the chosen candidates that
// reproduce the target composition exactly, returning the mixture's
// formation energy. ok is false when infeasible.
func mixValue(cands []cand, chosen []int, target []float64) (float64, bool) {
	m := len(chosen)
	d := len(target)
	// Least squares via normal equations: A (d×m) λ = target.
	ata := make([][]float64, m)
	atb := make([]float64, m)
	for i := 0; i < m; i++ {
		ata[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			var s float64
			for k := 0; k < d; k++ {
				s += cands[chosen[i]].x[k] * cands[chosen[j]].x[k]
			}
			ata[i][j] = s
		}
		var s float64
		for k := 0; k < d; k++ {
			s += cands[chosen[i]].x[k] * target[k]
		}
		atb[i] = s
	}
	lambda, ok := solveLinear(ata, atb)
	if !ok {
		return 0, false
	}
	const eps = 1e-9
	var value float64
	residual := make([]float64, d)
	copy(residual, target)
	for i, li := range lambda {
		if li < -eps {
			return 0, false
		}
		if li < 0 {
			li = 0
		}
		value += li * cands[chosen[i]].ef
		for k := 0; k < d; k++ {
			residual[k] -= li * cands[chosen[i]].x[k]
		}
	}
	for _, r := range residual {
		if math.Abs(r) > 1e-7 {
			return 0, false
		}
	}
	return value, true
}

// solveLinear solves a small symmetric system by Gaussian elimination
// with partial pivoting. ok is false for singular systems.
func solveLinear(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64{}, a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m[i][n] / m[i][i]
	}
	return out, true
}

// EAboveHull is the entry's formation energy above the hull (eV/atom):
// zero for stable phases, positive for metastable/unstable ones.
func (pd *PhaseDiagram) EAboveHull(e Entry) (float64, error) {
	hull, err := pd.HullEnergyPerAtom(e.Composition)
	if err != nil {
		return 0, err
	}
	d := pd.FormationEnergyPerAtom(e) - hull
	if d < 0 && d > -1e-9 {
		d = 0
	}
	return d, nil
}

// StableEntries returns the entries on the hull (e_above_hull ≈ 0).
func (pd *PhaseDiagram) StableEntries() ([]Entry, error) {
	var out []Entry
	for _, e := range pd.entries {
		above, err := pd.EAboveHull(e)
		if err != nil {
			return nil, err
		}
		if above < 1e-8 {
			out = append(out, e)
		}
	}
	return out, nil
}
