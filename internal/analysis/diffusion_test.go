package analysis

import (
	"math"
	"testing"

	"matproj/internal/crystal"
)

// frameworkWithLi builds a cubic cell with Li at given fractional spots
// and an O framework.
func frameworkWithLi(a float64, li []crystal.Vec3, o []crystal.Vec3) *crystal.Structure {
	st := &crystal.Structure{Lattice: crystal.CubicLattice(a)}
	for _, f := range li {
		st.Sites = append(st.Sites, crystal.Site{Species: "Li", Frac: f})
	}
	for _, f := range o {
		st.Sites = append(st.Sites, crystal.Site{Species: "O", Frac: f})
	}
	return st
}

func TestDiffusionBarrierBasics(t *testing.T) {
	st := frameworkWithLi(8,
		[]crystal.Vec3{{0, 0, 0}, {0.5, 0, 0}},
		[]crystal.Vec3{{0.25, 0.3, 0}, {0.75, 0.3, 0}})
	hop, err := DiffusionBarrier(st, "Li")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hop.HopDistance-4.0) > 1e-9 {
		t.Errorf("hop = %v, want 4.0", hop.HopDistance)
	}
	// Midpoint (0.25, 0, 0); nearest O at (0.25, 0.3, 0) → 2.4 Å.
	if math.Abs(hop.Bottleneck-2.4) > 1e-9 {
		t.Errorf("bottleneck = %v, want 2.4", hop.Bottleneck)
	}
	if hop.Barrier < 0.05 || hop.Barrier > 3 {
		t.Errorf("barrier = %v outside clamp", hop.Barrier)
	}
	if hop.Ion != "Li" {
		t.Errorf("ion = %s", hop.Ion)
	}
}

func TestTighterBottleneckRaisesBarrier(t *testing.T) {
	open := frameworkWithLi(8,
		[]crystal.Vec3{{0, 0, 0}, {0.5, 0, 0}},
		[]crystal.Vec3{{0.25, 0.35, 0}})
	tight := frameworkWithLi(8,
		[]crystal.Vec3{{0, 0, 0}, {0.5, 0, 0}},
		[]crystal.Vec3{{0.25, 0.12, 0}})
	ho, err := DiffusionBarrier(open, "Li")
	if err != nil {
		t.Fatal(err)
	}
	ht, err := DiffusionBarrier(tight, "Li")
	if err != nil {
		t.Fatal(err)
	}
	if ht.Barrier <= ho.Barrier {
		t.Errorf("tight barrier %v <= open %v", ht.Barrier, ho.Barrier)
	}
}

func TestSingleIonHopsToPeriodicImage(t *testing.T) {
	st := frameworkWithLi(5,
		[]crystal.Vec3{{0, 0, 0}},
		[]crystal.Vec3{{0.5, 0.5, 0.5}})
	hop, err := DiffusionBarrier(st, "Li")
	if err != nil {
		t.Fatal(err)
	}
	// The shortest self-image hop in a 5 Å cube is 5 Å.
	if math.Abs(hop.HopDistance-5) > 1e-9 {
		t.Errorf("hop = %v", hop.HopDistance)
	}
}

func TestDiffusionBarrierErrors(t *testing.T) {
	st := frameworkWithLi(5, nil, []crystal.Vec3{{0, 0, 0}})
	if _, err := DiffusionBarrier(st, "Li"); err == nil {
		t.Error("no-ion structure accepted")
	}
	pure := frameworkWithLi(5, []crystal.Vec3{{0, 0, 0}}, nil)
	if _, err := DiffusionBarrier(pure, "Li"); err == nil {
		t.Error("pure-ion structure accepted")
	}
	if _, err := DiffusionBarrier(st, "Zz"); err == nil {
		t.Error("unknown ion accepted")
	}
}

func TestDiffusivityArrhenius(t *testing.T) {
	d300 := Diffusivity(0.3, 300)
	d600 := Diffusivity(0.3, 600)
	if d600 <= d300 {
		t.Error("diffusivity must increase with temperature")
	}
	dHigh := Diffusivity(0.6, 300)
	if dHigh >= d300 {
		t.Error("diffusivity must decrease with barrier")
	}
	// Physical magnitude at 0.3 eV / 300 K: ~1e-3 * exp(-11.6) ≈ 9e-9.
	if d300 < 1e-10 || d300 > 1e-6 {
		t.Errorf("D(0.3 eV, 300K) = %g outside sane range", d300)
	}
	if Diffusivity(0.3, 0) != 0 || Diffusivity(0.3, -5) != 0 {
		t.Error("non-positive temperature should yield 0")
	}
}

func TestBarrierOnGeneratedFramework(t *testing.T) {
	// Real pipeline structures (olivine-like) should produce a finite,
	// physical barrier.
	st := &crystal.Structure{Lattice: crystal.CubicLattice(10)}
	st.Sites = []crystal.Site{
		{Species: "Li", Frac: crystal.Vec3{0, 0, 0}},
		{Species: "Fe", Frac: crystal.Vec3{0.28, 0.25, 0.98}},
		{Species: "P", Frac: crystal.Vec3{0.09, 0.25, 0.42}},
		{Species: "O", Frac: crystal.Vec3{0.10, 0.25, 0.74}},
		{Species: "O", Frac: crystal.Vec3{0.46, 0.25, 0.21}},
	}
	hop, err := DiffusionBarrier(st, "Li")
	if err != nil {
		t.Fatal(err)
	}
	if hop.Barrier <= 0 || hop.Barrier > 3 {
		t.Errorf("barrier = %v", hop.Barrier)
	}
	if Diffusivity(hop.Barrier, 300) <= 0 {
		t.Error("zero diffusivity")
	}
}
