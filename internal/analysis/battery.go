package analysis

import (
	"fmt"
	"math"

	"matproj/internal/crystal"
)

// Battery electrode analysis: the calculation behind the paper's Fig. 1,
// which plots screened battery materials by predicted voltage and
// gravimetric capacity.

// faradayMAhPerMol converts moles of electrons to mAh (96485 C/mol ÷ 3.6).
const faradayMAhPerMol = 26801.4

// BatteryCandidate is one screened electrode couple.
type BatteryCandidate struct {
	ID             string
	Formula        string  // lithiated (discharged) formula
	HostFormula    string  // delithiated (charged) formula
	Ion            string  // working ion ("Li", "Na")
	Voltage        float64 // average voltage, V
	Capacity       float64 // gravimetric capacity, mAh/g of lithiated mass
	SpecificEnergy float64 // Wh/kg = V * capacity
	// Barrier is the working-ion migration barrier (eV); 0 when the
	// geometric screen was not run. Diffusivity is the corresponding
	// room-temperature coefficient (cm²/s).
	Barrier     float64
	Diffusivity float64
}

// EvaluateElectrode computes voltage and capacity for an intercalation
// couple. lith and host are the discharged and charged compositions of
// the SAME framework (host = lith minus working ions); eLith/eHost are
// their total energies and eIonPerAtom the bulk metal reference of the
// working ion.
//
//	V = -(E_lith - E_host - x·E_ion) / x     (x = ions transferred)
//	C = x·F / (3.6 · M_lith)                 (mAh/g)
func EvaluateElectrode(lith, host crystal.Composition, eLith, eHost float64, ion string, eIonPerAtom float64) (BatteryCandidate, error) {
	x := lith.Get(ion) - host.Get(ion)
	if x <= 0 {
		return BatteryCandidate{}, fmt.Errorf("analysis: no %s transferred between %s and %s", ion, lith.Formula(), host.Formula())
	}
	// Frameworks must match once the working ion is removed.
	if !lith.Remove(ion).Equal(host.Remove(ion)) {
		return BatteryCandidate{}, fmt.Errorf("analysis: %s and %s differ beyond the working ion", lith.Formula(), host.Formula())
	}
	voltage := -(eLith - eHost - x*eIonPerAtom) / x
	weight := lith.Weight()
	if weight <= 0 {
		return BatteryCandidate{}, fmt.Errorf("analysis: zero formula weight for %s", lith.Formula())
	}
	capacity := x * faradayMAhPerMol / weight
	return BatteryCandidate{
		Formula:        lith.ReducedFormula(),
		HostFormula:    host.ReducedFormula(),
		Ion:            ion,
		Voltage:        voltage,
		Capacity:       capacity,
		SpecificEnergy: voltage * capacity,
	}, nil
}

// WorkingIon picks the alkali working ion of a composition ("Li" or
// "Na"), or "" when none is present.
func WorkingIon(comp crystal.Composition) string {
	for _, ion := range []string{"Li", "Na"} {
		if comp.Contains(ion) {
			return ion
		}
	}
	return ""
}

// Screen evaluates a set of lithiated/host structure-energy pairs,
// dropping couples with unphysical voltages (outside (0, 6] V) — the
// screening filter applied before plotting Fig. 1.
type ElectrodeInput struct {
	ID          string
	Lithiated   crystal.Composition
	Host        crystal.Composition
	ELith       float64
	EHost       float64
	Ion         string
	EIonPerAtom float64
}

// Screen evaluates all inputs and keeps the physical ones.
func Screen(inputs []ElectrodeInput) []BatteryCandidate {
	var out []BatteryCandidate
	for _, in := range inputs {
		c, err := EvaluateElectrode(in.Lithiated, in.Host, in.ELith, in.EHost, in.Ion, in.EIonPerAtom)
		if err != nil {
			continue
		}
		c.ID = in.ID
		if c.Voltage <= 0 || c.Voltage > 6 || math.IsNaN(c.Voltage) {
			continue
		}
		out = append(out, c)
	}
	return out
}

// KnownElectrodes returns the experimentally established cathodes the
// paper's Fig. 1 marks as "known materials", occupying a comparatively
// narrow property band. Voltages/capacities are the accepted
// experimental values (V, mAh/g).
func KnownElectrodes() []BatteryCandidate {
	return []BatteryCandidate{
		{Formula: "LiCoO2", Ion: "Li", Voltage: 3.9, Capacity: 140, SpecificEnergy: 3.9 * 140},
		{Formula: "LiFePO4", Ion: "Li", Voltage: 3.45, Capacity: 170, SpecificEnergy: 3.45 * 170},
		{Formula: "LiMn2O4", Ion: "Li", Voltage: 4.1, Capacity: 120, SpecificEnergy: 4.1 * 120},
		{Formula: "LiNiO2", Ion: "Li", Voltage: 3.8, Capacity: 150, SpecificEnergy: 3.8 * 150},
		{Formula: "LiMnO2", Ion: "Li", Voltage: 3.0, Capacity: 190, SpecificEnergy: 3.0 * 190},
		{Formula: "LiNi0.5Mn1.5O4", Ion: "Li", Voltage: 4.7, Capacity: 135, SpecificEnergy: 4.7 * 135},
	}
}
