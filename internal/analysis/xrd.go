package analysis

import (
	"math"
	"sort"

	"matproj/internal/crystal"
)

// X-ray diffraction pattern calculation — one of the calculated property
// types the datastore stores and the Web UI visualizes ("pan and zoom
// real-time visualizations of bandstructures, diffraction patterns").

// CuKAlpha is the standard Cu Kα wavelength in Å.
const CuKAlpha = 1.5406

// Peak is one diffraction peak.
type Peak struct {
	TwoTheta  float64 // degrees
	Intensity float64 // normalized, max = 100
	HKL       [3]int
	DSpacing  float64 // Å
}

// XRDPattern computes the powder diffraction pattern of a structure for
// the given wavelength (Å), scanning Miller indices up to maxIndex.
// Peaks at the same angle merge; intensities use the kinematic structure
// factor with atomic form factors approximated by atomic number.
func XRDPattern(st *crystal.Structure, wavelength float64, maxIndex int) []Peak {
	if maxIndex < 1 {
		maxIndex = 1
	}
	type bucket struct {
		intensity float64
		hkl       [3]int
		d         float64
	}
	buckets := map[int]*bucket{} // keyed by rounded 2θ·100
	for h := -maxIndex; h <= maxIndex; h++ {
		for k := -maxIndex; k <= maxIndex; k++ {
			for l := -maxIndex; l <= maxIndex; l++ {
				if h == 0 && k == 0 && l == 0 {
					continue
				}
				d := st.Lattice.DSpacing(h, k, l)
				sinTheta := wavelength / (2 * d)
				if sinTheta > 1 || sinTheta <= 0 {
					continue // beyond the measurable range
				}
				theta := math.Asin(sinTheta)
				twoTheta := 2 * theta * 180 / math.Pi
				// Structure factor F = Σ f_j exp(2πi (h·x_j)).
				var re, im float64
				for _, site := range st.Sites {
					f := float64(crystal.MustElement(site.Species).Z)
					phase := 2 * math.Pi * (float64(h)*site.Frac[0] + float64(k)*site.Frac[1] + float64(l)*site.Frac[2])
					re += f * math.Cos(phase)
					im += f * math.Sin(phase)
				}
				inten := re*re + im*im
				if inten < 1e-6 {
					continue
				}
				// Lorentz-polarization factor.
				lp := (1 + math.Cos(2*theta)*math.Cos(2*theta)) /
					(math.Sin(theta) * math.Sin(theta) * math.Cos(theta))
				inten *= lp
				key := int(math.Round(twoTheta * 100))
				if b, ok := buckets[key]; ok {
					b.intensity += inten
				} else {
					buckets[key] = &bucket{intensity: inten, hkl: [3]int{h, k, l}, d: d}
				}
			}
		}
	}
	if len(buckets) == 0 {
		return nil
	}
	var peaks []Peak
	maxI := 0.0
	for key, b := range buckets {
		p := Peak{TwoTheta: float64(key) / 100, Intensity: b.intensity, HKL: b.hkl, DSpacing: b.d}
		peaks = append(peaks, p)
		if b.intensity > maxI {
			maxI = b.intensity
		}
	}
	for i := range peaks {
		peaks[i].Intensity = peaks[i].Intensity / maxI * 100
	}
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].TwoTheta < peaks[j].TwoTheta })
	// Drop noise peaks below 0.1% after normalization.
	out := peaks[:0]
	for _, p := range peaks {
		if p.Intensity >= 0.1 {
			out = append(out, p)
		}
	}
	return out
}
