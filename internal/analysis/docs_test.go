package analysis

import (
	"testing"

	"matproj/internal/dft"
	"matproj/internal/document"
)

func TestBandStructureDocRoundTrip(t *testing.T) {
	bs := &dft.BandStructure{
		Formula: "LiF",
		Gap:     4.2,
		KPath:   []string{"G", "X", "M"},
		Bands:   [][]float64{{-1, -0.5, -1}, {3.2, 3.5, 3.2}},
	}
	d := BandStructureToDoc("mat-1", bs)
	if d["material_id"] != "mat-1" || d["is_metal"] != false {
		t.Errorf("doc = %v", d)
	}
	if n, _ := d.GetInt("nbands"); n != 2 {
		t.Errorf("nbands = %d", n)
	}
	back, err := BandStructureFromDoc(d)
	if err != nil {
		t.Fatal(err)
	}
	if back.Formula != "LiF" || back.Gap != 4.2 {
		t.Errorf("back = %+v", back)
	}
	if len(back.Bands) != 2 || back.Bands[1][1] != 3.5 {
		t.Errorf("bands = %v", back.Bands)
	}
	if len(back.KPath) != 3 || back.KPath[2] != "M" {
		t.Errorf("kpath = %v", back.KPath)
	}
	// Metal flag.
	metal := BandStructureToDoc("mat-2", &dft.BandStructure{Formula: "Fe", Bands: [][]float64{{0}}})
	if metal["is_metal"] != true {
		t.Error("metal flag wrong")
	}
}

func TestBandStructureFromDocErrors(t *testing.T) {
	bad := []document.D{
		document.MustFromJSON(`{"formula": "x"}`),
		document.MustFromJSON(`{"formula": "x", "bands": [3]}`),
		document.MustFromJSON(`{"formula": "x", "bands": [["a"]]}`),
		document.MustFromJSON(`{"formula": "x", "bands": [[1]], "kpath": [3]}`),
	}
	for i, d := range bad {
		if _, err := BandStructureFromDoc(d); err == nil {
			t.Errorf("doc %d accepted", i)
		}
	}
}

func TestXRDToDoc(t *testing.T) {
	peaks := []Peak{
		{TwoTheta: 15.7, Intensity: 100, HKL: [3]int{1, 0, 0}, DSpacing: 5.64},
		{TwoTheta: 31.7, Intensity: 40, HKL: [3]int{2, 0, 0}, DSpacing: 2.82},
	}
	d := XRDToDoc("mat-1", "NaCl", CuKAlpha, peaks)
	if n, _ := d.GetInt("npeaks"); n != 2 {
		t.Errorf("npeaks = %d", n)
	}
	if v, _ := d.GetFloat("peaks.0.two_theta"); v != 15.7 {
		t.Errorf("first peak = %v", v)
	}
	if v, _ := d.GetFloat("peaks.1.hkl.0"); v != 2 {
		t.Errorf("hkl = %v", v)
	}
}

func TestBatteryToDoc(t *testing.T) {
	d := BatteryToDoc(BatteryCandidate{
		ID: "bat-1", Formula: "LiFePO4", HostFormula: "FePO4",
		Ion: "Li", Voltage: 3.45, Capacity: 170, SpecificEnergy: 586.5,
	})
	if d["working_ion"] != "Li" || d["voltage"] != 3.45 {
		t.Errorf("doc = %v", d)
	}
	if d["battery_id"] != "bat-1" {
		t.Error("id missing")
	}
	if v, _ := d.GetFloat("voltage_pairs.0.voltage"); v != 3.45 {
		t.Errorf("voltage pair = %v", v)
	}
	if d.GetString("voltage_pairs.0.formula_charge") != "FePO4" {
		t.Error("charge formula missing")
	}
}
