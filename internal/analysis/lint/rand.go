package lint

import "go/ast"

// SeededRand forbids the global math/rand source in internal/ packages.
// Chaos runs replay byte-for-byte only because every random decision
// comes from faults.Injector's (or a generator's) own seeded
// rand.New(rand.NewSource(seed)); the package-level functions draw from
// a shared, unseeded source and silently break that determinism.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "global math/rand draws from a shared unseeded source and breaks fault-replay determinism",
	Run:  runSeededRand,
}

// allowedRandFuncs construct seeded sources; everything else at package
// level draws from the global one.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func runSeededRand(p *Pass) {
	rel := p.Cfg.Rel(p.Pkg.Path)
	if !inScope(rel, p.Cfg.RandScope) {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := callee(p.Pkg.Info, call)
			if f == nil || f.Pkg() == nil {
				return true
			}
			path := f.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand are instance draws — fine.
			if recvType(f) != nil || allowedRandFuncs[f.Name()] {
				return true
			}
			p.Reportf(call.Pos(),
				"global rand.%s uses the shared unseeded source; draw from a rand.New(rand.NewSource(seed)) instance plumbed from the fault/config seed",
				f.Name())
			return true
		})
	}
}
