package lint

import (
	"go/ast"
	"go/types"
)

// DocAliasing guards the no-mutation-after-read invariant. The
// datastore, the query engine, and the wire codecs hand out
// document.D values that may alias live store state (and the read path
// is free to drop its defensive copies only while this holds): a
// document obtained from a read must not be written through — index
// assignment, delete, or a mutating document method — unless the
// variable was first rebound through Copy()/NormalizeDoc.
//
// The tracking is flow-ordered and per-function: read results taint
// their variables, range/index/GetDoc propagate taint, and any
// rebinding (including the sanctioned `d = d.Copy()`) clears it.
var DocAliasing = &Analyzer{
	Name: "docaliasing",
	Doc:  "documents returned by datastore/queryengine reads must be Copy()d before mutation",
	Run:  runDocAliasing,
}

// readMethodNames are the datastore/queryengine entry points that hand
// documents out.
var readMethodNames = map[string]bool{
	"Find": true, "FindAll": true, "FindOne": true, "FindID": true,
	"FindAndModify": true, "All": true, "Next": true, "Aggregate": true,
}

// mutatingDocMethods write through the receiver in place.
var mutatingDocMethods = map[string]bool{
	"Set": true, "Unset": true, "Merge": true,
}

func runDocAliasing(p *Pass) {
	rel := p.Cfg.Rel(p.Pkg.Path)
	if !inScope(rel, p.Cfg.AliasScope) {
		return
	}
	docPkg := p.Cfg.ModulePath + "/internal/document"
	readPkgs := map[string]bool{
		p.Cfg.ModulePath + "/internal/datastore":   true,
		p.Cfg.ModulePath + "/internal/queryengine": true,
	}
	funcBodies(p.Pkg, func(decl *ast.FuncDecl, _ *ast.File) {
		s := &aliasState{p: p, docPkg: docPkg, readPkgs: readPkgs, tainted: map[types.Object]bool{}}
		s.walkStmts(decl.Body.List)
	})
}

type aliasState struct {
	p        *Pass
	docPkg   string
	readPkgs map[string]bool
	tainted  map[types.Object]bool
}

func (s *aliasState) walkStmts(list []ast.Stmt) {
	for _, st := range list {
		s.walkStmt(st)
	}
}

func (s *aliasState) walkStmt(st ast.Stmt) {
	switch x := st.(type) {
	case *ast.AssignStmt:
		s.checkMutationLHS(x)
		for _, r := range x.Rhs {
			s.checkExpr(r)
		}
		s.updateTaint(x)
	case *ast.ExprStmt:
		s.checkExpr(x.X)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					s.checkExpr(v)
				}
				s.taintFromSpec(vs)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			s.checkExpr(r)
		}
	case *ast.IfStmt:
		if x.Init != nil {
			s.walkStmt(x.Init)
		}
		s.checkExpr(x.Cond)
		s.walkStmts(x.Body.List)
		if x.Else != nil {
			s.walkStmt(x.Else)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			s.walkStmt(x.Init)
		}
		if x.Cond != nil {
			s.checkExpr(x.Cond)
		}
		s.walkStmts(x.Body.List)
		if x.Post != nil {
			s.walkStmt(x.Post)
		}
	case *ast.RangeStmt:
		s.checkExpr(x.X)
		s.taintRangeVars(x)
		s.walkStmts(x.Body.List)
	case *ast.BlockStmt:
		s.walkStmts(x.List)
	case *ast.SwitchStmt:
		if x.Init != nil {
			s.walkStmt(x.Init)
		}
		if x.Tag != nil {
			s.checkExpr(x.Tag)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			s.walkStmt(x.Init)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				s.walkStmts(cc.Body)
			}
		}
	case *ast.DeferStmt:
		s.checkExpr(x.Call)
	case *ast.GoStmt:
		s.checkExpr(x.Call)
	case *ast.SendStmt:
		s.checkExpr(x.Value)
	case *ast.LabeledStmt:
		s.walkStmt(x.Stmt)
	}
}

// checkMutationLHS reports writes through an index expression whose
// base is a tainted document (d["k"] = v, docs[0]["k"] = v).
func (s *aliasState) checkMutationLHS(a *ast.AssignStmt) {
	for _, lhs := range a.Lhs {
		idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		if obj := s.taintedRoot(idx.X); obj != nil {
			s.p.Reportf(lhs.Pos(),
				"%s aliases a document returned by a datastore/queryengine read; Copy() it before assigning into it", obj.Name())
		}
	}
}

// checkExpr reports mutating calls (delete, Set/Unset/Merge) applied to
// tainted documents anywhere inside e, including closures.
func (s *aliasState) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 {
			if _, isBuiltin := objOf(s.p.Pkg.Info, id).(*types.Builtin); isBuiltin {
				if obj := s.taintedRoot(call.Args[0]); obj != nil {
					s.p.Reportf(call.Pos(),
						"delete on %s, which aliases a document returned by a read; Copy() it first", obj.Name())
				}
			}
			return true
		}
		f := callee(s.p.Pkg.Info, call)
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != s.docPkg || !mutatingDocMethods[f.Name()] {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj := s.taintedRoot(sel.X); obj != nil {
			s.p.Reportf(call.Pos(),
				"%s.%s mutates a document returned by a read in place; Copy() it first", obj.Name(), f.Name())
		}
		return true
	})
}

// taintedRoot unwraps parens/indexing/type assertions and reports the
// tainted object at the base, if any.
func (s *aliasState) taintedRoot(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.Ident:
			if obj := objOf(s.p.Pkg.Info, x); obj != nil && s.tainted[obj] {
				return obj
			}
			return nil
		case *ast.CallExpr:
			// A GetDoc chain keeps pointing into the same document.
			if f := callee(s.p.Pkg.Info, x); f != nil && f.Pkg() != nil &&
				f.Pkg().Path() == s.docPkg && f.Name() == "GetDoc" {
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
					e = sel.X
					continue
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// updateTaint applies the assignment's effect on the taint set.
func (s *aliasState) updateTaint(a *ast.AssignStmt) {
	if len(a.Rhs) == 1 && len(a.Lhs) >= 1 {
		s.bind(a.Lhs, a.Rhs[0])
		return
	}
	for i := range a.Lhs {
		if i < len(a.Rhs) {
			s.bind(a.Lhs[i:i+1], a.Rhs[i])
		}
	}
}

func (s *aliasState) taintFromSpec(vs *ast.ValueSpec) {
	if len(vs.Values) != 1 {
		return
	}
	var lhs []ast.Expr
	for _, n := range vs.Names {
		lhs = append(lhs, n)
	}
	s.bind(lhs, vs.Values[0])
}

// bind assigns rhs to the lhs identifiers, updating taint: sanitizing
// rebinds clear it, read calls and aliases of tainted values set it,
// anything else clears it.
func (s *aliasState) bind(lhs []ast.Expr, rhs ast.Expr) {
	taints := false
	if !s.sanitizes(rhs) {
		taints = s.isReadCall(rhs) || s.taintedRoot(rhs) != nil
	}
	for _, l := range lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := objOf(s.p.Pkg.Info, id)
		if obj == nil {
			continue
		}
		if taints && isDocType(obj.Type(), s.docPkg) {
			s.tainted[obj] = true
		} else {
			delete(s.tainted, obj)
		}
	}
}

// sanitizes reports whether the expression makes a fresh copy:
// a Copy() call or document.NormalizeDoc anywhere in the chain.
func (s *aliasState) sanitizes(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := callee(s.p.Pkg.Info, c); f != nil && f.Pkg() != nil && f.Pkg().Path() == s.docPkg {
			if f.Name() == "Copy" || f.Name() == "NormalizeDoc" || f.Name() == "FromJSON" {
				found = true
			}
		}
		return !found
	})
	return found
}

// isReadCall reports whether e is a call to a datastore/queryengine
// read returning documents.
func (s *aliasState) isReadCall(e ast.Expr) bool {
	c, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	f := callee(s.p.Pkg.Info, c)
	if f == nil || f.Pkg() == nil || !s.readPkgs[f.Pkg().Path()] || !readMethodNames[f.Name()] {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return isDocType(sig.Results().At(0).Type(), s.docPkg)
}

// isDocType reports whether t is document.D, []document.D, or a
// pointer/slice chain ending in it.
func isDocType(t types.Type, docPkg string) bool {
	switch x := t.(type) {
	case *types.Slice:
		return isDocType(x.Elem(), docPkg)
	case *types.Pointer:
		return isDocType(x.Elem(), docPkg)
	}
	return isNamed(t, docPkg, "D")
}

// taintRangeVars taints the value variable of `for _, d := range docs`
// when docs is tainted.
func (s *aliasState) taintRangeVars(r *ast.RangeStmt) {
	if s.taintedRoot(r.X) == nil {
		return
	}
	if r.Value == nil {
		return
	}
	id, ok := r.Value.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := objOf(s.p.Pkg.Info, id)
	if obj != nil && isDocType(obj.Type(), s.docPkg) {
		s.tainted[obj] = true
	}
}
