package lint

import (
	"go/ast"
	"go/types"
)

// GoroLeak demands a provable termination path for every go statement:
// the spawned body (and everything it statically calls) must not loop
// forever without an exit through a context Done channel, a channel
// some function in the program closes, a time.After, or a bounded
// loop. The router health loop, replog tails, and singleflight waiters
// are exactly the goroutines that outlive their owner when this fails —
// under the paper's workload a router restart per deploy, each leaked
// ticker goroutine holds its connection pool forever.
//
// A second rule guards the waiter side of singleflight-style fan-ins: a
// wg.Done() that is not deferred, with a dynamic call between the Add
// and the Done, leaks every waiter when that call panics.
//
// Soundness boundary: a conditional escape (return under an if) is
// assumed reachable — the analyzer proves the absence of any exit, not
// the liveness of one. Dynamic go targets cannot be analyzed and are
// reported as unprovable; prove them at the call site or suppress with
// a reason.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every go statement needs a provable termination path (context, closed channel, bounded loop)",
	Run:  runGoroLeak,
}

func runGoroLeak(p *Pass) {
	rel := p.Cfg.Rel(p.Pkg.Path)
	if !inScope(rel, p.Cfg.GoroScope) {
		return
	}
	prog := p.Prog
	prog.ensure()
	for _, ff := range prog.factsFor(p.Pkg) {
		for _, ev := range ff.events {
			if ev.kind != evGo {
				continue
			}
			if lit, ok := ev.call.Fun.(*ast.FuncLit); ok {
				if at, bad := prog.litForever(p.Pkg, lit); bad {
					p.Reportf(ev.pos,
						"goroutine never terminates: unbounded loop at %s has no exit via return, context cancel, or a closed channel; it leaks when its owner stops", posString(at))
				}
				continue
			}
			if ev.callee == nil {
				p.Reportf(ev.pos,
					"goroutine target is a func value; termination cannot be proven — name the function or add //lint:ignore goroleak <reason>")
				continue
			}
			if _, isModule := prog.facts[ev.callee]; !isModule {
				continue // standard library: assumed terminating
			}
			if prog.forever[ev.callee] {
				p.Reportf(ev.pos,
					"goroutine %s never terminates: unbounded loop at %s has no exit via return, context cancel, or a closed channel; it leaks when its owner stops",
					ev.callee.Name(), posString(prog.foreverAt[ev.callee]))
			}
		}
		checkUndeferredDone(p, ff)
	}
}

// checkUndeferredDone flags the pattern
//
//	wg.Add(1); ...; v, err := compute(); ...; wg.Done()
//
// where compute is a dynamic call: if it panics, Done never runs and
// every goroutine blocked in wg.Wait() hangs forever. The fix is
// `defer`, or a recover that still signals completion.
func checkUndeferredDone(p *Pass, ff *funcFacts) {
	type wgCall struct {
		ev   event
		name string // receiver expression, e.g. "f.wg"
	}
	var adds, dones []wgCall
	var dyns []event
	deferredDone := map[string]bool{}
	for _, ev := range ff.events {
		if ev.kind != evCall {
			continue
		}
		if ev.dynamic {
			if !ev.inLit && !ev.inDefer {
				dyns = append(dyns, ev)
			}
			continue
		}
		if ev.callee == nil {
			continue
		}
		if !isNamed(recvType(ev.callee), "sync", "WaitGroup") {
			continue
		}
		name := wgInstance(ev.call)
		switch ev.callee.Name() {
		case "Add":
			if !ev.inLit {
				adds = append(adds, wgCall{ev, name})
			}
		case "Done":
			if ev.inDefer {
				deferredDone[name] = true
			} else if !ev.inLit {
				dones = append(dones, wgCall{ev, name})
			}
		}
	}
	for _, d := range dones {
		if deferredDone[d.name] {
			continue
		}
		for _, dyn := range dyns {
			if dyn.pos >= d.ev.pos {
				continue
			}
			for _, a := range adds {
				if a.name == d.name && a.ev.pos < dyn.pos {
					p.Reportf(d.ev.pos,
						"%s.Done() is skipped if the call at %s panics, leaving waiters blocked in Wait forever; defer the Done",
						d.name, posString(p.Pkg.Fset.Position(dyn.pos)))
					return
				}
			}
		}
	}
}

// wgInstance names the WaitGroup receiver expression of a method call.
func wgInstance(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X)
	}
	return ""
}
