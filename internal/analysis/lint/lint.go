// Package lint is a repo-native static-analysis suite for the matproj
// datastore. It enforces invariants the type system cannot see — the
// ones the paper's datastore credibility rests on:
//
//   - clockdiscipline: no wall-clock reads outside the injectable
//     clock (determinism of the fault/lease machinery).
//   - seededrand: no global math/rand in internal/ (determinism of
//     faults.Injector replay).
//   - fsyncerr: no unchecked Sync/Flush/Write/Close errors on write
//     paths (crash safety, §IV-C).
//   - docaliasing: documents returned by datastore/queryengine reads
//     are never mutated without an intervening Copy (the store, the
//     query engine, and the wire share them).
//   - lockheld: no file/network I/O or channel send while a sync
//     mutex is held in datastore/cluster/fireworks.
//   - wrapcheck: cross-package error returns in cluster/restapi wrap
//     with %w or map to a typed sentinel (retry classification).
//
// Everything here is stdlib-only: go/parser + go/ast + go/types with
// the source importer, matching the module's no-dependency policy.
//
// Suppression: a finding is silenced by
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line directly above it, or for a whole
// file by //lint:file-ignore at any top-level comment. The reason is
// mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, attributed to an analyzer and a position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path; analyzers scope themselves by its
	// module-relative form (see Config.Rel).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker complaints. Analysis still runs
	// on partial information; the driver surfaces them separately.
	TypeErrors []error
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	// Doc is a one-line description of the invariant guarded.
	Doc string
	Run func(*Pass)
}

// Pass is the per-(analyzer, package) context handed to Run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Cfg      *Config
	// Prog is the shared interprocedural index (call graph, summaries)
	// over every package in the run. Built lazily on first use, so the
	// intraprocedural analyzers pay nothing for it.
	Prog  *Program
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Config carries the repo policy: which module this is and where each
// analyzer applies. Paths are module-relative prefixes ("internal/obs"
// matches internal/obs and internal/obs/...).
type Config struct {
	// ModulePath is the module's import-path prefix ("matproj").
	ModulePath string
	// ClockAllow lists prefixes where wall-clock calls are permitted.
	ClockAllow []string
	// RandScope lists prefixes where seededrand applies.
	RandScope []string
	// FsyncScope lists prefixes where fsyncerr applies.
	FsyncScope []string
	// AliasScope lists prefixes where docaliasing applies.
	AliasScope []string
	// LockScope lists prefixes where lockheld applies.
	LockScope []string
	// WrapScope lists prefixes where wrapcheck applies.
	WrapScope []string
	// LockOrderScope lists prefixes where lockorder applies.
	LockOrderScope []string
	// GoroScope lists prefixes where goroleak applies.
	GoroScope []string
	// AtomicScope lists prefixes where atomicmix applies.
	AtomicScope []string
	// GenScope lists prefixes where gendiscipline applies.
	GenScope []string
	// GenCollections are the generation-counted container shapes
	// gendiscipline enforces (see that analyzer's doc).
	GenCollections []GenCollection
	// GenPairs are the write-method/bump-method pairings gendiscipline
	// enforces on routed write paths.
	GenPairs []GenPair
}

// DefaultConfig is the policy for this repository.
func DefaultConfig(modulePath string) *Config {
	return &Config{
		ModulePath: modulePath,
		// obs exists to measure wall time; vclock is the injection
		// point's one sanctioned implementation; cmd mains and
		// examples run in real time by definition.
		ClockAllow: []string{"internal/obs", "internal/vclock", "cmd", "examples"},
		RandScope:  []string{"internal"},
		FsyncScope: []string{"internal"},
		AliasScope: []string{"internal"},
		LockScope:  []string{"internal/datastore", "internal/cluster", "internal/fireworks"},
		WrapScope:  []string{"internal/cluster", "internal/restapi"},
		// The interprocedural suite covers all of internal/; the
		// generation protocol only has meaning where the datastore,
		// the query engine, and the router meet.
		LockOrderScope: []string{"internal"},
		GoroScope:      []string{"internal"},
		AtomicScope:    []string{"internal"},
		GenScope:       []string{"internal/datastore", "internal/queryengine", "internal/cluster"},
		GenCollections: []GenCollection{{
			TypeName:   "Collection",
			LockField:  "mu",
			BumpMethod: "bumpGenLocked",
			DataFields: []string{"docs", "order", "seq", "seqNext", "indexes", "ordered", "bytes"},
		}},
		GenPairs: []GenPair{{
			TypeName:    "Router",
			WriteMethod: "writeOnGroup",
			BumpMethod:  "bumpGen",
		}},
	}
}

// Rel returns path relative to the module root ("" for the root
// package, "internal/obs" for matproj/internal/obs). Paths outside the
// module are returned unchanged.
func (c *Config) Rel(path string) string {
	if path == c.ModulePath {
		return ""
	}
	return strings.TrimPrefix(path, c.ModulePath+"/")
}

// inScope reports whether rel matches any prefix (whole path elements).
func inScope(rel string, prefixes []string) bool {
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// Analyzers returns the full suite in stable order: the six
// intraprocedural checks from PR 4, then the four interprocedural ones
// built on the shared call-graph layer (callgraph.go).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		ClockDiscipline,
		SeededRand,
		FsyncErr,
		DocAliasing,
		LockHeld,
		WrapCheck,
		LockOrder,
		GoroLeak,
		GenDiscipline,
		AtomicMix,
	}
}

// Select filters the suite by -only / -skip style name lists (nil means
// no filter). Unknown names are reported as an error.
func Select(all []*Analyzer, only, skip []string) ([]*Analyzer, error) {
	known := map[string]*Analyzer{}
	for _, a := range all {
		known[a.Name] = a
	}
	for _, n := range append(append([]string{}, only...), skip...) {
		if known[n] == nil {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
	}
	skipSet := map[string]bool{}
	for _, n := range skip {
		skipSet[n] = true
	}
	var out []*Analyzer
	for _, a := range all {
		if len(only) > 0 {
			found := false
			for _, n := range only {
				if n == a.Name {
					found = true
				}
			}
			if !found {
				continue
			}
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to one package and returns surviving
// diagnostics: suppression directives are honored, malformed ones are
// reported under the pseudo-analyzer "lint". The interprocedural
// analyzers see a single-package Program — fixtures stay
// self-contained; use RunAll/RunProgram for whole-module analysis.
func Run(pkg *Package, cfg *Config, analyzers []*Analyzer) []Diagnostic {
	return runOne(NewProgram([]*Package{pkg}, cfg), pkg, cfg, analyzers)
}

func runOne(prog *Program, pkg *Package, cfg *Config, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, Cfg: cfg, Prog: prog, diags: &diags}
		a.Run(pass)
	}
	idx, bad := buildIgnoreIndex(pkg)
	diags = append(diags, bad...)
	kept := diags[:0]
	for _, d := range diags {
		if !idx.suppressed(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}

// RunAll runs the analyzers over every package with one shared
// interprocedural Program and concatenates the results.
func RunAll(pkgs []*Package, cfg *Config, analyzers []*Analyzer) []Diagnostic {
	return RunProgram(NewProgram(pkgs, cfg), pkgs, analyzers)
}

// RunProgram runs the analyzers over the report packages against an
// existing Program, which may index a superset (mplint builds the
// Program over the whole module so package patterns narrow reporting,
// not the interprocedural horizon).
func RunProgram(prog *Program, report []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range report {
		out = append(out, runOne(prog, p, prog.Cfg, analyzers)...)
	}
	return out
}

// ---- Suppression ----------------------------------------------------

var ignoreRe = regexp.MustCompile(`^//\s*lint:(ignore|file-ignore)\s+(\S+)(\s+(.*))?$`)

type ignoreDirective struct {
	line      int
	analyzers map[string]bool
	wholeFile bool
	reason    string
	pos       token.Position
}

// Ignore is one active suppression directive, for review tooling
// (mplint -ignored).
type Ignore struct {
	Pos       token.Position
	Analyzers []string
	WholeFile bool
	Reason    string
}

// Ignores lists every well-formed suppression directive in pkg, sorted
// by position. Malformed directives are not included — running the
// suite reports those.
func Ignores(pkg *Package) []Ignore {
	idx, _ := buildIgnoreIndex(pkg)
	var out []Ignore
	for _, dirs := range idx.byFile {
		for _, d := range dirs {
			names := make([]string, 0, len(d.analyzers))
			for n := range d.analyzers {
				names = append(names, n)
			}
			sort.Strings(names)
			out = append(out, Ignore{Pos: d.pos, Analyzers: names, WholeFile: d.wholeFile, Reason: d.reason})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

type ignoreIndex struct {
	// byFile maps filename to its directives.
	byFile map[string][]ignoreDirective
}

func buildIgnoreIndex(pkg *Package) (*ignoreIndex, []Diagnostic) {
	idx := &ignoreIndex{byFile: map[string][]ignoreDirective{}}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), "lint:") {
						bad = append(bad, Diagnostic{
							Analyzer: "lint",
							Pos:      pkg.Fset.Position(c.Pos()),
							Message:  "malformed lint directive (want //lint:ignore <analyzer> <reason>)",
						})
					}
					continue
				}
				if strings.TrimSpace(m[4]) == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "lint",
						Pos:      pkg.Fset.Position(c.Pos()),
						Message:  fmt.Sprintf("lint:%s directive needs a reason", m[1]),
					})
					continue
				}
				names := map[string]bool{}
				for _, n := range strings.Split(m[2], ",") {
					names[strings.TrimSpace(n)] = true
				}
				pos := pkg.Fset.Position(c.Pos())
				idx.byFile[pos.Filename] = append(idx.byFile[pos.Filename], ignoreDirective{
					line:      pos.Line,
					analyzers: names,
					wholeFile: m[1] == "file-ignore",
					reason:    strings.TrimSpace(m[4]),
					pos:       pos,
				})
			}
		}
	}
	return idx, bad
}

// suppressed reports whether d is covered by a directive: file-wide, on
// the same line, or on the line directly above.
func (idx *ignoreIndex) suppressed(d Diagnostic) bool {
	for _, dir := range idx.byFile[d.Pos.Filename] {
		if !dir.analyzers[d.Analyzer] {
			continue
		}
		if dir.wholeFile || dir.line == d.Pos.Line || dir.line+1 == d.Pos.Line {
			return true
		}
	}
	return false
}
