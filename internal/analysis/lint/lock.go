package lint

import (
	"go/ast"
	"go/types"
)

// LockHeld reports file/network I/O, blocking sleeps, and channel
// sends performed while a sync.Mutex/RWMutex is held in the serving
// packages (datastore, cluster, fireworks). The datastore plays four
// roles at once (Fig. 2); a critical section that blocks on a disk or
// a peer stalls every one of them, and a channel send under a lock is
// a deadlock waiting for the right interleaving.
//
// The analysis is intraprocedural: a region starts at an x.Lock() /
// x.RLock() statement and ends at the matching x.Unlock()/x.RUnlock()
// in the same statement list, or — for the `mu.Lock(); defer
// mu.Unlock()` idiom — at the end of the function. Function literals
// started inside a region (goroutines) are not considered held.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "I/O or channel send while holding a mutex stalls every serving role sharing the lock",
	Run:  runLockHeld,
}

func runLockHeld(p *Pass) {
	rel := p.Cfg.Rel(p.Pkg.Path)
	if !inScope(rel, p.Cfg.LockScope) {
		return
	}
	funcBodies(p.Pkg, func(decl *ast.FuncDecl, _ *ast.File) {
		scanLockRegions(p, decl.Body)
	})
}

// scanLockRegions walks one statement list (recursing into nested
// blocks), tracking which statements execute under a lock.
func scanLockRegions(p *Pass, block *ast.BlockStmt) {
	walkLockList(p, block.List, nil)
}

// walkLockList processes list with the set of lock descriptions
// already held on entry.
func walkLockList(p *Pass, list []ast.Stmt, held []string) {
	i := 0
	for i < len(list) {
		st := list[i]
		if lockName, kind, ok := lockCall(p, st); ok && kind == "lock" {
			// Deferred unlock → held to the end of this list (and all
			// nested statements).
			if i+1 < len(list) && isDeferredUnlock(p, list[i+1], lockName) {
				walkLockList(p, list[i+2:], append(held, lockName))
				return
			}
			// Find the matching unlock in this list.
			end := len(list)
			for j := i + 1; j < len(list); j++ {
				if n, k, ok := lockCall(p, list[j]); ok && k == "unlock" && n == lockName {
					end = j
					break
				}
			}
			walkLockList(p, list[i+1:end], append(held, lockName))
			i = end + 1
			continue
		}
		if len(held) > 0 {
			checkHeldStmt(p, st, held[len(held)-1])
		}
		walkNested(p, st, held)
		i++
	}
}

// walkNested recurses into compound statements so nested lists get the
// same region tracking.
func walkNested(p *Pass, st ast.Stmt, held []string) {
	switch x := st.(type) {
	case *ast.BlockStmt:
		walkLockList(p, x.List, held)
	case *ast.IfStmt:
		walkLockList(p, x.Body.List, held)
		if x.Else != nil {
			walkNested(p, x.Else, held)
		}
	case *ast.ForStmt:
		walkLockList(p, x.Body.List, held)
	case *ast.RangeStmt:
		walkLockList(p, x.Body.List, held)
	case *ast.SwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLockList(p, cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLockList(p, cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				walkLockList(p, cc.Body, held)
			}
		}
	case *ast.LabeledStmt:
		walkNested(p, x.Stmt, held)
	}
}

// checkHeldStmt reports violations in one statement executed under
// lockName, without descending into nested statement lists (those are
// visited by walkNested so each statement is checked exactly once,
// against its innermost lock). Function literals are skipped: work
// they enclose runs when called, usually on another goroutine.
func checkHeldStmt(p *Pass, st ast.Stmt, lockName string) {
	ast.Inspect(st, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BlockStmt:
			return false
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			p.Reportf(x.Arrow,
				"channel send while holding %s; an unready receiver deadlocks every caller of this lock", lockName)
		case *ast.CallExpr:
			if why := ioCallKind(p, x); why != "" {
				p.Reportf(x.Pos(),
					"%s while holding %s; stage the I/O outside the critical section", why, lockName)
			}
		}
		return true
	})
}

// lockCall recognizes `x.Lock()` / `x.RLock()` / `x.Unlock()` /
// `x.RUnlock()` expression statements on sync mutexes, returning a
// stable name for the lock expression.
func lockCall(p *Pass, st ast.Stmt) (name, kind string, ok bool) {
	es, isExpr := st.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	return classifyLockCall(p, call)
}

func classifyLockCall(p *Pass, call *ast.CallExpr) (name, kind string, ok bool) {
	f := callee(p.Pkg.Info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := recvType(f)
	if !isNamed(recv, "sync", "Mutex") && !isNamed(recv, "sync", "RWMutex") {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch f.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), "lock", true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), "unlock", true
	}
	return "", "", false
}

// isDeferredUnlock matches `defer x.Unlock()` for the named lock.
func isDeferredUnlock(p *Pass, st ast.Stmt, lockName string) bool {
	d, ok := st.(*ast.DeferStmt)
	if !ok {
		return false
	}
	name, kind, ok := classifyLockCall(p, d.Call)
	return ok && kind == "unlock" && name == lockName
}

// ioCallKind classifies a call as blocking I/O, returning a short
// description, or "".
func ioCallKind(p *Pass, call *ast.CallExpr) string {
	f := callee(p.Pkg.Info, call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	path := f.Pkg().Path()
	recv := recvType(f)
	switch {
	case path == "os" && recv == nil && osIOFuncs[f.Name()]:
		return "os." + f.Name() + " (file I/O)"
	case isNamed(recv, "os", "File"):
		return "(*os.File)." + f.Name() + " (file I/O)"
	case isNamed(recv, "bufio", "Writer") && f.Name() == "Flush":
		return "bufio flush (file I/O)"
	case path == "net/http" || path == "net":
		return path + " call (network I/O)"
	case path == "time" && f.Name() == "Sleep":
		return "time.Sleep (blocking)"
	}
	return ""
}

var osIOFuncs = map[string]bool{
	"Create": true, "CreateTemp": true, "Open": true, "OpenFile": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Truncate": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Chmod": true, "Chtimes": true, "Link": true, "Symlink": true,
}
