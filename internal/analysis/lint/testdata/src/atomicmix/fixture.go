// Golden fixture for the atomicmix analyzer, loaded as if it lived in
// internal/cluster (in scope). One field is touched through sync/atomic
// in one function and plainly elsewhere — the mixed-access race — and
// one typed atomic is loaded twice inside a single decision.
package fixture

import "sync/atomic"

type counters struct {
	n    int64
	hits atomic.Uint64
}

func (c *counters) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counters) badRead() int64 {
	return c.n // want `n is accessed with sync/atomic at fixture\.go:\d+; this plain access races`
}

func (c *counters) badWrite() {
	c.n = 0 // want `n is accessed with sync/atomic at fixture\.go:\d+; this plain access races`
}

func (c *counters) okAtomic() int64 {
	return atomic.LoadInt64(&c.n)
}

// Composite-literal keys are initialization, not access.
func newCounters() *counters {
	return &counters{n: 0}
}

func (c *counters) badDoubleLoad(use func(uint64)) {
	if c.hits.Load() > 0 {
		use(c.hits.Load()) // want `atomic c\.hits is loaded again inside the same decision \(first load at fixture\.go:\d+\)`
	}
}

func (c *counters) okSingleLoad(use func(uint64)) {
	if h := c.hits.Load(); h > 0 {
		use(h)
	}
}

// A second decision is a second load: allowed.
func (c *counters) okSeparateDecisions(use func(uint64)) {
	if c.hits.Load() == 0 {
		return
	}
	use(c.hits.Load())
}
