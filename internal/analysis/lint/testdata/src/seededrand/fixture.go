// Golden fixture for the seededrand analyzer, loaded as an internal/
// package.
package fixture

import "math/rand"

func global() int {
	rand.Shuffle(3, func(i, j int) {}) // want `global rand\.Shuffle`
	return rand.Intn(6)                // want `global rand\.Intn`
}

// Instance draws from an explicitly seeded source are the sanctioned
// pattern (faults.Injector does exactly this).
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}
