// Golden fixture for the wrapcheck analyzer, loaded as if it lived in
// internal/cluster (in scope).
package fixture

import (
	"errors"
	"fmt"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

var errLocal = errors.New("fixture: local sentinel")

func bareIdent(c *datastore.Collection, d document.D) error {
	_, err := c.Insert(d)
	if err != nil {
		return err // want `Insert returned bare across the package boundary`
	}
	return nil
}

func bareCall(s *datastore.Store) error {
	return s.Close() // want `Close returned bare across the package boundary`
}

func wrapped(c *datastore.Collection, d document.D) error {
	_, err := c.Insert(d)
	if err != nil {
		return fmt.Errorf("fixture: insert: %w", err)
	}
	return nil
}

func sentinel(c *datastore.Collection) error {
	_, err := c.FindID("missing")
	if err != nil {
		// Mapping to a typed sentinel is the other sanctioned shape.
		return datastore.ErrNotFound
	}
	return nil
}

func localSentinel() error {
	return errLocal // package-level sentinel: allowed
}

func samePackage() error {
	return helper() // same-package call: allowed
}

func helper() error { return nil }
