// Golden fixture for the goroleak analyzer, loaded as if it lived in
// internal/cluster (in scope). Each leak shape the analyzer proves:
// a ticker-drain goroutine with no exit, a named spinner, an opaque
// func value, and an undeferred WaitGroup.Done past a dynamic call.
// The ctx-select and closed-channel drains must not be reported.
package fixture

import (
	"context"
	"sync"
	"time"
)

func work() {}

// leakedTicker drains a ticker forever: nothing closes tick.C and there
// is no other exit, so the goroutine outlives every owner.
func leakedTicker(tick *time.Ticker) {
	go func() { // want `goroutine never terminates`
		for range tick.C {
			work()
		}
	}()
}

func spin() {
	for {
		work()
	}
}

func leakedNamed() {
	go spin() // want `goroutine spin never terminates`
}

func launch(f func()) {
	go f() // want `goroutine target is a func value`
}

// okCtx exits through the context's Done channel: provable.
func okCtx(ctx context.Context, tick *time.Ticker) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				work()
			}
		}
	}()
}

// okClosed ranges over a channel this package closes: provable.
func okClosed() {
	ch := make(chan int)
	go func() {
		for range ch {
			work()
		}
	}()
	close(ch)
}

type flight struct {
	wg sync.WaitGroup
}

// bad skips Done when compute panics: every waiter parks forever.
func (f *flight) bad(compute func() int) int {
	f.wg.Add(1)
	v := compute()
	f.wg.Done() // want `f\.wg\.Done\(\) is skipped if the call at fixture\.go:\d+ panics`
	return v
}

// good defers the Done: panic-safe.
func (f *flight) good(compute func() int) int {
	f.wg.Add(1)
	defer f.wg.Done()
	return compute()
}
