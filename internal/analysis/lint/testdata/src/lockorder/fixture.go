// Golden fixture for the lockorder analyzer, loaded as if it lived in
// internal/cluster (in scope). Two lock classes acquired in opposite
// orders on two paths — the canonical AB/BA deadlock — plus a
// self-cycle on one class through two instances. The gamma/delta pair
// is always taken in one order and must not be reported.
package fixture

import "sync"

type alpha struct{ mu sync.Mutex }
type beta struct{ mu sync.Mutex }

type world struct {
	a alpha
	b beta
}

func (w *world) abPath() {
	w.a.mu.Lock()
	w.b.mu.Lock() // want `lock-order cycle`
	w.b.mu.Unlock()
	w.a.mu.Unlock()
}

// baPath takes the reverse edge through a call, so the cycle is only
// visible interprocedurally.
func (w *world) baPath() {
	w.b.mu.Lock()
	w.lockA()
	w.b.mu.Unlock()
}

func (w *world) lockA() {
	w.a.mu.Lock()
	w.a.mu.Unlock()
}

// node locks two instances of one class: a self-cycle unless every
// traversal agrees on instance order.
type node struct {
	mu   sync.Mutex
	next *node
}

func (n *node) link() {
	n.mu.Lock()
	n.next.mu.Lock() // want `lock-order cycle`
	n.next.mu.Unlock()
	n.mu.Unlock()
}

// gamma/delta are always taken in the same order: no report.
type gamma struct{ mu sync.Mutex }
type delta struct{ mu sync.Mutex }

type orderly struct {
	g gamma
	d delta
}

func (o *orderly) one() {
	o.g.mu.Lock()
	o.d.mu.Lock()
	o.d.mu.Unlock()
	o.g.mu.Unlock()
}

func (o *orderly) two() {
	o.g.mu.Lock()
	o.d.mu.Lock()
	o.d.mu.Unlock()
	o.g.mu.Unlock()
}
