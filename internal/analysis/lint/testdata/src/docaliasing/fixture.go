// Golden fixture for the docaliasing analyzer, loaded as an internal/
// package. The datastore hands out documents that alias store state;
// mutating one without Copy() corrupts the store behind the journal's
// back.
package fixture

import (
	"matproj/internal/datastore"
	"matproj/internal/document"
)

func mutatesRanged(c *datastore.Collection) {
	docs, _ := c.FindAll(nil, nil)
	for _, d := range docs {
		d["flag"] = true // want `d aliases a document returned by a datastore/queryengine read`
	}
}

func mutatesSingle(c *datastore.Collection) {
	d, _ := c.FindID("mp-1")
	d.Set("flag", true) // want `d\.Set mutates a document returned by a read`
	delete(d, "flag")   // want `delete on d, which aliases a document`
}

func mutatesNested(c *datastore.Collection) {
	d, _ := c.FindID("mp-1")
	d.GetDoc("spectrum")["peak"] = 1.0 // want `d aliases a document`
}

func copiesFirst(c *datastore.Collection) document.D {
	d, _ := c.FindID("mp-1")
	d = d.Copy()
	d["flag"] = true // rebound through Copy: allowed
	return d
}

func freshDoc() {
	d := document.D{"a": 1}
	d["b"] = 2 // not from a read: allowed
}
