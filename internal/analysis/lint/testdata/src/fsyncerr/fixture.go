// Golden fixture for the fsyncerr analyzer, loaded as an internal/
// package.
package fixture

import "os"

func unchecked(path string) {
	f, _ := os.Create(path)
	f.Write([]byte("x")) // want `Write error discarded`
	f.Sync()             // want `Sync error discarded`
	f.Close()            // want `Close error discarded`
}

func deferred(path string) {
	f, _ := os.Create(path)
	defer f.Close() // want `Close error discarded`
	f.WriteString("x") // want `WriteString error discarded`
}

func checked(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		// Best-effort cleanup before propagating: allowed.
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	// An explicit discard is a visible decision: allowed.
	_ = f.Close()
	return nil
}

func readOnly(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	// Closing a read-only handle cannot lose acknowledged writes.
	f.Close()
	return nil
}
