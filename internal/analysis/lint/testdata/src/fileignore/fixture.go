// Golden fixture: file-ignore silences an analyzer for the whole file.
//
//lint:file-ignore clockdiscipline this fixture verifies file-wide suppression
package fixture

import "time"

func a() { time.Sleep(time.Millisecond) }

func b() time.Time { return time.Now() }
