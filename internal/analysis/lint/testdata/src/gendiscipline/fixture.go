// Golden fixture for the gendiscipline analyzer, loaded as if it lived
// in internal/datastore (in scope). The Collection and Router types
// mirror the shapes the analyzer is configured for; the rcache import
// exercises the consult-side freshness rule.
package fixture

import (
	"sync"
	"sync/atomic"

	"matproj/internal/rcache"
)

type Collection struct {
	mu   sync.RWMutex
	gen  atomic.Uint64
	docs map[string]int
}

func (c *Collection) bumpGenLocked() { c.gen.Add(1) }

func (c *Collection) Generation() uint64 { return c.gen.Load() }

// NewCollection is a constructor: writes before publication are exempt.
func NewCollection() *Collection {
	return &Collection{docs: map[string]int{}}
}

// goodInsert bumps inside the write lock: the discipline.
func (c *Collection) goodInsert(id string, v int) {
	c.mu.Lock()
	c.docs[id] = v
	c.bumpGenLocked()
	c.mu.Unlock()
}

func (c *Collection) bumpOutsideLock() {
	c.bumpGenLocked() // want `bumpGenLocked called without holding the Collection write lock`
}

func (c *Collection) writeOutsideLock(id string) {
	delete(c.docs, id) // want `Collection\.docs mutated without holding the Collection write lock`
}

func (c *Collection) regionMissingBump(id string, v int) {
	c.mu.Lock() // want `write-locked region mutates Collection data but never bumps the generation`
	c.docs[id] = v
	c.mu.Unlock()
}

// setLocked itself is clean: its only caller guarantees the lock.
func (c *Collection) setLocked(id string, v int) {
	c.docs[id] = v
}

func (c *Collection) regionViaCallMissingBump(id string, v int) {
	c.mu.Lock() // want `write-locked region mutates Collection data but never bumps the generation`
	c.setLocked(id, v)
	c.mu.Unlock()
}

func badConsult(cache *rcache.Cache) (any, error) {
	v, _, err := cache.GetOrCompute("k", 7, func() (any, error) { return 1, nil }) // want `generation passed to GetOrCompute does not derive from a generation counter`
	return v, err
}

func goodConsult(cache *rcache.Cache, c *Collection) (any, error) {
	gen := c.Generation()
	v, _, err := cache.GetOrCompute("k", gen, func() (any, error) { return 1, nil })
	return v, err
}

// Router mirrors the cluster write/bump pairing rule.
type Router struct{ n atomic.Uint64 }

func (r *Router) writeOnGroup(f func() error) error { return f() }
func (r *Router) bumpGen()                          { r.n.Add(1) }

func (r *Router) ensureBad(f func() error) {
	r.writeOnGroup(f) // want `Router\.writeOnGroup write path never calls bumpGen`
}

func (r *Router) ensureGood(f func() error) {
	r.writeOnGroup(f)
	r.bumpGen()
}
