// Golden fixture for the lockheld analyzer, loaded as if it lived in
// internal/cluster (in scope).
package fixture

import (
	"os"
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	ch chan int
	n  int
}

func (g *guarded) explicitRegion(path string) {
	g.mu.Lock()
	os.Remove(path)              // want `os\.Remove \(file I/O\) while holding g\.mu`
	time.Sleep(time.Millisecond) // want `time\.Sleep \(blocking\) while holding g\.mu`
	g.ch <- 1                    // want `channel send while holding g\.mu`
	g.mu.Unlock()
	os.Remove(path) // after Unlock: allowed
}

func (g *guarded) deferredRegion(path string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.n > 0 {
		os.Remove(path) // want `os\.Remove \(file I/O\) while holding g\.mu`
	}
}

func (g *guarded) goroutineEscapes() {
	g.mu.Lock()
	defer g.mu.Unlock()
	// Work inside a function literal runs when called (usually another
	// goroutine): not reported.
	go func() {
		time.Sleep(time.Millisecond)
	}()
	g.n++
}

func (g *guarded) pureCriticalSection() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}
