// Golden fixture for the suppression machinery, run under
// clockdiscipline in scope.
package fixture

import "time"

func suppressedAbove() {
	//lint:ignore clockdiscipline exercising line-above suppression
	time.Sleep(time.Millisecond)
}

func suppressedSameLine() {
	time.Sleep(time.Millisecond) //lint:ignore clockdiscipline exercising same-line suppression
}

func wrongAnalyzer() {
	//lint:ignore seededrand the named analyzer does not match, so this still fires
	time.Sleep(time.Millisecond) // want `direct time\.Sleep call`
}

func unsuppressed() {
	time.Sleep(time.Millisecond) // want `direct time\.Sleep call`
}
