// Golden fixture: a lint:ignore directive without a reason is itself a
// finding, and does not suppress anything. The harness asserts both
// diagnostics explicitly (the directive line cannot carry a want
// comment of its own).
package fixture

import "time"

func needsReason() {
	//lint:ignore clockdiscipline
	time.Sleep(time.Millisecond)
}
