// Golden fixture for the clockdiscipline analyzer. Loaded by the test
// harness as if it lived inside internal/fireworks (in scope) and again
// inside internal/obs (allowlisted, zero findings expected).
package fixture

import "time"

// A bare reference is an injection default, not a clock read: allowed.
var defaultNow = time.Now

func decides() time.Time {
	t := time.Now() // want `direct time\.Now call`
	return t
}

func sleeps() {
	time.Sleep(time.Millisecond) // want `direct time\.Sleep call`
}

func ticks() {
	tk := time.NewTicker(time.Second) // want `direct time\.NewTicker call`
	tk.Stop()
	<-time.After(time.Millisecond) // want `direct time\.After call`
}

// The latency-measurement idiom is allowed: the Now result is consumed
// only by time.Since.
func measures() time.Duration {
	start := time.Now()
	work()
	return time.Since(start)
}

// Converting the instant (UnixNano) is a decision, not a measurement.
func converts() int64 {
	start := time.Now() // want `direct time\.Now call`
	return start.UnixNano()
}

func work() {}

var _ = defaultNow
