package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer shared by the lockorder,
// goroleak, gendiscipline, and atomicmix analyzers: a whole-program
// index of function bodies ("facts") plus bottom-up summaries computed
// as fixpoints over the static call graph. Everything is keyed by
// *types.Func, so facts compose across packages loaded by the same
// Loader.
//
// Soundness boundaries (shared by every client; see DESIGN.md):
//   - Only statically resolvable calls contribute: calls through
//     func-typed values and interface methods are treated as empty
//     summaries (they neither acquire locks nor run forever).
//   - Function literals are walked but their events carry inLit; a
//     literal's effects are not charged to the enclosing function,
//     because the literal usually runs later, elsewhere (goroutines,
//     callbacks). Literals invoked synchronously (sync.Once.Do) are
//     therefore under-approximated.
//   - Deferred calls are charged at the defer statement's position with
//     the lock set held there, an approximation of the exit-time state.

// LockClass names a mutex by its declaration site rather than its
// instance: "(pkg/path.Type).field" for a struct field,
// "pkg/path.varname" for a package-level var. Locals have no class
// (""): two goroutines can only contend on a lock both can reach, and
// lock-order cycles are a property of the declaration, not the copy.
type LockClass string

// heldLock is one acquisition active at a program point.
type heldLock struct {
	name  string    // instance expression as written, e.g. "c.mu"
	class LockClass // declaration-site class, "" for locals
	excl  bool      // Lock (true) vs RLock (false)
	pos   token.Pos // the acquiring statement
}

type evKind int

const (
	evAcquire evKind = iota // x.Lock() / x.RLock()
	evCall                  // any other call (static, dynamic, or deferred)
	evGo                    // go statement
	evWrite                 // assignment/IncDec/delete through a field or package var
)

// event is one interprocedurally relevant action inside a function
// body, with the lock set held when it executes.
type event struct {
	kind evKind
	pos  token.Pos
	held []heldLock

	// evAcquire
	class LockClass
	excl  bool
	name  string

	// evCall / evGo
	callee  *types.Func // nil for dynamic calls and go func(){} literals
	call    *ast.CallExpr
	dynamic bool // call of a func-typed value (not a builtin or conversion)

	// evWrite
	field      types.Object // *types.Var: struct field or package-level var
	fieldOwner *types.Named // owning type for struct fields, nil for vars

	inLit   bool // inside a function literal (held is nil there)
	inDefer bool // inside a defer statement (or a deferred literal)
	inGo    bool // inside a go statement's literal
}

// funcFacts is the per-function slice of the whole-program index.
type funcFacts struct {
	fn     *types.Func
	decl   *ast.FuncDecl
	pkg    *Package
	events []event
	// regions are the lock-held intervals of the body, for analyzers
	// that reason about critical sections as units (gendiscipline).
	regions []lockInterval
}

// lockInterval is one statically delimited critical section: positions
// in [start, end) run with lk held (function literals excepted), minus
// the excl ranges — tails of nested branches that unlock early
// (`if bad { mu.Unlock(); return err }`).
type lockInterval struct {
	start, end token.Pos
	excl       []posRange
	lk         heldLock
}

type posRange struct{ start, end token.Pos }

func (iv lockInterval) contains(pos token.Pos) bool {
	if pos < iv.start || pos >= iv.end {
		return false
	}
	for _, r := range iv.excl {
		if pos >= r.start && pos < r.end {
			return false
		}
	}
	return true
}

// heldState is the must-hold lattice value for calledHeld: top means
// "no call site constrains this yet" (the universal set).
type heldState struct {
	top bool
	set map[LockClass]bool
}

// LockEdge is one "acquired B while holding A" observation.
type LockEdge struct {
	From, To LockClass
	Witness  token.Position // where To was acquired (or the call that acquires it)
	Func     string         // fully qualified function containing the witness
}

// FuncSummary is the printable per-function summary (-summaries).
type FuncSummary struct {
	Func     string
	Acquires []string
	Forever  bool
}

// Program is the shared interprocedural index. Build one per analysis
// run (RunAll/RunProgram build one for all packages; Run builds a
// single-package one so fixture tests stay self-contained).
type Program struct {
	Cfg  *Config
	pkgs []*Package

	built     bool
	facts     map[*types.Func]*funcFacts
	factList  []*funcFacts // deterministic order
	pkgFiles  map[string]*Package
	acquires  map[*types.Func]map[LockClass]token.Pos
	forever   map[*types.Func]bool
	foreverAt map[*types.Func]token.Position
	closedCls map[string]bool       // closed channels by declaration class
	closedObj map[types.Object]bool // closed channels by object (locals, vars)
	heldIn    map[*types.Func]heldState
	atomicFn  map[types.Object]token.Position // &field handed to a sync/atomic function

	lockEdges  []LockEdge
	cycleDiags []cycleDiag
	genCache   map[string][2]map[*types.Func]bool // gendiscipline mutate/bump summaries per spec
}

// NewProgram indexes pkgs for interprocedural analysis. Facts are built
// lazily on first use.
func NewProgram(pkgs []*Package, cfg *Config) *Program {
	return &Program{Cfg: cfg, pkgs: pkgs}
}

func (prog *Program) ensure() {
	if prog.built {
		return
	}
	prog.built = true
	prog.facts = map[*types.Func]*funcFacts{}
	prog.pkgFiles = map[string]*Package{}
	prog.closedCls = map[string]bool{}
	prog.closedObj = map[types.Object]bool{}
	prog.atomicFn = map[types.Object]token.Position{}
	for _, pkg := range prog.pkgs {
		for _, f := range pkg.Files {
			prog.pkgFiles[pkg.Fset.Position(f.Pos()).Filename] = pkg
		}
		funcBodies(pkg, func(decl *ast.FuncDecl, _ *ast.File) {
			fn, _ := pkg.Info.Defs[decl.Name].(*types.Func)
			if fn == nil {
				return
			}
			ff := &funcFacts{fn: fn, decl: decl, pkg: pkg}
			collectIntervals(pkg, decl.Body.List, &ff.regions)
			ff.events = collectFuncEvents(pkg, decl, ff.regions)
			prog.facts[fn] = ff
			prog.factList = append(prog.factList, ff)
		})
		prog.indexCloses(pkg)
		prog.indexAtomicFns(pkg)
	}
	sort.Slice(prog.factList, func(i, j int) bool {
		a := prog.factList[i].pkg.Fset.Position(prog.factList[i].decl.Pos())
		b := prog.factList[j].pkg.Fset.Position(prog.factList[j].decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	prog.computeAcquires()
	prog.computeForever()
	prog.computeHeldIn()
	prog.computeLockGraph()
}

// factsFor returns the indexed facts for every function declared in pkg.
func (prog *Program) factsFor(pkg *Package) []*funcFacts {
	prog.ensure()
	var out []*funcFacts
	for _, ff := range prog.factList {
		if ff.pkg == pkg {
			out = append(out, ff)
		}
	}
	return out
}

// ---- Declaration-site classes ---------------------------------------

// classOfExpr names the declaration site of a field or package-level
// variable expression; "" for locals and anything unresolvable.
func classOfExpr(pkg *Package, e ast.Expr) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				if named := namedOf(sel.Recv()); named != nil {
					return fmt.Sprintf("(%s.%s).%s", named.Obj().Pkg().Path(), named.Obj().Name(), v.Name())
				}
			}
			return ""
		}
		// Qualified package-level var: pkg.Mu.
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := objOf(pkg.Info, x).(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

// namedOf unwraps pointers to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
		return nil
	}
	return named
}

// exprObj resolves e to a field or variable object (for channel
// identity), or nil.
func exprObj(pkg *Package, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok {
			return sel.Obj()
		}
		return pkg.Info.Uses[x.Sel]
	case *ast.Ident:
		return objOf(pkg.Info, x)
	}
	return nil
}

// ---- Lock call classification and critical-section intervals --------

// syncLockCall recognizes Lock/RLock/Unlock/RUnlock on sync mutexes,
// returning the instance name, the receiver expression, "lock" or
// "unlock", and exclusivity.
func syncLockCall(pkg *Package, call *ast.CallExpr) (name string, recv ast.Expr, kind string, excl bool, ok bool) {
	f := callee(pkg.Info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", nil, "", false, false
	}
	rt := recvType(f)
	if !isNamed(rt, "sync", "Mutex") && !isNamed(rt, "sync", "RWMutex") {
		return "", nil, "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, "", false, false
	}
	switch f.Name() {
	case "Lock":
		return types.ExprString(sel.X), sel.X, "lock", true, true
	case "RLock":
		return types.ExprString(sel.X), sel.X, "lock", false, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), sel.X, "unlock", false, true
	}
	return "", nil, "", false, false
}

func syncLockStmt(pkg *Package, st ast.Stmt) (name string, recv ast.Expr, kind string, excl bool, ok bool) {
	es, isExpr := st.(*ast.ExprStmt)
	if !isExpr {
		return "", nil, "", false, false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return "", nil, "", false, false
	}
	return syncLockCall(pkg, call)
}

// collectIntervals mirrors lockheld's region walker but records the
// critical sections as position intervals, so event collection can ask
// "what is held here" by position alone. The same approximations
// apply: a `lock; defer unlock` pair holds to the end of its statement
// list, and an unmatched lock holds to the end of the list.
func collectIntervals(pkg *Package, list []ast.Stmt, out *[]lockInterval) {
	i := 0
	for i < len(list) {
		st := list[i]
		if name, recv, kind, excl, ok := syncLockStmt(pkg, st); ok && kind == "lock" {
			lk := heldLock{name: name, class: LockClass(classOfExpr(pkg, recv)), excl: excl, pos: st.Pos()}
			if i+1 < len(list) && isDeferredUnlockStmt(pkg, list[i+1], name) {
				*out = append(*out, lockInterval{start: st.End(), end: list[len(list)-1].End(), lk: lk})
				collectIntervals(pkg, list[i+2:], out)
				return
			}
			end := len(list)
			for j := i + 1; j < len(list); j++ {
				if n, _, k, _, ok := syncLockStmt(pkg, list[j]); ok && k == "unlock" && n == name {
					end = j
					break
				}
			}
			endPos := st.End()
			if end < len(list) {
				endPos = list[end].Pos()
			} else if end > i+1 {
				endPos = list[end-1].End()
			}
			iv := lockInterval{start: st.End(), end: endPos, lk: lk}
			for j := i + 1; j < end && j < len(list); j++ {
				nestedUnlockTails(pkg, list[j], name, &iv.excl)
			}
			*out = append(*out, iv)
			collectIntervals(pkg, list[i+1:end], out)
			i = end + 1
			continue
		}
		collectIntervalsNested(pkg, st, out)
		i++
	}
}

func collectIntervalsNested(pkg *Package, st ast.Stmt, out *[]lockInterval) {
	switch x := st.(type) {
	case *ast.BlockStmt:
		collectIntervals(pkg, x.List, out)
	case *ast.IfStmt:
		collectIntervals(pkg, x.Body.List, out)
		if x.Else != nil {
			collectIntervalsNested(pkg, x.Else, out)
		}
	case *ast.ForStmt:
		collectIntervals(pkg, x.Body.List, out)
	case *ast.RangeStmt:
		collectIntervals(pkg, x.Body.List, out)
	case *ast.SwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				collectIntervals(pkg, cc.Body, out)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				collectIntervals(pkg, cc.Body, out)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				collectIntervals(pkg, cc.Body, out)
			}
		}
	case *ast.LabeledStmt:
		collectIntervalsNested(pkg, x.Stmt, out)
	}
}

// nestedUnlockTails records, for each unlock of the named lock nested
// inside st, the tail of its enclosing statement list — the branch runs
// those statements without the lock before returning or falling out.
func nestedUnlockTails(pkg *Package, st ast.Stmt, lockName string, out *[]posRange) {
	var scan func(s ast.Stmt)
	scanList := func(list []ast.Stmt) {
		for _, s := range list {
			if n, _, kind, _, ok := syncLockStmt(pkg, s); ok && kind == "unlock" && n == lockName {
				*out = append(*out, posRange{start: s.End(), end: list[len(list)-1].End()})
				continue
			}
			scan(s)
		}
	}
	scan = func(s ast.Stmt) {
		switch x := s.(type) {
		case *ast.BlockStmt:
			scanList(x.List)
		case *ast.IfStmt:
			scanList(x.Body.List)
			if x.Else != nil {
				scan(x.Else)
			}
		case *ast.ForStmt:
			scanList(x.Body.List)
		case *ast.RangeStmt:
			scanList(x.Body.List)
		case *ast.SwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanList(cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanList(cc.Body)
				}
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanList(cc.Body)
				}
			}
		case *ast.LabeledStmt:
			scan(x.Stmt)
		}
	}
	scan(st)
}

func isDeferredUnlockStmt(pkg *Package, st ast.Stmt, lockName string) bool {
	d, ok := st.(*ast.DeferStmt)
	if !ok {
		return false
	}
	name, _, kind, _, ok := syncLockCall(pkg, d.Call)
	return ok && kind == "unlock" && name == lockName
}

// ---- Event collection -----------------------------------------------

func heldAt(regions []lockInterval, pos token.Pos, inLit bool) []heldLock {
	if inLit {
		return nil
	}
	var h []heldLock
	for _, iv := range regions {
		if iv.contains(pos) {
			h = append(h, iv.lk)
		}
	}
	return h
}

// isDynamicCall reports whether call invokes a func-typed value: not a
// builtin, not a conversion, not a literal, and not statically bound.
func isDynamicCall(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return false
	}
	if _, ok := fun.(*ast.FuncLit); ok {
		return false
	}
	return callee(info, call) == nil
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return b.Name()
		}
	}
	return ""
}

// writeTarget resolves the base of an assignment target to a struct
// field or package-level var, digging through indexing and derefs:
// `c.docs[id] = d` writes field docs.
func writeTarget(pkg *Package, e ast.Expr) (types.Object, *types.Named) {
	e = ast.Unparen(e)
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
			continue
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
			continue
		}
		break
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				return v, namedOf(sel.Recv())
			}
			return nil, nil
		}
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v, nil
		}
	case *ast.Ident:
		if v, ok := objOf(pkg.Info, x).(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v, nil
		}
	}
	return nil, nil
}

// collectFuncEvents walks one declaration body and flattens it to
// events annotated with the held-lock set.
func collectFuncEvents(pkg *Package, decl *ast.FuncDecl, regions []lockInterval) []event {
	var evs []event
	var walk func(root ast.Node, inLit, inDefer, inGo bool)
	walk = func(root ast.Node, inLit, inDefer, inGo bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			if n == root {
				return true
			}
			switch x := n.(type) {
			case *ast.FuncLit:
				walk(x.Body, true, inDefer, inGo)
				return false
			case *ast.GoStmt:
				evs = append(evs, event{
					kind: evGo, pos: x.Pos(), held: heldAt(regions, x.Pos(), inLit),
					callee: callee(pkg.Info, x.Call), call: x.Call,
					inLit: inLit, inDefer: inDefer, inGo: inGo,
				})
				if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body, true, inDefer, true)
				}
				for _, a := range x.Call.Args {
					walk(a, inLit, inDefer, inGo)
				}
				return false
			case *ast.DeferStmt:
				if _, _, kind, _, ok := syncLockCall(pkg, x.Call); ok && kind == "unlock" {
					return false
				}
				if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body, true, true, inGo)
				} else {
					f := callee(pkg.Info, x.Call)
					evs = append(evs, event{
						kind: evCall, pos: x.Pos(), held: heldAt(regions, x.Pos(), inLit),
						callee: f, call: x.Call, dynamic: isDynamicCall(pkg.Info, x.Call),
						inLit: inLit, inDefer: true, inGo: inGo,
					})
				}
				for _, a := range x.Call.Args {
					walk(a, inLit, inDefer, inGo)
				}
				return false
			case *ast.CallExpr:
				if name, recv, kind, excl, ok := syncLockCall(pkg, x); ok {
					if kind == "lock" {
						evs = append(evs, event{
							kind: evAcquire, pos: x.Pos(), held: heldAt(regions, x.Pos(), inLit),
							class: LockClass(classOfExpr(pkg, recv)), excl: excl, name: name,
							inLit: inLit, inDefer: inDefer, inGo: inGo,
						})
					}
					return true
				}
				if f := callee(pkg.Info, x); f != nil {
					evs = append(evs, event{
						kind: evCall, pos: x.Pos(), held: heldAt(regions, x.Pos(), inLit),
						callee: f, call: x,
						inLit: inLit, inDefer: inDefer, inGo: inGo,
					})
				} else if bi := builtinName(pkg.Info, x); bi == "delete" && len(x.Args) > 0 {
					if obj, owner := writeTarget(pkg, x.Args[0]); obj != nil {
						evs = append(evs, event{
							kind: evWrite, pos: x.Pos(), held: heldAt(regions, x.Pos(), inLit),
							field: obj, fieldOwner: owner,
							inLit: inLit, inDefer: inDefer, inGo: inGo,
						})
					}
				} else if isDynamicCall(pkg.Info, x) {
					evs = append(evs, event{
						kind: evCall, pos: x.Pos(), held: heldAt(regions, x.Pos(), inLit),
						call: x, dynamic: true,
						inLit: inLit, inDefer: inDefer, inGo: inGo,
					})
				}
				return true
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if obj, owner := writeTarget(pkg, lhs); obj != nil {
						evs = append(evs, event{
							kind: evWrite, pos: lhs.Pos(), held: heldAt(regions, lhs.Pos(), inLit),
							field: obj, fieldOwner: owner,
							inLit: inLit, inDefer: inDefer, inGo: inGo,
						})
					}
				}
				return true
			case *ast.IncDecStmt:
				if obj, owner := writeTarget(pkg, x.X); obj != nil {
					evs = append(evs, event{
						kind: evWrite, pos: x.Pos(), held: heldAt(regions, x.Pos(), inLit),
						field: obj, fieldOwner: owner,
						inLit: inLit, inDefer: inDefer, inGo: inGo,
					})
				}
				return true
			}
			return true
		})
	}
	walk(decl.Body, false, false, false)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

// ---- Closed-channel and atomic-function indexes ---------------------

// indexCloses records every close(x) in pkg, by object identity and by
// declaration class, so goroleak can prove "this channel is closed
// somewhere" across functions and packages.
func (prog *Program) indexCloses(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || builtinName(pkg.Info, call) != "close" || len(call.Args) != 1 {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			if cls := classOfExpr(pkg, arg); cls != "" {
				prog.closedCls[cls] = true
			}
			if obj := exprObj(pkg, arg); obj != nil {
				prog.closedObj[obj] = true
			}
			return true
		})
	}
}

// indexAtomicFns records every field or package var whose address is
// handed to a sync/atomic package function (atomic.AddUint64(&x, 1)
// style, as opposed to the typed atomic.Uint64 API). atomicmix flags
// plain accesses to these objects anywhere in the program.
func (prog *Program) indexAtomicFns(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := callee(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || recvType(fn) != nil {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			if obj, _ := writeTarget(pkg, un.X); obj != nil {
				if _, seen := prog.atomicFn[obj]; !seen {
					prog.atomicFn[obj] = pkg.Fset.Position(call.Pos())
				}
			}
			return true
		})
	}
}

// ---- Acquires fixpoint ----------------------------------------------

// computeAcquires propagates "may acquire class C" bottom-up over
// static calls: acquires(f) = direct acquisitions ∪ acquires of every
// statically-bound callee reached outside literals and go statements.
func (prog *Program) computeAcquires() {
	prog.acquires = map[*types.Func]map[LockClass]token.Pos{}
	for _, ff := range prog.factList {
		m := map[LockClass]token.Pos{}
		for _, ev := range ff.events {
			if ev.kind == evAcquire && !ev.inLit && !ev.inGo && ev.class != "" {
				if _, ok := m[ev.class]; !ok {
					m[ev.class] = ev.pos
				}
			}
		}
		prog.acquires[ff.fn] = m
	}
	for changed := true; changed; {
		changed = false
		for _, ff := range prog.factList {
			m := prog.acquires[ff.fn]
			for _, ev := range ff.events {
				if ev.kind != evCall || ev.callee == nil || ev.inLit || ev.inGo {
					continue
				}
				for cls := range prog.acquires[ev.callee] {
					if _, ok := m[cls]; !ok {
						m[cls] = ev.pos
						changed = true
					}
				}
			}
		}
	}
}

// ---- Forever (non-termination) fixpoint -----------------------------

// chanQualified reports whether receiving from e is a sanctioned
// termination signal: a Done() channel (context-style cancellation),
// time.After, or a channel that some function in the program closes.
func (prog *Program) chanQualified(pkg *Package, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
		if f := callee(pkg.Info, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "time" && f.Name() == "After" {
			return true
		}
		return false
	}
	if cls := classOfExpr(pkg, e); cls != "" && prog.closedCls[cls] {
		return true
	}
	if obj := exprObj(pkg, e); obj != nil && prog.closedObj[obj] {
		return true
	}
	return false
}

// escapeInfo describes one way out of a loop.
type escapeInfo struct {
	inComm    bool // the escape sits inside a select communication clause
	qualified bool // that clause receives from a qualified channel
}

// commRecvChan extracts the channel of a receive-comm statement.
func commRecvChan(c ast.Stmt) ast.Expr {
	switch x := c.(type) {
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(x.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u.X
		}
	case *ast.AssignStmt:
		if len(x.Rhs) == 1 {
			if u, ok := ast.Unparen(x.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u.X
			}
		}
	}
	return nil
}

// collectEscapes gathers every statement that leaves the loop: returns,
// breaks targeting it, and panics. Function literals are opaque. The
// walk dispatches on statement kind directly so nested breakables
// (inner loops, switches, selects) retarget unlabeled breaks.
func collectEscapes(prog *Program, pkg *Package, body *ast.BlockStmt, loopLabel string) []escapeInfo {
	var out []escapeInfo
	var walk func(n ast.Node, breakDepth int, inComm, commQual bool)
	walk = func(n ast.Node, breakDepth int, inComm, commQual bool) {
		if n == nil {
			return
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ForStmt:
			walk(x.Body, breakDepth+1, inComm, commQual)
			return
		case *ast.RangeStmt:
			walk(x.Body, breakDepth+1, inComm, commQual)
			return
		case *ast.SwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, st := range cc.Body {
						walk(st, breakDepth+1, inComm, commQual)
					}
				}
			}
			return
		case *ast.TypeSwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, st := range cc.Body {
						walk(st, breakDepth+1, inComm, commQual)
					}
				}
			}
			return
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				qual := false
				if ch := commRecvChan(cc.Comm); ch != nil {
					qual = prog.chanQualified(pkg, ch)
				}
				for _, st := range cc.Body {
					walk(st, breakDepth+1, true, qual)
				}
			}
			return
		case *ast.BranchStmt:
			if x.Tok != token.BREAK {
				return
			}
			if x.Label != nil {
				if x.Label.Name == loopLabel && loopLabel != "" {
					out = append(out, escapeInfo{inComm: inComm, qualified: commQual})
				}
			} else if breakDepth == 0 {
				out = append(out, escapeInfo{inComm: inComm, qualified: commQual})
			}
			return
		case *ast.ReturnStmt:
			out = append(out, escapeInfo{inComm: inComm, qualified: commQual})
			return
		}
		// Anything else: visit children, re-dispatching statements that
		// change the escape context and recognizing terminating calls.
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch y := m.(type) {
			case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
				*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.BranchStmt, *ast.ReturnStmt:
				walk(m, breakDepth, inComm, commQual)
				return false
			case *ast.CallExpr:
				if isTerminatingCall(pkg, y) {
					out = append(out, escapeInfo{inComm: inComm, qualified: commQual})
				}
			}
			return true
		})
	}
	walk(body, 0, false, false)
	return out
}

// isTerminatingCall recognizes calls that never return: panic, os.Exit,
// runtime.Goexit, log.Fatal*.
func isTerminatingCall(pkg *Package, call *ast.CallExpr) bool {
	if builtinName(pkg.Info, call) == "panic" {
		return true
	}
	f := callee(pkg.Info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() {
	case "os":
		return f.Name() == "Exit"
	case "runtime":
		return f.Name() == "Goexit"
	case "log":
		return strings.HasPrefix(f.Name(), "Fatal")
	}
	return false
}

// loopForever decides whether one loop provably never exits. A loop is
// forever when it is unbounded (no condition, or ranging over a
// never-closed channel) and either has no escape at all, or every
// escape sits in select clauses none of which receive a termination
// signal. A conditional escape outside a select is assumed reachable —
// goroleak proves the absence of any exit, not the liveness of one.
func (prog *Program) loopForever(pkg *Package, loop ast.Stmt, label string) bool {
	var body *ast.BlockStmt
	switch l := loop.(type) {
	case *ast.ForStmt:
		if l.Cond != nil {
			return false
		}
		body = l.Body
	case *ast.RangeStmt:
		tv, ok := pkg.Info.Types[l.X]
		if !ok {
			return false
		}
		if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
			return false
		}
		if prog.chanQualified(pkg, l.X) {
			return false
		}
		body = l.Body
	default:
		return false
	}
	escs := collectEscapes(prog, pkg, body, label)
	if len(escs) == 0 {
		return true
	}
	for _, e := range escs {
		if !e.inComm || e.qualified {
			return false
		}
	}
	return true
}

// bodyForever scans a body (skipping literals) for a forever loop,
// returning its position. Labels are pre-indexed so `break L` inside a
// labeled loop resolves against the right target.
func (prog *Program) bodyForever(pkg *Package, body *ast.BlockStmt) (token.Pos, bool) {
	labels := map[ast.Stmt]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if l, ok := n.(*ast.LabeledStmt); ok {
			labels[l.Stmt] = l.Label.Name
		}
		return true
	})
	var found token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if found != token.NoPos {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			st := n.(ast.Stmt)
			if prog.loopForever(pkg, st, labels[st]) {
				found = n.Pos()
				return false
			}
		}
		return true
	})
	return found, found != token.NoPos
}

// computeForever propagates non-termination up the static call graph:
// a function is forever if its own body contains a forever loop or it
// unconditionally calls (outside literals and go statements) a forever
// function.
func (prog *Program) computeForever() {
	prog.forever = map[*types.Func]bool{}
	prog.foreverAt = map[*types.Func]token.Position{}
	for _, ff := range prog.factList {
		if pos, ok := prog.bodyForever(ff.pkg, ff.decl.Body); ok {
			prog.forever[ff.fn] = true
			prog.foreverAt[ff.fn] = ff.pkg.Fset.Position(pos)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, ff := range prog.factList {
			if prog.forever[ff.fn] {
				continue
			}
			for _, ev := range ff.events {
				if ev.kind != evCall || ev.callee == nil || ev.inLit || ev.inGo {
					continue
				}
				if prog.forever[ev.callee] {
					prog.forever[ff.fn] = true
					prog.foreverAt[ff.fn] = prog.foreverAt[ev.callee]
					changed = true
					break
				}
			}
		}
	}
}

// litForever checks a go-statement literal the same way: its own loops
// plus any statically-bound call to a forever function.
func (prog *Program) litForever(pkg *Package, lit *ast.FuncLit) (token.Position, bool) {
	if pos, ok := prog.bodyForever(pkg, lit.Body); ok {
		return pkg.Fset.Position(pos), true
	}
	var hit token.Position
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if f := callee(pkg.Info, call); f != nil && prog.forever[f] {
				hit = prog.foreverAt[f]
				found = true
				return false
			}
		}
		return true
	})
	return hit, found
}

// ---- Must-hold (calledHeld) fixpoint --------------------------------

// computeHeldIn computes, for every function, the set of lock classes
// guaranteed exclusively held at every static call site (transitively:
// a site inside f contributes its local held set plus f's own
// guarantee). Functions with no static call sites — entry points,
// exported API — get the empty guarantee. Calls from literals and go
// statements contribute the empty set: the literal runs later, under
// unknown locks. This is a must-analysis: the intersection over sites,
// starting from top.
func (prog *Program) computeHeldIn() {
	sites := map[*types.Func][]heldState{}
	siteCallers := map[*types.Func][]*types.Func{}
	for _, ff := range prog.factList {
		for _, ev := range ff.events {
			if (ev.kind != evCall && ev.kind != evGo) || ev.callee == nil {
				continue
			}
			if _, isModule := prog.facts[ev.callee]; !isModule {
				continue
			}
			st := heldState{set: map[LockClass]bool{}}
			if !ev.inLit && !ev.inGo && ev.kind != evGo {
				for _, h := range ev.held {
					if h.excl && h.class != "" {
						st.set[h.class] = true
					}
				}
				siteCallers[ev.callee] = append(siteCallers[ev.callee], ff.fn)
			} else {
				siteCallers[ev.callee] = append(siteCallers[ev.callee], nil)
			}
			sites[ev.callee] = append(sites[ev.callee], st)
		}
	}
	prog.heldIn = map[*types.Func]heldState{}
	for _, ff := range prog.factList {
		if len(sites[ff.fn]) == 0 {
			prog.heldIn[ff.fn] = heldState{set: map[LockClass]bool{}}
		} else {
			prog.heldIn[ff.fn] = heldState{top: true}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, ff := range prog.factList {
			ss := sites[ff.fn]
			if len(ss) == 0 {
				continue
			}
			acc := heldState{top: true}
			for i, st := range ss {
				eff := heldState{set: map[LockClass]bool{}}
				for c := range st.set {
					eff.set[c] = true
				}
				if caller := siteCallers[ff.fn][i]; caller != nil {
					cg := prog.heldIn[caller]
					if cg.top {
						eff.top = true
					} else {
						for c := range cg.set {
							eff.set[c] = true
						}
					}
				}
				acc = intersectHeld(acc, eff)
			}
			old := prog.heldIn[ff.fn]
			if !heldEqual(old, acc) {
				prog.heldIn[ff.fn] = acc
				changed = true
			}
		}
	}
}

func intersectHeld(a, b heldState) heldState {
	if a.top {
		return b
	}
	if b.top {
		return a
	}
	out := heldState{set: map[LockClass]bool{}}
	for c := range a.set {
		if b.set[c] {
			out.set[c] = true
		}
	}
	return out
}

func heldEqual(a, b heldState) bool {
	if a.top != b.top {
		return false
	}
	if a.top {
		return true
	}
	if len(a.set) != len(b.set) {
		return false
	}
	for c := range a.set {
		if !b.set[c] {
			return false
		}
	}
	return true
}

// guaranteedHeld reports whether class is exclusively held at ev inside
// fn: locally (the event's held set) or by every caller (heldIn).
func (prog *Program) guaranteedHeld(fn *types.Func, ev event, class LockClass) bool {
	for _, h := range ev.held {
		if h.excl && h.class == class {
			return true
		}
	}
	g := prog.heldIn[fn]
	return !g.top && g.set[class]
}

// ---- Lock-order graph and cycles ------------------------------------

type cycleDiag struct {
	witness token.Position
	message string
}

// computeLockGraph records every "acquire B while holding A" edge —
// direct acquisitions and, transitively, calls into functions that may
// acquire — then condenses the class graph and prepares one diagnostic
// per strongly connected component with a cycle.
func (prog *Program) computeLockGraph() {
	type edgeKey struct{ from, to LockClass }
	seen := map[edgeKey]bool{}
	for _, ff := range prog.factList {
		for _, ev := range ff.events {
			if ev.inLit || ev.inGo {
				continue
			}
			switch ev.kind {
			case evAcquire:
				if ev.class == "" {
					continue
				}
				for _, h := range ev.held {
					if h.class == "" || (h.class == ev.class && h.name == ev.name) {
						continue
					}
					k := edgeKey{h.class, ev.class}
					if !seen[k] {
						seen[k] = true
						prog.lockEdges = append(prog.lockEdges, LockEdge{
							From: h.class, To: ev.class,
							Witness: ff.pkg.Fset.Position(ev.pos),
							Func:    ff.fn.FullName(),
						})
					}
				}
			case evCall:
				if ev.callee == nil || len(ev.held) == 0 {
					continue
				}
				for cls := range prog.acquires[ev.callee] {
					for _, h := range ev.held {
						if h.class == "" {
							continue
						}
						k := edgeKey{h.class, cls}
						if !seen[k] {
							seen[k] = true
							prog.lockEdges = append(prog.lockEdges, LockEdge{
								From: h.class, To: cls,
								Witness: ff.pkg.Fset.Position(ev.pos),
								Func:    ff.fn.FullName(),
							})
						}
					}
				}
			}
		}
	}
	sort.Slice(prog.lockEdges, func(i, j int) bool {
		if prog.lockEdges[i].From != prog.lockEdges[j].From {
			return prog.lockEdges[i].From < prog.lockEdges[j].From
		}
		return prog.lockEdges[i].To < prog.lockEdges[j].To
	})
	prog.findCycles()
}

// findCycles condenses the lock-class digraph into strongly connected
// components; any component with two or more classes — or a self-loop —
// is an acquisition-order hazard.
func (prog *Program) findCycles() {
	adj := map[LockClass][]LockEdge{}
	var nodes []LockClass
	nodeSeen := map[LockClass]bool{}
	for _, e := range prog.lockEdges {
		adj[e.From] = append(adj[e.From], e)
		for _, c := range []LockClass{e.From, e.To} {
			if !nodeSeen[c] {
				nodeSeen[c] = true
				nodes = append(nodes, c)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	// Tarjan SCC, iterative enough for our graph sizes via recursion.
	index := map[LockClass]int{}
	low := map[LockClass]int{}
	onStack := map[LockClass]bool{}
	var stack []LockClass
	counter := 0
	var sccs [][]LockClass
	var strongconnect func(v LockClass)
	strongconnect = func(v LockClass) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range adj[v] {
			w := e.To
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []LockClass
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}

	for _, comp := range sccs {
		inComp := map[LockClass]bool{}
		for _, c := range comp {
			inComp[c] = true
		}
		var cyclic []LockEdge
		for _, c := range comp {
			for _, e := range adj[c] {
				if inComp[e.To] && (len(comp) > 1 || e.To == e.From) {
					cyclic = append(cyclic, e)
				}
			}
		}
		if len(cyclic) == 0 {
			continue
		}
		sort.Slice(cyclic, func(i, j int) bool {
			if cyclic[i].From != cyclic[j].From {
				return cyclic[i].From < cyclic[j].From
			}
			return cyclic[i].To < cyclic[j].To
		})
		var parts []string
		for _, e := range cyclic {
			parts = append(parts, fmt.Sprintf("%s acquired while holding %s (%s, %s)",
				shortClass(e.To), shortClass(e.From), e.Func, posString(e.Witness)))
		}
		prog.cycleDiags = append(prog.cycleDiags, cycleDiag{
			witness: cyclic[0].Witness,
			message: "lock-order cycle: " + strings.Join(parts, "; ") + " — acquire these locks in one consistent order",
		})
	}
}

// shortClass trims the module path from a class for readable messages.
func shortClass(c LockClass) string {
	s := string(c)
	i := strings.LastIndex(s, "/")
	if i < 0 {
		return s
	}
	tail := s[i+1:]
	if strings.HasPrefix(s, "(") && !strings.HasPrefix(tail, "(") {
		return "(" + tail
	}
	return tail
}

func posString(p token.Position) string {
	name := p.Filename
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

// ---- Debug output (-graph / -summaries) -----------------------------

// LockEdges returns the global acquisition-order edges, sorted.
func (prog *Program) LockEdges() []LockEdge {
	prog.ensure()
	return prog.lockEdges
}

// Summaries returns the per-function summary table, sorted by function.
func (prog *Program) Summaries() []FuncSummary {
	prog.ensure()
	var out []FuncSummary
	for _, ff := range prog.factList {
		var acq []string
		for cls := range prog.acquires[ff.fn] {
			acq = append(acq, string(cls))
		}
		sort.Strings(acq)
		out = append(out, FuncSummary{
			Func:     ff.fn.FullName(),
			Acquires: acq,
			Forever:  prog.forever[ff.fn],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Func < out[j].Func })
	return out
}
