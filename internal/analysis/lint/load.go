package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks every package in the module. Imports
// inside the module are resolved directly against the source tree (with
// memoization); everything else — the standard library — goes through
// go/types' source importer, so no compiled export data or external
// tooling is needed.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

// NewLoader locates go.mod at root and prepares a loader.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %s is not a module root: %w", abs, err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:       fset,
		ModuleRoot: abs,
		ModulePath: modPath,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	l.std = std
	return l, nil
}

// LoadAll discovers and loads every package under the module root.
// Test files, testdata, vendor, and hidden directories are skipped: the
// invariants guard production code, and tests are free to use wall
// clocks and unseeded randomness.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot &&
			(name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, err)
		}
		out = append(out, pkg)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// load parses and type-checks the module package at importPath.
func (l *Loader) load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	rel := strings.TrimPrefix(importPath, l.ModulePath)
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			files = append(files, filepath.Join(dir, n))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(files)
	pkg, err := l.check(importPath, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// LoadFixture type-checks an arbitrary directory of Go files *as if*
// it lived at asPath inside the module. The golden-file tests use this
// to place fixtures in scope for path-scoped analyzers.
func (l *Loader) LoadFixture(dir, asPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			files = append(files, filepath.Join(dir, n))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(asPath, files)
}

func (l *Loader) check(importPath string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{Path: importPath, Fset: l.Fset, Files: files}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if tpkg == nil {
		return nil, err
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// Import implements types.Importer: module-internal packages resolve
// against the source tree, everything else falls through to the source
// importer (which handles the standard library).
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
