package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GenDiscipline machine-checks the repo's generation protocol — the
// invariant DESIGN.md states in prose and the result cache's freshness
// proof rests on:
//
//  1. Every mutation of a collection's data happens under the write
//     lock, and every write-locked region that mutates data bumps the
//     generation before releasing the lock. (A mutation that escapes
//     the bump leaves the cache validating stale entries forever.)
//  2. The generation bump itself happens while the write lock is held,
//     so no reader can observe new data under the old generation.
//  3. Every rcache consult passes a generation that was loaded from a
//     generation counter before the read — never a constant, never a
//     value conjured after the fact.
//  4. Routed write paths (Router.writeOnGroup callers) bump the shard
//     generation, so cached reads and ETags see the write.
//
// The shapes are configured (Config.GenCollections / GenPairs) so the
// golden fixtures can replicate them under their own types.
//
// Soundness boundary: held-lock context propagates through static
// calls only (a mutator invoked via interface or func value gets the
// empty guarantee and is flagged); rule 3's data-flow trace follows
// local single assignments, not parameters across functions.
var GenDiscipline = &Analyzer{
	Name: "gendiscipline",
	Doc:  "datastore mutations must bump the collection generation under the write lock; cache consults must load it first",
	Run:  runGenDiscipline,
}

// GenCollection describes one generation-counted container shape.
type GenCollection struct {
	TypeName   string   // unqualified type name, e.g. "Collection"
	LockField  string   // the guarding RWMutex field, e.g. "mu"
	BumpMethod string   // the bump-under-lock method, e.g. "bumpGenLocked"
	DataFields []string // fields whose mutation requires a bump
}

// GenPair describes a write-method/bump-method pairing on one type.
type GenPair struct {
	TypeName    string // e.g. "Router"
	WriteMethod string // e.g. "writeOnGroup"
	BumpMethod  string // e.g. "bumpGen"
}

func runGenDiscipline(p *Pass) {
	rel := p.Cfg.Rel(p.Pkg.Path)
	if !inScope(rel, p.Cfg.GenScope) {
		return
	}
	prog := p.Prog
	prog.ensure()
	facts := prog.factsFor(p.Pkg)
	for _, spec := range p.Cfg.GenCollections {
		mutates, bumps := prog.genSummaries(spec)
		for _, ff := range facts {
			checkCollectionFacts(p, prog, spec, ff, mutates, bumps)
		}
	}
	for _, pair := range p.Cfg.GenPairs {
		for _, ff := range facts {
			checkPair(p, pair, ff)
		}
	}
	for _, ff := range facts {
		checkCacheConsults(p, ff)
	}
}

// ---- Shape matching -------------------------------------------------

func ownerIs(owner *types.Named, typeName string) bool {
	if owner == nil || owner.Obj().Name() != typeName {
		return false
	}
	_, isStruct := owner.Underlying().(*types.Struct)
	return isStruct
}

func isSpecDataWrite(spec GenCollection, ev event) bool {
	if ev.kind != evWrite || !ownerIs(ev.fieldOwner, spec.TypeName) {
		return false
	}
	for _, f := range spec.DataFields {
		if ev.field.Name() == f {
			return true
		}
	}
	return false
}

func isSpecBumpCall(spec GenCollection, ev event) bool {
	return ev.kind == evCall && ev.callee != nil && ev.callee.Name() == spec.BumpMethod &&
		ownerIs(namedOf(recvType(ev.callee)), spec.TypeName)
}

// specLockClass reports whether a lock class is the spec's guard:
// "(pkg.TypeName).LockField" for any package.
func specLockClass(spec GenCollection, class LockClass) bool {
	return strings.HasSuffix(string(class), "."+spec.TypeName+")."+spec.LockField)
}

// methodOwnerIs reports whether fn is a method on the spec type.
func methodOwnerIs(fn *types.Func, typeName string) bool {
	return ownerIs(namedOf(recvType(fn)), typeName)
}

// ---- Transitive mutate/bump summaries (cached per spec) -------------

// genSummaries computes, bottom-up, which functions (transitively)
// mutate the spec's data fields and which (transitively) bump its
// generation. Calls inside literals and go statements do not count: a
// mutation deferred to another goroutine is not covered by this lock
// region anyway.
func (prog *Program) genSummaries(spec GenCollection) (mutates, bumps map[*types.Func]bool) {
	if prog.genCache == nil {
		prog.genCache = map[string][2]map[*types.Func]bool{}
	}
	if c, ok := prog.genCache[spec.TypeName]; ok {
		return c[0], c[1]
	}
	mutates = map[*types.Func]bool{}
	bumps = map[*types.Func]bool{}
	for _, ff := range prog.factList {
		for _, ev := range ff.events {
			if ev.inLit || ev.inGo {
				continue
			}
			if isSpecDataWrite(spec, ev) {
				mutates[ff.fn] = true
			}
			if isSpecBumpCall(spec, ev) {
				bumps[ff.fn] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, ff := range prog.factList {
			for _, ev := range ff.events {
				if ev.kind != evCall || ev.callee == nil || ev.inLit || ev.inGo {
					continue
				}
				if mutates[ev.callee] && !mutates[ff.fn] {
					mutates[ff.fn] = true
					changed = true
				}
				if bumps[ev.callee] && !bumps[ff.fn] {
					bumps[ff.fn] = true
					changed = true
				}
			}
		}
	}
	prog.genCache[spec.TypeName] = [2]map[*types.Func]bool{mutates, bumps}
	return mutates, bumps
}

// ---- Rules 1 & 2: mutations and bumps under the write lock ----------

func checkCollectionFacts(p *Pass, prog *Program, spec GenCollection, ff *funcFacts, mutates, bumps map[*types.Func]bool) {
	// Rule 2: a bump call must run with the spec lock exclusively held —
	// locally or guaranteed by every caller. The bump method itself is
	// exempt (it is the mechanism, not a use).
	for _, ev := range ff.events {
		if !isSpecBumpCall(spec, ev) || ev.inLit || ev.inGo {
			continue
		}
		if !specHeld(prog, spec, ff.fn, ev) {
			p.Reportf(ev.pos,
				"%s called without holding the %s write lock; a reader can observe the new generation before the data (or vice versa)",
				spec.BumpMethod, spec.TypeName)
		}
	}

	// Rule 1a: direct data-field writes need the write lock.
	for _, ev := range ff.events {
		if !isSpecDataWrite(spec, ev) || ev.inLit || ev.inGo {
			continue
		}
		if ff.fn.Name() == spec.BumpMethod {
			continue
		}
		if !specHeld(prog, spec, ff.fn, ev) && !isConstructor(prog, ff, spec) {
			p.Reportf(ev.pos,
				"%s.%s mutated without holding the %s write lock",
				spec.TypeName, ev.field.Name(), spec.TypeName)
		}
	}

	// Rule 1b: every exclusive critical section of the spec lock that
	// mutates data (directly or through calls) must also bump
	// (directly or through calls) before releasing.
	for _, region := range ff.regions {
		if !region.lk.excl || !specLockClass(spec, region.lk.class) {
			continue
		}
		var regionMutates, regionBumps bool
		for _, ev := range ff.events {
			if !region.contains(ev.pos) || ev.inLit || ev.inGo {
				continue
			}
			if isSpecDataWrite(spec, ev) {
				regionMutates = true
			}
			if isSpecBumpCall(spec, ev) {
				regionBumps = true
			}
			if ev.kind == evCall && ev.callee != nil {
				if mutates[ev.callee] {
					regionMutates = true
				}
				if bumps[ev.callee] {
					regionBumps = true
				}
			}
		}
		if regionMutates && !regionBumps {
			p.Reportf(region.lk.pos,
				"write-locked region mutates %s data but never bumps the generation; cached reads will validate stale entries against the old generation forever",
				spec.TypeName)
		}
	}
}

// specHeld reports whether the spec's write lock is exclusively held at
// ev: in the event's own held set, or guaranteed at every static call
// site of the containing function.
func specHeld(prog *Program, spec GenCollection, fn *types.Func, ev event) bool {
	for _, h := range ev.held {
		if h.excl && specLockClass(spec, h.class) {
			return true
		}
	}
	g := prog.heldIn[fn]
	if g.top {
		return false
	}
	for cls := range g.set {
		if specLockClass(spec, cls) {
			return true
		}
	}
	return false
}

// isConstructor exempts functions that build a fresh, unpublished
// value: a function in the spec type's own package whose body writes
// fields of a value it just allocated. The heuristic is the usual one —
// the function returns the spec type (or a pointer to it) and is not a
// method on it.
func isConstructor(prog *Program, ff *funcFacts, spec GenCollection) bool {
	sig, ok := ff.fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named := namedOf(res.At(i).Type()); named != nil && named.Obj().Name() == spec.TypeName {
			return true
		}
	}
	return false
}

// ---- Rule 3: cache consults load the generation first ---------------

// checkCacheConsults verifies the gen argument of every
// rcache.Cache.GetOrCompute call derives from a generation counter
// (a .Generation(), an atomic .Load(), or a .sum()) loaded in this
// function before the consult — not a constant or unrelated value.
func checkCacheConsults(p *Pass, ff *funcFacts) {
	for _, ev := range ff.events {
		if ev.kind != evCall || ev.callee == nil || ev.callee.Name() != "GetOrCompute" {
			continue
		}
		named := namedOf(recvType(ev.callee))
		if named == nil || named.Obj().Name() != "Cache" || !strings.HasSuffix(named.Obj().Pkg().Path(), "rcache") {
			continue
		}
		idx := genParamIndex(ev.callee)
		if idx < 0 || idx >= len(ev.call.Args) {
			continue
		}
		if !genArgOK(ff.pkg, ff.decl.Body, ev.call.Args[idx], ev.pos, 0) {
			p.Reportf(ev.call.Args[idx].Pos(),
				"generation passed to GetOrCompute does not derive from a generation counter loaded before the read; the freshness contract (gen before data) is unprovable here")
		}
	}
}

// genParamIndex finds the parameter named "gen" in the signature.
func genParamIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == "gen" {
			return i
		}
	}
	return -1
}

// genArgOK reports whether e contains a generation source, following
// local single assignments backward (bounded depth).
func genArgOK(pkg *Package, body *ast.BlockStmt, e ast.Expr, usePos token.Pos, depth int) bool {
	if depth > 4 {
		return false
	}
	e = ast.Unparen(e)
	if containsGenSource(pkg, e) {
		return true
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := objOf(pkg.Info, id)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() >= usePos {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || objOf(pkg.Info, lid) != obj {
				continue
			}
			var rhs ast.Expr
			switch {
			case len(as.Rhs) == len(as.Lhs):
				rhs = as.Rhs[i]
			case len(as.Rhs) == 1:
				rhs = as.Rhs[0]
			}
			if rhs != nil && genArgOK(pkg, body, rhs, usePos, depth+1) {
				found = true
			}
		}
		return !found
	})
	return found
}

// containsGenSource scans an expression for a call whose name marks a
// generation read: Generation(), an atomic Load(), or sum().
func containsGenSource(pkg *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fn := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			name = fn.Sel.Name
		case *ast.Ident:
			name = fn.Name
		}
		switch name {
		case "Generation", "Load", "sum":
			found = true
			return false
		}
		return true
	})
	return found
}

// ---- Rule 4: routed writes bump the shard generation ----------------

func checkPair(p *Pass, pair GenPair, ff *funcFacts) {
	name := ff.fn.Name()
	if name == pair.WriteMethod || name == pair.BumpMethod {
		return
	}
	var writes []event
	sawBump := false
	for _, ev := range ff.events {
		if ev.kind != evCall || ev.callee == nil {
			continue
		}
		switch {
		case ev.callee.Name() == pair.WriteMethod && methodOwnerIs(ev.callee, pair.TypeName):
			writes = append(writes, ev)
		case ev.callee.Name() == pair.BumpMethod && methodOwnerIs(ev.callee, pair.TypeName):
			sawBump = true
		}
	}
	if sawBump {
		return
	}
	for _, ev := range writes {
		p.Reportf(ev.pos,
			"%s.%s write path never calls %s; cached reads and ETags will not see this write until an unrelated one lands",
			pair.TypeName, pair.WriteMethod, pair.BumpMethod)
	}
}
