package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WrapCheck enforces the error-classification contract at the cluster
// and REST boundaries: an error produced by *another* package must not
// be returned bare. It either gets wrapped (`fmt.Errorf("...: %w",
// err)`) so the chain survives errors.Is/As — the router's retry and
// 503 mapping depend on finding queryengine.ErrUnavailable and
// datastore.ErrNotFound in the chain — or mapped to such a typed
// sentinel explicitly.
//
// Allowed: returning package-level sentinels (they *are* the
// classification), errors from same-package helpers (the boundary is
// between packages, not functions), fmt/errors constructors, and
// dynamic calls through func values (target unknowable statically).
var WrapCheck = &Analyzer{
	Name: "wrapcheck",
	Doc:  "cross-package errors returned bare lose the context retry classification needs",
	Run:  runWrapCheck,
}

func runWrapCheck(p *Pass) {
	rel := p.Cfg.Rel(p.Pkg.Path)
	if !inScope(rel, p.Cfg.WrapScope) {
		return
	}
	for _, file := range p.Pkg.Files {
		pm := buildParents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				checkReturnedError(p, pm, res)
			}
			return true
		})
	}
}

func checkReturnedError(p *Pass, pm parentMap, res ast.Expr) {
	res = ast.Unparen(res)
	tv, ok := p.Pkg.Info.Types[res]
	if !ok || !isErrorType(tv.Type) {
		return
	}
	switch x := res.(type) {
	case *ast.Ident:
		if x.Name == "nil" {
			return
		}
		obj := objOf(p.Pkg.Info, x)
		if obj == nil {
			return
		}
		// Package-level error vars are sentinels by construction.
		if obj.Parent() == obj.Pkg().Scope() {
			return
		}
		if f := lastErrorSource(p, pm, x, obj); f != nil {
			p.Reportf(x.Pos(),
				"error from %s returned bare across the package boundary; wrap it (fmt.Errorf(\"...: %%w\", err)) or map it to a typed sentinel", f.FullName())
		}
	case *ast.SelectorExpr:
		// pkg.ErrSentinel — typed sentinel, allowed.
		return
	case *ast.CallExpr:
		f := callee(p.Pkg.Info, x)
		if f == nil {
			return // dynamic call
		}
		if isForeignErrorFunc(p, f) {
			p.Reportf(x.Pos(),
				"error from %s returned bare across the package boundary; wrap it (fmt.Errorf(\"...: %%w\", err)) or map it to a typed sentinel", f.FullName())
		}
	}
}

// lastErrorSource finds the assignment to obj nearest above the use and
// returns the cross-package callee it came from, if that is what it
// was.
func lastErrorSource(p *Pass, pm parentMap, use *ast.Ident, obj types.Object) *types.Func {
	body := enclosingFunc(pm, use)
	if body == nil {
		return nil
	}
	var bestPos token.Pos = token.NoPos
	var bestFunc *types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || a.Pos() >= use.Pos() {
			return true
		}
		for _, l := range a.Lhs {
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok || objOf(p.Pkg.Info, id) != obj {
				continue
			}
			if a.Pos() <= bestPos {
				continue
			}
			bestPos = a.Pos()
			bestFunc = nil
			if len(a.Rhs) == 1 {
				if c, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
					if f := callee(p.Pkg.Info, c); f != nil && isForeignErrorFunc(p, f) {
						bestFunc = f
					}
				}
			}
		}
		return true
	})
	return bestFunc
}

// isForeignErrorFunc reports whether f lives in another package and is
// not a sanctioned constructor/wrapper.
func isForeignErrorFunc(p *Pass, f *types.Func) bool {
	pkg := f.Pkg()
	if pkg == nil || pkg.Path() == p.Pkg.Path {
		return false
	}
	switch pkg.Path() {
	case "errors", "fmt":
		return false
	}
	return true
}
