package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix enforces the all-or-nothing rule for sync/atomic: a field
// (or package var) whose address is handed to an atomic function
// anywhere in the program must never be read or written plainly
// elsewhere — the plain access races with the atomic one, and the race
// detector only catches the schedules it happens to see. The check is
// interprocedural by construction: the atomic-use index spans every
// package, the plain accesses are reported wherever they occur.
//
// A second rule catches the subtler time-of-check bug the typed
// atomics (atomic.Uint64 and friends) still allow: loading the same
// atomic twice inside one decision (the if's init/cond and again in
// its body), where the value may have moved between loads. Reuse the
// first load.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic must never be accessed plainly; one decision gets one load",
	Run:  runAtomicMix,
}

func runAtomicMix(p *Pass) {
	rel := p.Cfg.Rel(p.Pkg.Path)
	if !inScope(rel, p.Cfg.AtomicScope) {
		return
	}
	prog := p.Prog
	prog.ensure()
	if len(prog.atomicFn) > 0 {
		checkPlainAccess(p, prog)
	}
	checkDoubleLoad(p)
}

// checkPlainAccess reports every non-atomic use of an object in the
// program-wide atomic index. The atomic call sites themselves, struct
// field declarations, and composite-literal keys are exempt.
func checkPlainAccess(p *Pass, prog *Program) {
	for _, f := range p.Pkg.Files {
		pm := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Pkg.Info.Uses[id]
			if obj == nil {
				return true
			}
			at, tracked := prog.atomicFn[obj]
			if !tracked {
				return true
			}
			if isAtomicOperand(p.Pkg, pm, id) || isCompositeKey(pm, id) {
				return true
			}
			p.Reportf(id.Pos(),
				"%s is accessed with sync/atomic at %s; this plain access races with it — use the atomic API everywhere",
				id.Name, posString(at))
			return true
		})
	}
}

// isAtomicOperand reports whether id is (part of) the &x operand of a
// sync/atomic function call.
func isAtomicOperand(pkg *Package, pm parentMap, id *ast.Ident) bool {
	for cur := ast.Node(id); cur != nil; cur = pm[cur] {
		un, ok := cur.(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			continue
		}
		call, ok := pm[un].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := callee(pkg.Info, call)
		return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && recvType(fn) == nil
	}
	return false
}

// isCompositeKey reports whether id is the field name of a
// composite-literal element (T{field: v}), which is initialization
// before publication, not an access.
func isCompositeKey(pm parentMap, id *ast.Ident) bool {
	kv, ok := pm[id].(*ast.KeyValueExpr)
	if !ok || kv.Key != id {
		return false
	}
	_, inLit := pm[kv].(*ast.CompositeLit)
	return inLit
}

// checkDoubleLoad flags two atomic loads of the same expression inside
// one if-decision: one in the init/cond, another in the cond, body, or
// else branch. Between the two loads the value may change, so the
// branch taken and the value used disagree.
func checkDoubleLoad(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifStmt, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			first := map[string]token.Pos{}
			collect := func(n ast.Node, record bool) {
				if n == nil {
					return
				}
				ast.Inspect(n, func(m ast.Node) bool {
					if _, isIf := m.(*ast.IfStmt); isIf && m != n {
						return false // nested ifs get their own check
					}
					if _, isLit := m.(*ast.FuncLit); isLit {
						return false
					}
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					key, ok := atomicLoadKey(p.Pkg, call)
					if !ok {
						return true
					}
					if prev, seen := first[key]; seen && prev < call.Pos() {
						p.Reportf(call.Pos(),
							"atomic %s is loaded again inside the same decision (first load at %s); the value may have changed between loads — reuse the first",
							key, posString(p.Pkg.Fset.Position(prev)))
					} else if record {
						first[key] = call.Pos()
					}
					return true
				})
			}
			collect(ifStmt.Init, true)
			collect(ifStmt.Cond, true)
			collect(ifStmt.Body, false)
			if ifStmt.Else != nil {
				if _, isIf := ifStmt.Else.(*ast.IfStmt); !isIf {
					collect(ifStmt.Else, false)
				}
			}
			return true
		})
	}
}

// atomicLoadKey recognizes a typed-atomic x.Load() or a
// atomic.LoadT(&x) call, returning a stable expression key.
func atomicLoadKey(pkg *Package, call *ast.CallExpr) (string, bool) {
	fn := callee(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	if recvType(fn) != nil {
		if fn.Name() != "Load" {
			return "", false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		return types.ExprString(sel.X), true
	}
	switch fn.Name() {
	case "LoadInt32", "LoadInt64", "LoadUint32", "LoadUint64", "LoadPointer", "LoadUintptr":
		if len(call.Args) == 1 {
			if un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && un.Op == token.AND {
				return types.ExprString(un.X), true
			}
		}
	}
	return "", false
}
