package lint_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"matproj/internal/analysis/lint"
)

// moduleRoot climbs from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

func newLoader(t *testing.T) *lint.Loader {
	t.Helper()
	l, err := lint.NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func analyzerByName(t *testing.T, name string) *lint.Analyzer {
	t.Helper()
	for _, a := range lint.Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// runFixture loads testdata/src/<dir> as if it lived at asPath and runs
// one analyzer over it.
func runFixture(t *testing.T, l *lint.Loader, dir, asPath, analyzer string) []lint.Diagnostic {
	t.Helper()
	pkg, err := l.LoadFixture(filepath.Join("testdata", "src", dir), asPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	for _, te := range pkg.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", dir, te)
	}
	cfg := lint.DefaultConfig(l.ModulePath)
	return lint.Run(pkg, cfg, []*lint.Analyzer{analyzerByName(t, analyzer)})
}

// want is one expectation parsed from a fixture comment:
//
//	<code> // want `regex`
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile("// want `([^`]+)`")

func parseWants(t *testing.T, dir string) []want {
	t.Helper()
	var wants []want
	fixDir := filepath.Join("testdata", "src", dir)
	ents, err := os.ReadDir(fixDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(fixDir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regex: %v", path, line, err)
			}
			wants = append(wants, want{file: e.Name(), line: line, re: re})
		}
		f.Close()
	}
	return wants
}

// checkGolden matches diagnostics against want expectations one-to-one.
func checkGolden(t *testing.T, dir string, diags []lint.Diagnostic) {
	t.Helper()
	wants := parseWants(t, dir)
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || filepath.Base(d.Pos.Filename) != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: missing expected diagnostic at %s:%d matching %q", dir, w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("%s: unexpected diagnostic %s", dir, d)
		}
	}
}

func TestGoldenFixtures(t *testing.T) {
	l := newLoader(t)
	cases := []struct {
		dir      string
		analyzer string
		asPath   string
	}{
		// Each fixture is mounted at an import path inside the
		// analyzer's scope.
		{"clockdiscipline", "clockdiscipline", "matproj/internal/fireworks/lintfixture"},
		{"seededrand", "seededrand", "matproj/internal/faults/lintfixture"},
		{"fsyncerr", "fsyncerr", "matproj/internal/datastore/lintfixture"},
		{"docaliasing", "docaliasing", "matproj/internal/builder/lintfixture"},
		{"lockheld", "lockheld", "matproj/internal/cluster/lintfixture"},
		{"wrapcheck", "wrapcheck", "matproj/internal/cluster/lintfixture"},
		{"suppress", "clockdiscipline", "matproj/internal/fireworks/lintfixture"},
		{"lockorder", "lockorder", "matproj/internal/cluster/lintfixture"},
		{"goroleak", "goroleak", "matproj/internal/cluster/lintfixture"},
		{"gendiscipline", "gendiscipline", "matproj/internal/datastore/lintfixture"},
		{"atomicmix", "atomicmix", "matproj/internal/cluster/lintfixture"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			diags := runFixture(t, l, tc.dir, tc.asPath, tc.analyzer)
			checkGolden(t, tc.dir, diags)
		})
	}
}

// TestClockAllowlist mounts the clockdiscipline fixture inside
// internal/obs, which is allowlisted: every finding must vanish.
func TestClockAllowlist(t *testing.T) {
	l := newLoader(t)
	diags := runFixture(t, l, "clockdiscipline", "matproj/internal/obs/lintfixture", "clockdiscipline")
	if len(diags) != 0 {
		t.Fatalf("allowlisted package still produced findings: %v", diags)
	}
}

// TestFileIgnore verifies //lint:file-ignore silences the named
// analyzer for the whole file.
func TestFileIgnore(t *testing.T) {
	l := newLoader(t)
	diags := runFixture(t, l, "fileignore", "matproj/internal/fireworks/lintfixture", "clockdiscipline")
	if len(diags) != 0 {
		t.Fatalf("file-ignore did not suppress: %v", diags)
	}
}

// TestReasonlessDirective verifies a directive without a reason is
// itself reported and suppresses nothing.
func TestReasonlessDirective(t *testing.T) {
	l := newLoader(t)
	diags := runFixture(t, l, "badsuppress", "matproj/internal/fireworks/lintfixture", "clockdiscipline")
	var sawDirective, sawSleep bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "lint" && strings.Contains(d.Message, "needs a reason"):
			sawDirective = true
		case d.Analyzer == "clockdiscipline" && strings.Contains(d.Message, "time.Sleep"):
			sawSleep = true
		default:
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	if !sawDirective {
		t.Error("reason-less directive was not reported")
	}
	if !sawSleep {
		t.Error("reason-less directive suppressed the finding it covered")
	}
}

// TestSelect covers the -only/-skip plumbing, including unknown names.
func TestSelect(t *testing.T) {
	all := lint.Analyzers()
	only, err := lint.Select(all, []string{"fsyncerr"}, nil)
	if err != nil || len(only) != 1 || only[0].Name != "fsyncerr" {
		t.Fatalf("Select only: %v %v", only, err)
	}
	skipped, err := lint.Select(all, nil, []string{"fsyncerr", "wrapcheck"})
	if err != nil || len(skipped) != len(all)-2 {
		t.Fatalf("Select skip: %v %v", skipped, err)
	}
	if _, err := lint.Select(all, []string{"nope"}, nil); err == nil {
		t.Fatal("Select accepted an unknown analyzer name")
	}
}

// TestSelfHosted runs the full suite over the lint package and the
// mplint command themselves: the analyzers must come back clean on
// their own source.
func TestSelfHosted(t *testing.T) {
	l := newLoader(t)
	root := moduleRoot(t)
	cfg := lint.DefaultConfig(l.ModulePath)
	targets := []struct{ dir, asPath string }{
		{filepath.Join(root, "internal", "analysis", "lint"), "matproj/internal/analysis/lint"},
		{filepath.Join(root, "cmd", "mplint"), "matproj/cmd/mplint"},
	}
	for _, tgt := range targets {
		pkg, err := l.LoadFixture(tgt.dir, tgt.asPath)
		if err != nil {
			t.Fatalf("load %s: %v", tgt.asPath, err)
		}
		for _, te := range pkg.TypeErrors {
			t.Fatalf("%s: type error: %v", tgt.asPath, te)
		}
		if diags := lint.Run(pkg, cfg, lint.Analyzers()); len(diags) != 0 {
			for _, d := range diags {
				t.Errorf("self-hosted finding: %s", d)
			}
		}
	}
}

// TestDiagnosticString pins the position-accurate rendering contract
// that scripts/check.sh greps.
func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{Analyzer: "fsyncerr", Message: "boom"}
	d.Pos.Filename = "x.go"
	d.Pos.Line, d.Pos.Column = 3, 7
	want := fmt.Sprintf("%s:%d:%d: %s (%s)", "x.go", 3, 7, "boom", "fsyncerr")
	if d.String() != want {
		t.Fatalf("String = %q, want %q", d.String(), want)
	}
}
