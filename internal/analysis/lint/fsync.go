package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FsyncErr enforces the crash-safety contract (§IV-C): durability
// claims are only as good as the least-checked fsync. It reports
// discarded error results from
//
//   - Sync / Flush (and module helpers whose name starts or ends with
//     sync/flush) — an fsync error means acknowledged data may not be
//     on disk, which is the one thing the journal exists to prevent;
//   - Write / WriteString on *os.File and *bufio.Writer — journal
//     append helpers must not drop short writes;
//   - Close on *os.File write handles — the OS may surface a deferred
//     write-back failure only at close.
//
// Two idioms stay legal: closing a read-only handle (mode is tracked
// from os.Open/os.OpenFile flags), and best-effort cleanup on a path
// that is already returning an error (`f.Close(); os.Remove(tmp);
// return err`). An explicit `_ = f.Close()` is a visible decision and
// is not reported.
var FsyncErr = &Analyzer{
	Name: "fsyncerr",
	Doc:  "unchecked Sync/Flush/Write/Close errors silently void the durability contract",
	Run:  runFsyncErr,
}

func runFsyncErr(p *Pass) {
	rel := p.Cfg.Rel(p.Pkg.Path)
	if !inScope(rel, p.Cfg.FsyncScope) {
		return
	}
	for _, file := range p.Pkg.Files {
		pm := buildParents(file)
		readOnly := trackFileModes(p, file)
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			}
			if call == nil {
				return true
			}
			f := callee(p.Pkg.Info, call)
			if f == nil {
				return true
			}
			kind := classifyDurabilityCall(f)
			if kind == "" {
				return true
			}
			if kind == "close" {
				if recvObj := receiverObject(p, call); recvObj != nil && readOnly[recvObj] {
					return true
				}
				if onErrorCleanupPath(pm, n) {
					return true
				}
			}
			p.Reportf(call.Pos(),
				"%s error discarded; a failed %s means acknowledged data may not be durable — check it (or assign to _ to record the decision)",
				f.Name(), f.Name())
			return true
		})
	}
}

// classifyDurabilityCall returns "sync", "write", or "close" for calls
// whose error result guards durability, else "".
func classifyDurabilityCall(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return ""
	}
	if !isErrorType(sig.Results().At(sig.Results().Len() - 1).Type()) {
		return ""
	}
	recv := recvType(f)
	name := strings.ToLower(f.Name())
	switch {
	case strings.HasPrefix(name, "sync") || strings.HasSuffix(name, "sync") ||
		strings.HasPrefix(name, "flush") || strings.HasSuffix(name, "flush"):
		return "sync"
	case (f.Name() == "Write" || f.Name() == "WriteString") &&
		(isNamed(recv, "os", "File") || isNamed(recv, "bufio", "Writer")):
		return "write"
	case f.Name() == "Close" && isNamed(recv, "os", "File"):
		return "close"
	}
	return ""
}

// receiverObject resolves the object of a method call's receiver when
// it is a plain identifier (locals only; fields return nil).
func receiverObject(p *Pass, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return objOf(p.Pkg.Info, id)
}

// trackFileModes finds locals bound to read-only opens: os.Open, and
// os.OpenFile whose flags name none of the write bits. Creation calls
// (os.Create, os.CreateTemp) and unanalyzable flag expressions count as
// writable.
func trackFileModes(p *Pass, file *ast.File) map[types.Object]bool {
	readOnly := map[types.Object]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Rhs) != 1 {
			return true
		}
		call, ok := a.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		f, ok := calleeFromPkg(p.Pkg.Info, call, "os")
		if !ok || recvType(f) != nil {
			return true
		}
		ro := false
		switch f.Name() {
		case "Open":
			ro = true
		case "OpenFile":
			if len(call.Args) >= 2 && !mentionsWriteFlag(call.Args[1]) {
				ro = true
			}
		default:
			return true
		}
		if !ro {
			return true
		}
		if id, ok := a.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := objOf(p.Pkg.Info, id); obj != nil {
				readOnly[obj] = true
			}
		}
		return true
	})
	return readOnly
}

// mentionsWriteFlag reports whether the flag expression names a bit
// that makes the handle writable.
func mentionsWriteFlag(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		name := ""
		switch x := n.(type) {
		case *ast.Ident:
			name = x.Name
		case *ast.SelectorExpr:
			name = x.Sel.Name
		}
		switch name {
		case "O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC":
			found = true
		}
		return !found
	})
	return found
}

// onErrorCleanupPath reports whether stmt sits in a statement list that
// ends by returning a non-nil error — the conventional shape of
// best-effort cleanup before propagating a failure.
func onErrorCleanupPath(pm parentMap, stmt ast.Node) bool {
	list := enclosingStmtList(pm, stmt)
	if len(list) == 0 {
		return false
	}
	ret, ok := list[len(list)-1].(*ast.ReturnStmt)
	if !ok || len(ret.Results) == 0 {
		return false
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return true
}

// enclosingStmtList returns the statement list directly containing
// stmt.
func enclosingStmtList(pm parentMap, stmt ast.Node) []ast.Stmt {
	switch parent := pm[stmt].(type) {
	case *ast.BlockStmt:
		return parent.List
	case *ast.CaseClause:
		return parent.Body
	case *ast.CommClause:
		return parent.Body
	}
	return nil
}
