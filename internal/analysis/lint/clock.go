package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ClockDiscipline forbids direct wall-clock access in internal/
// packages: deterministic fault injection and virtual-time lease/health
// tests (PRs 1–3) only stay deterministic while every time-dependent
// decision flows through the injectable clock (internal/vclock, or a
// SetClock-style hook defaulting to it).
//
// Allowed anyway:
//   - packages on the allowlist (obs, vclock, cmd mains, examples) and
//     all test files (never loaded);
//   - the latency-measurement idiom: a time.Now() result whose every
//     use is time.Since, (time.Time).Sub, or a time.Time argument to a
//     module-internal function (metrics plumbing such as profile /
//     observeOp). Storing the value, converting it (UnixNano), or
//     comparing it is a decision, not a measurement — those are
//     reported.
var ClockDiscipline = &Analyzer{
	Name: "clockdiscipline",
	Doc:  "wall-clock reads outside the injectable clock break deterministic replay",
	Run:  runClockDiscipline,
}

// forbiddenClockCalls are the package-time functions that read or wait
// on the wall clock. Bare references (e.g. `now: time.Now` as an
// injectable field's default) are allowed; calls are not.
var forbiddenClockCalls = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
}

func runClockDiscipline(p *Pass) {
	rel := p.Cfg.Rel(p.Pkg.Path)
	if inScope(rel, p.Cfg.ClockAllow) {
		return
	}
	for _, file := range p.Pkg.Files {
		pm := buildParents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f, ok := calleeFromPkg(p.Pkg.Info, call, "time")
			if !ok || recvType(f) != nil || !forbiddenClockCalls[f.Name()] {
				return true
			}
			if f.Name() == "Now" && isTimingOnlyNow(p, pm, call) {
				return true
			}
			p.Reportf(call.Pos(),
				"direct time.%s call; route through the injectable clock (vclock.Clock / SetClock) so fault and lease replay stays deterministic",
				f.Name())
			return true
		})
	}
}

// isTimingOnlyNow reports whether the time.Now() call's result is used
// exclusively to measure elapsed time.
func isTimingOnlyNow(p *Pass, pm parentMap, call *ast.CallExpr) bool {
	// The call must be the sole RHS of an assignment or declaration to
	// plain identifiers.
	parent := pm[call]
	var lhs []ast.Expr
	switch a := parent.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) != 1 || a.Rhs[0] != call {
			return false
		}
		lhs = a.Lhs
	case *ast.ValueSpec:
		if len(a.Values) != 1 || a.Values[0] != call {
			return false
		}
		for _, n := range a.Names {
			lhs = append(lhs, n)
		}
	default:
		return false
	}
	if len(lhs) != 1 {
		return false
	}
	id, ok := lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := objOf(p.Pkg.Info, id)
	if obj == nil {
		return false
	}
	body := enclosingFunc(pm, call)
	if body == nil {
		return false
	}
	used := false
	ok = true
	ast.Inspect(body, func(n ast.Node) bool {
		u, isIdent := n.(*ast.Ident)
		if !isIdent || objOf(p.Pkg.Info, u) != obj {
			return true
		}
		if isAssignTarget(pm, u) {
			return true
		}
		used = true
		if !isTimingUse(p, pm, u) {
			ok = false
		}
		return true
	})
	return used && ok
}

// isAssignTarget reports whether id appears on the left of = or :=.
func isAssignTarget(pm parentMap, id *ast.Ident) bool {
	a, ok := pm[id].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, l := range a.Lhs {
		if l == id {
			return true
		}
	}
	return false
}

// isTimingUse classifies one use of a time.Now() result.
func isTimingUse(p *Pass, pm parentMap, id *ast.Ident) bool {
	// start.Sub(x) — receiver of Sub.
	if sel, ok := pm[id].(*ast.SelectorExpr); ok && sel.X == id && sel.Sel.Name == "Sub" {
		if _, isCall := pm[sel].(*ast.CallExpr); isCall {
			return true
		}
		return false
	}
	call, ok := pm[id].(*ast.CallExpr)
	if !ok {
		return false
	}
	argIdx := -1
	for i, a := range call.Args {
		if a == id {
			argIdx = i
		}
	}
	if argIdx < 0 {
		return false
	}
	f := callee(p.Pkg.Info, call)
	if f == nil {
		return false
	}
	// time.Since(start) / end.Sub(start).
	if f.Pkg() != nil && f.Pkg().Path() == "time" && (f.Name() == "Since" || f.Name() == "Sub") {
		return true
	}
	if f.Name() == "Sub" && isNamed(recvType(f), "time", "Time") {
		return true
	}
	// Module-internal metrics plumbing taking the start as time.Time.
	if f.Pkg() != nil && strings.HasPrefix(f.Pkg().Path(), p.Cfg.ModulePath) {
		sig := f.Type().(*types.Signature)
		if pt := paramTypeAt(sig, argIdx); pt != nil && isNamed(pt, "time", "Time") {
			return true
		}
	}
	return false
}

// paramTypeAt returns the static type of parameter i, handling
// variadics.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if i >= params.Len()-1 && sig.Variadic() {
		last := params.At(params.Len() - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return last
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}
