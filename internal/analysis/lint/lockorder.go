package lint

import (
	"fmt"
	"go/token"
)

// LockOrder builds the global mutex-acquisition graph — an edge A→B for
// every point that acquires lock class B while holding A, including
// transitively through static calls — and reports every cycle. Two
// goroutines walking a cycle from different ends deadlock; the serving
// tier's store/collection/router locks nest three deep, so the order
// must be globally consistent, not just locally sensible.
//
// Soundness boundary: classes are declaration sites ("(Type).field" or
// a package var), so two instances of one class are indistinguishable;
// dynamic calls and function literals contribute no edges; a lock in a
// local variable has no class and is invisible.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutex-acquisition cycles across functions and packages deadlock under the right interleaving",
	Run:  runLockOrder,
}

func runLockOrder(p *Pass) {
	rel := p.Cfg.Rel(p.Pkg.Path)
	if !inScope(rel, p.Cfg.LockOrderScope) {
		return
	}
	prog := p.Prog
	prog.ensure()
	// Each cycle is reported exactly once, in the package owning its
	// witness position (deterministic: the smallest edge of the cycle).
	for _, cd := range prog.cycleDiags {
		if prog.pkgFiles[cd.witness.Filename] != p.Pkg {
			continue
		}
		p.reportAt(cd.witness, "%s", cd.message)
	}
}

// reportAt records a finding at an already-resolved position (used when
// the witness was computed against a different file set walk).
func (p *Pass) reportAt(pos token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}
