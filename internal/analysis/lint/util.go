package lint

import (
	"go/ast"
	"go/types"
)

// callee resolves the *types.Func a call invokes — package function or
// method — or nil for builtins, conversions, and calls of func-typed
// values (whose target is not statically known).
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// calleeFromPkg reports whether call invokes a function or method
// declared in the package with the given import path, returning it.
func calleeFromPkg(info *types.Info, call *ast.CallExpr, pkgPath string) (*types.Func, bool) {
	f := callee(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return nil, false
	}
	return f, true
}

// recvType returns the receiver type of a method call's target, or nil
// for package functions.
func recvType(f *types.Func) types.Type {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// isNamed reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// parentMap records each node's syntactic parent within a file, so
// analyzers can climb from an expression to its statement context.
type parentMap map[ast.Node]ast.Node

func buildParents(file *ast.File) parentMap {
	pm := parentMap{}
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			pm[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return pm
}

// enclosingFunc climbs to the innermost FuncDecl or FuncLit containing
// n, returning its body.
func enclosingFunc(pm parentMap, n ast.Node) *ast.BlockStmt {
	for cur := n; cur != nil; cur = pm[cur] {
		switch f := cur.(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// objOf resolves an identifier to its object via Uses or Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// funcBodies yields every function body in the package (declarations
// only; literals are reached by walking those bodies).
func funcBodies(pkg *Package, fn func(decl *ast.FuncDecl, file *ast.File)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd, f)
			}
		}
	}
}
