package analysis

import (
	"fmt"

	"matproj/internal/dft"
	"matproj/internal/document"
)

// Document forms for the derived-property collections (§III-B3: "Each
// type of calculated properties is given its own collection").

// BandStructureToDoc serializes a band structure for the bandstructures
// collection.
func BandStructureToDoc(materialID string, bs *dft.BandStructure) document.D {
	bands := make([]any, len(bs.Bands))
	for i, band := range bs.Bands {
		vals := make([]any, len(band))
		for j, v := range band {
			vals[j] = v
		}
		bands[i] = vals
	}
	kpath := make([]any, len(bs.KPath))
	for i, k := range bs.KPath {
		kpath[i] = k
	}
	return document.D{
		"material_id": materialID,
		"formula":     bs.Formula,
		"band_gap":    bs.Gap,
		"is_metal":    bs.Gap == 0,
		"nbands":      int64(len(bs.Bands)),
		"kpath":       kpath,
		"bands":       bands,
	}
}

// BandStructureFromDoc reverses BandStructureToDoc.
func BandStructureFromDoc(d document.D) (*dft.BandStructure, error) {
	bs := &dft.BandStructure{Formula: d.GetString("formula")}
	if g, ok := d.GetFloat("band_gap"); ok {
		bs.Gap = g
	}
	for _, k := range d.GetArray("kpath") {
		s, ok := k.(string)
		if !ok {
			return nil, fmt.Errorf("analysis: kpath entry not a string")
		}
		bs.KPath = append(bs.KPath, s)
	}
	for i, bandAny := range d.GetArray("bands") {
		arr, ok := bandAny.([]any)
		if !ok {
			return nil, fmt.Errorf("analysis: band %d malformed", i)
		}
		band := make([]float64, len(arr))
		for j, v := range arr {
			f, ok := document.AsFloat(v)
			if !ok {
				return nil, fmt.Errorf("analysis: band %d value %d not numeric", i, j)
			}
			band[j] = f
		}
		bs.Bands = append(bs.Bands, band)
	}
	if len(bs.Bands) == 0 {
		return nil, fmt.Errorf("analysis: band structure doc has no bands")
	}
	return bs, nil
}

// XRDToDoc serializes a diffraction pattern for the xrd collection.
func XRDToDoc(materialID, formula string, wavelength float64, peaks []Peak) document.D {
	list := make([]any, len(peaks))
	for i, p := range peaks {
		list[i] = map[string]any{
			"two_theta": p.TwoTheta,
			"intensity": p.Intensity,
			"hkl":       []any{int64(p.HKL[0]), int64(p.HKL[1]), int64(p.HKL[2])},
			"d":         p.DSpacing,
		}
	}
	return document.D{
		"material_id": materialID,
		"formula":     formula,
		"wavelength":  wavelength,
		"peaks":       list,
		"npeaks":      int64(len(peaks)),
	}
}

// BatteryToDoc serializes a screened electrode for the batteries
// collection, in the voltage-pair shape of the production battery
// prototype documents (Table I's "Battery prototypes").
func BatteryToDoc(c BatteryCandidate) document.D {
	return document.D{
		"battery_id":           c.ID,
		"formula":              c.Formula,
		"working_ion":          c.Ion,
		"voltage":              c.Voltage,
		"capacity":             c.Capacity,
		"specific_energy":      c.SpecificEnergy,
		"diffusion_barrier_ev": c.Barrier,
		"diffusivity_cm2s":     c.Diffusivity,
		"voltage_pairs": []any{map[string]any{
			"voltage":           c.Voltage,
			"capacity":          c.Capacity,
			"formula_discharge": c.Formula,
			"formula_charge":    c.HostFormula,
		}},
	}
}
