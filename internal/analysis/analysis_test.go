package analysis

import (
	"math"
	"testing"

	"matproj/internal/crystal"
)

func comp(f string) crystal.Composition { return crystal.MustParseFormula(f) }

// binarySystem builds a simple A-B system: elements at 0, one stable
// compound AB at -1 eV/atom formation, one unstable A2B above the hull.
func binarySystem() []Entry {
	return []Entry{
		{ID: "A", Composition: crystal.Composition{"Na": 1}, Energy: -1.0},
		{ID: "B", Composition: crystal.Composition{"Cl": 1}, Energy: -2.0},
		// AB: per atom reference = (-1 + -2)/2 = -1.5; formation -1 → epa -2.5, total -5.
		{ID: "AB", Composition: comp("NaCl"), Energy: -5.0},
		// A2B: reference (2*-1 + -2)/3 = -4/3; formation +0.2 → total 3*(-4/3 + 0.2) = -3.4
		{ID: "A2B", Composition: comp("Na2Cl"), Energy: -3.4},
	}
}

func TestFormationEnergy(t *testing.T) {
	pd, err := NewPhaseDiagram(binarySystem())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]float64{"A": 0, "B": 0, "AB": -1.0, "A2B": 0.2}
	for _, e := range binarySystem() {
		got := pd.FormationEnergyPerAtom(e)
		if math.Abs(got-cases[e.ID]) > 1e-9 {
			t.Errorf("Ef(%s) = %v, want %v", e.ID, got, cases[e.ID])
		}
	}
}

func TestEAboveHullAndStability(t *testing.T) {
	entries := binarySystem()
	pd, err := NewPhaseDiagram(entries)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		above, err := pd.EAboveHull(e)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		switch e.ID {
		case "A", "B", "AB":
			if above > 1e-8 {
				t.Errorf("%s above hull = %v, want 0", e.ID, above)
			}
		case "A2B":
			// Hull at Na2Cl (2/3, 1/3) interpolates A and AB:
			// mixture 1/3·A + 2/3·AB... check positive and sensible.
			if above <= 0 || above > 1 {
				t.Errorf("A2B above hull = %v, want small positive", above)
			}
		}
	}
	stable, err := pd.StableEntries()
	if err != nil {
		t.Fatal(err)
	}
	if len(stable) != 3 {
		t.Errorf("stable = %d entries, want 3", len(stable))
	}
}

func TestEAboveHullExactInterpolation(t *testing.T) {
	entries := binarySystem()
	pd, _ := NewPhaseDiagram(entries)
	// At composition Na2Cl, hull = mix of Na (Ef 0, x_Cl=0) and NaCl
	// (Ef -1, x_Cl=1/2): need x_Cl=1/3 → weights 1/3 Na + 2/3 NaCl →
	// Ef = 2/3 · (-1) = -2/3.
	hull, err := pd.HullEnergyPerAtom(comp("Na2Cl"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hull-(-2.0/3)) > 1e-7 {
		t.Errorf("hull(Na2Cl) = %v, want -0.6667", hull)
	}
	above, _ := pd.EAboveHull(entries[3])
	if math.Abs(above-(0.2+2.0/3)) > 1e-7 {
		t.Errorf("above = %v, want %v", above, 0.2+2.0/3)
	}
}

func TestTernaryHull(t *testing.T) {
	entries := []Entry{
		{ID: "Li", Composition: crystal.Composition{"Li": 1}, Energy: -1},
		{ID: "Fe", Composition: crystal.Composition{"Fe": 1}, Energy: -2},
		{ID: "O", Composition: crystal.Composition{"O": 1}, Energy: -1.5},
		{ID: "FeO", Composition: comp("FeO"), Energy: -2*1 - 1.5*1 - 2*1},      // Ef = -1/atom... total -5.5? ref=-3.5, Ef per atom = -1
		{ID: "Li2O", Composition: comp("Li2O"), Energy: -1*2 - 1.5 - 3*0.8},    // Ef = -0.8/atom
		{ID: "LiFeO2", Composition: comp("LiFeO2"), Energy: -1 - 2 - 3 - 4*.5}, // Ef = -0.5/atom
	}
	pd, err := NewPhaseDiagram(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(pd.Elements) != 3 {
		t.Fatalf("elements = %v", pd.Elements)
	}
	for _, e := range entries {
		if _, err := pd.EAboveHull(e); err != nil {
			t.Errorf("%s: %v", e.ID, err)
		}
	}
	// LiFeO2 competes against Li2O + FeO + O mixtures; verify it is
	// correctly judged against that decomposition rather than elements.
	above, _ := pd.EAboveHull(entries[5])
	// Decomposition 0.25·Li2O(4 atoms? careful) ... just sanity: the
	// value must be >= 0 and well below 2.
	if above < 0 || above > 2 {
		t.Errorf("LiFeO2 above hull = %v", above)
	}
}

func TestPhaseDiagramErrors(t *testing.T) {
	if _, err := NewPhaseDiagram(nil); err == nil {
		t.Error("empty entries accepted")
	}
	// Missing elemental reference.
	if _, err := NewPhaseDiagram([]Entry{{ID: "AB", Composition: comp("NaCl"), Energy: -5}}); err == nil {
		t.Error("missing references accepted")
	}
	if _, err := NewPhaseDiagram([]Entry{{ID: "empty", Composition: crystal.Composition{}, Energy: 0}}); err == nil {
		t.Error("empty composition accepted")
	}
	pd, _ := NewPhaseDiagram(binarySystem())
	if _, err := pd.HullEnergyPerAtom(comp("Fe2O3")); err == nil {
		t.Error("foreign composition accepted")
	}
}

func TestEvaluateElectrodeLiFePO4(t *testing.T) {
	lith := comp("LiFePO4")
	host := comp("FePO4")
	eIon := -1.9 // Li metal per atom
	// Choose energies so V = 3.45: E_lith - E_host - E_ion = -3.45.
	eHost := -40.0
	eLith := eHost + eIon - 3.45
	c, err := EvaluateElectrode(lith, host, eLith, eHost, "Li", eIon)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Voltage-3.45) > 1e-9 {
		t.Errorf("voltage = %v", c.Voltage)
	}
	// LiFePO4 theoretical capacity ≈ 170 mAh/g.
	if math.Abs(c.Capacity-170) > 1 {
		t.Errorf("capacity = %v, want ~170", c.Capacity)
	}
	if math.Abs(c.SpecificEnergy-c.Voltage*c.Capacity) > 1e-9 {
		t.Error("specific energy inconsistent")
	}
	if c.Formula != "LiFePO4" || c.HostFormula != "FePO4" {
		t.Errorf("formulas = %s / %s", c.Formula, c.HostFormula)
	}
}

func TestEvaluateElectrodeErrors(t *testing.T) {
	if _, err := EvaluateElectrode(comp("FePO4"), comp("FePO4"), -1, -1, "Li", -1); err == nil {
		t.Error("no ion transferred accepted")
	}
	if _, err := EvaluateElectrode(comp("LiFePO4"), comp("FeO4"), -1, -1, "Li", -1); err == nil {
		t.Error("mismatched frameworks accepted")
	}
}

func TestScreenFiltersUnphysical(t *testing.T) {
	eIon := -1.9
	mk := func(id string, voltage float64) ElectrodeInput {
		eHost := -30.0
		return ElectrodeInput{
			ID: id, Lithiated: comp("LiCoO2"), Host: comp("CoO2"),
			ELith: eHost + eIon - voltage, EHost: eHost, Ion: "Li", EIonPerAtom: eIon,
		}
	}
	inputs := []ElectrodeInput{
		mk("good", 3.9),
		mk("negative", -0.5),
		mk("absurd", 9.0),
		{ID: "broken", Lithiated: comp("LiCoO2"), Host: comp("NiO2"), Ion: "Li"},
	}
	out := Screen(inputs)
	if len(out) != 1 || out[0].ID != "good" {
		t.Errorf("screened = %+v", out)
	}
}

func TestWorkingIon(t *testing.T) {
	if WorkingIon(comp("LiFePO4")) != "Li" {
		t.Error("Li not detected")
	}
	if WorkingIon(comp("NaCoO2")) != "Na" {
		t.Error("Na not detected")
	}
	if WorkingIon(comp("Fe2O3")) != "" {
		t.Error("phantom ion")
	}
}

func TestKnownElectrodesBand(t *testing.T) {
	known := KnownElectrodes()
	if len(known) < 5 {
		t.Fatal("too few known electrodes")
	}
	for _, k := range known {
		if k.Voltage < 2.5 || k.Voltage > 5 {
			t.Errorf("%s voltage %v outside the known band", k.Formula, k.Voltage)
		}
		if k.Capacity < 100 || k.Capacity > 200 {
			t.Errorf("%s capacity %v outside the known band", k.Formula, k.Capacity)
		}
	}
}

func TestXRDRockSalt(t *testing.T) {
	st := &crystal.Structure{
		Lattice: crystal.CubicLattice(5.64),
		Sites: []crystal.Site{
			{Species: "Na", Frac: crystal.Vec3{0, 0, 0}},
			{Species: "Cl", Frac: crystal.Vec3{0.5, 0.5, 0.5}},
		},
	}
	peaks := XRDPattern(st, CuKAlpha, 3)
	if len(peaks) < 3 {
		t.Fatalf("peaks = %d", len(peaks))
	}
	// Normalization: max intensity exactly 100, all within (0, 100].
	maxI := 0.0
	for _, p := range peaks {
		if p.Intensity <= 0 || p.Intensity > 100 {
			t.Errorf("peak %v intensity %v", p.HKL, p.Intensity)
		}
		if p.Intensity > maxI {
			maxI = p.Intensity
		}
	}
	if math.Abs(maxI-100) > 1e-9 {
		t.Errorf("max intensity = %v", maxI)
	}
	// Sorted by angle.
	for i := 1; i < len(peaks); i++ {
		if peaks[i-1].TwoTheta > peaks[i].TwoTheta {
			t.Fatal("not sorted")
		}
	}
	// The (100)-type reflection must appear: for this CsCl-like 2-atom
	// cell, d(100) = 5.64 → 2θ = 2·asin(λ/2d) ≈ 15.7°.
	found := false
	for _, p := range peaks {
		if math.Abs(p.TwoTheta-15.70) < 0.3 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing ~15.7° reflection; first peaks: %+v", peaks[:3])
	}
}

func TestXRDBraggCutoff(t *testing.T) {
	// A tiny cell has all d-spacings < λ/2 at high indices; the pattern
	// must simply omit them without NaN.
	st := &crystal.Structure{
		Lattice: crystal.CubicLattice(1.2),
		Sites:   []crystal.Site{{Species: "Fe", Frac: crystal.Vec3{0, 0, 0}}},
	}
	peaks := XRDPattern(st, CuKAlpha, 4)
	for _, p := range peaks {
		if math.IsNaN(p.TwoTheta) || p.TwoTheta <= 0 || p.TwoTheta >= 180 {
			t.Errorf("invalid angle %v", p.TwoTheta)
		}
	}
	if XRDPattern(st, CuKAlpha, 0) == nil {
		// maxIndex clamps to 1; a 1.2 Å cubic cell has d(100)=1.2 > λ/2,
		// so at least one reflection survives.
		t.Error("clamped pattern empty")
	}
}

func TestXRDSystematicAbsences(t *testing.T) {
	// Identical atoms at (0,0,0) and (1/2,1/2,1/2) form a BCC lattice:
	// reflections with odd h+k+l are extinct.
	st := &crystal.Structure{
		Lattice: crystal.CubicLattice(3.0),
		Sites: []crystal.Site{
			{Species: "Fe", Frac: crystal.Vec3{0, 0, 0}},
			{Species: "Fe", Frac: crystal.Vec3{0.5, 0.5, 0.5}},
		},
	}
	peaks := XRDPattern(st, CuKAlpha, 2)
	for _, p := range peaks {
		if (p.HKL[0]+p.HKL[1]+p.HKL[2])%2 != 0 {
			t.Errorf("forbidden BCC reflection %v with intensity %v", p.HKL, p.Intensity)
		}
	}
}
