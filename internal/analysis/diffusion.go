package analysis

import (
	"fmt"
	"math"

	"matproj/internal/crystal"
)

// Ion-diffusion screening: the paper's battery discussion notes that
// promising candidates are further screened "for other important
// properties such as Li diffusivity (related to power delivered by the
// cell)". This file implements a geometric bottleneck model for the
// migration barrier: the working ion hops between nearest ion sites
// (including periodic images), and the barrier grows with hop length and
// with how tightly the framework crowds the hop midpoint.

// kBoltzmannEV is Boltzmann's constant in eV/K.
const kBoltzmannEV = 8.617333262e-5

// HopAnalysis reports the migration geometry and derived quantities.
type HopAnalysis struct {
	Ion         string
	HopDistance float64 // Å, shortest ion-site to ion-site hop
	Bottleneck  float64 // Å, framework clearance at the hop midpoint
	Barrier     float64 // eV, model migration barrier
}

// DiffusionBarrier estimates the working-ion migration barrier of a
// structure. The model: Ea = c·d/max(r, r0), with d the shortest hop
// between ion sites (periodic images included) and r the minimum
// distance from the hop midpoint to any framework atom — long hops
// through tight bottlenecks cost more. Constants are calibrated so
// typical intercalation frameworks land in the experimentally familiar
// 0.2–0.8 eV window.
func DiffusionBarrier(st *crystal.Structure, ion string) (*HopAnalysis, error) {
	if !crystal.IsElement(ion) {
		return nil, fmt.Errorf("analysis: unknown ion %q", ion)
	}
	var ionSites, framework []crystal.Site
	for _, s := range st.Sites {
		if s.Species == ion {
			ionSites = append(ionSites, s)
		} else {
			framework = append(framework, s)
		}
	}
	if len(ionSites) == 0 {
		return nil, fmt.Errorf("analysis: structure %s has no %s sites", st.Composition().Formula(), ion)
	}
	if len(framework) == 0 {
		return nil, fmt.Errorf("analysis: structure is pure %s; no framework to diffuse through", ion)
	}

	// Shortest hop: between distinct ion sites, or to the ion's own
	// periodic image when only one site exists.
	bestD := math.Inf(1)
	var bestA, bestB crystal.Vec3
	consider := func(a, b crystal.Vec3) {
		for dx := -1.0; dx <= 1; dx++ {
			for dy := -1.0; dy <= 1; dy++ {
				for dz := -1.0; dz <= 1; dz++ {
					if a == b && dx == 0 && dy == 0 && dz == 0 {
						continue
					}
					shifted := b.Add(crystal.Vec3{dx, dy, dz})
					d := st.Lattice.CartesianCoords(shifted.Sub(a)).Norm()
					if d > 1e-9 && d < bestD {
						bestD = d
						bestA, bestB = a, shifted
					}
				}
			}
		}
	}
	for i := range ionSites {
		for j := range ionSites {
			if i == j {
				consider(ionSites[i].Frac, ionSites[j].Frac)
			} else if j > i {
				consider(ionSites[i].Frac, ionSites[j].Frac)
			}
		}
	}
	if math.IsInf(bestD, 1) {
		return nil, fmt.Errorf("analysis: no viable hop found")
	}

	// Bottleneck clearance: nearest framework atom to the hop midpoint,
	// over periodic images.
	mid := bestA.Add(bestB).Scale(0.5)
	clearance := math.Inf(1)
	for _, f := range framework {
		for dx := -1.0; dx <= 1; dx++ {
			for dy := -1.0; dy <= 1; dy++ {
				for dz := -1.0; dz <= 1; dz++ {
					shifted := f.Frac.Add(crystal.Vec3{dx, dy, dz})
					d := st.Lattice.CartesianCoords(shifted.Sub(mid)).Norm()
					if d < clearance {
						clearance = d
					}
				}
			}
		}
	}

	const (
		barrierScale = 0.22 // eV per (Å hop / Å clearance)
		minClearance = 0.6  // Å, avoid divergence for pathological cells
		minBarrier   = 0.05
		maxBarrier   = 3.0
	)
	r := math.Max(clearance, minClearance)
	ea := barrierScale * bestD / r
	ea = math.Max(minBarrier, math.Min(maxBarrier, ea))
	return &HopAnalysis{Ion: ion, HopDistance: bestD, Bottleneck: clearance, Barrier: ea}, nil
}

// Diffusivity converts a migration barrier to a diffusion coefficient at
// temperature T (K) via an Arrhenius law with a standard solid-state
// prefactor of 1e-3 cm²/s.
func Diffusivity(barrierEV, tempK float64) float64 {
	if tempK <= 0 {
		return 0
	}
	const d0 = 1e-3 // cm^2/s
	return d0 * math.Exp(-barrierEV/(kBoltzmannEV*tempK))
}
