package analysis

import (
	"fmt"
	"math"

	"matproj/internal/crystal"
)

// Conversion electrodes: alongside the ~400 intercalation batteries, the
// paper's datastore held ~14,000 *conversion* batteries — electrodes that
// react rather than intercalate: MaXb + x·Li → a·M + b·LiₙX. This file
// evaluates that reaction's average voltage and capacity from a
// composition-level energy model.

// EnergyFunc evaluates the model total energy of a composition (eV).
type EnergyFunc func(crystal.Composition) float64

// anionValence maps anions to n in the fully reduced binary LiₙX.
var anionValence = map[string]int{
	"O": 2, "S": 2, "Se": 2, "Te": 2,
	"F": 1, "Cl": 1, "Br": 1, "I": 1,
	"N": 3, "P": 3,
}

// ConversionElectrode evaluates the full conversion of host against the
// working ion:
//
//	MaXb + n·b·Ion → a·M + b·IonₙX
//
// where X is the host's most electronegative element and n its valence.
// The host must not already contain the working ion. Voltage is the
// average over the full reaction; capacity is per gram of host.
func ConversionElectrode(host crystal.Composition, ion string, energyOf EnergyFunc, eIonPerAtom float64) (BatteryCandidate, error) {
	if energyOf == nil {
		return BatteryCandidate{}, fmt.Errorf("analysis: nil energy function")
	}
	if host.Contains(ion) {
		return BatteryCandidate{}, fmt.Errorf("analysis: host %s already contains %s", host.Formula(), ion)
	}
	elems := host.Elements()
	if len(elems) < 2 {
		return BatteryCandidate{}, fmt.Errorf("analysis: conversion host %s must be a compound", host.Formula())
	}
	// The anion is the most electronegative constituent with a known
	// valence.
	anion := ""
	bestChi := -1.0
	for _, el := range elems {
		if _, ok := anionValence[el]; !ok {
			continue
		}
		chi := crystal.MustElement(el).Electronegativity
		if chi > bestChi {
			bestChi = chi
			anion = el
		}
	}
	if anion == "" {
		return BatteryCandidate{}, fmt.Errorf("analysis: host %s has no convertible anion", host.Formula())
	}
	n := anionValence[anion]
	b := host.Get(anion)
	x := float64(n) * b // ions transferred per host formula unit

	// Reaction energy: products minus reactants.
	eHost := energyOf(host)
	eProducts := 0.0
	for _, el := range elems {
		if el == anion {
			continue
		}
		eProducts += energyOf(crystal.Composition{el: 1}) * host.Get(el)
	}
	lithiated := crystal.Composition{ion: float64(n), anion: 1}
	eProducts += energyOf(lithiated) * b
	dE := eProducts - (eHost + x*eIonPerAtom)
	voltage := -dE / x
	weight := host.Weight()
	if weight <= 0 {
		return BatteryCandidate{}, fmt.Errorf("analysis: zero host weight")
	}
	capacity := x * faradayMAhPerMol / weight
	if math.IsNaN(voltage) || math.IsInf(voltage, 0) {
		return BatteryCandidate{}, fmt.Errorf("analysis: non-finite voltage for %s", host.Formula())
	}
	return BatteryCandidate{
		Formula:        host.ReducedFormula(),
		HostFormula:    host.ReducedFormula(),
		Ion:            ion,
		Voltage:        voltage,
		Capacity:       capacity,
		SpecificEnergy: voltage * capacity,
	}, nil
}

// ScreenConversion evaluates conversion couples for a set of hosts,
// keeping those with physical voltages (0–4.5 V is the realistic
// conversion window).
func ScreenConversion(hosts []crystal.Composition, ion string, energyOf EnergyFunc, eIonPerAtom float64) []BatteryCandidate {
	var out []BatteryCandidate
	for i, h := range hosts {
		c, err := ConversionElectrode(h, ion, energyOf, eIonPerAtom)
		if err != nil {
			continue
		}
		if c.Voltage <= 0 || c.Voltage > 4.5 {
			continue
		}
		c.ID = fmt.Sprintf("conv-%04d", i)
		out = append(out, c)
	}
	return out
}
