// Package rcache is the serving tier's read-path result cache. The
// paper's dissemination workload is dominated by repeated hot reads —
// Fig. 5's week covers 3,315 distinct queries returning 12,951,099
// records, i.e. the same materials documents fetched over and over — so
// recomputing every Find from a full filter evaluation wastes almost all
// of the read budget.
//
// The cache is a bounded LRU keyed by an opaque string (collection +
// operation + canonical JSON of the filter/options), validated by write
// generations rather than TTLs: every entry stores the generation its
// caller observed *before* computing, and a lookup hits only when the
// caller's current generation matches. Collections bump their generation
// inside the write lock after each mutation, so the protocol gives a
// hard freshness guarantee — a cached read never returns data older than
// the last acknowledged write — without any explicit invalidation
// traffic. Stale entries are dropped on sight and recycled by LRU
// pressure.
//
// Concurrent identical misses are collapsed singleflight-style: the
// first caller computes, everyone else waiting on the same (key,
// generation) receives the same result. A thundering herd of the same
// hot query computes once. Flights are generation-scoped, so a caller
// that has already observed a newer write never joins a flight started
// before that write.
package rcache

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"matproj/internal/obs"
)

// Cache is a bounded, concurrency-safe, generation-validated result
// cache. All methods are nil-receiver-safe: a nil *Cache computes
// directly and caches nothing, so call sites need no "is caching on"
// branches.
type Cache struct {
	max int
	reg *obs.Registry

	mu      sync.Mutex
	entries map[string]*entry
	ll      *list.List // front = most recently used
	flights map[string]*flight

	hits          atomic.Uint64
	misses        atomic.Uint64
	collapsed     atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
}

type entry struct {
	key  string
	gen  uint64
	val  any
	elem *list.Element
}

// flight is one in-progress computation for a (key, generation) pair.
type flight struct {
	wg  sync.WaitGroup
	val any
	err error
}

// New returns a cache holding at most max entries (max <= 0 selects a
// default of 4096). reg receives hit/miss/eviction/invalidation counters
// and the hit-ratio gauge; nil is fine (obs instruments are no-ops).
func New(max int, reg *obs.Registry) *Cache {
	if max <= 0 {
		max = 4096
	}
	return &Cache{
		max:     max,
		reg:     reg,
		entries: make(map[string]*entry),
		ll:      list.New(),
		flights: make(map[string]*flight),
	}
}

// KeyFor renders a cache key from a collection, an operation name, and
// the operation's canonical argument (compact JSON with sorted keys).
// NUL separators keep the three parts from colliding.
func KeyFor(collection, op, arg string) string {
	return collection + "\x00" + op + "\x00" + arg
}

// flightKey scopes an in-flight computation to the generation its
// callers observed, so a caller holding a newer generation starts a
// fresh computation instead of inheriting a pre-write result.
func flightKey(key string, gen uint64) string {
	// Manual base-16 render; avoids strconv in the hot path for no
	// reason other than keeping the dependency list short.
	var buf [16]byte
	i := len(buf)
	for {
		i--
		buf[i] = "0123456789abcdef"[gen&0xf]
		gen >>= 4
		if gen == 0 {
			break
		}
	}
	return key + "\x00" + string(buf[i:])
}

// GetOrCompute returns the cached value for key if one exists at exactly
// generation gen; otherwise it computes (collapsing concurrent identical
// misses) and caches the result under gen. The boolean reports whether
// the value came from the cache or a collapsed flight rather than this
// caller's own compute. Errors are never cached.
//
// Freshness contract: callers MUST load gen from the backing
// collection's generation counter *before* reading any data in compute.
// Writes bump the counter after the mutation is applied, so an entry
// stored under gen can only ever be as stale as a read that started
// before the write acknowledged — never staler.
func (c *Cache) GetOrCompute(key string, gen uint64, compute func() (any, error)) (any, bool, error) {
	if c == nil {
		v, err := compute()
		return v, false, err
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.gen == gen {
			c.ll.MoveToFront(e.elem)
			c.mu.Unlock()
			c.hits.Add(1)
			c.reg.Counter("rcache.hits").Inc()
			c.updateRatio()
			return e.val, true, nil
		}
		// A write moved the generation: the entry can never validate
		// again, so reclaim its slot now instead of waiting for LRU
		// pressure.
		c.removeLocked(e)
		c.invalidations.Add(1)
		c.reg.Counter("rcache.invalidations").Inc()
	}
	fk := flightKey(key, gen)
	if f, ok := c.flights[fk]; ok {
		c.mu.Unlock()
		f.wg.Wait()
		if f.err != nil {
			return nil, false, f.err
		}
		c.collapsed.Add(1)
		c.reg.Counter("rcache.collapsed").Inc()
		return f.val, true, nil
	}
	f := &flight{}
	f.wg.Add(1)
	c.flights[fk] = f
	c.mu.Unlock()

	c.misses.Add(1)
	c.reg.Counter("rcache.misses").Inc()
	c.updateRatio()

	// compute may panic: settle the flight and drop it before re-raising,
	// or every collapsed waiter parks in Wait forever and the dead flight
	// swallows all future misses for this key+gen.
	v, err := func() (rv any, rerr error) {
		defer func() {
			if p := recover(); p != nil {
				f.val, f.err = nil, fmt.Errorf("rcache: compute for %q panicked: %v", key, p)
				f.wg.Done()
				c.mu.Lock()
				delete(c.flights, fk)
				c.mu.Unlock()
				panic(p)
			}
		}()
		return compute()
	}()
	f.val, f.err = v, err
	f.wg.Done()

	c.mu.Lock()
	delete(c.flights, fk)
	if err == nil {
		c.storeLocked(key, gen, v)
	}
	c.mu.Unlock()
	return v, false, err
}

// Lookup reports the cached value for key at generation gen without
// computing on a miss. Mostly for tests and bypass probes.
func (c *Cache) Lookup(key string, gen uint64) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.gen != gen {
		return nil, false
	}
	c.ll.MoveToFront(e.elem)
	return e.val, true
}

// storeLocked installs (or refreshes) an entry, evicting from the LRU
// tail when the cache is full. Caller holds c.mu. Generations per key
// are monotonic at their source, so an existing entry with a newer
// generation wins over a slow flight finishing late with an older one.
func (c *Cache) storeLocked(key string, gen uint64, val any) {
	if e, ok := c.entries[key]; ok {
		if e.gen > gen {
			return
		}
		e.gen, e.val = gen, val
		c.ll.MoveToFront(e.elem)
		return
	}
	for len(c.entries) >= c.max {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		c.removeLocked(tail.Value.(*entry))
		c.evictions.Add(1)
		c.reg.Counter("rcache.evictions").Inc()
	}
	e := &entry{key: key, gen: gen, val: val}
	e.elem = c.ll.PushFront(e)
	c.entries[key] = e
	c.reg.Gauge("rcache.entries").Set(int64(len(c.entries)))
}

// removeLocked unlinks an entry. Caller holds c.mu.
func (c *Cache) removeLocked(e *entry) {
	delete(c.entries, e.key)
	c.ll.Remove(e.elem)
	c.reg.Gauge("rcache.entries").Set(int64(len(c.entries)))
}

// updateRatio refreshes the hit-ratio gauge (percent of lookups served
// from cache, collapsed flights excluded).
func (c *Cache) updateRatio() {
	if c.reg == nil {
		return
	}
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return
	}
	c.reg.Gauge("rcache.hit_ratio_pct").Set(int64(h * 100 / (h + m)))
}

// Len reports the current entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits, Misses, Collapsed, Evictions, Invalidations uint64
	Entries                                           int
}

// Stats reports lifetime counters and the live entry count.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Collapsed:     c.collapsed.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       n,
	}
}
