package rcache

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"matproj/internal/obs"
)

func TestHitMissAndGenerationInvalidation(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(8, reg)
	key := KeyFor("materials", "find", `{"f":{"a":1}}`)

	calls := 0
	compute := func() (any, error) { calls++; return calls, nil }

	v, hit, err := c.GetOrCompute(key, 1, compute)
	if err != nil || hit || v.(int) != 1 {
		t.Fatalf("first call = (%v, %v, %v), want miss computing 1", v, hit, err)
	}
	v, hit, _ = c.GetOrCompute(key, 1, compute)
	if !hit || v.(int) != 1 {
		t.Fatalf("second call = (%v, hit=%v), want cached 1", v, hit)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}

	// A new generation invalidates: recompute, and the stale entry is
	// dropped (counted as an invalidation).
	v, hit, _ = c.GetOrCompute(key, 2, compute)
	if hit || v.(int) != 2 {
		t.Fatalf("post-write call = (%v, hit=%v), want recompute", v, hit)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Invalidations != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses / 1 invalidation", st)
	}
	snap := reg.Snapshot()
	if snap.Counters["rcache.hits"] != 1 || snap.Counters["rcache.misses"] != 2 {
		t.Fatalf("registry counters = %v", snap.Counters)
	}
	if snap.Gauges["rcache.hit_ratio_pct"] != 33 { // 1 of 3 lookups
		t.Fatalf("hit ratio gauge = %d, want 33", snap.Gauges["rcache.hit_ratio_pct"])
	}
}

func TestOldGenerationDoesNotValidate(t *testing.T) {
	c := New(8, nil)
	key := KeyFor("m", "count", "{}")
	if _, _, err := c.GetOrCompute(key, 5, func() (any, error) { return "new", nil }); err != nil {
		t.Fatal(err)
	}
	// A reader still holding generation 4 must not see the gen-5 entry
	// as valid (entries validate on exact match only).
	v, hit, _ := c.GetOrCompute(key, 4, func() (any, error) { return "stale-path", nil })
	if hit {
		t.Fatalf("gen-4 lookup hit a gen-5 entry: %v", v)
	}
}

func TestLRUEvictionBound(t *testing.T) {
	c := New(4, nil)
	for i := 0; i < 10; i++ {
		k := KeyFor("m", "find", fmt.Sprintf("{%d}", i))
		if _, _, err := c.GetOrCompute(k, 1, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("cache holds %d entries, want 4", c.Len())
	}
	if st := c.Stats(); st.Evictions != 6 {
		t.Fatalf("evictions = %d, want 6", st.Evictions)
	}
	// Most recent keys survive.
	if _, ok := c.Lookup(KeyFor("m", "find", "{9}"), 1); !ok {
		t.Fatal("most recent entry was evicted")
	}
	if _, ok := c.Lookup(KeyFor("m", "find", "{0}"), 1); ok {
		t.Fatal("oldest entry survived a full cache")
	}
}

func TestSingleflightCollapsesConcurrentMisses(t *testing.T) {
	c := New(8, nil)
	key := KeyFor("m", "find", "{hot}")
	var computes atomic.Int64
	gate := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			v, _, err := c.GetOrCompute(key, 7, func() (any, error) {
				computes.Add(1)
				<-gate // hold every waiter on this flight
				return "answer", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[slot] = v
		}(i)
	}
	// Let the leader enter compute, then release.
	for c.Stats().Misses == 0 {
	}
	close(gate)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times under a %d-caller herd, want 1", got, n)
	}
	for i, v := range results {
		if v != "answer" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	// Every caller but the leader either joined the flight (collapsed)
	// or arrived after it stored and hit the fresh entry; how the n-1
	// split between the two depends on goroutine scheduling, but the
	// sum does not.
	if st := c.Stats(); st.Collapsed+st.Hits != n-1 {
		t.Fatalf("collapsed(%d) + hits(%d) = %d, want %d", st.Collapsed, st.Hits, st.Collapsed+st.Hits, n-1)
	} else if st.Collapsed == 0 {
		t.Logf("note: no caller overlapped the flight this run (all %d were post-store hits)", st.Hits)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(8, nil)
	key := KeyFor("m", "find", "{}")
	boom := errors.New("backend down")
	if _, _, err := c.GetOrCompute(key, 1, func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	v, hit, err := c.GetOrCompute(key, 1, func() (any, error) { return "ok", nil })
	if err != nil || hit || v != "ok" {
		t.Fatalf("after error: (%v, %v, %v), want fresh compute", v, hit, err)
	}
}

func TestLateFlightCannotOverwriteNewerEntry(t *testing.T) {
	c := New(8, nil)
	key := KeyFor("m", "find", "{}")

	// A slow gen-1 flight is still computing when a gen-2 write lands
	// and a gen-2 read caches the fresh value. When the slow flight
	// finally stores, it must not clobber the newer entry.
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.GetOrCompute(key, 1, func() (any, error) {
			<-release
			return "old", nil
		})
	}()
	for c.Stats().Misses == 0 {
	}
	if _, _, err := c.GetOrCompute(key, 2, func() (any, error) { return "new", nil }); err != nil {
		t.Fatal(err)
	}
	close(release)
	<-done

	v, hit, _ := c.GetOrCompute(key, 2, func() (any, error) { return "recomputed", nil })
	if !hit || v != "new" {
		t.Fatalf("gen-2 lookup = (%v, hit=%v), want cached \"new\"", v, hit)
	}
}

func TestNilCachePassesThrough(t *testing.T) {
	var c *Cache
	v, hit, err := c.GetOrCompute("k", 1, func() (any, error) { return 42, nil })
	if err != nil || hit || v.(int) != 42 {
		t.Fatalf("nil cache = (%v, %v, %v)", v, hit, err)
	}
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache reported state")
	}
	if _, ok := c.Lookup("k", 1); ok {
		t.Fatal("nil cache lookup hit")
	}
}

// TestGetOrComputePanicSettlesFlight is the regression test for the
// singleflight leak: a panicking compute must re-raise to its own
// caller, but first settle the flight (so collapsed waiters unblock
// with an error instead of parking in Wait forever) and remove it (so
// later misses for the same key+gen compute fresh instead of joining a
// dead flight).
func TestGetOrComputePanicSettlesFlight(t *testing.T) {
	c := New(8, obs.NewRegistry())
	entered := make(chan struct{})
	release := make(chan struct{})
	computerDone := make(chan struct{})

	go func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the computing caller")
			}
			close(computerDone)
		}()
		c.GetOrCompute("k", 7, func() (any, error) {
			close(entered)
			<-release
			panic("boom")
		})
	}()
	<-entered

	// The flight is registered before compute runs, so this call either
	// collapses onto it (and must get the panic error) or, if it loses
	// the race with cleanup, computes fresh (and must succeed).
	var wv any
	var werr error
	waiterDone := make(chan struct{})
	go func() {
		wv, _, werr = c.GetOrCompute("k", 7, func() (any, error) { return "fresh", nil })
		close(waiterDone)
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter park on the flight
	close(release)
	select {
	case <-waiterDone:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung: flight never settled after compute panicked")
	}
	if werr != nil {
		if !strings.Contains(werr.Error(), "panicked") {
			t.Errorf("collapsed waiter error = %v, want the panic error", werr)
		}
	} else if wv != "fresh" {
		t.Errorf("fresh compute returned %v, want \"fresh\"", wv)
	}
	<-computerDone

	// The dead flight must be gone: a new call computes and caches.
	v, cached, err := c.GetOrCompute("k", 7, func() (any, error) { return "after", nil })
	if err != nil || cached || v != "after" {
		t.Fatalf("flight not cleaned up after panic: v=%v cached=%v err=%v", v, cached, err)
	}
}
