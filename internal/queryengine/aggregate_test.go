package queryengine

import (
	"errors"
	"testing"
	"time"

	"matproj/internal/document"
)

func TestEngineAggregateTranslatesMatchAliases(t *testing.T) {
	e, _ := newEngine(t)
	out, err := e.Aggregate("u", "materials", []document.D{
		{"$match": doc(`{"energy": {"$lt": -5}}`)}, // alias for output.final_energy
		{"$group": doc(`{"_id": null, "n": {"$sum": 1}}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0]["n"] != int64(2) {
		t.Errorf("out = %v", out)
	}
}

func TestEngineAggregateWhitelist(t *testing.T) {
	e, _ := newEngine(t)
	if _, err := e.Aggregate("u", "materials", []document.D{
		{"$merge": doc(`{"into": "other"}`)},
	}); err == nil {
		t.Error("$merge accepted")
	}
	if _, err := e.Aggregate("u", "materials", []document.D{
		{"$match": doc(`{}`), "$sort": doc(`{}`)},
	}); err == nil {
		t.Error("double-operator stage accepted")
	}
	if _, err := e.Aggregate("u", "materials", []document.D{
		{"$match": doc(`{"x": {"$where": "code"}}`)},
	}); err == nil {
		t.Error("$where in $match accepted")
	}
	if _, err := e.Aggregate("u", "materials", []document.D{
		{"$match": "notadoc"},
	}); err == nil {
		t.Error("non-document $match accepted")
	}
}

func TestEngineAggregateRateLimited(t *testing.T) {
	e, _ := newEngine(t, WithRateLimit(1, time.Minute))
	p := []document.D{{"$count": "n"}}
	if _, err := e.Aggregate("u", "materials", p); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Aggregate("u", "materials", p); !errors.Is(err, ErrRateLimited) {
		t.Errorf("err = %v", err)
	}
}

func TestEngineAggregateGroupOverCollectionAlias(t *testing.T) {
	e, _ := newEngine(t)
	e.AliasCollection("mats", "materials")
	out, err := e.Aggregate("u", "mats", []document.D{
		{"$unwind": "$elements"},
		{"$group": doc(`{"_id": "$elements", "n": {"$sum": 1}}`)},
		{"$sort": doc(`{"n": -1}`)},
		{"$limit": int64(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fe and O both appear twice; the top group has n=2.
	if len(out) != 1 || out[0]["n"] != int64(2) {
		t.Errorf("out = %v", out)
	}
}
