package queryengine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/obs"
	"matproj/internal/rcache"
)

func cachedEngine(t *testing.T) (*Engine, *rcache.Cache, *datastore.Store) {
	t.Helper()
	store := datastore.MustOpenMemory()
	rc := rcache.New(1024, obs.NewRegistry())
	eng := New(store, WithCache(rc))
	return eng, rc, store
}

func TestFindServedFromCacheUntilWrite(t *testing.T) {
	eng, rc, _ := cachedEngine(t)
	for i := 0; i < 20; i++ {
		if _, err := eng.Insert("u", "m", document.D{"band_gap": float64(i) / 10}); err != nil {
			t.Fatal(err)
		}
	}
	filter := document.D{"band_gap": document.D{"$gte": 1.0}}

	a, err := eng.Find("u", "m", filter, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Find("u", "m", filter, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := rc.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats after identical finds = %+v, want 1 hit / 1 miss", st)
	}
	if len(a) != len(b) {
		t.Fatalf("cached result differs: %d vs %d docs", len(a), len(b))
	}
	// Results must not alias the cache: mutating one response cannot
	// leak into the next.
	if len(b) > 0 {
		b[0]["band_gap"] = float64(-1)
	}
	c, _ := eng.Find("u", "m", filter, nil)
	if len(c) > 0 && c[0]["band_gap"] == float64(-1) {
		t.Fatal("caller mutation leaked into the cache")
	}

	// A write invalidates: the next read recomputes and sees new data.
	if _, err := eng.Insert("u", "m", document.D{"band_gap": 9.9}); err != nil {
		t.Fatal(err)
	}
	d, err := eng.Find("u", "m", filter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != len(a)+1 {
		t.Fatalf("post-write find = %d docs, want %d", len(d), len(a)+1)
	}
}

func TestCountAndDistinctCached(t *testing.T) {
	eng, rc, _ := cachedEngine(t)
	for i := 0; i < 10; i++ {
		if _, err := eng.Insert("u", "m", document.D{"k": int64(i % 3)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		n, err := eng.Count("u", "m", nil)
		if err != nil || n != 10 {
			t.Fatalf("count = %d, %v", n, err)
		}
		vals, err := eng.Distinct("u", "m", "k", nil)
		if err != nil || len(vals) != 3 {
			t.Fatalf("distinct = %v, %v", vals, err)
		}
	}
	st := rc.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses (count + distinct each)", st)
	}

	// Distinct after a write sees the new value.
	if _, err := eng.Insert("u", "m", document.D{"k": int64(7)}); err != nil {
		t.Fatal(err)
	}
	vals, err := eng.Distinct("u", "m", "k", nil)
	if err != nil || len(vals) != 4 {
		t.Fatalf("post-write distinct = %v, %v", vals, err)
	}
}

func TestCacheKeysRespectAliasesAndCollections(t *testing.T) {
	eng, rc, _ := cachedEngine(t)
	eng.AddAlias("m", "energy", "final_energy")
	if _, err := eng.Insert("u", "m", document.D{"final_energy": -1.5}); err != nil {
		t.Fatal(err)
	}
	// Aliased and physical spellings of the same filter translate to the
	// same canonical key: second spelling is a hit, not a second entry.
	if _, err := eng.Find("u", "m", document.D{"energy": -1.5}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Find("u", "m", document.D{"final_energy": -1.5}, nil); err != nil {
		t.Fatal(err)
	}
	st := rc.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("aliased spellings: stats = %+v, want 1 hit / 1 miss", st)
	}
	// A different collection with the same filter is a different key.
	if _, err := eng.Find("u", "other", document.D{"final_energy": -1.5}, nil); err != nil {
		t.Fatal(err)
	}
	if st := rc.Stats(); st.Misses != 2 {
		t.Fatalf("cross-collection: stats = %+v, want 2 misses", st)
	}
}

// TestCacheNoStaleReadUnderConcurrentWrites is the generation-freshness
// stress test: writers update documents and record the acknowledged
// value; readers note the latest ack *before* querying and assert the
// cached read path never returns anything older. Run under -race in
// check.sh's stress pass.
func TestCacheNoStaleReadUnderConcurrentWrites(t *testing.T) {
	eng, _, _ := cachedEngine(t)
	const writers = 2
	const readers = 4
	const rounds = 200

	// One document per writer; acked[w] is the last value whose Update
	// call has returned.
	var acked [writers]atomic.Int64
	for w := 0; w < writers; w++ {
		if _, err := eng.Insert("u", "m", document.D{"_id": fmt.Sprintf("doc-%d", w), "v": int64(0)}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("doc-%d", w)
			for i := int64(1); i <= rounds; i++ {
				if _, err := eng.Update("u", "m", document.D{"_id": id}, document.D{"$set": document.D{"v": i}}, false); err != nil {
					t.Error(err)
					return
				}
				acked[w].Store(i) // write acknowledged
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w := r % writers
			id := fmt.Sprintf("doc-%d", w)
			for {
				floor := acked[w].Load() // observed before the read starts
				docs, err := eng.Find("u", "m", document.D{"_id": id}, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if len(docs) != 1 {
					t.Errorf("reader %d: %d docs for %s", r, len(docs), id)
					return
				}
				got, _ := docs[0]["v"].(int64)
				if got < floor {
					t.Errorf("stale read: doc %s = %d, but %d was already acknowledged", id, got, floor)
					return
				}
				if floor == rounds {
					return
				}
			}
		}(r)
	}
	wg.Wait()
}
