package queryengine

import (
	"fmt"
	"time"

	"matproj/internal/document"
)

// allowedStages is the aggregation surface exposed to clients. Anything
// else — in particular stages that could execute code or touch other
// collections — is rejected during sanitization.
var allowedStages = map[string]bool{
	"$match": true, "$project": true, "$group": true, "$sort": true,
	"$limit": true, "$skip": true, "$unwind": true, "$count": true,
}

// Aggregate runs a sanitized aggregation pipeline: stage names are
// whitelisted, `$match` stages pass through alias translation and the
// denied-operator screen, and the whole call is charged against the
// user's rate limit. Field references inside $group/$project use
// physical field names (aliases apply to filters only, as with the find
// path's projections... filters; this mirrors the production API, where
// aggregation users were expected to know the stored schema).
func (e *Engine) Aggregate(user, collection string, stages []document.D) (docs []document.D, err error) {
	start := time.Now()
	defer func() { e.observeOp("aggregate", collection, nil, start, len(docs), err) }()
	if err := e.checkRate(user); err != nil {
		return nil, err
	}
	sanitized := make([]document.D, 0, len(stages))
	for i, st := range stages {
		st = document.NormalizeDoc(st)
		if len(st) != 1 {
			return nil, fmt.Errorf("queryengine: stage %d must have exactly one operator", i)
		}
		for op, body := range st {
			if !allowedStages[op] {
				return nil, fmt.Errorf("queryengine: stage %s is not permitted", op)
			}
			if op == "$match" {
				m, ok := body.(map[string]any)
				if !ok {
					return nil, fmt.Errorf("queryengine: stage %d: $match requires a document", i)
				}
				t, err := e.translate(collection, document.D(m))
				if err != nil {
					return nil, err
				}
				sanitized = append(sanitized, document.D{"$match": map[string]any(t)})
				continue
			}
			sanitized = append(sanitized, document.D{op: body})
		}
	}
	return e.store.C(e.physical(collection)).Aggregate(sanitized)
}
