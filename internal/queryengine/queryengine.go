// Package queryengine implements the abstraction layer the paper places
// between every client and the raw datastore (§III-B4): it installs
// convenient aliases for deeply nested fields, maps logical collection
// names to physical ones, sanitizes queries so clients "cannot access the
// database directly" (§IV-D1), and rate-limits per-user query traffic to
// prevent denial-of-service or data-scraping.
//
// Because all reads and writes flow through this layer, the store behind
// it could be swapped out without touching clients — the "defense against
// lock-in" the paper describes.
package queryengine

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/obs"
	"matproj/internal/rcache"
)

// Backend is the storage surface the engine fronts. A local
// *datastore.Store is the standalone case; internal/cluster's Router
// satisfies the same contract over networked shard nodes, so the whole
// dissemination layer (aliases, sanitization, rate limits) is reusable
// in front of either — the paper's "defense against lock-in" extended to
// the deployment topology.
type Backend interface {
	C(name string) Collection
}

// Collection is the per-collection operation set the engine needs from a
// backend. *datastore.Collection implements it directly.
type Collection interface {
	FindAll(filter document.D, opts *datastore.FindOpts) ([]document.D, error)
	Count(filter document.D) (int, error)
	Distinct(path string, filter document.D) ([]any, error)
	UpdateOne(filter, update document.D) (datastore.UpdateResult, error)
	UpdateMany(filter, update document.D) (datastore.UpdateResult, error)
	Insert(doc document.D) (string, error)
	// InsertMany inserts a batch under a single lock acquisition (one
	// group-commit fsync on durable stores); routed backends split it
	// into per-shard sub-batches.
	InsertMany(docs []document.D) ([]string, error)
	// BulkWrite applies a mixed insert/update/delete batch. Per-op
	// failures land in the per-op results; the error return is for
	// batch-level failures.
	BulkWrite(ops []datastore.BulkOp) (datastore.BulkResult, error)
	Aggregate(pipeline []document.D) ([]document.D, error)
	// Explain returns the query planner's decision for the filter/opts
	// pair without executing the query (chosen index, key bounds,
	// residual filter, sort satisfaction). Routed backends scatter it so
	// the response reports every shard's plan.
	Explain(filter document.D, opts *datastore.FindOpts) (document.D, error)
	// Generation reports the collection's write generation (see
	// datastore.Collection.Generation): it changes after every
	// acknowledged write, and the read-path result cache and the REST
	// layer's ETags key validity on it.
	Generation() uint64
}

// storeBackend adapts *datastore.Store to Backend (Store.C returns the
// concrete *datastore.Collection type).
type storeBackend struct{ s *datastore.Store }

func (b storeBackend) C(name string) Collection { return b.s.C(name) }

// Engine is a sanitizing, aliasing facade over a storage backend.
type Engine struct {
	store Backend

	// Live observability (nil when not wired). Because every client read
	// and write flows through the Engine, these histograms are the live
	// counterpart of Fig. 5: per-op latency plus documents-returned
	// accounting.
	obsReg atomic.Pointer[obs.Registry]
	obsTr  atomic.Pointer[obs.Tracer]

	// cache, when set, serves Find/Count/Distinct results validated by
	// the backend collection's write generation (nil = every read
	// recomputes). Cached values are deep-copied on the way out, so
	// callers never alias the cache.
	cache atomic.Pointer[rcache.Cache]

	mu sync.RWMutex
	// aliases maps collection -> alias -> physical dotted path.
	aliases map[string]map[string]string
	// collAliases maps logical collection name -> physical name.
	collAliases map[string]string
	// deniedOps are operator names rejected during sanitization.
	deniedOps map[string]bool
	limiter   *RateLimiter
}

// Option configures an Engine.
type Option func(*Engine)

// WithRateLimit installs a per-user token bucket allowing n queries per
// interval.
func WithRateLimit(n int, interval time.Duration) Option {
	return func(e *Engine) { e.limiter = NewRateLimiter(n, interval) }
}

// WithDeniedOperator rejects queries using the given operator (e.g. a
// deployment may deny "$regex" to prevent expensive scans).
func WithDeniedOperator(op string) Option {
	return func(e *Engine) { e.deniedOps[op] = true }
}

// WithCache installs a read-path result cache (see SetCache).
func WithCache(c *rcache.Cache) Option {
	return func(e *Engine) { e.cache.Store(c) }
}

// New wraps a local store.
func New(store *datastore.Store, opts ...Option) *Engine {
	return NewWithBackend(storeBackend{store}, opts...)
}

// NewWithBackend wraps any storage backend — in particular a cluster
// router, putting the full sanitizing layer in front of networked shards.
func NewWithBackend(b Backend, opts ...Option) *Engine {
	e := &Engine{
		store:       b,
		aliases:     make(map[string]map[string]string),
		collAliases: make(map[string]string),
		deniedOps:   map[string]bool{"$where": true}, // never allow code injection
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Observe wires the engine into a metrics registry and slow-query tracer
// (either may be nil). Safe to call while queries are flowing.
func (e *Engine) Observe(reg *obs.Registry, tr *obs.Tracer) {
	e.obsReg.Store(reg)
	e.obsTr.Store(tr)
}

// SetCache installs (nil removes) the read-path result cache. Safe to
// call while queries are flowing.
func (e *Engine) SetCache(c *rcache.Cache) { e.cache.Store(c) }

// Generation reports the backend write generation of a logical
// collection (collection aliases resolved). The REST layer derives
// entity tags from it: any acknowledged write to the collection changes
// the value, so If-None-Match revalidation stays exact.
func (e *Engine) Generation(collection string) uint64 {
	return e.store.C(e.physical(collection)).Generation()
}

// cacheArg renders the canonical cache argument for a read: compact JSON
// with sorted keys at every nesting level (encoding/json sorts map
// keys), so semantically identical filters from different clients share
// an entry. The false return (marshal failure — a filter holding a
// non-JSON value) bypasses the cache rather than failing the read.
func cacheArg(filter document.D, opts *datastore.FindOpts, field string) (string, bool) {
	spec := struct {
		F  map[string]any `json:"f,omitempty"`
		P  map[string]any `json:"p,omitempty"`
		S  []string       `json:"s,omitempty"`
		K  int            `json:"k,omitempty"`
		L  int            `json:"l,omitempty"`
		D  string         `json:"d,omitempty"`
		MS int            `json:"ms,omitempty"` // staleness budget: follower-served results must not satisfy exact reads
	}{F: filter, D: field}
	if opts != nil {
		spec.P, spec.S, spec.K, spec.L = opts.Projection, opts.Sort, opts.Skip, opts.Limit
		spec.MS = opts.MaxStaleness
	}
	b, err := json.Marshal(spec)
	if err != nil {
		return "", false
	}
	return string(b), true
}

// copyDocs deep-copies a cached result slice so no two callers (or the
// cache itself) share document memory.
func copyDocs(docs []document.D) []document.D {
	out := make([]document.D, len(docs))
	for i, d := range docs {
		out[i] = d.Copy()
	}
	return out
}

// observeOp records one engine operation: a per-op latency histogram and
// count, a documents-returned counter, error/rate-limit counters, and —
// when the op crosses the tracer threshold — a slow-query log entry with
// the collection and filter.
func (e *Engine) observeOp(op, collection string, filter document.D, start time.Time, returned int, err error) {
	reg := e.obsReg.Load()
	tr := e.obsTr.Load()
	if reg == nil && tr == nil {
		return
	}
	dur := time.Since(start)
	if reg != nil {
		reg.Counter("query." + op + ".count").Inc()
		reg.LatencyHistogram("query." + op + "_ms").ObserveDuration(dur)
		if returned > 0 {
			reg.Counter("query.docs_returned").Add(uint64(returned))
		}
		if err != nil {
			if errors.Is(err, ErrRateLimited) {
				reg.Counter("query.rate_limited").Inc()
			} else {
				reg.Counter("query.errors").Inc()
			}
		}
	}
	tr.ObserveFunc("query."+op, dur, func() string {
		detail := "collection=" + collection
		if filter != nil {
			if b, jerr := filter.ToJSON(); jerr == nil {
				f := string(b)
				if len(f) > 200 {
					f = f[:200] + "..."
				}
				detail += " filter=" + f
			}
		}
		return fmt.Sprintf("%s returned=%d", detail, returned)
	})
}

// AddAlias installs alias -> path for one collection, so clients can write
// {energy: ...} instead of {"output.final_energy": ...}. Installing in a
// "single central place" is the point of the layer.
func (e *Engine) AddAlias(collection, alias, path string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.aliases[collection]
	if m == nil {
		m = make(map[string]string)
		e.aliases[collection] = m
	}
	m[alias] = path
}

// AliasCollection maps a logical collection name to a physical one,
// letting operators rename collections without breaking clients.
func (e *Engine) AliasCollection(logical, physical string) {
	e.mu.Lock()
	e.collAliases[logical] = physical
	e.mu.Unlock()
}

// Aliases reports the installed field aliases for a collection, sorted.
func (e *Engine) Aliases(collection string) []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []string
	for a := range e.aliases[collection] {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func (e *Engine) physical(collection string) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if p, ok := e.collAliases[collection]; ok {
		return p
	}
	return collection
}

// translate rewrites aliased field names in a filter/update/projection
// document and rejects denied operators. Keys are rewritten at any
// nesting level inside logical operators; values below a field key are
// left alone except for operator screening.
func (e *Engine) translate(collection string, d document.D) (document.D, error) {
	if d == nil {
		return nil, nil
	}
	e.mu.RLock()
	aliasMap := e.aliases[collection]
	e.mu.RUnlock()
	out, err := e.translateMap(aliasMap, map[string]any(d), true)
	if err != nil {
		return nil, err
	}
	return document.D(out), nil
}

func (e *Engine) translateMap(aliasMap map[string]string, m map[string]any, fieldPosition bool) (map[string]any, error) {
	out := make(map[string]any, len(m))
	for k, v := range m {
		if strings.HasPrefix(k, "$") {
			if e.deniedOps[k] {
				return nil, fmt.Errorf("queryengine: operator %s is not permitted", k)
			}
			switch k {
			case "$and", "$or", "$nor":
				arr, ok := v.([]any)
				if !ok {
					out[k] = v
					continue
				}
				newArr := make([]any, len(arr))
				for i, el := range arr {
					if sub, ok := el.(map[string]any); ok {
						t, err := e.translateMap(aliasMap, sub, true)
						if err != nil {
							return nil, err
						}
						newArr[i] = t
					} else {
						newArr[i] = el
					}
				}
				out[k] = newArr
			default:
				// Operator argument: screen nested operators but keep
				// values (and do not alias inside values).
				if sub, ok := v.(map[string]any); ok {
					t, err := e.translateMap(aliasMap, sub, false)
					if err != nil {
						return nil, err
					}
					out[k] = t
				} else {
					out[k] = v
				}
			}
			continue
		}
		key := k
		if fieldPosition && aliasMap != nil {
			if phys, ok := aliasMap[k]; ok {
				key = phys
			} else if head, rest, found := strings.Cut(k, "."); found {
				if phys, ok := aliasMap[head]; ok {
					key = phys + "." + rest
				}
			}
		}
		// Field values may contain operator documents ({$gte: ...}) or, in
		// updates, field->value maps ({$set: {alias: v}}).
		if sub, ok := v.(map[string]any); ok {
			// Update-operator bodies are field maps: keys there are field
			// names, so keep fieldPosition for them when the parent key is
			// an update operator. We detect that in translate via
			// TranslateUpdate instead; here treat as operator body.
			t, err := e.translateMap(aliasMap, sub, false)
			if err != nil {
				return nil, err
			}
			out[key] = t
		} else {
			out[key] = v
		}
	}
	return out, nil
}

// translateUpdate rewrites aliases inside update-operator bodies
// ({$set: {energy: 1}} -> {$set: {"output.final_energy": 1}}).
func (e *Engine) translateUpdate(collection string, u document.D) (document.D, error) {
	if u == nil {
		return nil, nil
	}
	e.mu.RLock()
	aliasMap := e.aliases[collection]
	e.mu.RUnlock()
	out := make(document.D, len(u))
	for op, body := range u {
		if !strings.HasPrefix(op, "$") {
			// Replacement document: alias its top-level keys.
			key := op
			if aliasMap != nil {
				if phys, ok := aliasMap[op]; ok {
					key = phys
				}
			}
			out[key] = body
			continue
		}
		if e.deniedOps[op] {
			return nil, fmt.Errorf("queryengine: operator %s is not permitted", op)
		}
		m, ok := body.(map[string]any)
		if !ok {
			if d, isD := body.(document.D); isD {
				m = map[string]any(d)
				ok = true
			}
		}
		if !ok {
			out[op] = body
			continue
		}
		newBody := make(map[string]any, len(m))
		for field, v := range m {
			key := field
			if aliasMap != nil {
				if phys, okA := aliasMap[field]; okA {
					key = phys
				} else if head, rest, found := strings.Cut(field, "."); found {
					if phys, okA := aliasMap[head]; okA {
						key = phys + "." + rest
					}
				}
			}
			newBody[key] = v
		}
		out[op] = newBody
	}
	return out, nil
}

// ErrRateLimited is returned when a user exceeds their query budget.
var ErrRateLimited = fmt.Errorf("queryengine: rate limit exceeded")

// ErrUnavailable marks backend errors meaning the storage tier cannot
// currently serve the request (e.g. a shard with no healthy members).
// Backends wrap it so the API layer can answer 503 — a retryable signal
// — instead of blaming the caller with a 400.
var ErrUnavailable = fmt.Errorf("queryengine: backend unavailable")

// checkRate charges one query to user, if limiting is enabled.
func (e *Engine) checkRate(user string) error {
	if e.limiter == nil || user == "" {
		return nil
	}
	if !e.limiter.Allow(user) {
		return ErrRateLimited
	}
	return nil
}

// Find runs a sanitized, alias-translated query for a user.
func (e *Engine) Find(user, collection string, filter document.D, opts *datastore.FindOpts) (docs []document.D, err error) {
	start := time.Now()
	defer func() { e.observeOp("find", collection, filter, start, len(docs), err) }()
	if err := e.checkRate(user); err != nil {
		return nil, err
	}
	f, err := e.translate(collection, document.NormalizeDoc(filter))
	if err != nil {
		return nil, err
	}
	var o *datastore.FindOpts
	if opts != nil {
		copyOpts := *opts
		p, err := e.translate(collection, document.NormalizeDoc(opts.Projection))
		if err != nil {
			return nil, err
		}
		copyOpts.Projection = p
		copyOpts.Sort = e.translateSort(collection, opts.Sort)
		o = &copyOpts
	}
	coll := e.store.C(e.physical(collection))
	// $explain in the filter flips the query into plan-only mode: the
	// planner's decision comes back as the single result document and
	// nothing is executed (or cached — plans describe live index state).
	if ev, hasExplain := f["$explain"]; hasExplain {
		delete(f, "$explain")
		if explainTruthy(ev) {
			plan, perr := coll.Explain(f, o)
			if perr != nil {
				return nil, perr
			}
			return []document.D{plan}, nil
		}
	}
	rc := e.cache.Load()
	if rc == nil {
		return coll.FindAll(f, o)
	}
	arg, ok := cacheArg(f, o, "")
	if !ok {
		return coll.FindAll(f, o)
	}
	// Load the generation before reading: a write landing after this
	// point produces a new generation, so the entry stored under gen can
	// never serve a reader that starts after that write acknowledges.
	gen := coll.Generation()
	v, _, err := rc.GetOrCompute(rcache.KeyFor(e.physical(collection), "find", arg), gen, func() (any, error) {
		d, cerr := coll.FindAll(f, o)
		return d, cerr
	})
	if err != nil {
		return nil, err
	}
	return copyDocs(v.([]document.D)), nil
}

// explainTruthy interprets the $explain flag value: false, nil and
// numeric zero are off, everything else is on.
func explainTruthy(v any) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	default:
		return true
	}
}

// Explain runs the sanitizing/aliasing pipeline exactly as Find would,
// then asks the backend for the planner's decision instead of results.
func (e *Engine) Explain(user, collection string, filter document.D, opts *datastore.FindOpts) (plan document.D, err error) {
	start := time.Now()
	defer func() { e.observeOp("explain", collection, filter, start, 0, err) }()
	if err := e.checkRate(user); err != nil {
		return nil, err
	}
	f, err := e.translate(collection, document.NormalizeDoc(filter))
	if err != nil {
		return nil, err
	}
	delete(f, "$explain")
	var o *datastore.FindOpts
	if opts != nil {
		copyOpts := *opts
		p, err := e.translate(collection, document.NormalizeDoc(opts.Projection))
		if err != nil {
			return nil, err
		}
		copyOpts.Projection = p
		copyOpts.Sort = e.translateSort(collection, opts.Sort)
		o = &copyOpts
	}
	return e.store.C(e.physical(collection)).Explain(f, o)
}

func (e *Engine) translateSort(collection string, sortSpec []string) []string {
	e.mu.RLock()
	aliasMap := e.aliases[collection]
	e.mu.RUnlock()
	if aliasMap == nil {
		return sortSpec
	}
	out := make([]string, len(sortSpec))
	for i, s := range sortSpec {
		neg := strings.HasPrefix(s, "-")
		name := strings.TrimPrefix(s, "-")
		if phys, ok := aliasMap[name]; ok {
			name = phys
		}
		if neg {
			name = "-" + name
		}
		out[i] = name
	}
	return out
}

// FindOne returns the first match or datastore.ErrNotFound.
func (e *Engine) FindOne(user, collection string, filter document.D, opts *datastore.FindOpts) (document.D, error) {
	o := datastore.FindOpts{Limit: 1}
	if opts != nil {
		o = *opts
		o.Limit = 1
	}
	docs, err := e.Find(user, collection, filter, &o)
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, datastore.ErrNotFound
	}
	return docs[0], nil
}

// Count counts matching documents.
func (e *Engine) Count(user, collection string, filter document.D) (n int, err error) {
	start := time.Now()
	defer func() { e.observeOp("count", collection, filter, start, n, err) }()
	if err := e.checkRate(user); err != nil {
		return 0, err
	}
	f, err := e.translate(collection, document.NormalizeDoc(filter))
	if err != nil {
		return 0, err
	}
	coll := e.store.C(e.physical(collection))
	rc := e.cache.Load()
	if rc == nil {
		return coll.Count(f)
	}
	arg, ok := cacheArg(f, nil, "")
	if !ok {
		return coll.Count(f)
	}
	gen := coll.Generation()
	v, _, err := rc.GetOrCompute(rcache.KeyFor(e.physical(collection), "count", arg), gen, func() (any, error) {
		cn, cerr := coll.Count(f)
		return cn, cerr
	})
	if err != nil {
		return 0, err
	}
	return v.(int), nil
}

// Distinct lists distinct values of a (possibly aliased) field.
func (e *Engine) Distinct(user, collection, field string, filter document.D) (vals []any, err error) {
	start := time.Now()
	defer func() { e.observeOp("distinct", collection, filter, start, len(vals), err) }()
	if err := e.checkRate(user); err != nil {
		return nil, err
	}
	f, err := e.translate(collection, document.NormalizeDoc(filter))
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	if m := e.aliases[collection]; m != nil {
		if phys, ok := m[field]; ok {
			field = phys
		}
	}
	e.mu.RUnlock()
	coll := e.store.C(e.physical(collection))
	rc := e.cache.Load()
	if rc == nil {
		return coll.Distinct(field, f)
	}
	arg, ok := cacheArg(f, nil, field)
	if !ok {
		return coll.Distinct(field, f)
	}
	gen := coll.Generation()
	v, _, err := rc.GetOrCompute(rcache.KeyFor(e.physical(collection), "distinct", arg), gen, func() (any, error) {
		dv, cerr := coll.Distinct(field, f)
		return dv, cerr
	})
	if err != nil {
		return nil, err
	}
	out := v.([]any)
	copied := make([]any, len(out))
	for i, val := range out {
		copied[i] = document.CopyValue(val)
	}
	return copied, nil
}

// Update applies a sanitized update; many selects UpdateMany.
func (e *Engine) Update(user, collection string, filter, update document.D, many bool) (res datastore.UpdateResult, err error) {
	start := time.Now()
	defer func() { e.observeOp("update", collection, filter, start, res.Modified, err) }()
	if err := e.checkRate(user); err != nil {
		return datastore.UpdateResult{}, err
	}
	f, err := e.translate(collection, document.NormalizeDoc(filter))
	if err != nil {
		return datastore.UpdateResult{}, err
	}
	u, err := e.translateUpdate(collection, document.NormalizeDoc(update))
	if err != nil {
		return datastore.UpdateResult{}, err
	}
	c := e.store.C(e.physical(collection))
	if many {
		return c.UpdateMany(f, u)
	}
	return c.UpdateOne(f, u)
}

// Insert stores a document (top-level alias keys are translated).
func (e *Engine) Insert(user, collection string, doc document.D) (id string, err error) {
	start := time.Now()
	defer func() { e.observeOp("insert", collection, nil, start, 0, err) }()
	if err := e.checkRate(user); err != nil {
		return "", err
	}
	d, err := e.translateInsertDoc(collection, doc)
	if err != nil {
		return "", err
	}
	return e.store.C(e.physical(collection)).Insert(d)
}

// translateInsertDoc normalizes an inbound document and rewrites
// top-level alias keys to their physical dotted paths.
func (e *Engine) translateInsertDoc(collection string, doc document.D) (document.D, error) {
	d := document.NormalizeDoc(doc)
	e.mu.RLock()
	aliasMap := e.aliases[collection]
	e.mu.RUnlock()
	if aliasMap != nil {
		for alias, phys := range aliasMap {
			if v, ok := d[alias]; ok {
				delete(d, alias)
				if err := d.Set(phys, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return d, nil
}

// InsertMany stores a batch of documents through the backend's
// single-lock batch path (one group-commit fsync on durable stores;
// per-shard sub-batches when routed). Alias keys are translated per
// document. The batch counts as one operation against the rate limit.
func (e *Engine) InsertMany(user, collection string, docs []document.D) (ids []string, err error) {
	start := time.Now()
	defer func() { e.observeOp("insertMany", collection, nil, start, len(ids), err) }()
	if err := e.checkRate(user); err != nil {
		return nil, err
	}
	prepared := make([]document.D, len(docs))
	for i, doc := range docs {
		d, terr := e.translateInsertDoc(collection, doc)
		if terr != nil {
			return nil, terr
		}
		prepared[i] = d
	}
	ids, err = e.store.C(e.physical(collection)).InsertMany(prepared)
	return ids, err
}

// BulkWrite applies a mixed insert/update/delete batch. Insert docs get
// top-level alias translation, update/delete filters and update bodies
// go through the same sanitizing translation as Query/Update — a denied
// operator fails that op (reported per-op), not the batch.
func (e *Engine) BulkWrite(user, collection string, ops []datastore.BulkOp) (res datastore.BulkResult, err error) {
	start := time.Now()
	mutated := 0
	defer func() { e.observeOp("bulkWrite", collection, nil, start, mutated, err) }()
	if err := e.checkRate(user); err != nil {
		return datastore.BulkResult{}, err
	}
	prepared := make([]datastore.BulkOp, len(ops))
	// preErr holds per-op translation failures so the backend still runs
	// the ops that translated cleanly (continue-on-error semantics).
	preErr := make([]string, len(ops))
	for i, op := range ops {
		p := datastore.BulkOp{Op: op.Op}
		switch op.Op {
		case datastore.BulkInsert:
			d, terr := e.translateInsertDoc(collection, op.Doc)
			if terr != nil {
				preErr[i] = terr.Error()
				break
			}
			p.Doc = d
		case datastore.BulkUpdateOne, datastore.BulkUpdateMany:
			f, terr := e.translate(collection, document.NormalizeDoc(op.Filter))
			if terr == nil {
				p.Filter = f
				p.Update, terr = e.translateUpdate(collection, document.NormalizeDoc(op.Update))
			}
			if terr != nil {
				preErr[i] = terr.Error()
			}
		case datastore.BulkDelete:
			f, terr := e.translate(collection, document.NormalizeDoc(op.Filter))
			if terr != nil {
				preErr[i] = terr.Error()
				break
			}
			p.Filter = f
		default:
			preErr[i] = fmt.Sprintf("unknown bulk op %q", op.Op)
		}
		prepared[i] = p
	}
	// Send only the clean ops, then fold the per-op results back into
	// input order alongside the translation failures.
	send := make([]datastore.BulkOp, 0, len(ops))
	sendIdx := make([]int, 0, len(ops))
	for i := range prepared {
		if preErr[i] == "" {
			send = append(send, prepared[i])
			sendIdx = append(sendIdx, i)
		}
	}
	res = datastore.BulkResult{PerOp: make([]datastore.BulkOpResult, len(ops))}
	for i, msg := range preErr {
		if msg != "" {
			res.PerOp[i].Error = msg
		}
	}
	if len(send) > 0 {
		sub, berr := e.store.C(e.physical(collection)).BulkWrite(send)
		if berr != nil {
			err = berr
			return res, err
		}
		res.Inserted, res.Matched, res.Modified, res.Removed = sub.Inserted, sub.Matched, sub.Modified, sub.Removed
		for si, oi := range sendIdx {
			if si < len(sub.PerOp) {
				res.PerOp[oi] = sub.PerOp[si]
			}
		}
	}
	mutated = res.Inserted + res.Modified + res.Removed
	return res, nil
}

// RateLimiter is a fixed-window per-user counter: up to n operations per
// interval, resetting at window boundaries.
type RateLimiter struct {
	mu       sync.Mutex
	n        int
	interval time.Duration
	windows  map[string]*window
	now      func() time.Time
}

type window struct {
	start time.Time
	count int
}

// NewRateLimiter allows n operations per interval per user.
func NewRateLimiter(n int, interval time.Duration) *RateLimiter {
	return &RateLimiter{n: n, interval: interval, windows: make(map[string]*window), now: time.Now}
}

// SetClock overrides the limiter's time source (tests).
func (r *RateLimiter) SetClock(now func() time.Time) {
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

// Allow charges one operation to user, reporting whether it is within
// budget.
func (r *RateLimiter) Allow(user string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	w, ok := r.windows[user]
	if !ok || now.Sub(w.start) >= r.interval {
		w = &window{start: now}
		r.windows[user] = w
	}
	if w.count >= r.n {
		return false
	}
	w.count++
	return true
}
