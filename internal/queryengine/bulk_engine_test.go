package queryengine

import (
	"errors"
	"testing"
	"time"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

func TestEngineInsertManyAppliesAliases(t *testing.T) {
	e, s := newEngine(t)
	ids, err := e.InsertMany("u", "materials", []document.D{
		doc(`{"_id": "b1", "formula": "TiO2"}`),
		doc(`{"_id": "b2", "formula": "MgO"}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "b1" || ids[1] != "b2" {
		t.Fatalf("ids = %v", ids)
	}
	// The alias rewrite applies per document: "formula" is stored under
	// the canonical field, same as single Insert.
	got, err := s.C("materials").FindID("b1")
	if err != nil {
		t.Fatal(err)
	}
	if got["pretty_formula"] != "TiO2" {
		t.Errorf("alias not rewritten: %v", got)
	}
	if _, aliased := got["formula"]; aliased {
		t.Errorf("alias field stored verbatim: %v", got)
	}
}

func TestEngineInsertManyCountsOneRateToken(t *testing.T) {
	e, _ := newEngine(t, WithRateLimit(2, time.Hour))
	docs := make([]document.D, 10)
	for i := range docs {
		docs[i] = document.D{"n": int64(i)}
	}
	// A 10-doc batch spends one token, not ten.
	if _, err := e.InsertMany("bob", "materials", docs); err != nil {
		t.Fatal(err)
	}
	if _, err := e.InsertMany("bob", "materials", []document.D{{"n": int64(99)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.InsertMany("bob", "materials", []document.D{{"n": int64(100)}}); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("third call: %v, want rate limit", err)
	}
}

func TestEngineBulkWriteTranslatesAndReportsPerOp(t *testing.T) {
	e, s := newEngine(t)
	res, err := e.BulkWrite("u", "materials", []datastore.BulkOp{
		// Aliased filter and update: "energy" → output.final_energy.
		{Op: datastore.BulkUpdateMany, Filter: doc(`{"energy": {"$lt": -10}}`),
			Update: doc(`{"$set": {"screened": true}}`)},
		// Invalid update document: reported per-op, not as a call error.
		{Op: datastore.BulkUpdateOne, Filter: doc(`{"_id": "m1"}`), Update: doc(`{"$bogus": {"x": 1}}`)},
		{Op: datastore.BulkInsert, Doc: doc(`{"_id": "b9", "formula": "CaO"}`)},
		{Op: datastore.BulkDelete, Filter: doc(`{"formula": "NaCl"}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerOp[0].Matched != 1 || res.PerOp[0].Modified != 1 {
		t.Errorf("aliased updateMany = %+v", res.PerOp[0])
	}
	if res.PerOp[1].Error == "" {
		t.Error("invalid update op not reported")
	}
	if res.PerOp[2].ID != "b9" || res.PerOp[2].Error != "" {
		t.Errorf("insert op = %+v", res.PerOp[2])
	}
	if res.PerOp[3].Removed != 1 {
		t.Errorf("aliased delete = %+v", res.PerOp[3])
	}
	m2, _ := s.C("materials").FindID("m2")
	if m2["screened"] != true {
		t.Errorf("update not applied: %v", m2)
	}
	ins, err := s.C("materials").FindID("b9")
	if err != nil || ins["pretty_formula"] != "CaO" {
		t.Errorf("insert alias not rewritten: %v %v", ins, err)
	}
	if _, err := s.C("materials").FindID("m3"); err == nil {
		t.Error("delete not applied")
	}
}
