package queryengine

import (
	"errors"
	"testing"
	"time"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

func doc(s string) document.D { return document.MustFromJSON(s) }

func newEngine(t *testing.T, opts ...Option) (*Engine, *datastore.Store) {
	t.Helper()
	s := datastore.MustOpenMemory()
	e := New(s, opts...)
	c := s.C("materials")
	rows := []string{
		`{"_id": "m1", "pretty_formula": "Fe2O3", "output": {"final_energy": -8.1}, "elements": ["Fe", "O"]}`,
		`{"_id": "m2", "pretty_formula": "LiFePO4", "output": {"final_energy": -12.2}, "elements": ["Li", "Fe", "P", "O"]}`,
		`{"_id": "m3", "pretty_formula": "NaCl", "output": {"final_energy": -3.4}, "elements": ["Na", "Cl"]}`,
	}
	for _, r := range rows {
		if _, err := c.Insert(doc(r)); err != nil {
			t.Fatal(err)
		}
	}
	e.AddAlias("materials", "energy", "output.final_energy")
	e.AddAlias("materials", "formula", "pretty_formula")
	return e, s
}

func TestAliasInFilter(t *testing.T) {
	e, _ := newEngine(t)
	got, err := e.Find("u", "materials", doc(`{"energy": {"$lt": -10}}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["_id"] != "m2" {
		t.Errorf("got %v", got)
	}
}

func TestAliasWithDottedSuffix(t *testing.T) {
	e, s := newEngine(t)
	s.C("materials").UpdateOne(doc(`{"_id": "m1"}`), doc(`{"$set": {"output.bandgap": {"value": 2.1}}}`))
	e.AddAlias("materials", "out", "output")
	got, err := e.Find("u", "materials", doc(`{"out.bandgap.value": 2.1}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("got %d", len(got))
	}
}

func TestAliasInsideLogicalOperators(t *testing.T) {
	e, _ := newEngine(t)
	got, err := e.Find("u", "materials", doc(`{"$or": [{"energy": {"$lt": -10}}, {"formula": "NaCl"}]}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("got %d", len(got))
	}
}

func TestAliasInProjectionAndSort(t *testing.T) {
	e, _ := newEngine(t)
	got, err := e.Find("u", "materials", nil, &datastore.FindOpts{
		Projection: doc(`{"energy": 1}`),
		Sort:       []string{"-energy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d", len(got))
	}
	if v, ok := got[0].Get("output.final_energy"); !ok || v != -3.4 {
		t.Errorf("sorted[0] energy = %v ok=%v", v, ok)
	}
	if got[0].Has("pretty_formula") {
		t.Error("projection leaked")
	}
}

func TestCollectionAlias(t *testing.T) {
	e, s := newEngine(t)
	e.AliasCollection("mats", "materials")
	n, err := e.Count("u", "mats", nil)
	if err != nil || n != 3 {
		t.Errorf("count via alias = %d err=%v", n, err)
	}
	_ = s
}

func TestDeniedOperators(t *testing.T) {
	e, _ := newEngine(t, WithDeniedOperator("$regex"))
	if _, err := e.Find("u", "materials", doc(`{"formula": {"$regex": "^Fe"}}`), nil); err == nil {
		t.Error("$regex should be denied")
	}
	// $where is always denied.
	if _, err := e.Find("u", "materials", doc(`{"$where": "code"}`), nil); err == nil {
		t.Error("$where should be denied")
	}
	// Nested denial inside $or.
	if _, err := e.Find("u", "materials", doc(`{"$or": [{"x": {"$regex": "a"}}]}`), nil); err == nil {
		t.Error("nested denied op should be caught")
	}
}

func TestUpdateTranslatesAliases(t *testing.T) {
	e, s := newEngine(t)
	res, err := e.Update("u", "materials", doc(`{"formula": "NaCl"}`), doc(`{"$set": {"energy": -5.5}}`), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Modified != 1 {
		t.Errorf("res = %+v", res)
	}
	got, _ := s.C("materials").FindID("m3")
	if v, _ := got.Get("output.final_energy"); v != -5.5 {
		t.Errorf("energy = %v", v)
	}
	// UpdateMany path.
	res, err = e.Update("u", "materials", nil, doc(`{"$set": {"checked": true}}`), true)
	if err != nil || res.Modified != 3 {
		t.Errorf("many res = %+v err=%v", res, err)
	}
}

func TestInsertTranslatesAliases(t *testing.T) {
	e, s := newEngine(t)
	id, err := e.Insert("u", "materials", doc(`{"formula": "KCl", "energy": -4.2}`))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := s.C("materials").FindID(id)
	if got["pretty_formula"] != "KCl" {
		t.Errorf("formula not translated: %v", got)
	}
	if v, _ := got.Get("output.final_energy"); v != -4.2 {
		t.Errorf("energy not translated: %v", got)
	}
}

func TestFindOneAndDistinct(t *testing.T) {
	e, _ := newEngine(t)
	got, err := e.FindOne("u", "materials", doc(`{"formula": "NaCl"}`), nil)
	if err != nil || got["_id"] != "m3" {
		t.Errorf("got %v err %v", got, err)
	}
	if _, err := e.FindOne("u", "materials", doc(`{"formula": "None"}`), nil); !errors.Is(err, datastore.ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	vals, err := e.Distinct("u", "materials", "elements", nil)
	if err != nil || len(vals) != 6 {
		t.Errorf("distinct = %v err=%v", vals, err)
	}
	// Distinct through an alias.
	es, err := e.Distinct("u", "materials", "energy", nil)
	if err != nil || len(es) != 3 {
		t.Errorf("distinct energy = %v err=%v", es, err)
	}
}

func TestRateLimiting(t *testing.T) {
	e, _ := newEngine(t, WithRateLimit(3, time.Minute))
	for i := 0; i < 3; i++ {
		if _, err := e.Count("alice", "materials", nil); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if _, err := e.Count("alice", "materials", nil); !errors.Is(err, ErrRateLimited) {
		t.Errorf("4th query err = %v", err)
	}
	// Other users unaffected.
	if _, err := e.Count("bob", "materials", nil); err != nil {
		t.Errorf("bob: %v", err)
	}
	// Anonymous (empty user) is not limited.
	if _, err := e.Count("", "materials", nil); err != nil {
		t.Errorf("anon: %v", err)
	}
}

func TestRateLimiterWindowResets(t *testing.T) {
	rl := NewRateLimiter(2, time.Minute)
	now := time.Unix(1000, 0)
	rl.SetClock(func() time.Time { return now })
	if !rl.Allow("u") || !rl.Allow("u") {
		t.Fatal("first two should pass")
	}
	if rl.Allow("u") {
		t.Fatal("third should fail")
	}
	now = now.Add(time.Minute)
	if !rl.Allow("u") {
		t.Error("new window should allow")
	}
}

func TestAliasesListing(t *testing.T) {
	e, _ := newEngine(t)
	got := e.Aliases("materials")
	if len(got) != 2 || got[0] != "energy" || got[1] != "formula" {
		t.Errorf("aliases = %v", got)
	}
	if e.Aliases("none") != nil {
		t.Error("unknown collection aliases should be nil")
	}
}

func TestRateLimitAppliesAcrossMethods(t *testing.T) {
	e, _ := newEngine(t, WithRateLimit(1, time.Minute))
	if _, err := e.Find("u", "materials", nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Distinct("u", "materials", "elements", nil); !errors.Is(err, ErrRateLimited) {
		t.Error("distinct should be limited")
	}
	if _, err := e.Update("u", "materials", nil, doc(`{"$set": {"x": 1}}`), false); !errors.Is(err, ErrRateLimited) {
		t.Error("update should be limited")
	}
	if _, err := e.Insert("u", "materials", doc(`{"x": 1}`)); !errors.Is(err, ErrRateLimited) {
		t.Error("insert should be limited")
	}
}
