// Package mapreduce implements a parallel MapReduce engine over document
// collections — the in-process stand-in for the Hadoop side of the
// paper's §IV-B2 comparison, where a parallel framework is "several times
// faster" than MongoDB's built-in single-threaded MapReduce.
//
// The engine splits the input across M map workers, applies a combiner
// (the reduce function on map-local partial groups, valid because reduce
// must be associative), shuffles by key hash into R reduce partitions,
// reduces in parallel, and merges results sorted by key. The paper also
// notes (§IV-C2) that MapReduce "is a logical language in which to write
// the V&V of a database"; the builder package layers its validation
// framework on this engine.
package mapreduce

import (
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

// MapFunc and ReduceFunc mirror the datastore's built-in engine types so
// the same job can run on either engine for the §IV-B2 comparison.
type (
	// MapFunc emits key/value pairs for one document.
	MapFunc = datastore.MapFunc
	// ReduceFunc folds values for a key; it must be associative because
	// it is also used as a combiner on partial groups.
	ReduceFunc = datastore.ReduceFunc
)

// Config controls engine parallelism.
type Config struct {
	// MapWorkers is the number of concurrent map tasks; 0 means GOMAXPROCS.
	MapWorkers int
	// ReduceWorkers is the number of reduce partitions; 0 means MapWorkers.
	ReduceWorkers int
	// DisableCombiner turns off map-side combining (for ablation).
	DisableCombiner bool
}

func (c Config) normalized() Config {
	if c.MapWorkers <= 0 {
		c.MapWorkers = runtime.GOMAXPROCS(0)
	}
	if c.ReduceWorkers <= 0 {
		c.ReduceWorkers = c.MapWorkers
	}
	return c
}

// Result is one reduced group.
type Result struct {
	Key   string
	Value any
}

// Run executes the job over docs and returns one Result per distinct key,
// sorted by key.
func Run(docs []document.D, mapper MapFunc, reducer ReduceFunc, cfg Config) []Result {
	cfg = cfg.normalized()
	if len(docs) == 0 {
		return nil
	}

	// --- map phase, with map-local combining ---
	type partial struct {
		key  string
		vals []any
	}
	nParts := cfg.ReduceWorkers
	// perWorker[w][p] collects partials from map worker w for partition p.
	perWorker := make([][]map[string][]any, cfg.MapWorkers)
	var wg sync.WaitGroup
	chunk := (len(docs) + cfg.MapWorkers - 1) / cfg.MapWorkers
	for w := 0; w < cfg.MapWorkers; w++ {
		lo := w * chunk
		if lo >= len(docs) {
			break
		}
		hi := lo + chunk
		if hi > len(docs) {
			hi = len(docs)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts := make([]map[string][]any, nParts)
			for i := range parts {
				parts[i] = make(map[string][]any)
			}
			emit := func(key string, value any) {
				p := partitionOf(key, nParts)
				parts[p][key] = append(parts[p][key], value)
			}
			for _, d := range docs[lo:hi] {
				mapper(d, emit)
			}
			if !cfg.DisableCombiner {
				for _, m := range parts {
					for k, vs := range m {
						if len(vs) > 1 {
							m[k] = []any{reducer(k, vs)}
						}
					}
				}
			}
			perWorker[w] = parts
		}(w, lo, hi)
	}
	wg.Wait()

	// --- shuffle + reduce phase ---
	partResults := make([][]partial, nParts)
	var rg sync.WaitGroup
	for p := 0; p < nParts; p++ {
		rg.Add(1)
		go func(p int) {
			defer rg.Done()
			groups := make(map[string][]any)
			for _, parts := range perWorker {
				if parts == nil {
					continue
				}
				for k, vs := range parts[p] {
					groups[k] = append(groups[k], vs...)
				}
			}
			out := make([]partial, 0, len(groups))
			for k, vs := range groups {
				var v any
				if len(vs) == 1 {
					v = vs[0]
				} else {
					v = reducer(k, vs)
				}
				out = append(out, partial{key: k, vals: []any{v}})
			}
			partResults[p] = out
		}(p)
	}
	rg.Wait()

	// --- merge, sorted by key ---
	total := 0
	for _, pr := range partResults {
		total += len(pr)
	}
	results := make([]Result, 0, total)
	for _, pr := range partResults {
		for _, p := range pr {
			results = append(results, Result{Key: p.key, Value: p.vals[0]})
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Key < results[j].Key })
	return results
}

// RunCollection runs the job over documents matching filter in a
// collection, returning {"_id", "value"} documents compatible with the
// built-in engine's output.
func RunCollection(c *datastore.Collection, filter document.D, mapper MapFunc, reducer ReduceFunc, cfg Config) ([]document.D, error) {
	docs, err := c.FindAll(filter, nil)
	if err != nil {
		return nil, err
	}
	res := Run(docs, mapper, reducer, cfg)
	out := make([]document.D, len(res))
	for i, r := range res {
		out[i] = document.D{"_id": r.Key, "value": document.Normalize(r.Value)}
	}
	return out, nil
}

// RunCollectionInto runs the job and replaces target's contents with the
// results, like the built-in MapReduceInto.
func RunCollectionInto(c *datastore.Collection, filter document.D, mapper MapFunc, reducer ReduceFunc, cfg Config, target *datastore.Collection) (int, error) {
	res, err := RunCollection(c, filter, mapper, reducer, cfg)
	if err != nil {
		return 0, err
	}
	if _, err := target.Remove(nil); err != nil {
		return 0, err
	}
	for _, d := range res {
		if _, err := target.Insert(d); err != nil {
			return 0, err
		}
	}
	return len(res), nil
}

func partitionOf(key string, n int) int {
	if n == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}
