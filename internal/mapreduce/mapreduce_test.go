package mapreduce

import (
	"fmt"
	"testing"
	"testing/quick"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

func countMap(d document.D, emit func(string, any)) {
	emit(d.GetString("group"), int64(1))
}

func sumReduce(_ string, vs []any) any {
	var sum int64
	for _, v := range vs {
		n, _ := v.(int64)
		sum += n
	}
	return sum
}

func makeDocs(n, groups int) []document.D {
	docs := make([]document.D, n)
	for i := range docs {
		docs[i] = document.D{
			"_id":   fmt.Sprintf("d%06d", i),
			"group": fmt.Sprintf("g%03d", i%groups),
			"val":   float64(i),
		}
	}
	return docs
}

func TestRunCountsPerGroup(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{MapWorkers: 1, ReduceWorkers: 1},
		{MapWorkers: 4, ReduceWorkers: 2},
		{MapWorkers: 3, ReduceWorkers: 7, DisableCombiner: true},
	} {
		res := Run(makeDocs(1000, 10), countMap, sumReduce, cfg)
		if len(res) != 10 {
			t.Fatalf("cfg %+v: groups = %d", cfg, len(res))
		}
		for i, r := range res {
			if r.Value != int64(100) {
				t.Errorf("cfg %+v: %s = %v", cfg, r.Key, r.Value)
			}
			if i > 0 && res[i-1].Key >= r.Key {
				t.Fatalf("cfg %+v: results not sorted", cfg)
			}
		}
	}
}

func TestRunEmptyInput(t *testing.T) {
	if res := Run(nil, countMap, sumReduce, Config{}); res != nil {
		t.Errorf("res = %v", res)
	}
}

func TestRunSingleDocSkipsReduce(t *testing.T) {
	reduces := 0
	res := Run(makeDocs(1, 1), countMap, func(k string, vs []any) any {
		reduces++
		return sumReduce(k, vs)
	}, Config{MapWorkers: 2})
	if len(res) != 1 || res[0].Value != int64(1) {
		t.Fatalf("res = %v", res)
	}
	if reduces != 0 {
		t.Errorf("reduce called %d times on singleton", reduces)
	}
}

func TestParallelMatchesBuiltinEngine(t *testing.T) {
	s := datastore.MustOpenMemory()
	c := s.C("tasks")
	for i := 0; i < 500; i++ {
		c.Insert(document.D{
			"mps_id": fmt.Sprintf("mps-%03d", i%37),
			"energy": -float64(i%11) - 0.5,
		})
	}
	mapper := func(d document.D, emit func(string, any)) {
		e, _ := d.GetFloat("energy")
		emit(d.GetString("mps_id"), e)
	}
	reducer := func(_ string, vs []any) any {
		best, _ := document.AsFloat(vs[0])
		for _, v := range vs[1:] {
			f, _ := document.AsFloat(v)
			if f < best {
				best = f
			}
		}
		return best
	}
	builtin, err := c.MapReduce(nil, mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunCollection(c, nil, mapper, reducer, Config{MapWorkers: 8, ReduceWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(builtin) != len(parallel) {
		t.Fatalf("builtin %d vs parallel %d groups", len(builtin), len(parallel))
	}
	for i := range builtin {
		if builtin[i]["_id"] != parallel[i]["_id"] {
			t.Fatalf("key mismatch at %d: %v vs %v", i, builtin[i]["_id"], parallel[i]["_id"])
		}
		if !document.Equal(builtin[i]["value"], parallel[i]["value"]) {
			t.Errorf("value mismatch for %v: %v vs %v", builtin[i]["_id"], builtin[i]["value"], parallel[i]["value"])
		}
	}
}

func TestRunCollectionInto(t *testing.T) {
	s := datastore.MustOpenMemory()
	c := s.C("src")
	for i := 0; i < 40; i++ {
		c.Insert(document.D{"group": fmt.Sprintf("g%d", i%4)})
	}
	target := s.C("dst")
	target.Insert(document.D{"stale": true})
	n, err := RunCollectionInto(c, nil, countMap, sumReduce, Config{}, target)
	if err != nil || n != 4 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	cnt, _ := target.Count(nil)
	if cnt != 4 {
		t.Errorf("target count = %d", cnt)
	}
}

func TestRunCollectionBadFilter(t *testing.T) {
	s := datastore.MustOpenMemory()
	if _, err := RunCollection(s.C("x"), document.D{"$bad": 1}, countMap, sumReduce, Config{}); err == nil {
		t.Error("want error")
	}
}

func TestCombinerOnOffSameResult(t *testing.T) {
	docs := makeDocs(2000, 13)
	on := Run(docs, countMap, sumReduce, Config{MapWorkers: 4})
	off := Run(docs, countMap, sumReduce, Config{MapWorkers: 4, DisableCombiner: true})
	if len(on) != len(off) {
		t.Fatalf("%d vs %d", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Errorf("mismatch at %d: %+v vs %+v", i, on[i], off[i])
		}
	}
}

func TestQuickParallelCountInvariant(t *testing.T) {
	f := func(raw []uint8, workers uint8) bool {
		if len(raw) == 0 {
			return true
		}
		docs := make([]document.D, len(raw))
		want := make(map[string]int64)
		for i, v := range raw {
			g := fmt.Sprintf("g%d", v%5)
			docs[i] = document.D{"group": g}
			want[g]++
		}
		res := Run(docs, countMap, sumReduce, Config{MapWorkers: int(workers%8) + 1, ReduceWorkers: int(workers%3) + 1})
		if len(res) != len(want) {
			return false
		}
		for _, r := range res {
			if r.Value != want[r.Key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionOfStableAndBounded(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		for _, k := range []string{"", "a", "mps-001", "long-key-value"} {
			p := partitionOf(k, n)
			if p < 0 || p >= n {
				t.Errorf("partitionOf(%q, %d) = %d", k, n, p)
			}
			if p != partitionOf(k, n) {
				t.Error("partition not stable")
			}
		}
	}
}
