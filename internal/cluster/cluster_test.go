package cluster_test

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"matproj/internal/cluster"
	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/faults"
	"matproj/internal/obs"
	"matproj/internal/rcache"
)

// The seeded fault injector must satisfy the router's transport-fault
// contract structurally (the faults package is imported by neither side).
var _ cluster.TransportFaults = (*faults.Injector)(nil)

// testCluster is a live networked cluster on httptest servers.
type testCluster struct {
	router *cluster.Router
	reg    *obs.Registry
	// servers[gi][mi] backs groups[gi][mi].
	servers [][]*httptest.Server
	nodes   [][]*cluster.Node
}

// startCluster boots shards×replicas nodes and a router over them.
// replicas counts extra members beyond the primary.
func startCluster(t *testing.T, shards, replicas int) *testCluster {
	t.Helper()
	return startClusterCache(t, shards, replicas, nil)
}

// startClusterCache is startCluster with a router-side result cache.
func startClusterCache(t *testing.T, shards, replicas int, rc *rcache.Cache) *testCluster {
	t.Helper()
	tc := &testCluster{reg: obs.NewRegistry()}
	var groups [][]string
	for gi := 0; gi < shards; gi++ {
		var urls []string
		var srvs []*httptest.Server
		var nodes []*cluster.Node
		for mi := 0; mi <= replicas; mi++ {
			n := cluster.NewNode(fmt.Sprintf("node-%d-%d", gi, mi), datastore.MustOpenMemory(), tc.reg)
			srv := httptest.NewServer(n)
			t.Cleanup(srv.Close)
			urls = append(urls, srv.URL)
			srvs = append(srvs, srv)
			nodes = append(nodes, n)
		}
		groups = append(groups, urls)
		tc.servers = append(tc.servers, srvs)
		tc.nodes = append(tc.nodes, nodes)
	}
	r, err := cluster.NewRouter(cluster.RouterOptions{Groups: groups, Registry: tc.reg, Cache: rc})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	tc.router = r
	return tc
}

func seedMaterials(t *testing.T, ins interface {
	Insert(doc document.D) (string, error)
}, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		_, err := ins.Insert(document.D{
			"_id":            fmt.Sprintf("mat-%03d", i),
			"pretty_formula": fmt.Sprintf("X%dO", i%7),
			"band_gap":       float64(i%50) / 10,
			"nelements":      int64(i%4 + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestRoutedReadsMatchStandalone checks that a routed 2-shard cluster
// answers exactly like one local store holding the same corpus:
// scatter-gather with global merge-sort/skip/limit, count, distinct,
// point gets, and aggregation.
func TestRoutedReadsMatchStandalone(t *testing.T) {
	tc := startCluster(t, 2, 1)
	local := datastore.MustOpenMemory()

	seedMaterials(t, tc.router.C("materials"), 40)
	seedMaterials(t, localColl{local.C("materials")}, 40)

	routed := tc.router.C("materials")
	filter := document.D{"band_gap": document.D{"$gte": 2.0}}
	opts := &datastore.FindOpts{Sort: []string{"-band_gap", "_id"}, Skip: 3, Limit: 10}

	want, err := local.C("materials").FindAll(filter, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := routed.FindAll(filter, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("routed find = %d docs, standalone = %d", len(got), len(want))
	}
	for i := range want {
		if !document.Equal(got[i], want[i]) {
			t.Errorf("doc %d:\n routed %v\n  local %v", i, got[i], want[i])
		}
	}

	wn, _ := local.C("materials").Count(filter)
	gn, err := routed.Count(filter)
	if err != nil || gn != wn {
		t.Errorf("count = %d (err %v), want %d", gn, err, wn)
	}

	wd, _ := local.C("materials").Distinct("pretty_formula", nil)
	gd, err := routed.Distinct("pretty_formula", nil)
	if err != nil || len(gd) != len(wd) {
		t.Errorf("distinct = %v (err %v), want %v", gd, err, wd)
	}
	for i := range wd {
		if !document.Equal(gd[i], wd[i]) {
			t.Errorf("distinct[%d] = %v, want %v", i, gd[i], wd[i])
		}
	}

	// Point get routes by hashed _id (no scatter).
	scattersBefore := tc.reg.Counter("cluster_scatter_total").Value()
	d, err := tc.router.Get("materials", "mat-007")
	if err != nil {
		t.Fatal(err)
	}
	if id, _ := d["_id"].(string); id != "mat-007" {
		t.Errorf("get _id = %q", id)
	}
	if tc.reg.Counter("cluster_scatter_total").Value() != scattersBefore {
		t.Error("point get scattered")
	}
	if _, err := tc.router.Get("materials", "mat-999"); err != datastore.ErrNotFound {
		t.Errorf("missing get err = %v, want ErrNotFound", err)
	}

	// Cross-shard aggregation merges at the router via the datastore's
	// own pipeline executor.
	pipeline := []document.D{
		{"$match": document.D{"band_gap": document.D{"$gte": 1.0}}},
		{"$group": document.D{"_id": "$nelements", "n": document.D{"$sum": 1}, "max_gap": document.D{"$max": "$band_gap"}}},
		{"$sort": document.D{"_id": 1}},
	}
	wantAgg, err := local.C("materials").Aggregate(pipeline)
	if err != nil {
		t.Fatal(err)
	}
	gotAgg, err := routed.Aggregate(pipeline)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotAgg) != len(wantAgg) {
		t.Fatalf("agg = %v, want %v", gotAgg, wantAgg)
	}
	for i := range wantAgg {
		if !document.Equal(gotAgg[i], wantAgg[i]) {
			t.Errorf("agg[%d] = %v, want %v", i, gotAgg[i], wantAgg[i])
		}
	}

	// A $match pinning _id pushes the whole pipeline to one shard.
	pinned := []document.D{
		{"$match": document.D{"_id": "mat-007"}},
		{"$project": document.D{"band_gap": 1}},
	}
	one, err := routed.Aggregate(pinned)
	if err != nil || len(one) != 1 {
		t.Fatalf("pinned agg = %v (err %v)", one, err)
	}
}

// localColl adapts *datastore.Collection to the seeding interface.
type localColl struct{ c *datastore.Collection }

func (l localColl) Insert(doc document.D) (string, error) { return l.c.Insert(doc) }

// TestRoutedWritesReplicate checks updates and removes reach every group
// member, and that UpdateOne modifies exactly one document cluster-wide.
func TestRoutedWritesReplicate(t *testing.T) {
	tc := startCluster(t, 2, 1)
	routed := tc.router.C("materials")
	seedMaterials(t, routed, 20)

	res, err := routed.UpdateMany(document.D{"nelements": 2}, document.D{"$set": document.D{"flagged": true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched == 0 || res.Matched != res.Modified {
		t.Errorf("update res = %+v", res)
	}
	// Every member of every group must agree (synchronous replication).
	for gi, nodes := range tc.nodes {
		var counts []int
		for _, n := range nodes {
			c, _ := n.Store().C("materials").Count(document.D{"flagged": true})
			counts = append(counts, c)
		}
		for _, c := range counts[1:] {
			if c != counts[0] {
				t.Errorf("group %d replica drift: %v", gi, counts)
			}
		}
	}

	one, err := routed.UpdateOne(document.D{"flagged": true}, document.D{"$set": document.D{"chosen": true}})
	if err != nil {
		t.Fatal(err)
	}
	if one.Modified != 1 {
		t.Errorf("UpdateOne modified = %d", one.Modified)
	}
	n, err := routed.Count(document.D{"chosen": true})
	if err != nil || n != 1 {
		t.Errorf("chosen count = %d (err %v)", n, err)
	}

	removed, err := tc.router.Remove("materials", document.D{"nelements": 2})
	if err != nil || removed == 0 {
		t.Fatalf("remove = %d (err %v)", removed, err)
	}
	left, _ := routed.Count(nil)
	if left != 20-removed {
		t.Errorf("left = %d, removed = %d", left, removed)
	}
}

// TestRoutedMapReduce runs a registered job across shards and checks the
// re-reduced result matches a standalone MapReduce.
func TestRoutedMapReduce(t *testing.T) {
	cluster.RegisterJob("count_by_formula", cluster.Job{
		Map: func(doc document.D, emit func(string, any)) {
			if f, ok := doc["pretty_formula"].(string); ok {
				emit(f, int64(1))
			}
		},
		Reduce: func(key string, values []any) any {
			var sum int64
			for _, v := range values {
				if n, ok := v.(int64); ok {
					sum += n
				}
			}
			return sum
		},
	})

	tc := startCluster(t, 3, 0)
	local := datastore.MustOpenMemory()
	seedMaterials(t, tc.router.C("materials"), 30)
	seedMaterials(t, localColl{local.C("materials")}, 30)

	job, _ := cluster.LookupJob("count_by_formula")
	want, err := local.C("materials").MapReduce(nil, job.Map, job.Reduce)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tc.router.MapReduce("materials", "count_by_formula", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("mr = %v, want %v", got, want)
	}
	for i := range want {
		if !document.Equal(got[i], want[i]) {
			t.Errorf("mr[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	if _, err := tc.router.MapReduce("materials", "no-such-job", nil); err == nil {
		t.Error("unknown job accepted")
	}
}

// scriptedFaults drops the first n calls, then behaves.
type scriptedFaults struct {
	mu   sync.Mutex
	drop int
}

func (s *scriptedFaults) DropCall() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drop > 0 {
		s.drop--
		return true
	}
	return false
}
func (s *scriptedFaults) CallError() bool          { return false }
func (s *scriptedFaults) CallDelay() time.Duration { return 0 }

// TestInjectedDropFailsOver: a dropped transport call marks the member
// down and the read retries on the replica — the caller never sees the
// fault.
func TestInjectedDropFailsOver(t *testing.T) {
	tc := startCluster(t, 1, 1)
	routed := tc.router.C("materials")
	seedMaterials(t, routed, 10)

	tc.router.InjectFaults(&scriptedFaults{drop: 1})
	docs, err := routed.FindAll(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 10 {
		t.Errorf("docs = %d", len(docs))
	}
	if v := tc.reg.Counter("cluster_calls_dropped_total").Value(); v != 1 {
		t.Errorf("dropped calls = %d", v)
	}
	if v := tc.reg.Counter("cluster_failover_total").Value(); v != 1 {
		t.Errorf("failovers = %d", v)
	}
	// The dropped member recovers on the next health sweep.
	tc.router.InjectFaults(nil)
	if healthy := tc.router.CheckNow(); healthy != 2 {
		t.Errorf("healthy after recovery sweep = %d", healthy)
	}
}

// TestSeededInjectorOnTransport drives the router with the real seeded
// injector: with aggressive drop rates most reads must still succeed
// (replica failover + recovery sweeps), and the injector's stats must
// account for every dropped call.
func TestSeededInjectorOnTransport(t *testing.T) {
	tc := startCluster(t, 2, 1)
	routed := tc.router.C("materials")
	seedMaterials(t, routed, 20)

	inj := faults.New(faults.Config{Seed: 42, DropCallRate: 0.2})
	tc.router.InjectFaults(inj)
	failures := 0
	for i := 0; i < 50; i++ {
		if _, err := routed.FindAll(nil, &datastore.FindOpts{Limit: 5}); err != nil {
			failures++
			// Both members of a group can be down at once; a health sweep
			// is the operator's recovery path.
			tc.router.InjectFaults(nil)
			tc.router.CheckNow()
			tc.router.InjectFaults(inj)
		}
	}
	st := inj.Stats()
	if st.DroppedCalls == 0 {
		t.Error("injector never fired")
	}
	if uint64(st.DroppedCalls) != tc.reg.Counter("cluster_calls_dropped_total").Value() {
		t.Errorf("stats drift: injector %d, router counter %d",
			st.DroppedCalls, tc.reg.Counter("cluster_calls_dropped_total").Value())
	}
	if failures > 25 {
		t.Errorf("too many failed reads: %d/50", failures)
	}
}

// TestFailoverEndToEnd is the 2-shard × 2-member kill test: load a
// corpus through the router, kill one shard's primary server outright,
// and check reads still return the full corpus, the replica was
// promoted, and the failover counter incremented.
func TestFailoverEndToEnd(t *testing.T) {
	tc := startCluster(t, 2, 1)
	routed := tc.router.C("materials")
	seedMaterials(t, routed, 60)

	before, err := routed.FindAll(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 60 {
		t.Fatalf("pre-kill corpus = %d", len(before))
	}

	// Kill shard 1's primary (the process, not a soft flag).
	killedURL := tc.router.Primary(1)
	if killedURL != tc.servers[1][0].URL {
		t.Fatalf("primary(1) = %q, want %q", killedURL, tc.servers[1][0].URL)
	}
	tc.servers[1][0].CloseClientConnections()
	tc.servers[1][0].Close()

	failoversBefore := tc.reg.Counter("cluster_failover_total").Value()
	after, err := routed.FindAll(nil, nil)
	if err != nil {
		t.Fatalf("post-kill read: %v", err)
	}
	if len(after) != 60 {
		t.Errorf("post-kill corpus = %d", len(after))
	}
	if got := tc.reg.Counter("cluster_failover_total").Value(); got != failoversBefore+1 {
		t.Errorf("cluster_failover_total = %d, want %d", got, failoversBefore+1)
	}
	if p := tc.router.Primary(1); p != tc.servers[1][1].URL {
		t.Errorf("promoted primary = %q, want replica %q", p, tc.servers[1][1].URL)
	}

	// Writes keep landing on the surviving member.
	if _, err := routed.Insert(document.D{"_id": "post-kill", "band_gap": 1.5}); err != nil {
		t.Fatalf("post-kill insert: %v", err)
	}
	d, err := tc.router.Get("materials", "post-kill")
	if err != nil || d == nil {
		t.Fatalf("post-kill get: %v", err)
	}

	// Health sweep confirms the dead member stays dead and the cluster
	// reports 3 healthy members.
	if healthy := tc.router.CheckNow(); healthy != 3 {
		t.Errorf("healthy members = %d, want 3", healthy)
	}
}

// TestScatterMetrics checks the fan-out accounting the ISSUE calls for:
// scatter counters and per-shard latency histograms.
func TestScatterMetrics(t *testing.T) {
	tc := startCluster(t, 4, 0)
	routed := tc.router.C("materials")
	seedMaterials(t, routed, 8)

	scatters := tc.reg.Counter("cluster_scatter_total").Value()
	fanout := tc.reg.Counter("cluster_scatter_fanout_total").Value()
	if _, err := routed.FindAll(nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := tc.reg.Counter("cluster_scatter_total").Value(); got != scatters+1 {
		t.Errorf("scatter_total = %d, want %d", got, scatters+1)
	}
	if got := tc.reg.Counter("cluster_scatter_fanout_total").Value(); got != fanout+4 {
		t.Errorf("fanout_total = %d, want %d", got, fanout+4)
	}
	// A shard-key-pinned read fans out to exactly one shard.
	fanout = tc.reg.Counter("cluster_scatter_fanout_total").Value()
	if _, err := routed.FindAll(document.D{"_id": "mat-003"}, nil); err != nil {
		t.Fatal(err)
	}
	if got := tc.reg.Counter("cluster_scatter_fanout_total").Value(); got != fanout+1 {
		t.Errorf("pinned fanout = %d, want %d", got, fanout+1)
	}
	snap := tc.reg.Snapshot()
	found := 0
	for name := range snap.Histograms {
		for gi := 0; gi < 4; gi++ {
			if name == fmt.Sprintf("cluster_shard%d_ms", gi) {
				found++
			}
		}
	}
	if found != 4 {
		t.Errorf("per-shard latency histograms = %d, want 4", found)
	}
}
