// Package replog implements the client side of the cluster's
// replication-log protocol: pulling framed journal lines from a peer
// node, shipping them to a follower, and the catch-up driver the router
// uses to re-admit a failed replica.
//
// Entries travel as the exact CRC-framed bytes the source journaled
// ("%08x <json>" per line), so one checksum protects a record from the
// source's disk to the follower's: the follower re-verifies before
// applying and a torn line ends the batch at the last good record
// (truncate-and-resync — a corrupt entry is never applied).
//
// Catch-up is incremental by design: a re-admitted replica receives only
// the entries past its last applied generation. Only when that
// generation has rotated out of the source's log (snapshot rotation or
// ring eviction, HTTP 410 Gone) does the driver fall back to a full
// state copy (snapshot + reset) — and then it tails the log again to
// pick up what landed during the copy.
package replog

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"

	"matproj/internal/cluster/wire"
)

// DefaultBatch bounds entries per pull round.
const DefaultBatch = 512

// DefaultMaxRounds bounds catch-up pull rounds before giving up (the
// health loop retries on its next sweep).
const DefaultMaxRounds = 64

// Client speaks the repl protocol against node base URLs. The zero
// value is usable.
type Client struct {
	// HTTP is the transport; nil means http.DefaultClient. The router
	// deliberately hands this a plain client rather than its
	// fault-instrumented call path: catch-up traffic is not part of the
	// request plane.
	HTTP *http.Client
	// Batch is the per-pull entry cap (<=0 selects DefaultBatch).
	Batch int
	// MaxRounds caps catch-up iterations (<=0 selects DefaultMaxRounds).
	MaxRounds int
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) batch() int {
	if c.Batch > 0 {
		return c.Batch
	}
	return DefaultBatch
}

func (c *Client) maxRounds() int {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	return DefaultMaxRounds
}

// parseHead decodes the X-Repl-Head response header.
func parseHead(resp *http.Response) (uint64, error) {
	h := resp.Header.Get(wire.HeaderReplHead)
	if h == "" {
		return 0, fmt.Errorf("replog: response missing %s header", wire.HeaderReplHead)
	}
	head, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("replog: bad %s header: %w", wire.HeaderReplHead, err)
	}
	return head, nil
}

// splitLines breaks a line stream into non-empty lines.
func splitLines(body []byte) [][]byte {
	var lines [][]byte
	for _, ln := range bytes.Split(body, []byte("\n")) {
		if len(ln) > 0 {
			lines = append(lines, ln)
		}
	}
	return lines
}

// readAll drains and closes a response body.
func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, fmt.Errorf("replog: read body: %w", err)
	}
	return buf.Bytes(), nil
}

// Pull fetches up to limit entries with generation > from. gone reports
// HTTP 410: from has rotated out of src's log.
func (c *Client) Pull(src string, from uint64, limit int) (lines [][]byte, head uint64, gone bool, err error) {
	url := fmt.Sprintf("%s%s%s?from=%d&limit=%d", src, wire.Version, wire.PathReplPull, from, limit)
	resp, err := c.http().Post(url, "text/plain", nil)
	if err != nil {
		return nil, 0, false, fmt.Errorf("replog: pull %s: %w", src, err)
	}
	body, err := readAll(resp)
	if err != nil {
		return nil, 0, false, err
	}
	head, herr := parseHead(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		if herr != nil {
			return nil, 0, false, herr
		}
		return splitLines(body), head, false, nil
	case http.StatusGone:
		return nil, head, true, nil
	default:
		return nil, 0, false, fmt.Errorf("replog: pull %s: status %d: %s", src, resp.StatusCode, bytes.TrimSpace(body))
	}
}

// Apply ships entries to dst's apply endpoint.
func (c *Client) Apply(dst string, lines [][]byte) (wire.ReplApplyResponse, error) {
	var out wire.ReplApplyResponse
	url := dst + wire.Version + wire.PathReplApply
	resp, err := c.http().Post(url, "text/plain", bytes.NewReader(joinLines(lines)))
	if err != nil {
		return out, fmt.Errorf("replog: apply %s: %w", dst, err)
	}
	body, err := readAll(resp)
	if err != nil {
		return out, err
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("replog: apply %s: status %d: %s", dst, resp.StatusCode, bytes.TrimSpace(body))
	}
	if err := wire.DecodeJSONBytes(body, &out); err != nil {
		return out, fmt.Errorf("replog: apply %s: %w", dst, err)
	}
	return out, nil
}

// Snapshot fetches src's full state as framed insert lines.
func (c *Client) Snapshot(src string) (lines [][]byte, head uint64, err error) {
	url := src + wire.Version + wire.PathReplSnapshot
	resp, err := c.http().Post(url, "text/plain", nil)
	if err != nil {
		return nil, 0, fmt.Errorf("replog: snapshot %s: %w", src, err)
	}
	body, err := readAll(resp)
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("replog: snapshot %s: status %d: %s", src, resp.StatusCode, bytes.TrimSpace(body))
	}
	head, err = parseHead(resp)
	if err != nil {
		return nil, 0, err
	}
	return splitLines(body), head, nil
}

// Reset replaces dst's full state with snapshot lines, fast-forwarded
// to generation upto.
func (c *Client) Reset(dst string, lines [][]byte, upto uint64) error {
	url := fmt.Sprintf("%s%s%s?reset=1&upto=%d", dst, wire.Version, wire.PathReplApply, upto)
	resp, err := c.http().Post(url, "text/plain", bytes.NewReader(joinLines(lines)))
	if err != nil {
		return fmt.Errorf("replog: reset %s: %w", dst, err)
	}
	body, err := readAll(resp)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replog: reset %s: status %d: %s", dst, resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

func joinLines(lines [][]byte) []byte {
	var buf bytes.Buffer
	for _, ln := range lines {
		buf.Write(ln)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// Result summarizes one catch-up run.
type Result struct {
	// Shipped counts log entries applied on dst (excludes snapshot
	// lines — a catch-up that stayed incremental has Snapshot false).
	Shipped int
	// Snapshot reports a full state copy was needed (log rotated past
	// dst's generation, or the log had an unservable hole).
	Snapshot bool
	// Head is dst's generation after catch-up.
	Head uint64
}

// CatchUp brings dst to src's state, shipping only entries past from
// when possible. It loops pull→apply until dst reaches src's head,
// falling back to snapshot+reset on 410 Gone or an unservable hole
// (entries lost to dropped appends or a torn source tail). A batch the
// follower reports torn is re-pulled from the follower's generation —
// partial batches make progress, corrupt entries are never applied.
func (c *Client) CatchUp(src, dst string, from uint64) (Result, error) {
	var res Result
	stalls := 0
	for round := 0; round < c.maxRounds(); round++ {
		lines, head, gone, err := c.Pull(src, from, c.batch())
		if err != nil {
			return res, err
		}
		needSnapshot := gone
		if !gone && len(lines) == 0 {
			if from >= head {
				res.Head = from
				return res, nil // caught up
			}
			// Log hole: head advanced past from but no entries are
			// servable (dropped appends, torn source tail).
			needSnapshot = true
		}
		if needSnapshot {
			if res.Snapshot {
				return res, fmt.Errorf("replog: catch-up %s -> %s: still behind after snapshot copy", src, dst)
			}
			snap, snapHead, serr := c.Snapshot(src)
			if serr != nil {
				return res, serr
			}
			if rerr := c.Reset(dst, snap, snapHead); rerr != nil {
				return res, rerr
			}
			res.Snapshot = true
			from = snapHead
			continue // tail the log for writes landed during the copy
		}
		ack, err := c.Apply(dst, lines)
		if err != nil {
			return res, err
		}
		res.Shipped += ack.Applied
		if ack.Applied == 0 && !ack.Torn {
			return res, fmt.Errorf("replog: catch-up %s -> %s: follower made no progress at gen %d", src, dst, from)
		}
		if ack.Torn {
			// Wire corruption: the follower applied the good prefix and
			// refused the rest. Re-pull from its position; give up
			// after repeated zero-progress rounds.
			if ack.Applied == 0 {
				if stalls++; stalls >= 3 {
					return res, fmt.Errorf("replog: catch-up %s -> %s: torn batches made no progress at gen %d", src, dst, from)
				}
			} else {
				stalls = 0
			}
		}
		from = ack.Gen
		res.Head = from
	}
	return res, fmt.Errorf("replog: catch-up %s -> %s: did not converge within %d rounds", src, dst, c.maxRounds())
}
