// Package wire defines the JSON codecs of the cluster's internal node
// transport: the request/response shapes a router exchanges with shard
// nodes over HTTP. The protocol deliberately mirrors the datastore's
// primitive surface (insert/find/count/update/remove/aggregate/distinct/
// mapreduce) rather than the public Materials API, so the Fig. 4 URI
// anatomy stays a router-only concern and nodes remain dumb storage.
//
// Number fidelity matters on this boundary: documents round-trip through
// JSON, so decoding always goes through json.Number + document.Normalize
// (integral values become int64, the rest float64) — the same
// canonicalization the datastore applies on insert.
package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

// Version prefixes every transport path; bump on incompatible changes.
const Version = "/internal/v1"

// Endpoint paths under Version. All ops are POST except Health (GET).
const (
	PathInsert      = "/insert"
	PathInsertMany  = "/insertmany"
	PathBulkWrite   = "/bulkwrite"
	PathFind        = "/find"
	PathCount       = "/count"
	PathGet         = "/get"
	PathUpdate      = "/update"
	PathRemove      = "/remove"
	PathAggregate   = "/aggregate"
	PathDistinct    = "/distinct"
	PathMapReduce   = "/mapreduce"
	PathEnsureIndex = "/ensureindex"
	PathExplain     = "/explain"
	PathHealth      = "/health"

	// Replication-log endpoints. Pull and Snapshot stream framed journal
	// lines (text/plain, one "%08x <json>" line per record) with the
	// serving node's head generation in HeaderReplHead; Apply accepts the
	// same line stream and reports what was applied. A pull whose `from`
	// generation has rotated out of the log answers 410 Gone — the caller
	// falls back to Snapshot + Apply?reset=1.
	PathReplPull     = "/repl/pull"
	PathReplApply    = "/repl/apply"
	PathReplSnapshot = "/repl/snapshot"
)

// HeaderReplHead carries the serving node's current replication head
// generation on pull/snapshot responses.
const HeaderReplHead = "X-Repl-Head"

// FindOpts is the wire form of datastore.FindOpts.
type FindOpts struct {
	Projection map[string]any `json:"projection,omitempty"`
	Sort       []string       `json:"sort,omitempty"`
	Skip       int            `json:"skip,omitempty"`
	Limit      int            `json:"limit,omitempty"`
	// MaxStaleness (generations) permits follower reads; routing-only,
	// but it rides the wire form so it lands in result-cache keys.
	MaxStaleness int `json:"max_staleness,omitempty"`
	// Hint forwards the router's chosen-index hint so every shard runs
	// the same plan (see datastore.FindOpts.Hint).
	Hint string `json:"hint,omitempty"`
}

// FromFindOpts converts store options to their wire form (nil passes
// through).
func FromFindOpts(o *datastore.FindOpts) *FindOpts {
	if o == nil {
		return nil
	}
	return &FindOpts{
		Projection:   o.Projection,
		Sort:         o.Sort,
		Skip:         o.Skip,
		Limit:        o.Limit,
		MaxStaleness: o.MaxStaleness,
		Hint:         o.Hint,
	}
}

// ToFindOpts converts wire options back to store options.
func (o *FindOpts) ToFindOpts() *datastore.FindOpts {
	if o == nil {
		return nil
	}
	return &datastore.FindOpts{
		Projection:   document.NormalizeDoc(document.D(o.Projection)),
		Sort:         o.Sort,
		Skip:         o.Skip,
		Limit:        o.Limit,
		MaxStaleness: o.MaxStaleness,
		Hint:         o.Hint,
	}
}

// InsertRequest writes one document to a node.
type InsertRequest struct {
	Collection string         `json:"collection"`
	Doc        map[string]any `json:"doc"`
}

// InsertResponse reports the stored id and the node's resulting
// replication generation (the router's staleness bookkeeping piggybacks
// on write acks).
type InsertResponse struct {
	ID  string `json:"id"`
	Gen uint64 `json:"gen,omitempty"`
}

// InsertManyRequest writes a batch of documents to a node in one call
// (a per-shard sub-batch of a routed InsertMany). The node applies it
// through the datastore's single-lock batch path, so the whole
// sub-batch rides one group-commit fsync.
type InsertManyRequest struct {
	Collection string           `json:"collection"`
	Docs       []map[string]any `json:"docs"`
}

// InsertManyResponse reports the assigned ids (in input order) and the
// node's resulting replication generation.
type InsertManyResponse struct {
	IDs []string `json:"ids"`
	Gen uint64   `json:"gen,omitempty"`
}

// BulkOp is the wire form of datastore.BulkOp.
type BulkOp struct {
	Op     string         `json:"op"`
	Doc    map[string]any `json:"doc,omitempty"`
	Filter map[string]any `json:"filter,omitempty"`
	Update map[string]any `json:"update,omitempty"`
}

// FromBulkOps converts datastore bulk ops to their wire form.
func FromBulkOps(ops []datastore.BulkOp) []BulkOp {
	out := make([]BulkOp, len(ops))
	for i, op := range ops {
		out[i] = BulkOp{
			Op:     op.Op,
			Doc:    map[string]any(op.Doc),
			Filter: map[string]any(op.Filter),
			Update: map[string]any(op.Update),
		}
	}
	return out
}

// ToBulkOps canonicalizes wire bulk ops back to datastore ops.
func (ops BulkWriteRequest) ToBulkOps() []datastore.BulkOp {
	out := make([]datastore.BulkOp, len(ops.Ops))
	for i, op := range ops.Ops {
		out[i] = datastore.BulkOp{
			Op:     op.Op,
			Doc:    NormalizeMap(op.Doc),
			Filter: NormalizeMap(op.Filter),
			Update: NormalizeMap(op.Update),
		}
	}
	return out
}

// BulkWriteRequest applies a mixed insert/update/delete batch on a node
// (a per-shard sub-batch of a routed BulkWrite).
type BulkWriteRequest struct {
	Collection string   `json:"collection"`
	Ops        []BulkOp `json:"ops"`
}

// BulkOpResult is the wire form of one op's outcome; Error is set on
// per-op failure (the sub-batch itself still succeeds).
type BulkOpResult struct {
	ID       string `json:"id,omitempty"`
	Matched  int    `json:"matched,omitempty"`
	Modified int    `json:"modified,omitempty"`
	Removed  int    `json:"removed,omitempty"`
	Error    string `json:"error,omitempty"`
}

// BulkWriteResponse reports a sub-batch's totals, per-op outcomes (in
// input order) and the node's resulting replication generation.
type BulkWriteResponse struct {
	Inserted int            `json:"inserted"`
	Matched  int            `json:"matched"`
	Modified int            `json:"modified"`
	Removed  int            `json:"removed"`
	PerOp    []BulkOpResult `json:"per_op"`
	Gen      uint64         `json:"gen,omitempty"`
}

// FromBulkResult converts a datastore bulk outcome to its wire form.
func FromBulkResult(r datastore.BulkResult, gen uint64) BulkWriteResponse {
	resp := BulkWriteResponse{
		Inserted: r.Inserted,
		Matched:  r.Matched,
		Modified: r.Modified,
		Removed:  r.Removed,
		PerOp:    make([]BulkOpResult, len(r.PerOp)),
		Gen:      gen,
	}
	for i, op := range r.PerOp {
		resp.PerOp[i] = BulkOpResult{ID: op.ID, Matched: op.Matched, Modified: op.Modified, Removed: op.Removed, Error: op.Error}
	}
	return resp
}

// FindRequest runs a filtered read on a node.
type FindRequest struct {
	Collection string         `json:"collection"`
	Filter     map[string]any `json:"filter,omitempty"`
	Opts       *FindOpts      `json:"opts,omitempty"`
}

// DocsResponse carries a result set.
type DocsResponse struct {
	Docs []map[string]any `json:"docs"`
}

// NormalizedDocs converts the raw rows to canonical documents.
func (r *DocsResponse) NormalizedDocs() []document.D {
	out := make([]document.D, len(r.Docs))
	for i, d := range r.Docs {
		out[i] = document.NormalizeDoc(document.D(d))
	}
	return out
}

// FromDocs converts documents to wire rows.
func FromDocs(docs []document.D) []map[string]any {
	out := make([]map[string]any, len(docs))
	for i, d := range docs {
		out[i] = map[string]any(d)
	}
	return out
}

// CountRequest counts matching documents.
type CountRequest struct {
	Collection string         `json:"collection"`
	Filter     map[string]any `json:"filter,omitempty"`
}

// CountResponse reports a count (also used for Remove, where Gen
// piggybacks the node's post-write replication generation).
type CountResponse struct {
	N   int    `json:"n"`
	Gen uint64 `json:"gen,omitempty"`
}

// GetRequest fetches one document by id.
type GetRequest struct {
	Collection string `json:"collection"`
	ID         string `json:"id"`
}

// DocResponse carries one document (empty Doc = not found, with HTTP 404).
type DocResponse struct {
	Doc map[string]any `json:"doc,omitempty"`
}

// UpdateRequest applies an update on a node.
type UpdateRequest struct {
	Collection string         `json:"collection"`
	Filter     map[string]any `json:"filter,omitempty"`
	Update     map[string]any `json:"update"`
	Many       bool           `json:"many"`
}

// UpdateResponse reports what the update did, plus the node's resulting
// replication generation.
type UpdateResponse struct {
	Matched  int    `json:"matched"`
	Modified int    `json:"modified"`
	Gen      uint64 `json:"gen,omitempty"`
}

// RemoveRequest deletes matching documents.
type RemoveRequest struct {
	Collection string         `json:"collection"`
	Filter     map[string]any `json:"filter,omitempty"`
}

// AggregateRequest runs a (pre-sanitized) pipeline on a node.
type AggregateRequest struct {
	Collection string           `json:"collection"`
	Pipeline   []map[string]any `json:"pipeline"`
}

// DistinctRequest lists distinct values of a path.
type DistinctRequest struct {
	Collection string         `json:"collection"`
	Path       string         `json:"path"`
	Filter     map[string]any `json:"filter,omitempty"`
}

// DistinctResponse carries the distinct values.
type DistinctResponse struct {
	Values []any `json:"values"`
}

// MapReduceRequest runs a registered named MapReduce job on a node's
// shard of a collection. Jobs ship with the binary (Go functions cannot
// cross the wire); the name selects one from the shared registry.
type MapReduceRequest struct {
	Collection string         `json:"collection"`
	Job        string         `json:"job"`
	Filter     map[string]any `json:"filter,omitempty"`
}

// EnsureIndexRequest creates a secondary index on a node. Path creates
// a single-path hash index; Paths (when non-empty) creates an ordered
// compound index over the given dotted paths instead.
type EnsureIndexRequest struct {
	Collection string   `json:"collection"`
	Path       string   `json:"path,omitempty"`
	Paths      []string `json:"paths,omitempty"`
}

// ExplainRequest asks a node for its planner's decision on a query.
type ExplainRequest struct {
	Collection string         `json:"collection"`
	Filter     map[string]any `json:"filter,omitempty"`
	Opts       *FindOpts      `json:"opts,omitempty"`
}

// OKResponse acknowledges a side-effect-only request.
type OKResponse struct {
	OK bool `json:"ok"`
}

// HealthResponse is a node's GET /internal/v1/health report. AppliedGen
// piggybacks the node's replication generation on every heartbeat so the
// router can route bounded-staleness reads without extra round-trips.
type HealthResponse struct {
	OK          bool   `json:"ok"`
	NodeID      string `json:"node_id"`
	Collections int    `json:"collections"`
	Documents   int    `json:"documents"`
	AppliedGen  uint64 `json:"applied_gen,omitempty"`
}

// ReplApplyResponse reports what a follower did with a shipped batch of
// log lines. Torn means a line failed its checksum mid-batch: the good
// prefix was applied and the shipper should re-pull from Gen.
type ReplApplyResponse struct {
	Applied int    `json:"applied"`
	Gen     uint64 `json:"gen"`
	Torn    bool   `json:"torn,omitempty"`
}

// ErrorResponse is the non-2xx body of every transport endpoint.
type ErrorResponse struct {
	Error string `json:"error"`
}

// DecodeJSON decodes JSON preserving number fidelity (json.Number), so a
// subsequent document.Normalize restores int64/float64 exactly as the
// datastore would on a local insert.
func DecodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}

// DecodeJSONBytes is DecodeJSON over a byte slice.
func DecodeJSONBytes(b []byte, v any) error {
	return DecodeJSON(strings.NewReader(string(b)), v)
}

// NormalizeMap canonicalizes a decoded wire map into a document.
func NormalizeMap(m map[string]any) document.D {
	if m == nil {
		return nil
	}
	return document.NormalizeDoc(document.D(m))
}

// NormalizePipeline canonicalizes a decoded wire pipeline.
func NormalizePipeline(stages []map[string]any) []document.D {
	out := make([]document.D, len(stages))
	for i, st := range stages {
		out[i] = document.NormalizeDoc(document.D(st))
	}
	return out
}
