package cluster_test

import (
	"fmt"
	"testing"

	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/obs"
	"matproj/internal/rcache"
	"matproj/internal/shard"
)

// idsOnShard mints n distinct _ids that all hash to shard group gi.
func idsOnShard(t *testing.T, gi, groups, n int) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < n; i++ {
		id := fmt.Sprintf("doc-%04d", i)
		if shard.HashShard(id, groups) == gi {
			out = append(out, id)
		}
	}
	return out
}

// TestClusterCachePerShardInvalidation checks the router's cache
// granularity: a scatter read caches one entry per shard group, and a
// write routed to one group invalidates only that group's entry — the
// untouched group keeps serving from cache.
func TestClusterCachePerShardInvalidation(t *testing.T) {
	rc := rcache.New(256, obs.NewRegistry())
	tc := startClusterCache(t, 2, 0, rc)
	routed := tc.router.C("materials")

	ids0 := idsOnShard(t, 0, 2, 2)
	ids1 := idsOnShard(t, 1, 2, 1)
	for _, id := range []string{ids0[0], ids1[0]} {
		if _, err := routed.Insert(document.D{"_id": id, "v": int64(1)}); err != nil {
			t.Fatal(err)
		}
	}
	gSeeded := routed.Generation()
	if gSeeded == 0 {
		t.Fatal("generation still zero after routed inserts")
	}

	// First scatter count warms both shard entries; the second hits both.
	if n, err := routed.Count(nil); err != nil || n != 2 {
		t.Fatalf("count = %d, %v", n, err)
	}
	base := rc.Stats()
	if n, err := routed.Count(nil); err != nil || n != 2 {
		t.Fatalf("repeat count = %d, %v", n, err)
	}
	st := rc.Stats()
	if hits := st.Hits - base.Hits; hits != 2 {
		t.Fatalf("repeat scatter count got %d hits, want 2 (one per shard)", hits)
	}

	// A write routed to shard 0 bumps only shard 0's generation: the next
	// scatter recomputes shard 0 and still hits shard 1.
	if _, err := routed.Insert(document.D{"_id": ids0[1], "v": int64(2)}); err != nil {
		t.Fatal(err)
	}
	if g := routed.Generation(); g != gSeeded+1 {
		t.Fatalf("generation after one write = %d, want %d", g, gSeeded+1)
	}
	base = rc.Stats()
	if n, err := routed.Count(nil); err != nil || n != 3 {
		t.Fatalf("post-write count = %d, %v", n, err)
	}
	st = rc.Stats()
	if hits := st.Hits - base.Hits; hits != 1 {
		t.Errorf("post-write scatter got %d hits, want 1 (shard 1 untouched)", hits)
	}
	if misses := st.Misses - base.Misses; misses != 1 {
		t.Errorf("post-write scatter got %d misses, want 1 (shard 0 invalidated)", misses)
	}
}

// TestClusterCacheUpdateOneReadsFresh checks that updateOne's internal
// pinning read bypasses the cache (even when the identical query was
// just cached) and that reads after the update see the new value.
func TestClusterCacheUpdateOneReadsFresh(t *testing.T) {
	rc := rcache.New(256, obs.NewRegistry())
	tc := startClusterCache(t, 2, 1, rc)
	routed := tc.router.C("materials")
	seedMaterials(t, routed, 10)

	filter := document.D{"_id": "mat-003"}
	// Warm the cache with the exact Limit-1 read updateOne issues.
	for i := 0; i < 2; i++ {
		if _, err := routed.FindAll(filter, &datastore.FindOpts{Limit: 1}); err != nil {
			t.Fatal(err)
		}
	}

	res, err := routed.UpdateOne(filter, document.D{"$set": document.D{"band_gap": 99.5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 1 || res.Modified != 1 {
		t.Fatalf("updateOne res = %+v, want exactly one modified", res)
	}

	docs, err := routed.FindAll(filter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0]["band_gap"] != 99.5 {
		t.Fatalf("post-update read = %v, want band_gap 99.5", docs)
	}

	// Cached documents must not alias across callers: mutating one
	// response cannot poison the next.
	docs[0]["band_gap"] = float64(-1)
	again, err := routed.FindAll(filter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again[0]["band_gap"] != 99.5 {
		t.Fatalf("caller mutation leaked into router cache: %v", again[0])
	}
}

// TestEnsureIndexBumpsGeneration pins the index-DDL/cache contract:
// EnsureIndex must advance the write generation like EnsureOrderedIndex
// does, or cached plans and ETags keep validating against the old index
// set until an unrelated write lands.
func TestEnsureIndexBumpsGeneration(t *testing.T) {
	rc := rcache.New(256, obs.NewRegistry())
	tc := startClusterCache(t, 2, 0, rc)
	routed := tc.router.C("materials")
	seedMaterials(t, routed, 4)

	g0 := routed.Generation()
	if g0 == 0 {
		t.Fatal("generation still zero after seeding")
	}
	tc.router.EnsureIndex("materials", "band_gap")
	if g := routed.Generation(); g <= g0 {
		t.Fatalf("generation after EnsureIndex = %d, want > %d", g, g0)
	}
	tc.router.EnsureOrderedIndex("materials", "band_gap", "nelements")
	if g := routed.Generation(); g <= g0+1 {
		t.Fatalf("generation after EnsureOrderedIndex = %d, want > %d", g, g0+1)
	}
}
