package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"matproj/internal/cluster/replog"
	"matproj/internal/cluster/wire"
	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/obs"
	"matproj/internal/queryengine"
	"matproj/internal/rcache"
	"matproj/internal/shard"
	"matproj/internal/vclock"
)

// TransportFaults injects failures into the router's node calls. The
// interface is consumer-defined (same convention as datastore's
// JournalFaults) so *faults.Injector satisfies it structurally without
// this package importing faults.
type TransportFaults interface {
	// DropCall reports whether the next call should fail before reaching
	// the node (connection refused / lost packet).
	DropCall() bool
	// CallError reports whether the next call should come back as a
	// remote server error.
	CallError() bool
	// CallDelay returns how long to stall the next call (0 for none).
	CallDelay() time.Duration
}

// RouterOptions configures a Router.
type RouterOptions struct {
	// Groups lists member base URLs per shard group; the first member of
	// each group starts as primary, the rest are replicas.
	Groups [][]string
	// ShardKey is the dotted field hashed for placement; empty means
	// "_id".
	ShardKey string
	// Registry receives router metrics (nil = no-op).
	Registry *obs.Registry
	// Cache, when non-nil, serves repeated per-shard reads without a
	// network round trip. Entries are validated by per-(collection,
	// shard) write generations the router bumps on every routed write,
	// so a write to one shard invalidates only that shard's entries.
	Cache *rcache.Cache
	// Client is the HTTP client for node calls (nil = a client with a
	// 5-second timeout).
	Client *http.Client
	// HealthInterval starts a background health-check loop when > 0.
	// Stop it with Close. Tests usually leave it 0 and drive CheckNow.
	HealthInterval time.Duration
	// Clock paces the health loop and fault-injected call delays
	// (nil = the wall clock). Tests inject a vclock.Fake to drive both
	// deterministically.
	Clock vclock.Clock
	// Tracer receives slow-op observations (partial replication detail
	// lands here). Nil = no-op.
	Tracer *obs.Tracer
	// ReadRetries is how many extra rounds a read attempts after
	// exhausting a group's healthy members to a transient transport
	// error; each round re-probes the group first so dropped-packet
	// blips self-heal without waiting for the health loop. Negative
	// disables retries; 0 selects the default (2).
	ReadRetries int
	// RetryBackoff is the base delay between read retry rounds (doubled
	// per round, jittered; 0 selects 10ms). Sleeps go through Clock.
	RetryBackoff time.Duration
	// Seed drives the retry jitter (0 selects 1). Deterministic given
	// the same seed and schedule.
	Seed int64
	// CatchUpBatch caps log entries per catch-up pull round (0 selects
	// replog.DefaultBatch).
	CatchUpBatch int
}

// defaultReadRetries and defaultRetryBackoff pace the read retry path.
const (
	defaultReadRetries  = 2
	defaultRetryBackoff = 10 * time.Millisecond
)

// member is one node endpoint as the router sees it.
type member struct {
	url     string
	healthy bool
	// applied is the member's last known replication generation, fed by
	// heartbeat piggyback and write acks. Monotonic (CAS-max): acks can
	// race, and a freshly restarted node re-reports via its probe.
	applied atomic.Uint64
}

// noteGen advances the member's known applied generation (never
// backwards — concurrent acks land out of order).
func (m *member) noteGen(gen uint64) {
	for {
		cur := m.applied.Load()
		if gen <= cur || m.applied.CompareAndSwap(cur, gen) {
			return
		}
	}
}

// rgroup is one shard group: an ordered member list whose head is the
// current primary. Promotion rotates a healthy member to the head.
type rgroup struct {
	mu      sync.RWMutex
	members []*member
}

// Router owns the shard map and fronts the node fleet. It satisfies
// queryengine.Backend, so the full dissemination layer (aliases,
// sanitization, rate limits, REST API) runs unchanged on top of a
// networked cluster.
type Router struct {
	shardKey string
	groups   []*rgroup
	client   *http.Client
	reg      *obs.Registry
	tracer   *obs.Tracer
	clock    vclock.Clock
	rc       *rcache.Cache
	gens     shardGens

	// repl drives log catch-up for re-admitted members. It talks to
	// nodes with the plain HTTP client, not r.call: catch-up is control
	// plane, so injected transport faults (and their counters) stay a
	// request-plane concern.
	repl *replog.Client

	retries int
	backoff time.Duration

	// rng jitters retry backoff; seeded for determinism, mutex-guarded
	// (rand.Rand is not concurrency-safe).
	rngMu sync.Mutex
	rng   *rand.Rand

	// rr rotates bounded-staleness reads across eligible followers.
	rr atomic.Uint64

	faultsMu sync.RWMutex
	faults   TransportFaults

	stopOnce sync.Once
	stopCh   chan struct{}
}

// NewRouter builds a router over the given shard groups.
func NewRouter(opts RouterOptions) (*Router, error) {
	if len(opts.Groups) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one shard group")
	}
	r := &Router{
		shardKey: opts.ShardKey,
		client:   opts.Client,
		reg:      opts.Registry,
		tracer:   opts.Tracer,
		clock:    opts.Clock,
		rc:       opts.Cache,
		gens:     shardGens{m: make(map[string][]*atomic.Uint64), n: len(opts.Groups)},
		retries:  opts.ReadRetries,
		backoff:  opts.RetryBackoff,
		stopCh:   make(chan struct{}),
	}
	if r.shardKey == "" {
		r.shardKey = "_id"
	}
	if r.clock == nil {
		r.clock = vclock.Wall
	}
	if r.client == nil {
		r.client = &http.Client{Timeout: 5 * time.Second}
	}
	if r.retries == 0 {
		r.retries = defaultReadRetries
	} else if r.retries < 0 {
		r.retries = 0
	}
	if r.backoff <= 0 {
		r.backoff = defaultRetryBackoff
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	r.rng = rand.New(rand.NewSource(seed))
	r.repl = &replog.Client{HTTP: r.client, Batch: opts.CatchUpBatch}
	for gi, urls := range opts.Groups {
		if len(urls) == 0 {
			return nil, fmt.Errorf("cluster: shard group %d has no members", gi)
		}
		g := &rgroup{}
		for _, u := range urls {
			g.members = append(g.members, &member{url: u, healthy: true})
		}
		r.groups = append(r.groups, g)
	}
	if opts.HealthInterval > 0 {
		go r.healthLoop(opts.HealthInterval)
	}
	return r, nil
}

// Close stops the background health loop (if any).
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stopCh) })
}

// Shards reports the shard group count.
func (r *Router) Shards() int { return len(r.groups) }

// InjectFaults installs a transport fault injector (nil clears it).
func (r *Router) InjectFaults(f TransportFaults) {
	r.faultsMu.Lock()
	r.faults = f
	r.faultsMu.Unlock()
}

func (r *Router) transportFaults() TransportFaults {
	r.faultsMu.RLock()
	defer r.faultsMu.RUnlock()
	return r.faults
}

// call POSTs one wire request to a member and decodes the response into
// out. Transport failures and injected faults return an error; the
// caller decides whether to mark the member unhealthy.
func (r *Router) call(m *member, path string, req, out any) error {
	if f := r.transportFaults(); f != nil {
		if d := f.CallDelay(); d > 0 {
			r.clock.Sleep(d)
		}
		if f.DropCall() {
			r.reg.Counter("cluster_calls_dropped_total").Inc()
			return fmt.Errorf("cluster: injected drop calling %s%s", m.url, path)
		}
		if f.CallError() {
			r.reg.Counter("cluster_calls_errored_total").Inc()
			return fmt.Errorf("cluster: injected remote error from %s%s", m.url, path)
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("cluster: encode %s: %w", path, err)
	}
	resp, err := r.client.Post(m.url+wire.Version+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: call %s%s: %w", m.url, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("cluster: read %s%s: %w", m.url, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e wire.ErrorResponse
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			if resp.StatusCode == http.StatusNotFound {
				return datastore.ErrNotFound
			}
			// The node answered: a remote op error, not a dead member.
			return remoteError{status: resp.StatusCode, msg: e.Error}
		}
		return fmt.Errorf("cluster: %s%s: status %d", m.url, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := wire.DecodeJSONBytes(raw, out); err != nil {
		return fmt.Errorf("cluster: decode %s%s: %w", m.url, path, err)
	}
	return nil
}

// remoteError is an application-level error relayed from a node. The
// member is alive (it answered), so remote errors never trigger
// failover.
type remoteError struct {
	status int
	msg    string
}

func (e remoteError) Error() string { return e.msg }

// isMemberFailure reports whether an error means the member itself is
// unreachable or broken (vs. a well-formed remote op error).
func isMemberFailure(err error) bool {
	if err == nil || err == datastore.ErrNotFound {
		return false
	}
	var re remoteError
	return !asRemote(err, &re)
}

func asRemote(err error, target *remoteError) bool {
	for err != nil {
		if re, ok := err.(remoteError); ok {
			*target = re
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// healthyMembers snapshots a group's healthy members, primary first.
func (g *rgroup) healthyMembers() []*member {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*member, 0, len(g.members))
	for _, m := range g.members {
		if m.healthy {
			out = append(out, m)
		}
	}
	return out
}

// markUnhealthy flags a member down and, when it was the primary,
// promotes the first healthy replica. Returns whether a promotion
// happened.
func (r *Router) markUnhealthy(gi int, m *member) bool {
	g := r.groups[gi]
	g.mu.Lock()
	defer g.mu.Unlock()
	if m.healthy {
		m.healthy = false
		r.reg.Counter("cluster_member_down_total").Inc()
	}
	return r.promoteLocked(g)
}

// promoteLocked rotates the first healthy member to the head of the
// group when the current head is down. Caller holds g.mu.
func (r *Router) promoteLocked(g *rgroup) bool {
	if len(g.members) == 0 || g.members[0].healthy {
		return false
	}
	for i, m := range g.members {
		if m.healthy {
			// Keep relative order of the rest: the old primary drops to
			// the tail so a recovered node rejoins as a replica.
			promoted := g.members[i]
			rest := append([]*member{}, g.members[:i]...)
			rest = append(rest, g.members[i+1:]...)
			g.members = append([]*member{promoted}, rest...)
			r.reg.Counter("cluster_failover_total").Inc()
			return true
		}
	}
	return false
}

// readOnGroup runs one read call against a group, failing over through
// its healthy members and retrying transient transport exhaustion with
// jittered backoff. Primary-only routing (no staleness bound).
func (r *Router) readOnGroup(gi int, path string, req, out any) error {
	return r.readOnGroupStale(gi, path, req, out, 0)
}

// readOnGroupStale is readOnGroup with an optional staleness bound:
// maxStale > 0 permits the read to be served by a healthy follower
// whose known applied generation lags the group's known head by at most
// maxStale generations (rotating across eligible followers, primary as
// fallback). Reads are idempotent, so after exhausting a group's
// healthy members to transport failures the router sleeps a jittered,
// doubling backoff, re-probes the group (transient blips self-heal
// without waiting for the health loop), and tries again — up to
// ReadRetries extra rounds. Remote op errors never retry.
func (r *Router) readOnGroupStale(gi int, path string, req, out any, maxStale int) error {
	var lastErr error
	for round := 0; ; round++ {
		err := r.readRound(gi, path, req, out, maxStale)
		if err == nil || !errors.Is(err, queryengine.ErrUnavailable) {
			return err
		}
		lastErr = err
		if round >= r.retries {
			break
		}
		r.reg.Counter("cluster.read_retries_total").Inc()
		r.clock.Sleep(r.jitter(r.backoff << round))
		r.checkGroupNow(gi)
	}
	return lastErr
}

// jitter returns a duration in [d/2, d] (seeded rng, mutex-guarded).
func (r *Router) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	r.rngMu.Lock()
	defer r.rngMu.Unlock()
	half := int64(d / 2)
	return time.Duration(half + r.rng.Int63n(half+1))
}

// readRound makes one pass over a group's candidate members.
func (r *Router) readRound(gi int, path string, req, out any, maxStale int) error {
	g := r.groups[gi]
	g.mu.RLock()
	attempts := len(g.members) + 1
	g.mu.RUnlock()
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		candidates := r.readCandidates(gi, maxStale)
		if len(candidates) == 0 {
			break
		}
		m := candidates[0]
		if maxStale > 0 && m != r.primaryMember(gi) {
			r.reg.Counter("cluster.follower_reads_total").Inc()
		}
		start := time.Now()
		err := r.call(m, path, req, out)
		r.reg.LatencyHistogram(fmt.Sprintf("cluster_shard%d_ms", gi)).ObserveDuration(time.Since(start))
		if err == nil {
			return nil
		}
		if !isMemberFailure(err) {
			return err
		}
		lastErr = err
		r.markUnhealthy(gi, m)
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: shard %d has no healthy members", gi)
	}
	return fmt.Errorf("%w: shard %d: %v", queryengine.ErrUnavailable, gi, lastErr)
}

// readCandidates orders a group's healthy members for one read attempt.
// With no staleness budget that is simply primary-first (legacy
// behavior, byte-for-byte). With a budget, eligible followers — known
// lag ≤ maxStale generations behind the group's known head — come
// first in rotation, then the primary; followers over budget are never
// candidates. Known generations are fed by write acks and heartbeats,
// so a member's known gen is a lower bound on its actual gen: any
// write acknowledged through this router raised some member's known
// gen, hence known head ≥ every acked generation, and a follower whose
// known lag is ≤ K is really ≤ K generations behind the acked state.
func (r *Router) readCandidates(gi int, maxStale int) []*member {
	members := r.groups[gi].healthyMembers()
	if maxStale <= 0 || len(members) <= 1 {
		return members
	}
	var head uint64
	for _, m := range members {
		if a := m.applied.Load(); a > head {
			head = a
		}
	}
	var eligible []*member
	for _, m := range members[1:] {
		if head-m.applied.Load() <= uint64(maxStale) {
			eligible = append(eligible, m)
		}
	}
	if len(eligible) == 0 {
		return members[:1]
	}
	k := int(r.rr.Add(1)) % len(eligible)
	out := make([]*member, 0, len(eligible)+1)
	out = append(out, eligible[k:]...)
	out = append(out, eligible[:k]...)
	out = append(out, members[0])
	return out
}

// primaryMember snapshots a group's current head.
func (r *Router) primaryMember(gi int) *member {
	g := r.groups[gi]
	g.mu.RLock()
	defer g.mu.RUnlock()
	if len(g.members) == 0 {
		return nil
	}
	return g.members[0]
}

// scatter fans a read out to the target groups concurrently and collects
// per-group results. fn runs once per group index.
func (r *Router) scatter(targets []int, fn func(gi int) error) error {
	r.reg.Counter("cluster_scatter_total").Inc()
	r.reg.Counter("cluster_scatter_fanout_total").Add(uint64(len(targets)))
	if len(targets) == 1 {
		return fn(targets[0])
	}
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, gi := range targets {
		wg.Add(1)
		go func(slot, gi int) {
			defer wg.Done()
			errs[slot] = fn(gi)
		}(i, gi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// targets computes the shard groups a filter must touch.
func (r *Router) targets(filter document.D) ([]int, error) {
	return shard.Targets(filter, r.shardKey, len(r.groups))
}

// ---- Result cache plumbing ------------------------------------------

// shardGens tracks one write generation per (collection, shard group).
// Slots are created lazily and only ever incremented, so each slot — and
// therefore a collection's sum across slots — is strictly increasing
// across routed writes. That monotonicity is what lets the result cache
// and the REST ETags treat "generation changed" as "data may have
// changed".
type shardGens struct {
	mu sync.RWMutex
	m  map[string][]*atomic.Uint64
	n  int // shard group count
}

// slot returns the generation counter for one (collection, group) pair,
// creating the collection's row on first touch.
func (g *shardGens) slot(collection string, gi int) *atomic.Uint64 {
	g.mu.RLock()
	row := g.m[collection]
	g.mu.RUnlock()
	if row == nil {
		g.mu.Lock()
		if row = g.m[collection]; row == nil {
			row = make([]*atomic.Uint64, g.n)
			for i := range row {
				row[i] = new(atomic.Uint64)
			}
			g.m[collection] = row
		}
		g.mu.Unlock()
	}
	return row[gi]
}

// sum reports the collection-wide generation (sum across shard groups).
func (g *shardGens) sum(collection string) uint64 {
	g.mu.RLock()
	row := g.m[collection]
	g.mu.RUnlock()
	var total uint64
	for _, a := range row {
		total += a.Load()
	}
	return total
}

// bumpGen advances one shard's write generation for a collection. Writes
// bump after the routed call returns — even on error, since a replicated
// write can fail after some members already applied it.
func (r *Router) bumpGen(collection string, gi int) {
	r.gens.slot(collection, gi).Add(1)
}

// groupRead serves one per-group read through the result cache, keyed by
// the wire request's JSON (encoding/json sorts map keys, so equivalent
// filters render identically) and validated by that group's write
// generation. The generation is loaded before the remote call, so an
// entry can never claim to be fresher than the data it holds. A nil
// cache, a request that fails to marshal, or cached=false all fall
// through to a direct call — updateOne's internal read uses the latter
// so its read-modify-write cycle never consults the cache.
func (r *Router) groupRead(cached bool, collection string, gi int, op string, req any, compute func() (any, error)) (any, error) {
	if !cached || r.rc == nil {
		return compute()
	}
	arg, err := json.Marshal(req)
	if err != nil {
		return compute()
	}
	gen := r.gens.slot(collection, gi).Load()
	v, _, err := r.rc.GetOrCompute(rcache.KeyFor(collection, fmt.Sprintf("s%d.%s", gi, op), string(arg)), gen, compute)
	//lint:ignore wrapcheck GetOrCompute returns the compute closure's error verbatim — it is already this package's error (wrapping again would double-wrap ErrUnavailable chains)
	return v, err
}

// copyRoutedDocs deep-copies documents leaving the cache so callers can
// retain and mutate them freely; uncached reads return fresh data and
// skip the copy.
func copyRoutedDocs(docs []document.D, cached bool) []document.D {
	if !cached {
		return docs
	}
	out := make([]document.D, len(docs))
	for i, d := range docs {
		out[i] = d.Copy()
	}
	return out
}

// ---- Write path -----------------------------------------------------

// Insert routes a document to its shard group and replicates it to every
// healthy member. The id is minted at the router (when sharding on _id)
// so all members store an identical document. The write succeeds when at
// least one member accepts it; members that fail are marked down.
func (r *Router) Insert(collection string, doc document.D) (string, error) {
	d := document.NormalizeDoc(doc).Copy()
	var gi int
	if r.shardKey == "_id" {
		id, has := d["_id"].(string)
		if !has {
			id = shard.MintID()
			d["_id"] = id
		}
		gi = shard.HashShard(id, len(r.groups))
	} else {
		keyVal, ok := d.Get(r.shardKey)
		if !ok {
			return "", fmt.Errorf("cluster: document missing shard key %q", r.shardKey)
		}
		gi = shard.HashShard(keyVal, len(r.groups))
	}
	id := ""
	err := r.writeOnGroup(gi, func(m *member) error {
		var resp wire.InsertResponse
		if err := r.call(m, wire.PathInsert, wire.InsertRequest{Collection: collection, Doc: map[string]any(d)}, &resp); err != nil {
			return err
		}
		m.noteGen(resp.Gen)
		if id == "" {
			id = resp.ID
		}
		return nil
	})
	r.bumpGen(collection, gi)
	if err != nil {
		return "", err
	}
	if v, ok := d["_id"].(string); ok && id == "" {
		id = v
	}
	return id, nil
}

// writeOnGroup replicates one write call across a group's healthy
// members sequentially (synchronous replication). It succeeds when at
// least one member accepted the write; members that fail are marked
// down, promoting as needed. Remote op errors (e.g. a duplicate id)
// abort the write. Partial replication — some member accepted, some
// lagged — is not silent: it bumps cluster.replica_write_failures and
// names the lagging members in the slow-op trace, since those members
// now need log catch-up before they can serve bounded-staleness reads.
func (r *Router) writeOnGroup(gi int, do func(m *member) error) error {
	members := r.groups[gi].healthyMembers()
	if len(members) == 0 {
		return fmt.Errorf("%w: shard %d has no healthy members", queryengine.ErrUnavailable, gi)
	}
	groupStart := time.Now()
	accepted := 0
	var lagging []string
	var lastErr error
	for _, m := range members {
		start := time.Now()
		err := do(m)
		r.reg.LatencyHistogram(fmt.Sprintf("cluster_shard%d_ms", gi)).ObserveDuration(time.Since(start))
		if err == nil {
			accepted++
			continue
		}
		if !isMemberFailure(err) {
			return err
		}
		lastErr = err
		lagging = append(lagging, m.url)
		r.markUnhealthy(gi, m)
	}
	if accepted == 0 {
		return fmt.Errorf("%w: shard %d write failed on all members: %v", queryengine.ErrUnavailable, gi, lastErr)
	}
	if len(lagging) > 0 {
		r.reg.Counter("cluster.replica_write_failures").Add(uint64(len(lagging)))
		dur := time.Since(groupStart)
		detail := strings.Join(lagging, ",")
		r.tracer.Observe("cluster.replica_write", fmt.Sprintf("shard=%d accepted=%d lagging=%s", gi, accepted, detail), dur)
	}
	return nil
}

// EnsureIndex creates the index on every member of every group (best
// effort on unhealthy members). The write generation bumps so cached
// plans and ETags refresh, same as EnsureOrderedIndex.
func (r *Router) EnsureIndex(collection, path string) {
	for gi := range r.groups {
		r.writeOnGroup(gi, func(m *member) error {
			var resp wire.OKResponse
			return r.call(m, wire.PathEnsureIndex, wire.EnsureIndexRequest{Collection: collection, Path: path}, &resp)
		})
		r.bumpGen(collection, gi)
	}
}

// EnsureOrderedIndex creates an ordered compound index on every member of
// every group. Like EnsureIndex it fans over all groups — index
// definitions are cluster-wide metadata, not shard-keyed data — and the
// per-node journal record makes each member's copy durable. The write
// generation bumps so cached plans (and $explain responses) refresh.
func (r *Router) EnsureOrderedIndex(collection string, paths ...string) {
	for gi := range r.groups {
		r.writeOnGroup(gi, func(m *member) error {
			var resp wire.OKResponse
			if err := r.call(m, wire.PathEnsureIndex, wire.EnsureIndexRequest{Collection: collection, Paths: paths}, &resp); err != nil {
				return err
			}
			return nil
		})
		r.bumpGen(collection, gi)
	}
}

// explain scatters a plan-only request to the targeted groups and merges
// the per-shard planner decisions into one document. Each shard plans
// independently (its index set is identical by construction — index DDL
// fans out to every group — but its statistics differ), so the merged
// doc reports every shard's plan plus a top-level mode: the common mode
// when the shards agree, "mixed" otherwise.
func (r *Router) explain(collection string, filter document.D, opts *datastore.FindOpts) (document.D, error) {
	targets, err := r.targets(filter)
	if err != nil {
		return nil, err
	}
	plans := make([]document.D, len(targets))
	err = r.scatter(targets, func(gi int) error {
		var resp wire.DocResponse
		req := wire.ExplainRequest{Collection: collection, Filter: wireMap(filter), Opts: wire.FromFindOpts(opts)}
		if err := r.readOnGroup(gi, wire.PathExplain, req, &resp); err != nil {
			return err
		}
		plan := wire.NormalizeMap(resp.Doc)
		plan["shard"] = int64(gi)
		for slot, t := range targets {
			if t == gi {
				plans[slot] = plan
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	mode := ""
	shards := make([]any, len(plans))
	for i, p := range plans {
		shards[i] = p
		m, _ := p["mode"].(string)
		switch {
		case i == 0:
			mode = m
		case m != mode:
			mode = "mixed"
		}
	}
	return document.D{
		"collection": collection,
		"sharded":    true,
		"shards":     shards,
		"mode":       mode,
	}, nil
}

// Remove deletes matching documents on every targeted group's members.
func (r *Router) Remove(collection string, filter document.D) (int, error) {
	targets, err := r.targets(filter)
	if err != nil {
		return 0, err
	}
	total := 0
	var mu sync.Mutex
	err = r.scatter(targets, func(gi int) error {
		first := true
		werr := r.writeOnGroup(gi, func(m *member) error {
			var resp wire.CountResponse
			if err := r.call(m, wire.PathRemove, wire.RemoveRequest{Collection: collection, Filter: wireMap(filter)}, &resp); err != nil {
				return err
			}
			m.noteGen(resp.Gen)
			mu.Lock()
			if first {
				total += resp.N
				first = false
			}
			mu.Unlock()
			return nil
		})
		r.bumpGen(collection, gi)
		return werr
	})
	return total, err
}

// updateMany replicates an UpdateMany across the targeted groups.
func (r *Router) updateMany(collection string, filter, update document.D) (datastore.UpdateResult, error) {
	targets, err := r.targets(filter)
	if err != nil {
		return datastore.UpdateResult{}, err
	}
	var res datastore.UpdateResult
	var mu sync.Mutex
	err = r.scatter(targets, func(gi int) error {
		first := true
		werr := r.writeOnGroup(gi, func(m *member) error {
			var resp wire.UpdateResponse
			req := wire.UpdateRequest{Collection: collection, Filter: wireMap(filter), Update: wireMap(update), Many: true}
			if err := r.call(m, wire.PathUpdate, req, &resp); err != nil {
				return err
			}
			m.noteGen(resp.Gen)
			mu.Lock()
			if first {
				res.Matched += resp.Matched
				res.Modified += resp.Modified
				first = false
			}
			mu.Unlock()
			return nil
		})
		r.bumpGen(collection, gi)
		return werr
	})
	return res, err
}

// updateOne updates exactly one matching document cluster-wide: it reads
// one match to learn its _id, then replicates an UpdateMany pinned to
// that _id so every replica modifies the same document.
func (r *Router) updateOne(collection string, filter, update document.D) (datastore.UpdateResult, error) {
	// The pinning read bypasses the result cache: a read-modify-write
	// cycle must see the shard's current state, not a cached snapshot,
	// to preserve the ≥1-ack replication semantics.
	docs, err := r.findAllCached(collection, filter, &datastore.FindOpts{Limit: 1}, false)
	if err != nil {
		return datastore.UpdateResult{}, err
	}
	if len(docs) == 0 {
		return datastore.UpdateResult{}, nil
	}
	id, _ := docs[0]["_id"].(string)
	if id == "" {
		return datastore.UpdateResult{}, fmt.Errorf("cluster: matched document has no _id")
	}
	return r.updateMany(collection, document.D{"_id": id}, update)
}

// ---- Read path ------------------------------------------------------

// findAll scatter-gathers a filtered read and applies the global
// merge-sort/skip/limit, matching internal/shard semantics exactly.
// Per-group responses are served through the result cache.
func (r *Router) findAll(collection string, filter document.D, opts *datastore.FindOpts) ([]document.D, error) {
	return r.findAllCached(collection, filter, opts, true)
}

func (r *Router) findAllCached(collection string, filter document.D, opts *datastore.FindOpts, cached bool) ([]document.D, error) {
	targets, err := r.targets(filter)
	if err != nil {
		return nil, err
	}
	perShard, sortSpec, skip, limit := shard.SplitFindOpts(opts)
	// Single-target pass-through: one shard holds every possible match,
	// so it can apply sort/skip/limit itself and the router returns its
	// answer verbatim — no re-merge, no over-fetch.
	if len(targets) == 1 {
		perShard = opts
	}
	// The staleness budget rides FindOpts (and therefore the wire form,
	// so it lands in the per-shard cache key: a follower-served result
	// can never satisfy a later exact read).
	maxStale := 0
	if opts != nil {
		maxStale = opts.MaxStaleness
	}
	results := make([][]document.D, len(targets))
	err = r.scatter(targets, func(gi int) error {
		req := wire.FindRequest{Collection: collection, Filter: wireMap(filter), Opts: wire.FromFindOpts(perShard)}
		v, err := r.groupRead(cached, collection, gi, "find", req, func() (any, error) {
			var resp wire.DocsResponse
			if err := r.readOnGroupStale(gi, wire.PathFind, req, &resp, maxStale); err != nil {
				return nil, err
			}
			return resp.NormalizedDocs(), nil
		})
		if err != nil {
			return err
		}
		docs := copyRoutedDocs(v.([]document.D), cached)
		for slot, t := range targets {
			if t == gi {
				results[slot] = docs
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(targets) == 1 {
		return results[0], nil
	}
	var all []document.D
	for _, docs := range results {
		all = append(all, docs...)
	}
	return shard.MergeDocs(all, sortSpec, skip, limit)
}

// Get fetches one document by id, routing directly when sharding on _id.
func (r *Router) Get(collection, id string) (document.D, error) {
	if r.shardKey == "_id" {
		var resp wire.DocResponse
		err := r.readOnGroup(shard.HashShard(id, len(r.groups)), wire.PathGet, wire.GetRequest{Collection: collection, ID: id}, &resp)
		if err != nil {
			return nil, err
		}
		return wire.NormalizeMap(resp.Doc), nil
	}
	docs, err := r.findAll(collection, document.D{"_id": id}, &datastore.FindOpts{Limit: 1})
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, datastore.ErrNotFound
	}
	return docs[0], nil
}

// count scatter-gathers a count.
func (r *Router) count(collection string, filter document.D) (int, error) {
	targets, err := r.targets(filter)
	if err != nil {
		return 0, err
	}
	total := 0
	var mu sync.Mutex
	err = r.scatter(targets, func(gi int) error {
		req := wire.CountRequest{Collection: collection, Filter: wireMap(filter)}
		v, err := r.groupRead(true, collection, gi, "count", req, func() (any, error) {
			var resp wire.CountResponse
			if err := r.readOnGroup(gi, wire.PathCount, req, &resp); err != nil {
				return nil, err
			}
			return resp.N, nil
		})
		if err != nil {
			return err
		}
		mu.Lock()
		total += v.(int)
		mu.Unlock()
		return nil
	})
	return total, err
}

// distinct scatter-gathers per-shard distinct lists and unions them.
func (r *Router) distinct(collection, path string, filter document.D) ([]any, error) {
	targets, err := r.targets(filter)
	if err != nil {
		return nil, err
	}
	lists := make([][]any, len(targets))
	err = r.scatter(targets, func(gi int) error {
		req := wire.DistinctRequest{Collection: collection, Path: path, Filter: wireMap(filter)}
		v, err := r.groupRead(true, collection, gi, "distinct", req, func() (any, error) {
			var resp wire.DistinctResponse
			if err := r.readOnGroup(gi, wire.PathDistinct, req, &resp); err != nil {
				return nil, err
			}
			vals := make([]any, len(resp.Values))
			for i, rv := range resp.Values {
				vals[i] = document.Normalize(rv)
			}
			return vals, nil
		})
		if err != nil {
			return err
		}
		cached := v.([]any)
		vals := make([]any, len(cached))
		for i, cv := range cached {
			vals[i] = document.CopyValue(cv)
		}
		for slot, t := range targets {
			if t == gi {
				lists[slot] = vals
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return shard.MergeDistinct(lists), nil
}

// aggregate runs a pipeline over the cluster. When a leading $match pins
// the shard key to one group, the whole pipeline is pushed down to that
// node. Otherwise the leading $match (if any) is pushed down as a find
// filter, the matching documents are gathered, and the remaining stages
// run at the router via the datastore's own pipeline executor — so
// cross-shard $group/$sort results are identical to a standalone store.
func (r *Router) aggregate(collection string, pipeline []document.D) ([]document.D, error) {
	var matchFilter document.D
	rest := pipeline
	if len(pipeline) > 0 {
		if m, ok := pipeline[0]["$match"]; ok {
			if md, ok := toDoc(m); ok {
				matchFilter = md
				rest = pipeline[1:]
			}
		}
	}
	targets, err := r.targets(matchFilter)
	if err != nil {
		return nil, err
	}
	if len(targets) == 1 {
		// Single-shard: full pushdown.
		var resp wire.DocsResponse
		wp := make([]map[string]any, len(pipeline))
		for i, st := range pipeline {
			wp[i] = map[string]any(st)
		}
		req := wire.AggregateRequest{Collection: collection, Pipeline: wp}
		if err := r.readOnGroup(targets[0], wire.PathAggregate, req, &resp); err != nil {
			return nil, err
		}
		return resp.NormalizedDocs(), nil
	}
	docs, err := r.findAll(collection, matchFilter, nil)
	if err != nil {
		return nil, err
	}
	return datastore.RunPipeline(docs, rest)
}

// MapReduce runs a registered job across every shard and re-reduces the
// partial results at the router (jobs must have associative reducers,
// the same contract as datastore.MapReduce).
func (r *Router) MapReduce(collection, jobName string, filter document.D) ([]document.D, error) {
	job, ok := LookupJob(jobName)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown mapreduce job %q", jobName)
	}
	targets, err := r.targets(filter)
	if err != nil {
		return nil, err
	}
	partials := make([][]document.D, len(targets))
	err = r.scatter(targets, func(gi int) error {
		var resp wire.DocsResponse
		req := wire.MapReduceRequest{Collection: collection, Job: jobName, Filter: wireMap(filter)}
		if err := r.readOnGroup(gi, wire.PathMapReduce, req, &resp); err != nil {
			return err
		}
		for slot, t := range targets {
			if t == gi {
				partials[slot] = resp.NormalizedDocs()
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Re-reduce: group partial values by key.
	groups := make(map[string][]any)
	var keys []string
	for _, docs := range partials {
		for _, d := range docs {
			k, _ := d["_id"].(string)
			if _, seen := groups[k]; !seen {
				keys = append(keys, k)
			}
			groups[k] = append(groups[k], d["value"])
		}
	}
	sort.Strings(keys)
	out := make([]document.D, 0, len(keys))
	for _, k := range keys {
		vals := groups[k]
		v := vals[0]
		if len(vals) > 1 {
			v = document.Normalize(job.Reduce(k, vals))
		}
		out = append(out, document.D{"_id": k, "value": v})
	}
	return out, nil
}

// wireMap converts a document to its wire form (nil stays nil).
func wireMap(d document.D) map[string]any {
	if d == nil {
		return nil
	}
	return map[string]any(d)
}

func toDoc(v any) (document.D, bool) {
	switch x := v.(type) {
	case document.D:
		return x, true
	case map[string]any:
		return document.D(x), true
	}
	return nil, false
}

// ---- Health ---------------------------------------------------------

// healthLoop probes members until Close.
func (r *Router) healthLoop(interval time.Duration) {
	t := r.clock.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-t.Chan():
			r.CheckNow()
		}
	}
}

// CheckNow probes every member's health endpoint once, marking members
// up or down and promoting replicas where a primary is down. It returns
// the number of healthy members.
//
// Re-admission goes through the replication log: a down member that
// answers its probe again is first caught up — the router ships it the
// entries past its last applied generation from the group's current
// head (falling back to a snapshot copy only when the log has rotated
// past it) — and only then marked healthy. A member whose catch-up
// fails stays down and is retried on the next sweep. Healthy members
// whose known generation lags the group head are also topped up
// (anti-entropy), closing the window partial write fan-outs open.
func (r *Router) CheckNow() int {
	r.reg.Counter("cluster_health_checks_total").Inc()
	healthy := 0
	for gi := range r.groups {
		healthy += r.checkGroupNow(gi)
	}
	r.reg.Gauge("cluster_members_healthy").Set(int64(healthy))
	return healthy
}

// checkGroupNow probes one group, re-admitting recovered members via
// log catch-up. Returns the group's healthy member count.
func (r *Router) checkGroupNow(gi int) int {
	g := r.groups[gi]
	g.mu.RLock()
	members := append([]*member{}, g.members...)
	g.mu.RUnlock()
	healthy := 0
	for _, m := range members {
		ok, gen := r.probe(m)
		g.mu.RLock()
		wasHealthy := m.healthy
		g.mu.RUnlock()
		if ok && !wasHealthy {
			// Probed gen, not the router's remembered one: a restarted
			// node may have come back at a lower generation than its
			// last ack.
			if !r.catchUp(gi, m, gen) {
				ok = false
			}
		} else if ok && gen > 0 {
			m.noteGen(gen)
		}
		g.mu.Lock()
		if ok {
			if !m.healthy {
				m.healthy = true
				r.reg.Counter("cluster_member_recovered_total").Inc()
			}
			healthy++
		} else if m.healthy {
			m.healthy = false
			r.reg.Counter("cluster_member_down_total").Inc()
		}
		r.promoteLocked(g)
		g.mu.Unlock()
	}
	r.antiEntropy(gi)
	return healthy
}

// catchUp ships a recovering member the log entries past its applied
// generation from the group's current healthy head. True means the
// member is safe to re-admit (including the no-source case: a group
// with no other healthy member has nothing newer to ship).
func (r *Router) catchUp(gi int, m *member, from uint64) bool {
	src := r.catchUpSource(gi, m)
	if src == nil {
		return true
	}
	res, err := r.repl.CatchUp(src.url, m.url, from)
	if err != nil {
		r.reg.Counter("cluster.repl_catchup_failures").Inc()
		return false
	}
	r.reg.Counter("cluster.repl_readmissions").Inc()
	r.reg.Counter("cluster.repl_catchup_entries").Add(uint64(res.Shipped))
	if res.Snapshot {
		r.reg.Counter("cluster.repl_snapshot_copies").Inc()
	}
	m.noteGen(res.Head)
	return true
}

// catchUpSource picks the member to ship log entries from: the group's
// current head, or the first healthy member that is not the target.
func (r *Router) catchUpSource(gi int, dst *member) *member {
	g := r.groups[gi]
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, m := range g.members {
		if m.healthy && m != dst {
			return m
		}
	}
	return nil
}

// antiEntropy tops up healthy members whose known applied generation
// lags the group's known head — the residue of partial write fan-outs
// (the member was briefly unreachable, the write succeeded elsewhere).
func (r *Router) antiEntropy(gi int) {
	members := r.groups[gi].healthyMembers()
	if len(members) <= 1 {
		return
	}
	var head uint64
	var src *member
	for _, m := range members {
		if a := m.applied.Load(); a > head || src == nil {
			head = a
			src = m
		}
	}
	for _, m := range members {
		if m == src {
			continue
		}
		if a := m.applied.Load(); a < head {
			res, err := r.repl.CatchUp(src.url, m.url, a)
			if err != nil {
				r.reg.Counter("cluster.repl_catchup_failures").Inc()
				continue
			}
			r.reg.Counter("cluster.repl_catchup_entries").Add(uint64(res.Shipped))
			m.noteGen(res.Head)
		}
	}
}

// probe checks one member's health endpoint, reporting its applied
// replication generation when healthy.
func (r *Router) probe(m *member) (bool, uint64) {
	if f := r.transportFaults(); f != nil && f.DropCall() {
		r.reg.Counter("cluster_calls_dropped_total").Inc()
		return false, 0
	}
	resp, err := r.client.Get(m.url + wire.Version + wire.PathHealth)
	if err != nil {
		return false, 0
	}
	defer resp.Body.Close()
	var h wire.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return false, 0
	}
	return h.OK, h.AppliedGen
}

// Healthy reports the per-group healthy member counts (tests and status
// pages).
func (r *Router) Healthy() []int {
	out := make([]int, len(r.groups))
	for gi, g := range r.groups {
		out[gi] = len(g.healthyMembers())
	}
	return out
}

// Primary reports the current primary URL of a shard group.
func (r *Router) Primary(gi int) string {
	if gi < 0 || gi >= len(r.groups) {
		return ""
	}
	g := r.groups[gi]
	g.mu.RLock()
	defer g.mu.RUnlock()
	if len(g.members) == 0 {
		return ""
	}
	return g.members[0].url
}

// ---- queryengine.Backend --------------------------------------------

// C returns the routed view of one collection. Router satisfies
// queryengine.Backend so an Engine (and the REST API above it) can front
// the cluster directly.
func (r *Router) C(name string) queryengine.Collection {
	return routedCollection{r: r, name: name}
}

// routedCollection adapts the router's per-collection ops to the
// queryengine.Collection contract.
type routedCollection struct {
	r    *Router
	name string
}

func (c routedCollection) FindAll(filter document.D, opts *datastore.FindOpts) ([]document.D, error) {
	return c.r.findAll(c.name, filter, opts)
}

func (c routedCollection) Count(filter document.D) (int, error) {
	return c.r.count(c.name, filter)
}

func (c routedCollection) Distinct(path string, filter document.D) ([]any, error) {
	return c.r.distinct(c.name, path, filter)
}

func (c routedCollection) UpdateOne(filter, update document.D) (datastore.UpdateResult, error) {
	return c.r.updateOne(c.name, filter, update)
}

func (c routedCollection) UpdateMany(filter, update document.D) (datastore.UpdateResult, error) {
	return c.r.updateMany(c.name, filter, update)
}

func (c routedCollection) Insert(doc document.D) (string, error) {
	return c.r.Insert(c.name, doc)
}

func (c routedCollection) Aggregate(pipeline []document.D) ([]document.D, error) {
	return c.r.aggregate(c.name, pipeline)
}

func (c routedCollection) Explain(filter document.D, opts *datastore.FindOpts) (document.D, error) {
	return c.r.explain(c.name, filter, opts)
}

// Generation reports the sum of this collection's per-shard write
// generations. Each slot only ever increases, so the sum strictly
// increases across routed writes — the monotonicity the engine-level
// result cache and REST ETags rely on.
func (c routedCollection) Generation() uint64 {
	return c.r.gens.sum(c.name)
}
