// Routed batched writes: InsertMany and BulkWrite split a client batch
// into per-shard sub-batches, ship each sub-batch over the wire in one
// call (the node applies it under a single collection lock, so it rides
// one group-commit fsync), and merge the per-document results back into
// the caller's input order.
package cluster

import (
	"fmt"
	"sync"

	"matproj/internal/cluster/wire"
	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/shard"
)

// InsertMany routes a batch of documents to their shard groups as one
// sub-batch per group, replicated like Insert (≥1 member ack per group).
// Returned ids are in input order. On a group failure the successfully
// routed positions keep their ids and the first group error is returned;
// like datastore.InsertMany, each sub-batch itself is all-or-nothing on
// a node.
func (r *Router) InsertMany(collection string, docs []document.D) ([]string, error) {
	if len(docs) == 0 {
		return nil, nil
	}
	ids := make([]string, len(docs))
	groupDocs := make([][]map[string]any, len(r.groups))
	groupIdx := make([][]int, len(r.groups))
	for i, doc := range docs {
		d := document.NormalizeDoc(doc).Copy()
		var gi int
		if r.shardKey == "_id" {
			id, has := d["_id"].(string)
			if !has {
				// Mint at the router so every replica stores an identical
				// document (same contract as Insert).
				id = shard.MintID()
				d["_id"] = id
			}
			gi = shard.HashShard(id, len(r.groups))
		} else {
			keyVal, ok := d.Get(r.shardKey)
			if !ok {
				return nil, fmt.Errorf("cluster: document %d missing shard key %q", i, r.shardKey)
			}
			gi = shard.HashShard(keyVal, len(r.groups))
		}
		groupDocs[gi] = append(groupDocs[gi], map[string]any(d))
		groupIdx[gi] = append(groupIdx[gi], i)
	}
	targets := make([]int, 0, len(r.groups))
	for gi := range r.groups {
		if len(groupDocs[gi]) > 0 {
			targets = append(targets, gi)
		}
	}
	var mu sync.Mutex
	err := r.scatter(targets, func(gi int) error {
		first := true
		werr := r.writeOnGroup(gi, func(m *member) error {
			var resp wire.InsertManyResponse
			req := wire.InsertManyRequest{Collection: collection, Docs: groupDocs[gi]}
			if err := r.call(m, wire.PathInsertMany, req, &resp); err != nil {
				return err
			}
			m.noteGen(resp.Gen)
			mu.Lock()
			if first {
				for si, oi := range groupIdx[gi] {
					if si < len(resp.IDs) {
						ids[oi] = resp.IDs[si]
					}
				}
				first = false
			}
			mu.Unlock()
			return nil
		})
		r.bumpGen(collection, gi)
		return werr
	})
	if err != nil {
		return ids, err
	}
	return ids, nil
}

// bulkRoute is the routing decision for one BulkWrite op: the wire op to
// send and the groups it must run on (inserts pin to one group; updates
// and deletes follow their filter's shard targets).
type bulkRoute struct {
	op      wire.BulkOp
	targets []int
	err     string // routing-time failure; the op never ships
	skip    bool   // resolved to a no-op (e.g. updateOne with no match)
}

// BulkWrite routes a mixed insert/update/delete batch: ops are grouped
// into one sub-batch per shard group and applied continue-on-error, with
// per-op outcomes merged back into input order. An op whose filter spans
// several groups runs on each and its counts merge additively.
// updateOne ops that would span groups are first pinned to one matching
// document's _id, mirroring the routed UpdateOne. The error return is
// reserved for total failure (every targeted group unavailable); per-op
// failures — including a whole group being down — land in PerOp.
func (r *Router) BulkWrite(collection string, ops []datastore.BulkOp) (datastore.BulkResult, error) {
	res := datastore.BulkResult{PerOp: make([]datastore.BulkOpResult, len(ops))}
	if len(ops) == 0 {
		return res, nil
	}
	routes := make([]bulkRoute, len(ops))
	for i, op := range ops {
		routes[i] = r.routeBulkOp(collection, op)
	}
	// Per-group sub-batches, preserving input order within each group.
	groupOps := make([][]wire.BulkOp, len(r.groups))
	groupIdx := make([][]int, len(r.groups))
	for i := range routes {
		rt := &routes[i]
		if rt.err != "" {
			res.PerOp[i].Error = rt.err
			continue
		}
		if rt.skip {
			continue
		}
		for _, gi := range rt.targets {
			groupOps[gi] = append(groupOps[gi], rt.op)
			groupIdx[gi] = append(groupIdx[gi], i)
		}
	}
	targets := make([]int, 0, len(r.groups))
	for gi := range r.groups {
		if len(groupOps[gi]) > 0 {
			targets = append(targets, gi)
		}
	}
	if len(targets) == 0 {
		return res, nil
	}
	var mu sync.Mutex
	failed := 0
	_ = r.scatter(targets, func(gi int) error {
		first := true
		werr := r.writeOnGroup(gi, func(m *member) error {
			var resp wire.BulkWriteResponse
			req := wire.BulkWriteRequest{Collection: collection, Ops: groupOps[gi]}
			if err := r.call(m, wire.PathBulkWrite, req, &resp); err != nil {
				return err
			}
			m.noteGen(resp.Gen)
			mu.Lock()
			if first {
				res.Inserted += resp.Inserted
				res.Matched += resp.Matched
				res.Modified += resp.Modified
				res.Removed += resp.Removed
				for si, oi := range groupIdx[gi] {
					if si >= len(resp.PerOp) {
						break
					}
					mergeBulkOpResult(&res.PerOp[oi], resp.PerOp[si])
				}
				first = false
			}
			mu.Unlock()
			return nil
		})
		r.bumpGen(collection, gi)
		if werr != nil {
			mu.Lock()
			failed++
			for _, oi := range groupIdx[gi] {
				if res.PerOp[oi].Error == "" {
					res.PerOp[oi].Error = werr.Error()
				}
			}
			mu.Unlock()
		}
		return nil
	})
	if failed == len(targets) {
		return res, fmt.Errorf("cluster: bulkWrite %s: every targeted shard group failed", collection)
	}
	return res, nil
}

// mergeBulkOpResult folds one group's outcome for an op into the
// cross-group result (counts add; a multi-group op touches disjoint
// documents on each group).
func mergeBulkOpResult(dst *datastore.BulkOpResult, src wire.BulkOpResult) {
	if dst.ID == "" {
		dst.ID = src.ID
	}
	dst.Matched += src.Matched
	dst.Modified += src.Modified
	dst.Removed += src.Removed
	if dst.Error == "" {
		dst.Error = src.Error
	}
}

// routeBulkOp decides where one op runs.
func (r *Router) routeBulkOp(collection string, op datastore.BulkOp) bulkRoute {
	rt := bulkRoute{op: wire.BulkOp{
		Op:     op.Op,
		Doc:    map[string]any(op.Doc),
		Filter: map[string]any(op.Filter),
		Update: map[string]any(op.Update),
	}}
	switch op.Op {
	case datastore.BulkInsert:
		d := document.NormalizeDoc(op.Doc).Copy()
		var gi int
		if r.shardKey == "_id" {
			id, has := d["_id"].(string)
			if !has {
				id = shard.MintID()
				d["_id"] = id
			}
			gi = shard.HashShard(id, len(r.groups))
		} else {
			keyVal, ok := d.Get(r.shardKey)
			if !ok {
				rt.err = fmt.Sprintf("cluster: document missing shard key %q", r.shardKey)
				return rt
			}
			gi = shard.HashShard(keyVal, len(r.groups))
		}
		rt.op.Doc = map[string]any(d)
		rt.targets = []int{gi}
	case datastore.BulkUpdateOne:
		targets, err := r.targets(op.Filter)
		if err != nil {
			rt.err = err.Error()
			return rt
		}
		if len(targets) > 1 {
			// Pin to one matching document so a multi-group updateOne
			// cannot update one document per group (same read-then-pin
			// cycle as the routed UpdateOne; the read skips the cache).
			docs, err := r.findAllCached(collection, op.Filter, &datastore.FindOpts{Limit: 1}, false)
			if err != nil {
				rt.err = err.Error()
				return rt
			}
			if len(docs) == 0 {
				rt.skip = true
				return rt
			}
			id, _ := docs[0]["_id"].(string)
			if id == "" {
				rt.err = "cluster: matched document has no _id"
				return rt
			}
			pinned := document.D{"_id": id}
			rt.op.Op = datastore.BulkUpdateMany
			rt.op.Filter = map[string]any(pinned)
			targets, err = r.targets(pinned)
			if err != nil {
				rt.err = err.Error()
				return rt
			}
		}
		rt.targets = targets
	case datastore.BulkUpdateMany, datastore.BulkDelete:
		targets, err := r.targets(op.Filter)
		if err != nil {
			rt.err = err.Error()
			return rt
		}
		rt.targets = targets
	default:
		rt.err = fmt.Sprintf("datastore: unknown bulk op %q", op.Op)
	}
	return rt
}

func (c routedCollection) InsertMany(docs []document.D) ([]string, error) {
	return c.r.InsertMany(c.name, docs)
}

func (c routedCollection) BulkWrite(ops []datastore.BulkOp) (datastore.BulkResult, error) {
	return c.r.BulkWrite(c.name, ops)
}
