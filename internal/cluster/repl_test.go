package cluster_test

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"matproj/internal/cluster"
	"matproj/internal/cluster/replog"
	"matproj/internal/cluster/wire"
	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/faults"
	"matproj/internal/obs"
	"matproj/internal/webload"
)

// liveServer serves a node on a real TCP listener so it can be killed
// and restarted on the same address — which httptest servers cannot do.
type liveServer struct {
	t    *testing.T
	addr string
	node *cluster.Node
	mu   sync.Mutex
	srv  *http.Server
}

func serveNode(t *testing.T, n *cluster.Node) *liveServer {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &liveServer{t: t, addr: lis.Addr().String(), node: n, srv: &http.Server{Handler: n}}
	go s.srv.Serve(lis)
	t.Cleanup(s.stop)
	return s
}

func (s *liveServer) url() string { return "http://" + s.addr }

func (s *liveServer) stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.srv.Close()
}

// restart rebinds the node on its original address.
func (s *liveServer) restart() {
	s.t.Helper()
	lis, err := net.Listen("tcp", s.addr)
	if err != nil {
		s.t.Fatal(err)
	}
	s.mu.Lock()
	s.srv = &http.Server{Handler: s.node}
	go s.srv.Serve(lis)
	s.mu.Unlock()
}

// TestReplicaReadmissionViaLogCatchUp is the tentpole scenario at test
// scale: kill a replica, write through the gap, restart it, and check
// the health sweep re-admits it by shipping only the missed log entries
// — counted by cluster.repl_catchup_entries — not a full copy.
func TestReplicaReadmissionViaLogCatchUp(t *testing.T) {
	reg := obs.NewRegistry()
	n0 := cluster.NewNode("n0", datastore.MustOpenMemory(), reg)
	n1 := cluster.NewNode("n1", datastore.MustOpenMemory(), reg)
	s0, s1 := serveNode(t, n0), serveNode(t, n1)
	r, err := cluster.NewRouter(cluster.RouterOptions{
		Groups: [][]string{{s0.url(), s1.url()}}, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)

	routed := r.C("materials")
	seedMaterials(t, routed, 20)
	if g0, g1 := n0.Store().ReplGen(), n1.Store().ReplGen(); g0 != 20 || g1 != 20 {
		t.Fatalf("pre-kill gens: %d/%d, want 20/20", g0, g1)
	}

	s1.stop()
	// Writes keep flowing; the first one trips over the dead replica,
	// marks it down, and is not silent about the partial fan-out.
	for i := 0; i < 10; i++ {
		if _, err := routed.Insert(document.D{"_id": fmt.Sprintf("gap-%d", i), "n": i}); err != nil {
			t.Fatalf("insert during outage: %v", err)
		}
	}
	if v := reg.Counter("cluster.replica_write_failures").Value(); v != 1 {
		t.Errorf("replica_write_failures = %d, want 1 (first insert hit the dead member)", v)
	}
	if g := n1.Store().ReplGen(); g != 20 {
		t.Fatalf("dead replica advanced to gen %d", g)
	}

	s1.restart()
	if healthy := r.CheckNow(); healthy != 2 {
		t.Fatalf("healthy after re-admission sweep = %d, want 2", healthy)
	}
	if v := reg.Counter("cluster.repl_readmissions").Value(); v != 1 {
		t.Errorf("repl_readmissions = %d, want 1", v)
	}
	if v := reg.Counter("cluster.repl_catchup_entries").Value(); v != 10 {
		t.Errorf("repl_catchup_entries = %d, want exactly the 10 missed entries", v)
	}
	if v := reg.Counter("cluster.repl_snapshot_copies").Value(); v != 0 {
		t.Errorf("repl_snapshot_copies = %d, want 0 (log catch-up, not a full copy)", v)
	}
	if g := n1.Store().ReplGen(); g != 30 {
		t.Errorf("re-admitted replica gen = %d, want 30", g)
	}
	n, err := n1.Store().C("materials").Count(nil)
	if err != nil || n != 30 {
		t.Errorf("re-admitted replica count = %d (err %v), want 30", n, err)
	}
}

// TestReadmissionSnapshotFallbackAfterRotation: when the source journal
// has rotated (snapshot + truncate) past the returning replica's
// generation, catch-up must fall back to a full state copy and still
// converge.
func TestReadmissionSnapshotFallbackAfterRotation(t *testing.T) {
	reg := obs.NewRegistry()
	st0, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st1, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	n0 := cluster.NewNode("n0", st0, reg)
	n1 := cluster.NewNode("n1", st1, reg)
	s0, s1 := serveNode(t, n0), serveNode(t, n1)
	r, err := cluster.NewRouter(cluster.RouterOptions{
		Groups: [][]string{{s0.url(), s1.url()}}, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)

	routed := r.C("materials")
	seedMaterials(t, routed, 8)
	s1.stop()
	for i := 0; i < 12; i++ {
		if _, err := routed.Insert(document.D{"_id": fmt.Sprintf("rot-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Rotate the source journal: entries 1..20 are gone, only the
	// snapshot remains. The replica's gen 8 is now unservable.
	if err := st0.Snapshot(); err != nil {
		t.Fatal(err)
	}

	s1.restart()
	if healthy := r.CheckNow(); healthy != 2 {
		t.Fatalf("healthy = %d, want 2", healthy)
	}
	if v := reg.Counter("cluster.repl_snapshot_copies").Value(); v != 1 {
		t.Errorf("repl_snapshot_copies = %d, want 1", v)
	}
	if g := st1.ReplGen(); g != 20 {
		t.Errorf("replica gen after snapshot copy = %d, want 20", g)
	}
	if n, _ := st1.C("materials").Count(nil); n != 20 {
		t.Errorf("replica count = %d, want 20", n)
	}
}

// TestCatchUpTornPullStream tears bytes off the pull stream mid-flight
// (satellite: extend the faults injector to the replication stream) and
// checks the follower applies only checksum-clean prefixes, the client
// re-pulls from the follower's generation, and catch-up still
// converges with the follower byte-identical to the source — a corrupt
// entry is never applied.
func TestCatchUpTornPullStream(t *testing.T) {
	reg := obs.NewRegistry()
	src := cluster.NewNode("src", datastore.MustOpenMemory(), reg)
	dst := cluster.NewNode("dst", datastore.MustOpenMemory(), reg)
	srcSrv := httptest.NewServer(src)
	dstSrv := httptest.NewServer(dst)
	t.Cleanup(srcSrv.Close)
	t.Cleanup(dstSrv.Close)

	for i := 0; i < 40; i++ {
		if _, err := src.Store().C("materials").Insert(document.D{
			"_id": fmt.Sprintf("mat-%02d", i), "band_gap": float64(i) / 10,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// A proxy in front of the source tears the first two pull responses
	// the way a connection reset would: the final framed line arrives
	// clipped.
	inj := faults.New(faults.Config{Seed: 7})
	tears := 0
	var tearMu sync.Mutex
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		resp, err := http.Post(srcSrv.URL+req.URL.RequestURI(), "text/plain", req.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		if strings.HasSuffix(req.URL.Path, wire.PathReplPull) {
			tearMu.Lock()
			if tears < 2 {
				body, _ = inj.TearBytes(body, 8)
				tears++
			}
			tearMu.Unlock()
		}
		if h := resp.Header.Get(wire.HeaderReplHead); h != "" {
			w.Header().Set(wire.HeaderReplHead, h)
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
	}))
	t.Cleanup(proxy.Close)

	c := &replog.Client{}
	res, err := c.CatchUp(proxy.URL, dstSrv.URL, 0)
	if err != nil {
		t.Fatalf("catch-up through tearing proxy: %v", err)
	}
	if res.Snapshot {
		t.Error("catch-up fell back to snapshot; torn batches should re-pull incrementally")
	}
	if res.Shipped != 40 {
		t.Errorf("shipped %d entries, want 40", res.Shipped)
	}
	if st := inj.Stats(); st.TornBatches != 2 {
		t.Errorf("injector tore %d batches, want 2", st.TornBatches)
	}
	if v := reg.Counter("node_repl_torn_batches_total").Value(); v == 0 {
		t.Error("follower never reported a torn batch")
	}

	// Byte-level convergence: every doc identical, no corrupt entry.
	if g := dst.Store().ReplGen(); g != src.Store().ReplGen() {
		t.Fatalf("gen mismatch: dst %d, src %d", g, src.Store().ReplGen())
	}
	want, err := src.Store().C("materials").FindAll(nil, &datastore.FindOpts{Sort: []string{"_id"}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.Store().C("materials").FindAll(nil, &datastore.FindOpts{Sort: []string{"_id"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("dst has %d docs, src %d", len(got), len(want))
	}
	for i := range want {
		if !document.Equal(got[i], want[i]) {
			t.Errorf("doc %d diverged:\n dst %v\n src %v", i, got[i], want[i])
		}
	}
}

// TestFollowerReadsRespectStalenessBound hammers a 2-member group with
// a concurrent probe writer and bounded-staleness readers while the
// follower is killed and re-admitted mid-run. No read may ever observe
// data older than its staleness bound (run under -race in CI).
func TestFollowerReadsRespectStalenessBound(t *testing.T) {
	const maxStale = 2
	reg := obs.NewRegistry()
	n0 := cluster.NewNode("n0", datastore.MustOpenMemory(), reg)
	n1 := cluster.NewNode("n1", datastore.MustOpenMemory(), reg)
	s0, s1 := serveNode(t, n0), serveNode(t, n1)
	r, err := cluster.NewRouter(cluster.RouterOptions{
		Groups: [][]string{{s0.url(), s1.url()}}, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	routed := r.C("materials")

	var probe webload.Probe
	writerDone := make(chan struct{})
	const probes = 120
	go func() {
		defer close(writerDone)
		for i := int64(1); i <= probes; i++ {
			if _, err := routed.Insert(document.D(webload.ProbeDoc(i))); err != nil {
				t.Errorf("probe insert %d: %v", i, err)
				return
			}
			probe.Ack(i)
		}
	}()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	violations := make(chan string, 8)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				acked := probe.Acked()
				docs, err := routed.FindAll(webload.ProbeFilter(), webload.ProbeOpts(maxStale))
				if err != nil {
					continue // outage window; availability is not under test here
				}
				observed := webload.ObservedSeq(docs)
				if webload.ProbeViolation(observed, acked, 1, maxStale) {
					select {
					case violations <- fmt.Sprintf("observed %d with %d acked (bound %d)", observed, acked, maxStale):
					default:
					}
				}
			}
		}()
	}

	waitAcked := func(n int64) {
		for probe.Acked() < n {
			time.Sleep(time.Millisecond)
		}
	}
	waitAcked(30)
	s1.stop()
	waitAcked(70)
	s1.restart()
	if healthy := r.CheckNow(); healthy != 2 {
		t.Errorf("healthy after re-admission = %d", healthy)
	}
	<-writerDone
	// Let readers run a little against the fully-caught-up pair.
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	select {
	case v := <-violations:
		t.Fatalf("staleness bound violated: %s", v)
	default:
	}
	if v := reg.Counter("cluster.follower_reads_total").Value(); v == 0 {
		t.Error("no read was ever served by the follower")
	}
}

// TestReadRetriesRecoverTransientBlip: a single-member group whose only
// call is dropped once must recover within the read's own retry rounds
// (re-probe + jittered backoff) instead of surfacing the blip.
func TestReadRetriesRecoverTransientBlip(t *testing.T) {
	tc := startCluster(t, 1, 0)
	routed := tc.router.C("materials")
	seedMaterials(t, routed, 5)

	tc.router.InjectFaults(&scriptedFaults{drop: 1})
	docs, err := routed.FindAll(nil, nil)
	if err != nil {
		t.Fatalf("read should have retried through the blip: %v", err)
	}
	if len(docs) != 5 {
		t.Errorf("docs = %d, want 5", len(docs))
	}
	if v := tc.reg.Counter("cluster.read_retries_total").Value(); v == 0 {
		t.Error("retry counter never moved")
	}
}

// TestIndexDefsReachReadmittedReplica: an ordered index created while a
// replica is down is a replicated log record like any write, so the
// catch-up stream must deliver it — the re-admitted replica ends up with
// the index built and planning through it.
func TestIndexDefsReachReadmittedReplica(t *testing.T) {
	reg := obs.NewRegistry()
	n0 := cluster.NewNode("n0", datastore.MustOpenMemory(), reg)
	n1 := cluster.NewNode("n1", datastore.MustOpenMemory(), reg)
	s0, s1 := serveNode(t, n0), serveNode(t, n1)
	r, err := cluster.NewRouter(cluster.RouterOptions{
		Groups: [][]string{{s0.url(), s1.url()}}, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)

	routed := r.C("materials")
	seedMaterials(t, routed, 12)

	s1.stop()
	r.EnsureOrderedIndex("materials", "band_gap")
	if _, err := routed.Insert(document.D{"_id": "gap-0", "band_gap": 1.25}); err != nil {
		t.Fatalf("insert during outage: %v", err)
	}
	if got := n1.Store().C("materials").OrderedIndexes(); len(got) != 0 {
		t.Fatalf("dead replica grew indexes: %v", got)
	}

	s1.restart()
	if healthy := r.CheckNow(); healthy != 2 {
		t.Fatalf("healthy after re-admission sweep = %d, want 2", healthy)
	}
	got := n1.Store().C("materials").OrderedIndexes()
	if len(got) != 1 || got[0] != "band_gap" {
		t.Fatalf("re-admitted replica indexes = %v, want [band_gap]", got)
	}
	// The caught-up index is real: the replica plans range queries
	// through it and the backfill covered both pre-outage docs and the
	// write that followed the create in the log.
	plan, err := n1.Store().C("materials").Explain(
		document.D{"band_gap": document.D{"$gte": 1.0, "$lt": 2.0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan["mode"] != "index" || plan["index"] != "band_gap" {
		t.Fatalf("re-admitted replica does not plan through the index: %v", plan)
	}
	nLocal, err := n1.Store().C("materials").Count(document.D{"band_gap": document.D{"$gte": 1.0, "$lt": 2.0}})
	if err != nil {
		t.Fatal(err)
	}
	nRouted, err := routed.Count(document.D{"band_gap": document.D{"$gte": 1.0, "$lt": 2.0}})
	if err != nil {
		t.Fatal(err)
	}
	if nLocal != nRouted {
		t.Fatalf("re-admitted replica count %d, routed count %d", nLocal, nRouted)
	}

	// Routed Explain merges per-shard plans; with one group the merged
	// doc reports the common mode.
	merged, err := routed.Explain(document.D{"band_gap": document.D{"$gte": 1.0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if merged["sharded"] != true || merged["mode"] != "index" {
		t.Fatalf("routed explain = %v, want sharded index mode", merged)
	}
}
