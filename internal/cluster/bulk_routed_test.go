package cluster_test

import (
	"fmt"
	"strings"
	"testing"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

// TestRoutedInsertManyDistributesAcrossShards writes one batch through
// the router and checks it behaves like per-document inserts: ids come
// back in input order, every document is readable, and both shard
// groups hold a share of the corpus.
func TestRoutedInsertManyDistributesAcrossShards(t *testing.T) {
	tc := startCluster(t, 2, 1)
	routed := tc.router.C("materials")

	docs := make([]document.D, 20)
	for i := range docs {
		docs[i] = document.D{"_id": fmt.Sprintf("im-%03d", i), "band_gap": float64(i)}
	}
	// The last few carry no id: the router must mint one per document.
	docs = append(docs, document.D{"band_gap": 100.0}, document.D{"band_gap": 101.0})

	ids, err := routed.InsertMany(docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 22 {
		t.Fatalf("ids = %d, want 22", len(ids))
	}
	for i := 0; i < 20; i++ {
		if want := fmt.Sprintf("im-%03d", i); ids[i] != want {
			t.Errorf("ids[%d] = %q, want %q", i, ids[i], want)
		}
	}
	if ids[20] == "" || ids[21] == "" || ids[20] == ids[21] {
		t.Errorf("minted ids = %q, %q", ids[20], ids[21])
	}

	n, err := routed.Count(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 22 {
		t.Fatalf("routed count = %d, want 22", n)
	}
	// Both groups got a sub-batch (the hash spreads 22 ids).
	for gi, nodes := range tc.nodes {
		got, _ := nodes[0].Store().C("materials").Count(nil)
		if got == 0 || got == 22 {
			t.Errorf("group %d holds %d docs — batch not partitioned", gi, got)
		}
		// Replication: every member of the group holds the same share.
		rep, _ := nodes[1].Store().C("materials").Count(nil)
		if rep != got {
			t.Errorf("group %d replica holds %d docs, primary %d", gi, rep, got)
		}
	}
}

// TestRoutedBulkWriteMixedAcrossShards drives a mixed batch through the
// router: per-op errors stay per-op, multi-shard updates and deletes
// merge their counts, and updateOne stays single-document even when its
// filter spans every shard.
func TestRoutedBulkWriteMixedAcrossShards(t *testing.T) {
	tc := startCluster(t, 2, 1)
	routed := tc.router.C("materials")
	seedMaterials(t, routed, 20)

	res, err := routed.BulkWrite([]datastore.BulkOp{
		{Op: datastore.BulkInsert, Doc: document.D{"_id": "bk-new", "band_gap": 9.9}},
		{Op: datastore.BulkInsert, Doc: document.D{"_id": "mat-000", "band_gap": 0.0}}, // duplicate
		{Op: datastore.BulkUpdateMany, Filter: document.D{"nelements": int64(2)},
			Update: document.D{"$set": document.D{"flagged": true}}},
		{Op: datastore.BulkUpdateOne, Filter: document.D{"nelements": int64(3)},
			Update: document.D{"$set": document.D{"picked": true}}},
		{Op: datastore.BulkDelete, Filter: document.D{"nelements": int64(4)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerOp[0].ID != "bk-new" || res.PerOp[0].Error != "" {
		t.Errorf("insert op = %+v", res.PerOp[0])
	}
	if res.PerOp[1].Error == "" || !strings.Contains(res.PerOp[1].Error, "mat-000") {
		t.Errorf("duplicate insert op = %+v", res.PerOp[1])
	}
	// Seeded corpus: nelements = i%4+1, so 5 docs per residue class.
	if res.PerOp[2].Matched != 5 || res.PerOp[2].Modified != 5 {
		t.Errorf("updateMany op = %+v (cross-shard counts not merged)", res.PerOp[2])
	}
	if res.PerOp[3].Matched != 1 || res.PerOp[3].Modified != 1 {
		t.Errorf("updateOne op = %+v (must pin to one document)", res.PerOp[3])
	}
	if res.PerOp[4].Removed != 5 {
		t.Errorf("delete op = %+v", res.PerOp[4])
	}
	if res.Inserted != 1 || res.Matched != 6 || res.Modified != 6 || res.Removed != 5 {
		t.Errorf("totals = %+v", res)
	}

	// State checks through the normal routed read path.
	flagged, err := routed.Count(document.D{"flagged": true})
	if err != nil {
		t.Fatal(err)
	}
	if flagged != 5 {
		t.Errorf("flagged = %d, want 5", flagged)
	}
	picked, _ := routed.Count(document.D{"picked": true})
	if picked != 1 {
		t.Errorf("picked = %d, want exactly 1 (updateOne leaked across shards)", picked)
	}
	remaining, _ := routed.Count(nil)
	if remaining != 20+1-5 {
		t.Errorf("count = %d, want 16", remaining)
	}
}

// TestRoutedBulkWriteEmptyAndUnknownOp covers the degenerate inputs.
func TestRoutedBulkWriteEmptyAndUnknownOp(t *testing.T) {
	tc := startCluster(t, 2, 0)
	routed := tc.router.C("materials")

	res, err := routed.BulkWrite(nil)
	if err != nil || len(res.PerOp) != 0 {
		t.Fatalf("empty batch: %+v %v", res, err)
	}
	res, err = routed.BulkWrite([]datastore.BulkOp{{Op: "rename", Filter: document.D{}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerOp[0].Error == "" {
		t.Error("unknown op accepted")
	}
}
