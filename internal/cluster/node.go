// Package cluster lifts the in-process shard.Cluster semantics onto a
// networked topology, the deployment the paper reserves for future
// scalability (§IV-D2): shard nodes expose datastore primitives over an
// internal HTTP API, and a query router owns the shard map, scattering
// reads across groups, replicating writes to group members, and promoting
// replicas when a primary stops answering. The hash partitioning and
// merge semantics are shared with internal/shard (see shard/partition.go),
// so an in-process cluster and a networked one agree bit-for-bit on
// placement and result order.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"matproj/internal/cluster/wire"
	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/obs"
)

// Job is a named MapReduce program. Go functions cannot cross the wire,
// so distributed MapReduce runs jobs registered by name in every binary
// of the cluster: nodes execute the map/reduce over their shard, the
// router merges the partials and re-reduces (ReduceFunc must therefore be
// associative, same contract as datastore.MapReduce).
type Job struct {
	Map    datastore.MapFunc
	Reduce datastore.ReduceFunc
}

var (
	jobsMu sync.RWMutex
	jobs   = make(map[string]Job)
)

// RegisterJob installs a named MapReduce job in the process-wide
// registry. Registering the same name twice overwrites (last wins), so
// tests can re-register.
func RegisterJob(name string, j Job) {
	jobsMu.Lock()
	jobs[name] = j
	jobsMu.Unlock()
}

// LookupJob fetches a registered job by name.
func LookupJob(name string) (Job, bool) {
	jobsMu.RLock()
	j, ok := jobs[name]
	jobsMu.RUnlock()
	return j, ok
}

// Node is one shard member: a datastore exposed over the internal wire
// protocol. It is an http.Handler; mount it at the server root (paths
// already carry the /internal/v1 prefix).
type Node struct {
	id    string
	store *datastore.Store
	reg   *obs.Registry
	mux   *http.ServeMux
}

// NewNode wraps a store in the node transport. reg may be nil (metrics
// become no-ops).
func NewNode(id string, store *datastore.Store, reg *obs.Registry) *Node {
	n := &Node{id: id, store: store, reg: reg, mux: http.NewServeMux()}
	// Every node is a replication-log peer: memory-backed stores get the
	// bounded entry ring (durable stores already log via their journal).
	store.EnableReplication(0)
	post := func(path string, h func(w http.ResponseWriter, r *http.Request) error) {
		n.mux.HandleFunc("POST "+wire.Version+path, func(w http.ResponseWriter, r *http.Request) {
			n.serve(path, w, r, h)
		})
	}
	post(wire.PathInsert, n.handleInsert)
	post(wire.PathInsertMany, n.handleInsertMany)
	post(wire.PathBulkWrite, n.handleBulkWrite)
	post(wire.PathFind, n.handleFind)
	post(wire.PathCount, n.handleCount)
	post(wire.PathGet, n.handleGet)
	post(wire.PathUpdate, n.handleUpdate)
	post(wire.PathRemove, n.handleRemove)
	post(wire.PathAggregate, n.handleAggregate)
	post(wire.PathDistinct, n.handleDistinct)
	post(wire.PathMapReduce, n.handleMapReduce)
	post(wire.PathEnsureIndex, n.handleEnsureIndex)
	post(wire.PathExplain, n.handleExplain)
	post(wire.PathReplPull, n.handleReplPull)
	post(wire.PathReplApply, n.handleReplApply)
	post(wire.PathReplSnapshot, n.handleReplSnapshot)
	n.mux.HandleFunc("GET "+wire.Version+wire.PathHealth, n.handleHealth)
	return n
}

// ID reports the node's identifier (used in health responses).
func (n *Node) ID() string { return n.id }

// Store exposes the node's underlying datastore (tests and process
// wiring).
func (n *Node) Store() *datastore.Store { return n.store }

func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n.mux.ServeHTTP(w, r)
}

// serve wraps one op handler with metrics and error mapping.
func (n *Node) serve(op string, w http.ResponseWriter, r *http.Request, h func(http.ResponseWriter, *http.Request) error) {
	start := time.Now()
	err := h(w, r)
	n.reg.Counter("node_ops_total").Inc()
	n.reg.LatencyHistogram("node_op" + op + "_ms").ObserveDuration(time.Since(start))
	if err != nil {
		n.reg.Counter("node_op_errors_total").Inc()
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, datastore.ErrNotFound):
			status = http.StatusNotFound
		case isBadRequest(err):
			status = http.StatusBadRequest
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(wire.ErrorResponse{Error: err.Error()})
	}
}

// badRequestError marks caller mistakes (malformed bodies, unknown jobs)
// so serve maps them to 400 rather than 500.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) error {
	return badRequestError{fmt.Errorf(format, args...)}
}

func isBadRequest(err error) bool {
	var br badRequestError
	return errors.As(err, &br)
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return fmt.Errorf("cluster: encode response: %w", err)
	}
	return nil
}

func (n *Node) handleInsert(w http.ResponseWriter, r *http.Request) error {
	var req wire.InsertRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	id, err := n.store.C(req.Collection).Insert(wire.NormalizeMap(req.Doc))
	if err != nil {
		return fmt.Errorf("cluster: insert %s: %w", req.Collection, err)
	}
	return writeJSON(w, wire.InsertResponse{ID: id, Gen: n.store.ReplGen()})
}

func (n *Node) handleInsertMany(w http.ResponseWriter, r *http.Request) error {
	var req wire.InsertManyRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	docs := make([]document.D, len(req.Docs))
	for i, d := range req.Docs {
		docs[i] = wire.NormalizeMap(d)
	}
	ids, err := n.store.C(req.Collection).InsertMany(docs)
	if err != nil {
		return fmt.Errorf("cluster: insertMany %s: %w", req.Collection, err)
	}
	return writeJSON(w, wire.InsertManyResponse{IDs: ids, Gen: n.store.ReplGen()})
}

func (n *Node) handleBulkWrite(w http.ResponseWriter, r *http.Request) error {
	var req wire.BulkWriteRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	res, err := n.store.C(req.Collection).BulkWrite(req.ToBulkOps())
	if err != nil {
		return fmt.Errorf("cluster: bulkWrite %s: %w", req.Collection, err)
	}
	return writeJSON(w, wire.FromBulkResult(res, n.store.ReplGen()))
}

func (n *Node) handleFind(w http.ResponseWriter, r *http.Request) error {
	var req wire.FindRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	docs, err := n.store.C(req.Collection).FindAll(wire.NormalizeMap(req.Filter), req.Opts.ToFindOpts())
	if err != nil {
		return fmt.Errorf("cluster: find %s: %w", req.Collection, err)
	}
	return writeJSON(w, wire.DocsResponse{Docs: wire.FromDocs(docs)})
}

func (n *Node) handleCount(w http.ResponseWriter, r *http.Request) error {
	var req wire.CountRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	c, err := n.store.C(req.Collection).Count(wire.NormalizeMap(req.Filter))
	if err != nil {
		return fmt.Errorf("cluster: count %s: %w", req.Collection, err)
	}
	return writeJSON(w, wire.CountResponse{N: c})
}

func (n *Node) handleGet(w http.ResponseWriter, r *http.Request) error {
	var req wire.GetRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	d, err := n.store.C(req.Collection).FindID(req.ID)
	if err != nil {
		return fmt.Errorf("cluster: get %s/%s: %w", req.Collection, req.ID, err)
	}
	return writeJSON(w, wire.DocResponse{Doc: map[string]any(d)})
}

func (n *Node) handleUpdate(w http.ResponseWriter, r *http.Request) error {
	var req wire.UpdateRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	c := n.store.C(req.Collection)
	var res datastore.UpdateResult
	var err error
	if req.Many {
		res, err = c.UpdateMany(wire.NormalizeMap(req.Filter), wire.NormalizeMap(req.Update))
	} else {
		res, err = c.UpdateOne(wire.NormalizeMap(req.Filter), wire.NormalizeMap(req.Update))
	}
	if err != nil {
		return fmt.Errorf("cluster: update %s: %w", req.Collection, err)
	}
	return writeJSON(w, wire.UpdateResponse{Matched: res.Matched, Modified: res.Modified, Gen: n.store.ReplGen()})
}

func (n *Node) handleRemove(w http.ResponseWriter, r *http.Request) error {
	var req wire.RemoveRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	c, err := n.store.C(req.Collection).Remove(wire.NormalizeMap(req.Filter))
	if err != nil {
		return fmt.Errorf("cluster: remove %s: %w", req.Collection, err)
	}
	return writeJSON(w, wire.CountResponse{N: c, Gen: n.store.ReplGen()})
}

func (n *Node) handleAggregate(w http.ResponseWriter, r *http.Request) error {
	var req wire.AggregateRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	docs, err := n.store.C(req.Collection).Aggregate(wire.NormalizePipeline(req.Pipeline))
	if err != nil {
		return fmt.Errorf("cluster: aggregate %s: %w", req.Collection, err)
	}
	return writeJSON(w, wire.DocsResponse{Docs: wire.FromDocs(docs)})
}

func (n *Node) handleDistinct(w http.ResponseWriter, r *http.Request) error {
	var req wire.DistinctRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	vals, err := n.store.C(req.Collection).Distinct(req.Path, wire.NormalizeMap(req.Filter))
	if err != nil {
		return fmt.Errorf("cluster: distinct %s: %w", req.Collection, err)
	}
	return writeJSON(w, wire.DistinctResponse{Values: vals})
}

func (n *Node) handleMapReduce(w http.ResponseWriter, r *http.Request) error {
	var req wire.MapReduceRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	job, ok := LookupJob(req.Job)
	if !ok {
		return badRequest("cluster: unknown mapreduce job %q", req.Job)
	}
	docs, err := n.store.C(req.Collection).MapReduce(wire.NormalizeMap(req.Filter), job.Map, job.Reduce)
	if err != nil {
		return fmt.Errorf("cluster: mapreduce %s: %w", req.Collection, err)
	}
	return writeJSON(w, wire.DocsResponse{Docs: wire.FromDocs(docs)})
}

func (n *Node) handleEnsureIndex(w http.ResponseWriter, r *http.Request) error {
	var req wire.EnsureIndexRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	if len(req.Paths) > 0 {
		n.store.C(req.Collection).EnsureOrderedIndex(req.Paths...)
	} else {
		n.store.C(req.Collection).EnsureIndex(req.Path)
	}
	return writeJSON(w, wire.OKResponse{OK: true})
}

func (n *Node) handleExplain(w http.ResponseWriter, r *http.Request) error {
	var req wire.ExplainRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	plan, err := n.store.C(req.Collection).Explain(wire.NormalizeMap(req.Filter), req.Opts.ToFindOpts())
	if err != nil {
		return badRequest("cluster: explain %s: %v", req.Collection, err)
	}
	return writeJSON(w, wire.DocResponse{Doc: map[string]any(plan)})
}

func (n *Node) handleHealth(w http.ResponseWriter, r *http.Request) {
	docs := 0
	for _, name := range n.store.Collections() {
		c, _ := n.store.C(name).Count(nil)
		docs += c
	}
	writeJSON(w, wire.HealthResponse{
		OK:          true,
		NodeID:      n.id,
		Collections: len(n.store.Collections()),
		Documents:   docs,
		AppliedGen:  n.store.ReplGen(),
	})
}

// readLogLines splits a repl line stream (newline-joined framed journal
// lines) into its lines, dropping empties.
func readLogLines(r io.Reader) ([][]byte, error) {
	body, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("cluster: read log stream: %w", err)
	}
	var lines [][]byte
	for _, ln := range bytes.Split(body, []byte("\n")) {
		if len(ln) > 0 {
			lines = append(lines, ln)
		}
	}
	return lines, nil
}

// writeLogLines streams framed lines with the node's head generation in
// the response header.
func writeLogLines(w http.ResponseWriter, lines [][]byte, head uint64) error {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set(wire.HeaderReplHead, strconv.FormatUint(head, 10))
	for _, ln := range lines {
		if _, err := w.Write(ln); err != nil {
			return fmt.Errorf("cluster: write log stream: %w", err)
		}
		if _, err := w.Write([]byte("\n")); err != nil {
			return fmt.Errorf("cluster: write log stream: %w", err)
		}
	}
	return nil
}

// handleReplPull serves journal entries past the requested generation.
// A generation that has rotated out of the log answers 410 Gone; the
// puller falls back to snapshot + reset.
func (n *Node) handleReplPull(w http.ResponseWriter, r *http.Request) error {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		return badRequest("cluster: repl pull: bad from: %v", err)
	}
	limit := 0
	if ls := r.URL.Query().Get("limit"); ls != "" {
		if limit, err = strconv.Atoi(ls); err != nil {
			return badRequest("cluster: repl pull: bad limit: %v", err)
		}
	}
	lines, head, err := n.store.ReplTail(from, limit)
	if errors.Is(err, datastore.ErrReplGap) {
		n.reg.Counter("node_repl_gap_total").Inc()
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(wire.HeaderReplHead, strconv.FormatUint(head, 10))
		w.WriteHeader(http.StatusGone)
		json.NewEncoder(w).Encode(wire.ErrorResponse{Error: err.Error()})
		return nil
	}
	if err != nil {
		return fmt.Errorf("cluster: repl pull: %w", err)
	}
	n.reg.Counter("node_repl_pulls_total").Inc()
	n.reg.Counter("node_repl_entries_served_total").Add(uint64(len(lines)))
	return writeLogLines(w, lines, head)
}

// handleReplApply ingests a batch of shipped log lines. With ?reset=1 the
// batch is a full snapshot replacing all local state, fast-forwarded to
// ?upto=<gen>; otherwise entries append through the normal apply path.
func (n *Node) handleReplApply(w http.ResponseWriter, r *http.Request) error {
	lines, err := readLogLines(r.Body)
	if err != nil {
		return badRequest("%v", err)
	}
	if r.URL.Query().Get("reset") == "1" {
		upto, perr := strconv.ParseUint(r.URL.Query().Get("upto"), 10, 64)
		if perr != nil {
			return badRequest("cluster: repl apply: bad upto: %v", perr)
		}
		if rerr := n.store.ReplReset(lines, upto); rerr != nil {
			return fmt.Errorf("cluster: repl reset: %w", rerr)
		}
		n.reg.Counter("node_repl_resets_total").Inc()
		return writeJSON(w, wire.ReplApplyResponse{Applied: len(lines), Gen: upto})
	}
	applied, gen, torn, err := n.store.ApplyReplEntries(lines)
	if err != nil {
		return fmt.Errorf("cluster: repl apply: %w", err)
	}
	n.reg.Counter("node_repl_entries_applied_total").Add(uint64(applied))
	if torn {
		n.reg.Counter("node_repl_torn_batches_total").Inc()
	}
	return writeJSON(w, wire.ReplApplyResponse{Applied: applied, Gen: gen, Torn: torn})
}

// handleReplSnapshot streams the node's full state as framed insert
// lines (the rotation fallback for pulls answered 410).
func (n *Node) handleReplSnapshot(w http.ResponseWriter, r *http.Request) error {
	lines, head, err := n.store.ReplSnapshotEntries()
	if err != nil {
		return fmt.Errorf("cluster: repl snapshot: %w", err)
	}
	n.reg.Counter("node_repl_snapshots_served_total").Inc()
	return writeLogLines(w, lines, head)
}
