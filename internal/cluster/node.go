// Package cluster lifts the in-process shard.Cluster semantics onto a
// networked topology, the deployment the paper reserves for future
// scalability (§IV-D2): shard nodes expose datastore primitives over an
// internal HTTP API, and a query router owns the shard map, scattering
// reads across groups, replicating writes to group members, and promoting
// replicas when a primary stops answering. The hash partitioning and
// merge semantics are shared with internal/shard (see shard/partition.go),
// so an in-process cluster and a networked one agree bit-for-bit on
// placement and result order.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"matproj/internal/cluster/wire"
	"matproj/internal/datastore"
	"matproj/internal/obs"
)

// Job is a named MapReduce program. Go functions cannot cross the wire,
// so distributed MapReduce runs jobs registered by name in every binary
// of the cluster: nodes execute the map/reduce over their shard, the
// router merges the partials and re-reduces (ReduceFunc must therefore be
// associative, same contract as datastore.MapReduce).
type Job struct {
	Map    datastore.MapFunc
	Reduce datastore.ReduceFunc
}

var (
	jobsMu sync.RWMutex
	jobs   = make(map[string]Job)
)

// RegisterJob installs a named MapReduce job in the process-wide
// registry. Registering the same name twice overwrites (last wins), so
// tests can re-register.
func RegisterJob(name string, j Job) {
	jobsMu.Lock()
	jobs[name] = j
	jobsMu.Unlock()
}

// LookupJob fetches a registered job by name.
func LookupJob(name string) (Job, bool) {
	jobsMu.RLock()
	j, ok := jobs[name]
	jobsMu.RUnlock()
	return j, ok
}

// Node is one shard member: a datastore exposed over the internal wire
// protocol. It is an http.Handler; mount it at the server root (paths
// already carry the /internal/v1 prefix).
type Node struct {
	id    string
	store *datastore.Store
	reg   *obs.Registry
	mux   *http.ServeMux
}

// NewNode wraps a store in the node transport. reg may be nil (metrics
// become no-ops).
func NewNode(id string, store *datastore.Store, reg *obs.Registry) *Node {
	n := &Node{id: id, store: store, reg: reg, mux: http.NewServeMux()}
	post := func(path string, h func(w http.ResponseWriter, r *http.Request) error) {
		n.mux.HandleFunc("POST "+wire.Version+path, func(w http.ResponseWriter, r *http.Request) {
			n.serve(path, w, r, h)
		})
	}
	post(wire.PathInsert, n.handleInsert)
	post(wire.PathFind, n.handleFind)
	post(wire.PathCount, n.handleCount)
	post(wire.PathGet, n.handleGet)
	post(wire.PathUpdate, n.handleUpdate)
	post(wire.PathRemove, n.handleRemove)
	post(wire.PathAggregate, n.handleAggregate)
	post(wire.PathDistinct, n.handleDistinct)
	post(wire.PathMapReduce, n.handleMapReduce)
	post(wire.PathEnsureIndex, n.handleEnsureIndex)
	n.mux.HandleFunc("GET "+wire.Version+wire.PathHealth, n.handleHealth)
	return n
}

// ID reports the node's identifier (used in health responses).
func (n *Node) ID() string { return n.id }

// Store exposes the node's underlying datastore (tests and process
// wiring).
func (n *Node) Store() *datastore.Store { return n.store }

func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n.mux.ServeHTTP(w, r)
}

// serve wraps one op handler with metrics and error mapping.
func (n *Node) serve(op string, w http.ResponseWriter, r *http.Request, h func(http.ResponseWriter, *http.Request) error) {
	start := time.Now()
	err := h(w, r)
	n.reg.Counter("node_ops_total").Inc()
	n.reg.LatencyHistogram("node_op" + op + "_ms").ObserveDuration(time.Since(start))
	if err != nil {
		n.reg.Counter("node_op_errors_total").Inc()
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, datastore.ErrNotFound):
			status = http.StatusNotFound
		case isBadRequest(err):
			status = http.StatusBadRequest
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(wire.ErrorResponse{Error: err.Error()})
	}
}

// badRequestError marks caller mistakes (malformed bodies, unknown jobs)
// so serve maps them to 400 rather than 500.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) error {
	return badRequestError{fmt.Errorf(format, args...)}
}

func isBadRequest(err error) bool {
	var br badRequestError
	return errors.As(err, &br)
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return fmt.Errorf("cluster: encode response: %w", err)
	}
	return nil
}

func (n *Node) handleInsert(w http.ResponseWriter, r *http.Request) error {
	var req wire.InsertRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	id, err := n.store.C(req.Collection).Insert(wire.NormalizeMap(req.Doc))
	if err != nil {
		return fmt.Errorf("cluster: insert %s: %w", req.Collection, err)
	}
	return writeJSON(w, wire.InsertResponse{ID: id})
}

func (n *Node) handleFind(w http.ResponseWriter, r *http.Request) error {
	var req wire.FindRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	docs, err := n.store.C(req.Collection).FindAll(wire.NormalizeMap(req.Filter), req.Opts.ToFindOpts())
	if err != nil {
		return fmt.Errorf("cluster: find %s: %w", req.Collection, err)
	}
	return writeJSON(w, wire.DocsResponse{Docs: wire.FromDocs(docs)})
}

func (n *Node) handleCount(w http.ResponseWriter, r *http.Request) error {
	var req wire.CountRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	c, err := n.store.C(req.Collection).Count(wire.NormalizeMap(req.Filter))
	if err != nil {
		return fmt.Errorf("cluster: count %s: %w", req.Collection, err)
	}
	return writeJSON(w, wire.CountResponse{N: c})
}

func (n *Node) handleGet(w http.ResponseWriter, r *http.Request) error {
	var req wire.GetRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	d, err := n.store.C(req.Collection).FindID(req.ID)
	if err != nil {
		return fmt.Errorf("cluster: get %s/%s: %w", req.Collection, req.ID, err)
	}
	return writeJSON(w, wire.DocResponse{Doc: map[string]any(d)})
}

func (n *Node) handleUpdate(w http.ResponseWriter, r *http.Request) error {
	var req wire.UpdateRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	c := n.store.C(req.Collection)
	var res datastore.UpdateResult
	var err error
	if req.Many {
		res, err = c.UpdateMany(wire.NormalizeMap(req.Filter), wire.NormalizeMap(req.Update))
	} else {
		res, err = c.UpdateOne(wire.NormalizeMap(req.Filter), wire.NormalizeMap(req.Update))
	}
	if err != nil {
		return fmt.Errorf("cluster: update %s: %w", req.Collection, err)
	}
	return writeJSON(w, wire.UpdateResponse{Matched: res.Matched, Modified: res.Modified})
}

func (n *Node) handleRemove(w http.ResponseWriter, r *http.Request) error {
	var req wire.RemoveRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	c, err := n.store.C(req.Collection).Remove(wire.NormalizeMap(req.Filter))
	if err != nil {
		return fmt.Errorf("cluster: remove %s: %w", req.Collection, err)
	}
	return writeJSON(w, wire.CountResponse{N: c})
}

func (n *Node) handleAggregate(w http.ResponseWriter, r *http.Request) error {
	var req wire.AggregateRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	docs, err := n.store.C(req.Collection).Aggregate(wire.NormalizePipeline(req.Pipeline))
	if err != nil {
		return fmt.Errorf("cluster: aggregate %s: %w", req.Collection, err)
	}
	return writeJSON(w, wire.DocsResponse{Docs: wire.FromDocs(docs)})
}

func (n *Node) handleDistinct(w http.ResponseWriter, r *http.Request) error {
	var req wire.DistinctRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	vals, err := n.store.C(req.Collection).Distinct(req.Path, wire.NormalizeMap(req.Filter))
	if err != nil {
		return fmt.Errorf("cluster: distinct %s: %w", req.Collection, err)
	}
	return writeJSON(w, wire.DistinctResponse{Values: vals})
}

func (n *Node) handleMapReduce(w http.ResponseWriter, r *http.Request) error {
	var req wire.MapReduceRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	job, ok := LookupJob(req.Job)
	if !ok {
		return badRequest("cluster: unknown mapreduce job %q", req.Job)
	}
	docs, err := n.store.C(req.Collection).MapReduce(wire.NormalizeMap(req.Filter), job.Map, job.Reduce)
	if err != nil {
		return fmt.Errorf("cluster: mapreduce %s: %w", req.Collection, err)
	}
	return writeJSON(w, wire.DocsResponse{Docs: wire.FromDocs(docs)})
}

func (n *Node) handleEnsureIndex(w http.ResponseWriter, r *http.Request) error {
	var req wire.EnsureIndexRequest
	if err := wire.DecodeJSON(r.Body, &req); err != nil {
		return badRequest("%v", err)
	}
	n.store.C(req.Collection).EnsureIndex(req.Path)
	return writeJSON(w, wire.OKResponse{OK: true})
}

func (n *Node) handleHealth(w http.ResponseWriter, r *http.Request) {
	docs := 0
	for _, name := range n.store.Collections() {
		c, _ := n.store.C(name).Count(nil)
		docs += c
	}
	writeJSON(w, wire.HealthResponse{
		OK:          true,
		NodeID:      n.id,
		Collections: len(n.store.Collections()),
		Documents:   docs,
	})
}
