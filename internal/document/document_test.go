package document

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFromJSONNormalizesNumbers(t *testing.T) {
	d, err := FromJSON([]byte(`{"a": 3, "b": 3.5, "c": "x", "d": true, "e": null}`))
	if err != nil {
		t.Fatalf("FromJSON: %v", err)
	}
	if v, _ := d.Get("a"); v != int64(3) {
		t.Errorf("a = %v (%T), want int64(3)", v, v)
	}
	if v, _ := d.Get("b"); v != 3.5 {
		t.Errorf("b = %v, want 3.5", v)
	}
	if v, _ := d.Get("c"); v != "x" {
		t.Errorf("c = %v, want x", v)
	}
	if v, _ := d.Get("d"); v != true {
		t.Errorf("d = %v, want true", v)
	}
	if v, ok := d.Get("e"); !ok || v != nil {
		t.Errorf("e = %v ok=%v, want nil present", v, ok)
	}
}

func TestFromJSONRejectsNonObject(t *testing.T) {
	if _, err := FromJSON([]byte(`[1,2,3]`)); err == nil {
		t.Error("FromJSON of array: want error, got nil")
	}
	if _, err := FromJSON([]byte(`{bad`)); err == nil {
		t.Error("FromJSON of malformed input: want error, got nil")
	}
}

func TestNormalizeWidensIntegerTypes(t *testing.T) {
	cases := []struct {
		in   any
		want any
	}{
		{int(7), int64(7)},
		{int8(7), int64(7)},
		{int16(7), int64(7)},
		{int32(7), int64(7)},
		{uint(7), int64(7)},
		{uint8(7), int64(7)},
		{uint16(7), int64(7)},
		{uint32(7), int64(7)},
		{uint64(7), int64(7)},
		{float32(1.5), float64(1.5)},
		{uint64(math.MaxUint64), float64(math.MaxUint64)},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%v %T) = %v (%T), want %v (%T)", c.in, c.in, got, got, c.want, c.want)
		}
	}
}

func TestNormalizeSliceVariants(t *testing.T) {
	got := Normalize(D{"ints": []int{1, 2}, "strs": []string{"a"}, "floats": []float64{0.5}, "docs": []D{{"k": 1}}})
	m := got.(map[string]any)
	if !reflect.DeepEqual(m["ints"], []any{int64(1), int64(2)}) {
		t.Errorf("ints = %#v", m["ints"])
	}
	if !reflect.DeepEqual(m["strs"], []any{"a"}) {
		t.Errorf("strs = %#v", m["strs"])
	}
	if !reflect.DeepEqual(m["floats"], []any{0.5}) {
		t.Errorf("floats = %#v", m["floats"])
	}
	inner := m["docs"].([]any)[0].(map[string]any)
	if inner["k"] != int64(1) {
		t.Errorf("docs.0.k = %v (%T)", inner["k"], inner["k"])
	}
}

func TestNormalizeStructFallback(t *testing.T) {
	type point struct {
		X float64 `json:"x"`
		Y float64 `json:"y"`
	}
	got := Normalize(point{X: 1, Y: 2.5})
	m, ok := got.(map[string]any)
	if !ok {
		t.Fatalf("Normalize(struct) = %T, want map", got)
	}
	if m["x"] != int64(1) || m["y"] != 2.5 {
		t.Errorf("normalized struct = %#v", m)
	}
}

func TestGetDottedPaths(t *testing.T) {
	d := MustFromJSON(`{"output": {"final_energy": -12.5, "bands": [[0.1, 0.2], [0.3]]}, "elements": ["Li", "Fe", "O"]}`)
	if v, ok := d.Get("output.final_energy"); !ok || v != -12.5 {
		t.Errorf("output.final_energy = %v ok=%v", v, ok)
	}
	if v, ok := d.Get("elements.1"); !ok || v != "Fe" {
		t.Errorf("elements.1 = %v ok=%v", v, ok)
	}
	if v, ok := d.Get("output.bands.0.1"); !ok || v != 0.2 {
		t.Errorf("output.bands.0.1 = %v ok=%v", v, ok)
	}
	if _, ok := d.Get("output.missing"); ok {
		t.Error("output.missing resolved, want miss")
	}
	if _, ok := d.Get("elements.9"); ok {
		t.Error("elements.9 resolved, want miss")
	}
	if _, ok := d.Get("elements.x"); ok {
		t.Error("elements.x resolved, want miss")
	}
	if _, ok := d.Get("output.final_energy.deep"); ok {
		t.Error("descend through scalar resolved, want miss")
	}
}

func TestGetTypedAccessors(t *testing.T) {
	d := MustFromJSON(`{"s": "str", "i": 4, "f": 2.5, "arr": [1], "doc": {"k": 1}}`)
	if d.GetString("s") != "str" {
		t.Errorf("GetString(s) = %q", d.GetString("s"))
	}
	if d.GetString("i") != "" {
		t.Errorf("GetString(i) = %q, want empty", d.GetString("i"))
	}
	if f, ok := d.GetFloat("i"); !ok || f != 4 {
		t.Errorf("GetFloat(i) = %v,%v", f, ok)
	}
	if f, ok := d.GetFloat("f"); !ok || f != 2.5 {
		t.Errorf("GetFloat(f) = %v,%v", f, ok)
	}
	if _, ok := d.GetFloat("s"); ok {
		t.Error("GetFloat(s) resolved, want miss")
	}
	if i, ok := d.GetInt("i"); !ok || i != 4 {
		t.Errorf("GetInt(i) = %v,%v", i, ok)
	}
	if _, ok := d.GetInt("f"); ok {
		t.Error("GetInt(2.5) resolved, want miss")
	}
	if a := d.GetArray("arr"); len(a) != 1 {
		t.Errorf("GetArray(arr) = %v", a)
	}
	if d.GetArray("doc") != nil {
		t.Error("GetArray(doc) non-nil")
	}
	if sub := d.GetDoc("doc"); sub == nil || sub["k"] != int64(1) {
		t.Errorf("GetDoc(doc) = %v", sub)
	}
	if d.GetDoc("arr") != nil {
		t.Error("GetDoc(arr) non-nil")
	}
}

func TestGetIntFromIntegralFloat(t *testing.T) {
	d := D{"n": 3.0}
	if i, ok := d.GetInt("n"); !ok || i != 3 {
		t.Errorf("GetInt(3.0) = %v,%v; want 3,true", i, ok)
	}
}

func TestSetCreatesIntermediates(t *testing.T) {
	d := New()
	if err := d.Set("a.b.c", 42); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if v, ok := d.Get("a.b.c"); !ok || v != int64(42) {
		t.Errorf("a.b.c = %v ok=%v", v, ok)
	}
}

func TestSetIntoArray(t *testing.T) {
	d := MustFromJSON(`{"arr": [{"x": 1}, {"x": 2}]}`)
	if err := d.Set("arr.1.x", 99); err != nil {
		t.Fatalf("Set arr.1.x: %v", err)
	}
	if v, _ := d.Get("arr.1.x"); v != int64(99) {
		t.Errorf("arr.1.x = %v", v)
	}
	// Appending one past the end.
	if err := d.Set("arr.2", "tail"); err != nil {
		t.Fatalf("Set arr.2: %v", err)
	}
	if v, _ := d.Get("arr.2"); v != "tail" {
		t.Errorf("arr.2 = %v", v)
	}
	// Far out of range must error.
	if err := d.Set("arr.10", "nope"); err == nil {
		t.Error("Set arr.10: want error")
	}
	if err := d.Set("arr.-1", "nope"); err == nil {
		t.Error("Set arr.-1: want error")
	}
}

func TestSetCreatesArrayForNumericSegment(t *testing.T) {
	d := New()
	if err := d.Set("list.0", "first"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	arr := d.GetArray("list")
	if len(arr) != 1 || arr[0] != "first" {
		t.Errorf("list = %v", arr)
	}
}

func TestSetReplacesScalarWithContainer(t *testing.T) {
	d := D{"a": int64(1)}
	if err := d.Set("a.b", 2); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if v, _ := d.Get("a.b"); v != int64(2) {
		t.Errorf("a.b = %v", v)
	}
}

func TestSetEmptyPathErrors(t *testing.T) {
	if err := New().Set("", 1); err == nil {
		t.Error("Set(\"\"): want error")
	}
}

func TestUnset(t *testing.T) {
	d := MustFromJSON(`{"a": {"b": 1, "c": 2}, "arr": [10, 20, 30]}`)
	d.Unset("a.b")
	if d.Has("a.b") {
		t.Error("a.b still present")
	}
	if !d.Has("a.c") {
		t.Error("a.c removed")
	}
	d.Unset("arr.1")
	arr := d.GetArray("arr")
	if len(arr) != 2 || arr[0] != int64(10) || arr[1] != int64(30) {
		t.Errorf("arr = %v", arr)
	}
	d.Unset("missing.path") // must not panic
	d.Unset("")
}

func TestCopyIsDeep(t *testing.T) {
	orig := MustFromJSON(`{"nested": {"list": [1, 2, {"k": "v"}]}}`)
	cp := orig.Copy()
	if err := cp.Set("nested.list.2.k", "changed"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if v, _ := orig.Get("nested.list.2.k"); v != "v" {
		t.Errorf("original mutated: %v", v)
	}
	if v, _ := cp.Get("nested.list.2.k"); v != "changed" {
		t.Errorf("copy not changed: %v", v)
	}
	var nilDoc D
	if nilDoc.Copy() != nil {
		t.Error("Copy of nil doc should be nil")
	}
}

func TestEqualCrossNumeric(t *testing.T) {
	if !Equal(int64(3), 3.0) {
		t.Error("3 != 3.0")
	}
	if Equal(int64(3), 3.5) {
		t.Error("3 == 3.5")
	}
	if !Equal(D{"a": int64(1)}, map[string]any{"a": 1.0}) {
		t.Error("doc with int64 != doc with float")
	}
	if !Equal([]any{int64(1), "x"}, []any{1.0, "x"}) {
		t.Error("array cross-numeric mismatch")
	}
	if Equal([]any{int64(1)}, []any{int64(1), int64(2)}) {
		t.Error("length-different arrays equal")
	}
}

func TestCompareOrdering(t *testing.T) {
	// nil < numbers < strings < documents < arrays < booleans
	ordered := []any{nil, int64(-1), 0.5, "a", "b", map[string]any{"a": int64(1)}, []any{int64(1)}, false, true}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareDocsByKeyThenValue(t *testing.T) {
	a := map[string]any{"a": int64(1)}
	b := map[string]any{"a": int64(2)}
	if Compare(a, b) != -1 {
		t.Error("doc value compare failed")
	}
	c := map[string]any{"a": int64(1), "b": int64(0)}
	if Compare(a, c) != -1 {
		t.Error("shorter doc should sort first")
	}
}

func TestMerge(t *testing.T) {
	d := D{"keep": int64(1), "replace": int64(2)}
	src := D{"replace": D{"deep": int64(3)}, "new": "x"}
	d.Merge(src)
	if v, _ := d.Get("replace.deep"); v != int64(3) {
		t.Errorf("replace.deep = %v", v)
	}
	if d["new"] != "x" || d["keep"] != int64(1) {
		t.Errorf("merge result = %v", d)
	}
	// Deep copy: mutating source must not affect d.
	src.GetDoc("replace")["deep"] = int64(99)
	if v, _ := d.Get("replace.deep"); v != int64(3) {
		t.Errorf("merge aliased source: %v", v)
	}
}

func TestFlatten(t *testing.T) {
	d := MustFromJSON(`{"a": {"b": 1}, "list": [5, {"k": "v"}], "empty": {}, "earr": []}`)
	flat := d.Flatten()
	want := map[string]any{
		"a.b":      int64(1),
		"list.0":   int64(5),
		"list.1.k": "v",
	}
	for k, v := range want {
		if flat[k] != v {
			t.Errorf("flat[%q] = %v, want %v", k, flat[k], v)
		}
	}
	if _, ok := flat["empty"]; !ok {
		t.Error("empty doc missing from flatten")
	}
	if _, ok := flat["earr"]; !ok {
		t.Error("empty array missing from flatten")
	}
}

func TestToJSONRoundTrip(t *testing.T) {
	d := MustFromJSON(`{"z": 1, "a": {"nested": [1, 2.5, "s", null, true]}}`)
	b, err := d.ToJSON()
	if err != nil {
		t.Fatalf("ToJSON: %v", err)
	}
	back, err := FromJSON(b)
	if err != nil {
		t.Fatalf("FromJSON round trip: %v", err)
	}
	if !Equal(d, back) {
		t.Errorf("round trip mismatch: %v vs %v", d, back)
	}
	if d.String() == "" {
		t.Error("String empty")
	}
}

// genDoc builds a random document from quick-check raw values.
func genDoc(vals []int64, depth int) D {
	d := New()
	for i, v := range vals {
		key := string(rune('a' + i%20))
		switch {
		case depth < 2 && v%3 == 0:
			d[key+"n"] = genDoc(vals[:len(vals)/2], depth+1)
		case v%3 == 1:
			// Floats stay within float64's exact integer range: a huge
			// integral float marshals to integer-looking JSON digits that
			// re-enter as a (different) int64, so Equal-after-JSON-round-trip
			// cannot hold for them now that numeric comparison is exact.
			// Huge int64s (the `default` arm) round-trip exactly.
			d[key+"a"] = []any{v, float64(v%(1<<50)) / 2, "s"}
		default:
			d[key] = v
		}
	}
	return d
}

func TestQuickCopyEqualsOriginal(t *testing.T) {
	f := func(vals []int64) bool {
		d := genDoc(vals, 0)
		return Equal(d, d.Copy())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickJSONRoundTripPreservesEquality(t *testing.T) {
	f := func(vals []int64) bool {
		d := genDoc(vals, 0)
		b, err := d.ToJSON()
		if err != nil {
			return false
		}
		back, err := FromJSON(b)
		if err != nil {
			return false
		}
		return Equal(NormalizeDoc(d), back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareIsAntisymmetric(t *testing.T) {
	f := func(a, b []int64) bool {
		da, db := genDoc(a, 0), genDoc(b, 0)
		return Compare(da, db) == -Compare(db, da)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSetThenGet(t *testing.T) {
	f := func(key string, val int64) bool {
		if key == "" {
			return true
		}
		// Restrict to path-safe keys.
		for _, r := range key {
			if r == '.' || (r >= '0' && r <= '9') {
				return true
			}
		}
		d := New()
		if err := d.Set("outer."+key, val); err != nil {
			return false
		}
		got, ok := d.Get("outer." + key)
		return ok && got == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFlattenLeavesMatchGets(t *testing.T) {
	f := func(vals []int64) bool {
		d := NormalizeDoc(genDoc(vals, 0))
		for path, v := range d.Flatten() {
			got, ok := d.Get(path)
			if !ok || !Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatsFlat(t *testing.T) {
	d := MustFromJSON(`{"a": 1, "b": 2, "c": 3}`)
	s := Measure(d)
	if s.Nodes != 3 || s.Leaves != 3 || s.Depth != 1 {
		t.Errorf("flat stats = %+v", s)
	}
	if s.MeanDepth != 1 {
		t.Errorf("flat mean depth = %v", s.MeanDepth)
	}
}

func TestStatsNested(t *testing.T) {
	// root -> a(interior) -> b(leaf depth 2); root -> c(leaf depth 1)
	d := MustFromJSON(`{"a": {"b": 1}, "c": 2}`)
	s := Measure(d)
	if s.Nodes != 3 {
		t.Errorf("Nodes = %d, want 3", s.Nodes)
	}
	if s.Leaves != 2 {
		t.Errorf("Leaves = %d, want 2", s.Leaves)
	}
	if s.Depth != 2 {
		t.Errorf("Depth = %d, want 2", s.Depth)
	}
	if s.MeanDepth != 1.5 {
		t.Errorf("MeanDepth = %v, want 1.5", s.MeanDepth)
	}
}

func TestStatsArraysAndEmpties(t *testing.T) {
	d := MustFromJSON(`{"arr": [1, [2, 3]], "empty": {}}`)
	// Nodes: arr, arr.0, arr.1, arr.1.0, arr.1.1, empty = 6
	// Leaves: arr.0(d2), arr.1.0(d3), arr.1.1(d3), empty(d1) = 4
	s := Measure(d)
	if s.Nodes != 6 {
		t.Errorf("Nodes = %d, want 6", s.Nodes)
	}
	if s.Leaves != 4 {
		t.Errorf("Leaves = %d, want 4", s.Leaves)
	}
	if s.Depth != 3 {
		t.Errorf("Depth = %d, want 3", s.Depth)
	}
	if want := (2 + 3 + 3 + 1) / 4.0; math.Abs(s.MeanDepth-want) > 1e-12 {
		t.Errorf("MeanDepth = %v, want %v", s.MeanDepth, want)
	}
	if s.String() == "" {
		t.Error("Stats.String empty")
	}
}

func TestMeasureAll(t *testing.T) {
	docs := []D{
		MustFromJSON(`{"a": 1}`),
		MustFromJSON(`{"a": {"b": {"c": 1}}}`),
	}
	s := MeasureAll(docs)
	if s.Depth != 3 {
		t.Errorf("Depth = %d, want 3", s.Depth)
	}
	if s.Nodes != 2 { // (1 + 3)/2 = 2
		t.Errorf("Nodes = %d, want 2", s.Nodes)
	}
	if s.Leaves != 2 {
		t.Errorf("Leaves = %d, want 2", s.Leaves)
	}
	if want := 2.0; s.MeanDepth != want { // leaves at depth 1 and 3
		t.Errorf("MeanDepth = %v, want %v", s.MeanDepth, want)
	}
	empty := MeasureAll(nil)
	if empty.Nodes != 0 || empty.MeanDepth != 0 {
		t.Errorf("MeasureAll(nil) = %+v", empty)
	}
}

func TestApproxSizePositiveAndMonotone(t *testing.T) {
	small := MustFromJSON(`{"a": 1}`)
	big := MustFromJSON(`{"a": 1, "b": "some longer string value", "c": [1,2,3,4,5], "d": {"x": 1.5}}`)
	ss, bs := ApproxSize(small), ApproxSize(big)
	if ss <= 0 || bs <= ss {
		t.Errorf("ApproxSize small=%d big=%d", ss, bs)
	}
	withExotic := D{"t": json.Number("12")}
	if ApproxSize(withExotic) <= 0 {
		t.Error("exotic size <= 0")
	}
}
