// Package document implements the JSON-like document model that underlies
// the datastore. A document is a tree of maps, slices, and scalar values,
// mirroring the BSON data model the Materials Project stores in MongoDB.
//
// The package provides deep path access using dotted notation
// ("output.final_energy", "elements.0"), deep copying, structural equality,
// canonical ordering, and the structure statistics (node count, maximum
// depth, mean leaf depth) reported in Table I of the paper.
package document

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// D is a document: the unit of storage in a collection. Keys map to scalar
// values (bool, int64, float64, string, nil), nested documents (D or
// map[string]any), or arrays ([]any).
type D map[string]any

// New returns an empty document.
func New() D { return D{} }

// FromJSON decodes a JSON object into a document. Numbers are decoded with
// json.Number and normalized: integral values become int64, others float64.
func FromJSON(data []byte) (D, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	var raw map[string]any
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("document: decode: %w", err)
	}
	return Normalize(raw).(map[string]any), nil
}

// MustFromJSON is FromJSON that panics on error; intended for tests and
// static fixtures.
func MustFromJSON(data string) D {
	d, err := FromJSON([]byte(data))
	if err != nil {
		panic(err)
	}
	return d
}

// ToJSON encodes the document as compact JSON with sorted keys (the
// encoding/json default for maps).
func (d D) ToJSON() ([]byte, error) {
	return json.Marshal(map[string]any(d))
}

// String renders the document as JSON, or a diagnostic on failure.
func (d D) String() string {
	b, err := d.ToJSON()
	if err != nil {
		return fmt.Sprintf("document<error: %v>", err)
	}
	return string(b)
}

// Normalize walks an arbitrary decoded JSON value and canonicalizes it:
// json.Number becomes int64 when integral and float64 otherwise; int, int32,
// uint, float32 and friends widen to int64/float64; maps become
// map[string]any and slices []any. Strings, bools and nil pass through.
func Normalize(v any) any {
	switch x := v.(type) {
	case nil, bool, string:
		return x
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return i
		}
		f, err := x.Float64()
		if err != nil {
			return x.String()
		}
		return f
	case int:
		return int64(x)
	case int8:
		return int64(x)
	case int16:
		return int64(x)
	case int32:
		return int64(x)
	case int64:
		return x
	case uint:
		return int64(x)
	case uint8:
		return int64(x)
	case uint16:
		return int64(x)
	case uint32:
		return int64(x)
	case uint64:
		if x > math.MaxInt64 {
			return float64(x)
		}
		return int64(x)
	case float32:
		return float64(x)
	case float64:
		return x
	case D:
		m := make(map[string]any, len(x))
		for k, v := range x {
			m[k] = Normalize(v)
		}
		return m
	case map[string]any:
		m := make(map[string]any, len(x))
		for k, v := range x {
			m[k] = Normalize(v)
		}
		return m
	case []any:
		s := make([]any, len(x))
		for i, v := range x {
			s[i] = Normalize(v)
		}
		return s
	case []string:
		s := make([]any, len(x))
		for i, v := range x {
			s[i] = v
		}
		return s
	case []int:
		s := make([]any, len(x))
		for i, v := range x {
			s[i] = int64(v)
		}
		return s
	case []float64:
		s := make([]any, len(x))
		for i, v := range x {
			s[i] = v
		}
		return s
	case []D:
		s := make([]any, len(x))
		for i, v := range x {
			s[i] = Normalize(v)
		}
		return s
	default:
		// Fall back to a JSON round trip for exotic types (structs etc.).
		b, err := json.Marshal(x)
		if err != nil {
			return fmt.Sprint(x)
		}
		dec := json.NewDecoder(strings.NewReader(string(b)))
		dec.UseNumber()
		var out any
		if err := dec.Decode(&out); err != nil {
			return fmt.Sprint(x)
		}
		return Normalize(out)
	}
}

// NormalizeDoc normalizes every value in d, returning a new document.
func NormalizeDoc(d D) D {
	return D(Normalize(map[string]any(d)).(map[string]any))
}

// Copy returns a deep copy of the document. Mutating the copy never
// affects the original.
func (d D) Copy() D {
	if d == nil {
		return nil
	}
	return D(copyValue(map[string]any(d)).(map[string]any))
}

// CopyValue returns a deep copy of an arbitrary document value: nested
// maps and arrays are duplicated, scalars returned as-is. Result caches
// use it so callers never alias a cached value.
func CopyValue(v any) any { return copyValue(v) }

func copyValue(v any) any {
	switch x := v.(type) {
	case map[string]any:
		m := make(map[string]any, len(x))
		for k, v := range x {
			m[k] = copyValue(v)
		}
		return m
	case D:
		m := make(map[string]any, len(x))
		for k, v := range x {
			m[k] = copyValue(v)
		}
		return m
	case []any:
		s := make([]any, len(x))
		for i, v := range x {
			s[i] = copyValue(v)
		}
		return s
	default:
		return x
	}
}

// splitPath splits a dotted path into segments. An empty path yields nil.
func splitPath(path string) []string {
	if path == "" {
		return nil
	}
	return strings.Split(path, ".")
}

// Get retrieves the value at a dotted path. Array elements are addressed
// by numeric segments ("sites.0.species"). The second result reports
// whether the full path resolved.
func (d D) Get(path string) (any, bool) {
	return getPath(map[string]any(d), splitPath(path))
}

func getPath(v any, segs []string) (any, bool) {
	if len(segs) == 0 {
		return v, true
	}
	seg, rest := segs[0], segs[1:]
	switch x := v.(type) {
	case map[string]any:
		child, ok := x[seg]
		if !ok {
			return nil, false
		}
		return getPath(child, rest)
	case D:
		child, ok := x[seg]
		if !ok {
			return nil, false
		}
		return getPath(child, rest)
	case []any:
		idx, err := strconv.Atoi(seg)
		if err != nil || idx < 0 || idx >= len(x) {
			return nil, false
		}
		return getPath(x[idx], rest)
	default:
		return nil, false
	}
}

// GetString returns the string at path, or "" if absent or not a string.
func (d D) GetString(path string) string {
	v, ok := d.Get(path)
	if !ok {
		return ""
	}
	s, _ := v.(string)
	return s
}

// GetFloat returns the numeric value at path widened to float64.
// The bool result is false if the path is missing or non-numeric.
func (d D) GetFloat(path string) (float64, bool) {
	v, ok := d.Get(path)
	if !ok {
		return 0, false
	}
	return AsFloat(v)
}

// GetInt returns the integer at path. Floats with integral values convert.
func (d D) GetInt(path string) (int64, bool) {
	v, ok := d.Get(path)
	if !ok {
		return 0, false
	}
	switch x := v.(type) {
	case int64:
		return x, true
	case float64:
		if x == math.Trunc(x) {
			return int64(x), true
		}
	}
	return 0, false
}

// GetArray returns the array at path, or nil if absent or not an array.
func (d D) GetArray(path string) []any {
	v, ok := d.Get(path)
	if !ok {
		return nil
	}
	a, _ := v.([]any)
	return a
}

// GetDoc returns the sub-document at path, or nil if absent / wrong type.
func (d D) GetDoc(path string) D {
	v, ok := d.Get(path)
	if !ok {
		return nil
	}
	switch m := v.(type) {
	case map[string]any:
		return D(m)
	case D:
		return m
	}
	return nil
}

// AsFloat widens any numeric value to float64.
func AsFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case int:
		return float64(x), true
	case float32:
		return float64(x), true
	}
	return 0, false
}

// Set stores a value at a dotted path, creating intermediate documents as
// needed. Numeric segments index into existing arrays; a numeric segment
// that points one past the end of an array appends. Setting through a
// scalar replaces it with a document.
func (d D) Set(path string, value any) error {
	segs := splitPath(path)
	if len(segs) == 0 {
		return fmt.Errorf("document: empty path")
	}
	return setPath(map[string]any(d), segs, Normalize(value))
}

func setPath(container any, segs []string, value any) error {
	seg, rest := segs[0], segs[1:]
	switch x := container.(type) {
	case map[string]any:
		if len(rest) == 0 {
			x[seg] = value
			return nil
		}
		child, ok := x[seg]
		if !ok || !isContainer(child) {
			child = nextContainer(rest[0])
			x[seg] = child
		}
		// Arrays are values in the map: setPath on a slice may need to grow
		// it, so re-store after the recursive call via pointer dance.
		if arr, isArr := child.([]any); isArr {
			newArr, err := setInArray(arr, rest, value)
			if err != nil {
				return err
			}
			x[seg] = newArr
			return nil
		}
		return setPath(child, rest, value)
	case []any:
		_, err := setInArray(x, segs, value)
		return err
	default:
		return fmt.Errorf("document: cannot descend into %T", container)
	}
}

func setInArray(arr []any, segs []string, value any) ([]any, error) {
	seg, rest := segs[0], segs[1:]
	idx, err := strconv.Atoi(seg)
	if err != nil || idx < 0 {
		return arr, fmt.Errorf("document: invalid array index %q", seg)
	}
	if idx > len(arr) {
		return arr, fmt.Errorf("document: array index %d out of range (len %d)", idx, len(arr))
	}
	if idx == len(arr) {
		arr = append(arr, nil)
	}
	if len(rest) == 0 {
		arr[idx] = value
		return arr, nil
	}
	child := arr[idx]
	if !isContainer(child) {
		child = nextContainer(rest[0])
		arr[idx] = child
	}
	if inner, isArr := child.([]any); isArr {
		newInner, err := setInArray(inner, rest, value)
		if err != nil {
			return arr, err
		}
		arr[idx] = newInner
		return arr, nil
	}
	return arr, setPath(child, rest, value)
}

func isContainer(v any) bool {
	switch v.(type) {
	case map[string]any, D, []any:
		return true
	}
	return false
}

// nextContainer chooses the container type for an intermediate path
// segment: an array if the next segment is numeric, else a document.
func nextContainer(nextSeg string) any {
	if _, err := strconv.Atoi(nextSeg); err == nil {
		return []any{}
	}
	return map[string]any{}
}

// Unset removes the value at a dotted path. Removing a missing path is a
// no-op. Unsetting an array element removes it and shifts later elements.
func (d D) Unset(path string) {
	segs := splitPath(path)
	if len(segs) == 0 {
		return
	}
	unsetPath(map[string]any(d), segs)
}

func unsetPath(container any, segs []string) {
	seg, rest := segs[0], segs[1:]
	switch x := container.(type) {
	case map[string]any:
		if len(rest) == 0 {
			delete(x, seg)
			return
		}
		child, ok := x[seg]
		if !ok {
			return
		}
		if arr, isArr := child.([]any); isArr {
			x[seg] = unsetInArray(arr, rest)
			return
		}
		unsetPath(child, rest)
	}
}

func unsetInArray(arr []any, segs []string) []any {
	seg, rest := segs[0], segs[1:]
	idx, err := strconv.Atoi(seg)
	if err != nil || idx < 0 || idx >= len(arr) {
		return arr
	}
	if len(rest) == 0 {
		return append(arr[:idx], arr[idx+1:]...)
	}
	child := arr[idx]
	if inner, isArr := child.([]any); isArr {
		arr[idx] = unsetInArray(inner, rest)
		return arr
	}
	unsetPath(child, rest)
	return arr
}

// Has reports whether the dotted path resolves.
func (d D) Has(path string) bool {
	_, ok := d.Get(path)
	return ok
}

// Equal reports deep structural equality of two values under the
// normalized data model. Numeric values compare by value across int64 and
// float64 (3 == 3.0), matching MongoDB semantics.
func Equal(a, b any) bool {
	return Compare(a, b) == 0
}

// typeRank orders values across types for sorting, loosely following the
// BSON comparison order: nil < numbers < strings < documents < arrays <
// booleans.
func typeRank(v any) int {
	switch v.(type) {
	case nil:
		return 0
	case int64, float64, int, float32:
		return 1
	case string:
		return 2
	case map[string]any, D:
		return 3
	case []any:
		return 4
	case bool:
		return 5
	default:
		return 6
	}
}

// Compare imposes a total order over normalized values: -1, 0, or +1.
// Values of different types order by type rank; numbers compare
// numerically across int64/float64.
func Compare(a, b any) int {
	ra, rb := typeRank(a), typeRank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0:
		return 0
	case 1:
		return compareNumbers(a, b)
	case 2:
		return strings.Compare(a.(string), b.(string))
	case 3:
		return compareDocs(toMap(a), toMap(b))
	case 4:
		return compareArrays(a.([]any), b.([]any))
	case 5:
		ba, bb := a.(bool), b.(bool)
		switch {
		case ba == bb:
			return 0
		case !ba:
			return -1
		}
		return 1
	default:
		sa, sb := fmt.Sprint(a), fmt.Sprint(b)
		return strings.Compare(sa, sb)
	}
}

// compareNumbers orders two numeric values exactly. int64/int pairs
// compare as integers, and mixed int64-vs-float64 comparisons avoid the
// lossy float64(int64) conversion, so integers beyond 2^53 do not collapse
// into their float neighbours. Pure float pairs keep float semantics
// (NaN compares equal to everything, as before).
func compareNumbers(a, b any) int {
	ia, aInt := asExactInt64(a)
	ib, bInt := asExactInt64(b)
	switch {
	case aInt && bInt:
		switch {
		case ia < ib:
			return -1
		case ia > ib:
			return 1
		}
		return 0
	case aInt:
		fb, _ := AsFloat(b)
		return -compareFloatInt(fb, ia)
	case bInt:
		fa, _ := AsFloat(a)
		return compareFloatInt(fa, ib)
	default:
		fa, _ := AsFloat(a)
		fb, _ := AsFloat(b)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	}
}

// asExactInt64 reports integer-typed values as int64 without loss.
func asExactInt64(v any) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case int:
		return int64(x), true
	}
	return 0, false
}

// compareFloatInt compares a float64 against an int64 exactly: -1 when
// f < i, +1 when f > i, 0 when numerically equal (or f is NaN, matching
// the float-pair behaviour).
func compareFloatInt(f float64, i int64) int {
	if math.IsNaN(f) {
		return 0
	}
	// 2^63 and -2^63 are exactly representable as float64.
	if f >= 9.223372036854775808e18 {
		return 1
	}
	if f < -9.223372036854775808e18 {
		return -1
	}
	tf := math.Trunc(f) // within int64 range, so the conversion is exact
	ti := int64(tf)
	switch {
	case ti < i:
		return -1
	case ti > i:
		return 1
	case f > tf: // equal integer parts, positive fraction
		return 1
	case f < tf: // equal integer parts, negative fraction
		return -1
	}
	return 0
}

func toMap(v any) map[string]any {
	switch m := v.(type) {
	case map[string]any:
		return m
	case D:
		return map[string]any(m)
	}
	return nil
}

func compareDocs(a, b map[string]any) int {
	ka := sortedKeys(a)
	kb := sortedKeys(b)
	for i := 0; i < len(ka) && i < len(kb); i++ {
		if c := strings.Compare(ka[i], kb[i]); c != 0 {
			return c
		}
		if c := Compare(a[ka[i]], b[kb[i]]); c != 0 {
			return c
		}
	}
	switch {
	case len(ka) < len(kb):
		return -1
	case len(ka) > len(kb):
		return 1
	}
	return 0
}

func compareArrays(a, b []any) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Merge performs a shallow merge of other into d: top-level keys of other
// overwrite those of d. Values are deep-copied from other.
func (d D) Merge(other D) {
	for k, v := range other {
		d[k] = copyValue(v)
	}
}

// Flatten returns a map from dotted leaf path to leaf value. Arrays
// contribute numeric path segments. Empty documents/arrays appear as
// themselves at their path.
func (d D) Flatten() map[string]any {
	out := make(map[string]any)
	flattenInto(out, "", map[string]any(d))
	return out
}

func flattenInto(out map[string]any, prefix string, v any) {
	join := func(seg string) string {
		if prefix == "" {
			return seg
		}
		return prefix + "." + seg
	}
	switch x := v.(type) {
	case map[string]any:
		if len(x) == 0 && prefix != "" {
			out[prefix] = x
			return
		}
		for k, child := range x {
			flattenInto(out, join(k), child)
		}
	case D:
		flattenInto(out, prefix, map[string]any(x))
	case []any:
		if len(x) == 0 && prefix != "" {
			out[prefix] = x
			return
		}
		for i, child := range x {
			flattenInto(out, join(strconv.Itoa(i)), child)
		}
	default:
		out[prefix] = x
	}
}
