package document

import "fmt"

// Stats summarizes the structural complexity of a document tree, in the
// form reported by Table I of the paper: total node count, maximum depth,
// and mean depth of the leaves.
//
// Counting convention: the root document is depth 0 and is not itself a
// node. Every key/value pair and every array element is one node; interior
// nodes (sub-documents and arrays) count in Nodes but only leaves
// contribute to MeanDepth. A leaf at the top level has depth 1.
type Stats struct {
	Nodes     int     // total nodes (interior + leaf)
	Leaves    int     // leaf nodes (scalars, empty containers)
	Depth     int     // maximum leaf depth
	MeanDepth float64 // mean depth over leaves
}

// String formats the stats in the style of Table I.
func (s Stats) String() string {
	return fmt.Sprintf("Nodes: %d  Depth: %d  Mean depth: %.1f", s.Nodes, s.Depth, s.MeanDepth)
}

// Measure computes structure statistics for a single document.
func Measure(d D) Stats {
	var s Stats
	var depthSum int
	measureValue(map[string]any(d), 0, &s, &depthSum)
	if s.Leaves > 0 {
		s.MeanDepth = float64(depthSum) / float64(s.Leaves)
	}
	return s
}

func measureValue(v any, depth int, s *Stats, depthSum *int) {
	switch x := v.(type) {
	case map[string]any:
		if len(x) == 0 && depth > 0 {
			s.Leaves++
			*depthSum += depth
			if depth > s.Depth {
				s.Depth = depth
			}
			return
		}
		for _, child := range x {
			s.Nodes++
			measureValue(child, depth+1, s, depthSum)
		}
	case D:
		measureValue(map[string]any(x), depth, s, depthSum)
	case []any:
		if len(x) == 0 && depth > 0 {
			s.Leaves++
			*depthSum += depth
			if depth > s.Depth {
				s.Depth = depth
			}
			return
		}
		for _, child := range x {
			s.Nodes++
			measureValue(child, depth+1, s, depthSum)
		}
	default:
		s.Leaves++
		*depthSum += depth
		if depth > s.Depth {
			s.Depth = depth
		}
	}
}

// MeasureAll aggregates structure statistics across a set of documents:
// Nodes and Depth are per-document maxima averaged/na; specifically, Nodes
// is the mean node count rounded to nearest, Depth the maximum depth seen,
// and MeanDepth the leaf-depth mean pooled over all documents. This
// matches Table I, which characterizes a collection by a representative
// document shape.
func MeasureAll(docs []D) Stats {
	var agg Stats
	var depthSum float64
	var totalLeaves int
	var totalNodes int
	for _, d := range docs {
		s := Measure(d)
		totalNodes += s.Nodes
		totalLeaves += s.Leaves
		depthSum += s.MeanDepth * float64(s.Leaves)
		if s.Depth > agg.Depth {
			agg.Depth = s.Depth
		}
	}
	if len(docs) > 0 {
		agg.Nodes = (totalNodes + len(docs)/2) / len(docs)
	}
	agg.Leaves = totalLeaves
	if totalLeaves > 0 {
		agg.MeanDepth = depthSum / float64(totalLeaves)
	}
	return agg
}

// ApproxSize estimates the serialized byte size of a document without
// allocating the JSON encoding. Used for collection storage accounting.
func ApproxSize(d D) int {
	return approxSizeValue(map[string]any(d))
}

func approxSizeValue(v any) int {
	switch x := v.(type) {
	case nil:
		return 4
	case bool:
		return 5
	case int64:
		return 8
	case float64:
		return 12
	case string:
		return len(x) + 2
	case map[string]any:
		n := 2
		for k, child := range x {
			n += len(k) + 3 + approxSizeValue(child)
		}
		return n
	case D:
		return approxSizeValue(map[string]any(x))
	case []any:
		n := 2
		for _, child := range x {
			n += 1 + approxSizeValue(child)
		}
		return n
	default:
		return len(fmt.Sprint(x))
	}
}
