package document

import (
	"encoding/json"
	"testing"
)

// FuzzDocumentPath exercises dotted-path traversal — Get, Set, Unset,
// Has — with arbitrary documents, paths, and values. The invariants:
// nothing panics, Get is a pure read, a successful Set is visible to Get
// at the same path with an Equal value, and none of it disturbs the
// original document (all mutation happens on a copy).
func FuzzDocumentPath(f *testing.F) {
	seeds := [][3]string{
		{`{"a": {"b": {"c": 1}}}`, "a.b.c", `2`},
		{`{"a": {"b": 1}}`, "a.x.y", `"deep"`},
		{`{"elements": ["Li", "O"]}`, "elements.1", `"Fe"`},
		{`{"tasks": [{"state": "ok"}]}`, "tasks.0.state", `"failed"`},
		{`{}`, "brand.new.path", `{"nested": true}`},
		{`{"a": 5}`, "a.b", `1`},
		{`{"a": [1, [2, 3]]}`, "a.1.0", `9`},
		{`{"x": null}`, "x", `[1, 2]`},
		{`{"": {"": 1}}`, ".", `3`},
		{`{"a": {"b": 2}}`, "a..b", `4`},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1], s[2])
	}
	f.Fuzz(func(t *testing.T, docJSON, path, valJSON string) {
		d, err := FromJSON([]byte(docJSON))
		if err != nil {
			t.Skip()
		}
		var val any
		if err := json.Unmarshal([]byte(valJSON), &val); err != nil {
			val = valJSON
		}
		val = Normalize(val)
		orig := d.Copy()

		v1, ok1 := d.Get(path)
		v2, ok2 := d.Get(path)
		if ok1 != ok2 || (ok1 && !Equal(v1, v2)) {
			t.Fatalf("Get(%q) not deterministic on %s", path, docJSON)
		}
		if d.Has(path) != ok1 {
			t.Fatalf("Has(%q) disagrees with Get on %s", path, docJSON)
		}

		cp := d.Copy()
		if err := cp.Set(path, val); err == nil {
			got, ok := cp.Get(path)
			if !ok {
				t.Fatalf("Set(%q, %v) succeeded on %s but Get cannot see it", path, val, docJSON)
			}
			if !Equal(got, val) {
				t.Fatalf("Set/Get mismatch at %q on %s: put %v, got %v", path, docJSON, val, got)
			}
			cp.Unset(path) // must not panic regardless of shape
		}

		if !Equal(d, orig) {
			t.Fatalf("original document mutated by reads/copy-writes: %s -> %v", docJSON, d)
		}
	})
}
