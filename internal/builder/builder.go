// Package builder implements the post-processing tier of the pipeline
// (§III-B3, §IV-C): loading raw run logs from HPC staging directories
// into the tasks collection, reducing tasks into the materials
// collection ("a 'best' materials summary derived from the tasks"), the
// thermodynamic stability annotation, and the MapReduce-shaped
// validation & verification framework (§IV-C2). Everything runs against
// the same datastore the workflow engine and web tier use — the paper's
// one-store-four-roles architecture.
package builder

import (
	"fmt"
	"sort"

	"matproj/internal/crystal"
	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/mapreduce"
)

// Engine selects which MapReduce implementation a builder runs on.
type Engine int

const (
	// EngineBuiltin uses the datastore's single-threaded MapReduce
	// (MongoDB's JavaScript engine in the paper).
	EngineBuiltin Engine = iota
	// EngineParallel uses the Hadoop-style multi-worker engine —
	// "several times faster" per §IV-B2.
	EngineParallel
)

// MaterialsCollection is where built materials land.
const MaterialsCollection = "materials"

// MaterialsBuilder reduces the tasks collection into the materials
// collection: successful tasks are grouped by canonical crystal identity
// (structure_id) and the lowest-energy task of each group becomes the
// material of record. The material document aggregates the initial
// (as-submitted) and final (relaxed) structures plus the summary
// properties the dissemination tier serves.
type MaterialsBuilder struct {
	Store *datastore.Store
	// Engine picks the grouping implementation; EngineBuiltin by default.
	Engine Engine
	// Workers bounds parallel-engine map workers (0 = GOMAXPROCS).
	Workers int
}

// bestTask is the per-group reduction value: the id and energy of the
// lowest-energy successful task seen so far.
func taskMapper(t document.D, emit func(string, any)) {
	if t.GetString("state") != "successful" {
		return
	}
	sid := t.GetString("result.structure_id")
	if sid == "" {
		return
	}
	epa, ok := t.GetFloat("result.energy_per_atom")
	if !ok {
		return
	}
	id, _ := t["_id"].(string)
	emit(sid, map[string]any{"task_id": id, "energy_per_atom": epa, "n": int64(1)})
}

func taskReducer(_ string, vs []any) any {
	var best map[string]any
	var bestE float64
	var n int64
	for _, v := range vs {
		m, ok := v.(map[string]any)
		if !ok {
			continue
		}
		e, _ := document.AsFloat(m["energy_per_atom"])
		if c, ok := document.AsFloat(m["n"]); ok {
			n += int64(c)
		} else {
			n++
		}
		if best == nil || e < bestE {
			best, bestE = m, e
		}
	}
	if best == nil {
		return nil
	}
	return map[string]any{
		"task_id":         best["task_id"],
		"energy_per_atom": bestE,
		"n":               n,
	}
}

// Build rebuilds the materials collection from scratch and returns the
// number of materials produced.
func (b *MaterialsBuilder) Build() (int, error) {
	if b.Store == nil {
		return 0, fmt.Errorf("builder: MaterialsBuilder needs a store")
	}
	tasks := b.Store.C("tasks")
	var groups []document.D
	var err error
	switch b.Engine {
	case EngineParallel:
		groups, err = mapreduce.RunCollection(tasks, nil, taskMapper, taskReducer,
			mapreduce.Config{MapWorkers: b.Workers})
	default:
		groups, err = tasks.MapReduce(nil, taskMapper, taskReducer)
	}
	if err != nil {
		return 0, err
	}

	mats := b.Store.C(MaterialsCollection)
	if _, err := mats.Remove(nil); err != nil {
		return 0, err
	}
	mats.EnsureIndex("pretty_formula")
	mats.EnsureIndex("elements")
	mats.EnsureIndex("band_gap")
	mats.EnsureIndex("nelectrons")

	// Deterministic build order regardless of engine.
	sort.Slice(groups, func(i, j int) bool {
		return groups[i].GetString("_id") < groups[j].GetString("_id")
	})

	mps := b.Store.C("mps")
	built := 0
	for _, g := range groups {
		sid := g.GetString("_id")
		taskID := g.GetString("value.task_id")
		if sid == "" || taskID == "" {
			continue
		}
		task, err := tasks.FindID(taskID)
		if err != nil {
			return built, fmt.Errorf("builder: best task %q for %q: %w", taskID, sid, err)
		}
		doc, err := b.materialDoc(sid, task, mps)
		if err != nil {
			return built, err
		}
		// All task ids of the group, for provenance ("the materials
		// collection is derived and can be rebuilt at any time").
		ids, mpsIDs, err := groupProvenance(tasks, sid)
		if err != nil {
			return built, err
		}
		doc["task_ids"] = ids
		doc["ntasks"] = int64(len(ids))
		doc["mps_ids"] = mpsIDs
		if _, err := mats.Insert(doc); err != nil {
			return built, err
		}
		built++
	}
	return built, nil
}

// groupProvenance lists the successful task ids and distinct source MPS
// records behind one material.
func groupProvenance(tasks *datastore.Collection, sid string) ([]any, []any, error) {
	docs, err := tasks.FindAll(document.D{
		"result.structure_id": sid, "state": "successful"}, &datastore.FindOpts{Sort: []string{"_id"}})
	if err != nil {
		return nil, nil, err
	}
	ids := make([]any, 0, len(docs))
	seen := map[string]bool{}
	var mpsIDs []any
	for _, d := range docs {
		ids = append(ids, d["_id"])
		if m := d.GetString("result.mps_id"); m != "" && !seen[m] {
			seen[m] = true
			mpsIDs = append(mpsIDs, m)
		}
	}
	return ids, mpsIDs, nil
}

// materialDoc assembles one material document from its best task plus
// the originating MPS record (for the initial structure).
func (b *MaterialsBuilder) materialDoc(sid string, task document.D, mps *datastore.Collection) (document.D, error) {
	res := task.GetDoc("result")
	if res == nil {
		return nil, fmt.Errorf("builder: task %v has no result", task["_id"])
	}
	formula := res.GetString("formula")
	doc := document.D{
		"_id":          "mat-" + sid,
		"structure_id": sid,
		"formula":      formula,
		"functional":   res.GetString("functional"),
		"best_task_id": task["_id"],
		"task_type":    res.GetString("task_type"),
	}
	if comp, err := crystal.ParseFormula(formula); err == nil {
		doc["pretty_formula"] = comp.ReducedFormula()
		elems := comp.Elements()
		elemsAny := make([]any, len(elems))
		for i, e := range elems {
			elemsAny[i] = e
		}
		doc["elements"] = elemsAny
		doc["nelements"] = int64(len(elems))
	} else {
		doc["pretty_formula"] = formula
	}
	if v, ok := res.GetFloat("final_energy"); ok {
		doc["final_energy"] = v
	}
	if v, ok := res.GetFloat("energy_per_atom"); ok {
		doc["e_per_atom"] = v
	}
	if v, ok := res.GetFloat("bandgap"); ok {
		doc["band_gap"] = v
	}
	if v, ok := res.GetFloat("max_force"); ok {
		doc["max_force"] = v
	}
	if v, ok := res.GetFloat("nelectrons"); ok {
		doc["nelectrons"] = v
	}
	// Final (relaxed) structure from the task, with derived geometry.
	if stDoc := res.GetDoc("structure"); stDoc != nil {
		doc["structure"] = map[string]any(stDoc.Copy())
		if st, err := crystal.StructureFromDoc(stDoc); err == nil {
			doc["nsites"] = int64(st.NumSites())
			doc["density"] = st.Density()
		}
	}
	// Initial structure from the source MPS record — the materials view
	// aggregates initial+final structures (Table I: materials out-node
	// MPS).
	if mpsID := res.GetString("mps_id"); mpsID != "" {
		if src, err := mps.FindID(mpsID); err == nil {
			if stDoc := src.GetDoc("structure"); stDoc != nil {
				doc["initial_structure"] = map[string]any(stDoc.Copy())
			}
		}
	}
	return doc, nil
}
