package builder

import (
	"os"
	"path/filepath"
	"testing"

	"matproj/internal/datastore"
	"matproj/internal/dft"
	"matproj/internal/document"
	"matproj/internal/icsd"
)

// seedTasks inserts a small tasks+mps fixture: two structures, one with
// a redetermination (two successful tasks, different energies) plus one
// failed task that must be ignored.
func seedTasks(t *testing.T, store *datastore.Store) {
	t.Helper()
	mps := store.C("mps")
	for _, r := range icsd.Generate(icsd.Config{Seed: 11}, 2) {
		if _, err := mps.Insert(r.ToDoc()); err != nil {
			t.Fatal(err)
		}
	}
	mpsDocs, err := mps.FindAll(nil, &datastore.FindOpts{Sort: []string{"_id"}})
	if err != nil || len(mpsDocs) != 2 {
		t.Fatalf("mps fixture: %v (%d docs)", err, len(mpsDocs))
	}
	tasks := store.C("tasks")
	type row struct {
		mpsIdx int
		sid    string
		energy float64
		state  string
	}
	rows := []row{
		{0, "s-alpha", -12.0, "successful"},
		{0, "s-alpha", -14.0, "successful"}, // redetermination, lower energy wins
		{1, "s-beta", -9.0, "successful"},
		{1, "s-beta", 0, "failed"},
	}
	for _, r := range rows {
		src := mpsDocs[r.mpsIdx]
		doc := document.D{
			"state": r.state,
			"result": map[string]any{
				"mps_id":          src["_id"],
				"structure_id":    r.sid,
				"task_type":       "relax",
				"formula":         src["formula"],
				"functional":      "GGA",
				"converged":       r.state == "successful",
				"final_energy":    r.energy,
				"energy_per_atom": r.energy / 4,
				"bandgap":         1.25,
				"nelectrons":      42.0,
				"max_force":       0.01,
				"structure":       src["structure"],
			},
		}
		if r.state == "failed" {
			delete(doc.GetDoc("result"), "final_energy")
			delete(doc.GetDoc("result"), "energy_per_atom")
		}
		if _, err := tasks.Insert(doc); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMaterialsBuilderPicksBestTask(t *testing.T) {
	for _, eng := range []Engine{EngineBuiltin, EngineParallel} {
		store := datastore.MustOpenMemory()
		seedTasks(t, store)
		mb := &MaterialsBuilder{Store: store, Engine: eng}
		n, err := mb.Build()
		if err != nil {
			t.Fatal(err)
		}
		if n != 2 {
			t.Fatalf("engine %v: built %d materials, want 2", eng, n)
		}
		alpha, err := store.C(MaterialsCollection).FindID("mat-s-alpha")
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		if e, _ := alpha.GetFloat("final_energy"); e != -14.0 {
			t.Errorf("engine %v: best energy %v, want -14", eng, e)
		}
		if ntasks, _ := alpha.GetInt("ntasks"); ntasks != 2 {
			t.Errorf("engine %v: ntasks %d, want 2", eng, ntasks)
		}
		if alpha.GetString("pretty_formula") == "" {
			t.Errorf("engine %v: missing pretty_formula", eng)
		}
		if !alpha.Has("structure") || !alpha.Has("initial_structure") {
			t.Errorf("engine %v: material must carry final and initial structures", eng)
		}
		if _, ok := alpha.GetFloat("e_per_atom"); !ok {
			t.Errorf("engine %v: missing e_per_atom", eng)
		}
	}
}

func TestMaterialsBuilderRebuildIsIdempotent(t *testing.T) {
	store := datastore.MustOpenMemory()
	seedTasks(t, store)
	mb := &MaterialsBuilder{Store: store, Engine: EngineParallel}
	if _, err := mb.Build(); err != nil {
		t.Fatal(err)
	}
	n, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := store.C(MaterialsCollection).Count(nil)
	if got != n || n != 2 {
		t.Fatalf("rebuild: count %d, returned %d, want 2", got, n)
	}
}

func TestStabilityBuilderAnnotates(t *testing.T) {
	store := datastore.MustOpenMemory()
	seedTasks(t, store)
	if _, err := (&MaterialsBuilder{Store: store}).Build(); err != nil {
		t.Fatal(err)
	}
	sb := &StabilityBuilder{Store: store, RefEnergy: dft.ElementalEnergy}
	annotated, skipped, err := sb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if annotated == 0 {
		t.Fatalf("annotated %d materials (skipped %d)", annotated, skipped)
	}
	docs, err := store.C(MaterialsCollection).FindAll(document.D{"e_above_hull": document.D{"$exists": true}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != annotated {
		t.Fatalf("%d docs carry e_above_hull, want %d", len(docs), annotated)
	}
	for _, d := range docs {
		eah, _ := d.GetFloat("e_above_hull")
		if eah < 0 {
			t.Errorf("material %v: negative e_above_hull %v", d["_id"], eah)
		}
		if !d.Has("formation_energy_per_atom") || !d.Has("is_stable") {
			t.Errorf("material %v missing stability fields", d["_id"])
		}
	}
}

func TestRunnerReportsViolationsAndFilesReports(t *testing.T) {
	store := datastore.MustOpenMemory()
	seedTasks(t, store)
	if _, err := (&MaterialsBuilder{Store: store}).Build(); err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Store: store}
	checks := StandardChecks(store)
	violations, err := runner.RunChecks(checks)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("clean fixture produced violations: %+v", violations)
	}
	nReports, _ := store.C(ReportsCollection).Count(nil)
	if nReports != len(checks) {
		t.Fatalf("reports %d, want %d", nReports, len(checks))
	}

	// Now break an invariant: a successful task without energies.
	if _, err := store.C("tasks").Insert(document.D{
		"_id": "task-broken", "state": "successful",
		"result": map[string]any{"structure_id": "s-broken"},
	}); err != nil {
		t.Fatal(err)
	}
	violations, err = runner.RunChecks(checks)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range violations {
		if v.Check == "tasks-successful-complete" && v.Key == "task-broken" {
			found = true
		}
	}
	if !found {
		t.Fatalf("broken task not flagged; got %+v", violations)
	}
}

func TestLoaderIncrementalAndIdempotent(t *testing.T) {
	dir := t.TempDir()
	// Generate a real raw run log with the DFT simulator.
	rec := icsd.Generate(icsd.Config{Seed: 3}, 1)[0]
	res, err := dft.Run(rec.Structure, dft.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "run-000001.outcar"), res.Outcar, 0o644); err != nil {
		t.Fatal(err)
	}
	meta := []byte(`{"mps_id": "` + rec.ID + `", "structure_id": "sid-1", "task_type": "relax"}`)
	if err := os.WriteFile(filepath.Join(dir, "run-000001.meta.json"), meta, 0o644); err != nil {
		t.Fatal(err)
	}
	// A garbage file must land in Failed without aborting the pass.
	if err := os.WriteFile(filepath.Join(dir, "garbage.outcar"), []byte("not a run log"), 0o644); err != nil {
		t.Fatal(err)
	}

	store := datastore.MustOpenMemory()
	loader := &Loader{Store: store, Dir: dir}
	lr, err := loader.Run()
	if err != nil {
		t.Fatal(err)
	}
	if lr.Loaded != 1 || lr.Skipped != 0 || len(lr.Failed) != 1 {
		t.Fatalf("first pass: %+v", lr)
	}
	task, err := store.C("tasks").FindOne(document.D{"loaded_from": "run-000001"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if task.GetString("result.mps_id") != rec.ID {
		t.Errorf("sidecar metadata not merged: %v", task.GetDoc("result"))
	}

	lr, err = loader.Run()
	if err != nil {
		t.Fatal(err)
	}
	if lr.Loaded != 0 || lr.Skipped != 1 {
		t.Fatalf("second pass should skip: %+v", lr)
	}
	n, _ := store.C("tasks").Count(document.D{"loaded_from": "run-000001"})
	if n != 1 {
		t.Fatalf("double-loaded: %d", n)
	}
}
