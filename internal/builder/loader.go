package builder

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"matproj/internal/datastore"
	"matproj/internal/dft"
	"matproj/internal/document"
)

// Loader implements the §IV-C1 data-loading pass: worker nodes cannot
// connect out to the database server, so raw run logs accumulate on the
// HPC filesystem (written by VASPAssembler's StagingDir mode) and a
// periodic pass on midrange resources parses, reduces, and loads them
// into the tasks collection. Loading is incremental and idempotent:
// each file is keyed by its stem, and already-loaded stems are skipped,
// so a crashed or repeated pass never double-loads.
type Loader struct {
	Store *datastore.Store
	// Dir is the staging directory of <stem>.outcar (+ optional
	// <stem>.meta.json sidecar) files.
	Dir string
}

// LoadResult summarizes one loading pass.
type LoadResult struct {
	Loaded  int
	Skipped int
	// Failed lists files that could not be parsed; they are left in
	// place for manual inspection.
	Failed []string
}

// Run performs one incremental loading pass.
func (l *Loader) Run() (LoadResult, error) {
	var res LoadResult
	if l.Store == nil || l.Dir == "" {
		return res, fmt.Errorf("builder: Loader needs Store and Dir")
	}
	matches, err := filepath.Glob(filepath.Join(l.Dir, "*.outcar"))
	if err != nil {
		return res, err
	}
	sort.Strings(matches)
	tasks := l.Store.C("tasks")
	tasks.EnsureIndex("loaded_from")
	for _, path := range matches {
		stem := strings.TrimSuffix(filepath.Base(path), ".outcar")
		n, err := tasks.Count(document.D{"loaded_from": stem})
		if err != nil {
			return res, err
		}
		if n > 0 {
			res.Skipped++
			continue
		}
		doc, err := l.parseOne(path, stem)
		if err != nil {
			res.Failed = append(res.Failed, filepath.Base(path))
			continue
		}
		if _, err := tasks.Insert(doc); err != nil {
			return res, err
		}
		res.Loaded++
	}
	return res, nil
}

// parseOne reduces one raw run log (plus sidecar metadata) to a task
// document.
func (l *Loader) parseOne(path, stem string) (document.D, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sum, err := dft.ParseOutcar(raw)
	if err != nil {
		return nil, err
	}
	state := "successful"
	failure := ""
	if sum.Code != dft.OK {
		state = "failed"
		failure = string(sum.Code)
	}
	result := document.D{
		"formula":         sum.Formula,
		"functional":      sum.Functional,
		"converged":       sum.Code == dft.OK,
		"code":            string(sum.Code),
		"scf_steps":       int64(sum.SCFSteps),
		"nelectrons":      sum.NElectrons,
		"elapsed_s":       sum.ElapsedSec,
		"raw_output_size": int64(len(raw)),
	}
	if sum.Code == dft.OK {
		result["final_energy"] = sum.FinalEnergy
		result["energy_per_atom"] = sum.EnergyPA
		result["bandgap"] = sum.Bandgap
		result["max_force"] = sum.MaxForce
	}
	// Sidecar metadata carries the workflow identifiers the raw log
	// cannot (mps_id, structure_id, task_type).
	if meta, err := os.ReadFile(filepath.Join(l.Dir, stem+".meta.json")); err == nil {
		md, err := document.FromJSON(meta)
		if err != nil {
			return nil, fmt.Errorf("builder: sidecar for %s: %w", stem, err)
		}
		for _, k := range []string{"mps_id", "structure_id", "task_type"} {
			if v, ok := md.Get(k); ok {
				result[k] = v
			}
		}
	}
	return document.D{
		"state":       state,
		"failure":     failure,
		"loaded_from": stem,
		"runtime_s":   sum.ElapsedSec,
		"result":      map[string]any(result),
	}, nil
}
