package builder

import (
	"fmt"
	"sort"
	"strings"

	"matproj/internal/analysis"
	"matproj/internal/crystal"
	"matproj/internal/datastore"
	"matproj/internal/document"
)

// StabilityBuilder annotates every material with its thermodynamic
// stability: formation energy per atom and energy above the convex hull
// of its chemical system ("to determine the stability and ... synthesis
// potential of the new materials"). Materials on the hull are marked
// is_stable.
type StabilityBuilder struct {
	Store *datastore.Store
	// RefEnergy supplies the elemental reference energy per atom
	// (dft.ElementalEnergy in production).
	RefEnergy func(symbol string) float64
}

// Build annotates all materials and returns (annotated, skipped). A
// material is skipped when its formula cannot be parsed or its hull
// position cannot be computed.
func (sb *StabilityBuilder) Build() (int, int, error) {
	if sb.Store == nil || sb.RefEnergy == nil {
		return 0, 0, fmt.Errorf("builder: StabilityBuilder needs Store and RefEnergy")
	}
	mats := sb.Store.C(MaterialsCollection)
	docs, err := mats.FindAll(nil, &datastore.FindOpts{Sort: []string{"_id"}})
	if err != nil {
		return 0, 0, err
	}

	// Group materials into chemical systems; each system gets its own
	// phase diagram with elemental references synthesized from RefEnergy.
	type member struct {
		id    string
		entry analysis.Entry
	}
	systems := map[string][]member{}
	skipped := 0
	for _, m := range docs {
		id, _ := m["_id"].(string)
		comp, err := crystal.ParseFormula(m.GetString("formula"))
		if err != nil || comp.NumAtoms() == 0 {
			skipped++
			continue
		}
		energy, ok := m.GetFloat("final_energy")
		if !ok {
			skipped++
			continue
		}
		elems := comp.Elements()
		sort.Strings(elems)
		key := strings.Join(elems, "-")
		systems[key] = append(systems[key], member{
			id:    id,
			entry: analysis.Entry{ID: id, Composition: comp, Energy: energy},
		})
	}

	annotated := 0
	keys := make([]string, 0, len(systems))
	for k := range systems {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		members := systems[key]
		entries := make([]analysis.Entry, 0, len(members)+4)
		for _, m := range members {
			entries = append(entries, m.entry)
		}
		for _, el := range strings.Split(key, "-") {
			entries = append(entries, analysis.Entry{
				ID:          "ref-" + el,
				Composition: crystal.Composition{el: 1},
				Energy:      sb.RefEnergy(el),
			})
		}
		pd, err := analysis.NewPhaseDiagram(entries)
		if err != nil {
			skipped += len(members)
			continue
		}
		for _, m := range members {
			eah, err := pd.EAboveHull(m.entry)
			if err != nil {
				skipped++
				continue
			}
			ef := pd.FormationEnergyPerAtom(m.entry)
			if _, err := mats.UpdateOne(document.D{"_id": m.id},
				document.D{"$set": document.D{
					"formation_energy_per_atom": ef,
					"e_above_hull":              eah,
					"is_stable":                 eah <= 1e-8,
				}}); err != nil {
				return annotated, skipped, err
			}
			annotated++
		}
	}
	return annotated, skipped, nil
}
