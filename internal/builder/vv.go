package builder

import (
	"fmt"
	"sort"

	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/fireworks"
	"matproj/internal/mapreduce"
)

// The paper's §IV-C2: "a MapReduce-style framework ... to run
// validation and verification (V&V) checks over the data". Each Check
// scans one collection document-by-document; the Runner executes checks
// on the parallel MapReduce engine and files a report per check into the
// vv_reports collection, so the V&V history is itself queryable data in
// the same store.

// ReportsCollection receives one report document per executed check.
const ReportsCollection = "vv_reports"

// Check is one V&V rule over a collection.
type Check struct {
	Name       string
	Collection string
	// Filter restricts which documents the check scans (nil = all).
	Filter document.D
	// Validate returns human-readable violation messages for one
	// document (empty = clean). It must be safe for concurrent calls.
	Validate func(doc document.D) []string
}

// Violation is one failed rule on one document.
type Violation struct {
	Check      string
	Collection string
	Key        string // offending document id
	Message    string
}

// Runner executes checks and files reports.
type Runner struct {
	Store *datastore.Store
	// Workers bounds the MapReduce map workers (0 = GOMAXPROCS).
	Workers int
}

// RunChecks executes every check and returns all violations, sorted by
// (check, key). A report document per check is inserted into vv_reports
// regardless of outcome.
func (r *Runner) RunChecks(checks []Check) ([]Violation, error) {
	if r.Store == nil {
		return nil, fmt.Errorf("builder: Runner needs a store")
	}
	reports := r.Store.C(ReportsCollection)
	var out []Violation
	for _, ck := range checks {
		if ck.Validate == nil {
			return nil, fmt.Errorf("builder: check %q has no Validate func", ck.Name)
		}
		docs, err := r.Store.C(ck.Collection).FindAll(ck.Filter, nil)
		if err != nil {
			return nil, err
		}
		check := ck // capture
		groups := mapreduce.Run(docs, func(d document.D, emit func(string, any)) {
			id, _ := d["_id"].(string)
			for _, msg := range check.Validate(d) {
				emit(id, msg)
			}
		}, func(_ string, vs []any) any {
			return vs
		}, mapreduce.Config{MapWorkers: r.Workers, DisableCombiner: true})

		nViol := 0
		for _, g := range groups {
			for _, msg := range flattenMessages(g.Value) {
				out = append(out, Violation{
					Check:      ck.Name,
					Collection: ck.Collection,
					Key:        g.Key,
					Message:    msg,
				})
				nViol++
			}
		}
		if _, err := reports.Insert(document.D{
			"check":      ck.Name,
			"collection": ck.Collection,
			"scanned":    int64(len(docs)),
			"violations": int64(nViol),
		}); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Check != out[j].Check {
			return out[i].Check < out[j].Check
		}
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}

// flattenMessages unpacks the reduce value: either a single message or a
// slice of them (the reducer is skipped for single-value groups).
func flattenMessages(v any) []string {
	switch x := v.(type) {
	case string:
		return []string{x}
	case []any:
		var out []string
		for _, e := range x {
			out = append(out, flattenMessages(e)...)
		}
		return out
	default:
		return nil
	}
}

// StandardChecks returns the stock V&V suite over a deployment's
// collections: internal consistency of tasks, materials, workflow
// state, and source records. A freshly built deployment passes clean.
func StandardChecks(store *datastore.Store) []Check {
	fwStates := map[string]bool{
		string(fireworks.StateWaiting):   true,
		string(fireworks.StateReady):     true,
		string(fireworks.StateRunning):   true,
		string(fireworks.StateCompleted): true,
		string(fireworks.StateFizzled):   true,
		string(fireworks.StateDefused):   true,
	}
	return []Check{
		{
			Name:       "tasks-successful-complete",
			Collection: "tasks",
			Filter:     document.D{"state": "successful"},
			Validate: func(d document.D) []string {
				var v []string
				if _, ok := d.GetFloat("result.final_energy"); !ok {
					v = append(v, "successful task lacks result.final_energy")
				}
				if _, ok := d.GetFloat("result.energy_per_atom"); !ok {
					v = append(v, "successful task lacks result.energy_per_atom")
				}
				if conv, ok := d.Get("result.converged"); ok {
					if b, isBool := conv.(bool); isBool && !b {
						v = append(v, "successful task reports converged=false")
					}
				}
				return v
			},
		},
		{
			Name:       "tasks-state-enum",
			Collection: "tasks",
			Validate: func(d document.D) []string {
				if s := d.GetString("state"); s != "successful" && s != "failed" {
					return []string{fmt.Sprintf("unknown task state %q", s)}
				}
				return nil
			},
		},
		{
			Name:       "engines-state-machine",
			Collection: fireworks.EnginesCollection,
			Validate: func(d document.D) []string {
				var v []string
				state := d.GetString("state")
				if !fwStates[state] {
					v = append(v, fmt.Sprintf("unknown firework state %q", state))
				}
				if state == string(fireworks.StateCompleted) && !d.Has("output") {
					v = append(v, "COMPLETED firework has no output")
				}
				if state == string(fireworks.StateRunning) && d.GetString("worker") == "" {
					v = append(v, "RUNNING firework has no worker")
				}
				return v
			},
		},
		{
			Name:       "materials-fields",
			Collection: MaterialsCollection,
			Validate: func(d document.D) []string {
				var v []string
				if d.GetString("pretty_formula") == "" {
					v = append(v, "material lacks pretty_formula")
				}
				if _, ok := d.GetFloat("e_per_atom"); !ok {
					v = append(v, "material lacks e_per_atom")
				}
				if bg, ok := d.GetFloat("band_gap"); ok && bg < 0 {
					v = append(v, fmt.Sprintf("negative band gap %v", bg))
				}
				if eah, ok := d.GetFloat("e_above_hull"); ok && eah < -1e-6 {
					v = append(v, fmt.Sprintf("negative energy above hull %v", eah))
				}
				return v
			},
		},
		{
			Name:       "mps-source-records",
			Collection: "mps",
			Validate: func(d document.D) []string {
				var v []string
				if d.GetDoc("structure") == nil {
					v = append(v, "MPS record lacks structure")
				}
				if d.GetString("structure_id") == "" {
					v = append(v, "MPS record lacks structure_id")
				}
				return v
			},
		},
	}
}
