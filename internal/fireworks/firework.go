// Package fireworks reproduces the paper's custom workflow manager
// (§III-C2/C3). A Firework is one step of a workflow, bundling:
//
//   - a Stage: the job specification as a queryable document of runtime
//     parameters, stored directly in the datastore;
//   - an Assembler: translates the Stage into concrete execution (for MP,
//     VASP input files; here, a simulated DFT run);
//   - a Fuse: delays execution until conditions hold (parents finished,
//     specific parent outputs, user approval) and may override Stage
//     parameters with Mongo-style $set/$unset updates that are recorded
//     in the database for later analysis;
//   - an Analyzer: runs after job completion and schedules follow-up
//     actions — re-runs with more walltime, detours with tweaked
//     parameters, iteration with escalating parameters, or aborting the
//     workflow for manual intervention;
//   - a Binder: a uniqueness key (e.g. crystal id + functional) enabling
//     duplicate detection, so resubmitting a workflow is idempotent.
//
// All state lives in the datastore's engines collection ("jobs that are
// waiting to be run, running, and completed"), with full results in the
// tasks collection — the datastore-as-message-queue design that is the
// paper's first contribution.
package fireworks

import (
	"fmt"
	"strings"
	"time"

	"matproj/internal/document"
)

// State is a firework's lifecycle state.
type State string

// Firework lifecycle states.
const (
	// StateWaiting: parents incomplete or fuse not satisfied.
	StateWaiting State = "WAITING"
	// StateReady: claimable by a worker.
	StateReady State = "READY"
	// StateRunning: claimed and executing.
	StateRunning State = "RUNNING"
	// StateCompleted: finished successfully (possibly via duplicate
	// pointer or a completed detour).
	StateCompleted State = "COMPLETED"
	// StateFizzled: failed and superseded (by a rerun or detour).
	StateFizzled State = "FIZZLED"
	// StateDefused: aborted; needs manual intervention.
	StateDefused State = "DEFUSED"
)

// Firework describes one workflow step at creation time.
type Firework struct {
	ID       string
	Stage    document.D // job spec: queryable runtime parameters
	Parents  []string   // firework ids that must complete first
	Fuse     string     // registered fuse name ("" = default)
	Analyzer string     // registered analyzer name ("" = none)
	Binder   *Binder    // duplicate-detection key (nil = no dedup)
	Priority int        // higher claims first
}

// Binder uniquely identifies a job by a subset of its stage fields — "a
// reference to a crystal structure ID and the type of functional" in the
// paper's VASP example.
type Binder struct {
	Fields []string
}

// Key renders the binder key for a stage. Missing fields render as null,
// so two stages missing the same field still collide (intentionally).
func (b *Binder) Key(stage document.D) string {
	if b == nil || len(b.Fields) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, f := range b.Fields {
		if i > 0 {
			sb.WriteByte('|')
		}
		v, ok := stage.Get(f)
		if !ok {
			sb.WriteString("null")
			continue
		}
		fmt.Fprintf(&sb, "%v", v)
	}
	return sb.String()
}

// Fuse gates and rewrites a firework before launch.
type Fuse interface {
	// Ready reports whether the firework may launch, given its document
	// and its parents' documents (which include outputs).
	Ready(fw document.D, parents []document.D) bool
	// Override returns a Mongo-style update document applied to the
	// firework's stage just before launch (nil for no change). Applied
	// overrides are recorded in the firework's spec_history.
	Override(fw document.D, parents []document.D) document.D
}

// DefaultFuse launches as soon as all parents completed, with no
// overrides.
type DefaultFuse struct{}

// Ready implements Fuse: parents' completion is checked by the launchpad
// before fuses run, so the default fuse is always ready.
func (DefaultFuse) Ready(document.D, []document.D) bool { return true }

// Override implements Fuse.
func (DefaultFuse) Override(document.D, []document.D) document.D { return nil }

// ApprovalFuse delays launch until a human sets approved=true on the
// firework ("a user has approved the workflow").
type ApprovalFuse struct{}

// Ready implements Fuse.
func (ApprovalFuse) Ready(fw document.D, _ []document.D) bool {
	v, _ := fw.Get("approved")
	b, _ := v.(bool)
	return b
}

// Override implements Fuse.
func (ApprovalFuse) Override(document.D, []document.D) document.D { return nil }

// Action is a follow-up decision from an Analyzer.
type Action interface{ isAction() }

// Rerun re-queues the same firework, optionally scaling its walltime and
// applying a stage update — the fix for jobs "killed due to insufficient
// walltime and memory".
type Rerun struct {
	WalltimeScale float64    // multiply walltime_s by this (0 = keep)
	StageUpdate   document.D // Mongo-style update on the stage (may be nil)
	Reason        string
}

func (Rerun) isAction() {}

// Detour replaces the firework with a fresh one whose stage has "a few
// minor input parameters changed"; the rest of the workflow is untouched
// because the detour completes on the original's behalf.
type Detour struct {
	StageUpdate document.D // required: what to change
	Reason      string
}

func (Detour) isAction() {}

// AddFirework appends a new firework as a child of the analyzed one —
// the iteration primitive.
type AddFirework struct {
	Firework Firework
}

func (AddFirework) isAction() {}

// Defuse aborts the workflow and marks it for manual intervention ("if
// the problem is beyond automated repair").
type Defuse struct {
	Reason string
}

func (Defuse) isAction() {}

// Analyzer inspects a finished launch and decides what happens next.
type Analyzer interface {
	// Analyze receives the firework document and the task result document
	// (nil when the job was killed before producing output). It returns
	// follow-up actions; no actions means the outcome stands.
	Analyze(fw document.D, result document.D) []Action
}

// RunOutcome is what an Assembler reports for one launch.
type RunOutcome struct {
	// Duration is the virtual compute time the job consumed.
	Duration time.Duration
	// Result is the reduced result document stored in tasks (nil allowed
	// for failures that produced nothing).
	Result document.D
	// Failed marks outcomes the Analyzer should treat as job errors.
	Failed bool
	// FailureKind is a short machine-readable error class ("ZBRENT", ...).
	FailureKind string
}

// Assembler turns a stage into execution: "translated into input files on
// a compute node" in the paper; here, into a simulated run.
type Assembler interface {
	Assemble(stage document.D) (*RunOutcome, error)
}

// AssemblerFunc adapts a function to Assembler.
type AssemblerFunc func(stage document.D) (*RunOutcome, error)

// Assemble implements Assembler.
func (f AssemblerFunc) Assemble(stage document.D) (*RunOutcome, error) { return f(stage) }
