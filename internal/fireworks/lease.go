package fireworks

import (
	"errors"

	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/vclock"
)

// Lost-run recovery. A claim is not permanent ownership but a lease:
// Claim stamps the firework with claimed_at_s / heartbeat_s /
// lease_until_s, long-running workers extend the lease with Heartbeat,
// and DetectLostRuns sweeps RUNNING fireworks whose lease expired — the
// signature of a worker that died mid-run without reporting back (node
// crash, OOM kill, network partition at the HPC center). Swept
// fireworks are fizzled for the record and re-queued with exponential
// backoff through the same reruns accounting the analyzer path uses, so
// a crash-looping job still hits the maxReruns → defuse safety valve.
//
// Time is a float64 of seconds from an injectable clock, so the
// discrete-event HPC simulator can drive leases on virtual time while
// production uses the wall clock.

// ErrLeaseLost is returned by Heartbeat when the caller no longer owns
// the firework (the sweep re-queued it, or another worker claimed it).
var ErrLeaseLost = errors.New("fireworks: lease lost")

const (
	defaultLeaseSecs   = 3600
	defaultBackoffBase = 30
)

// SetClock installs the time source used for leases and backoff, as
// seconds (epoch origin is irrelevant; only differences matter). The
// default is the wall clock.
func (lp *LaunchPad) SetClock(clock func() float64) {
	lp.leaseMu.Lock()
	defer lp.leaseMu.Unlock()
	if clock == nil {
		clock = wallClock
	}
	lp.clock = clock
}

// ConfigureLeases overrides the lease duration and the backoff base
// used when a lost run is re-queued (delay = base * 2^reruns). Values
// <= 0 keep the current setting.
func (lp *LaunchPad) ConfigureLeases(leaseSecs, backoffBase float64) {
	lp.leaseMu.Lock()
	defer lp.leaseMu.Unlock()
	if leaseSecs > 0 {
		lp.leaseSecs = leaseSecs
	}
	if backoffBase > 0 {
		lp.backoffBase = backoffBase
	}
}

func wallClock() float64 { return vclock.Seconds(vclock.Wall) }

func (lp *LaunchPad) now() float64 {
	lp.leaseMu.Lock()
	defer lp.leaseMu.Unlock()
	return lp.clock()
}

func (lp *LaunchPad) leaseParams() (leaseSecs, backoffBase float64) {
	lp.leaseMu.Lock()
	defer lp.leaseMu.Unlock()
	return lp.leaseSecs, lp.backoffBase
}

// Heartbeat extends the caller's lease on a RUNNING firework. It fails
// with ErrLeaseLost when the firework is no longer RUNNING under this
// worker — the worker must then abandon the run (its result would race
// the re-queued launch).
func (lp *LaunchPad) Heartbeat(fwID, workerID string) error {
	now := lp.now()
	leaseSecs, _ := lp.leaseParams()
	res, err := lp.engines.UpdateOne(
		document.D{"_id": fwID, "state": string(StateRunning), "worker": workerID},
		document.D{"$set": document.D{
			"heartbeat_s":   now,
			"lease_until_s": now + leaseSecs,
		}})
	if err != nil {
		return err
	}
	if res.Matched == 0 {
		lp.count("lease_losses")
		return ErrLeaseLost
	}
	lp.count("lease_renewals")
	return nil
}

// SweepStats summarizes one DetectLostRuns pass.
type SweepStats struct {
	// Scanned counts RUNNING fireworks whose lease had expired.
	Scanned int
	// Requeued counts lost runs put back to READY (with backoff).
	Requeued int
	// Defused counts lost runs that exhausted maxReruns.
	Defused int
}

// DetectLostRuns finds RUNNING fireworks whose lease expired, fizzles
// them (recording the loss), and re-queues them READY with exponential
// backoff — or defuses the workflow once maxReruns is exhausted, the
// same policy as analyzer-driven reruns.
func (lp *LaunchPad) DetectLostRuns() (SweepStats, error) {
	var stats SweepStats
	_, backoffBase := lp.leaseParams()
	for {
		now := lp.now()
		fw, err := lp.engines.FindAndModify(
			document.D{
				"state":         string(StateRunning),
				"lease_until_s": document.D{"$lt": now},
			},
			document.D{
				"$set": document.D{
					"state":          string(StateFizzled),
					"fizzle_reason":  "lost run: lease expired",
					"last_lost_at_s": now,
				},
				"$inc": document.D{"lost_runs": 1},
			},
			[]string{"_id"}, true)
		if err != nil {
			if errors.Is(err, datastore.ErrNotFound) {
				lp.gaugeQueueDepth()
				return stats, nil
			}
			return stats, err
		}
		stats.Scanned++
		lp.count("lost_runs")
		fwID := fw["_id"].(string)
		reruns, _ := fw.GetInt("reruns")
		if int(reruns) >= lp.maxReruns {
			if err := lp.defuse(fwID, "lost run limit exhausted"); err != nil {
				return stats, err
			}
			stats.Defused++
			continue
		}
		backoff := backoffBase * float64(int64(1)<<uint(reruns))
		if _, err := lp.engines.UpdateOne(document.D{"_id": fwID},
			document.D{
				"$set": document.D{
					"state":        string(StateReady),
					"not_before_s": now + backoff,
				},
				"$inc": document.D{"reruns": 1},
			}); err != nil {
			return stats, err
		}
		stats.Requeued++
		lp.count("lost_requeued")
	}
}

// claimableFilter matches READY fireworks whose backoff window (if any)
// has passed. Documents without not_before_s — everything predating
// lost-run recovery — stay claimable.
func claimableFilter(now float64) document.D {
	return document.D{
		"state":        string(StateReady),
		"not_before_s": document.D{"$not": document.D{"$gt": now}},
	}
}

// ClaimableCount reports how many READY fireworks are claimable right
// now (backoff windows respected).
func (lp *LaunchPad) ClaimableCount() int {
	n, err := lp.engines.Count(claimableFilter(lp.now()))
	if err != nil {
		return 0
	}
	return n
}

// NextClaimableAt returns the earliest time at which some READY
// firework is (or becomes) claimable. ok is false when nothing is
// READY at all.
func (lp *LaunchPad) NextClaimableAt() (at float64, ok bool) {
	now := lp.now()
	docs, err := lp.engines.FindAll(document.D{"state": string(StateReady)}, nil)
	if err != nil || len(docs) == 0 {
		return 0, false
	}
	best := 0.0
	for _, d := range docs {
		nb, has := d.GetFloat("not_before_s")
		if !has || nb <= now {
			return now, true
		}
		if !ok || nb < best {
			best, ok = nb, true
		}
	}
	return best, ok
}

// NextLeaseExpiry returns the earliest lease_until_s among RUNNING
// fireworks; ok is false when nothing is RUNNING.
func (lp *LaunchPad) NextLeaseExpiry() (at float64, ok bool) {
	docs, err := lp.engines.FindAll(document.D{"state": string(StateRunning)}, nil)
	if err != nil {
		return 0, false
	}
	best := 0.0
	for _, d := range docs {
		lu, has := d.GetFloat("lease_until_s")
		if !has {
			continue
		}
		if !ok || lu < best {
			best, ok = lu, true
		}
	}
	return best, ok
}
