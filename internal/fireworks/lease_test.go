package fireworks

import (
	"errors"
	"testing"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

// fakeClock is a settable virtual time source for lease tests.
type fakeClock struct{ t float64 }

func (c *fakeClock) now() float64      { return c.t }
func (c *fakeClock) advance(s float64) { c.t += s }

func leasePad(t *testing.T, maxReruns int) (*LaunchPad, *fakeClock, string, string) {
	t.Helper()
	store := datastore.MustOpenMemory()
	pad := NewLaunchPad(store, maxReruns)
	clk := &fakeClock{t: 1000}
	pad.SetClock(clk.now)
	pad.ConfigureLeases(60, 10) // 60s lease, 10s backoff base
	wfID, err := pad.AddWorkflow([]Firework{{ID: "fw-lease-1", Stage: document.D{"x": int64(1)}}})
	if err != nil {
		t.Fatal(err)
	}
	return pad, clk, wfID, "fw-lease-1"
}

func TestLostRunRequeuedWithBackoff(t *testing.T) {
	pad, clk, _, fwID := leasePad(t, 3)
	cl, err := pad.Claim("w1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cl.FWID != fwID {
		t.Fatalf("claimed %s", cl.FWID)
	}
	fw, _ := pad.Firework(fwID)
	if lu, ok := fw.GetFloat("lease_until_s"); !ok || lu != 1060 {
		t.Fatalf("lease_until_s = %v, %v", lu, ok)
	}

	// Worker dies silently. Before the lease expires the sweep must not
	// touch the run.
	clk.advance(59)
	stats, err := pad.DetectLostRuns()
	if err != nil {
		t.Fatal(err)
	}
	if stats != (SweepStats{}) {
		t.Fatalf("premature sweep: %+v", stats)
	}

	// Past expiry the run is fizzled and re-queued with backoff.
	clk.advance(2)
	stats, err = pad.DetectLostRuns()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scanned != 1 || stats.Requeued != 1 || stats.Defused != 0 {
		t.Fatalf("sweep: %+v", stats)
	}
	fw, _ = pad.Firework(fwID)
	if State(fw.GetString("state")) != StateReady {
		t.Fatalf("state %s", fw.GetString("state"))
	}
	if lost, _ := fw.GetInt("lost_runs"); lost != 1 {
		t.Fatalf("lost_runs %d", lost)
	}
	nb, _ := fw.GetFloat("not_before_s")
	if nb != clk.t+10 {
		t.Fatalf("not_before_s %v, want %v", nb, clk.t+10)
	}

	// Backoff gates claims: nothing claimable until not_before_s.
	if _, err := pad.Claim("w2", nil); !errors.Is(err, ErrNoneReady) {
		t.Fatalf("claim during backoff: %v", err)
	}
	if pad.ClaimableCount() != 0 {
		t.Fatal("claimable during backoff")
	}
	if at, ok := pad.NextClaimableAt(); !ok || at != nb {
		t.Fatalf("NextClaimableAt = %v, %v", at, ok)
	}
	clk.advance(11)
	if pad.ClaimableCount() != 1 {
		t.Fatal("not claimable after backoff")
	}
	if _, err := pad.Claim("w2", nil); err != nil {
		t.Fatalf("claim after backoff: %v", err)
	}

	// Second loss doubles the backoff (base * 2^reruns).
	clk.advance(61)
	if _, err := pad.DetectLostRuns(); err != nil {
		t.Fatal(err)
	}
	fw, _ = pad.Firework(fwID)
	nb2, _ := fw.GetFloat("not_before_s")
	if nb2 != clk.t+20 {
		t.Fatalf("second backoff %v, want %v", nb2-clk.t, 20.0)
	}
}

func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	pad, clk, _, fwID := leasePad(t, 3)
	if _, err := pad.Claim("w1", nil); err != nil {
		t.Fatal(err)
	}
	// Long run: heartbeat every 50s keeps the 60s lease ahead of the
	// sweep for 300s total.
	for i := 0; i < 6; i++ {
		clk.advance(50)
		if err := pad.Heartbeat(fwID, "w1"); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
		if stats, _ := pad.DetectLostRuns(); stats.Scanned != 0 {
			t.Fatalf("heartbeat %d: swept a live run: %+v", i, stats)
		}
	}
	fw, _ := pad.Firework(fwID)
	if State(fw.GetString("state")) != StateRunning {
		t.Fatalf("state %s", fw.GetString("state"))
	}
	if lost, _ := fw.GetInt("lost_runs"); lost != 0 {
		t.Fatalf("lost_runs %d", lost)
	}
}

func TestHeartbeatAfterSweepReturnsLeaseLost(t *testing.T) {
	pad, clk, _, fwID := leasePad(t, 3)
	if _, err := pad.Claim("w1", nil); err != nil {
		t.Fatal(err)
	}
	clk.advance(61)
	if _, err := pad.DetectLostRuns(); err != nil {
		t.Fatal(err)
	}
	if err := pad.Heartbeat(fwID, "w1"); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("want ErrLeaseLost, got %v", err)
	}
	// A different worker claiming it also invalidates the old lease.
	clk.advance(11)
	if _, err := pad.Claim("w2", nil); err != nil {
		t.Fatal(err)
	}
	if err := pad.Heartbeat(fwID, "w1"); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale worker heartbeat: %v", err)
	}
	if err := pad.Heartbeat(fwID, "w2"); err != nil {
		t.Fatalf("owner heartbeat: %v", err)
	}
}

func TestRepeatedLossDefusesAtMaxReruns(t *testing.T) {
	pad, clk, wfID, fwID := leasePad(t, 2)
	for i := 0; ; i++ {
		if i > 10 {
			t.Fatal("no convergence")
		}
		_, err := pad.Claim("w1", nil)
		if errors.Is(err, ErrNoneReady) {
			// Wait out backoff, if any.
			if at, ok := pad.NextClaimableAt(); ok {
				clk.t = at + 1
				continue
			}
			break // nothing READY: terminal state reached
		}
		if err != nil {
			t.Fatal(err)
		}
		clk.advance(61)
		if _, err := pad.DetectLostRuns(); err != nil {
			t.Fatal(err)
		}
	}
	fw, _ := pad.Firework(fwID)
	if State(fw.GetString("state")) != StateDefused {
		t.Fatalf("state %s, want DEFUSED", fw.GetString("state"))
	}
	states, _ := pad.WorkflowStates(wfID)
	if states[StateRunning] != 0 {
		t.Fatalf("stuck RUNNING: %v", states)
	}
	if lost, _ := fw.GetInt("lost_runs"); lost != 3 {
		t.Fatalf("lost_runs %d, want 3 (maxReruns 2 + final)", lost)
	}
}

func TestLegacyDocsWithoutLeaseFieldsStayClaimable(t *testing.T) {
	store := datastore.MustOpenMemory()
	pad := NewLaunchPad(store, 3)
	// Simulate a pre-lease document replayed from an old journal:
	// READY with no not_before_s.
	if _, err := store.C(EnginesCollection).Insert(document.D{
		"_id": "fw-old", "wf_id": "wf-old", "state": string(StateReady),
		"stage": map[string]any{}, "parents": []any{}, "fuse": "",
		"priority": int64(0), "launches": int64(0), "reruns": int64(0),
	}); err != nil {
		t.Fatal(err)
	}
	if pad.ClaimableCount() != 1 {
		t.Fatal("legacy doc not claimable")
	}
	cl, err := pad.Claim("w1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cl.FWID != "fw-old" {
		t.Fatalf("claimed %s", cl.FWID)
	}
	// And the claim stamped a lease so it is now recoverable.
	fw, _ := pad.Firework("fw-old")
	if !fw.Has("lease_until_s") {
		t.Fatal("claim did not stamp lease")
	}
}
