package fireworks

import (
	"errors"
	"fmt"
	"time"

	"matproj/internal/document"
	"matproj/internal/hpc"
)

// Rocket pulls ready fireworks from a launchpad and executes them — the
// worker process that runs inside a batch job. Combined with the hpc
// simulator it implements task farming: one batch job consuming many
// fireworks back to back (§IV-A1).
type Rocket struct {
	Pad       *LaunchPad
	Assembler Assembler
	WorkerID  string
	// Selector optionally restricts which fireworks this worker claims
	// (resource matching on stage attributes, e.g.
	// {"stage.nelectrons": {"$lte": 200}}).
	Selector document.D
	// MaxClaims bounds how many fireworks this rocket executes; 0 means
	// unlimited. MaxClaims=1 models the one-calculation-per-batch-job
	// mode that task farming replaces (§IV-A1).
	MaxClaims int
	claims    int
}

// TaskSource adapts the rocket to the cluster simulator: each claimed
// firework becomes one task whose virtual duration is the simulated run
// time. A walltime kill mid-task reports the firework as killed, which
// the analyzer typically answers with a Rerun at doubled walltime.
func (r *Rocket) TaskSource() hpc.TaskSource {
	return hpc.FuncSource(func(now time.Duration) (hpc.Task, bool) {
		for {
			if r.MaxClaims > 0 && r.claims >= r.MaxClaims {
				return hpc.Task{}, false
			}
			cl, err := r.Pad.Claim(r.WorkerID, r.Selector)
			if errors.Is(err, ErrNoneReady) {
				return hpc.Task{}, false
			}
			if err != nil {
				return hpc.Task{}, false
			}
			r.claims++
			outcome, err := r.Assembler.Assemble(cl.Stage)
			if err != nil {
				// Assembly failures are not physics failures; record and
				// move on to the next firework.
				_ = r.Pad.Complete(cl, &RunOutcome{
					Failed:      true,
					FailureKind: "ASSEMBLY:" + err.Error(),
				})
				continue
			}
			claimed := cl
			oc := outcome
			return hpc.Task{
				Name:     claimed.FWID,
				Duration: oc.Duration,
				OnDone:   func(time.Duration) { _ = r.Pad.Complete(claimed, oc) },
				OnKilled: func(time.Duration) { _ = r.Pad.Killed(claimed, FailWalltime) },
			}, true
		}
	})
}

// RunLocal executes fireworks synchronously without a cluster (no
// walltime enforcement), up to maxLaunches (0 = unlimited). It returns
// the number of launches performed. Used for tests, examples, and
// midrange-resource execution.
func (r *Rocket) RunLocal(maxLaunches int) (int, error) {
	launches := 0
	for maxLaunches == 0 || launches < maxLaunches {
		cl, err := r.Pad.Claim(r.WorkerID, r.Selector)
		if errors.Is(err, ErrNoneReady) {
			return launches, nil
		}
		if err != nil {
			return launches, err
		}
		outcome, err := r.Assembler.Assemble(cl.Stage)
		if err != nil {
			if cerr := r.Pad.Complete(cl, &RunOutcome{Failed: true, FailureKind: "ASSEMBLY:" + err.Error()}); cerr != nil {
				return launches, cerr
			}
			launches++
			continue
		}
		if err := r.Pad.Complete(cl, outcome); err != nil {
			return launches, err
		}
		launches++
	}
	return launches, nil
}

// DriveCluster repeatedly submits task-farming worker jobs to the cluster
// until no fireworks remain claimable, returning total batch jobs
// submitted. Each job farms fireworks for jobWalltime; kills re-queue
// work which later jobs pick up. Because "jobs are often killed due to
// insufficient walltime ... and restarted, with more resources"
// (§III-C3), each resubmission round doubles the requested walltime (up
// to 32×), so calculations that outlive the initial allocation still
// complete. This is the production execution mode.
//
// DriveCluster also owns crash recovery: the launchpad's lease clock is
// bound to the cluster's virtual time, a DetectLostRuns sweep runs
// between rounds, and when every remaining firework is either
// backoff-gated or held by an expired-but-unswept lease the virtual
// clock is advanced past the blocking deadline. A run with injected
// worker crashes therefore still converges: crashed launches are swept,
// re-queued with backoff, and picked up by later jobs.
func DriveCluster(pad *LaunchPad, asm Assembler, cluster *hpc.Cluster, user string, workers int, jobWalltime time.Duration, selector document.D) (int, error) {
	if workers < 1 {
		workers = 1
	}
	// Leases and backoff run on simulated time for the whole drive.
	pad.SetClock(func() float64 { return cluster.Now().Seconds() })
	jobs := 0
	for round := 0; ; round++ {
		if round > 10000 {
			return jobs, fmt.Errorf("fireworks: drive did not quiesce")
		}
		// Reclaim launches whose workers died since the last round.
		if _, err := pad.DetectLostRuns(); err != nil {
			return jobs, err
		}
		if pad.ReadyCount() == 0 {
			// Anything still RUNNING belongs to a dead worker (the
			// cluster is idle between rounds): wait out its lease so the
			// next sweep can reclaim it.
			if at, ok := pad.NextLeaseExpiry(); ok {
				cluster.AdvanceTo(secsToDur(at) + time.Second)
				continue
			}
			break
		}
		if pad.ClaimableCount() == 0 {
			// All READY work is backoff-gated; jump to when it opens.
			if at, ok := pad.NextClaimableAt(); ok {
				cluster.AdvanceTo(secsToDur(at) + time.Second)
			}
			continue
		}
		wall := jobWalltime
		if round > 0 {
			scale := round
			if scale > 5 {
				scale = 5
			}
			wall = jobWalltime * time.Duration(1<<scale)
		}
		for w := 0; w < workers; w++ {
			rocket := &Rocket{
				Pad:       pad,
				Assembler: asm,
				WorkerID:  fmt.Sprintf("%s-r%d-w%d", user, round, w),
				Selector:  selector,
			}
			job := &hpc.Job{
				ID:       fmt.Sprintf("farm-%s-%d-%d", user, round, w),
				User:     user,
				Walltime: wall,
				Source:   rocket.TaskSource(),
			}
			if err := cluster.Submit(job); err != nil {
				if errors.Is(err, hpc.ErrQueueLimit) {
					break
				}
				return jobs, err
			}
			jobs++
		}
		cluster.RunAll()
	}
	return jobs, nil
}

func secsToDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
