package fireworks

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"matproj/internal/crystal"
	"matproj/internal/datastore"
	"matproj/internal/dft"
	"matproj/internal/document"
)

// This file wires FireWorks to the simulated VASP code: the stage format
// for DFT jobs, the Assembler that turns a stage into a run, and the
// standard analyzers implementing the paper's four unique features
// (re-runs, detours, duplicate detection via binders, iteration).

// Failure kinds reported to analyzers.
const (
	// FailWalltime marks a job killed by the batch system.
	FailWalltime = "WALLTIME"
)

// ParamsToDoc serializes dft.Params into a stage sub-document.
func ParamsToDoc(p dft.Params) document.D {
	return document.D{
		"encut":      p.Encut,
		"kmesh":      []any{int64(p.KMesh[0]), int64(p.KMesh[1]), int64(p.KMesh[2])},
		"ediff":      p.EDiff,
		"nelm":       int64(p.NELM),
		"algo":       p.Algo,
		"potim":      p.Potim,
		"functional": p.Functional,
	}
}

// ParamsFromDoc reverses ParamsToDoc.
func ParamsFromDoc(d document.D) (dft.Params, error) {
	var p dft.Params
	var ok bool
	if p.Encut, ok = d.GetFloat("encut"); !ok {
		return p, fmt.Errorf("fireworks: stage params missing encut")
	}
	mesh := d.GetArray("kmesh")
	if len(mesh) != 3 {
		return p, fmt.Errorf("fireworks: stage params missing kmesh")
	}
	for i, v := range mesh {
		f, ok := document.AsFloat(v)
		if !ok {
			return p, fmt.Errorf("fireworks: kmesh[%d] not numeric", i)
		}
		p.KMesh[i] = int(f)
	}
	if p.EDiff, ok = d.GetFloat("ediff"); !ok {
		return p, fmt.Errorf("fireworks: stage params missing ediff")
	}
	nelm, ok := d.GetInt("nelm")
	if !ok {
		return p, fmt.Errorf("fireworks: stage params missing nelm")
	}
	p.NELM = int(nelm)
	p.Algo = d.GetString("algo")
	if p.Potim, ok = d.GetFloat("potim"); !ok {
		return p, fmt.Errorf("fireworks: stage params missing potim")
	}
	p.Functional = d.GetString("functional")
	return p, nil
}

// NewVASPFirework builds the standard DFT firework for an MPS record
// already stored in the mps collection. The stage denormalizes elements
// and electron count so workers can select jobs with queries like the
// paper's {elements: {$all: [...]}, nelectrons: {$lte: 200}}.
func NewVASPFirework(mpsDoc document.D, taskType string, params dft.Params, walltime time.Duration) Firework {
	stage := document.D{
		"mps_id":     mpsDoc["_id"],
		"task_type":  taskType,
		"params":     map[string]any(ParamsToDoc(params)),
		"walltime_s": walltime.Seconds(),
		"formula":    mpsDoc["formula"],
	}
	if v, ok := mpsDoc.Get("elements"); ok {
		stage["elements"] = v
	}
	if v, ok := mpsDoc.Get("nelectrons"); ok {
		stage["nelectrons"] = v
	}
	// The binder keys on the canonical crystal identity (the structure
	// fingerprint), not the submission id, so redeterminations of the
	// same crystal deduplicate.
	if v, ok := mpsDoc.Get("structure_id"); ok {
		stage["structure_id"] = v
	}
	return Firework{
		Stage:    stage,
		Analyzer: "vasp",
		Binder:   &Binder{Fields: []string{"structure_id", "task_type", "params.functional"}},
	}
}

// VASPAssembler loads the crystal referenced by a stage from the mps
// collection, assembles run parameters, executes the simulated DFT code,
// and parses+reduces its output ("parsed and reduced by the FireWorks
// Analyzer ... so that the aggregate volume of data stored in our
// database remains relatively small").
//
// When StagingDir is set, every run's raw output is also written to that
// directory as <stem>.outcar plus a <stem>.meta.json sidecar — modelling
// the production reality that "worker nodes cannot connect out to the
// database server" (§IV-C1): raw results land on the HPC filesystem and
// a builder.Loader pass on midrange resources loads them later.
type VASPAssembler struct {
	MPS *datastore.Collection
	// StagingDir, when non-empty, receives raw run logs for the §IV-C1
	// post-processing loader.
	StagingDir string
	seq        atomic.Uint64
}

// NewVASPAssembler wires the assembler to a store's mps collection.
func NewVASPAssembler(store *datastore.Store) *VASPAssembler {
	return &VASPAssembler{MPS: store.C("mps")}
}

// Assemble implements Assembler.
func (a *VASPAssembler) Assemble(stage document.D) (*RunOutcome, error) {
	mpsID := stage.GetString("mps_id")
	if mpsID == "" {
		return nil, fmt.Errorf("fireworks: stage missing mps_id")
	}
	mpsDoc, err := a.MPS.FindID(mpsID)
	if err != nil {
		return nil, fmt.Errorf("fireworks: mps %q: %w", mpsID, err)
	}
	stDoc := mpsDoc.GetDoc("structure")
	if stDoc == nil {
		return nil, fmt.Errorf("fireworks: mps %q has no structure", mpsID)
	}
	st, err := crystal.StructureFromDoc(stDoc)
	if err != nil {
		return nil, err
	}
	params, err := ParamsFromDoc(stage.GetDoc("params"))
	if err != nil {
		return nil, err
	}
	res, err := dft.Run(st, params)
	if err != nil {
		return nil, err
	}
	// Parse and reduce the raw output; only the summary is stored.
	sum, err := dft.ParseOutcar(res.Outcar)
	if err != nil {
		return nil, err
	}
	out := &RunOutcome{Duration: res.Runtime}
	result := document.D{
		"mps_id":          mpsID,
		"structure_id":    stage.GetString("structure_id"),
		"task_type":       stage.GetString("task_type"),
		"formula":         sum.Formula,
		"functional":      params.Functional,
		"converged":       res.Converged(),
		"code":            string(res.Code),
		"scf_steps":       int64(sum.SCFSteps),
		"nelectrons":      sum.NElectrons,
		"elapsed_s":       res.Runtime.Seconds(),
		"raw_output_size": int64(len(res.Outcar)),
		"params":          map[string]any(ParamsToDoc(params)),
	}
	if res.Converged() {
		result["final_energy"] = res.FinalEnergy
		result["energy_per_atom"] = res.EnergyPA
		result["bandgap"] = res.Bandgap
		result["max_force"] = res.MaxForce
		// The tasks collection keeps "much more robust data about the
		// output state" than the input records: the relaxed structure,
		// the SCF residual trajectory, per-site forces, and the k-mesh.
		result["structure"] = map[string]any(st.ToDoc())
		scf := make([]any, len(res.SCFHistory))
		for i, r := range res.SCFHistory {
			scf[i] = map[string]any{"step": int64(i), "residual": r}
		}
		result["scf"] = scf
		forces := make([]any, len(res.Forces))
		for i, f := range res.Forces {
			forces[i] = []any{f[0], f[1], f[2]}
		}
		result["forces"] = forces
		result["kpoints"] = []any{int64(params.KMesh[0]), int64(params.KMesh[1]), int64(params.KMesh[2])}
	} else {
		out.Failed = true
		out.FailureKind = string(res.Code)
	}
	out.Result = result
	if a.StagingDir != "" {
		if err := a.stageRaw(mpsID, stage, res); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// stageRaw writes the raw run log and metadata sidecar to the staging
// directory.
func (a *VASPAssembler) stageRaw(mpsID string, stage document.D, res *dft.Result) error {
	stem := fmt.Sprintf("%s-%s-%06d", mpsID, stage.GetString("task_type"), a.seq.Add(1))
	if err := os.WriteFile(filepath.Join(a.StagingDir, stem+".outcar"), res.Outcar, 0o644); err != nil {
		return fmt.Errorf("fireworks: stage raw: %w", err)
	}
	meta := document.D{
		"mps_id":       mpsID,
		"structure_id": stage.GetString("structure_id"),
		"task_type":    stage.GetString("task_type"),
	}
	b, err := meta.ToJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(a.StagingDir, stem+".meta.json"), b, 0o644); err != nil {
		return fmt.Errorf("fireworks: stage meta: %w", err)
	}
	return nil
}

// StaticFuse prepares a static (single-point) follow-up run from its
// relaxation parent: it copies the parent's final energy into the stage
// as the starting reference and tightens the electronic convergence —
// the paper's example of a Fuse "overriding input parameters prior to
// execution, based on the output state of any parent jobs".
type StaticFuse struct{}

// Ready implements Fuse: the launchpad has already verified parents
// completed.
func (StaticFuse) Ready(document.D, []document.D) bool { return true }

// Override implements Fuse.
func (StaticFuse) Override(_ document.D, parents []document.D) document.D {
	if len(parents) == 0 {
		return nil
	}
	set := document.D{"params.ediff": 1e-6, "params.nelm": int64(200), "params.algo": "Normal"}
	if e, ok := parents[0].GetFloat("output.final_energy"); ok {
		set["relaxed_energy"] = e
	}
	return document.D{"$set": set}
}

// NewStaticFirework builds the static follow-up chained after a
// relaxation firework.
func NewStaticFirework(mpsDoc document.D, parentID string, params dft.Params, walltime time.Duration) Firework {
	fw := NewVASPFirework(mpsDoc, "static", params, walltime)
	fw.Parents = []string{parentID}
	fw.Fuse = "static"
	return fw
}

// VASPAnalyzer implements the paper's §III-C3 recovery logic:
//
//   - WALLTIME kills → Rerun with doubled walltime;
//   - ZBRENT errors  → Detour with POTIM reduced;
//   - NONCONV        → Rerun with NELM doubled and ALGO=Normal
//     (the linear-increment iteration);
//   - anything else failed → Defuse for manual intervention.
type VASPAnalyzer struct{}

// Analyze implements Analyzer.
func (VASPAnalyzer) Analyze(fw document.D, result document.D) []Action {
	failure := fw.GetString("output.failure")
	switch failure {
	case "":
		return nil
	case FailWalltime:
		return []Action{Rerun{WalltimeScale: 2, Reason: "killed at walltime"}}
	case string(dft.ErrZBrent):
		return []Action{Detour{
			StageUpdate: document.D{"$set": document.D{"params.potim": 0.25}},
			Reason:      "ZBRENT bracketing failure",
		}}
	case string(dft.ErrNonConverged):
		nelm, _ := fw.GetInt("stage.params.nelm")
		if nelm <= 0 {
			nelm = 60
		}
		next := nelm * 2
		if next > 10000 {
			return []Action{Defuse{Reason: "SCF not converging even at NELM cap"}}
		}
		return []Action{Rerun{
			StageUpdate: document.D{"$set": document.D{
				"params.nelm": next,
				"params.algo": "Normal",
			}},
			Reason: fmt.Sprintf("SCF not converged in %d steps", nelm),
		}}
	default:
		return []Action{Defuse{Reason: "unrecognized failure " + failure}}
	}
}

// ChainAnalyzer tries each analyzer in turn; the first non-empty action
// list wins. Used to compose failure recovery with iteration logic.
type ChainAnalyzer []Analyzer

// Analyze implements Analyzer.
func (c ChainAnalyzer) Analyze(fw document.D, result document.D) []Action {
	for _, a := range c {
		if acts := a.Analyze(fw, result); len(acts) > 0 {
			return acts
		}
	}
	return nil
}

// KPointConvergence iterates a calculation with denser k-meshes until the
// energy per atom changes by less than Tol eV between successive meshes
// ("iterative runs of the same job, with incrementing input parameters,
// until a condition is met ... the number of iterations required is not
// known in advance").
type KPointConvergence struct {
	Tol  float64 // eV/atom
	MaxK int     // mesh cap per dimension
}

// Analyze implements Analyzer.
func (k KPointConvergence) Analyze(fw document.D, result document.D) []Action {
	if fw.GetString("output.failure") != "" || result == nil {
		return nil
	}
	energy, ok := result.GetFloat("energy_per_atom")
	if !ok {
		return nil
	}
	prev, hadPrev := fw.GetFloat("stage.prev_energy_pa")
	if hadPrev && absf(energy-prev) < k.Tol {
		return nil // converged: the chain stops
	}
	mesh := fw.GetArray("stage.params.kmesh")
	if len(mesh) != 3 {
		return nil
	}
	k0, _ := document.AsFloat(mesh[0])
	nextK := int(k0) + 2
	if nextK > k.MaxK {
		return nil // give up at the cap; last result stands
	}
	stage := fw.GetDoc("stage").Copy()
	stage.Set("params.kmesh", []any{int64(nextK), int64(nextK), int64(nextK)})
	stage.Set("prev_energy_pa", energy)
	stage.Set("iteration", iterationOf(fw)+1)
	return []Action{AddFirework{Firework: Firework{
		Stage:    stage,
		Analyzer: fw.GetString("analyzer"),
		Binder:   binderFromDoc(fw, "params.kmesh"),
	}}}
}

func iterationOf(fw document.D) int64 {
	n, _ := fw.GetInt("stage.iteration")
	return n
}

// binderFromDoc reconstructs the firework's binder, ensuring extraField
// participates so iterations are not mistaken for duplicates.
func binderFromDoc(fw document.D, extraField string) *Binder {
	var b Binder
	for _, f := range fw.GetArray("binder_fields") {
		if s, ok := f.(string); ok {
			b.Fields = append(b.Fields, s)
		}
	}
	for _, f := range b.Fields {
		if f == extraField {
			return &b
		}
	}
	b.Fields = append(b.Fields, extraField)
	if len(b.Fields) == 1 {
		return nil
	}
	return &b
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// RegisterVASP installs the standard MP fuse/analyzer set on a launchpad.
func RegisterVASP(lp *LaunchPad) {
	lp.RegisterAnalyzer("vasp", VASPAnalyzer{})
	lp.RegisterAnalyzer("vasp+kconv", ChainAnalyzer{VASPAnalyzer{}, KPointConvergence{Tol: 0.01, MaxK: 12}})
	lp.RegisterFuse("static", StaticFuse{})
}
