package fireworks

import (
	"testing"
	"time"

	"matproj/internal/datastore"
	"matproj/internal/dft"
	"matproj/internal/document"
	"matproj/internal/hpc"
	"matproj/internal/icsd"
)

// TestFullPipelineOnCluster drives the real stack end to end: synthetic
// ICSD records are loaded into the mps collection, VASP fireworks are
// created for each, and task-farming batch jobs execute them on the
// simulated cluster — exercising re-runs, detours, duplicate detection,
// and walltime kills together.
func TestFullPipelineOnCluster(t *testing.T) {
	store := datastore.MustOpenMemory()
	pad := NewLaunchPad(store, 5)
	RegisterVASP(pad)
	mps := store.C("mps")

	recs := icsd.Generate(icsd.Config{Seed: 2012, DuplicateRate: 0.2}, 60)
	var fws []Firework
	for _, r := range recs {
		mdoc := r.ToDoc()
		if _, err := mps.Insert(mdoc); err != nil {
			t.Fatal(err)
		}
		fw := NewVASPFirework(mdoc, "relax", dft.DefaultParams(), 6*time.Hour)
		fw.ID = "fw-" + r.ID
		fws = append(fws, fw)
	}
	if _, err := pad.AddWorkflow(fws); err != nil {
		t.Fatal(err)
	}

	cluster := hpc.NewCluster(16, 8, hpc.Policy{WorkerOutbound: false, ProxyHost: "mongoproxy"})
	asm := NewVASPAssembler(store)
	jobs, err := DriveCluster(pad, asm, cluster, "mpuser", 8, 24*time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	if jobs == 0 {
		t.Fatal("no batch jobs submitted")
	}

	// Every firework must settle into a terminal state.
	engines := store.C(EnginesCollection)
	nonTerminal, _ := engines.Count(document.D{"state": document.D{"$in": []any{
		string(StateWaiting), string(StateReady), string(StateRunning)}}})
	if nonTerminal != 0 {
		t.Fatalf("%d fireworks not terminal", nonTerminal)
	}

	completed, _ := engines.Count(document.D{"state": string(StateCompleted)})
	if completed < 50 {
		t.Errorf("completed = %d / %d+", completed, len(fws))
	}

	// Duplicate detection: the generator emitted ~20% redeterminations;
	// their fireworks must complete via pointers, not new tasks.
	dupFWs, _ := engines.Count(document.D{"output.duplicate_of": document.D{"$exists": true}})
	if dupFWs == 0 {
		t.Error("no duplicate-pointer completions despite redeterminations")
	}
	nTasks, _ := store.C(TasksCollection).Count(nil)
	if nTasks >= len(fws) {
		t.Errorf("tasks (%d) should be fewer than fireworks (%d) thanks to dedup", nTasks, len(fws))
	}

	// Detours should have fired for ZBRENT-prone structures (12% base
	// rate at POTIM=0.5).
	detours, _ := engines.Count(document.D{"detour_of": document.D{"$exists": true}})
	if detours == 0 {
		t.Error("no detours occurred; ZBRENT handling untested")
	}

	// Successful tasks carry reduced results, not raw output.
	task, err := store.C(TasksCollection).FindOne(document.D{"state": "successful"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !task.Has("result.final_energy") {
		t.Error("task missing reduced result")
	}
	if task.Has("result.outcar") {
		t.Error("raw output leaked into the datastore")
	}
	if sz, ok := task.GetInt("result.raw_output_size"); !ok || sz < 500 {
		t.Errorf("raw_output_size = %d (parse/reduce bookkeeping missing)", sz)
	}

	// The cluster actually killed something at walltime or completed all;
	// either way virtual time advanced substantially.
	if cluster.Now() < time.Hour {
		t.Errorf("virtual makespan suspiciously small: %v", cluster.Now())
	}
}

// TestWalltimeKillRerunsOnCluster forces tiny walltimes so kills and
// re-runs happen, then verifies the work still finishes under a more
// generous policy.
func TestWalltimeKillRerunsOnCluster(t *testing.T) {
	store := datastore.MustOpenMemory()
	pad := NewLaunchPad(store, 8)
	RegisterVASP(pad)
	mps := store.C("mps")
	recs := icsd.Generate(icsd.Config{Seed: 77, DuplicateRate: 0}, 10)
	var fws []Firework
	for _, r := range recs {
		mdoc := r.ToDoc()
		mps.Insert(mdoc)
		fws = append(fws, NewVASPFirework(mdoc, "relax", dft.DefaultParams(), time.Hour))
	}
	if _, err := pad.AddWorkflow(fws); err != nil {
		t.Fatal(err)
	}
	// Walltime so short that long runs get killed mid-task.
	cluster := hpc.NewCluster(4, 0, hpc.Policy{})
	if _, err := DriveCluster(pad, NewVASPAssembler(store), cluster, "u", 4, 30*time.Minute, nil); err != nil {
		t.Fatal(err)
	}
	st := cluster.Stats()
	if st.TasksKilled == 0 {
		t.Error("no walltime kills with 30-minute farms; test premise broken")
	}
	engines := store.C(EnginesCollection)
	rerun, _ := engines.Count(document.D{"reruns": document.D{"$gte": 1}})
	if rerun == 0 {
		t.Error("no fireworks were re-run after kills")
	}
	nonTerminal, _ := engines.Count(document.D{"state": document.D{"$in": []any{
		string(StateWaiting), string(StateReady), string(StateRunning)}}})
	if nonTerminal != 0 {
		t.Errorf("%d fireworks stuck", nonTerminal)
	}
}
