package fireworks

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/obs"
)

// Collection names: execution state lives in engines, full results in
// tasks (§III-B2).
const (
	EnginesCollection = "engines"
	TasksCollection   = "tasks"
)

// ErrNoneReady is returned by Claim when no firework is claimable.
var ErrNoneReady = errors.New("fireworks: no ready firework")

var fwCounter atomic.Uint64
var wfCounter atomic.Uint64

func nextFWID() string { return fmt.Sprintf("fw-%08d", fwCounter.Add(1)) }
func nextWFID() string { return fmt.Sprintf("wf-%08d", wfCounter.Add(1)) }

// LaunchPad manages workflow state in the datastore. It is safe for
// concurrent use by multiple workers.
type LaunchPad struct {
	store     *datastore.Store
	engines   *datastore.Collection
	tasks     *datastore.Collection
	fuses     map[string]Fuse
	analyzers map[string]Analyzer
	maxReruns int

	// Lease machinery (see lease.go). leaseMu guards the three fields.
	leaseMu     sync.Mutex
	clock       func() float64
	leaseSecs   float64
	backoffBase float64

	// obsReg, when set, receives workflow-tier counters (claims,
	// completions, fizzles, lease renewals/losses) and the ready-queue
	// depth gauge.
	obsReg atomic.Pointer[obs.Registry]
}

// Observe wires the launchpad into a metrics registry (nil disables).
func (lp *LaunchPad) Observe(reg *obs.Registry) {
	lp.obsReg.Store(reg)
}

// count increments a fireworks.* counter when a registry is wired.
func (lp *LaunchPad) count(name string) {
	lp.obsReg.Load().Counter("fireworks." + name).Inc()
}

// gaugeQueueDepth refreshes the claimable-queue depth gauge. Costs one
// count query, so it is only taken when a registry is wired and only at
// natural sweep points (workflow add, lost-run sweeps).
func (lp *LaunchPad) gaugeQueueDepth() {
	reg := lp.obsReg.Load()
	if reg == nil {
		return
	}
	reg.Gauge("fireworks.ready_depth").Set(int64(lp.ReadyCount()))
}

// NewLaunchPad wires a launchpad to a store. maxReruns bounds automatic
// re-queues per firework before the workflow is defused (default 3 when
// <= 0).
func NewLaunchPad(store *datastore.Store, maxReruns int) *LaunchPad {
	if maxReruns <= 0 {
		maxReruns = 3
	}
	lp := &LaunchPad{
		store:       store,
		engines:     store.C(EnginesCollection),
		tasks:       store.C(TasksCollection),
		fuses:       map[string]Fuse{"": DefaultFuse{}, "default": DefaultFuse{}, "approval": ApprovalFuse{}},
		analyzers:   map[string]Analyzer{},
		maxReruns:   maxReruns,
		clock:       wallClock,
		leaseSecs:   defaultLeaseSecs,
		backoffBase: defaultBackoffBase,
	}
	lp.engines.EnsureIndex("state")
	lp.engines.EnsureIndex("wf_id")
	lp.tasks.EnsureIndex("binder_key")
	lp.tasks.EnsureIndex("fw_id")
	return lp
}

// RegisterFuse installs a named fuse implementation.
func (lp *LaunchPad) RegisterFuse(name string, f Fuse) { lp.fuses[name] = f }

// RegisterAnalyzer installs a named analyzer implementation.
func (lp *LaunchPad) RegisterAnalyzer(name string, a Analyzer) { lp.analyzers[name] = a }

// Store exposes the underlying datastore (read-only use expected).
func (lp *LaunchPad) Store() *datastore.Store { return lp.store }

// AddWorkflow registers a set of fireworks as one workflow and returns
// the workflow id. Parent references must stay within the set (or name
// already-existing fireworks). Roots whose fuses are satisfied become
// READY immediately.
func (lp *LaunchPad) AddWorkflow(fws []Firework) (string, error) {
	if len(fws) == 0 {
		return "", fmt.Errorf("fireworks: empty workflow")
	}
	wfID := nextWFID()
	ids := make(map[string]bool, len(fws))
	for i := range fws {
		if fws[i].ID == "" {
			fws[i].ID = nextFWID()
		}
		if ids[fws[i].ID] {
			return "", fmt.Errorf("fireworks: duplicate firework id %q", fws[i].ID)
		}
		ids[fws[i].ID] = true
	}
	for _, fw := range fws {
		if _, ok := lp.fuses[fw.Fuse]; !ok {
			return "", fmt.Errorf("fireworks: unknown fuse %q", fw.Fuse)
		}
		if fw.Analyzer != "" {
			if _, ok := lp.analyzers[fw.Analyzer]; !ok {
				return "", fmt.Errorf("fireworks: unknown analyzer %q", fw.Analyzer)
			}
		}
		for _, p := range fw.Parents {
			if !ids[p] {
				if _, err := lp.engines.FindID(p); err != nil {
					return "", fmt.Errorf("fireworks: firework %q references unknown parent %q", fw.ID, p)
				}
			}
		}
	}
	for _, fw := range fws {
		parents := make([]any, len(fw.Parents))
		for i, p := range fw.Parents {
			parents[i] = p
		}
		doc := document.D{
			"_id":          fw.ID,
			"wf_id":        wfID,
			"state":        string(StateWaiting),
			"stage":        map[string]any(document.NormalizeDoc(fw.Stage).Copy()),
			"parents":      parents,
			"fuse":         fw.Fuse,
			"analyzer":     fw.Analyzer,
			"priority":     int64(fw.Priority),
			"launches":     int64(0),
			"reruns":       int64(0),
			"spec_history": []any{},
		}
		if fw.Binder != nil {
			fields := make([]any, len(fw.Binder.Fields))
			for i, f := range fw.Binder.Fields {
				fields[i] = f
			}
			doc["binder_fields"] = fields
			doc["binder_key"] = fw.Binder.Key(document.NormalizeDoc(fw.Stage))
		}
		if _, err := lp.engines.Insert(doc); err != nil {
			return "", err
		}
	}
	for _, fw := range fws {
		if err := lp.Refresh(fw.ID); err != nil {
			return "", err
		}
	}
	if reg := lp.obsReg.Load(); reg != nil {
		reg.Counter("fireworks.added").Add(uint64(len(fws)))
	}
	lp.gaugeQueueDepth()
	return wfID, nil
}

// Refresh re-evaluates a WAITING firework's readiness: all parents
// COMPLETED and the fuse satisfied promotes it to READY.
func (lp *LaunchPad) Refresh(fwID string) error {
	fw, err := lp.engines.FindID(fwID)
	if err != nil {
		return err
	}
	if State(fw.GetString("state")) != StateWaiting {
		return nil
	}
	parents, err := lp.parentDocs(fw)
	if err != nil {
		return err
	}
	for _, p := range parents {
		if State(p.GetString("state")) != StateCompleted {
			return nil
		}
	}
	fuse := lp.fuses[fw.GetString("fuse")]
	if fuse == nil || !fuse.Ready(fw, parents) {
		return nil
	}
	_, err = lp.engines.UpdateOne(
		document.D{"_id": fwID, "state": string(StateWaiting)},
		document.D{"$set": document.D{"state": string(StateReady)}})
	return err
}

func (lp *LaunchPad) parentDocs(fw document.D) ([]document.D, error) {
	var out []document.D
	for _, p := range fw.GetArray("parents") {
		id, _ := p.(string)
		doc, err := lp.engines.FindID(id)
		if err != nil {
			return nil, fmt.Errorf("fireworks: parent %q: %w", id, err)
		}
		out = append(out, doc)
	}
	return out, nil
}

// Approve sets the approval flag consumed by ApprovalFuse and refreshes.
func (lp *LaunchPad) Approve(fwID string) error {
	if _, err := lp.engines.UpdateOne(
		document.D{"_id": fwID},
		document.D{"$set": document.D{"approved": true}}); err != nil {
		return err
	}
	return lp.Refresh(fwID)
}

// Claimed is a firework handed to a worker.
type Claimed struct {
	FWID  string
	Stage document.D // stage after fuse overrides
	Doc   document.D // full firework document at claim time
}

// Claim atomically takes the highest-priority READY firework for a
// worker, applying duplicate detection and fuse overrides. Fireworks
// whose binder key already has a successful task are completed with a
// pointer to the previous result and skipped ("replace the execution of
// duplicate jobs with a pointer"). Selector, when non-nil, further
// filters claimable fireworks — this is the paper's resource matching
// via queries on the input attributes, e.g.
// {"stage.nelectrons": {"$lte": 200}}.
func (lp *LaunchPad) Claim(workerID string, selector document.D) (*Claimed, error) {
	for {
		now := lp.now()
		leaseSecs, _ := lp.leaseParams()
		filter := claimableFilter(now)
		for k, v := range document.NormalizeDoc(selector) {
			filter[k] = v
		}
		fw, err := lp.engines.FindAndModify(filter,
			document.D{"$set": document.D{
				"state":         string(StateRunning),
				"worker":        workerID,
				"claimed_at_s":  now,
				"heartbeat_s":   now,
				"lease_until_s": now + leaseSecs,
			},
				"$inc": document.D{"launches": 1}},
			[]string{"-priority", "_id"}, true)
		if errors.Is(err, datastore.ErrNotFound) {
			return nil, ErrNoneReady
		}
		if err != nil {
			return nil, err
		}
		fwID := fw["_id"].(string)

		lp.count("claims")

		// Duplicate detection.
		if key := fw.GetString("binder_key"); key != "" {
			prior, err := lp.tasks.FindOne(document.D{"binder_key": key, "state": "successful"}, nil)
			if err == nil {
				if err := lp.completeWithPointer(fwID, prior["_id"].(string)); err != nil {
					return nil, err
				}
				lp.count("duplicates_skipped")
				continue // claim the next one
			}
			if !errors.Is(err, datastore.ErrNotFound) {
				return nil, err
			}
		}

		// Fuse override, recorded in spec_history.
		fuse := lp.fuses[fw.GetString("fuse")]
		stage := fw.GetDoc("stage").Copy()
		if fuse != nil {
			parents, err := lp.parentDocs(fw)
			if err != nil {
				return nil, err
			}
			if upd := fuse.Override(fw, parents); len(upd) > 0 {
				if err := lp.applyStageUpdate(fwID, upd, "fuse override"); err != nil {
					return nil, err
				}
				refreshed, err := lp.engines.FindID(fwID)
				if err != nil {
					return nil, err
				}
				fw = refreshed
				stage = fw.GetDoc("stage").Copy()
			}
		}
		return &Claimed{FWID: fwID, Stage: stage, Doc: fw}, nil
	}
}

// applyStageUpdate applies a Mongo-style update to the embedded stage and
// appends it to spec_history ("modifications returned by the Fuse ...
// stored within the FireWorks database for later analysis").
func (lp *LaunchPad) applyStageUpdate(fwID string, upd document.D, why string) error {
	// Rewrite paths to live under "stage." for operator updates.
	rewritten := document.D{}
	for op, body := range upd {
		m, ok := body.(map[string]any)
		if !ok {
			if d, isD := body.(document.D); isD {
				m = map[string]any(d)
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("fireworks: stage update %s must map fields to values", op)
		}
		nb := document.D{}
		for field, v := range m {
			nb["stage."+field] = v
		}
		rewritten[op] = map[string]any(nb)
	}
	histEntry := map[string]any{"why": why, "update": map[string]any(document.NormalizeDoc(upd))}
	rewritten["$push"] = mergePush(rewritten["$push"], histEntry)
	if _, err := lp.engines.UpdateOne(document.D{"_id": fwID}, rewritten); err != nil {
		return err
	}
	// Recompute binder key against the new stage.
	return lp.recomputeBinderKey(fwID)
}

func mergePush(existing any, histEntry map[string]any) map[string]any {
	out := map[string]any{}
	if m, ok := existing.(map[string]any); ok {
		for k, v := range m {
			out[k] = v
		}
	}
	out["spec_history"] = histEntry
	return out
}

func (lp *LaunchPad) recomputeBinderKey(fwID string) error {
	fw, err := lp.engines.FindID(fwID)
	if err != nil {
		return err
	}
	fields := fw.GetArray("binder_fields")
	if len(fields) == 0 {
		return nil
	}
	b := &Binder{}
	for _, f := range fields {
		if s, ok := f.(string); ok {
			b.Fields = append(b.Fields, s)
		}
	}
	_, err = lp.engines.UpdateOne(document.D{"_id": fwID},
		document.D{"$set": document.D{"binder_key": b.Key(fw.GetDoc("stage"))}})
	return err
}

// completeWithPointer finishes a firework by pointing at an existing
// task's result instead of executing.
func (lp *LaunchPad) completeWithPointer(fwID, taskID string) error {
	if _, err := lp.engines.UpdateOne(document.D{"_id": fwID},
		document.D{"$set": document.D{
			"state":  string(StateCompleted),
			"output": map[string]any{"duplicate_of": taskID},
		}}); err != nil {
		return err
	}
	return lp.onCompleted(fwID)
}

// Complete reports a finished launch. The outcome's result document is
// stored whole in tasks; the firework keeps only control-logic outputs.
// The analyzer (if any) then decides follow-up actions.
func (lp *LaunchPad) Complete(cl *Claimed, outcome *RunOutcome) error {
	fw, err := lp.engines.FindID(cl.FWID)
	if err != nil {
		return err
	}
	taskState := "successful"
	if outcome.Failed {
		taskState = "failed"
		lp.count("runs_failed")
	} else {
		lp.count("runs_completed")
	}
	taskDoc := document.D{
		"fw_id":      cl.FWID,
		"wf_id":      fw.GetString("wf_id"),
		"state":      taskState,
		"failure":    outcome.FailureKind,
		"stage":      map[string]any(cl.Stage.Copy()),
		"runtime_s":  outcome.Duration.Seconds(),
		"binder_key": fw.GetString("binder_key"),
	}
	if outcome.Result != nil {
		taskDoc["result"] = map[string]any(outcome.Result.Copy())
	}
	taskID, err := lp.tasks.Insert(taskDoc)
	if err != nil {
		return err
	}

	// Control-logic output summary on the firework itself.
	output := document.D{"task_id": taskID, "failure": outcome.FailureKind}
	if outcome.Result != nil {
		if v, ok := outcome.Result.Get("final_energy"); ok {
			output["final_energy"] = v
		}
		if v, ok := outcome.Result.Get("converged"); ok {
			output["converged"] = v
		}
	}
	if _, err := lp.engines.UpdateOne(document.D{"_id": cl.FWID},
		document.D{"$set": document.D{"output": map[string]any(output)}}); err != nil {
		return err
	}

	return lp.analyzeAndSettle(cl.FWID, fw, outcome, taskID)
}

// Killed reports a launch that died without output (walltime/machine
// failure). The analyzer decides whether to re-run.
func (lp *LaunchPad) Killed(cl *Claimed, kind string) error {
	return lp.Complete(cl, &RunOutcome{Failed: true, FailureKind: kind})
}

func (lp *LaunchPad) analyzeAndSettle(fwID string, fw document.D, outcome *RunOutcome, taskID string) error {
	var actions []Action
	if name := fw.GetString("analyzer"); name != "" {
		if an := lp.analyzers[name]; an != nil {
			fresh, err := lp.engines.FindID(fwID)
			if err != nil {
				return err
			}
			var resultDoc document.D
			if outcome.Result != nil {
				resultDoc = outcome.Result
			}
			actions = an.Analyze(fresh, resultDoc)
		}
	}
	if len(actions) == 0 {
		if outcome.Failed {
			// No automated repair available.
			return lp.defuse(fwID, "unhandled failure: "+outcome.FailureKind)
		}
		return lp.markCompleted(fwID)
	}
	for _, a := range actions {
		switch act := a.(type) {
		case Rerun:
			if err := lp.rerun(fwID, act); err != nil {
				return err
			}
		case Detour:
			if err := lp.detour(fwID, act); err != nil {
				return err
			}
		case AddFirework:
			if err := lp.addChild(fwID, fw.GetString("wf_id"), act.Firework); err != nil {
				return err
			}
			if err := lp.markCompleted(fwID); err != nil {
				return err
			}
		case Defuse:
			if err := lp.defuse(fwID, act.Reason); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fireworks: unknown action %T", a)
		}
	}
	_ = taskID
	return nil
}

// markCompleted finalizes a firework and unblocks dependents (children
// and, for detours, the original firework's dependents).
func (lp *LaunchPad) markCompleted(fwID string) error {
	if _, err := lp.engines.UpdateOne(document.D{"_id": fwID},
		document.D{"$set": document.D{"state": string(StateCompleted)}}); err != nil {
		return err
	}
	lp.count("completed")
	return lp.onCompleted(fwID)
}

func (lp *LaunchPad) onCompleted(fwID string) error {
	fw, err := lp.engines.FindID(fwID)
	if err != nil {
		return err
	}
	// A completed detour completes its original, so the rest of the
	// workflow "should be the same".
	if orig := fw.GetString("detour_of"); orig != "" {
		if _, err := lp.engines.UpdateOne(
			document.D{"_id": orig},
			document.D{"$set": document.D{
				"state":  string(StateCompleted),
				"output": map[string]any{"detoured_to": fwID, "task_id": fw.GetString("output.task_id")},
			}}); err != nil {
			return err
		}
		if err := lp.onCompleted(orig); err != nil {
			return err
		}
	}
	children, err := lp.engines.FindAll(document.D{"parents": fwID, "state": string(StateWaiting)}, nil)
	if err != nil {
		return err
	}
	for _, child := range children {
		if err := lp.Refresh(child["_id"].(string)); err != nil {
			return err
		}
	}
	return nil
}

func (lp *LaunchPad) rerun(fwID string, act Rerun) error {
	fw, err := lp.engines.FindID(fwID)
	if err != nil {
		return err
	}
	reruns, _ := fw.GetInt("reruns")
	if int(reruns) >= lp.maxReruns {
		return lp.defuse(fwID, fmt.Sprintf("rerun limit (%d) exhausted: %s", lp.maxReruns, act.Reason))
	}
	if act.StageUpdate != nil {
		if err := lp.applyStageUpdate(fwID, act.StageUpdate, "rerun: "+act.Reason); err != nil {
			return err
		}
	}
	if act.WalltimeScale > 0 {
		if cur, ok := fw.GetFloat("stage.walltime_s"); ok {
			if err := lp.applyStageUpdate(fwID,
				document.D{"$set": document.D{"walltime_s": cur * act.WalltimeScale}},
				"rerun walltime scale: "+act.Reason); err != nil {
				return err
			}
		}
	}
	lp.count("reruns")
	_, err = lp.engines.UpdateOne(document.D{"_id": fwID},
		document.D{"$set": document.D{"state": string(StateReady)},
			"$inc": document.D{"reruns": 1}})
	return err
}

func (lp *LaunchPad) detour(fwID string, act Detour) error {
	fw, err := lp.engines.FindID(fwID)
	if err != nil {
		return err
	}
	newID := nextFWID()
	doc := fw.Copy()
	doc["_id"] = newID
	doc["state"] = string(StateWaiting)
	doc["detour_of"] = fwID
	doc["launches"] = int64(0)
	doc["reruns"] = int64(0)
	doc["spec_history"] = []any{}
	delete(doc, "output")
	delete(doc, "worker")
	if _, err := lp.engines.Insert(doc); err != nil {
		return err
	}
	if act.StageUpdate != nil {
		if err := lp.applyStageUpdate(newID, act.StageUpdate, "detour: "+act.Reason); err != nil {
			return err
		}
	}
	if _, err := lp.engines.UpdateOne(document.D{"_id": fwID},
		document.D{"$set": document.D{"state": string(StateFizzled), "superseded_by": newID}}); err != nil {
		return err
	}
	lp.count("fizzled")
	lp.count("detours")
	return lp.Refresh(newID)
}

func (lp *LaunchPad) addChild(parentID, wfID string, fw Firework) error {
	if fw.ID == "" {
		fw.ID = nextFWID()
	}
	hasParent := false
	for _, p := range fw.Parents {
		if p == parentID {
			hasParent = true
		}
	}
	if !hasParent {
		fw.Parents = append(fw.Parents, parentID)
	}
	parents := make([]any, len(fw.Parents))
	for i, p := range fw.Parents {
		parents[i] = p
	}
	doc := document.D{
		"_id":          fw.ID,
		"wf_id":        wfID,
		"state":        string(StateWaiting),
		"stage":        map[string]any(document.NormalizeDoc(fw.Stage).Copy()),
		"parents":      parents,
		"fuse":         fw.Fuse,
		"analyzer":     fw.Analyzer,
		"priority":     int64(fw.Priority),
		"launches":     int64(0),
		"reruns":       int64(0),
		"spec_history": []any{},
	}
	if fw.Binder != nil {
		fields := make([]any, len(fw.Binder.Fields))
		for i, f := range fw.Binder.Fields {
			fields[i] = f
		}
		doc["binder_fields"] = fields
		doc["binder_key"] = fw.Binder.Key(document.NormalizeDoc(fw.Stage))
	}
	if _, err := lp.engines.Insert(doc); err != nil {
		return err
	}
	return lp.Refresh(fw.ID)
}

// defuse aborts the firework and every other non-terminal firework in its
// workflow ("abort the entire workflow and mark it for manual
// intervention").
func (lp *LaunchPad) defuse(fwID, reason string) error {
	fw, err := lp.engines.FindID(fwID)
	if err != nil {
		return err
	}
	wfID := fw.GetString("wf_id")
	lp.count("defused")
	if _, err := lp.engines.UpdateOne(document.D{"_id": fwID},
		document.D{"$set": document.D{"state": string(StateDefused), "defuse_reason": reason}}); err != nil {
		return err
	}
	_, err = lp.engines.UpdateMany(
		document.D{"wf_id": wfID, "state": document.D{"$in": []any{
			string(StateWaiting), string(StateReady)}}},
		document.D{"$set": document.D{"state": string(StateDefused),
			"defuse_reason": "workflow aborted: " + reason}})
	return err
}

// WorkflowStates returns state -> count for one workflow.
func (lp *LaunchPad) WorkflowStates(wfID string) (map[State]int, error) {
	docs, err := lp.engines.FindAll(document.D{"wf_id": wfID}, nil)
	if err != nil {
		return nil, err
	}
	out := make(map[State]int)
	for _, d := range docs {
		out[State(d.GetString("state"))]++
	}
	return out, nil
}

// Firework fetches one firework document.
func (lp *LaunchPad) Firework(fwID string) (document.D, error) {
	return lp.engines.FindID(fwID)
}

// ReadyCount reports how many fireworks are claimable.
func (lp *LaunchPad) ReadyCount() int {
	n, err := lp.engines.Count(document.D{"state": string(StateReady)})
	if err != nil {
		return 0
	}
	return n
}
