package fireworks

import (
	"errors"
	"testing"
	"time"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

func doc(s string) document.D { return document.MustFromJSON(s) }

func newPad(t *testing.T) *LaunchPad {
	t.Helper()
	return NewLaunchPad(datastore.MustOpenMemory(), 3)
}

// scriptedAssembler returns canned outcomes keyed by stage "job" field.
type scriptedAssembler map[string]*RunOutcome

func (s scriptedAssembler) Assemble(stage document.D) (*RunOutcome, error) {
	key := stage.GetString("job")
	out, ok := s[key]
	if !ok {
		return &RunOutcome{Duration: time.Minute, Result: document.D{"final_energy": -1.0, "converged": true}}, nil
	}
	return out, nil
}

func TestAddWorkflowAndStates(t *testing.T) {
	pad := newPad(t)
	wfID, err := pad.AddWorkflow([]Firework{
		{ID: "a", Stage: doc(`{"job": "a"}`)},
		{ID: "b", Stage: doc(`{"job": "b"}`), Parents: []string{"a"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	states, err := pad.WorkflowStates(wfID)
	if err != nil {
		t.Fatal(err)
	}
	if states[StateReady] != 1 || states[StateWaiting] != 1 {
		t.Errorf("states = %v", states)
	}
}

func TestAddWorkflowValidation(t *testing.T) {
	pad := newPad(t)
	if _, err := pad.AddWorkflow(nil); err == nil {
		t.Error("empty workflow accepted")
	}
	if _, err := pad.AddWorkflow([]Firework{{ID: "x"}, {ID: "x"}}); err == nil {
		t.Error("duplicate ids accepted")
	}
	if _, err := pad.AddWorkflow([]Firework{{ID: "a", Parents: []string{"ghost"}}}); err == nil {
		t.Error("unknown parent accepted")
	}
	if _, err := pad.AddWorkflow([]Firework{{ID: "a", Fuse: "nope"}}); err == nil {
		t.Error("unknown fuse accepted")
	}
	if _, err := pad.AddWorkflow([]Firework{{ID: "a", Analyzer: "nope"}}); err == nil {
		t.Error("unknown analyzer accepted")
	}
}

func TestClaimPriorityOrderAndSelector(t *testing.T) {
	pad := newPad(t)
	_, err := pad.AddWorkflow([]Firework{
		{ID: "low", Stage: doc(`{"job": "low", "nelectrons": 50}`), Priority: 1},
		{ID: "high", Stage: doc(`{"job": "high", "nelectrons": 500}`), Priority: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Selector excludes the high-priority firework (too many electrons),
	// mirroring the paper's job-to-resource matching query.
	cl, err := pad.Claim("w1", doc(`{"stage.nelectrons": {"$lte": 200}}`))
	if err != nil {
		t.Fatal(err)
	}
	if cl.FWID != "low" {
		t.Errorf("claimed %s", cl.FWID)
	}
	// Unfiltered claim takes priority order.
	cl2, err := pad.Claim("w2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cl2.FWID != "high" {
		t.Errorf("claimed %s", cl2.FWID)
	}
	if _, err := pad.Claim("w3", nil); !errors.Is(err, ErrNoneReady) {
		t.Errorf("err = %v", err)
	}
}

func TestDependencyChainUnblocks(t *testing.T) {
	pad := newPad(t)
	_, err := pad.AddWorkflow([]Firework{
		{ID: "parent", Stage: doc(`{"job": "p"}`)},
		{ID: "child", Stage: doc(`{"job": "c"}`), Parents: []string{"parent"}},
		{ID: "grandchild", Stage: doc(`{"job": "g"}`), Parents: []string{"child"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	asm := scriptedAssembler{}
	r := &Rocket{Pad: pad, Assembler: asm, WorkerID: "w"}
	n, err := r.RunLocal(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("launches = %d", n)
	}
	for _, id := range []string{"parent", "child", "grandchild"} {
		fw, _ := pad.Firework(id)
		if State(fw.GetString("state")) != StateCompleted {
			t.Errorf("%s state = %s", id, fw.GetString("state"))
		}
	}
	// Outputs recorded for control logic.
	fw, _ := pad.Firework("parent")
	if v, ok := fw.GetFloat("output.final_energy"); !ok || v != -1.0 {
		t.Errorf("output.final_energy = %v ok=%v", v, ok)
	}
}

func TestDuplicateDetectionViaBinder(t *testing.T) {
	pad := newPad(t)
	binder := &Binder{Fields: []string{"mps_id", "functional"}}
	_, err := pad.AddWorkflow([]Firework{
		{ID: "first", Stage: doc(`{"job": "a", "mps_id": "mps-1", "functional": "GGA"}`), Binder: binder},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := &Rocket{Pad: pad, Assembler: scriptedAssembler{}, WorkerID: "w"}
	if _, err := r.RunLocal(0); err != nil {
		t.Fatal(err)
	}
	// Resubmit "the same thing": a different user submits an identical job.
	_, err = pad.AddWorkflow([]Firework{
		{ID: "second", Stage: doc(`{"job": "b", "mps_id": "mps-1", "functional": "GGA"}`), Binder: binder},
		{ID: "third", Stage: doc(`{"job": "c", "mps_id": "mps-1", "functional": "GGA+U"}`), Binder: binder},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := r.RunLocal(0)
	if err != nil {
		t.Fatal(err)
	}
	// Only "third" (different functional) actually runs.
	if n != 1 {
		t.Errorf("launches = %d, want 1", n)
	}
	second, _ := pad.Firework("second")
	if State(second.GetString("state")) != StateCompleted {
		t.Errorf("second state = %s", second.GetString("state"))
	}
	if second.GetString("output.duplicate_of") == "" {
		t.Error("second lacks duplicate pointer")
	}
	// The tasks collection holds exactly two real runs.
	nTasks, _ := pad.Store().C(TasksCollection).Count(nil)
	if nTasks != 2 {
		t.Errorf("tasks = %d, want 2", nTasks)
	}
}

func TestWalltimeRerunDoublesWalltime(t *testing.T) {
	pad := newPad(t)
	RegisterVASP(pad)
	_, err := pad.AddWorkflow([]Firework{
		{ID: "fw", Stage: doc(`{"job": "x", "walltime_s": 3600}`), Analyzer: "vasp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := pad.Claim("w", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pad.Killed(cl, FailWalltime); err != nil {
		t.Fatal(err)
	}
	fw, _ := pad.Firework("fw")
	if State(fw.GetString("state")) != StateReady {
		t.Errorf("state = %s, want READY (rerun)", fw.GetString("state"))
	}
	if w, _ := fw.GetFloat("stage.walltime_s"); w != 7200 {
		t.Errorf("walltime = %v, want 7200", w)
	}
	if n, _ := fw.GetInt("reruns"); n != 1 {
		t.Errorf("reruns = %d", n)
	}
	hist := fw.GetArray("spec_history")
	if len(hist) == 0 {
		t.Error("spec_history empty after rerun")
	}
}

func TestRerunLimitDefuses(t *testing.T) {
	pad := NewLaunchPad(datastore.MustOpenMemory(), 2)
	RegisterVASP(pad)
	_, err := pad.AddWorkflow([]Firework{
		{ID: "doomed", Stage: doc(`{"job": "x", "walltime_s": 100}`), Analyzer: "vasp"},
		{ID: "dependent", Stage: doc(`{"job": "y"}`), Parents: []string{"doomed"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		cl, err := pad.Claim("w", nil)
		if err != nil {
			t.Fatalf("claim %d: %v", i, err)
		}
		if err := pad.Killed(cl, FailWalltime); err != nil {
			t.Fatal(err)
		}
	}
	fw, _ := pad.Firework("doomed")
	if State(fw.GetString("state")) != StateDefused {
		t.Errorf("state = %s, want DEFUSED", fw.GetString("state"))
	}
	// The whole workflow is aborted for manual intervention.
	dep, _ := pad.Firework("dependent")
	if State(dep.GetString("state")) != StateDefused {
		t.Errorf("dependent state = %s, want DEFUSED", dep.GetString("state"))
	}
}

func TestDetourReplacesAndCompletesOriginal(t *testing.T) {
	pad := newPad(t)
	RegisterVASP(pad)
	_, err := pad.AddWorkflow([]Firework{
		{ID: "orig", Stage: doc(`{"job": "zbrent", "params": {"potim": 0.5}}`), Analyzer: "vasp"},
		{ID: "child", Stage: doc(`{"job": "after"}`), Parents: []string{"orig"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	asm := scriptedAssembler{
		"zbrent": {Duration: time.Minute, Failed: true, FailureKind: "ZBRENT",
			Result: document.D{"converged": false}},
	}
	r := &Rocket{Pad: pad, Assembler: asm, WorkerID: "w"}
	// First launch fails with ZBRENT → detour created; the detour's stage
	// has potim lowered, so the scripted assembler's default (success)
	// applies on the next claim... but "job" is still "zbrent". Script the
	// detour by checking potim instead.
	asm2 := AssemblerFunc(func(stage document.D) (*RunOutcome, error) {
		if p, _ := stage.GetFloat("params.potim"); p > 0.3 && stage.GetString("job") == "zbrent" {
			return &RunOutcome{Duration: time.Minute, Failed: true, FailureKind: "ZBRENT",
				Result: document.D{"converged": false}}, nil
		}
		return &RunOutcome{Duration: time.Minute, Result: document.D{"final_energy": -2.0, "converged": true}}, nil
	})
	r.Assembler = asm2
	if _, err := r.RunLocal(0); err != nil {
		t.Fatal(err)
	}
	orig, _ := pad.Firework("orig")
	if State(orig.GetString("state")) != StateCompleted {
		t.Errorf("orig state = %s", orig.GetString("state"))
	}
	if orig.GetString("superseded_by") == "" {
		t.Error("orig not linked to detour")
	}
	if orig.GetString("output.detoured_to") == "" {
		t.Error("orig output lacks detour pointer")
	}
	child, _ := pad.Firework("child")
	if State(child.GetString("state")) != StateCompleted {
		t.Errorf("child state = %s (detour completion should unblock it)", child.GetString("state"))
	}
	// The detour firework has the modified parameter.
	detourID := orig.GetString("superseded_by")
	det, _ := pad.Firework(detourID)
	if p, _ := det.GetFloat("stage.params.potim"); p != 0.25 {
		t.Errorf("detour potim = %v", p)
	}
	if det.GetString("detour_of") != "orig" {
		t.Error("detour_of missing")
	}
}

func TestNonConvergenceIterationEscalatesNELM(t *testing.T) {
	pad := newPad(t)
	RegisterVASP(pad)
	_, err := pad.AddWorkflow([]Firework{
		{ID: "hard", Stage: doc(`{"job": "h", "params": {"nelm": 60, "algo": "Fast"}}`), Analyzer: "vasp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	attempts := 0
	asm := AssemblerFunc(func(stage document.D) (*RunOutcome, error) {
		attempts++
		nelm, _ := stage.GetInt("params.nelm")
		if nelm < 240 {
			return &RunOutcome{Duration: time.Minute, Failed: true, FailureKind: "NONCONV",
				Result: document.D{"converged": false}}, nil
		}
		return &RunOutcome{Duration: time.Minute, Result: document.D{"final_energy": -3.0, "converged": true}}, nil
	})
	r := &Rocket{Pad: pad, Assembler: asm, WorkerID: "w"}
	if _, err := r.RunLocal(0); err != nil {
		t.Fatal(err)
	}
	fw, _ := pad.Firework("hard")
	if State(fw.GetString("state")) != StateCompleted {
		t.Fatalf("state = %s", fw.GetString("state"))
	}
	if attempts != 3 { // 60 → 120 → 240
		t.Errorf("attempts = %d, want 3", attempts)
	}
	if nelm, _ := fw.GetInt("stage.params.nelm"); nelm != 240 {
		t.Errorf("final nelm = %d", nelm)
	}
	if algo := fw.GetString("stage.params.algo"); algo != "Normal" {
		t.Errorf("algo = %s", algo)
	}
}

func TestApprovalFuseDelaysLaunch(t *testing.T) {
	pad := newPad(t)
	_, err := pad.AddWorkflow([]Firework{
		{ID: "gated", Stage: doc(`{"job": "g"}`), Fuse: "approval"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pad.Claim("w", nil); !errors.Is(err, ErrNoneReady) {
		t.Fatalf("unapproved firework claimable: %v", err)
	}
	if err := pad.Approve("gated"); err != nil {
		t.Fatal(err)
	}
	cl, err := pad.Claim("w", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cl.FWID != "gated" {
		t.Errorf("claimed %s", cl.FWID)
	}
}

// carryEnergyFuse copies the parent's final energy into the stage — the
// paper's example of a Fuse "overriding input parameters prior to
// execution, based on the output state of any parent jobs".
type carryEnergyFuse struct{}

func (carryEnergyFuse) Ready(document.D, []document.D) bool { return true }
func (carryEnergyFuse) Override(_ document.D, parents []document.D) document.D {
	if len(parents) == 0 {
		return nil
	}
	e, ok := parents[0].GetFloat("output.final_energy")
	if !ok {
		return nil
	}
	return document.D{"$set": document.D{"parent_energy": e}}
}

func TestFuseOverrideRecordedInSpecHistory(t *testing.T) {
	pad := newPad(t)
	pad.RegisterFuse("carry", carryEnergyFuse{})
	_, err := pad.AddWorkflow([]Firework{
		{ID: "p", Stage: doc(`{"job": "p"}`)},
		{ID: "c", Stage: doc(`{"job": "c"}`), Parents: []string{"p"}, Fuse: "carry"},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := &Rocket{Pad: pad, Assembler: scriptedAssembler{}, WorkerID: "w"}
	if _, err := r.RunLocal(1); err != nil { // run parent only
		t.Fatal(err)
	}
	cl, err := pad.Claim("w", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := cl.Stage.GetFloat("parent_energy"); !ok || v != -1.0 {
		t.Errorf("override not applied: %v ok=%v", v, ok)
	}
	fw, _ := pad.Firework("c")
	hist := fw.GetArray("spec_history")
	if len(hist) != 1 {
		t.Fatalf("spec_history = %v", hist)
	}
	entry := document.D(hist[0].(map[string]any))
	if entry.GetString("why") != "fuse override" {
		t.Errorf("why = %s", entry.GetString("why"))
	}
}

func TestKPointConvergenceIteration(t *testing.T) {
	pad := newPad(t)
	RegisterVASP(pad)
	_, err := pad.AddWorkflow([]Firework{{
		ID:       "k0",
		Stage:    doc(`{"job": "k", "mps_id": "m-1", "params": {"kmesh": [2, 2, 2]}}`),
		Analyzer: "vasp+kconv",
		Binder:   &Binder{Fields: []string{"mps_id", "params.kmesh"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Energy per atom converges as mesh densifies: -1 - 1/k.
	asm := AssemblerFunc(func(stage document.D) (*RunOutcome, error) {
		mesh := stage.GetArray("params.kmesh")
		k, _ := document.AsFloat(mesh[0])
		e := -1 - 1/(k*k)
		return &RunOutcome{Duration: time.Minute,
			Result: document.D{"energy_per_atom": e, "final_energy": e, "converged": true}}, nil
	})
	r := &Rocket{Pad: pad, Assembler: asm, WorkerID: "w"}
	n, err := r.RunLocal(0)
	if err != nil {
		t.Fatal(err)
	}
	// k=2 (e=-1.25), k=4 (-1.0625, Δ=0.19), k=6 (-1.028, Δ=0.035),
	// k=8 (-1.0156, Δ=0.012), k=10 (-1.01, Δ=0.006 < 0.01 tol) → 5 runs.
	if n != 5 {
		t.Errorf("iterations = %d, want 5", n)
	}
	// All fireworks completed; the deepest iteration has kmesh 10.
	last, err := pad.Store().C(EnginesCollection).FindOne(nil, &datastore.FindOpts{Sort: []string{"-stage.iteration"}})
	if err != nil {
		t.Fatal(err)
	}
	mesh := last.GetArray("stage.params.kmesh")
	if k, _ := document.AsFloat(mesh[0]); k != 10 {
		t.Errorf("final kmesh = %v", k)
	}
	if it, _ := last.GetInt("stage.iteration"); it != 4 {
		t.Errorf("iteration counter = %d", it)
	}
}

func TestUnhandledFailureDefusesWithoutAnalyzer(t *testing.T) {
	pad := newPad(t)
	_, err := pad.AddWorkflow([]Firework{
		{ID: "f", Stage: doc(`{"job": "bad"}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	asm := scriptedAssembler{"bad": {Duration: time.Second, Failed: true, FailureKind: "MYSTERY"}}
	r := &Rocket{Pad: pad, Assembler: asm, WorkerID: "w"}
	if _, err := r.RunLocal(0); err != nil {
		t.Fatal(err)
	}
	fw, _ := pad.Firework("f")
	if State(fw.GetString("state")) != StateDefused {
		t.Errorf("state = %s", fw.GetString("state"))
	}
	if fw.GetString("defuse_reason") == "" {
		t.Error("defuse_reason empty")
	}
}

func TestBinderKey(t *testing.T) {
	b := &Binder{Fields: []string{"mps_id", "params.functional"}}
	k1 := b.Key(doc(`{"mps_id": "m-1", "params": {"functional": "GGA"}}`))
	k2 := b.Key(doc(`{"mps_id": "m-1", "params": {"functional": "GGA"}, "other": 5}`))
	k3 := b.Key(doc(`{"mps_id": "m-1", "params": {"functional": "GGA+U"}}`))
	if k1 != k2 {
		t.Error("irrelevant fields changed key")
	}
	if k1 == k3 {
		t.Error("functional did not change key")
	}
	if (&Binder{}).Key(doc(`{}`)) != "" {
		t.Error("empty binder key not empty")
	}
	kMissing := b.Key(doc(`{}`))
	if kMissing != "null|null" {
		t.Errorf("missing fields key = %q", kMissing)
	}
}
