package fireworks

import (
	"fmt"
	"testing"
	"time"

	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/faults"
	"matproj/internal/hpc"
)

// End-to-end chaos test: seeded worker crashes tear through a durable
// deployment mid-run, the journal tail is torn after shutdown, and the
// system must still converge — every workflow COMPLETED, no firework
// stuck in RUNNING, the store reopenable.

// sleepAssembler always succeeds after a fixed virtual duration.
type sleepAssembler struct{ dur time.Duration }

func (a sleepAssembler) Assemble(stage document.D) (*RunOutcome, error) {
	id := stage.GetString("payload")
	return &RunOutcome{
		Duration: a.dur,
		Result:   document.D{"payload": id, "converged": true},
	}, nil
}

func addChaosWorkflows(t *testing.T, pad *LaunchPad, n int) []string {
	t.Helper()
	wfIDs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		parent := fmt.Sprintf("fw-chaos-%02d-a", i)
		child := fmt.Sprintf("fw-chaos-%02d-b", i)
		wfID, err := pad.AddWorkflow([]Firework{
			{ID: parent, Stage: document.D{"payload": parent}},
			{ID: child, Stage: document.D{"payload": child}, Parents: []string{parent}},
		})
		if err != nil {
			t.Fatal(err)
		}
		wfIDs = append(wfIDs, wfID)
	}
	return wfIDs
}

func assertAllCompleted(t *testing.T, pad *LaunchPad, wfIDs []string, label string) {
	t.Helper()
	for _, wfID := range wfIDs {
		states, err := pad.WorkflowStates(wfID)
		if err != nil {
			t.Fatal(err)
		}
		for st, n := range states {
			if st != StateCompleted && n > 0 {
				t.Fatalf("%s: workflow %s has %d fireworks in %s", label, wfID, n, st)
			}
		}
	}
	if n, _ := pad.Store().C(EnginesCollection).Count(document.D{"state": string(StateRunning)}); n != 0 {
		t.Fatalf("%s: %d fireworks stuck RUNNING", label, n)
	}
}

func TestChaosRunConvergesAndSurvivesTornJournal(t *testing.T) {
	dir := t.TempDir()
	store, err := datastore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pad := NewLaunchPad(store, 5)
	pad.ConfigureLeases(2*3600, 60) // 2h lease, 1min backoff base (virtual)
	wfIDs := addChaosWorkflows(t, pad, 8)

	injector := faults.New(faults.Config{Seed: 1234, WorkerCrashRate: 0.3})
	cluster := hpc.NewCluster(4, 0, hpc.Policy{})
	cluster.InjectFaults(injector)

	// Phase 1: drive the whole load through a crashing cluster. The
	// sweep inside DriveCluster must reclaim every lost run. Walltime
	// is ample so the only job deaths are the injected crashes (these
	// fireworks have no analyzer to rerun a walltime kill).
	jobs, err := DriveCluster(pad, sleepAssembler{dur: time.Hour}, cluster,
		"chaos", 4, 1000*time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	if jobs == 0 {
		t.Fatal("no jobs submitted")
	}
	st := cluster.Stats()
	if st.WorkerCrashes == 0 {
		t.Fatal("chaos run injected no crashes — test is vacuous; change the seed")
	}
	assertAllCompleted(t, pad, wfIDs, "after chaos drive")
	t.Logf("phase 1: %d jobs, %d crashes, makespan %v", jobs, st.WorkerCrashes, st.Makespan)

	// Phase 2: a fresh workflow is claimed and its worker dies for good
	// (no Complete ever arrives); the process shuts down and the final
	// journal write is torn.
	extraWF, err := pad.AddWorkflow([]Firework{{ID: "fw-chaos-victim", Stage: document.D{"payload": "victim"}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pad.Claim("doomed-worker", nil); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	cut, err := injector.TearTail(datastore.JournalFile(dir), 48)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("phase 2: tore %d bytes", cut)

	// Phase 3: reopen. Replay must repair the tail (unless the tear
	// only removed the trailing newline) and every prior workflow must
	// still be COMPLETED.
	store2, err := datastore.Open(dir)
	if err != nil {
		t.Fatalf("reopen after tear: %v", err)
	}
	defer store2.Close()
	rec := store2.Recovery()
	if cut > 1 && !rec.Repaired {
		t.Fatalf("tear of %d bytes not repaired: %+v", cut, rec)
	}
	pad2 := NewLaunchPad(store2, 5)
	assertAllCompleted(t, pad2, wfIDs, "after reopen")

	// The victim is either RUNNING (claim survived the tear) or READY
	// (claim was the torn record). Lease sweep plus a healthy worker
	// must finish it either way.
	clk := &fakeClock{t: 1e9}
	pad2.SetClock(clk.now)
	pad2.ConfigureLeases(60, 10)
	if _, err := pad2.DetectLostRuns(); err != nil {
		t.Fatal(err)
	}
	if at, ok := pad2.NextClaimableAt(); ok && at > clk.t {
		clk.t = at + 1
	}
	r := &Rocket{Pad: pad2, Assembler: sleepAssembler{dur: time.Hour}, WorkerID: "healthy"}
	if _, err := r.RunLocal(0); err != nil {
		t.Fatal(err)
	}
	assertAllCompleted(t, pad2, append(wfIDs, extraWF), "after recovery")
}

// TestChaosDeterminism: the same seed must reproduce the same fault
// sequence and therefore the same final statistics.
func TestChaosDeterminism(t *testing.T) {
	run := func() (int, hpc.Stats) {
		store := datastore.MustOpenMemory()
		pad := NewLaunchPad(store, 5)
		pad.ConfigureLeases(2*3600, 60)
		addChaosWorkflows(t, pad, 6)
		cluster := hpc.NewCluster(3, 0, hpc.Policy{})
		cluster.InjectFaults(faults.New(faults.Config{Seed: 99, WorkerCrashRate: 0.35}))
		jobs, err := DriveCluster(pad, sleepAssembler{dur: 30 * time.Minute}, cluster,
			"det", 3, 500*time.Hour, nil)
		if err != nil {
			t.Fatal(err)
		}
		return jobs, cluster.Stats()
	}
	j1, s1 := run()
	j2, s2 := run()
	if j1 != j2 || s1 != s2 {
		t.Fatalf("chaos run not deterministic:\n  %d jobs %+v\n  %d jobs %+v", j1, s1, j2, s2)
	}
}
