package vclock

import (
	"testing"
	"time"
)

func TestFakeNowAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	f := NewFake(start)
	if got := f.Now(); !got.Equal(start) {
		t.Fatalf("Now = %v, want %v", got, start)
	}
	f.Advance(90 * time.Second)
	if got := f.Now(); !got.Equal(start.Add(90 * time.Second)) {
		t.Fatalf("Now after Advance = %v", got)
	}
	if s := Seconds(f); s != 1090 {
		t.Fatalf("Seconds = %v, want 1090", s)
	}
}

func TestFakeSleepWokenByAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		f.Sleep(10 * time.Second)
		close(done)
	}()
	// Wait for the sleeper to register before advancing; otherwise the
	// advances can run first and the wake-up lands past both of them.
	for {
		f.mu.Lock()
		registered := len(f.wakeups) > 0
		f.mu.Unlock()
		if registered {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// The sleeper must not wake before the clock passes its deadline.
	f.Advance(5 * time.Second)
	select {
	case <-done:
		t.Fatal("Sleep returned before the clock reached the deadline")
	case <-time.After(10 * time.Millisecond):
	}
	f.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not wake after Advance past the deadline")
	}
}

func TestFakeTicker(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tk := f.NewTicker(time.Second)
	select {
	case <-tk.Chan():
		t.Fatal("tick before any time elapsed")
	default:
	}
	f.Advance(time.Second)
	select {
	case <-tk.Chan():
	default:
		t.Fatal("no tick after one interval")
	}
	// Coalescing: a long advance delivers at most the buffered tick.
	f.Advance(10 * time.Second)
	<-tk.Chan()
	tk.Stop()
	f.Advance(time.Second)
	select {
	case <-tk.Chan():
		t.Fatal("tick after Stop")
	default:
	}
}

func TestWallTicker(t *testing.T) {
	tk := Wall.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.Chan():
	case <-time.After(2 * time.Second):
		t.Fatal("wall ticker never ticked")
	}
}
