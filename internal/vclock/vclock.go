// Package vclock is the sanctioned home for wall-clock access.
//
// The fault-injection, lease, and health machinery (PRs 1–3) is
// deterministic only while every time-dependent decision flows through
// an injectable source. mplint's clockdiscipline analyzer forbids
// direct time.Now / time.Sleep / time.NewTicker calls in internal/
// packages; production code takes a vclock.Clock (defaulting to Wall)
// and tests substitute a Fake driven by Advance.
package vclock

import (
	"sync"
	"time"
)

// Clock is the minimal time source the health loops and lease sweeps
// need: reading the current instant, blocking for a duration, and
// ticking at an interval.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	NewTicker(d time.Duration) Ticker
}

// Ticker is the injectable subset of time.Ticker.
type Ticker interface {
	// Chan returns the channel ticks are delivered on.
	Chan() <-chan time.Time
	Stop()
}

// Wall is the real wall clock. This package is the only internal/
// package allowed to call into package time directly.
var Wall Clock = wall{}

type wall struct{}

func (wall) Now() time.Time          { return time.Now() }
func (wall) Sleep(d time.Duration)   { time.Sleep(d) }
func (wall) NewTicker(d time.Duration) Ticker {
	return wallTicker{t: time.NewTicker(d)}
}

type wallTicker struct{ t *time.Ticker }

func (w wallTicker) Chan() <-chan time.Time { return w.t.C }
func (w wallTicker) Stop()                  { w.t.Stop() }

// Seconds reports c's current time as float64 seconds, the unit the
// fireworks lease machinery uses (only differences matter).
func Seconds(c Clock) float64 {
	return float64(c.Now().UnixNano()) / 1e9
}

// Fake is a manually advanced Clock for deterministic tests. Sleep
// blocks until Advance moves the clock past the wake-up time; tickers
// fire once per elapsed interval during an Advance.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	wakeups []*fakeWaiter
	tickers []*fakeTicker
}

type fakeWaiter struct {
	at time.Time
	ch chan struct{}
}

// NewFake returns a Fake clock starting at start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Advance moves the clock forward, waking due sleepers and delivering
// due ticks (non-blocking: a tick is dropped if nobody is receiving,
// matching time.Ticker's coalescing behavior).
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	now := f.now
	var due []*fakeWaiter
	rest := f.wakeups[:0]
	for _, w := range f.wakeups {
		if !w.at.After(now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	f.wakeups = rest
	tickers := append([]*fakeTicker(nil), f.tickers...)
	f.mu.Unlock()

	for _, w := range due {
		close(w.ch)
	}
	for _, t := range tickers {
		t.deliver(now)
	}
}

func (f *Fake) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	f.mu.Lock()
	w := &fakeWaiter{at: f.now.Add(d), ch: make(chan struct{})}
	f.wakeups = append(f.wakeups, w)
	f.mu.Unlock()
	<-w.ch
}

func (f *Fake) NewTicker(d time.Duration) Ticker {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTicker{f: f, interval: d, next: f.now.Add(d), ch: make(chan time.Time, 1)}
	f.tickers = append(f.tickers, t)
	return t
}

type fakeTicker struct {
	f        *Fake
	mu       sync.Mutex
	interval time.Duration
	next     time.Time
	stopped  bool
	ch       chan time.Time
}

func (t *fakeTicker) Chan() <-chan time.Time { return t.ch }

func (t *fakeTicker) Stop() {
	t.mu.Lock()
	t.stopped = true
	t.mu.Unlock()
}

func (t *fakeTicker) deliver(now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return
	}
	for !t.next.After(now) {
		t.next = t.next.Add(t.interval)
		select {
		case t.ch <- now:
		default:
		}
	}
}
