// Open-loop replay and the bounded-staleness probe.
//
// Replay (webload.go) is closed-loop: each query waits for the last, so
// a slow server throttles its own load and the measured latencies are
// flattering. The open-loop runner here dispatches at a fixed arrival
// rate regardless of completions — the honest way to measure tail
// latency under failure (queries queue up behind a stall instead of
// politely waiting it out), which is what the Fig. 5 reproduction and
// the failover SLO gate need.
package webload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/obs"
	"matproj/internal/vclock"
)

// NewVocabGenerator builds a generator from explicit vocabulary instead
// of sampling a live collection — for drivers (HTTP load tools) that
// have no direct store handle.
func NewVocabGenerator(seed int64, formulas, elements []string) (*Generator, error) {
	if len(formulas) == 0 || len(elements) == 0 {
		return nil, fmt.Errorf("webload: empty vocabulary")
	}
	g := &Generator{
		rng:      rand.New(rand.NewSource(seed)),
		formulas: append([]string(nil), formulas...),
		elements: append([]string(nil), elements...),
	}
	for i := 0; i < 40; i++ {
		g.users = append(g.users, fmt.Sprintf("user%02d", i))
	}
	return g, nil
}

// Exec runs one query against whatever backend the driver targets (the
// in-process engine, or an HTTP client) and returns the row count.
type Exec func(q Query) (returned int, err error)

// OpenLoopConfig parameterizes RunOpenLoop.
type OpenLoopConfig struct {
	// Rate is the arrival rate in queries/second (> 0).
	Rate float64
	// Duration bounds the dispatch window; the total query count is
	// Rate * Duration (the runner then drains in-flight queries).
	Duration time.Duration
	// Clock paces dispatch; nil uses the wall clock.
	Clock vclock.Clock
	// Reg, when set, records each latency in the "webload.query_ms"
	// histogram (Fig. 5 buckets) as the run progresses.
	Reg *obs.Registry
}

// OpenLoopResult summarizes a run.
type OpenLoopResult struct {
	// Sent counts dispatched queries; Errors the failed ones. Failed
	// queries still contribute a latency sample — an error that took
	// two seconds to surface is two seconds the user waited.
	Sent    int
	Errors  int
	Records int
	Samples []Sample
}

// RunOpenLoop dispatches queries at a fixed rate, one goroutine per
// arrival, and waits for all of them. It never aborts early: per-query
// errors are counted, not fatal, because a failover test is precisely
// about what happens while some requests fail.
func (g *Generator) RunOpenLoop(exec Exec, cfg OpenLoopConfig) (*OpenLoopResult, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("webload: open-loop rate must be positive, got %g", cfg.Rate)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = vclock.Wall
	}
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	total := int(cfg.Rate * cfg.Duration.Seconds())
	if total <= 0 {
		total = 1
	}
	var hist *obs.Histogram
	if cfg.Reg != nil {
		hist = cfg.Reg.LatencyHistogram("webload.query_ms")
	}

	res := &OpenLoopResult{Samples: make([]Sample, 0, total)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var errs, records atomic.Int64

	ticker := clock.NewTicker(interval)
	defer ticker.Stop()
	for i := 0; i < total; i++ {
		if i > 0 {
			<-ticker.Chan()
		}
		q := g.Next()
		seq := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			returned, err := exec(q)
			lat := time.Since(start)
			if err != nil {
				errs.Add(1)
			} else {
				records.Add(int64(returned))
			}
			if hist != nil {
				hist.ObserveDuration(lat)
			}
			mu.Lock()
			res.Samples = append(res.Samples, Sample{Kind: q.Kind, Latency: lat, Returned: returned, Seq: seq})
			mu.Unlock()
		}()
	}
	wg.Wait()
	res.Sent = total
	res.Errors = int(errs.Load())
	res.Records = int(records.Load())
	return res, nil
}

// LatencyQuantile returns the exact nearest-rank q-quantile (0 < q <= 1)
// of the sample latencies — no bucketing error, unlike the histogram.
func LatencyQuantile(samples []Sample, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	lats := make([]time.Duration, len(samples))
	for i, s := range samples {
		lats[i] = s.Latency
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := int(q*float64(len(lats))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lats) {
		idx = len(lats) - 1
	}
	return lats[idx]
}

// Probe tracks the highest write-acknowledged probe sequence for the
// bounded-staleness check. A writer goroutine inserts ProbeDoc(n) docs
// and calls Ack(n) only after the cluster acknowledges the insert; a
// reader snapshots Acked() *before* issuing a probe read, so every
// sequence at or below the snapshot was durably acked when the read
// began.
type Probe struct {
	acked atomic.Int64
}

// Ack records that probe seq was acknowledged (monotonic max).
func (p *Probe) Ack(seq int64) {
	for {
		cur := p.acked.Load()
		if seq <= cur || p.acked.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// Acked returns the highest acknowledged probe sequence.
func (p *Probe) Acked() int64 { return p.acked.Load() }

// ProbeDoc builds the probe document for sequence seq. The fixed _id
// makes re-runs idempotent per seq; probe docs are the only writes the
// staleness check assumes during a run.
func ProbeDoc(seq int64) map[string]any {
	return map[string]any{
		"_id":       fmt.Sprintf("probe-%d", seq),
		"probe":     true,
		"probe_seq": seq,
	}
}

// ProbeFilter matches all probe docs.
func ProbeFilter() document.D { return document.D{"probe": true} }

// ProbeOpts asks for the single freshest probe, routed with the given
// staleness budget.
func ProbeOpts(maxStale int) *datastore.FindOpts {
	return &datastore.FindOpts{Sort: []string{"-probe_seq"}, Limit: 1, MaxStaleness: maxStale}
}

// ObservedSeq extracts the probe sequence from a probe-read result (-1
// when no probe doc was visible yet).
func ObservedSeq(docs []document.D) int64 {
	if len(docs) == 0 {
		return -1
	}
	v, ok := docs[0].GetFloat("probe_seq")
	if !ok {
		return -1
	}
	return int64(v)
}

// ProbeViolation decides whether a probe read proves the staleness
// bound was broken. acked must be snapshotted before the read was
// issued; groups is the cluster's shard-group count.
//
// Why the groups factor: generations are per shard group while probe
// sequences are global. If observed < acked - groups*maxStale then more
// than groups*maxStale acked probes are invisible, so by pigeonhole
// some single group is missing more than maxStale acked writes — and a
// replica missing K+1 acked entries trails its group's acked head by
// more than K generations. Anything at or above the threshold is
// explainable by legal per-group lag and is not a violation.
func ProbeViolation(observed, acked int64, groups, maxStale int) bool {
	if groups < 1 {
		groups = 1
	}
	return observed < acked-int64(groups)*int64(maxStale)
}
