package webload

import (
	"fmt"
	"testing"
	"time"

	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/queryengine"
)

func corpus(tb testing.TB, n int) (*datastore.Store, *datastore.Collection) {
	tb.Helper()
	store := datastore.MustOpenMemory()
	mats := store.C("materials")
	elements := [][]any{
		{"Li", "Fe", "O"}, {"Na", "Cl"}, {"Fe", "O"}, {"Li", "Co", "O"}, {"Mg", "O"},
	}
	for i := 0; i < n; i++ {
		_, err := mats.Insert(document.D{
			"_id":            fmt.Sprintf("mat-%05d", i),
			"pretty_formula": fmt.Sprintf("F%d", i%50),
			"elements":       elements[i%len(elements)],
			"band_gap":       float64(i%50) / 10,
			"e_per_atom":     -1 - float64(i%30)/10,
			"nelectrons":     float64(20 + i%300),
		})
		if err != nil {
			tb.Fatal(err)
		}
	}
	mats.EnsureIndex("pretty_formula")
	mats.EnsureIndex("elements")
	return store, mats
}

func TestGeneratorDeterministic(t *testing.T) {
	_, mats := corpus(t, 200)
	g1, err := NewGenerator(42, mats)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(42, mats)
	for i := 0; i < 50; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Kind != b.Kind || a.User != b.User {
			t.Fatalf("divergence at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestGeneratorMixCoversAllKinds(t *testing.T) {
	_, mats := corpus(t, 200)
	g, _ := NewGenerator(7, mats)
	seen := map[QueryKind]int{}
	for i := 0; i < 500; i++ {
		seen[g.Next().Kind]++
	}
	for _, k := range []QueryKind{KindFormula, KindElements, KindRange, KindBrowse, KindCount} {
		if seen[k] == 0 {
			t.Errorf("kind %s never generated", k)
		}
	}
	// Formula lookups dominate per the configured mix.
	if seen[KindFormula] < seen[KindCount] {
		t.Errorf("mix skewed: %v", seen)
	}
}

func TestGeneratorEmptyCorpus(t *testing.T) {
	store := datastore.MustOpenMemory()
	if _, err := NewGenerator(1, store.C("materials")); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestReplayRecordsSamplesAndRecords(t *testing.T) {
	store, mats := corpus(t, 300)
	g, _ := NewGenerator(3, mats)
	eng := queryengine.New(store)
	samples, records, err := Replay(g, eng, "materials", 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 200 {
		t.Fatalf("samples = %d", len(samples))
	}
	var totalReturned int
	for i, s := range samples {
		if s.Latency < 0 {
			t.Errorf("negative latency at %d", i)
		}
		if s.Seq != i {
			t.Errorf("seq %d != %d", s.Seq, i)
		}
		totalReturned += s.Returned
	}
	if totalReturned != records {
		t.Errorf("records = %d, sum = %d", records, totalReturned)
	}
	if records == 0 {
		t.Error("workload returned nothing; corpus sampling broken")
	}
}

func TestReplayThroughRateLimiterPropagatesError(t *testing.T) {
	store, mats := corpus(t, 100)
	g, _ := NewGenerator(3, mats)
	eng := queryengine.New(store, queryengine.WithRateLimit(1, time.Hour))
	// 40 users × 1 query budget: a long replay must eventually trip.
	_, _, err := Replay(g, eng, "materials", 500)
	if err == nil {
		t.Error("rate limiter never tripped")
	}
}
