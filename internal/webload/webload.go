// Package webload generates and replays the synthetic web-query workload
// behind the Fig. 5 reproduction: a deterministic mix of the query shapes
// the Materials Project portal served (formula lookups, element-set
// searches, property range scans, paginated browses), replayed against
// the store through the QueryEngine with latencies recorded per query.
package webload

import (
	"fmt"
	"math/rand"
	"time"

	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/queryengine"
)

// QueryKind labels the workload mix components.
type QueryKind string

// Workload query kinds.
const (
	KindFormula  QueryKind = "formula"  // exact formula lookup
	KindElements QueryKind = "elements" // $all element-set search
	KindRange    QueryKind = "range"    // property range scan
	KindBrowse   QueryKind = "browse"   // paginated sorted browse
	KindCount    QueryKind = "count"    // summary count
)

// Query is one synthetic request.
type Query struct {
	Kind   QueryKind
	User   string
	Filter document.D
	Opts   *datastore.FindOpts
}

// Generator produces a deterministic query stream over a materials
// corpus.
type Generator struct {
	rng      *rand.Rand
	formulas []string
	elements []string
	users    []string
}

// NewGenerator samples vocabulary (formulas, element symbols) from the
// materials collection so generated queries hit real data.
func NewGenerator(seed int64, materials *datastore.Collection) (*Generator, error) {
	formulasAny, err := materials.Distinct("pretty_formula", nil)
	if err != nil {
		return nil, err
	}
	elementsAny, err := materials.Distinct("elements", nil)
	if err != nil {
		return nil, err
	}
	g := &Generator{rng: rand.New(rand.NewSource(seed))}
	for _, f := range formulasAny {
		if s, ok := f.(string); ok {
			g.formulas = append(g.formulas, s)
		}
	}
	for _, e := range elementsAny {
		if s, ok := e.(string); ok {
			g.elements = append(g.elements, s)
		}
	}
	if len(g.formulas) == 0 || len(g.elements) == 0 {
		return nil, fmt.Errorf("webload: materials collection too sparse to sample a workload")
	}
	for i := 0; i < 40; i++ {
		g.users = append(g.users, fmt.Sprintf("user%02d", i))
	}
	return g, nil
}

// Next produces the next query. The mix loosely follows an interactive
// portal: mostly precise lookups, some broader scans.
func (g *Generator) Next() Query {
	user := g.users[g.rng.Intn(len(g.users))]
	switch p := g.rng.Float64(); {
	case p < 0.35:
		return Query{Kind: KindFormula, User: user,
			Filter: document.D{"pretty_formula": g.formulas[g.rng.Intn(len(g.formulas))]}}
	case p < 0.6:
		n := 1 + g.rng.Intn(2)
		if n > len(g.elements) {
			n = len(g.elements)
		}
		set := make([]any, 0, n)
		seen := map[string]bool{}
		for len(set) < n {
			e := g.elements[g.rng.Intn(len(g.elements))]
			if !seen[e] {
				seen[e] = true
				set = append(set, e)
			}
		}
		return Query{Kind: KindElements, User: user,
			Filter: document.D{"elements": document.D{"$all": set}}}
	case p < 0.8:
		lo := g.rng.Float64() * 3
		return Query{Kind: KindRange, User: user,
			Filter: document.D{"band_gap": document.D{"$gte": lo, "$lt": lo + 1.5}}}
	case p < 0.93:
		return Query{Kind: KindBrowse, User: user,
			Opts: &datastore.FindOpts{Sort: []string{"e_per_atom"}, Skip: g.rng.Intn(50), Limit: 20}}
	default:
		return Query{Kind: KindCount, User: user,
			Filter: document.D{"nelectrons": document.D{"$lte": float64(50 + g.rng.Intn(300))}}}
	}
}

// Sample is one replayed query's measurement.
type Sample struct {
	Kind     QueryKind
	Latency  time.Duration
	Returned int
	Seq      int
}

// Replay runs n queries through the engine against the named collection,
// returning per-query samples. Distinct-user accounting matches the
// paper's weekly "3315 distinct queries returning 12,951,099 records"
// bookkeeping: the second return is total records returned.
func Replay(g *Generator, eng *queryengine.Engine, collection string, n int) ([]Sample, int, error) {
	samples := make([]Sample, 0, n)
	totalRecords := 0
	for i := 0; i < n; i++ {
		q := g.Next()
		start := time.Now()
		var returned int
		switch q.Kind {
		case KindCount:
			c, err := eng.Count(q.User, collection, q.Filter)
			if err != nil {
				return samples, totalRecords, err
			}
			returned = c
		default:
			docs, err := eng.Find(q.User, collection, q.Filter, q.Opts)
			if err != nil {
				return samples, totalRecords, err
			}
			returned = len(docs)
		}
		samples = append(samples, Sample{
			Kind:     q.Kind,
			Latency:  time.Since(start),
			Returned: returned,
			Seq:      i,
		})
		totalRecords += returned
	}
	return samples, totalRecords, nil
}
