package webload

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"matproj/internal/obs"
)

func TestVocabGenerator(t *testing.T) {
	if _, err := NewVocabGenerator(1, nil, []string{"Fe"}); err == nil {
		t.Fatal("expected error for empty formulas")
	}
	g, err := NewVocabGenerator(7, []string{"Fe2O3", "LiFePO4"}, []string{"Fe", "O", "Li"})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[QueryKind]int{}
	for i := 0; i < 500; i++ {
		kinds[g.Next().Kind]++
	}
	for _, k := range []QueryKind{KindFormula, KindElements, KindRange, KindBrowse, KindCount} {
		if kinds[k] == 0 {
			t.Errorf("kind %s never generated", k)
		}
	}
	// Determinism: same seed, same stream.
	g2, _ := NewVocabGenerator(7, []string{"Fe2O3", "LiFePO4"}, []string{"Fe", "O", "Li"})
	for i := 0; i < 50; i++ {
		a, b := g2.Next(), g2.Next()
		_ = a
		_ = b
	}
	ga, _ := NewVocabGenerator(11, []string{"A"}, []string{"B"})
	gb, _ := NewVocabGenerator(11, []string{"A"}, []string{"B"})
	for i := 0; i < 100; i++ {
		qa, qb := ga.Next(), gb.Next()
		if qa.Kind != qb.Kind || qa.User != qb.User {
			t.Fatalf("streams diverged at %d: %v vs %v", i, qa.Kind, qb.Kind)
		}
	}
}

func TestRunOpenLoopDispatchesAll(t *testing.T) {
	g, err := NewVocabGenerator(3, []string{"Fe2O3"}, []string{"Fe", "O"})
	if err != nil {
		t.Fatal(err)
	}
	var calls, fails atomic.Int64
	reg := obs.NewRegistry()
	res, err := g.RunOpenLoop(func(q Query) (int, error) {
		n := calls.Add(1)
		if n%5 == 0 {
			fails.Add(1)
			return 0, fmt.Errorf("synthetic failure")
		}
		return 2, nil
	}, OpenLoopConfig{Rate: 2000, Duration: 40 * time.Millisecond, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	want := int(2000 * 0.040)
	if res.Sent != want {
		t.Fatalf("sent %d, want %d", res.Sent, want)
	}
	if int64(res.Sent) != calls.Load() {
		t.Fatalf("exec called %d times for %d sends", calls.Load(), res.Sent)
	}
	if len(res.Samples) != res.Sent {
		t.Fatalf("%d samples for %d sends", len(res.Samples), res.Sent)
	}
	if int64(res.Errors) != fails.Load() {
		t.Fatalf("errors %d, want %d", res.Errors, fails.Load())
	}
	if res.Records != (res.Sent-res.Errors)*2 {
		t.Fatalf("records %d, want %d", res.Records, (res.Sent-res.Errors)*2)
	}
	if h, ok := reg.Snapshot().Histograms["webload.query_ms"]; !ok || h.Count != uint64(res.Sent) {
		t.Fatalf("histogram count mismatch: %+v", h)
	}
	if _, err := g.RunOpenLoop(func(Query) (int, error) { return 0, nil }, OpenLoopConfig{Rate: 0}); err == nil {
		t.Fatal("expected error for zero rate")
	}
}

func TestLatencyQuantileExact(t *testing.T) {
	if got := LatencyQuantile(nil, 0.99); got != 0 {
		t.Fatalf("empty: %v", got)
	}
	var samples []Sample
	for i := 100; i >= 1; i-- { // reverse order: quantile must sort
		samples = append(samples, Sample{Latency: time.Duration(i) * time.Millisecond})
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{0.999, 100 * time.Millisecond},
		{1.0, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := LatencyQuantile(samples, c.q); got != c.want {
			t.Errorf("q=%g: got %v, want %v", c.q, got, c.want)
		}
	}
}

func TestProbeAckMonotonic(t *testing.T) {
	var p Probe
	p.Ack(5)
	p.Ack(3) // out-of-order ack must not regress
	if got := p.Acked(); got != 5 {
		t.Fatalf("acked %d, want 5", got)
	}
	p.Ack(9)
	if got := p.Acked(); got != 9 {
		t.Fatalf("acked %d, want 9", got)
	}
}

func TestProbeViolationBound(t *testing.T) {
	// 2 groups, maxStale 3: slack is 6.
	if ProbeViolation(94, 100, 2, 3) {
		t.Fatal("observed == acked-slack is legal lag, not a violation")
	}
	if !ProbeViolation(93, 100, 2, 3) {
		t.Fatal("observed < acked-slack must be a violation")
	}
	// No probe visible at all early in a run is fine while acked is small.
	if ProbeViolation(-1, 0, 2, 3) {
		t.Fatal("empty read with nothing acked should not violate")
	}
	if !ProbeViolation(-1, 10, 1, 2) {
		t.Fatal("empty read with 10 acked and slack 2 must violate")
	}
}

func TestProbeDocShape(t *testing.T) {
	d := ProbeDoc(42)
	if d["_id"] != "probe-42" || d["probe"] != true {
		t.Fatalf("bad probe doc: %v", d)
	}
	opts := ProbeOpts(4)
	if opts.MaxStaleness != 4 || opts.Limit != 1 || len(opts.Sort) != 1 || opts.Sort[0] != "-probe_seq" {
		t.Fatalf("bad probe opts: %+v", opts)
	}
}
