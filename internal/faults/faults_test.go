package faults

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestDeterministicSequences(t *testing.T) {
	cfg := Config{Seed: 42, WorkerCrashRate: 0.5, DropAppendRate: 0.3, DelayRate: 0.2, MaxDelay: time.Millisecond}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 200; i++ {
		fa, ca := a.CrashPoint()
		fb, cb := b.CrashPoint()
		if fa != fb || ca != cb {
			t.Fatalf("CrashPoint diverged at %d: (%v,%v) vs (%v,%v)", i, fa, ca, fb, cb)
		}
		if a.DropAppend() != b.DropAppend() {
			t.Fatalf("DropAppend diverged at %d", i)
		}
		if a.AppendDelay() != b.AppendDelay() {
			t.Fatalf("AppendDelay diverged at %d", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestRatesRoughlyHonored(t *testing.T) {
	in := New(Config{Seed: 7, WorkerCrashRate: 0.25})
	n := 10000
	for i := 0; i < n; i++ {
		if f, crash := in.CrashPoint(); crash && (f <= 0 || f >= 1) {
			t.Fatalf("crash fraction out of (0,1): %v", f)
		}
	}
	got := in.Stats().WorkerCrashes
	if got < n/5 || got > n/3 {
		t.Fatalf("crash rate off: %d/%d", got, n)
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := New(Config{Seed: 1})
	for i := 0; i < 100; i++ {
		if _, crash := in.CrashPoint(); crash {
			t.Fatal("crash with zero rate")
		}
		if in.DropAppend() {
			t.Fatal("drop with zero rate")
		}
		if in.AppendDelay() != 0 {
			t.Fatal("delay with zero rate")
		}
	}
	if in.Stats() != (Stats{}) {
		t.Fatalf("stats should be zero: %+v", in.Stats())
	}
}

func TestTearTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := New(Config{Seed: 9})
	cut, err := in.TearTail(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cut < 1 || cut > 4 {
		t.Fatalf("cut %d outside [1,4]", cut)
	}
	data, _ := os.ReadFile(path)
	if int64(len(data)) != 10-cut {
		t.Fatalf("file size %d after cutting %d", len(data), cut)
	}
	if in.Stats().TornTails != 1 {
		t.Fatalf("stats: %+v", in.Stats())
	}

	// Cut larger than the file clamps to emptying it.
	if _, err := in.TearTail(path, 1000); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if len(data) >= 10 {
		t.Fatalf("second tear did not shrink: %d", len(data))
	}

	// Tearing an empty file is an error.
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := in.TearTail(empty, 4); err == nil {
		t.Fatal("expected error tearing empty file")
	}
}
