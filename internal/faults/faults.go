// Package faults is a deterministic fault-injection harness for chaos
// testing the datastore and the workflow engine. A seeded Injector can
// crash simulated workers mid-run, drop or delay journal appends, and
// tear the tail of a journal file the way a power loss mid-write would.
// Every decision is drawn from one seeded PRNG behind a mutex, so a
// chaos run is reproducible bit-for-bit from its seed.
//
// The package is stdlib-only and dependency-free in both directions:
// consumers (datastore, hpc) declare their own small interfaces and the
// Injector satisfies them structurally, so nothing in the storage or
// simulation layers imports this package's types.
package faults

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"
)

// Config selects which faults fire and how often. All rates are
// probabilities in [0, 1]; zero disables that fault class.
type Config struct {
	// Seed fixes the PRNG. The same Config always produces the same
	// fault sequence.
	Seed int64
	// WorkerCrashRate is the per-run probability that a simulated
	// worker dies silently partway through a run.
	WorkerCrashRate float64
	// DropAppendRate is the per-append probability that a journal
	// write is silently lost (a dropped fsync / lost page).
	DropAppendRate float64
	// DelayRate is the per-operation probability of an injected delay.
	DelayRate float64
	// MaxDelay bounds injected delays (default 0 = no delay even when
	// DelayRate fires).
	MaxDelay time.Duration
	// DropCallRate is the per-call probability that a cluster transport
	// call is dropped before reaching the remote node (a refused
	// connection / lost packet).
	DropCallRate float64
	// CallErrorRate is the per-call probability that a cluster transport
	// call reaches the node but comes back as an injected server error.
	CallErrorRate float64
}

// Stats counts the faults actually injected so far.
type Stats struct {
	WorkerCrashes  int
	DroppedAppends int
	Delays         int
	TornTails      int
	TornBatches    int
	DroppedCalls   int
	ErroredCalls   int
}

// Injector draws fault decisions from a single seeded stream.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	cfg   Config
	stats Stats
}

// New builds an Injector for cfg.
func New(cfg Config) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// CrashPoint decides whether the next worker run crashes, and if so at
// which fraction of the run's duration (uniform in (0, 1)).
func (in *Injector) CrashPoint() (frac float64, crash bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.WorkerCrashRate <= 0 || in.rng.Float64() >= in.cfg.WorkerCrashRate {
		return 0, false
	}
	in.stats.WorkerCrashes++
	// Avoid exactly 0 so the crash is always strictly mid-run.
	f := in.rng.Float64()
	if f == 0 {
		f = 0.5
	}
	return f, true
}

// DropAppend decides whether the next journal append is silently lost.
func (in *Injector) DropAppend() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.DropAppendRate <= 0 || in.rng.Float64() >= in.cfg.DropAppendRate {
		return false
	}
	in.stats.DroppedAppends++
	return true
}

// AppendDelay returns how long the next operation should stall (0 for
// no delay).
func (in *Injector) AppendDelay() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.DelayRate <= 0 || in.cfg.MaxDelay <= 0 || in.rng.Float64() >= in.cfg.DelayRate {
		return 0
	}
	in.stats.Delays++
	return time.Duration(in.rng.Int63n(int64(in.cfg.MaxDelay))) + 1
}

// DropCall decides whether the next cluster transport call is dropped
// before reaching its node (the networked analogue of DropAppend).
func (in *Injector) DropCall() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.DropCallRate <= 0 || in.rng.Float64() >= in.cfg.DropCallRate {
		return false
	}
	in.stats.DroppedCalls++
	return true
}

// CallError decides whether the next transport call fails with an
// injected remote server error (the call arrives, the node "breaks").
func (in *Injector) CallError() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.CallErrorRate <= 0 || in.rng.Float64() >= in.cfg.CallErrorRate {
		return false
	}
	in.stats.ErroredCalls++
	return true
}

// CallDelay returns how long the next transport call should stall before
// being sent (0 for none). It shares DelayRate/MaxDelay with AppendDelay:
// both model the same slow-I/O fault class.
func (in *Injector) CallDelay() time.Duration {
	return in.AppendDelay()
}

// TearTail truncates between 1 and maxCut bytes off the end of path,
// simulating a crash that tore the final journal write. It returns how
// many bytes were cut. maxCut <= 0 defaults to 16. Tearing an empty
// file is an error: there is no write to tear.
func (in *Injector) TearTail(path string, maxCut int) (int64, error) {
	if maxCut <= 0 {
		maxCut = 16
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	if fi.Size() == 0 {
		return 0, fmt.Errorf("faults: cannot tear empty file %s", path)
	}
	in.mu.Lock()
	cut := int64(in.rng.Intn(maxCut)) + 1
	in.stats.TornTails++
	in.mu.Unlock()
	if cut > fi.Size() {
		cut = fi.Size()
	}
	if err := os.Truncate(path, fi.Size()-cut); err != nil {
		return 0, err
	}
	return cut, nil
}

// TearBytes returns a copy of b with between 1 and maxCut bytes cut off
// the end — the in-memory analogue of TearTail for a replication batch
// in flight: the final framed line arrives clipped, the way a
// connection reset mid-stream would leave it. maxCut <= 0 defaults to
// 16; an empty batch is returned unchanged with cut 0.
func (in *Injector) TearBytes(b []byte, maxCut int) ([]byte, int) {
	if len(b) == 0 {
		return b, 0
	}
	if maxCut <= 0 {
		maxCut = 16
	}
	in.mu.Lock()
	cut := in.rng.Intn(maxCut) + 1
	in.stats.TornBatches++
	in.mu.Unlock()
	if cut > len(b) {
		cut = len(b)
	}
	return append([]byte(nil), b[:len(b)-cut]...), cut
}

// Stats returns a snapshot of the faults injected so far.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}
