// Package sandbox implements user-controlled data areas (Fig. 3 d–f of
// the paper): a sandbox is "only visible to the creator and selected
// collaborators"; its contents can later "become publicly disseminated
// through the MP website" by release into the core database. The package
// also provides the collaborative annotation tools the paper's
// architecture shows alongside dissemination.
package sandbox

import (
	"errors"
	"fmt"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

// ErrForbidden is returned when a user lacks access to a sandbox.
var ErrForbidden = errors.New("sandbox: access denied")

// Manager coordinates sandboxes over a datastore. Sandboxed documents
// live in the sandbox_data collection tagged with their sandbox id; the
// vetted public data lives in the core materials collection.
type Manager struct {
	store *datastore.Store
	meta  *datastore.Collection
	data  *datastore.Collection
	notes *datastore.Collection
	core  *datastore.Collection
}

// New creates a sandbox manager on a store. coreCollection names the
// public collection releases go to (normally "materials").
func New(store *datastore.Store, coreCollection string) *Manager {
	m := &Manager{
		store: store,
		meta:  store.C("sandbox_meta"),
		data:  store.C("sandbox_data"),
		notes: store.C("annotations"),
		core:  store.C(coreCollection),
	}
	m.data.EnsureIndex("sandbox_id")
	m.notes.EnsureIndex("material_id")
	return m
}

// Create makes a new sandbox owned by owner and returns its id.
func (m *Manager) Create(name, owner string) (string, error) {
	if name == "" || owner == "" {
		return "", fmt.Errorf("sandbox: name and owner are required")
	}
	id, err := m.meta.Insert(document.D{
		"name":          name,
		"owner":         owner,
		"collaborators": []any{},
	})
	if err != nil {
		return "", err
	}
	return id, nil
}

// AddCollaborator grants a user access; only the owner may do this.
func (m *Manager) AddCollaborator(sandboxID, owner, user string) error {
	meta, err := m.meta.FindID(sandboxID)
	if err != nil {
		return err
	}
	if meta.GetString("owner") != owner {
		return fmt.Errorf("%w: %s does not own %s", ErrForbidden, owner, sandboxID)
	}
	_, err = m.meta.UpdateOne(document.D{"_id": sandboxID},
		document.D{"$addToSet": document.D{"collaborators": user}})
	return err
}

// CanAccess reports whether user may read or write the sandbox.
func (m *Manager) CanAccess(sandboxID, user string) bool {
	meta, err := m.meta.FindID(sandboxID)
	if err != nil {
		return false
	}
	if meta.GetString("owner") == user {
		return true
	}
	for _, c := range meta.GetArray("collaborators") {
		if c == user {
			return true
		}
	}
	return false
}

// Submit stores a document in the sandbox. Returns the stored doc id.
func (m *Manager) Submit(sandboxID, user string, doc document.D) (string, error) {
	if !m.CanAccess(sandboxID, user) {
		return "", fmt.Errorf("%w: %s on %s", ErrForbidden, user, sandboxID)
	}
	d := doc.Copy()
	d["sandbox_id"] = sandboxID
	d["submitted_by"] = user
	d["released"] = false
	return m.data.Insert(d)
}

// List returns the sandbox's documents for an authorized user.
func (m *Manager) List(sandboxID, user string) ([]document.D, error) {
	if !m.CanAccess(sandboxID, user) {
		return nil, fmt.Errorf("%w: %s on %s", ErrForbidden, user, sandboxID)
	}
	return m.data.FindAll(document.D{"sandbox_id": sandboxID}, nil)
}

// Release publishes a sandboxed document into the core collection ("at
// any point — e.g., after a publication or a patent filing — the user can
// allow the data to become publicly disseminated"). Only the sandbox
// owner may release. The sandbox copy is marked released and the new
// public id returned.
func (m *Manager) Release(sandboxID, owner, docID string) (string, error) {
	meta, err := m.meta.FindID(sandboxID)
	if err != nil {
		return "", err
	}
	if meta.GetString("owner") != owner {
		return "", fmt.Errorf("%w: %s does not own %s", ErrForbidden, owner, sandboxID)
	}
	d, err := m.data.FindID(docID)
	if err != nil {
		return "", err
	}
	if d.GetString("sandbox_id") != sandboxID {
		return "", fmt.Errorf("sandbox: document %s not in sandbox %s", docID, sandboxID)
	}
	if rel, _ := d.Get("released"); rel == true {
		return "", fmt.Errorf("sandbox: document %s already released", docID)
	}
	pub := d.Copy()
	delete(pub, "_id")
	delete(pub, "sandbox_id")
	delete(pub, "released")
	pub["provenance"] = map[string]any{
		"sandbox": meta.GetString("name"),
		"user":    d.GetString("submitted_by"),
	}
	pubID, err := m.core.Insert(pub)
	if err != nil {
		return "", err
	}
	if _, err := m.data.UpdateOne(document.D{"_id": docID},
		document.D{"$set": document.D{"released": true, "public_id": pubID}}); err != nil {
		return "", err
	}
	return pubID, nil
}

// Annotate attaches a public annotation to a core material
// ("collaborative tools allow users to publicly annotate the data").
func (m *Manager) Annotate(materialID, user, text string) (string, error) {
	if _, err := m.core.FindID(materialID); err != nil {
		return "", fmt.Errorf("sandbox: annotate: %w", err)
	}
	if text == "" {
		return "", fmt.Errorf("sandbox: empty annotation")
	}
	return m.notes.Insert(document.D{
		"material_id": materialID,
		"user":        user,
		"text":        text,
	})
}

// Annotations lists a material's annotations.
func (m *Manager) Annotations(materialID string) ([]document.D, error) {
	return m.notes.FindAll(document.D{"material_id": materialID}, nil)
}
