package sandbox

import (
	"errors"
	"testing"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

func doc(s string) document.D { return document.MustFromJSON(s) }

func setup(t *testing.T) (*Manager, *datastore.Store) {
	t.Helper()
	store := datastore.MustOpenMemory()
	return New(store, "materials"), store
}

func TestCreateAndAccess(t *testing.T) {
	m, _ := setup(t)
	id, err := m.Create("battery-screen", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if !m.CanAccess(id, "alice") {
		t.Error("owner denied")
	}
	if m.CanAccess(id, "bob") {
		t.Error("stranger allowed")
	}
	if err := m.AddCollaborator(id, "alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if !m.CanAccess(id, "bob") {
		t.Error("collaborator denied")
	}
	// Only the owner can add collaborators.
	if err := m.AddCollaborator(id, "bob", "carol"); !errors.Is(err, ErrForbidden) {
		t.Errorf("err = %v", err)
	}
	if m.CanAccess("ghost", "alice") {
		t.Error("missing sandbox accessible")
	}
}

func TestCreateValidation(t *testing.T) {
	m, _ := setup(t)
	if _, err := m.Create("", "alice"); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := m.Create("x", ""); err == nil {
		t.Error("empty owner accepted")
	}
}

func TestSubmitAndList(t *testing.T) {
	m, _ := setup(t)
	id, _ := m.Create("s", "alice")
	if _, err := m.Submit(id, "mallory", doc(`{"f": 1}`)); !errors.Is(err, ErrForbidden) {
		t.Errorf("stranger submit err = %v", err)
	}
	docID, err := m.Submit(id, "alice", doc(`{"pretty_formula": "LiX", "final_energy": -3.0}`))
	if err != nil {
		t.Fatal(err)
	}
	if docID == "" {
		t.Fatal("empty doc id")
	}
	docs, err := m.List(id, "alice")
	if err != nil || len(docs) != 1 {
		t.Fatalf("list = %v err=%v", docs, err)
	}
	if docs[0]["submitted_by"] != "alice" || docs[0]["released"] != false {
		t.Errorf("doc = %v", docs[0])
	}
	if _, err := m.List(id, "eve"); !errors.Is(err, ErrForbidden) {
		t.Error("stranger list allowed")
	}
	// Sandboxes are isolated from each other.
	id2, _ := m.Create("other", "alice")
	docs2, _ := m.List(id2, "alice")
	if len(docs2) != 0 {
		t.Error("cross-sandbox leak")
	}
}

func TestReleaseToPublic(t *testing.T) {
	m, store := setup(t)
	id, _ := m.Create("s", "alice")
	m.AddCollaborator(id, "alice", "bob")
	docID, _ := m.Submit(id, "bob", doc(`{"pretty_formula": "LiX", "final_energy": -3.0}`))

	// Collaborator may not release; owner may.
	if _, err := m.Release(id, "bob", docID); !errors.Is(err, ErrForbidden) {
		t.Errorf("collaborator release err = %v", err)
	}
	pubID, err := m.Release(id, "alice", docID)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := store.C("materials").FindID(pubID)
	if err != nil {
		t.Fatal(err)
	}
	if pub["pretty_formula"] != "LiX" {
		t.Errorf("public doc = %v", pub)
	}
	if pub.GetString("provenance.user") != "bob" || pub.GetString("provenance.sandbox") != "s" {
		t.Errorf("provenance = %v", pub.GetDoc("provenance"))
	}
	if pub.Has("sandbox_id") || pub.Has("released") {
		t.Error("sandbox bookkeeping leaked into public doc")
	}
	// Double release rejected.
	if _, err := m.Release(id, "alice", docID); err == nil {
		t.Error("double release accepted")
	}
	// Sandbox copy marked.
	sb, _ := store.C("sandbox_data").FindID(docID)
	if sb["released"] != true || sb.GetString("public_id") != pubID {
		t.Errorf("sandbox copy = %v", sb)
	}
}

func TestReleaseWrongSandbox(t *testing.T) {
	m, _ := setup(t)
	id1, _ := m.Create("one", "alice")
	id2, _ := m.Create("two", "alice")
	docID, _ := m.Submit(id1, "alice", doc(`{"x": 1}`))
	if _, err := m.Release(id2, "alice", docID); err == nil {
		t.Error("cross-sandbox release accepted")
	}
	if _, err := m.Release("ghost", "alice", docID); err == nil {
		t.Error("missing sandbox release accepted")
	}
	if _, err := m.Release(id1, "alice", "ghost-doc"); err == nil {
		t.Error("missing doc release accepted")
	}
}

func TestAnnotations(t *testing.T) {
	m, store := setup(t)
	matID, _ := store.C("materials").Insert(doc(`{"pretty_formula": "Fe2O3"}`))
	if _, err := m.Annotate("ghost", "alice", "hi"); err == nil {
		t.Error("annotation on missing material accepted")
	}
	if _, err := m.Annotate(matID, "alice", ""); err == nil {
		t.Error("empty annotation accepted")
	}
	m.Annotate(matID, "alice", "synthesized at 700K")
	m.Annotate(matID, "bob", "see also icsd-422")
	notes, err := m.Annotations(matID)
	if err != nil || len(notes) != 2 {
		t.Fatalf("notes = %v err=%v", notes, err)
	}
	if notes[0].GetString("user") != "alice" {
		t.Errorf("first note = %v", notes[0])
	}
}
