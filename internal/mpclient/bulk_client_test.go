package mpclient

import (
	"testing"

	"matproj/internal/document"
)

func TestClientInsertMany(t *testing.T) {
	c := client(t)
	ids, err := c.InsertMany("", []map[string]any{
		{"_id": "cm-1", "pretty_formula": "TiO2", "final_energy": -9.0},
		{"pretty_formula": "MgO", "final_energy": -5.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "cm-1" || ids[1] == "" {
		t.Fatalf("ids = %v", ids)
	}
	rows, err := c.Query(document.D{"_id": "cm-1"}, nil, 0)
	if err != nil || len(rows) != 1 {
		t.Fatalf("query after insertMany: %v %v", rows, err)
	}
}

func TestClientBulkWrite(t *testing.T) {
	c := client(t)
	res, err := c.BulkWrite("", []BulkOp{
		{Op: "insert", Doc: map[string]any{"_id": "cb-1", "pretty_formula": "CaO"}},
		{Op: "insert", Doc: map[string]any{"_id": "cb-1"}}, // duplicate
		{Op: "updateMany", Filter: map[string]any{"_id": "cb-1"},
			Update: map[string]any{"$set": map[string]any{"band_gap": 7.0}}},
		{Op: "delete", Filter: map[string]any{"_id": "mat-5"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != "cb-1" || res[0].Error != "" {
		t.Errorf("insert = %+v", res[0])
	}
	if res[1].Error == "" {
		t.Error("duplicate insert carried no error")
	}
	if res[2].Matched != 1 || res[2].Modified != 1 {
		t.Errorf("updateMany = %+v", res[2])
	}
	if res[3].Removed != 1 {
		t.Errorf("delete = %+v", res[3])
	}
	if rows, _ := c.Query(document.D{"_id": "mat-5"}, nil, 0); len(rows) != 0 {
		t.Error("delete not applied")
	}
}
