// Package mpclient is the Go analogue of pymatgen's Materials API
// client (the MPRester): a typed HTTP client over the REST interface
// that lets external analysis code fetch remote data and combine it with
// local computation — the "natural and powerful interface for jointly
// analyzing local and remote data" of §III-D3. The flagship helper,
// Entries, pulls a chemical system from the API in the form the local
// phase-diagram builder consumes.
package mpclient

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"

	"matproj/internal/analysis"
	"matproj/internal/crystal"
	"matproj/internal/document"
)

// Client talks to a Materials API server.
type Client struct {
	BaseURL string
	APIKey  string
	// HTTP overrides the transport (tests); nil uses http.DefaultClient.
	HTTP *http.Client
}

// New returns a client for the given server and key.
func New(baseURL, apiKey string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), APIKey: apiKey}
}

// Signup obtains an API key through the delegated third-party flow and
// returns a ready client.
func Signup(baseURL, provider, email string) (*Client, error) {
	u := strings.TrimRight(baseURL, "/") + "/auth/signup?provider=" +
		url.QueryEscape(provider) + "&email=" + url.QueryEscape(email)
	resp, err := http.Post(u, "", nil)
	if err != nil {
		return nil, fmt.Errorf("mpclient: signup: %w", err)
	}
	defer resp.Body.Close()
	var env envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return nil, fmt.Errorf("mpclient: signup decode: %w", err)
	}
	if !env.Valid || len(env.Response) == 0 {
		return nil, fmt.Errorf("mpclient: signup rejected: %s", env.Error)
	}
	key, _ := env.Response[0]["api_key"].(string)
	if key == "" {
		return nil, fmt.Errorf("mpclient: signup returned no key")
	}
	return New(baseURL, key), nil
}

// envelope is the API's standard response wrapper.
type envelope struct {
	Valid    bool             `json:"valid_response"`
	Error    string           `json:"error"`
	Response []map[string]any `json:"response"`
	NResults int              `json:"num_results"`
}

// APIError reports a non-2xx response. Retryable distinguishes transient
// server-side conditions — an unhealthy cluster answering 503 while a
// replica is promoted, a router-side 502/504 — from caller errors: a
// retryable error means the same request may succeed if simply resent.
type APIError struct {
	Status    int
	Message   string
	Retryable bool
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Retryable {
		return fmt.Sprintf("mpclient: HTTP %d (retryable): %s", e.Status, e.Message)
	}
	return fmt.Sprintf("mpclient: HTTP %d: %s", e.Status, e.Message)
}

// IsRetryable reports whether err is (or wraps) a transient APIError that
// is worth resending.
func IsRetryable(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Retryable
}

// retryableStatus classifies the transient HTTP statuses: the gateway
// errors a router or an unhealthy cluster emits.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) do(method, path string, body []byte) (*envelope, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-API-KEY", c.APIKey)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("mpclient: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("mpclient: read: %w", err)
	}
	var env envelope
	decodeErr := json.Unmarshal(raw, &env)
	if resp.StatusCode != http.StatusOK {
		// Non-2xx first: a 503 from an LB or unhealthy router may carry a
		// non-JSON body, and the status — not the decode failure — is the
		// signal the caller needs.
		msg := env.Error
		if decodeErr != nil || msg == "" {
			msg = strings.TrimSpace(string(raw))
			if msg == "" {
				msg = http.StatusText(resp.StatusCode)
			}
		}
		return nil, &APIError{
			Status:    resp.StatusCode,
			Message:   msg,
			Retryable: retryableStatus(resp.StatusCode),
		}
	}
	if decodeErr != nil {
		return nil, fmt.Errorf("mpclient: decode: %w", decodeErr)
	}
	return &env, nil
}

// Property fetches one property for an identifier (material id, formula,
// or chemical system) — the Fig. 4 call. One row per matching material.
func (c *Client) Property(identifier, property string) ([]document.D, error) {
	env, err := c.do(http.MethodGet, "/rest/v1/materials/"+url.PathEscape(identifier)+"/vasp/"+url.PathEscape(property), nil)
	if err != nil {
		return nil, err
	}
	return toDocs(env.Response), nil
}

// Energy is the canonical example: the computed energy of a compound.
func (c *Client) Energy(identifier string) (float64, error) {
	rows, err := c.Property(identifier, "energy")
	if err != nil {
		return 0, err
	}
	if len(rows) == 0 {
		return 0, fmt.Errorf("mpclient: no energy for %q", identifier)
	}
	e, ok := rows[0].GetFloat("energy")
	if !ok {
		return 0, fmt.Errorf("mpclient: malformed energy row %v", rows[0])
	}
	return e, nil
}

// Materials fetches all properties for an identifier.
func (c *Client) Materials(identifier string) ([]document.D, error) {
	env, err := c.do(http.MethodGet, "/rest/v1/materials/"+url.PathEscape(identifier)+"/vasp/all", nil)
	if err != nil {
		return nil, err
	}
	return toDocs(env.Response), nil
}

// Query runs a structured query: Mongo-language criteria plus an
// optional property projection and limit.
func (c *Client) Query(criteria document.D, properties []string, limit int) ([]document.D, error) {
	payload := map[string]any{"criteria": map[string]any(criteria), "limit": limit}
	if len(properties) > 0 {
		payload["properties"] = properties
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	env, err := c.do(http.MethodPost, "/rest/v1/query", body)
	if err != nil {
		return nil, err
	}
	return toDocs(env.Response), nil
}

// QueryOpts refines QueryWith beyond criteria and projection.
type QueryOpts struct {
	// Limit caps returned rows (0 = no cap).
	Limit int
	// Skip drops the first N rows after sorting.
	Skip int
	// Sort lists field names; a "-" prefix means descending.
	Sort []string
	// MaxStaleness permits the router to serve the read from a replica
	// at most this many generations behind the freshest known member.
	// 0 keeps the default primary-first routing.
	MaxStaleness int
}

// QueryWith runs a structured query with full read options, including
// the bounded-staleness hint that lets the cluster route the read to a
// follower.
func (c *Client) QueryWith(criteria document.D, properties []string, opts QueryOpts) ([]document.D, error) {
	payload := map[string]any{"criteria": map[string]any(criteria), "limit": opts.Limit}
	if len(properties) > 0 {
		payload["properties"] = properties
	}
	if opts.Skip > 0 {
		payload["skip"] = opts.Skip
	}
	if len(opts.Sort) > 0 {
		payload["sort"] = opts.Sort
	}
	if opts.MaxStaleness > 0 {
		payload["max_staleness"] = opts.MaxStaleness
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	env, err := c.do(http.MethodPost, "/rest/v1/query", body)
	if err != nil {
		return nil, err
	}
	return toDocs(env.Response), nil
}

// Insert stores one document in the named collection (empty means the
// materials collection) and returns its assigned id.
func (c *Client) Insert(collection string, doc map[string]any) (string, error) {
	body, err := json.Marshal(map[string]any{"collection": collection, "doc": doc})
	if err != nil {
		return "", err
	}
	env, err := c.do(http.MethodPost, "/rest/v1/insert", body)
	if err != nil {
		return "", err
	}
	if len(env.Response) == 0 {
		return "", fmt.Errorf("mpclient: insert returned no id")
	}
	id, _ := env.Response[0]["_id"].(string)
	if id == "" {
		return "", fmt.Errorf("mpclient: insert returned no id")
	}
	return id, nil
}

// InsertMany stores a batch of documents in one request (empty
// collection means the materials collection) and returns their assigned
// ids in input order. The server applies the batch under one collection
// lock per shard, so bulk ingest pays one durable commit per shard
// instead of one per document.
func (c *Client) InsertMany(collection string, docs []map[string]any) ([]string, error) {
	body, err := json.Marshal(map[string]any{"collection": collection, "docs": docs})
	if err != nil {
		return nil, err
	}
	env, err := c.do(http.MethodPost, "/rest/v1/insertMany", body)
	if err != nil {
		return nil, err
	}
	if len(env.Response) != len(docs) {
		return nil, fmt.Errorf("mpclient: insertMany returned %d ids for %d docs", len(env.Response), len(docs))
	}
	ids := make([]string, len(env.Response))
	for i, row := range env.Response {
		id, _ := row["_id"].(string)
		if id == "" {
			return nil, fmt.Errorf("mpclient: insertMany row %d has no id", i)
		}
		ids[i] = id
	}
	return ids, nil
}

// BulkOp is one operation in a BulkWrite batch. Op is "insert",
// "updateOne", "updateMany", or "delete"; Doc applies to inserts,
// Filter/Update to the rest.
type BulkOp struct {
	Op     string         `json:"op"`
	Doc    map[string]any `json:"doc,omitempty"`
	Filter map[string]any `json:"filter,omitempty"`
	Update map[string]any `json:"update,omitempty"`
}

// BulkOpResult is the outcome of one BulkWrite operation. Error is set
// when that op failed (the batch continues past per-op failures).
type BulkOpResult struct {
	ID       string
	Matched  int
	Modified int
	Removed  int
	Error    string
}

// BulkWrite applies a mixed insert/update/delete batch in one request
// and returns one outcome per op, in input order.
func (c *Client) BulkWrite(collection string, ops []BulkOp) ([]BulkOpResult, error) {
	body, err := json.Marshal(map[string]any{"collection": collection, "ops": ops})
	if err != nil {
		return nil, err
	}
	env, err := c.do(http.MethodPost, "/rest/v1/bulkWrite", body)
	if err != nil {
		return nil, err
	}
	if len(env.Response) != len(ops) {
		return nil, fmt.Errorf("mpclient: bulkWrite returned %d rows for %d ops", len(env.Response), len(ops))
	}
	out := make([]BulkOpResult, len(env.Response))
	for i, row := range env.Response {
		r := BulkOpResult{}
		r.ID, _ = row["id"].(string)
		r.Error, _ = row["error"].(string)
		r.Matched = intField(row, "matched")
		r.Modified = intField(row, "modified")
		r.Removed = intField(row, "removed")
		out[i] = r
	}
	return out, nil
}

// intField reads a JSON number out of an envelope row as an int.
func intField(row map[string]any, key string) int {
	switch v := row[key].(type) {
	case float64:
		return int(v)
	case int64:
		return int(v)
	case int:
		return v
	}
	return 0
}

// Aggregate runs a sanitized aggregation pipeline server-side.
func (c *Client) Aggregate(pipeline []document.D) ([]document.D, error) {
	stages := make([]map[string]any, len(pipeline))
	for i, st := range pipeline {
		stages[i] = map[string]any(st)
	}
	body, err := json.Marshal(map[string]any{"pipeline": stages})
	if err != nil {
		return nil, err
	}
	env, err := c.do(http.MethodPost, "/rest/v1/aggregate", body)
	if err != nil {
		return nil, err
	}
	return toDocs(env.Response), nil
}

// BandStructure fetches a material's band structure.
func (c *Client) BandStructure(materialID string) (document.D, error) {
	env, err := c.do(http.MethodGet, "/rest/v1/bandstructure/"+url.PathEscape(materialID), nil)
	if err != nil {
		return nil, err
	}
	docs := toDocs(env.Response)
	if len(docs) == 0 {
		return nil, fmt.Errorf("mpclient: no band structure for %q", materialID)
	}
	return docs[0], nil
}

// XRD fetches a material's diffraction pattern document.
func (c *Client) XRD(materialID string) (document.D, error) {
	env, err := c.do(http.MethodGet, "/rest/v1/xrd/"+url.PathEscape(materialID), nil)
	if err != nil {
		return nil, err
	}
	docs := toDocs(env.Response)
	if len(docs) == 0 {
		return nil, fmt.Errorf("mpclient: no XRD for %q", materialID)
	}
	return docs[0], nil
}

// Batteries lists screened electrodes, optionally filtered by working
// ion.
func (c *Client) Batteries(ion string) ([]document.D, error) {
	path := "/rest/v1/batteries"
	if ion != "" {
		path += "?ion=" + url.QueryEscape(ion)
	}
	env, err := c.do(http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	return toDocs(env.Response), nil
}

// Entries fetches every material whose elements lie inside the given
// chemical system and converts them to phase-diagram entries — remote
// data feeding local thermodynamic analysis, pymatgen-style. Elemental
// references absent from the remote corpus are synthesized from the
// shared elemental energy model via refEnergy (pass nil to require all
// references remotely).
func (c *Client) Entries(system []string, refEnergy func(symbol string) float64) ([]analysis.Entry, error) {
	if len(system) == 0 {
		return nil, fmt.Errorf("mpclient: empty chemical system")
	}
	sorted := append([]string(nil), system...)
	sort.Strings(sorted)
	set := make([]any, len(sorted))
	for i, s := range sorted {
		if !crystal.IsElement(s) {
			return nil, fmt.Errorf("mpclient: unknown element %q", s)
		}
		set[i] = s
	}
	// All materials whose element list is a subset of the system: query
	// elements ∈ system and verify client-side (the API has no $setIsSubset).
	docs, err := c.Query(document.D{"elements": document.D{"$in": set}}, nil, 0)
	if err != nil {
		return nil, err
	}
	inSystem := func(elems []any) bool {
		for _, e := range elems {
			found := false
			for _, s := range sorted {
				if e == s {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	var entries []analysis.Entry
	have := map[string]bool{}
	for _, d := range docs {
		if !inSystem(d.GetArray("elements")) {
			continue
		}
		f := d.GetString("pretty_formula")
		comp, err := crystal.ParseFormula(f)
		if err != nil {
			continue
		}
		e, ok := d.GetFloat("final_energy")
		if !ok {
			continue
		}
		id, _ := d["_id"].(string)
		entries = append(entries, analysis.Entry{ID: id, Composition: comp, Energy: e})
		if els := comp.Elements(); len(els) == 1 {
			have[els[0]] = true
		}
	}
	if refEnergy != nil {
		for _, s := range sorted {
			if !have[s] {
				entries = append(entries, analysis.Entry{
					ID:          "ref-" + s,
					Composition: crystal.Composition{s: 1},
					Energy:      refEnergy(s),
				})
			}
		}
	}
	return entries, nil
}

func toDocs(rows []map[string]any) []document.D {
	out := make([]document.D, len(rows))
	for i, r := range rows {
		out[i] = document.NormalizeDoc(document.D(r))
	}
	return out
}
