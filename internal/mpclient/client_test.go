package mpclient

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"matproj/internal/analysis"
	"matproj/internal/datastore"
	"matproj/internal/dft"
	"matproj/internal/document"
	"matproj/internal/queryengine"
	"matproj/internal/restapi"
)

func doc(s string) document.D { return document.MustFromJSON(s) }

// server stands up a Materials API over a hand-seeded corpus.
func server(t *testing.T) *httptest.Server {
	t.Helper()
	store := datastore.MustOpenMemory()
	mats := store.C("materials")
	rows := []string{
		`{"_id": "mat-1", "pretty_formula": "Fe2O3", "final_energy": -20.0, "e_per_atom": -4.0, "band_gap": 2.1, "elements": ["Fe", "O"]}`,
		`{"_id": "mat-2", "pretty_formula": "FeO",   "final_energy": -8.5,  "e_per_atom": -4.25, "band_gap": 1.0, "elements": ["Fe", "O"]}`,
		`{"_id": "mat-3", "pretty_formula": "Fe",    "final_energy": -3.4,  "e_per_atom": -3.4, "band_gap": 0.0, "elements": ["Fe"]}`,
		`{"_id": "mat-4", "pretty_formula": "LiFeO2","final_energy": -15.0, "e_per_atom": -3.75, "band_gap": 2.5, "elements": ["Fe", "Li", "O"]}`,
		`{"_id": "mat-5", "pretty_formula": "NaCl",  "final_energy": -6.0,  "e_per_atom": -3.0, "band_gap": 5.0, "elements": ["Cl", "Na"]}`,
	}
	for _, r := range rows {
		if _, err := mats.Insert(doc(r)); err != nil {
			t.Fatal(err)
		}
	}
	store.C("bandstructures").Insert(doc(`{"material_id": "mat-1", "band_gap": 2.1, "bands": [[1, 2]]}`))
	store.C("xrd").Insert(doc(`{"material_id": "mat-1", "npeaks": 4}`))
	store.C("batteries").Insert(doc(`{"battery_id": "b1", "working_ion": "Li", "voltage": 3.3}`))
	srv := httptest.NewServer(restapi.NewServer(queryengine.New(store), restapi.NewAuth(store), store))
	t.Cleanup(srv.Close)
	return srv
}

func client(t *testing.T) *Client {
	t.Helper()
	srv := server(t)
	c, err := Signup(srv.URL, "google", "client@test.dev")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSignupAndEnergy(t *testing.T) {
	c := client(t)
	e, err := c.Energy("Fe2O3")
	if err != nil {
		t.Fatal(err)
	}
	if e != -20.0 {
		t.Errorf("energy = %v", e)
	}
	if _, err := c.Energy("KF"); err == nil {
		t.Error("missing compound should error")
	}
}

func TestSignupRejectsUntrustedProvider(t *testing.T) {
	srv := server(t)
	if _, err := Signup(srv.URL, "evilcorp", "x@y.z"); err == nil {
		t.Error("untrusted provider accepted")
	}
}

func TestBadKeyYieldsAPIError(t *testing.T) {
	srv := server(t)
	c := New(srv.URL, "wrong")
	_, err := c.Energy("Fe2O3")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 401 {
		t.Errorf("err = %v", err)
	}
}

func TestMaterialsAndQuery(t *testing.T) {
	c := client(t)
	// Subset chemsys semantics: Fe2O3, FeO, and elemental Fe.
	mats, err := c.Materials("Fe-O")
	if err != nil {
		t.Fatal(err)
	}
	if len(mats) != 3 {
		t.Errorf("Fe-O materials = %d", len(mats))
	}
	res, err := c.Query(document.D{"band_gap": document.D{"$gte": 2.0}}, []string{"formula"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Errorf("query results = %d", len(res))
	}
	for _, d := range res {
		if !d.Has("pretty_formula") {
			t.Errorf("projection missing: %v", d)
		}
		if d.Has("final_energy") {
			t.Errorf("projection leaked: %v", d)
		}
	}
	limited, _ := c.Query(nil, nil, 2)
	if len(limited) != 2 {
		t.Errorf("limit ignored: %d", len(limited))
	}
}

func TestDerivedFetches(t *testing.T) {
	c := client(t)
	bs, err := c.BandStructure("mat-1")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := bs.GetFloat("band_gap"); v != 2.1 {
		t.Errorf("bs = %v", bs)
	}
	if _, err := c.BandStructure("mat-404"); err == nil {
		t.Error("missing bs accepted")
	}
	x, err := c.XRD("mat-1")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := x.GetInt("npeaks"); n != 4 {
		t.Errorf("xrd = %v", x)
	}
	bats, err := c.Batteries("Li")
	if err != nil || len(bats) != 1 {
		t.Errorf("batteries = %v err=%v", bats, err)
	}
	none, err := c.Batteries("Na")
	if err != nil || len(none) != 0 {
		t.Errorf("Na batteries = %v err=%v", none, err)
	}
}

func TestEntriesFeedLocalPhaseDiagram(t *testing.T) {
	c := client(t)
	entries, err := c.Entries([]string{"Fe", "O"}, dft.ElementalEnergy)
	if err != nil {
		t.Fatal(err)
	}
	// Fe2O3, FeO, Fe from the corpus; O synthesized from the reference.
	if len(entries) != 4 {
		t.Fatalf("entries = %d: %+v", len(entries), entries)
	}
	foundRef := false
	for _, e := range entries {
		if e.ID == "ref-O" {
			foundRef = true
		}
		if e.Composition.Contains("Li") || e.Composition.Contains("Na") {
			t.Errorf("entry %s outside the Fe-O system", e.ID)
		}
	}
	if !foundRef {
		t.Error("missing synthesized O reference")
	}
	// The remote data plugs straight into the local analysis library.
	pd, err := analysis.NewPhaseDiagram(entries)
	if err != nil {
		t.Fatal(err)
	}
	stable, err := pd.StableEntries()
	if err != nil {
		t.Fatal(err)
	}
	if len(stable) == 0 {
		t.Error("no stable entries")
	}
}

func TestEntriesValidation(t *testing.T) {
	c := client(t)
	if _, err := c.Entries(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := c.Entries([]string{"Zz"}, nil); err == nil {
		t.Error("unknown element accepted")
	}
	// Without a reference synthesizer, missing elemental refs simply
	// yield fewer entries (the phase diagram ctor reports the gap).
	entries, err := c.Entries([]string{"Fe", "O"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Errorf("entries = %d", len(entries))
	}
	if _, err := analysis.NewPhaseDiagram(entries); err == nil {
		t.Error("phase diagram should demand the missing O reference")
	}
}

func TestClientAggregate(t *testing.T) {
	c := client(t)
	out, err := c.Aggregate([]document.D{
		{"$match": document.D{"elements": "Fe"}},
		{"$group": document.MustFromJSON(`{"_id": null, "best": {"$min": "$final_energy"}, "n": {"$sum": 1}}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	if v, _ := out[0].GetFloat("best"); v != -20.0 {
		t.Errorf("best = %v", v)
	}
	if n, _ := out[0].GetInt("n"); n != 4 {
		t.Errorf("n = %v", n)
	}
	// Server-side sanitization propagates as an APIError.
	_, err = c.Aggregate([]document.D{{"$out": document.D{}}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Errorf("err = %v", err)
	}
}

// A 503 from an unhealthy cluster must surface as a typed, retryable
// APIError — distinct from caller errors like 400/401 — whether or not
// the body is the JSON envelope.
func TestUnavailableIsRetryableAPIError(t *testing.T) {
	// JSON-envelope 503 (a router reporting no healthy shard members).
	jsonSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"valid_response": false, "error": "shard 1 has no healthy members"}`))
	}))
	defer jsonSrv.Close()
	c := New(jsonSrv.URL, "k")
	_, err := c.Energy("Fe2O3")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Status != http.StatusServiceUnavailable || !apiErr.Retryable {
		t.Errorf("apiErr = %+v, want retryable 503", apiErr)
	}
	if apiErr.Message != "shard 1 has no healthy members" {
		t.Errorf("message = %q", apiErr.Message)
	}
	if !IsRetryable(err) {
		t.Error("IsRetryable(503) = false")
	}

	// Plain-text 503 (a load balancer in front of the router): the status
	// must still win over the JSON decode failure.
	textSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "upstream unavailable", http.StatusServiceUnavailable)
	}))
	defer textSrv.Close()
	_, err = New(textSrv.URL, "k").Energy("Fe2O3")
	if !errors.As(err, &apiErr) || apiErr.Status != 503 || !apiErr.Retryable {
		t.Errorf("text 503 err = %v", err)
	}
	if apiErr.Message != "upstream unavailable" {
		t.Errorf("text message = %q", apiErr.Message)
	}

	// Caller errors stay non-retryable.
	srv := server(t)
	_, err = New(srv.URL, "bad-key").Energy("Fe2O3")
	if !errors.As(err, &apiErr) || apiErr.Status != 401 || apiErr.Retryable {
		t.Errorf("401 err = %v", err)
	}
	if IsRetryable(err) {
		t.Error("IsRetryable(401) = true")
	}
}
