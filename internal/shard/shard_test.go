package shard

import (
	"errors"
	"fmt"
	"testing"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

func doc(s string) document.D { return document.MustFromJSON(s) }

func seeded(t *testing.T, opts Options, n int) *Cluster {
	t.Helper()
	c, err := NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		d := document.D{
			"formula":    fmt.Sprintf("F%03d", i),
			"elements":   []any{"Fe", "O"},
			"nelectrons": int64(10 + i),
			"chemsys":    fmt.Sprintf("sys%d", i%5),
		}
		if _, err := c.Insert("materials", d); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(Options{Shards: 0}); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewCluster(Options{Shards: 2, ReplicasPerShard: -1}); err == nil {
		t.Error("negative replicas accepted")
	}
}

func TestInsertDistributesAcrossShards(t *testing.T) {
	c := seeded(t, Options{Shards: 4}, 200)
	counts := c.ShardCounts("materials")
	total := 0
	for i, n := range counts {
		total += n
		if n == 0 {
			t.Errorf("shard %d empty (counts %v)", i, counts)
		}
		// Hash balance: no shard should hold more than half at n=200.
		if n > 100 {
			t.Errorf("shard %d badly skewed: %d/200", i, n)
		}
	}
	if total != 200 {
		t.Errorf("total = %d", total)
	}
}

func TestScatterGatherFindMatchesSingleStore(t *testing.T) {
	// Same data in one flat store and one sharded cluster must produce
	// identical query results under a sort.
	single := datastore.MustOpenMemory().C("materials")
	c := seeded(t, Options{Shards: 3}, 120)
	docs, _ := c.FindAll("materials", nil, nil, ReadPrimary)
	for _, d := range docs {
		if _, err := single.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	filter := doc(`{"nelectrons": {"$gte": 50, "$lt": 90}}`)
	opts := &datastore.FindOpts{Sort: []string{"-nelectrons"}, Skip: 3, Limit: 10}
	want, err := single.FindAll(filter, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.FindAll("materials", filter, opts, ReadPrimary)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i]["formula"] != want[i]["formula"] {
			t.Errorf("row %d: %v vs %v", i, got[i]["formula"], want[i]["formula"])
		}
	}
}

func TestCountAndFindID(t *testing.T) {
	c := seeded(t, Options{Shards: 3, ReplicasPerShard: 1}, 60)
	n, err := c.Count("materials", doc(`{"nelectrons": {"$lt": 40}}`), ReadPrimary)
	if err != nil || n != 30 {
		t.Errorf("count = %d err=%v", n, err)
	}
	id, err := c.Insert("materials", doc(`{"formula": "Target", "nelectrons": 999}`))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.FindID("materials", id, ReadPrimary)
	if err != nil || got["formula"] != "Target" {
		t.Errorf("got %v err %v", got, err)
	}
	// Secondary reads see the replicated document too.
	got2, err := c.FindID("materials", id, ReadSecondary)
	if err != nil || got2["formula"] != "Target" {
		t.Errorf("secondary read: %v err %v", got2, err)
	}
	if _, err := c.FindID("materials", "ghost", ReadPrimary); !errors.Is(err, datastore.ErrNotFound) {
		t.Errorf("ghost err = %v", err)
	}
}

func TestShardKeyRouting(t *testing.T) {
	c, err := NewCluster(Options{Shards: 4, ShardKey: "chemsys"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := c.Insert("materials", document.D{
			"chemsys": fmt.Sprintf("sys%d", i%4), "n": int64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// A shard-key equality filter touches exactly one shard: verify by
	// checking the same docs come back and each chemsys lives on a single
	// shard.
	docs, err := c.FindAll("materials", doc(`{"chemsys": "sys1"}`), nil, ReadPrimary)
	if err != nil || len(docs) != 10 {
		t.Fatalf("docs = %d err=%v", len(docs), err)
	}
	perShard := 0
	for i := 0; i < c.Shards(); i++ {
		// Count docs with chemsys sys1 directly per shard.
		n := 0
		for _, d := range docs {
			if c.shardFor(d.GetString("chemsys")) == i {
				n++
			}
		}
		if n > 0 {
			perShard++
		}
	}
	if perShard != 1 {
		t.Errorf("sys1 spans %d shards", perShard)
	}
	// Missing shard key rejected.
	if _, err := c.Insert("materials", doc(`{"n": 1}`)); err == nil {
		t.Error("keyless insert accepted")
	}
}

func TestUpdateAndRemoveReplicate(t *testing.T) {
	c := seeded(t, Options{Shards: 2, ReplicasPerShard: 2}, 30)
	res, err := c.UpdateMany("materials", doc(`{"nelectrons": {"$lt": 20}}`), doc(`{"$set": {"flag": true}}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Modified != 10 {
		t.Errorf("modified = %d", res.Modified)
	}
	// Both read preferences agree after replicated writes.
	np, _ := c.Count("materials", doc(`{"flag": true}`), ReadPrimary)
	ns, _ := c.Count("materials", doc(`{"flag": true}`), ReadSecondary)
	if np != 10 || ns != 10 {
		t.Errorf("primary=%d secondary=%d", np, ns)
	}
	removed, err := c.Remove("materials", doc(`{"flag": true}`))
	if err != nil || removed != 10 {
		t.Fatalf("removed = %d err=%v", removed, err)
	}
	np, _ = c.Count("materials", nil, ReadPrimary)
	ns, _ = c.Count("materials", nil, ReadSecondary)
	if np != 20 || ns != 20 {
		t.Errorf("after remove: primary=%d secondary=%d", np, ns)
	}
}

func TestFailoverPromotesReplica(t *testing.T) {
	c := seeded(t, Options{Shards: 2, ReplicasPerShard: 1}, 40)
	before, _ := c.Count("materials", nil, ReadPrimary)
	if err := c.FailPrimary(0); err != nil {
		t.Fatal(err)
	}
	after, _ := c.Count("materials", nil, ReadPrimary)
	if before != after {
		t.Errorf("data lost in failover: %d -> %d", before, after)
	}
	// Writes continue against the promoted primary.
	if _, err := c.Insert("materials", doc(`{"formula": "PostFail", "nelectrons": 1}`)); err != nil {
		t.Fatal(err)
	}
	n, _ := c.Count("materials", doc(`{"formula": "PostFail"}`), ReadPrimary)
	if n != 1 {
		t.Error("post-failover write lost")
	}
	// Exhausting replicas fails cleanly.
	if err := c.FailPrimary(0); err == nil {
		t.Error("promotion without replicas accepted")
	}
	if err := c.FailPrimary(99); err == nil {
		t.Error("out-of-range shard accepted")
	}
}

func TestEnsureIndexEverywhere(t *testing.T) {
	c := seeded(t, Options{Shards: 2, ReplicasPerShard: 1}, 50)
	c.EnsureIndex("materials", "nelectrons")
	// Indexed query returns the same results through both preferences.
	f := doc(`{"nelectrons": {"$gte": 30}}`)
	np, _ := c.Count("materials", f, ReadPrimary)
	ns, _ := c.Count("materials", f, ReadSecondary)
	if np != ns || np == 0 {
		t.Errorf("primary=%d secondary=%d", np, ns)
	}
}

func TestBadFilterPropagates(t *testing.T) {
	c := seeded(t, Options{Shards: 2}, 10)
	if _, err := c.FindAll("materials", doc(`{"$bogus": 1}`), nil, ReadPrimary); err == nil {
		t.Error("bad filter accepted")
	}
	if _, err := c.Count("materials", doc(`{"$bogus": 1}`), ReadPrimary); err == nil {
		t.Error("bad count filter accepted")
	}
	if _, err := c.FindAll("materials", nil, &datastore.FindOpts{Sort: []string{""}}, ReadPrimary); err == nil {
		t.Error("bad sort accepted")
	}
}
