// Package shard implements the scaling path the paper reserves for
// future work (§IV-D2): "Future scalability can leverage the sharding
// and replication capabilities built in to MongoDB. This will allow us
// to maintain performance at scale ... as well as isolate the various
// roles of the database to separate servers."
//
// A shard.Cluster partitions one logical collection across N shard
// groups by hashed shard key, replicates every write synchronously to
// each group's replicas, scatter-gathers reads with merge-sort/limit
// semantics, and supports primary failover by replica promotion. Role
// isolation falls out of read preferences: analytics can read from
// secondaries while the workflow engine writes to primaries.
package shard

import (
	"fmt"
	"sync"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

// ReadPreference selects which member serves reads.
type ReadPreference int

const (
	// ReadPrimary serves reads from each shard's primary.
	ReadPrimary ReadPreference = iota
	// ReadSecondary round-robins reads over replicas (falling back to the
	// primary when a shard has none).
	ReadSecondary
)

// Options configures a cluster.
type Options struct {
	// Shards is the number of shard groups (>= 1).
	Shards int
	// ReplicasPerShard is the number of synchronous replicas per group.
	ReplicasPerShard int
	// ShardKey is the dotted field the hash partitioner uses; empty means
	// "_id".
	ShardKey string
}

// Cluster is a sharded, replicated logical collection namespace.
type Cluster struct {
	opts   Options
	groups []*group

	mu sync.Mutex
	rr int // round-robin cursor for secondary reads
}

type group struct {
	mu       sync.RWMutex
	primary  *datastore.Store
	replicas []*datastore.Store
}

// NewCluster builds an in-memory sharded cluster.
func NewCluster(opts Options) (*Cluster, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least one shard")
	}
	if opts.ReplicasPerShard < 0 {
		return nil, fmt.Errorf("shard: negative replica count")
	}
	if opts.ShardKey == "" {
		opts.ShardKey = "_id"
	}
	c := &Cluster{opts: opts}
	for i := 0; i < opts.Shards; i++ {
		g := &group{primary: datastore.MustOpenMemory()}
		for r := 0; r < opts.ReplicasPerShard; r++ {
			g.replicas = append(g.replicas, datastore.MustOpenMemory())
		}
		c.groups = append(c.groups, g)
	}
	return c, nil
}

// Shards reports the shard count.
func (c *Cluster) Shards() int { return len(c.groups) }

// shardFor hashes a shard-key value to a group index.
func (c *Cluster) shardFor(v any) int {
	return hashShard(v, len(c.groups))
}

// Insert routes a document to its shard and writes it to the primary and
// all replicas. Documents missing the shard key are rejected (hash-
// sharding needs the key present).
func (c *Cluster) Insert(collection string, doc document.D) (string, error) {
	d := document.NormalizeDoc(doc).Copy()
	var idx int
	if c.opts.ShardKey == "_id" {
		// Mint the id at the router so every member stores an identical
		// document and the hash routes deterministically.
		id, has := d["_id"].(string)
		if !has {
			id = MintID()
			d["_id"] = id
		}
		idx = c.shardFor(id)
	} else {
		keyVal, ok := d.Get(c.opts.ShardKey)
		if !ok {
			return "", fmt.Errorf("shard: document missing shard key %q", c.opts.ShardKey)
		}
		idx = c.shardFor(keyVal)
	}
	g := c.groups[idx]
	g.mu.RLock()
	defer g.mu.RUnlock()
	id, err := g.primary.C(collection).Insert(d)
	if err != nil {
		return "", err
	}
	d["_id"] = id
	for _, rep := range g.replicas {
		if _, err := rep.C(collection).Insert(d); err != nil {
			return id, fmt.Errorf("shard: replica write: %w", err)
		}
	}
	return id, nil
}

// readStore picks the member store of a group per the preference.
func (c *Cluster) readStore(g *group, pref ReadPreference) *datastore.Store {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if pref == ReadSecondary && len(g.replicas) > 0 {
		c.mu.Lock()
		c.rr++
		i := c.rr % len(g.replicas)
		c.mu.Unlock()
		return g.replicas[i]
	}
	return g.primary
}

// FindAll scatter-gathers a query across all shards, merge-sorting and
// applying skip/limit globally. A filter pinning the shard key to one
// value routes to a single shard.
func (c *Cluster) FindAll(collection string, filter document.D, opts *datastore.FindOpts, pref ReadPreference) ([]document.D, error) {
	targets, err := c.targetsFor(filter)
	if err != nil {
		return nil, err
	}
	// Fetch full (un-skipped, un-limited) result sets per shard; apply
	// global sort/skip/limit after the merge.
	shardOpts, sortSpec, skip, limit := SplitFindOpts(opts)
	var out []document.D
	for _, gi := range targets {
		st := c.readStore(c.groups[gi], pref)
		docs, err := st.C(collection).FindAll(filter, shardOpts)
		if err != nil {
			return nil, err
		}
		out = append(out, docs...)
	}
	return MergeDocs(out, sortSpec, skip, limit)
}

// targetsFor returns the shard indexes a filter must touch.
func (c *Cluster) targetsFor(filter document.D) ([]int, error) {
	return Targets(filter, c.opts.ShardKey, len(c.groups))
}

// Count scatter-gathers a count.
func (c *Cluster) Count(collection string, filter document.D, pref ReadPreference) (int, error) {
	targets, err := c.targetsFor(filter)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, gi := range targets {
		st := c.readStore(c.groups[gi], pref)
		n, err := st.C(collection).Count(filter)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// FindID routes directly by id when sharding on _id, else scatters.
func (c *Cluster) FindID(collection, id string, pref ReadPreference) (document.D, error) {
	if c.opts.ShardKey == "_id" {
		st := c.readStore(c.groups[c.shardFor(id)], pref)
		return st.C(collection).FindID(id)
	}
	for _, g := range c.groups {
		st := c.readStore(g, pref)
		if d, err := st.C(collection).FindID(id); err == nil {
			return d, nil
		}
	}
	return nil, datastore.ErrNotFound
}

// UpdateMany applies an update on every targeted shard's primary and
// replicas (synchronous replication).
func (c *Cluster) UpdateMany(collection string, filter, update document.D) (datastore.UpdateResult, error) {
	targets, err := c.targetsFor(filter)
	if err != nil {
		return datastore.UpdateResult{}, err
	}
	var res datastore.UpdateResult
	for _, gi := range targets {
		g := c.groups[gi]
		g.mu.RLock()
		r, err := g.primary.C(collection).UpdateMany(filter, update)
		if err != nil {
			g.mu.RUnlock()
			return res, err
		}
		for _, rep := range g.replicas {
			if _, err := rep.C(collection).UpdateMany(filter, update); err != nil {
				g.mu.RUnlock()
				return res, fmt.Errorf("shard: replica update: %w", err)
			}
		}
		g.mu.RUnlock()
		res.Matched += r.Matched
		res.Modified += r.Modified
	}
	return res, nil
}

// Remove deletes matching documents everywhere they live.
func (c *Cluster) Remove(collection string, filter document.D) (int, error) {
	targets, err := c.targetsFor(filter)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, gi := range targets {
		g := c.groups[gi]
		g.mu.RLock()
		n, err := g.primary.C(collection).Remove(filter)
		if err != nil {
			g.mu.RUnlock()
			return total, err
		}
		for _, rep := range g.replicas {
			if _, err := rep.C(collection).Remove(filter); err != nil {
				g.mu.RUnlock()
				return total, fmt.Errorf("shard: replica remove: %w", err)
			}
		}
		g.mu.RUnlock()
		total += n
	}
	return total, nil
}

// EnsureIndex creates the index on every member of every shard.
func (c *Cluster) EnsureIndex(collection, path string) {
	for _, g := range c.groups {
		g.mu.RLock()
		g.primary.C(collection).EnsureIndex(path)
		for _, rep := range g.replicas {
			rep.C(collection).EnsureIndex(path)
		}
		g.mu.RUnlock()
	}
}

// FailPrimary simulates a primary failure on one shard by promoting its
// first replica. Returns an error when the shard has no replica to
// promote.
func (c *Cluster) FailPrimary(shard int) error {
	if shard < 0 || shard >= len(c.groups) {
		return fmt.Errorf("shard: index %d out of range", shard)
	}
	g := c.groups[shard]
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.replicas) == 0 {
		return fmt.Errorf("shard: shard %d has no replica to promote", shard)
	}
	g.primary = g.replicas[0]
	g.replicas = g.replicas[1:]
	return nil
}

// ShardCounts reports per-shard document counts for a collection (for
// balance inspection).
func (c *Cluster) ShardCounts(collection string) []int {
	out := make([]int, len(c.groups))
	for i, g := range c.groups {
		g.mu.RLock()
		n, _ := g.primary.C(collection).Count(nil)
		g.mu.RUnlock()
		out[i] = n
	}
	return out
}
