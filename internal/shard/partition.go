package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/query"
)

// This file holds the partition/merge primitives shared by the in-process
// Cluster and the networked router in internal/cluster: both layers must
// agree bit-for-bit on which shard a key hashes to and on the global
// merge-sort/skip/limit semantics of a scatter-gathered read, or a
// deployment could not migrate from one to the other without re-sharding.

// HashShard maps a shard-key value to a group index in [0, n). The hash
// is FNV-1a over the value's canonical print form, so int64(5) and
// float64(5) route identically.
func HashShard(v any, n int) int {
	return hashShard(v, n)
}

func hashShard(v any, n int) int {
	h := fnv.New32a()
	fmt.Fprintf(h, "%v", v)
	return int(h.Sum32() % uint32(n))
}

// Targets returns the shard group indexes a filter must touch out of n
// groups: a filter pinning shardKey to a single value routes to one
// group, anything else scatters to all.
func Targets(filter document.D, shardKey string, n int) ([]int, error) {
	if len(filter) > 0 {
		flt, err := query.Compile(filter)
		if err != nil {
			return nil, err
		}
		if v, ok := flt.EqualityFields()[shardKey]; ok {
			return []int{hashShard(v, n)}, nil
		}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return all, nil
}

// SplitFindOpts splits a query's options into the per-shard options
// (projection and sort pushed down; skip always cleared) and the global
// sort/skip/limit the gatherer applies after the merge. Sorted, limited
// queries push a skip+limit cap down to each shard; unsorted queries
// clear the limit too, because a shard cannot truncate an arbitrary
// order without dropping globally needed rows.
func SplitFindOpts(opts *datastore.FindOpts) (perShard *datastore.FindOpts, sortSpec []string, skip, limit int) {
	if opts == nil {
		return nil, nil, 0, 0
	}
	o := *opts
	sortSpec = o.Sort
	skip, limit = o.Skip, o.Limit
	o.Skip, o.Limit = 0, 0
	// Limit pushdown: with an explicit sort, the global top (skip+limit)
	// rows are contained in the union of each shard's top (skip+limit)
	// rows, so shards can stop early. Without a sort the per-shard order
	// is arbitrary and truncating it could drop rows the merge needs.
	if len(sortSpec) > 0 && limit > 0 {
		o.Limit = skip + limit
	}
	return &o, sortSpec, skip, limit
}

// MergeDocs applies the global half of a scatter-gathered read: sort the
// concatenated per-shard results (by the requested sort, or by _id for a
// deterministic cross-shard order), then skip/limit.
func MergeDocs(docs []document.D, sortSpec []string, skip, limit int) ([]document.D, error) {
	if len(sortSpec) > 0 {
		keys, err := query.ParseSort(sortSpec)
		if err != nil {
			return nil, err
		}
		query.SortDocs(docs, keys)
	} else {
		sort.Slice(docs, func(i, j int) bool {
			a, _ := docs[i]["_id"].(string)
			b, _ := docs[j]["_id"].(string)
			return a < b
		})
	}
	if skip > 0 {
		if skip >= len(docs) {
			docs = nil
		} else {
			docs = docs[skip:]
		}
	}
	if limit > 0 && limit < len(docs) {
		docs = docs[:limit]
	}
	return docs, nil
}

// MergeDistinct unions per-shard distinct-value lists, dropping
// duplicates and restoring document.Compare order.
func MergeDistinct(lists [][]any) []any {
	var out []any
	for _, vals := range lists {
		for _, v := range vals {
			dup := false
			for _, s := range out {
				if document.Equal(s, v) {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return document.Compare(out[i], out[j]) < 0 })
	return out
}

var mintCounter uint64
var mintMu sync.Mutex

// MintID mints a cluster-unique document id at the router, so every
// group member stores an identical document and the hash routes
// deterministically.
func MintID() string {
	mintMu.Lock()
	defer mintMu.Unlock()
	mintCounter++
	return fmt.Sprintf("sh%012x", mintCounter)
}
