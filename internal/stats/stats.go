// Package stats provides the small statistical toolkit used to render
// the paper's Fig. 5: latency histograms with logarithmic buckets,
// percentiles, and text rendering for terminal output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Histogram buckets values logarithmically between Min and Max.
type Histogram struct {
	Min, Max float64 // bucket range (values clamp into the edge buckets)
	Counts   []int
	n        int
	sum      float64
	values   []float64
}

// NewHistogram creates a histogram with the given number of logarithmic
// buckets spanning [min, max]. Values outside clamp to the edge buckets.
func NewHistogram(min, max float64, buckets int) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	if min <= 0 {
		min = 1e-9
	}
	if max <= min {
		max = min * 10
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, buckets)}
}

// Add records a value.
func (h *Histogram) Add(v float64) {
	idx := h.bucketOf(v)
	h.Counts[idx]++
	h.n++
	h.sum += v
	h.values = append(h.values, v)
}

func (h *Histogram) bucketOf(v float64) int {
	if v <= h.Min {
		return 0
	}
	if v >= h.Max {
		return len(h.Counts) - 1
	}
	f := (math.Log(v) - math.Log(h.Min)) / (math.Log(h.Max) - math.Log(h.Min))
	idx := int(f * float64(len(h.Counts)))
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	return idx
}

// BucketBounds returns the [lo, hi) range of bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	logMin, logMax := math.Log(h.Min), math.Log(h.Max)
	step := (logMax - logMin) / float64(len(h.Counts))
	return math.Exp(logMin + float64(i)*step), math.Exp(logMin + float64(i+1)*step)
}

// N returns the number of recorded values.
func (h *Histogram) N() int { return h.n }

// Mean returns the arithmetic mean.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Percentile returns the p-th percentile (0-100) of recorded values.
func (h *Histogram) Percentile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	sorted := append([]float64(nil), h.values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CountQuantile estimates the p-th percentile (0-100) from the bucket
// counts alone, interpolating linearly inside the winning bucket. Unlike
// Percentile it needs no retained values, so it also serves histograms
// reconstructed from counts (e.g. live obs snapshots).
func (h *Histogram) CountQuantile(p float64) float64 {
	var total int
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := p / 100 * float64(total)
	cum := 0.0
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= rank {
			lo, hi := h.BucketBounds(i)
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			return lo + (hi-lo)*frac
		}
		cum += float64(c)
	}
	_, hi := h.BucketBounds(len(h.Counts) - 1)
	return hi
}

// Render draws an ASCII histogram, one row per bucket, in the spirit of
// Fig. 5. unit labels the values (e.g. "ms").
func (h *Histogram) Render(unit string, width int) string {
	if width < 10 {
		width = 10
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		lo, hi := h.BucketBounds(i)
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&b, "%9.2f-%9.2f %s |%-*s| %d\n", lo, hi, unit, width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// DurationsToMillis converts durations to float milliseconds.
func DurationsToMillis(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d) / float64(time.Millisecond)
	}
	return out
}

// Summary holds the headline numbers of a distribution.
type Summary struct {
	N                        int
	Mean, P50, P90, P99, Max float64
}

// Summarize computes distribution statistics for values.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	pct := func(p float64) float64 {
		rank := p / 100 * float64(len(sorted)-1)
		lo := int(rank)
		frac := rank - float64(lo)
		if lo+1 >= len(sorted) {
			return sorted[lo]
		}
		return sorted[lo]*(1-frac) + sorted[lo+1]*frac
	}
	return Summary{
		N:    len(sorted),
		Mean: sum / float64(len(sorted)),
		P50:  pct(50),
		P90:  pct(90),
		P99:  pct(99),
		Max:  sorted[len(sorted)-1],
	}
}
