package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 1000, 3) // decades: [1,10), [10,100), [100,1000]
	for _, v := range []float64{2, 5, 20, 200, 999} {
		h.Add(v)
	}
	if h.N() != 5 {
		t.Errorf("N = %d", h.N())
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[2] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	lo, hi := h.BucketBounds(1)
	if math.Abs(lo-10) > 1e-9 || math.Abs(hi-100) > 1e-9 {
		t.Errorf("bounds = %v, %v", lo, hi)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(1, 100, 2)
	h.Add(0.001)
	h.Add(1e9)
	if h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	// Degenerate constructors clamp.
	h2 := NewHistogram(-5, -10, 0)
	h2.Add(1)
	if h2.N() != 1 {
		t.Error("degenerate histogram unusable")
	}
}

func TestMeanPercentile(t *testing.T) {
	h := NewHistogram(1, 1000, 10)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if math.Abs(h.Mean()-50.5) > 1e-9 {
		t.Errorf("mean = %v", h.Mean())
	}
	if p := h.Percentile(50); math.Abs(p-50.5) > 1 {
		t.Errorf("p50 = %v", p)
	}
	if p := h.Percentile(0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := h.Percentile(100); p != 100 {
		t.Errorf("p100 = %v", p)
	}
	empty := NewHistogram(1, 10, 2)
	if empty.Mean() != 0 || empty.Percentile(50) != 0 {
		t.Error("empty stats nonzero")
	}
}

func TestRender(t *testing.T) {
	h := NewHistogram(1, 100, 4)
	for i := 0; i < 50; i++ {
		h.Add(5)
	}
	h.Add(50)
	out := h.Render("ms", 40)
	if !strings.Contains(out, "#") {
		t.Error("no bars rendered")
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Errorf("rows:\n%s", out)
	}
	// Tiny width clamps.
	if h.Render("ms", 1) == "" {
		t.Error("clamped render empty")
	}
}

func TestDurationsToMillis(t *testing.T) {
	out := DurationsToMillis([]time.Duration{time.Second, 250 * time.Microsecond})
	if out[0] != 1000 || out[1] != 0.25 {
		t.Errorf("out = %v", out)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.N != 5 || s.Mean != 22 {
		t.Errorf("summary = %+v", s)
	}
	if s.P50 != 3 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if s.P99 < s.P90 || s.P90 < s.P50 {
		t.Error("percentiles not monotone")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summary nonzero")
	}
}

func TestQuickHistogramCountsSumToN(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(0.1, 1e6, 12)
		for _, v := range vals {
			h.Add(math.Abs(v))
		}
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == len(vals) && h.N() == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(raw []float64, p uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(1, 100, 4)
		min, max := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			v = math.Abs(v)
			if math.IsInf(v, 0) || math.IsNaN(v) {
				return true
			}
			h.Add(v)
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		got := h.Percentile(float64(p % 101))
		return got >= min-1e-9 && got <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
