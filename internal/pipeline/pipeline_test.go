package pipeline

import (
	"testing"
	"time"

	"matproj/internal/builder"
	"matproj/internal/datastore"
	"matproj/internal/document"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NMaterials = 30
	return cfg
}

func TestBuildFullDeployment(t *testing.T) {
	d, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.MPSRecords != 30 {
		t.Errorf("mps = %d", d.MPSRecords)
	}
	if d.Materials == 0 || d.Materials > d.Tasks {
		t.Errorf("materials = %d, tasks = %d", d.Materials, d.Tasks)
	}
	if d.Bands != d.Materials || d.XRDPatterns != d.Materials {
		t.Errorf("derived: bands=%d xrd=%d materials=%d", d.Bands, d.XRDPatterns, d.Materials)
	}
	if d.Batteries == 0 {
		t.Error("no batteries screened")
	}
	if d.BatchJobs == 0 || d.Cluster.Now() == 0 {
		t.Error("cluster did not run")
	}

	// The engine serves aliased queries over the built materials.
	mats, err := d.Engine.Find("u", "materials", document.D{"bandgap": document.D{"$gte": 0.0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(mats) == 0 {
		t.Error("engine query returned nothing")
	}

	// V&V over a freshly built deployment is clean.
	runner := &builder.Runner{Store: d.Store}
	violations, err := runner.RunChecks(builder.StandardChecks(d.Store))
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("violations on fresh build: %+v", violations)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestBuildPersistsAndReopens(t *testing.T) {
	cfg := smallConfig()
	cfg.NMaterials = 12
	cfg.PersistDir = t.TempDir()
	cfg.SkipDerived = true
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantMats := d.Materials
	if err := d.Store.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: everything replays from the journal.
	reopened, err := Build(Config{NMaterials: 1, Seed: 999, Nodes: 1, Workers: 1,
		JobWalltime: time.Hour, SkipDerived: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = reopened
	store2, err := datastore.Open(cfg.PersistDir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	n, _ := store2.C("materials").Count(nil)
	if n != wantMats {
		t.Errorf("reopened materials = %d, want %d", n, wantMats)
	}
}

func TestBatteryScreenShape(t *testing.T) {
	cands, err := BatteryScreen(42, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 10 {
		t.Fatalf("only %d candidates survived", len(cands))
	}
	for _, c := range cands {
		if c.Voltage <= 0 || c.Voltage > 6 {
			t.Errorf("%s voltage %v out of screen bounds", c.Formula, c.Voltage)
		}
		if c.Capacity <= 0 || c.Capacity > 1500 {
			t.Errorf("%s capacity %v implausible", c.Formula, c.Capacity)
		}
		if c.Ion != "Li" && c.Ion != "Na" {
			t.Errorf("%s ion %q", c.Formula, c.Ion)
		}
	}
	// The candidate cloud must be broader than the known-materials band
	// (the point of Fig. 1): at least one candidate outside 2.5-5 V or
	// outside 100-200 mAh/g.
	broader := false
	for _, c := range cands {
		if c.Voltage < 2.5 || c.Voltage > 5 || c.Capacity < 100 || c.Capacity > 200 {
			broader = true
		}
	}
	if !broader {
		t.Error("candidates all inside the known band; screen adds nothing")
	}
}

func TestBatteryCandidatesCarryDiffusionScreen(t *testing.T) {
	cands, err := BatteryScreen(7, 25)
	if err != nil {
		t.Fatal(err)
	}
	withBarrier := 0
	for _, c := range cands {
		if c.Barrier > 0 {
			withBarrier++
			if c.Barrier > 3 {
				t.Errorf("%s barrier %v unphysical", c.Formula, c.Barrier)
			}
			if c.Diffusivity <= 0 || c.Diffusivity > 1e-3 {
				t.Errorf("%s diffusivity %g unphysical", c.Formula, c.Diffusivity)
			}
		}
	}
	if withBarrier == 0 {
		t.Error("no candidate received a diffusion barrier")
	}
}

func TestBatteryDocsIncludeDiffusion(t *testing.T) {
	cfg := smallConfig()
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := d.Store.C("batteries").FindOne(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bat.Has("diffusion_barrier_ev") || !bat.Has("diffusivity_cm2s") {
		t.Errorf("battery doc missing diffusion fields: %v", bat)
	}
}

func TestConversionBatteriesBuilt(t *testing.T) {
	d, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.ConversionBatteries == 0 {
		t.Fatal("no conversion batteries built")
	}
	n, _ := d.Store.C("conversion_batteries").Count(nil)
	if n != d.ConversionBatteries {
		t.Errorf("collection %d vs counter %d", n, d.ConversionBatteries)
	}
	// As in the paper's corpus, conversion couples outnumber (or at least
	// rival) intercalation ones: every alkali-free anion compound counts.
	if d.ConversionBatteries < d.Batteries/4 {
		t.Errorf("conversion %d suspiciously few vs intercalation %d", d.ConversionBatteries, d.Batteries)
	}
	doc, _ := d.Store.C("conversion_batteries").FindOne(nil, nil)
	if v, ok := doc.GetFloat("capacity"); !ok || v < 100 {
		t.Errorf("conversion capacity = %v", v)
	}
}

func TestPipelineAnnotatesStability(t *testing.T) {
	d, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	n, _ := d.Store.C("materials").Count(document.D{"e_above_hull": document.D{"$exists": true}})
	if n == 0 {
		t.Error("no materials carry hull stability")
	}
	stable, _ := d.Store.C("materials").Count(document.D{"is_stable": true})
	if stable == 0 {
		t.Error("no stable materials")
	}
}

func TestStaticFollowUpChainsAndOverrides(t *testing.T) {
	cfg := smallConfig()
	cfg.NMaterials = 15
	cfg.SkipDerived = true
	cfg.StaticFollowUp = true
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	engines := d.Store.C("engines")
	// Every firework settles; static fireworks completed after their
	// relax parents.
	nonTerminal, _ := engines.Count(document.D{"state": document.D{"$in": []any{"WAITING", "READY", "RUNNING"}}})
	if nonTerminal != 0 {
		t.Fatalf("%d fireworks stuck", nonTerminal)
	}
	statics, err := engines.FindAll(document.D{"stage.task_type": "static", "state": "COMPLETED"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(statics) == 0 {
		t.Fatal("no static fireworks completed")
	}
	// The StaticFuse override fired: tightened EDIFF recorded in the
	// stage and in spec_history, and the relaxed energy carried forward.
	withCarry := 0
	for _, fw := range statics {
		if fw.GetString("output.duplicate_of") != "" {
			continue // deduped statics never launched, no override applied
		}
		if v, _ := fw.GetFloat("stage.params.ediff"); v != 1e-6 {
			t.Errorf("static %v ediff = %v", fw["_id"], v)
		}
		if len(fw.GetArray("spec_history")) == 0 {
			t.Errorf("static %v has no spec history", fw["_id"])
		}
		if fw.Has("stage.relaxed_energy") {
			withCarry++
		}
	}
	if withCarry == 0 {
		t.Error("no static firework carried the parent energy")
	}
	// Static tasks landed in the tasks collection.
	n, _ := d.Store.C("tasks").Count(document.D{"result.task_type": "static", "state": "successful"})
	if n == 0 {
		t.Error("no successful static tasks")
	}
}
