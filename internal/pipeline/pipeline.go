// Package pipeline wires the full Materials Project deployment end to
// end: synthetic ICSD records load into the mps collection, FireWorks
// executes simulated VASP runs on the cluster simulator, the builder
// reduces tasks into the materials collection, and derived-property
// builders populate the bandstructures, xrd, and batteries collections.
// One Deployment is the "community accessible datastore" of the title,
// ready to serve the Web API, analytics, and V&V.
package pipeline

import (
	"fmt"
	"time"

	"matproj/internal/analysis"
	"matproj/internal/builder"
	"matproj/internal/crystal"
	"matproj/internal/datastore"
	"matproj/internal/dft"
	"matproj/internal/document"
	"matproj/internal/fireworks"
	"matproj/internal/hpc"
	"matproj/internal/icsd"
	"matproj/internal/obs"
	"matproj/internal/queryengine"
)

// Config sizes a deployment build.
type Config struct {
	Seed          int64
	NMaterials    int     // ICSD records to generate
	DuplicateRate float64 // redetermination rate in the synthetic ICSD
	Nodes         int     // cluster nodes
	QueueLimit    int     // per-user batch queue limit (0 = unlimited)
	Workers       int     // task-farm jobs per submission round
	JobWalltime   time.Duration
	PersistDir    string // non-empty enables a durable store
	// SkipDerived skips band structures / XRD / battery screening.
	SkipDerived bool
	// StaticFollowUp chains a static (single-point) firework after every
	// relaxation, exercising parent-child dependencies and fuse overrides
	// at production scale.
	StaticFollowUp bool
	// Faults optionally injects chaos (worker crashes, dropped journal
	// appends) into the computation tier; the build must still converge
	// via lost-run recovery. Typically a *faults.Injector.
	Faults ChaosFaults
	// Obs, when non-nil, wires the whole deployment — datastore,
	// launchpad, and query engine — into a live metrics registry.
	Obs *obs.Registry
	// Tracer, when non-nil, feeds slow operations from the datastore and
	// query engine into a bounded slow-query log.
	Tracer *obs.Tracer
}

// ChaosFaults is the combined fault surface the pipeline can wire into
// both the cluster simulator and the datastore journal.
type ChaosFaults interface {
	hpc.WorkerFaults
	datastore.JournalFaults
}

// DefaultConfig returns a laptop-scale deployment configuration.
func DefaultConfig() Config {
	return Config{
		Seed:          2012,
		NMaterials:    80,
		DuplicateRate: 0.15,
		Nodes:         16,
		QueueLimit:    8,
		Workers:       8,
		JobWalltime:   24 * time.Hour,
	}
}

// Deployment is a fully built system.
type Deployment struct {
	Store   *datastore.Store
	Pad     *fireworks.LaunchPad
	Cluster *hpc.Cluster
	Engine  *queryengine.Engine

	// Counters from the build.
	MPSRecords  int
	Tasks       int
	Materials   int
	BatchJobs   int
	Bands       int
	XRDPatterns int
	Batteries   int
	// ConversionBatteries counts the conversion-electrode couples (the
	// paper's corpus held ~14,000 of these alongside ~400 intercalation
	// batteries — conversion candidates vastly outnumber intercalation
	// because any anion-bearing, alkali-free compound qualifies).
	ConversionBatteries int
}

// Build constructs and runs the whole pipeline.
func Build(cfg Config) (*Deployment, error) {
	if cfg.NMaterials <= 0 {
		return nil, fmt.Errorf("pipeline: NMaterials must be positive")
	}
	store, err := datastore.Open(cfg.PersistDir)
	if err != nil {
		return nil, err
	}
	if cfg.Obs != nil || cfg.Tracer != nil {
		store.Observe(cfg.Obs, cfg.Tracer)
	}
	d := &Deployment{Store: store}

	// 1. Input data: synthetic ICSD → mps collection (§III-B1).
	mps := store.C("mps")
	mps.EnsureIndex("elements")
	mps.EnsureIndex("nelectrons")
	recs := icsd.Generate(icsd.Config{Seed: cfg.Seed, DuplicateRate: cfg.DuplicateRate}, cfg.NMaterials)
	pad := fireworks.NewLaunchPad(store, 5)
	if cfg.Obs != nil {
		pad.Observe(cfg.Obs)
	}
	fireworks.RegisterVASP(pad)
	d.Pad = pad
	var fws []fireworks.Firework
	for i, r := range recs {
		mdoc := r.ToDoc()
		if _, err := mps.Insert(mdoc); err != nil {
			return nil, err
		}
		relax := fireworks.NewVASPFirework(mdoc, "relax", dft.DefaultParams(), cfg.JobWalltime/4)
		relax.ID = fmt.Sprintf("fw-relax-%s-%06d", r.ID, i)
		fws = append(fws, relax)
		if cfg.StaticFollowUp {
			fws = append(fws, fireworks.NewStaticFirework(mdoc, relax.ID, dft.DefaultParams(), cfg.JobWalltime/4))
		}
	}
	d.MPSRecords = len(recs)
	if _, err := pad.AddWorkflow(fws); err != nil {
		return nil, err
	}

	// 2. Parallel computation on the simulated HPC system (§IV-A).
	cluster := hpc.NewCluster(cfg.Nodes, cfg.QueueLimit,
		hpc.Policy{WorkerOutbound: false, ProxyHost: "mongoproxy01"})
	if cfg.Faults != nil {
		cluster.InjectFaults(cfg.Faults)
		store.InjectJournalFaults(cfg.Faults)
	}
	d.Cluster = cluster
	jobs, err := fireworks.DriveCluster(pad, fireworks.NewVASPAssembler(store), cluster,
		"mp_prod", cfg.Workers, cfg.JobWalltime, nil)
	if err != nil {
		return nil, err
	}
	d.BatchJobs = jobs
	d.Tasks, _ = store.C("tasks").Count(nil)
	if cfg.Faults != nil {
		// Chaos targets the computation tier; the build stages that
		// follow run clean.
		store.InjectJournalFaults(nil)
	}

	// 3. Build the materials collection (§III-B3).
	mb := &builder.MaterialsBuilder{Store: store, Engine: builder.EngineParallel}
	nm, err := mb.Build()
	if err != nil {
		return nil, err
	}
	d.Materials = nm

	// 4. Derived property collections and stability annotation.
	if !cfg.SkipDerived {
		sb := &builder.StabilityBuilder{Store: store, RefEnergy: dft.ElementalEnergy}
		if _, _, err := sb.Build(); err != nil {
			return nil, err
		}
		if err := d.buildDerived(); err != nil {
			return nil, err
		}
	}

	// 5. Dissemination layer: QueryEngine with the standard aliases.
	eng := queryengine.New(store, queryengine.WithRateLimit(10000, time.Minute))
	if cfg.Obs != nil || cfg.Tracer != nil {
		eng.Observe(cfg.Obs, cfg.Tracer)
	}
	eng.AddAlias("materials", "formula", "pretty_formula")
	eng.AddAlias("materials", "energy", "final_energy")
	eng.AddAlias("materials", "bandgap", "band_gap")
	d.Engine = eng
	return d, nil
}

// buildDerived populates bandstructures, xrd, and batteries from the
// materials collection.
func (d *Deployment) buildDerived() error {
	mats, err := d.Store.C("materials").FindAll(nil, nil)
	if err != nil {
		return err
	}
	bands := d.Store.C("bandstructures")
	xrd := d.Store.C("xrd")
	bands.EnsureIndex("material_id")
	xrd.EnsureIndex("material_id")
	var electrodes []analysis.ElectrodeInput
	electrodeStructures := map[int]*crystal.Structure{}
	for _, m := range mats {
		stDoc := m.GetDoc("structure")
		if stDoc == nil {
			continue
		}
		st, err := crystal.StructureFromDoc(stDoc)
		if err != nil {
			continue
		}
		matID, _ := m["_id"].(string)
		gap, _ := m.GetFloat("band_gap")
		bs := dft.ComputeBandStructure(st, &dft.Result{Bandgap: gap}, 8, 40)
		if _, err := bands.Insert(analysis.BandStructureToDoc(matID, bs)); err != nil {
			return err
		}
		d.Bands++
		peaks := analysis.XRDPattern(st, analysis.CuKAlpha, 3)
		if _, err := xrd.Insert(analysis.XRDToDoc(matID, m.GetString("pretty_formula"), analysis.CuKAlpha, peaks)); err != nil {
			return err
		}
		d.XRDPatterns++

		if in, ok := electrodeInput(matID, st, m); ok {
			electrodes = append(electrodes, in)
			electrodeStructures[len(electrodes)-1] = st
		}
	}
	batteries := d.Store.C("batteries")
	cands := analysis.Screen(electrodes)
	attachDiffusion(cands, electrodes, electrodeStructures)
	for _, c := range cands {
		if _, err := batteries.Insert(analysis.BatteryToDoc(c)); err != nil {
			return err
		}
		d.Batteries++
	}

	// Conversion batteries: every alkali-free compound with a convertible
	// anion is a candidate.
	var hosts []crystal.Composition
	for _, m := range mats {
		f := m.GetString("pretty_formula")
		comp, err := crystal.ParseFormula(f)
		if err != nil || analysis.WorkingIon(comp) != "" {
			continue
		}
		hosts = append(hosts, comp)
	}
	conv := d.Store.C("conversion_batteries")
	for _, c := range analysis.ScreenConversion(hosts, "Li", dft.CompositionEnergy, dft.ElementalEnergy("Li")) {
		if _, err := conv.Insert(analysis.BatteryToDoc(c)); err != nil {
			return err
		}
		d.ConversionBatteries++
	}
	return nil
}

// electrodeInput derives a candidate electrode couple from a material:
// the stored structure is the lithiated phase; the host is the same
// structure with the working ion removed, evaluated with the same DFT
// model.
func electrodeInput(matID string, st *crystal.Structure, m document.D) (analysis.ElectrodeInput, bool) {
	comp := st.Composition()
	ion := analysis.WorkingIon(comp)
	if ion == "" {
		return analysis.ElectrodeInput{}, false
	}
	host := &crystal.Structure{Lattice: st.Lattice}
	for _, site := range st.Sites {
		if site.Species != ion {
			host.Sites = append(host.Sites, site)
		}
	}
	if len(host.Sites) == 0 || len(host.Sites) == len(st.Sites) {
		return analysis.ElectrodeInput{}, false
	}
	eLith, ok := m.GetFloat("final_energy")
	if !ok {
		return analysis.ElectrodeInput{}, false
	}
	p := dft.DefaultParams()
	p.Potim = 0.2
	p.Algo = "Normal"
	p.NELM = 4000
	res, err := dft.Run(host, p)
	if err != nil || !res.Converged() {
		return analysis.ElectrodeInput{}, false
	}
	return analysis.ElectrodeInput{
		ID:          "bat-" + matID,
		Lithiated:   comp,
		Host:        host.Composition(),
		ELith:       eLith,
		EHost:       res.FinalEnergy,
		Ion:         ion,
		EIonPerAtom: dft.ElementalEnergy(ion),
	}, true
}

// BatteryScreen runs the standalone Fig. 1 screen over n synthetic
// battery frameworks: both lithiated and delithiated phases are computed
// with the DFT model and each couple evaluated for voltage and capacity.
func BatteryScreen(seed int64, n int) ([]analysis.BatteryCandidate, error) {
	recs := icsd.GenerateBatteryFrameworks(seed, n)
	var inputs []analysis.ElectrodeInput
	structures := map[int]*crystal.Structure{}
	p := dft.DefaultParams()
	p.Potim = 0.2
	p.Algo = "Normal"
	p.NELM = 4000
	for _, r := range recs {
		st := r.Structure
		comp := st.Composition()
		ion := analysis.WorkingIon(comp)
		if ion == "" {
			continue
		}
		host := &crystal.Structure{Lattice: st.Lattice}
		for _, site := range st.Sites {
			if site.Species != ion {
				host.Sites = append(host.Sites, site)
			}
		}
		if len(host.Sites) == 0 {
			continue
		}
		lithRes, err := dft.Run(st, p)
		if err != nil || !lithRes.Converged() {
			continue
		}
		hostRes, err := dft.Run(host, p)
		if err != nil || !hostRes.Converged() {
			continue
		}
		inputs = append(inputs, analysis.ElectrodeInput{
			ID:          "bat-" + r.ID,
			Lithiated:   comp,
			Host:        host.Composition(),
			ELith:       lithRes.FinalEnergy,
			EHost:       hostRes.FinalEnergy,
			Ion:         ion,
			EIonPerAtom: dft.ElementalEnergy(ion),
		})
		structures[len(inputs)-1] = st
	}
	cands := analysis.Screen(inputs)
	attachDiffusion(cands, inputs, structures)
	return cands, nil
}

// attachDiffusion runs the geometric ion-migration screen on each
// surviving candidate's lithiated structure ("further computations can
// be used to screen promising candidates for other important properties
// such as Li diffusivity").
func attachDiffusion(cands []analysis.BatteryCandidate, inputs []analysis.ElectrodeInput, structures map[int]*crystal.Structure) {
	byID := make(map[string]*crystal.Structure, len(structures))
	for i, st := range structures {
		byID[inputs[i].ID] = st
	}
	for i := range cands {
		st := byID[cands[i].ID]
		if st == nil {
			continue
		}
		hop, err := analysis.DiffusionBarrier(st, cands[i].Ion)
		if err != nil {
			continue
		}
		cands[i].Barrier = hop.Barrier
		cands[i].Diffusivity = analysis.Diffusivity(hop.Barrier, 300)
	}
}
