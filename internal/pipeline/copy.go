package pipeline

import (
	"fmt"
	"sort"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

// CollectionInserter is the destination surface CopyCollections writes
// through: per-collection inserts plus index creation. A cluster router
// satisfies it (routing each document to its shard group and replicating
// it), as does any local-store wrapper.
type CollectionInserter interface {
	Insert(collection string, doc document.D) (string, error)
	EnsureIndex(collection, path string)
}

// CopyCollections streams collections from a built deployment store into
// a destination — the loading path for a networked cluster: Build the
// corpus locally (the workflow tier is process-local), then fan the
// collections out to the shard nodes through the router. Indexes are
// recreated on the destination before the rows land so inserts maintain
// them incrementally. With no names given, every collection is copied.
// Returns the number of documents copied.
func CopyCollections(dst CollectionInserter, src *datastore.Store, collections ...string) (int, error) {
	if len(collections) == 0 {
		collections = src.Collections()
		sort.Strings(collections)
	}
	total := 0
	for _, name := range collections {
		c := src.C(name)
		for _, path := range c.Stats().Indexes {
			dst.EnsureIndex(name, path)
		}
		docs, err := c.FindAll(nil, nil)
		if err != nil {
			return total, fmt.Errorf("pipeline: copy %s: %w", name, err)
		}
		for _, d := range docs {
			if _, err := dst.Insert(name, d); err != nil {
				return total, fmt.Errorf("pipeline: copy %s: %w", name, err)
			}
			total++
		}
	}
	return total, nil
}
