package pipeline

import (
	"testing"

	"matproj/internal/document"
	"matproj/internal/faults"
	"matproj/internal/fireworks"
)

func TestBuildConvergesUnderChaos(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NMaterials = 20
	cfg.SkipDerived = true
	cfg.Faults = faults.New(faults.Config{Seed: 5, WorkerCrashRate: 0.15})
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cluster.Stats().WorkerCrashes == 0 {
		t.Fatal("no crashes injected — test is vacuous; change the seed")
	}
	// Despite the crashes the computation tier must quiesce with no
	// firework stuck RUNNING, and the build must still produce materials.
	n, _ := d.Store.C(fireworks.EnginesCollection).Count(
		document.D{"state": string(fireworks.StateRunning)})
	if n != 0 {
		t.Fatalf("%d fireworks stuck RUNNING", n)
	}
	if d.Materials == 0 {
		t.Fatal("chaos build produced no materials")
	}
	t.Logf("chaos build: %d crashes, %d tasks, %d materials",
		d.Cluster.Stats().WorkerCrashes, d.Tasks, d.Materials)
}
