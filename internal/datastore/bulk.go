package datastore

import (
	"fmt"
	"time"

	"matproj/internal/document"
	"matproj/internal/query"
)

// BulkOp is one operation in a BulkWrite batch.
type BulkOp struct {
	// Op selects the operation: "insert", "updateOne", "updateMany" or
	// "delete".
	Op string
	// Doc is the document to insert (insert only).
	Doc document.D
	// Filter selects documents for updateOne/updateMany/delete.
	Filter document.D
	// Update is the update body for updateOne/updateMany.
	Update document.D
}

// Bulk op names.
const (
	BulkInsert     = "insert"
	BulkUpdateOne  = "updateOne"
	BulkUpdateMany = "updateMany"
	BulkDelete     = "delete"
)

// BulkOpResult reports what one BulkWrite operation did. Error is a
// string rather than an error so per-op outcomes survive the wire
// protocol unchanged.
type BulkOpResult struct {
	ID       string // assigned/used _id (insert)
	Matched  int
	Modified int
	Removed  int
	Error    string // empty on success
}

// BulkResult aggregates a BulkWrite: totals plus one BulkOpResult per
// input op, in input order.
type BulkResult struct {
	Inserted int
	Matched  int
	Modified int
	Removed  int
	PerOp    []BulkOpResult
}

// bulkCompiled is one op's pre-lock compilation: filters, updates and
// insert documents are prepared (and insert ids minted) before the
// collection lock is taken, so the critical section does only the apply.
type bulkCompiled struct {
	op   string
	doc  document.D
	id   string
	flt  *query.Filter
	upd  *query.Update
	many bool
	err  error
}

// BulkWrite applies a mixed batch of inserts, updates and deletes under
// a single lock acquisition. Ops run in order and continue past per-op
// failures (reported in the per-op results, not the error return); all
// journal records the batch produced ride one group commit, so a batch
// costs one fsync regardless of size. The error return is reserved for
// batch-level failures — an empty batch or a failed commit.
func (c *Collection) BulkWrite(ops []BulkOp) (BulkResult, error) {
	start := time.Now()
	res := BulkResult{PerOp: make([]BulkOpResult, len(ops))}
	if len(ops) == 0 {
		return res, nil
	}
	compiled := make([]bulkCompiled, len(ops))
	for i, op := range ops {
		compiled[i] = c.compileBulkOp(op)
	}
	var p pendingCommit
	mutated := 0
	c.mu.Lock()
	for i := range compiled {
		co := &compiled[i]
		r := &res.PerOp[i]
		if co.err != nil {
			r.Error = co.err.Error()
			continue
		}
		switch co.op {
		case BulkInsert:
			if _, exists := c.docs[co.id]; exists {
				r.Error = fmt.Sprintf("%v: %q in %q", ErrDuplicateID, co.id, c.name)
				continue
			}
			c.insertLocked(co.id, co.doc)
			p = c.stageLocked(journalInsert, co.id, co.doc)
			r.ID = co.id
			res.Inserted++
			mutated++
		case BulkUpdateOne, BulkUpdateMany:
			for _, id := range c.scanLocked(co.flt) {
				r.Matched++
				cur := c.docs[id]
				next, err := co.upd.Apply(cur.Copy())
				if err != nil {
					r.Error = err.Error()
					break
				}
				if nid, ok := next["_id"].(string); !ok || nid != id {
					r.Error = fmt.Sprintf("datastore: update may not change _id (collection %q)", c.name)
					break
				}
				if !document.Equal(cur, next) {
					c.replaceLocked(id, next)
					p = c.stageLocked(journalUpdate, id, next)
					r.Modified++
					mutated++
				}
				if !co.many {
					break
				}
			}
			res.Matched += r.Matched
			res.Modified += r.Modified
		case BulkDelete:
			for _, id := range c.scanLocked(co.flt) {
				c.removeLocked(id)
				p = c.stageLocked(journalRemove, id, nil)
				r.Removed++
				mutated++
			}
			res.Removed += r.Removed
		}
	}
	c.mu.Unlock()
	// One commit covers every record the batch staged (FIFO drain plus
	// the journal's sticky error make the last ticket's fsync vouch for
	// all earlier ones).
	if err := p.commit(); err != nil {
		return res, err
	}
	c.profile("bulkWrite", start, mutated)
	return res, nil
}

// compileBulkOp validates and compiles one op outside the lock.
func (c *Collection) compileBulkOp(op BulkOp) bulkCompiled {
	co := bulkCompiled{op: op.Op}
	switch op.Op {
	case BulkInsert:
		d := document.NormalizeDoc(op.Doc).Copy()
		id, hasID := d["_id"].(string)
		if !hasID {
			if raw, ok := d["_id"]; ok {
				co.err = fmt.Errorf("datastore: _id must be a string, got %T", raw)
				return co
			}
			id = nextID()
			d["_id"] = id
		}
		co.doc, co.id = d, id
	case BulkUpdateOne, BulkUpdateMany:
		co.many = op.Op == BulkUpdateMany
		flt, err := query.Compile(op.Filter)
		if err != nil {
			co.err = err
			return co
		}
		upd, err := query.CompileUpdate(op.Update)
		if err != nil {
			co.err = err
			return co
		}
		co.flt, co.upd = flt, upd
	case BulkDelete:
		flt, err := query.Compile(op.Filter)
		if err != nil {
			co.err = err
			return co
		}
		co.flt = flt
	default:
		co.err = fmt.Errorf("datastore: unknown bulk op %q", op.Op)
	}
	return co
}
