package datastore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"matproj/internal/document"
	"matproj/internal/obs"
)

// Durability: the store appends every write to a checksummed JSON-lines
// journal through a group-commit queue — mutators stage framed records
// while holding their collection's write lock (so journal order matches
// apply order), and a leader caller drains the queue in batches, making
// each batch durable with a single fsync before acknowledging every
// record it covers. A snapshot atomically rewrites the full contents of
// every collection into a snapshot file (write-temp, fsync, rename) and
// truncates the journal; on open, the snapshot is loaded and the journal
// replayed on top.
//
//lint:file-ignore lockheld the journal mutex exists to serialize file I/O: batches must reach the file in acknowledge order, so the critical section intentionally spans the write and fsync
//
// Crash safety. Each journal line carries a CRC32-C of its payload
// ("%08x <json>\n"), so a write torn by a crash — a partial line, a
// missing newline, a line whose checksum does not match — is detected on
// replay. A torn *tail* (one or more bad lines with no valid record
// after them) is the expected signature of a crash mid-append: replay
// truncates the journal back to the last valid record, records what was
// dropped in RecoveryStats, and the store opens normally. Corruption in
// the *middle* of the journal (valid records after a bad line) cannot be
// explained by a torn final write and is reported as an error rather
// than silently dropping acknowledged history. Lines beginning with '{'
// are accepted without a checksum for compatibility with journals
// written before checksumming.

type journalOp string

const (
	journalInsert journalOp = "i"
	journalUpdate journalOp = "u"
	journalRemove journalOp = "r"
	journalDrop   journalOp = "d"
	// journalIndex / journalIndexDrop record index definitions (hash or
	// ordered) so crash recovery and replica catch-up rebuild them. The
	// record's ID is the index name; Doc carries the definition payload
	// ({"path": p} for hash, {"ordered": true, "paths": [...]} for
	// ordered). The indexed data itself is never journaled — replay
	// re-creates the definition and backfills from the documents.
	journalIndex     journalOp = "x"
	journalIndexDrop journalOp = "X"
	// journalMeta carries replication bookkeeping, not data: the first
	// line of every snapshot records the replication generation the
	// snapshot covers, so replay can restore the log's floor.
	journalMeta journalOp = "m"
)

type journalRecord struct {
	Op         journalOp       `json:"op"`
	Collection string          `json:"c,omitempty"`
	ID         string          `json:"id,omitempty"`
	Doc        json.RawMessage `json:"doc,omitempty"`
	// Gen is the store-wide replication generation of this mutation.
	// Gens are minted under the journal mutex, so journal file order is
	// generation order. Zero on legacy (pre-replication) records.
	Gen uint64 `json:"g,omitempty"`
}

// indexDef is the Doc payload of journalIndex / journalIndexDrop records.
type indexDef struct {
	Ordered bool     `json:"ordered,omitempty"`
	Path    string   `json:"path,omitempty"`
	Paths   []string `json:"paths,omitempty"`
	Name    string   `json:"name,omitempty"`
}

// indexDefRecordsLocked renders the collection's index definitions as
// journal records (hash indexes first, then ordered, both sorted for
// deterministic snapshots). Caller holds c.mu.
func (c *Collection) indexDefRecordsLocked() []journalRecord {
	var out []journalRecord
	mk := func(name string, def document.D) (journalRecord, error) {
		b, err := def.ToJSON()
		if err != nil {
			return journalRecord{}, err
		}
		return journalRecord{Op: journalIndex, Collection: c.name, ID: name, Doc: b}, nil
	}
	hashPaths := make([]string, 0, len(c.indexes))
	for p := range c.indexes {
		hashPaths = append(hashPaths, p)
	}
	sort.Strings(hashPaths)
	for _, p := range hashPaths {
		if rec, err := mk(p, hashIndexDefDoc(p)); err == nil {
			out = append(out, rec)
		}
	}
	ordNames := make([]string, 0, len(c.ordered))
	for n := range c.ordered {
		ordNames = append(ordNames, n)
	}
	sort.Strings(ordNames)
	for _, n := range ordNames {
		if rec, err := mk(n, orderedIndexDefDoc(c.ordered[n].paths)); err == nil {
			out = append(out, rec)
		}
	}
	return out
}

// JournalFaults lets a fault injector interfere with journal appends.
// Implemented by *faults.Injector; declared here so the storage layer
// stays free of test-harness imports.
type JournalFaults interface {
	// DropAppend reports whether the next append should be silently
	// lost (simulating a crash between acknowledge and write-out).
	DropAppend() bool
	// AppendDelay returns how long the next append should stall.
	AppendDelay() time.Duration
}

type journal struct {
	mu     sync.Mutex
	dir    string
	file   *os.File
	w      *bufio.Writer
	faults JournalFaults
	// werr records the first write/flush/fsync failure. It is sticky:
	// once set, every later commit fails fast (so an acknowledged write
	// can never outlive an earlier lost one) and close() surfaces it — a
	// store shut down after a failed append reports that acknowledged
	// writes may not be durable instead of pretending the journal is
	// intact. Guarded by mu.
	werr error
	// obs, when set, receives append/fsync/snapshot latencies and
	// counters. Guarded by mu like the rest of the journal state.
	obs *obs.Registry
	// repl mints and tracks replication generations for the owning
	// store. Set once before the journal serves appends; the pointer is
	// immutable afterwards (replState has its own mutex).
	repl *replState

	// Group-commit queue. Mutators stage framed records here while
	// holding their collection's write lock (so queue order == apply
	// order), then commit after releasing it. The first committer to
	// find the queue unled becomes the leader: it drains pending frames
	// in batches, writes each batch under j.mu, and makes the whole
	// batch durable with ONE fsync before resolving its tickets. qmu is
	// a leaf mutex ordered after c.mu and before rs.mu; it is never held
	// across I/O (j.mu is taken only with qmu released).
	qmu        sync.Mutex
	pending    []pendingFrame
	committing bool
}

// commitTicket is one staged record's handle on the group commit that
// will cover it. ch closes when the record's batch is durable (or has
// failed); err is valid after ch closes.
type commitTicket struct {
	ch  chan struct{}
	err error
}

// pendingFrame is one framed journal line awaiting its group commit.
type pendingFrame struct {
	line []byte // checksum-framed, newline-terminated
	t    *commitTicket
}

// RecoveryStats describes what replay found when a durable store was
// opened: how much state was recovered and whether the journal tail had
// to be repaired.
type RecoveryStats struct {
	// SnapshotRecords and JournalRecords count the records applied from
	// each file.
	SnapshotRecords int
	JournalRecords  int
	// DroppedRecords counts torn/corrupt trailing lines discarded
	// during repair; TruncatedBytes is how far the journal was cut back.
	DroppedRecords int
	TruncatedBytes int64
	// Repaired is true when a torn journal tail was truncated.
	Repaired bool
}

func journalPath(dir string) string  { return filepath.Join(dir, "journal.ndjson") }
func snapshotPath(dir string) string { return filepath.Join(dir, "snapshot.ndjson") }

// JournalFile returns the path of the journal inside a durable store's
// directory. Exposed for fault-injection harnesses that tear the tail.
func JournalFile(dir string) string { return journalPath(dir) }

// SnapshotFile returns the path of the snapshot inside a durable
// store's directory.
func SnapshotFile(dir string) string { return snapshotPath(dir) }

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeLine frames one journal record: "%08x <json>\n".
func encodeLine(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+10)
	out = append(out, fmt.Sprintf("%08x ", crc32.Checksum(payload, crcTable))...)
	out = append(out, payload...)
	out = append(out, '\n')
	return out
}

// decodeLine validates and strips the checksum frame. Legacy lines
// beginning with '{' pass through unchecked.
func decodeLine(line []byte) ([]byte, error) {
	if len(line) > 0 && line[0] == '{' {
		return line, nil
	}
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("short or unframed line")
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("bad checksum field: %w", err)
	}
	payload := line[9:]
	if got := crc32.Checksum(payload, crcTable); got != uint32(want) {
		return nil, fmt.Errorf("checksum mismatch: %08x != %08x", got, want)
	}
	return payload, nil
}

// openJournalDir prepares dir but does not open the append handle; that
// happens after replay so a repaired (truncated) journal is not held
// open across the truncation.
func openJournalDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("datastore: create dir: %w", err)
	}
	return nil
}

// openAppend opens the append handle once replay (and any tail repair)
// has finished.
func openAppend(dir string) (*journal, error) {
	f, err := os.OpenFile(journalPath(dir), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("datastore: open journal: %w", err)
	}
	return &journal{dir: dir, file: f, w: bufio.NewWriter(f)}, nil
}

func (j *journal) close() error {
	// Stage/commit pairs normally drain the queue before returning, but
	// a close racing the tail of a commit can still find frames pending;
	// write them out while the file is open so nothing acked is lost.
	j.drain()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.file == nil {
		return j.werr
	}
	if err := j.w.Flush(); err != nil {
		j.file.Close()
		j.file = nil
		return err
	}
	if err := j.syncTimed(j.file); err != nil {
		j.file.Close()
		j.file = nil
		return err
	}
	err := j.file.Close()
	j.file = nil
	if err == nil {
		err = j.werr
	}
	return err
}

// syncTimed fsyncs f and records the latency when the journal is observed.
func (j *journal) syncTimed(f *os.File) error {
	start := time.Now()
	err := f.Sync()
	j.obs.LatencyHistogram("datastore.journal.fsync_ms").ObserveDuration(time.Since(start))
	return err
}

// stage frames rec and enqueues it for the next group commit, minting
// its replication generation. Callers invoke stage while holding the
// owning collection's write lock, so enqueue order — which is also
// generation order and, because batches drain FIFO, journal file order —
// provably matches in-memory apply order. The returned ticket must be
// handed to commit (after the collection lock is released) to make the
// record durable; nil means there was nothing to stage.
func (j *journal) stage(rec journalRecord) *commitTicket {
	b, err := json.Marshal(rec)
	if err != nil {
		return nil
	}
	j.qmu.Lock()
	defer j.qmu.Unlock()
	// Mint the generation atomically with enqueueing: a dropped append
	// still mutated memory, so its generation must stay burned —
	// followers detect the hole (head advanced, entry unavailable) and
	// fall back to a snapshot copy instead of believing they are caught
	// up.
	if j.repl != nil && rec.Gen == 0 && rec.Op != journalMeta {
		rec.Gen = j.repl.next()
		b, err = json.Marshal(rec)
		if err != nil {
			return nil
		}
	}
	t := &commitTicket{ch: make(chan struct{})}
	j.pending = append(j.pending, pendingFrame{line: encodeLine(b), t: t})
	return t
}

// stageRaw enqueues one pre-framed line (checksum prefix, no trailing
// newline) exactly as received. Used when applying replicated entries:
// the follower's journal carries the primary's bytes — same checksums,
// same generations — so a re-opened follower replays to the same state.
func (j *journal) stageRaw(line []byte) *commitTicket {
	framed := make([]byte, 0, len(line)+1)
	framed = append(framed, line...)
	framed = append(framed, '\n')
	t := &commitTicket{ch: make(chan struct{})}
	j.qmu.Lock()
	j.pending = append(j.pending, pendingFrame{line: framed, t: t})
	j.qmu.Unlock()
	return t
}

// commit makes t's record durable and returns the result of the fsync
// that covered it. The caller either becomes the commit leader (drains
// the queue itself) or, when another caller is already leading, waits
// for that leader to write and sync the batch containing its frame —
// this is the group commit: one fsync acks every record in the batch.
//
// Resolution is guaranteed: a leader only steps down after observing an
// empty queue under qmu, and stage/commit pairs are ordered, so any
// frame staged before commit is either already resolved or will be
// drained by the active leader before it steps down.
func (j *journal) commit(t *commitTicket) error {
	if t == nil {
		return nil
	}
	j.drain()
	<-t.ch
	return t.err
}

// drain takes commit leadership if nobody holds it and writes every
// pending batch. Each iteration swaps out the whole queue as one batch;
// frames staged while a batch is being written form the next batch.
func (j *journal) drain() {
	j.qmu.Lock()
	if j.committing {
		j.qmu.Unlock()
		return
	}
	j.committing = true
	for len(j.pending) > 0 {
		batch := j.pending
		j.pending = nil
		j.qmu.Unlock()
		j.writeBatch(batch)
		j.qmu.Lock()
	}
	j.committing = false
	j.qmu.Unlock()
}

// writeBatch writes one batch of frames under j.mu, makes them durable
// with a single fsync, and resolves every ticket with the outcome. Per
// the sticky-error contract, once werr is set no later frame is written:
// an acknowledged record must never survive a crash that lost an
// earlier acknowledged one.
func (j *journal) writeBatch(batch []pendingFrame) {
	j.mu.Lock()
	if j.file == nil {
		// Journal detached (store closed / memory store): resolve with
		// whatever terminal state close() recorded.
		err := j.werr
		j.mu.Unlock()
		for _, f := range batch {
			f.t.err = err
			close(f.t.ch)
		}
		return
	}
	start := time.Now()
	wrote := 0
	for _, f := range batch {
		if j.werr != nil {
			break
		}
		if j.faults != nil {
			if d := j.faults.AppendDelay(); d > 0 {
				//lint:ignore clockdiscipline the injected append stall simulates a slow disk; real elapsed time is the point
				time.Sleep(d)
			}
			if j.faults.DropAppend() {
				// Simulates loss between acknowledge and write-out: the
				// record's ticket still resolves OK, but the bytes never
				// reach the file.
				j.obs.Counter("datastore.journal.dropped_appends").Inc()
				continue
			}
		}
		if _, err := j.w.Write(f.line); err != nil {
			j.recordWriteErrLocked(err)
			break
		}
		wrote++
	}
	if j.werr == nil && wrote > 0 {
		if err := j.w.Flush(); err != nil {
			j.recordWriteErrLocked(err)
		} else if err := j.syncTimed(j.file); err != nil {
			j.recordWriteErrLocked(err)
		}
	}
	err := j.werr
	j.obs.Counter("datastore.journal.appends").Add(uint64(wrote))
	j.obs.Counter("datastore.journal.commits").Inc()
	if len(batch) > 1 {
		j.obs.Counter("datastore.journal.group_commits").Inc()
		j.obs.Counter("datastore.journal.group_committed_records").Add(uint64(len(batch)))
	}
	j.obs.LatencyHistogram("datastore.journal.commit_ms").ObserveDuration(time.Since(start))
	j.mu.Unlock()
	for _, f := range batch {
		f.t.err = err
		close(f.t.ch)
	}
}

// recordWriteErrLocked notes a failed append so close() can surface it.
// Callers hold j.mu.
func (j *journal) recordWriteErrLocked(err error) {
	if j.werr == nil {
		j.werr = fmt.Errorf("datastore: journal append: %w", err)
	}
	j.obs.Counter("datastore.journal.append_errors").Inc()
}

// stageWrite frames one mutation record for the group commit. Callers
// hold the owning collection's write lock; see stage.
func (j *journal) stageWrite(coll string, op journalOp, id string, doc document.D) *commitTicket {
	var raw json.RawMessage
	if doc != nil {
		b, err := doc.ToJSON()
		if err != nil {
			return nil
		}
		raw = b
	}
	return j.stage(journalRecord{Op: op, Collection: coll, ID: id, Doc: raw})
}

func (j *journal) logDrop(coll string) {
	_ = j.commit(j.stage(journalRecord{Op: journalDrop, Collection: coll}))
}

// replay loads the snapshot then re-applies the journal into s. Called
// before s.journal is set, so replayed writes are not re-journaled. The
// snapshot is written atomically and must be intact; the journal's tail
// may be torn and is repaired.
func replay(s *Store, dir string) (RecoveryStats, error) {
	var stats RecoveryStats
	n, _, err := replayFile(s, snapshotPath(dir), false)
	if err != nil {
		return stats, err
	}
	stats.SnapshotRecords = n
	n, rep, err := replayFile(s, journalPath(dir), true)
	if err != nil {
		return stats, err
	}
	stats.JournalRecords = n
	stats.DroppedRecords = rep.dropped
	stats.TruncatedBytes = rep.truncatedBytes
	stats.Repaired = rep.repaired
	return stats, nil
}

type repairInfo struct {
	dropped        int
	truncatedBytes int64
	repaired       bool
}

// replayFile applies one snapshot/journal file to s. When repairTail is
// set, malformed trailing lines (with no valid record after them) are
// dropped and the file truncated back to the last valid record;
// malformed lines *followed by* valid records are an error either way.
func replayFile(s *Store, path string, repairTail bool) (int, repairInfo, error) {
	var rep repairInfo
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, rep, nil
		}
		return 0, rep, fmt.Errorf("datastore: open %s: %w", path, err)
	}

	type badLine struct {
		line   int
		offset int64
		err    error
	}
	var (
		r       = bufio.NewReaderSize(f, 1<<20)
		offset  int64 // start of the current line
		goodEnd int64 // end offset of the last valid record
		line    int
		applied int
		bad     []badLine
	)
	for {
		raw, rerr := r.ReadBytes('\n')
		if len(raw) == 0 && rerr != nil {
			break
		}
		line++
		lineStart := offset
		offset += int64(len(raw))
		torn := rerr != nil // no trailing newline: partial final write
		data := bytes.TrimSuffix(raw, []byte("\n"))
		if len(data) == 0 {
			if !torn && len(bad) == 0 {
				goodEnd = offset
			}
			if rerr != nil {
				break
			}
			continue
		}
		// A torn (newline-less) final line can still be complete — e.g.
		// only the '\n' itself was lost — so every line gets the same
		// treatment: accept iff checksum and JSON both decode.
		payload, derr := decodeLine(data)
		var rec journalRecord
		if derr == nil {
			derr = json.Unmarshal(payload, &rec)
		}
		if derr != nil {
			bad = append(bad, badLine{line: line, offset: lineStart, err: derr})
			if rerr != nil {
				break
			}
			continue
		}
		if len(bad) > 0 {
			f.Close()
			return applied, rep, fmt.Errorf("datastore: %s line %d: corrupt record followed by valid data (not a torn tail): %v",
				path, bad[0].line, bad[0].err)
		}
		if aerr := applyRecord(s, rec); aerr != nil {
			f.Close()
			return applied, rep, fmt.Errorf("datastore: %s line %d: %w", path, line, aerr)
		}
		applied++
		goodEnd = offset
		if rerr != nil {
			break
		}
	}
	f.Close()

	if len(bad) == 0 {
		return applied, rep, nil
	}
	if !repairTail {
		return applied, rep, fmt.Errorf("datastore: %s line %d: %v", path, bad[0].line, bad[0].err)
	}
	// Torn tail: every line after goodEnd is bad. Cut them off.
	rep.dropped = len(bad)
	rep.truncatedBytes = offset - goodEnd
	rep.repaired = true
	if err := os.Truncate(path, goodEnd); err != nil {
		return applied, rep, fmt.Errorf("datastore: repair %s: %w", path, err)
	}
	return applied, rep, nil
}

func applyRecord(s *Store, rec journalRecord) error {
	if rec.Op == journalMeta {
		// Snapshot header: everything at or below Gen lives in the
		// snapshot, not the journal.
		s.repl.observeBase(rec.Gen)
		return nil
	}
	if rec.Gen != 0 {
		s.repl.observe(rec.Gen)
	}
	c := s.C(rec.Collection)
	switch rec.Op {
	case journalInsert, journalUpdate:
		d, err := document.FromJSON(rec.Doc)
		if err != nil {
			return fmt.Errorf("doc: %w", err)
		}
		c.mu.Lock()
		if _, exists := c.docs[rec.ID]; exists {
			c.replaceLocked(rec.ID, d)
		} else {
			c.insertLocked(rec.ID, d)
		}
		c.mu.Unlock()
	case journalRemove:
		c.mu.Lock()
		c.removeLocked(rec.ID)
		c.mu.Unlock()
	case journalIndex, journalIndexDrop:
		var def indexDef
		if len(rec.Doc) > 0 {
			if err := json.Unmarshal(rec.Doc, &def); err != nil {
				return fmt.Errorf("index def: %w", err)
			}
		}
		c.mu.Lock()
		if rec.Op == journalIndex {
			switch {
			case def.Ordered && len(def.Paths) > 0:
				c.ensureOrderedLocked(def.Paths)
			case !def.Ordered && def.Path != "":
				c.ensureHashLocked(def.Path)
			}
		} else {
			if def.Ordered {
				name := def.Name
				if name == "" {
					name = rec.ID
				}
				delete(c.ordered, name)
			} else {
				p := def.Path
				if p == "" {
					p = rec.ID
				}
				delete(c.indexes, p)
			}
			// Every other mutation path bumps inside the lock (the
			// *Locked helpers do it themselves); a replayed drop must
			// too, or cached plans keep validating against the index
			// that no longer exists.
			c.bumpGenLocked()
		}
		c.mu.Unlock()
	case journalDrop:
		s.mu.Lock()
		delete(s.collections, rec.Collection)
		s.mu.Unlock()
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
	return nil
}

// snapshot serializes every collection to the snapshot file and truncates
// the journal. The rotation is atomic and crash-ordered: the temp file is
// fully written and fsynced before the rename, and the journal is only
// truncated after the rename lands, so a crash at any point leaves
// either (old snapshot + full journal) or (new snapshot + journal in
// some state ≥ empty) — both replayable.
func (j *journal) snapshot(s *Store) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	snapStart := time.Now()
	defer func() {
		j.obs.Counter("datastore.journal.snapshots").Inc()
		j.obs.LatencyHistogram("datastore.journal.snapshot_ms").ObserveDuration(time.Since(snapStart))
	}()
	tmp := snapshotPath(j.dir) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("datastore: snapshot: %w", err)
	}
	w := bufio.NewWriter(f)

	// Header: the replication generation this snapshot covers. Batch
	// writes hold j.mu, so no frame can reach the journal while the
	// snapshot runs. Generations are minted at stage time, inside the
	// collection write lock, so every minted generation ≤ head has
	// already been applied in memory and is captured by the state scan
	// below; any of its frames still pending in the commit queue land in
	// the rotated journal afterwards and replay idempotently.
	var head uint64
	if j.repl != nil {
		head = j.repl.current()
		mb, merr := json.Marshal(journalRecord{Op: journalMeta, Gen: head})
		if merr != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("datastore: snapshot meta: %w", merr)
		}
		if _, werr := w.Write(encodeLine(mb)); werr != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("datastore: snapshot meta: %w", werr)
		}
	}

	s.mu.RLock()
	colls := make([]*Collection, 0, len(s.collections))
	for _, c := range s.collections {
		colls = append(colls, c)
	}
	s.mu.RUnlock()

	for _, c := range colls {
		if err := snapshotCollection(w, c); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	syncStart := time.Now()
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	j.obs.LatencyHistogram("datastore.journal.fsync_ms").ObserveDuration(time.Since(syncStart))
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, snapshotPath(j.dir)); err != nil {
		return err
	}
	syncDir(j.dir)
	// Truncate the journal now that its contents are in the snapshot.
	// A rotation failure leaves the journal un-truncated, which is
	// safe: replay applies the (idempotent) journal on top of the new
	// snapshot.
	if j.file != nil {
		if err := j.w.Flush(); err != nil {
			return fmt.Errorf("datastore: rotate journal: %w", err)
		}
		if err := j.syncTimed(j.file); err != nil {
			return fmt.Errorf("datastore: rotate journal: %w", err)
		}
		err := j.file.Close()
		j.file = nil
		if err != nil {
			j.recordWriteErrLocked(err)
			return fmt.Errorf("datastore: rotate journal: %w", err)
		}
	}
	if err := os.Truncate(journalPath(j.dir), 0); err != nil {
		return err
	}
	nf, err := os.OpenFile(journalPath(j.dir), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	j.file = nf
	j.w = bufio.NewWriter(nf)
	if j.repl != nil {
		// Generations at or below head now live only in the snapshot;
		// log pulls from below must fall back to a snapshot copy.
		j.repl.setBase(head)
	}
	return nil
}

// snapshotCollection encodes every document of c into w under the
// collection's read lock. Only buffered writes happen while the lock
// is held; flush and fsync run after every collection is released, so
// the store keeps serving writes to other collections during the disk
// work.
func snapshotCollection(w *bufio.Writer, c *Collection) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	// Index definitions first, so replay has them in place before the
	// documents arrive (backfill-on-create is then a no-op and every
	// insert maintains the index incrementally).
	for _, rec := range c.indexDefRecordsLocked() {
		rb, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("datastore: snapshot index encode: %w", err)
		}
		if _, err := w.Write(encodeLine(rb)); err != nil {
			return fmt.Errorf("datastore: snapshot write: %w", err)
		}
	}
	for _, id := range c.order {
		b, err := c.docs[id].ToJSON()
		if err != nil {
			return fmt.Errorf("datastore: snapshot doc encode: %w", err)
		}
		rec := journalRecord{Op: journalInsert, Collection: c.name, ID: id, Doc: b}
		rb, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("datastore: snapshot encode: %w", err)
		}
		if _, err := w.Write(encodeLine(rb)); err != nil {
			return fmt.Errorf("datastore: snapshot write: %w", err)
		}
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
// Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	// Best-effort by design: some filesystems reject directory fsync and
	// the rename above is already durable on the ones we target. The
	// blank assignment records the decision, so no fsyncerr suppression
	// is needed.
	_ = d.Sync()
	d.Close()
}
