package datastore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"matproj/internal/document"
)

// Durability: the store appends every write to a JSON-lines journal. A
// snapshot rewrites the full contents of every collection into a snapshot
// file and truncates the journal; on open, the snapshot is loaded and the
// journal replayed on top. This is deliberately simple — the paper's
// deployment ran a single mongod whose durability model MP treated as a
// black box; what matters here is that a store can be shut down and
// reopened between pipeline stages (e.g. the manual "data loading" step
// of §IV-C1).

type journalOp string

const (
	journalInsert journalOp = "i"
	journalUpdate journalOp = "u"
	journalRemove journalOp = "r"
	journalDrop   journalOp = "d"
)

type journalRecord struct {
	Op         journalOp       `json:"op"`
	Collection string          `json:"c"`
	ID         string          `json:"id,omitempty"`
	Doc        json.RawMessage `json:"doc,omitempty"`
}

type journal struct {
	mu   sync.Mutex
	dir  string
	file *os.File
	w    *bufio.Writer
}

func journalPath(dir string) string  { return filepath.Join(dir, "journal.ndjson") }
func snapshotPath(dir string) string { return filepath.Join(dir, "snapshot.ndjson") }

func openJournal(dir string) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("datastore: create dir: %w", err)
	}
	f, err := os.OpenFile(journalPath(dir), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("datastore: open journal: %w", err)
	}
	return &journal{dir: dir, file: f, w: bufio.NewWriter(f)}, nil
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.file == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		j.file.Close()
		j.file = nil
		return err
	}
	err := j.file.Close()
	j.file = nil
	return err
}

func (j *journal) append(rec journalRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.file == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	j.w.Write(b)
	j.w.WriteByte('\n')
	// Flush per record: cheap at our scale and keeps reopen loss-free.
	j.w.Flush()
}

func (j *journal) logWrite(coll string, op journalOp, id string, doc document.D) {
	var raw json.RawMessage
	if doc != nil {
		b, err := doc.ToJSON()
		if err != nil {
			return
		}
		raw = b
	}
	j.append(journalRecord{Op: op, Collection: coll, ID: id, Doc: raw})
}

func (j *journal) logDrop(coll string) {
	j.append(journalRecord{Op: journalDrop, Collection: coll})
}

// replay loads the snapshot then re-applies the journal into s. Called
// before s.journal is set, so replayed writes are not re-journaled.
func (j *journal) replay(s *Store) error {
	if err := replayFile(s, snapshotPath(j.dir)); err != nil {
		return err
	}
	return replayFile(s, journalPath(j.dir))
}

func replayFile(s *Store, path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("datastore: open %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("datastore: %s line %d: %w", path, line, err)
		}
		c := s.C(rec.Collection)
		switch rec.Op {
		case journalInsert, journalUpdate:
			d, err := document.FromJSON(rec.Doc)
			if err != nil {
				return fmt.Errorf("datastore: %s line %d: doc: %w", path, line, err)
			}
			c.mu.Lock()
			if _, exists := c.docs[rec.ID]; exists {
				c.replaceLocked(rec.ID, d)
			} else {
				c.insertLocked(rec.ID, d)
			}
			c.mu.Unlock()
		case journalRemove:
			c.mu.Lock()
			c.removeLocked(rec.ID)
			c.mu.Unlock()
		case journalDrop:
			s.mu.Lock()
			delete(s.collections, rec.Collection)
			s.mu.Unlock()
		default:
			return fmt.Errorf("datastore: %s line %d: unknown op %q", path, line, rec.Op)
		}
	}
	return sc.Err()
}

// snapshot serializes every collection to the snapshot file and truncates
// the journal.
func (j *journal) snapshot(s *Store) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	tmp := snapshotPath(j.dir) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("datastore: snapshot: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)

	s.mu.RLock()
	colls := make([]*Collection, 0, len(s.collections))
	for _, c := range s.collections {
		colls = append(colls, c)
	}
	s.mu.RUnlock()

	for _, c := range colls {
		c.mu.RLock()
		for _, id := range c.order {
			b, err := c.docs[id].ToJSON()
			if err != nil {
				c.mu.RUnlock()
				f.Close()
				os.Remove(tmp)
				return fmt.Errorf("datastore: snapshot doc encode: %w", err)
			}
			rec := journalRecord{Op: journalInsert, Collection: c.name, ID: id, Doc: b}
			if err := enc.Encode(rec); err != nil {
				c.mu.RUnlock()
				f.Close()
				os.Remove(tmp)
				return fmt.Errorf("datastore: snapshot encode: %w", err)
			}
		}
		c.mu.RUnlock()
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, snapshotPath(j.dir)); err != nil {
		return err
	}
	// Truncate the journal now that its contents are in the snapshot.
	if j.file != nil {
		j.w.Flush()
		j.file.Close()
	}
	if err := os.Truncate(journalPath(j.dir), 0); err != nil {
		return err
	}
	nf, err := os.OpenFile(journalPath(j.dir), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	j.file = nf
	j.w = bufio.NewWriter(nf)
	return nil
}
