package datastore

import (
	"strings"
	"testing"

	"matproj/internal/document"
)

func TestBulkWriteMixedOps(t *testing.T) {
	s := MustOpenMemory()
	defer s.Close()
	c := s.C("x")
	c.Insert(doc(`{"_id": "a", "v": 1}`))
	c.Insert(doc(`{"_id": "b", "v": 2}`))
	c.Insert(doc(`{"_id": "c", "v": 3}`))

	res, err := c.BulkWrite([]BulkOp{
		{Op: BulkInsert, Doc: doc(`{"_id": "d", "v": 4}`)},
		{Op: BulkUpdateOne, Filter: doc(`{"_id": "a"}`), Update: doc(`{"$set": {"v": 10}}`)},
		{Op: BulkUpdateMany, Filter: doc(`{"v": {"$gte": 2}}`), Update: doc(`{"$inc": {"v": 100}}`)},
		{Op: BulkDelete, Filter: doc(`{"_id": "b"}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 || res.Matched != 5 || res.Modified != 5 || res.Removed != 1 {
		t.Errorf("totals = %+v", res)
	}
	if res.PerOp[0].ID != "d" || res.PerOp[0].Error != "" {
		t.Errorf("insert op result = %+v", res.PerOp[0])
	}
	if res.PerOp[1].Matched != 1 || res.PerOp[1].Modified != 1 {
		t.Errorf("updateOne result = %+v", res.PerOp[1])
	}
	// The batch executes in order: updateMany sees b, c, d, and a — the
	// updateOne just set a.v to 10, which matches $gte 2.
	if res.PerOp[2].Matched != 4 || res.PerOp[2].Modified != 4 {
		t.Errorf("updateMany result = %+v", res.PerOp[2])
	}
	if res.PerOp[3].Removed != 1 {
		t.Errorf("delete result = %+v", res.PerOp[3])
	}
	if _, err := c.FindID("b"); err == nil {
		t.Error("deleted doc still present")
	}
	a, _ := c.FindID("a")
	if a["v"] != int64(110) {
		t.Errorf("a.v = %v, want 110 (updateOne then updateMany)", a["v"])
	}
}

func TestBulkWriteContinuesPastOpErrors(t *testing.T) {
	s := MustOpenMemory()
	defer s.Close()
	c := s.C("x")
	c.Insert(doc(`{"_id": "dup", "v": 1}`))

	res, err := c.BulkWrite([]BulkOp{
		{Op: BulkInsert, Doc: doc(`{"_id": "dup", "v": 2}`)},                                       // duplicate id
		{Op: "rename", Filter: doc(`{}`)},                                                          // unknown op
		{Op: BulkUpdateOne, Filter: doc(`{"_id": "dup"}`), Update: doc(`{"$set": {"_id": "zz"}}`)}, // _id change
		{Op: BulkInsert, Doc: doc(`{"_id": "ok", "v": 3}`)},                                        // must still run
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerOp[0].Error == "" || !strings.Contains(res.PerOp[0].Error, "dup") {
		t.Errorf("dup insert error = %q", res.PerOp[0].Error)
	}
	if res.PerOp[1].Error == "" {
		t.Error("unknown op not reported")
	}
	if res.PerOp[2].Error == "" {
		t.Error("_id rewrite not rejected")
	}
	if res.PerOp[3].Error != "" || res.PerOp[3].ID != "ok" {
		t.Errorf("trailing insert result = %+v", res.PerOp[3])
	}
	if res.Inserted != 1 {
		t.Errorf("inserted = %d, want 1", res.Inserted)
	}
	d, err := c.FindID("dup")
	if err != nil || d["v"] != int64(1) {
		t.Errorf("dup doc clobbered: %v %v", d, err)
	}
	if _, err := c.FindID("ok"); err != nil {
		t.Errorf("op after failures skipped: %v", err)
	}
}

func TestBulkWriteMintsInsertIDs(t *testing.T) {
	s := MustOpenMemory()
	defer s.Close()
	res, err := s.C("x").BulkWrite([]BulkOp{
		{Op: BulkInsert, Doc: doc(`{"v": 1}`)},
		{Op: BulkInsert, Doc: doc(`{"v": 2}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerOp[0].ID == "" || res.PerOp[1].ID == "" || res.PerOp[0].ID == res.PerOp[1].ID {
		t.Errorf("minted ids = %q, %q", res.PerOp[0].ID, res.PerOp[1].ID)
	}
}

func TestInsertManyAllOrNothing(t *testing.T) {
	s := MustOpenMemory()
	defer s.Close()
	c := s.C("x")
	c.Insert(doc(`{"_id": "taken", "v": 0}`))

	// A stored duplicate anywhere in the batch rejects the whole batch.
	if _, err := c.InsertMany([]document.D{
		doc(`{"_id": "n1", "v": 1}`),
		doc(`{"_id": "taken", "v": 2}`),
	}); err == nil {
		t.Fatal("stored dup accepted")
	}
	if _, err := c.FindID("n1"); err == nil {
		t.Error("partial batch applied despite dup")
	}

	// An intra-batch duplicate likewise.
	if _, err := c.InsertMany([]document.D{
		doc(`{"_id": "n2", "v": 1}`),
		doc(`{"_id": "n2", "v": 2}`),
	}); err == nil {
		t.Fatal("intra-batch dup accepted")
	}

	ids, err := c.InsertMany([]document.D{
		doc(`{"_id": "n3", "v": 1}`),
		doc(`{"v": 2}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "n3" || ids[1] == "" {
		t.Errorf("ids = %v", ids)
	}
	n, _ := c.Count(nil)
	if n != 3 {
		t.Errorf("count = %d, want 3", n)
	}
}

func TestInsertManyDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]document.D, 20)
	for i := range docs {
		docs[i] = document.D{"n": int64(i)}
	}
	ids, err := s.C("x").InsertMany(docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 20 {
		t.Fatalf("ids = %d", len(ids))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	n, _ := s2.C("x").Count(nil)
	if n != 20 {
		t.Errorf("replayed count = %d, want 20", n)
	}
}
