package datastore

// Order-preserving key encoding for sorted secondary indexes.
//
// encodeKey renders any document value to a byte string whose bytewise
// (memcmp) order equals document.Compare order: for all a, b,
//
//	bytes.Compare(encodeKey(a), encodeKey(b)) == sign(document.Compare(a, b))
//
// so a key-range scan over sorted encoded keys IS an index scan — no
// per-key value comparisons. Compound keys concatenate component
// encodings; each component encoding is prefix-free, so tuple order is
// again plain byte order and an equality prefix is a byte prefix.
//
// Layout (first byte is the type tag, mirroring document.Compare's type
// ranks: null < numbers < strings < documents < arrays < bool < other):
//
//	0x01                                null
//	0x02 <f64-monotone:8> <intpart:9>   number (int64/float64 unified)
//	0x03 <escaped bytes> 0x00 0x00      string (0x00 escaped as 0x00 0xFF)
//	0x04 (<key-string enc> <value enc>)* 0x00   document, keys sorted
//	0x05 (<element enc>)* 0x00          array
//	0x06 0x00|0x01                      bool
//	0x07 <escaped fmt.Sprint> 0x00 0x00 other (Compare's fallback order)
//
// Numbers need two fields to reproduce compareNumbers exactly. The
// primary is the value as a float64 with the usual monotone bit flip —
// correct on its own for float/float pairs, but float64(int64) rounds
// above 2^53, so numerically distinct int64s can share a primary. The
// secondary breaks those ties with the exact integer part, 9 bytes so
// that float values at or above 2^63 (which compareFloatInt orders above
// every int64) still sort past MaxInt64. Values that Compare as equal
// (3 and 3.0) produce identical bytes, which is what makes equality
// lookups a single map probe.
//
// NaN caveat: document.Compare treats NaN as equal to every number (it
// is not a total order there); the encoding instead places NaN
// deterministically above +Inf. Planner range scans never see NaN
// bounds from JSON queries, and the fuzz invariant skips NaN inputs.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"matproj/internal/document"
)

const (
	keyTagTerm   = 0x00 // component/composite terminator, never starts a value
	keyTagNull   = 0x01
	keyTagNumber = 0x02
	keyTagString = 0x03
	keyTagDoc    = 0x04
	keyTagArray  = 0x05
	keyTagBool   = 0x06
	keyTagOther  = 0x07
	// keyTagEnd sorts after every value tag: appending it to an encoded
	// equality prefix yields an exclusive upper bound for that prefix's
	// key region.
	keyTagEnd = 0x08
)

// keyTagOf returns the type tag a value encodes under.
func keyTagOf(v any) byte {
	switch v.(type) {
	case nil:
		return keyTagNull
	case int64, float64, int, float32:
		return keyTagNumber
	case string:
		return keyTagString
	case map[string]any, document.D:
		return keyTagDoc
	case []any:
		return keyTagArray
	case bool:
		return keyTagBool
	default:
		return keyTagOther
	}
}

// encodeKey appends the order-preserving encoding of v to dst.
func encodeKey(dst []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(dst, keyTagNull)
	case int64:
		return encodeKeyInt(dst, x)
	case int:
		return encodeKeyInt(dst, int64(x))
	case float64:
		return encodeKeyFloat(dst, x)
	case float32:
		return encodeKeyFloat(dst, float64(x))
	case string:
		dst = append(dst, keyTagString)
		return appendEscaped(dst, x)
	case bool:
		dst = append(dst, keyTagBool)
		if x {
			return append(dst, 0x01)
		}
		return append(dst, 0x00)
	case document.D:
		return encodeKeyDoc(dst, map[string]any(x))
	case map[string]any:
		return encodeKeyDoc(dst, x)
	case []any:
		dst = append(dst, keyTagArray)
		for _, el := range x {
			dst = encodeKey(dst, el)
		}
		return append(dst, keyTagTerm)
	default:
		// document.Compare's fallback orders unknown types by their
		// fmt.Sprint rendering.
		dst = append(dst, keyTagOther)
		return appendEscaped(dst, fmt.Sprint(v))
	}
}

// encodeKeyString returns encodeKey(v) as a string, the map-key form the
// ordered index stores.
func encodeKeyString(v any) string {
	return string(encodeKey(nil, v))
}

// appendEscaped writes s with 0x00 escaped as 0x00 0xFF and terminates
// with 0x00 0x00. The escape keeps byte order ("a" < "a\x00b" because
// 0x00 0x00 < 0x00 0xFF) and makes the encoding prefix-free.
func appendEscaped(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] == 0x00 {
			dst = append(dst, 0x00, 0xFF)
			continue
		}
		dst = append(dst, s[i])
	}
	return append(dst, 0x00, 0x00)
}

func encodeKeyDoc(dst []byte, m map[string]any) []byte {
	dst = append(dst, keyTagDoc)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// compareDocs interleaves key-string and value comparisons position
	// by position, fewer-keys-first on a tie; encoding each pair in
	// order with a terminator below every tag reproduces exactly that.
	for _, k := range keys {
		dst = appendEscaped(append(dst, keyTagString), k)
		dst = encodeKey(dst, m[k])
	}
	return append(dst, keyTagTerm)
}

// monotoneFloatBits maps float64 bit patterns to uint64s whose unsigned
// order equals IEEE754 numeric order (negatives flipped entirely,
// positives offset past them).
func monotoneFloatBits(f float64) uint64 {
	if f == 0 {
		// Negative zero compares equal to +0 but carries the sign bit;
		// normalize so encode(-0.0) == encode(0).
		f = 0
	}
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | 1<<63
}

func encodeKeyInt(dst []byte, v int64) []byte {
	dst = append(dst, keyTagNumber)
	dst = binary.BigEndian.AppendUint64(dst, monotoneFloatBits(float64(v)))
	// Exact integer part: lead 0x00 plus offset-binary int64.
	dst = append(dst, 0x00)
	return binary.BigEndian.AppendUint64(dst, uint64(v)^(1<<63))
}

func encodeKeyFloat(dst []byte, f float64) []byte {
	dst = append(dst, keyTagNumber)
	dst = binary.BigEndian.AppendUint64(dst, monotoneFloatBits(f))
	// Secondary: the saturated exact integer part, mirroring
	// compareFloatInt. Within a primary tie the float's value is always
	// an integral double (float64(int64) is integral), so the fraction
	// never participates — only the integer part can differ.
	switch {
	case math.IsNaN(f):
		// Compare has no consistent answer for NaN; pick a fixed point.
		dst = append(dst, 0x00)
		return binary.BigEndian.AppendUint64(dst, 1<<63)
	case f >= 9.223372036854775808e18: // 2^63: above every int64
		dst = append(dst, 0x01)
		return binary.BigEndian.AppendUint64(dst, 0)
	case f < -9.223372036854775808e18: // below every int64: clamp to MinInt64
		dst = append(dst, 0x00)
		return binary.BigEndian.AppendUint64(dst, 0)
	default:
		dst = append(dst, 0x00)
		return binary.BigEndian.AppendUint64(dst, uint64(int64(math.Trunc(f)))^(1<<63))
	}
}

// decodeKey decodes one value from b, returning the value and the rest
// of the buffer. Numbers decode to int64 when the encoded value is an
// exact integer (so decode(encode(v)) always Compares equal to v, even
// for int64s beyond 2^53), float64 otherwise. Values encoded under the
// "other" tag decode to their fmt.Sprint string.
func decodeKey(b []byte) (any, []byte, error) {
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("datastore: decodeKey: empty input")
	}
	tag, rest := b[0], b[1:]
	switch tag {
	case keyTagNull:
		return nil, rest, nil
	case keyTagNumber:
		if len(rest) < 17 {
			return nil, nil, fmt.Errorf("datastore: decodeKey: short number")
		}
		prim := binary.BigEndian.Uint64(rest[:8])
		var bits uint64
		if prim&(1<<63) != 0 {
			bits = prim &^ (1 << 63)
		} else {
			bits = ^prim
		}
		f := math.Float64frombits(bits)
		lead := rest[8]
		sec := int64(binary.BigEndian.Uint64(rest[9:17]) ^ (1 << 63))
		rest = rest[17:]
		if lead == 0x00 && !math.IsNaN(f) && f == math.Trunc(f) && float64(sec) == f {
			return sec, rest, nil
		}
		return f, rest, nil
	case keyTagString, keyTagOther:
		s, rest, err := decodeEscaped(rest)
		if err != nil {
			return nil, nil, err
		}
		return s, rest, nil
	case keyTagBool:
		if len(rest) < 1 {
			return nil, nil, fmt.Errorf("datastore: decodeKey: short bool")
		}
		return rest[0] != 0x00, rest[1:], nil
	case keyTagArray:
		out := []any{}
		for {
			if len(rest) == 0 {
				return nil, nil, fmt.Errorf("datastore: decodeKey: unterminated array")
			}
			if rest[0] == keyTagTerm {
				return out, rest[1:], nil
			}
			var el any
			var err error
			el, rest, err = decodeKey(rest)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, el)
		}
	case keyTagDoc:
		out := document.D{}
		for {
			if len(rest) == 0 {
				return nil, nil, fmt.Errorf("datastore: decodeKey: unterminated document")
			}
			if rest[0] == keyTagTerm {
				return out, rest[1:], nil
			}
			if rest[0] != keyTagString {
				return nil, nil, fmt.Errorf("datastore: decodeKey: document key must be a string")
			}
			k, r2, err := decodeEscaped(rest[1:])
			if err != nil {
				return nil, nil, err
			}
			var v any
			v, rest, err = decodeKey(r2)
			if err != nil {
				return nil, nil, err
			}
			out[k] = v
		}
	default:
		return nil, nil, fmt.Errorf("datastore: decodeKey: bad tag 0x%02x", tag)
	}
}

func decodeEscaped(b []byte) (string, []byte, error) {
	var out []byte
	for i := 0; i < len(b); i++ {
		if b[i] != 0x00 {
			out = append(out, b[i])
			continue
		}
		if i+1 >= len(b) {
			return "", nil, fmt.Errorf("datastore: decodeKey: unterminated string")
		}
		switch b[i+1] {
		case 0x00:
			return string(out), b[i+2:], nil
		case 0xFF:
			out = append(out, 0x00)
			i++
		default:
			return "", nil, fmt.Errorf("datastore: decodeKey: bad escape 0x%02x", b[i+1])
		}
	}
	return "", nil, fmt.Errorf("datastore: decodeKey: unterminated string")
}
