package datastore

import (
	"os"
	"testing"

	"matproj/internal/document"
)

// TestGenerationAdvancesOnWrites checks that every acknowledged mutation
// changes the collection's write generation, and that reads leave it
// alone — the invariant the result cache keys validity on.
func TestGenerationAdvancesOnWrites(t *testing.T) {
	s := MustOpenMemory()
	c := s.C("m")
	g0 := c.Generation()

	id, err := c.Insert(document.D{"a": int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	g1 := c.Generation()
	if g1 == g0 {
		t.Fatalf("insert did not change generation (%d)", g1)
	}

	// Reads must not bump.
	if _, err := c.FindAll(nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Count(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Distinct("a", nil); err != nil {
		t.Fatal(err)
	}
	if g := c.Generation(); g != g1 {
		t.Fatalf("read changed generation: %d -> %d", g1, g)
	}

	if _, err := c.UpdateOne(document.D{"_id": id}, document.D{"$set": document.D{"a": int64(2)}}); err != nil {
		t.Fatal(err)
	}
	g2 := c.Generation()
	if g2 == g1 {
		t.Fatal("update did not change generation")
	}

	if _, err := c.Upsert(document.D{"b": int64(9)}, document.D{"$set": document.D{"x": int64(1)}}); err != nil {
		t.Fatal(err)
	}
	g3 := c.Generation()
	if g3 == g2 {
		t.Fatal("upsert did not change generation")
	}

	if _, err := c.FindAndModify(document.D{"_id": id}, document.D{"$set": document.D{"a": int64(3)}}, nil, true); err != nil {
		t.Fatal(err)
	}
	g4 := c.Generation()
	if g4 == g3 {
		t.Fatal("findAndModify did not change generation")
	}

	if _, err := c.Remove(document.D{"_id": id}); err != nil {
		t.Fatal(err)
	}
	if c.Generation() == g4 {
		t.Fatal("remove did not change generation")
	}
}

// TestGenerationChangesAcrossReplay checks that a collection rebuilt by
// journal replay carries a generation unlike any handed out before the
// restart, and that a dropped-and-recreated collection never reuses one
// — both would otherwise let a stale cache entry validate.
func TestGenerationChangesAcrossReplay(t *testing.T) {
	dir, err := os.MkdirTemp("", "gen")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.C("m").Insert(document.D{"_id": "a", "v": int64(1)}); err != nil {
		t.Fatal(err)
	}
	gBefore := s.C("m").Generation()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	gAfter := s2.C("m").Generation()
	if gAfter == gBefore {
		t.Fatalf("replayed collection reused generation %d", gAfter)
	}
	// Replay applied one insert, so the generation moved past creation.
	s2.DropCollection("m")
	gNew := s2.C("m").Generation()
	if gNew == gAfter || gNew == gBefore {
		t.Fatalf("recreated collection reused generation (%d, %d, %d)", gBefore, gAfter, gNew)
	}
}

// TestCountDistinctProfiled is the regression test for the unprofiled
// read ops: Count and Distinct must land in the store profiler (and so
// in the live Fig. 5 metrics) like every other operation.
func TestCountDistinctProfiled(t *testing.T) {
	s := MustOpenMemory()
	c := s.C("m")
	for i := 0; i < 5; i++ {
		if _, err := c.Insert(document.D{"k": int64(i % 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Count(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Distinct("k", nil); err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, e := range s.Profiler().Entries() {
		got[e.Op]++
	}
	if got["count"] != 1 {
		t.Errorf("profiler saw %d count ops, want 1", got["count"])
	}
	if got["distinct"] != 1 {
		t.Errorf("profiler saw %d distinct ops, want 1", got["distinct"])
	}
}

// TestDistinctUnifiesNumericTypes pins the canonicalKey dedupe semantics:
// an int64 and a float64 that are numerically equal are one distinct
// value (they were under the old document.Equal scan too — the map-keyed
// dedupe must not change that).
func TestDistinctUnifiesNumericTypes(t *testing.T) {
	s := MustOpenMemory()
	c := s.C("m")
	for _, v := range []any{int64(3), float64(3), float64(3.5), int64(4), "3"} {
		if _, err := c.Insert(document.D{"v": v}); err != nil {
			t.Fatal(err)
		}
	}
	vals, err := c.Distinct("v", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 4 { // 3 (==3.0), 3.5, 4, "3"
		t.Fatalf("distinct = %v, want 4 values", vals)
	}
}

// BenchmarkDistinct10k measures Distinct over a 10k-document collection
// with many repeated values — the workload where the old O(n²)
// document.Equal scan collapsed. The map-keyed dedupe is linear.
func BenchmarkDistinct10k(b *testing.B) {
	s := MustOpenMemory()
	c := s.C("m")
	for i := 0; i < 10000; i++ {
		if _, err := c.Insert(document.D{"formula": "X" + string(rune('A'+i%200)), "n": int64(i % 500)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Distinct("n", nil); err != nil {
			b.Fatal(err)
		}
	}
}
