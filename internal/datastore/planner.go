package datastore

// Cost-based query planning. planQueryLocked inspects a compiled
// filter's conjunct-sound constraints (equality, $in, ranges, $all
// containment — only constraints hoisted from the top level or $and
// branches, so using them can over-select but never under-select),
// estimates a candidate cardinality for every usable index, and picks
// the cheapest access path, falling back to a full scan. Every
// execution path re-verifies candidates against the complete filter,
// so the planner only has to be a superset oracle; correctness is
// enforced by the property-based scan-vs-index oracle test.
//
// Cost model (deterministic, pinned by the golden Explain tests):
//
//	scan               len(docs)
//	hash equality      len(bucket)           (exact)
//	hash contains      len(bucket)           (exact)
//	ordered full-tuple len(bucket)           (exact)
//	ordered prefix     keysInRange × ceil(nids/entries)
//	ordered range      keysInRange × ceil(nids/entries)
//	ordered $in        Σ per-member region estimates
//
// keysInRange costs two binary searches — the planner never walks a
// candidate range to price it. The cheapest estimate wins; ties prefer
// a sort-satisfying plan, then lexicographically smaller index names,
// then index over scan only when the estimate is strictly smaller (or
// the index satisfies the sort for free).

import (
	"fmt"
	"sort"
	"strings"

	"matproj/internal/document"
	"matproj/internal/query"
)

// planAccess describes how a chosen index is read.
type planAccess struct {
	kind string // "hash-eq", "hash-contains", "hash-range", "ordered"
	hash *index
	ord  *orderedIndex

	// hash access
	hashValue any
	// rangeIDs is the materialized id set of a hash-range fallback (the
	// legacy full-bucket walk, consulted only when no other index
	// applies — an ordered index on the path replaces it entirely).
	rangeIDs map[string]struct{}

	// ordered access: either point/range bounds or $in point regions.
	lo, hi   string
	hiPrefix string   // inclusive upper bound region (encoded prefix)
	inKeys   []string // sorted encoded prefixes, one region per $in member

	estimate int
	bounds   string   // human-readable bound description for Explain
	used     []string // constraint paths the access path consumes
	sortable bool     // emission order == index component order
}

// queryPlan is the planner's decision for one query.
type queryPlan struct {
	mode          string // "scan" or "index"
	access        *planAccess
	sortSatisfied bool // index emission order satisfies the requested sort
	reverse       bool // emit index order backwards (all-descending sort)
	estimate      int  // candidate cardinality estimate for the chosen path
	ndocs         int
	hinted        bool
	considered    []consideredAccess
	// constraintPaths lists every index-usable constrained path in the
	// filter (for residual reporting in Explain).
	constraintPaths []string
}

// consideredAccess is one (index, estimate) pair the planner evaluated.
type consideredAccess struct {
	index    string
	kind     string
	estimate int
}

// planQueryLocked chooses an access path. Caller holds c.mu (read or
// write). sortKeys and opts may be nil/empty; opts.Hint forces the
// named index when it is usable at all.
func (c *Collection) planQueryLocked(flt *query.Filter, sortKeys []query.SortKey, opts *FindOpts) *queryPlan {
	plan := &queryPlan{mode: "scan", ndocs: len(c.docs), estimate: len(c.docs)}
	if flt == nil && len(sortKeys) == 0 {
		return plan
	}

	var eq map[string]any
	var ins []query.InConstraint
	var ranges []query.RangeConstraint
	var contains []struct {
		Path  string
		Value any
	}
	if flt != nil {
		eq = flt.EqualityFields()
		ins = flt.InFields()
		ranges = flt.RangeFields()
		contains = flt.ContainsFields()
	}
	cpSeen := make(map[string]struct{})
	notePath := func(p string) {
		if _, dup := cpSeen[p]; dup {
			return
		}
		cpSeen[p] = struct{}{}
		plan.constraintPaths = append(plan.constraintPaths, p)
	}
	for p := range eq {
		notePath(p)
	}
	for _, ic := range ins {
		notePath(ic.Path)
	}
	for _, rc := range ranges {
		notePath(rc.Path)
	}
	for _, fc := range contains {
		notePath(fc.Path)
	}
	sort.Strings(plan.constraintPaths)
	rangeFor := func(path string) (query.RangeConstraint, bool) {
		for _, rc := range ranges {
			if rc.Path == path {
				return rc, true
			}
		}
		return query.RangeConstraint{}, false
	}
	inFor := func(path string) (query.InConstraint, bool) {
		for _, ic := range ins {
			if ic.Path == path {
				return ic, true
			}
		}
		return query.InConstraint{}, false
	}

	// Sort satisfaction precondition that is independent of the index:
	// Find applies the projection before sorting, so index-order
	// emission is only equivalent when there is nothing to project.
	sortEligible := len(sortKeys) > 0 && (opts == nil || opts.Projection == nil)
	uniformAsc, uniformDesc := true, true
	sortPaths := make([]string, len(sortKeys))
	for i, k := range sortKeys {
		sortPaths[i] = k.Path
		if k.Desc {
			uniformAsc = false
		} else {
			uniformDesc = false
		}
	}
	sortEligible = sortEligible && (uniformAsc || uniformDesc)

	var candidates []*planAccess

	// Hash indexes: equality and contains lookups (existing semantics).
	// A nil equality value is not index-usable — documents missing the
	// field match {path: null} but contribute no hash key.
	hashPaths := make([]string, 0, len(c.indexes))
	for p := range c.indexes {
		hashPaths = append(hashPaths, p)
	}
	sort.Strings(hashPaths)
	for _, p := range hashPaths {
		ix := c.indexes[p]
		if v, ok := eq[p]; ok && v != nil {
			candidates = append(candidates, &planAccess{
				kind: "hash-eq", hash: ix, hashValue: v,
				estimate: len(ix.lookup(v)),
				bounds:   fmt.Sprintf("%s = %v", p, v),
				used:     []string{p},
			})
		}
		for _, fc := range contains {
			if fc.Path != p || fc.Value == nil {
				continue
			}
			candidates = append(candidates, &planAccess{
				kind: "hash-contains", hash: ix, hashValue: fc.Value,
				estimate: len(ix.lookup(fc.Value)),
				bounds:   fmt.Sprintf("%s contains %v", p, fc.Value),
				used:     []string{p},
			})
		}
	}

	// Ordered indexes: equality prefix, then one range or $in component.
	orderedNames := make([]string, 0, len(c.ordered))
	for n := range c.ordered {
		orderedNames = append(orderedNames, n)
	}
	sort.Strings(orderedNames)
	for _, name := range orderedNames {
		ox := c.ordered[name]
		if acc := c.planOrderedLocked(ox, eq, rangeFor, inFor); acc != nil {
			candidates = append(candidates, acc)
		} else if sortEligible && pathsEqual(sortPaths, ox.paths) && !ox.multikey {
			// No usable constraint, but a full in-order index walk can
			// still satisfy the sort (estimate: every document). The
			// region spans every key: each starts with a component tag
			// below keyTagEnd, so string(keyTagEnd) bounds them all.
			candidates = append(candidates, &planAccess{
				kind: "ordered", ord: ox,
				lo: "", hi: string(byte(keyTagEnd)), estimate: ox.nids,
				bounds:   "full index scan",
				sortable: true,
			})
		}
	}
	// Hash-range fallback: only when nothing else applies at all. This
	// is the legacy behavior — materialize the ids by walking every
	// bucket in value order — and it is exactly the walk an ordered
	// index on the path avoids, so any other candidate suppresses it.
	if len(candidates) == 0 {
		for _, rc := range ranges {
			ix, ok := c.indexes[rc.Path]
			if !ok {
				continue
			}
			ids := ix.rangeLookup(rc)
			candidates = append(candidates, &planAccess{
				kind: "hash-range", hash: ix, rangeIDs: ids,
				estimate: len(ids),
				bounds:   rangeBoundString(rc.Path, rc),
				used:     []string{rc.Path},
			})
		}
	}

	for _, acc := range candidates {
		if acc.kind == "ordered" && acc.ord != nil {
			acc.sortable = acc.sortable ||
				(sortEligible && pathsEqual(sortPaths, acc.ord.paths) && !acc.ord.multikey)
		}
	}

	// Record everything considered (sorted by name for stable Explain).
	for _, acc := range candidates {
		plan.considered = append(plan.considered, consideredAccess{
			index: accessIndexName(acc), kind: acc.kind, estimate: acc.estimate,
		})
	}
	sort.Slice(plan.considered, func(i, j int) bool {
		a, b := plan.considered[i], plan.considered[j]
		if a.index != b.index {
			return a.index < b.index
		}
		return a.kind < b.kind
	})

	// Hint: force the named index when it produced a candidate.
	if opts != nil && opts.Hint != "" {
		for _, acc := range candidates {
			if accessIndexName(acc) == opts.Hint {
				c.adoptAccess(plan, acc, sortEligible, uniformDesc)
				plan.hinted = true
				return plan
			}
		}
		// An ordered hint with no constraint-derived access still forces
		// a full index scan — same plan on every shard regardless of
		// per-shard statistics.
		if ox, ok := c.ordered[opts.Hint]; ok {
			acc := &planAccess{
				kind: "ordered", ord: ox, estimate: ox.nids,
				hi:       string(byte(keyTagEnd)), // every key sorts below the bare end tag
				bounds:   "full index scan",
				sortable: sortEligible && pathsEqual(sortPaths, ox.paths) && !ox.multikey,
			}
			c.adoptAccess(plan, acc, sortEligible, uniformDesc)
			plan.hinted = true
			return plan
		}
	}

	var best *planAccess
	for _, acc := range candidates {
		if best == nil || betterAccess(acc, best) {
			best = acc
		}
	}
	if best == nil {
		return plan
	}
	// A full scan wins unless the index is strictly cheaper or throws in
	// the sort for free.
	if best.estimate >= plan.ndocs && !best.sortable {
		return plan
	}
	c.adoptAccess(plan, best, sortEligible, uniformDesc)
	return plan
}

// adoptAccess installs an access path into the plan.
func (c *Collection) adoptAccess(plan *queryPlan, acc *planAccess, sortEligible, desc bool) {
	plan.mode = "index"
	plan.access = acc
	plan.estimate = acc.estimate
	if acc.sortable && sortEligible {
		plan.sortSatisfied = true
		plan.reverse = desc
	}
}

// betterAccess orders candidate access paths: smaller estimate first,
// then sort-satisfying, then stable by name/kind.
func betterAccess(a, b *planAccess) bool {
	if a.estimate != b.estimate {
		return a.estimate < b.estimate
	}
	if a.sortable != b.sortable {
		return a.sortable
	}
	an, bn := accessIndexName(a), accessIndexName(b)
	if an != bn {
		return an < bn
	}
	return a.kind < b.kind
}

func accessIndexName(acc *planAccess) string {
	if acc.ord != nil {
		return acc.ord.name
	}
	return acc.hash.path
}

// planOrderedLocked matches an ordered index against the constraint
// sets: consume equality constraints along the component prefix, then
// optionally one range or $in constraint, and translate them into
// encoded key bounds. Returns nil when no leading component is
// constrained.
func (c *Collection) planOrderedLocked(ox *orderedIndex,
	eq map[string]any,
	rangeFor func(string) (query.RangeConstraint, bool),
	inFor func(string) (query.InConstraint, bool)) *planAccess {

	var prefix []byte
	var used []string
	var boundParts []string
	eqCols := 0
	for _, p := range ox.paths {
		v, ok := eq[p]
		if !ok {
			break
		}
		prefix = encodeKey(prefix, v)
		used = append(used, p)
		boundParts = append(boundParts, fmt.Sprintf("%s = %v", p, v))
		eqCols++
	}

	avg := 1
	if len(ox.entries) > 0 {
		avg = (ox.nids + len(ox.entries) - 1) / len(ox.entries)
	}
	regionEstimate := func(lo, hi, hiPrefix string) int {
		keys := ox.sortedKeys()
		start, end := ox.keyRange(keys, lo, hi, hiPrefix)
		if end-start == 1 {
			// A single key: its bucket size is the exact count.
			return len(ox.entries[keys[start]].ids)
		}
		return (end - start) * avg
	}

	// Full-tuple equality: a single bucket probe.
	if eqCols == len(ox.paths) {
		key := string(prefix)
		est := 0
		if b, ok := ox.entries[key]; ok {
			est = len(b.ids)
		}
		return &planAccess{
			kind: "ordered", ord: ox,
			lo: key, hi: key, hiPrefix: key,
			estimate: est,
			bounds:   strings.Join(boundParts, ", "),
			used:     used,
			sortable: false, // set by the caller from the sort spec
		}
	}

	next := ox.paths[eqCols]

	// $in on the next component: one point region per member. Regions
	// are sorted and deduplicated, so concatenating them preserves
	// index order.
	if ic, ok := inFor(next); ok {
		regions := make([]string, 0, len(ic.Values))
		for _, v := range ic.Values {
			regions = append(regions, string(encodeKey(append([]byte{}, prefix...), v)))
		}
		regions = dedupeSortedStrings(regions)
		est := 0
		for _, r := range regions {
			est += regionEstimate(r, r, r)
		}
		return &planAccess{
			kind: "ordered", ord: ox,
			inKeys:   regions,
			estimate: est,
			bounds:   appendBound(boundParts, fmt.Sprintf("%s in (%d values)", next, len(ic.Values))),
			used:     append(used, next),
		}
	}

	// Range on the next component. The bounds are clamped to the bound
	// value's type class, mirroring cmpPred's same-class rule; document
	// and fallback-class bounds are skipped because Compare's "other"
	// rank is not contiguous with the document rank.
	if rc, ok := rangeFor(next); ok {
		classOK := func(v any) bool {
			switch keyTagOf(v) {
			case keyTagNull, keyTagNumber, keyTagString, keyTagBool, keyTagArray:
				return true
			}
			return false
		}
		// On a multikey index a two-sided range is unsound as one
		// contiguous region: cmpPred is per-element, so one array element
		// may satisfy the min bound while a different element satisfies
		// the max. Degrade to the min bound alone — still a superset
		// (the matching element's key lies past lo), and the residual
		// filter re-verifies every candidate.
		rc := rc
		if ox.multikey && rc.HasMin && rc.HasMax {
			rc.HasMax = false
			rc.MaxOpen = false
			rc.Max = nil
		}
		usable := (!rc.HasMin || classOK(rc.Min)) && (!rc.HasMax || classOK(rc.Max))
		if usable && (rc.HasMin || rc.HasMax) {
			classOf := func(v any) byte { return keyTagOf(v) }
			var class byte
			if rc.HasMin {
				class = classOf(rc.Min)
			} else {
				class = classOf(rc.Max)
			}
			lo := string(prefix) + string(class)
			if rc.HasMin {
				lo = string(encodeKey(append([]byte{}, prefix...), rc.Min))
				if rc.MinOpen {
					// Bump past every key whose component equals Min.
					lo += string(byte(keyTagEnd))
				}
			}
			hi := string(prefix) + string(class+1)
			hiPrefix := ""
			if rc.HasMax {
				hi = string(encodeKey(append([]byte{}, prefix...), rc.Max))
				if !rc.MaxOpen {
					hiPrefix = hi
				}
			}
			return &planAccess{
				kind: "ordered", ord: ox,
				lo: lo, hi: hi, hiPrefix: hiPrefix,
				estimate: regionEstimate(lo, hi, hiPrefix),
				bounds:   appendBound(boundParts, rangeBoundString(next, rc)),
				used:     append(used, next),
			}
		}
	}

	// Equality-only prefix (shorter than the tuple): a prefix region.
	if eqCols > 0 {
		key := string(prefix)
		return &planAccess{
			kind: "ordered", ord: ox,
			lo: key, hi: key, hiPrefix: key,
			estimate: regionEstimate(key, key, key),
			bounds:   strings.Join(boundParts, ", "),
			used:     used,
		}
	}
	return nil
}

func appendBound(parts []string, last string) string {
	if len(parts) == 0 {
		return last
	}
	return strings.Join(parts, ", ") + ", " + last
}

func rangeBoundString(path string, rc query.RangeConstraint) string {
	lo, hi := "-inf", "+inf"
	lob, hib := "[", "]"
	if rc.HasMin {
		lo = fmt.Sprintf("%v", rc.Min)
		if rc.MinOpen {
			lob = "("
		}
	} else {
		lob = "("
	}
	if rc.HasMax {
		hi = fmt.Sprintf("%v", rc.Max)
		if rc.MaxOpen {
			hib = ")"
		}
	} else {
		hib = ")"
	}
	return fmt.Sprintf("%s %s%s, %s%s", path, lob, lo, hi, hib)
}

func pathsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// candidateIDsLocked materializes the (unverified, deduplicated)
// candidate id set for an index access path. Caller holds c.mu.
func (c *Collection) candidateIDsLocked(acc *planAccess) map[string]struct{} {
	switch acc.kind {
	case "hash-eq", "hash-contains":
		ids := acc.hash.lookup(acc.hashValue)
		if ids == nil {
			return map[string]struct{}{}
		}
		return ids
	case "hash-range":
		if acc.rangeIDs == nil {
			return map[string]struct{}{}
		}
		return acc.rangeIDs
	case "ordered":
		out := make(map[string]struct{})
		collect := func(lo, hi, hiPrefix string) {
			keys := acc.ord.sortedKeys()
			start, end := acc.ord.keyRange(keys, lo, hi, hiPrefix)
			for _, k := range keys[start:end] {
				for id := range acc.ord.entries[k].ids {
					out[id] = struct{}{}
				}
			}
		}
		if acc.inKeys != nil {
			for _, r := range acc.inKeys {
				collect(r, r, r)
			}
			return out
		}
		collect(acc.lo, acc.hi, acc.hiPrefix)
		return out
	}
	return map[string]struct{}{}
}

// orderedEmitLocked walks the chosen ordered-index region in index
// order (reversed when reverse is set), emitting matching document ids:
// within a bucket, ids come out in insertion-sequence order, which
// matches SortDocs' stable tie-breaking. Emission stops early once the
// caller has seen skip+limit matches (fn returns false). Only valid for
// non-multikey plans (each document appears under exactly one key).
func (c *Collection) orderedEmitLocked(acc *planAccess, reverse bool, fn func(id string) bool) {
	keys := acc.ord.sortedKeys()
	var regions [][2]int
	if acc.inKeys != nil {
		for _, r := range acc.inKeys {
			s, e := acc.ord.keyRange(keys, r, r, r)
			regions = append(regions, [2]int{s, e})
		}
	} else {
		s, e := acc.ord.keyRange(keys, acc.lo, acc.hi, acc.hiPrefix)
		regions = append(regions, [2]int{s, e})
	}
	emitBucket := func(k string) bool {
		b := acc.ord.entries[k]
		ids := make([]string, 0, len(b.ids))
		for id := range b.ids {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return c.seq[ids[i]] < c.seq[ids[j]] })
		for _, id := range ids {
			if !fn(id) {
				return false
			}
		}
		return true
	}
	if reverse {
		for ri := len(regions) - 1; ri >= 0; ri-- {
			for i := regions[ri][1] - 1; i >= regions[ri][0]; i-- {
				if !emitBucket(keys[i]) {
					return
				}
			}
		}
		return
	}
	for _, reg := range regions {
		for i := reg[0]; i < reg[1]; i++ {
			if !emitBucket(keys[i]) {
				return
			}
		}
	}
}

// explainDocLocked renders a plan as a wire-safe document (the payload
// behind $explain). Caller holds c.mu.
func (c *Collection) explainDocLocked(plan *queryPlan) document.D {
	d := document.D{
		"collection":           c.name,
		"mode":                 plan.mode,
		"ndocs":                int64(plan.ndocs),
		"estimated_candidates": int64(plan.estimate),
		"sort_satisfied":       plan.sortSatisfied,
		"reverse":              plan.reverse,
		"hinted":               plan.hinted,
	}
	if plan.access != nil {
		d["index"] = accessIndexName(plan.access)
		d["index_kind"] = accessKindLabel(plan.access.kind)
		d["bounds"] = plan.access.bounds
		residual := residualPaths(plan)
		rp := make([]any, len(residual))
		for i, p := range residual {
			rp[i] = p
		}
		d["residual_paths"] = rp
	}
	considered := make([]any, 0, len(plan.considered))
	for _, ca := range plan.considered {
		considered = append(considered, document.D{
			"index":    ca.index,
			"kind":     accessKindLabel(ca.kind),
			"estimate": int64(ca.estimate),
		})
	}
	d["considered"] = considered
	return d
}

func accessKindLabel(kind string) string {
	if kind == "ordered" {
		return "ordered"
	}
	return "hash"
}

// residualPaths lists constrained paths the chosen access path does not
// consume — the fields the post-access verification filter still has to
// check. (Every path is re-verified regardless; this reports which
// constraints the index itself did not narrow.)
func residualPaths(plan *queryPlan) []string {
	if plan.access == nil {
		return nil
	}
	usedSet := make(map[string]struct{}, len(plan.access.used))
	for _, p := range plan.access.used {
		usedSet[p] = struct{}{}
	}
	seen := make(map[string]struct{})
	var out []string
	add := func(p string) {
		if _, u := usedSet[p]; u {
			return
		}
		if _, dup := seen[p]; dup {
			return
		}
		seen[p] = struct{}{}
		out = append(out, p)
	}
	for _, p := range plan.constraintPaths {
		add(p)
	}
	sort.Strings(out)
	return out
}

// planSummary is the compact plan rendering that lands in the slow-query
// trace detail.
func (plan *queryPlan) planSummary() string {
	switch plan.mode {
	case "scan":
		return "scan"
	case "id":
		return "id"
	}
	s := "index:" + accessIndexName(plan.access)
	if plan.sortSatisfied {
		s += "+sort"
	}
	return s
}

// notePlan bumps the planner decision counters. Safe to call while
// holding c.mu: the registry pointers are read atomically and counters
// are lock-free.
func (c *Collection) notePlan(plan *queryPlan) {
	if c.store == nil {
		return
	}
	reg, _ := c.store.metrics()
	if reg == nil {
		return
	}
	switch plan.mode {
	case "index":
		reg.Counter("datastore.planner.index_scans").Inc()
	case "id":
		reg.Counter("datastore.planner.id_lookups").Inc()
	default:
		reg.Counter("datastore.planner.full_scans").Inc()
	}
	if plan.sortSatisfied {
		reg.Counter("datastore.planner.sort_satisfied").Inc()
	}
	reg.Counter("datastore.planner.estimated_candidates").Add(uint64(plan.estimate))
}

// Explain compiles the query exactly as Find would and returns the
// planner's decision — chosen index, key bounds, residual filter paths,
// sort satisfaction, and every candidate considered — without executing
// anything.
func (c *Collection) Explain(filter document.D, opts *FindOpts) (document.D, error) {
	flt, err := query.Compile(filter)
	if err != nil {
		return nil, err
	}
	var sortKeys []query.SortKey
	if opts != nil {
		if _, err := query.CompileProjection(opts.Projection); err != nil {
			return nil, err
		}
		sortKeys, err = query.ParseSort(opts.Sort)
		if err != nil {
			return nil, err
		}
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.store != nil {
		if reg, _ := c.store.metrics(); reg != nil {
			reg.Counter("datastore.planner.explains").Inc()
		}
	}
	if _, handled := c.idLookupLocked(flt); handled {
		return document.D{
			"collection":           c.name,
			"mode":                 "id",
			"ndocs":                int64(len(c.docs)),
			"estimated_candidates": int64(1),
			"sort_satisfied":       false,
			"reverse":              false,
			"hinted":               false,
			"considered":           []any{},
		}, nil
	}
	plan := c.planQueryLocked(flt, sortKeys, opts)
	return c.explainDocLocked(plan), nil
}
