package datastore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"matproj/internal/document"
)

func TestJournalReplayRestoresStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := s.C("mps")
	id, _ := c.Insert(doc(`{"formula": "Fe2O3", "nsites": 10}`))
	c.Insert(doc(`{"_id": "keep", "v": 1}`))
	c.Insert(doc(`{"_id": "gone", "v": 2}`))
	c.UpdateOne(doc(`{"_id": "keep"}`), doc(`{"$set": {"v": 42}}`))
	c.RemoveID("gone")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	c2 := s2.C("mps")
	n, _ := c2.Count(nil)
	if n != 2 {
		t.Fatalf("count after replay = %d", n)
	}
	got, err := c2.FindID(id)
	if err != nil || got["formula"] != "Fe2O3" {
		t.Errorf("doc = %v err = %v", got, err)
	}
	kept, _ := c2.FindID("keep")
	if kept["v"] != int64(42) {
		t.Errorf("update not replayed: %v", kept["v"])
	}
	if _, err := c2.FindID("gone"); !errors.Is(err, ErrNotFound) {
		t.Error("remove not replayed")
	}
}

func TestSnapshotTruncatesJournal(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	c := s.C("x")
	for i := 0; i < 50; i++ {
		c.Insert(document.D{"n": int64(i)})
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	jinfo, err := os.Stat(filepath.Join(dir, "journal.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if jinfo.Size() != 0 {
		t.Errorf("journal size after snapshot = %d", jinfo.Size())
	}
	// Writes after snapshot land in the journal and replay on top.
	c.Insert(doc(`{"_id": "post", "n": 999}`))
	s.Close()

	s2, _ := Open(dir)
	defer s2.Close()
	n, _ := s2.C("x").Count(nil)
	if n != 51 {
		t.Errorf("count = %d, want 51", n)
	}
	if _, err := s2.C("x").FindID("post"); err != nil {
		t.Errorf("post-snapshot doc lost: %v", err)
	}
}

func TestDropCollectionPersisted(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.C("temp").Insert(doc(`{"v": 1}`))
	s.C("keep").Insert(doc(`{"v": 2}`))
	s.DropCollection("temp")
	s.Close()

	s2, _ := Open(dir)
	defer s2.Close()
	for _, name := range s2.Collections() {
		if name == "temp" {
			t.Error("dropped collection resurrected")
		}
	}
	n, _ := s2.C("keep").Count(nil)
	if n != 1 {
		t.Errorf("keep count = %d", n)
	}
}

func TestMemoryStoreSnapshotNoop(t *testing.T) {
	s := MustOpenMemory()
	if err := s.Snapshot(); err != nil {
		t.Errorf("memory snapshot: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestReplayCorruptJournalTailRepaired(t *testing.T) {
	// A malformed final line with nothing valid after it is a torn
	// tail: replay truncates it and the store opens.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "journal.ndjson"), []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("torn tail should be repaired, got %v", err)
	}
	rec := s.Recovery()
	if !rec.Repaired || rec.DroppedRecords != 1 {
		t.Errorf("recovery stats: %+v", rec)
	}
	s.Close()
	data, _ := os.ReadFile(filepath.Join(dir, "journal.ndjson"))
	if len(data) != 0 {
		t.Errorf("journal not truncated: %q", data)
	}

	// A record that decodes but carries an unknown op is real
	// corruption, not a torn write: still an error.
	os.WriteFile(filepath.Join(dir, "journal.ndjson"), []byte(`{"op":"zz","c":"x"}`+"\n"), 0o644)
	if _, err := Open(dir); err == nil {
		t.Error("unknown op: want error")
	}
}

func TestReplayEmptyLinesTolerated(t *testing.T) {
	dir := t.TempDir()
	content := `{"op":"i","c":"x","id":"a","doc":{"v":1}}` + "\n\n" + `{"op":"i","c":"x","id":"b","doc":{"v":2}}` + "\n"
	os.WriteFile(filepath.Join(dir, "journal.ndjson"), []byte(content), 0o644)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n, _ := s.C("x").Count(nil)
	if n != 2 {
		t.Errorf("count = %d", n)
	}
}

func TestReplayUpdateForUnknownIDInserts(t *testing.T) {
	// An update record for an id missing from the snapshot (possible after
	// journal truncation edge cases) must still materialize the document.
	dir := t.TempDir()
	content := `{"op":"u","c":"x","id":"a","doc":{"_id":"a","v":9}}` + "\n"
	os.WriteFile(filepath.Join(dir, "journal.ndjson"), []byte(content), 0o644)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, err := s.C("x").FindID("a")
	if err != nil || got["v"] != int64(9) {
		t.Errorf("got %v err %v", got, err)
	}
}

// TestCloseReleasesStoreLockBeforeJournalClose is the regression test
// for an AB/BA deadlock: Close used to hold s.mu while journal.close
// took j.mu, while journal.snapshot holds j.mu and read-locks s.mu. The
// fixed Close detaches the journal under s.mu and closes it outside, so
// the store lock must be observably free while Close waits on j.mu.
func TestCloseReleasesStoreLockBeforeJournalClose(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := s.journal.Load()
	if j == nil {
		t.Fatal("journaled store expected")
	}

	j.mu.Lock() // stand in for a concurrent snapshot holding the journal lock
	done := make(chan error, 1)
	go func() { done <- s.Close() }()

	detached := false
	for i := 0; i < 2000 && !detached; i++ {
		if s.mu.TryRLock() {
			detached = s.journal.Load() == nil
			s.mu.RUnlock()
		}
		if !detached {
			time.Sleep(time.Millisecond)
		}
	}
	j.mu.Unlock()
	if !detached {
		<-done
		t.Fatal("Close still holds s.mu while waiting on the journal lock; concurrent Snapshot would deadlock")
	}
	if err := <-done; err != nil {
		t.Fatalf("Close: %v", err)
	}
}
