package datastore

// Replication log surface. The CRC-checksummed journal doubles as a
// replication log: every mutation carries a store-wide generation minted
// in journal order, so a follower can catch up by pulling exactly the
// framed journal lines past its last applied generation and appending
// the same bytes to its own journal — one checksum protects the record
// from the primary's disk to the follower's.
//
// Two store flavors share the bookkeeping:
//
//   - Durable stores tail the journal file itself. The snapshot meta
//     record tracks the log floor ("base"): generations at or below it
//     have been folded into the snapshot and are only available via a
//     full state copy (ErrReplGap).
//   - Memory stores (cluster tests, ephemeral nodes) keep a bounded
//     in-memory ring of framed lines, enabled via EnableReplication;
//     eviction moves the floor just like snapshot rotation does.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"matproj/internal/document"
)

// ErrReplGap reports that the requested generation has rotated out of
// the log (snapshotted away or evicted from the ring); the follower must
// fall back to a full state copy (ReplSnapshot + ReplReset).
var ErrReplGap = errors.New("datastore: replication gap: generation rotated out of the log")

// DefaultReplRingCapacity bounds the in-memory replication ring when
// EnableReplication is called with a non-positive capacity.
const DefaultReplRingCapacity = 16384

// replState is the store-wide replication bookkeeping: the last minted/
// applied generation, the log floor, and (memory stores only) the entry
// ring. Its mutex is leaf-level: nothing is called while it is held.
type replState struct {
	mu      sync.Mutex
	enabled bool // ring recording on (memory stores)
	seq     uint64
	base    uint64
	cap     int
	ring    []replEntry
}

type replEntry struct {
	gen  uint64
	line []byte // framed "%08x <json>", no trailing newline
}

// next mints the following generation.
func (rs *replState) next() uint64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.seq++
	return rs.seq
}

// current reports the last minted/applied generation.
func (rs *replState) current() uint64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.seq
}

// observe advances seq to at least gen (replay / replicated applies).
func (rs *replState) observe(gen uint64) {
	rs.mu.Lock()
	if gen > rs.seq {
		rs.seq = gen
	}
	rs.mu.Unlock()
}

// observeBase advances the log floor (and seq) to at least gen.
func (rs *replState) observeBase(gen uint64) {
	rs.mu.Lock()
	if gen > rs.base {
		rs.base = gen
	}
	if gen > rs.seq {
		rs.seq = gen
	}
	rs.mu.Unlock()
}

// setBase moves the floor after a snapshot rotation.
func (rs *replState) setBase(gen uint64) {
	rs.observeBase(gen)
}

// enable turns on ring recording (memory stores).
func (rs *replState) enable(capacity int) {
	if capacity <= 0 {
		capacity = DefaultReplRingCapacity
	}
	rs.mu.Lock()
	rs.enabled = true
	rs.cap = capacity
	rs.mu.Unlock()
}

// frameRecord marshals and checksums one record, newline stripped.
func frameRecord(rec journalRecord) ([]byte, error) {
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("datastore: repl frame: %w", err)
	}
	return bytes.TrimSuffix(encodeLine(b), []byte("\n")), nil
}

// record mints a generation for one local mutation and stores its framed
// line in the ring. No-op unless enabled.
func (rs *replState) record(coll string, op journalOp, id string, doc document.D) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.enabled {
		return
	}
	var raw json.RawMessage
	if doc != nil {
		b, err := doc.ToJSON()
		if err != nil {
			return
		}
		raw = b
	}
	rs.seq++
	line, err := frameRecord(journalRecord{Op: op, Collection: coll, ID: id, Doc: raw, Gen: rs.seq})
	if err != nil {
		// The generation stays burned; the hole forces followers to a
		// snapshot copy rather than a silent divergence.
		return
	}
	rs.appendRingLocked(rs.seq, line)
}

// recordRaw stores an already-framed replicated line in the ring so a
// caught-up memory follower can itself serve as a catch-up source.
func (rs *replState) recordRaw(gen uint64, line []byte) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.enabled {
		return
	}
	rs.appendRingLocked(gen, line)
}

func (rs *replState) appendRingLocked(gen uint64, line []byte) {
	rs.ring = append(rs.ring, replEntry{gen: gen, line: line})
	for len(rs.ring) > rs.cap {
		rs.base = rs.ring[0].gen
		rs.ring = rs.ring[1:]
	}
}

// tail returns up to max framed ring entries with generation > from.
func (rs *replState) tail(from uint64, max int) ([][]byte, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if from < rs.base {
		return nil, fmt.Errorf("%w: from=%d base=%d", ErrReplGap, from, rs.base)
	}
	var out [][]byte
	for _, e := range rs.ring {
		if e.gen <= from {
			continue
		}
		out = append(out, e.line)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out, nil
}

// EnableReplication turns the store into a replication log source/sink.
// Durable stores always mint generations (the journal is the log); this
// call additionally equips memory stores with a bounded in-memory ring
// of the most recent capacity entries (<=0 selects the default). Safe to
// call once before traffic.
func (s *Store) EnableReplication(capacity int) {
	if s.journal.Load() != nil {
		return // journal-backed: log already live
	}
	s.repl.enable(capacity)
}

// ReplGen reports the store's last minted/applied replication generation.
func (s *Store) ReplGen() uint64 {
	return s.repl.current()
}

// ReplTail returns up to max framed log lines with generation > from,
// plus the current head generation. Lines are CRC-framed exactly as
// journaled ("%08x <json>", no newline) — the caller ships the bytes
// verbatim and the follower re-verifies the checksum before applying.
// A torn journal tail silently ends the batch (the good prefix is
// served); ErrReplGap means from has rotated out of the log.
func (s *Store) ReplTail(from uint64, max int) ([][]byte, uint64, error) {
	head := s.repl.current()
	j := s.journal.Load()
	if j == nil {
		lines, err := s.repl.tail(from, max)
		return lines, head, err
	}
	// Durable path: check the floor, then scan the journal file. The
	// group-commit path flushes per batch, so the file may trail head by
	// at most the in-flight batch; a line being written concurrently
	// fails its checksum and ends the scan (the caller simply pulls
	// again).
	s.repl.mu.Lock()
	base := s.repl.base
	s.repl.mu.Unlock()
	if from < base {
		return nil, head, fmt.Errorf("%w: from=%d base=%d", ErrReplGap, from, base)
	}
	f, err := os.Open(journalPath(j.dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, head, nil
		}
		return nil, head, fmt.Errorf("datastore: repl tail: %w", err)
	}
	defer f.Close()
	var out [][]byte
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		raw, rerr := r.ReadBytes('\n')
		data := bytes.TrimSuffix(raw, []byte("\n"))
		if len(data) > 0 {
			payload, derr := decodeLine(data)
			var rec journalRecord
			if derr == nil {
				derr = json.Unmarshal(payload, &rec)
			}
			if derr != nil {
				break // torn tail (or mid-append): serve the good prefix
			}
			if rec.Op != journalMeta && rec.Gen > from {
				line := make([]byte, len(data))
				copy(line, data)
				out = append(out, line)
				if max > 0 && len(out) >= max {
					break
				}
			}
		}
		if rerr != nil {
			break
		}
	}
	return out, head, nil
}

// ApplyReplEntries verifies and applies framed log lines shipped from a
// peer, journaling each locally. It applies the longest good prefix: a
// line failing its checksum or decode stops the batch and reports
// torn=true, and the caller re-pulls from the returned generation —
// truncate-and-resync, never apply a corrupt entry. Returns the number
// of lines applied and the store's resulting generation.
func (s *Store) ApplyReplEntries(lines [][]byte) (applied int, gen uint64, torn bool, err error) {
	j := s.journal.Load()
	// Replicated lines are staged as they apply and committed once at
	// the end of the batch — the whole shipment rides one group fsync.
	var last *commitTicket
	finish := func(applied int, torn bool, err error) (int, uint64, bool, error) {
		if j != nil {
			if cerr := j.commit(last); cerr != nil && err == nil {
				err = fmt.Errorf("datastore: repl apply journal: %w", cerr)
			}
		}
		return applied, s.repl.current(), torn, err
	}
	for _, line := range lines {
		payload, derr := decodeLine(line)
		var rec journalRecord
		if derr == nil {
			derr = json.Unmarshal(payload, &rec)
		}
		if derr != nil {
			return finish(applied, true, nil)
		}
		if rec.Op == journalMeta {
			continue
		}
		if aerr := applyRecord(s, rec); aerr != nil {
			return finish(applied, false, fmt.Errorf("datastore: repl apply: %w", aerr))
		}
		if j != nil {
			last = j.stageRaw(line)
		} else {
			s.repl.recordRaw(rec.Gen, line)
		}
		applied++
	}
	return finish(applied, false, nil)
}

// ReplSnapshotEntries serializes the store's full current state as
// framed insert lines (one per document, plus drop-free collection
// bounds are implicit), for shipping to a follower whose generation has
// rotated out of the log. The head generation returned was read before
// the state scan, so state is a superset of head — re-applied log
// entries past head are idempotent.
func (s *Store) ReplSnapshotEntries() ([][]byte, uint64, error) {
	head := s.repl.current()
	s.mu.RLock()
	colls := make([]*Collection, 0, len(s.collections))
	for _, c := range s.collections {
		colls = append(colls, c)
	}
	s.mu.RUnlock()
	var out [][]byte
	for _, c := range colls {
		c.mu.RLock()
		// Index definitions first, mirroring the on-disk snapshot layout:
		// the follower re-creates each index before any documents arrive,
		// so its indexes are maintained incrementally from the same
		// stream that builds its data.
		for _, rec := range c.indexDefRecordsLocked() {
			line, err := frameRecord(rec)
			if err != nil {
				c.mu.RUnlock()
				return nil, head, err
			}
			out = append(out, line)
		}
		for _, id := range c.order {
			b, err := c.docs[id].ToJSON()
			if err != nil {
				c.mu.RUnlock()
				return nil, head, fmt.Errorf("datastore: repl snapshot encode: %w", err)
			}
			line, err := frameRecord(journalRecord{Op: journalInsert, Collection: c.name, ID: id, Doc: b})
			if err != nil {
				c.mu.RUnlock()
				return nil, head, err
			}
			out = append(out, line)
		}
		c.mu.RUnlock()
	}
	return out, head, nil
}

// ReplReset replaces the store's entire state with the shipped snapshot
// lines and fast-forwards the replication position to upto. Durable
// stores immediately rewrite their on-disk snapshot (and truncate the
// journal) so a restart replays the new state, not the pre-reset one.
func (s *Store) ReplReset(lines [][]byte, upto uint64) error {
	s.mu.Lock()
	s.collections = make(map[string]*Collection)
	s.mu.Unlock()
	for _, line := range lines {
		payload, derr := decodeLine(line)
		var rec journalRecord
		if derr == nil {
			derr = json.Unmarshal(payload, &rec)
		}
		if derr != nil {
			return fmt.Errorf("datastore: repl reset: corrupt snapshot line: %w", derr)
		}
		if rec.Op == journalMeta {
			continue
		}
		if err := applyRecord(s, rec); err != nil {
			return fmt.Errorf("datastore: repl reset: %w", err)
		}
	}
	s.repl.mu.Lock()
	s.repl.seq = upto
	s.repl.base = upto
	s.repl.ring = nil
	s.repl.mu.Unlock()
	if j := s.journal.Load(); j != nil {
		if err := j.snapshot(s); err != nil {
			return fmt.Errorf("datastore: repl reset snapshot: %w", err)
		}
	}
	return nil
}
