package datastore

import (
	"fmt"
	"math/rand"
	"testing"

	"matproj/internal/document"
)

// BenchmarkRangeQuery measures the tentpole workload — a ~1%-selectivity
// numeric range query with an order-by on the same field — with and
// without an ordered index, at 10k and 100k documents. The mpbench
// "planner" experiment packages the same comparison as a gated artifact
// (BENCH_planner.json); this benchmark keeps it one `go test -bench`
// away during development.
func BenchmarkRangeQuery(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		for _, indexed := range []bool{true, false} {
			name := fmt.Sprintf("docs=%d/indexed=%v", n, indexed)
			b.Run(name, func(b *testing.B) {
				c := MustOpenMemory().C("bench")
				if indexed {
					c.EnsureOrderedIndex("value")
				}
				rng := rand.New(rand.NewSource(int64(n)))
				for i := 0; i < n; i++ {
					if _, err := c.Insert(document.D{
						"_id":   fmt.Sprintf("b%06d", i),
						"value": rng.Float64() * 100,
						"group": int64(rng.Intn(40)),
					}); err != nil {
						b.Fatal(err)
					}
				}
				filter := document.D{"value": document.D{"$gte": 49.5, "$lt": 50.5}}
				opts := &FindOpts{Sort: []string{"value"}}
				if _, err := c.FindAll(filter, opts); err != nil { // warmup: lazy key sort
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.FindAll(filter, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
