package datastore

import (
	"fmt"
	"os"
	"testing"
	"time"

	"matproj/internal/document"
)

// Crash-safety tests: every way the journal tail can be torn must leave
// a reopenable store that holds exactly the records whose writes fully
// landed.

func writeDurable(t *testing.T, dir string, n int) {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := s.C("x").Insert(document.D{"_id": fmt.Sprintf("d%03d", i), "v": int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTearAtEveryByteOffset(t *testing.T) {
	// Build a reference journal once to learn its size and the offset
	// where the final record starts.
	ref := t.TempDir()
	writeDurable(t, ref, 3)
	refData, err := os.ReadFile(JournalFile(ref))
	if err != nil {
		t.Fatal(err)
	}
	total := len(refData)
	lastStart := 0
	for i := 0; i < total-1; i++ {
		if refData[i] == '\n' {
			lastStart = i + 1
		}
	}

	// Cut 1..len(lastRecord) bytes off the end — every possible torn
	// write of the final record.
	for cut := 1; cut <= total-lastStart; cut++ {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			writeDurable(t, dir, 3)
			if err := os.Truncate(JournalFile(dir), int64(total-cut)); err != nil {
				t.Fatal(err)
			}
			s, err := Open(dir)
			if err != nil {
				t.Fatalf("cut %d: reopen failed: %v", cut, err)
			}
			defer s.Close()
			n, _ := s.C("x").Count(nil)
			rec := s.Recovery()
			if cut == 1 {
				// Only the newline is gone: the record itself is intact
				// and must survive.
				if n != 3 {
					t.Fatalf("cut 1: %d docs, want 3 (record intact)", n)
				}
				if rec.Repaired {
					t.Fatalf("cut 1: spurious repair: %+v", rec)
				}
			} else {
				if n != 2 {
					t.Fatalf("cut %d: %d docs, want 2 (torn record dropped)", cut, n)
				}
				if cut == total-lastStart {
					// The whole final line vanished cleanly — nothing
					// torn remains, so no repair should be reported.
					if rec.Repaired {
						t.Fatalf("cut %d: spurious repair: %+v", cut, rec)
					}
					return
				}
				if !rec.Repaired || rec.DroppedRecords != 1 {
					t.Fatalf("cut %d: recovery stats %+v", cut, rec)
				}
				// The repair must be durable: a second reopen sees a
				// clean journal.
				s.Close()
				s2, err := Open(dir)
				if err != nil {
					t.Fatalf("cut %d: reopen after repair: %v", cut, err)
				}
				if s2.Recovery().Repaired {
					t.Fatalf("cut %d: repair did not stick", cut)
				}
				s2.Close()
			}
		})
	}
}

func TestTornTailAcrossMultipleRecords(t *testing.T) {
	dir := t.TempDir()
	writeDurable(t, dir, 5)
	data, _ := os.ReadFile(JournalFile(dir))
	// Find the start of record 4 (index 3) and cut from mid-record 4
	// through the end: records 4 and 5 both become garbage... actually
	// truncation removes record 5 entirely and tears record 4.
	nl := 0
	cutAt := 0
	for i, b := range data {
		if b == '\n' {
			nl++
			if nl == 3 {
				cutAt = i + 1 + 5 // few bytes into record 4
				break
			}
		}
	}
	if err := os.Truncate(JournalFile(dir), int64(cutAt)); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n, _ := s.C("x").Count(nil)
	if n != 3 {
		t.Fatalf("%d docs, want 3", n)
	}
	if rec := s.Recovery(); !rec.Repaired || rec.JournalRecords != 3 {
		t.Fatalf("recovery: %+v", rec)
	}
}

func TestMidFileCorruptionStillErrors(t *testing.T) {
	dir := t.TempDir()
	writeDurable(t, dir, 3)
	data, _ := os.ReadFile(JournalFile(dir))
	// Corrupt a byte inside the FIRST record; valid records follow, so
	// this is not a torn tail and must not be silently dropped.
	data[12] ^= 0xFF
	if err := os.WriteFile(JournalFile(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("mid-file corruption: want error")
	}
}

type dropEverything struct{}

func (dropEverything) DropAppend() bool           { return true }
func (dropEverything) AppendDelay() time.Duration { return 0 }

func TestDropAppendFaultLosesWritesButStoreReopens(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.C("x").Insert(document.D{"_id": "kept"}); err != nil {
		t.Fatal(err)
	}
	s.InjectJournalFaults(dropEverything{})
	if _, err := s.C("x").Insert(document.D{"_id": "lost"}); err != nil {
		t.Fatal(err)
	}
	// In-memory view still has both (the fault models a lost write-out,
	// not a failed acknowledge).
	if n, _ := s.C("x").Count(nil); n != 2 {
		t.Fatalf("live count %d", n)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n, _ := s2.C("x").Count(nil); n != 1 {
		t.Fatalf("reopened count %d, want 1 (dropped append lost)", n)
	}
	if _, err := s2.C("x").FindID("kept"); err != nil {
		t.Fatalf("durable doc missing: %v", err)
	}
}

func TestLegacyUnchecksummedJournalStillReplays(t *testing.T) {
	dir := t.TempDir()
	legacy := `{"op":"i","c":"x","id":"a","doc":{"v":1}}` + "\n"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(JournalFile(dir), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.C("x").FindID("a"); err != nil {
		t.Fatalf("legacy record not replayed: %v", err)
	}
	if s.Recovery().JournalRecords != 1 {
		t.Fatalf("recovery: %+v", s.Recovery())
	}
}
