package datastore

import (
	"fmt"
	"testing"

	"matproj/internal/document"
)

// Golden Explain tests: a fixed corpus and fixture queries whose full
// plan documents are pinned as canonical JSON. Any planner change that
// alters index selection, bounds, estimates, or the considered list
// shows up as a golden diff — intentional changes update the strings,
// accidental ones fail review. (document.D marshals with sorted keys,
// so the rendering is deterministic.)

// explainGoldenCollection builds the fixture corpus: 10 documents over
// the paper's query shapes (chemical system, electron count, band gap,
// element list, task id) with one single-field ordered index, one
// compound, one multikey, and one legacy hash index.
func explainGoldenCollection(t *testing.T) *Collection {
	t.Helper()
	c := MustOpenMemory().C("materials")
	for i := 0; i < 10; i++ {
		doc := document.D{
			"_id":        fmt.Sprintf("m%02d", i),
			"chemsys":    []string{"Fe-O", "Li-O"}[i%2],
			"nelectrons": int64(10 + i),
			"band_gap":   float64(i) / 2,
			"elements":   []any{[]any{"Fe", "O"}, []any{"Li", "O"}}[i%2],
			"task_id":    fmt.Sprintf("mp-%d", i),
		}
		if _, err := c.Insert(document.NormalizeDoc(doc)); err != nil {
			t.Fatal(err)
		}
	}
	c.EnsureOrderedIndex("nelectrons")
	c.EnsureOrderedIndex("chemsys", "nelectrons")
	c.EnsureOrderedIndex("elements")
	c.EnsureIndex("task_id")
	return c
}

func TestExplainGolden(t *testing.T) {
	c := explainGoldenCollection(t)
	fixtures := []struct {
		name   string
		filter document.D
		opts   *FindOpts
		want   string
	}{
		{
			name:   "id-lookup",
			filter: document.D{"_id": "m03"},
			want:   `{"collection":"materials","considered":[],"estimated_candidates":1,"hinted":false,"mode":"id","ndocs":10,"reverse":false,"sort_satisfied":false}`,
		},
		{
			name:   "unindexed-scan",
			filter: document.D{"band_gap": document.D{"$gte": 1.0}},
			want:   `{"collection":"materials","considered":[],"estimated_candidates":10,"hinted":false,"mode":"scan","ndocs":10,"reverse":false,"sort_satisfied":false}`,
		},
		{
			name:   "hash-equality",
			filter: document.D{"task_id": "mp-4"},
			want:   `{"bounds":"task_id = mp-4","collection":"materials","considered":[{"estimate":1,"index":"task_id","kind":"hash"}],"estimated_candidates":1,"hinted":false,"index":"task_id","index_kind":"hash","mode":"index","ndocs":10,"residual_paths":[],"reverse":false,"sort_satisfied":false}`,
		},
		{
			name:   "ordered-range",
			filter: document.D{"nelectrons": document.D{"$gte": int64(12), "$lt": int64(15)}},
			want:   `{"bounds":"nelectrons [12, 15)","collection":"materials","considered":[{"estimate":3,"index":"nelectrons","kind":"ordered"}],"estimated_candidates":3,"hinted":false,"index":"nelectrons","index_kind":"ordered","mode":"index","ndocs":10,"residual_paths":[],"reverse":false,"sort_satisfied":false}`,
		},
		{
			name:   "ordered-range-sorted",
			filter: document.D{"nelectrons": document.D{"$gte": int64(12)}},
			opts:   &FindOpts{Sort: []string{"nelectrons"}},
			want:   `{"bounds":"nelectrons [12, +inf)","collection":"materials","considered":[{"estimate":8,"index":"nelectrons","kind":"ordered"}],"estimated_candidates":8,"hinted":false,"index":"nelectrons","index_kind":"ordered","mode":"index","ndocs":10,"residual_paths":[],"reverse":false,"sort_satisfied":true}`,
		},
		{
			name:   "ordered-range-sorted-desc",
			filter: document.D{"nelectrons": document.D{"$lt": int64(14)}},
			opts:   &FindOpts{Sort: []string{"-nelectrons"}},
			want:   `{"bounds":"nelectrons (-inf, 14)","collection":"materials","considered":[{"estimate":4,"index":"nelectrons","kind":"ordered"}],"estimated_candidates":4,"hinted":false,"index":"nelectrons","index_kind":"ordered","mode":"index","ndocs":10,"residual_paths":[],"reverse":true,"sort_satisfied":true}`,
		},
		{
			name:   "compound-eq-plus-range",
			filter: document.D{"chemsys": "Fe-O", "nelectrons": document.D{"$gte": int64(12)}},
			want:   `{"bounds":"chemsys = Fe-O, nelectrons [12, +inf)","collection":"materials","considered":[{"estimate":4,"index":"chemsys,nelectrons","kind":"ordered"},{"estimate":8,"index":"nelectrons","kind":"ordered"}],"estimated_candidates":4,"hinted":false,"index":"chemsys,nelectrons","index_kind":"ordered","mode":"index","ndocs":10,"residual_paths":[],"reverse":false,"sort_satisfied":false}`,
		},
		{
			name:   "compound-eq-prefix-only",
			filter: document.D{"chemsys": "Li-O", "band_gap": document.D{"$lt": 2.0}},
			want:   `{"bounds":"chemsys = Li-O","collection":"materials","considered":[{"estimate":5,"index":"chemsys,nelectrons","kind":"ordered"}],"estimated_candidates":5,"hinted":false,"index":"chemsys,nelectrons","index_kind":"ordered","mode":"index","ndocs":10,"residual_paths":["band_gap"],"reverse":false,"sort_satisfied":false}`,
		},
		{
			name:   "in-membership",
			filter: document.D{"nelectrons": document.D{"$in": []any{int64(11), int64(13), int64(99)}}},
			want:   `{"bounds":"nelectrons in (3 values)","collection":"materials","considered":[{"estimate":2,"index":"nelectrons","kind":"ordered"}],"estimated_candidates":2,"hinted":false,"index":"nelectrons","index_kind":"ordered","mode":"index","ndocs":10,"residual_paths":[],"reverse":false,"sort_satisfied":false}`,
		},
		{
			// A two-sided range over the multikey index degrades to its
			// min bound; the widened estimate (3 region keys x avg bucket
			// size 6) then loses to the full scan — correct costing.
			name:   "multikey-two-sided-prefers-scan",
			filter: document.D{"elements": document.D{"$gte": "Fe", "$lte": "O"}},
			want:   `{"collection":"materials","considered":[{"estimate":18,"index":"elements","kind":"ordered"}],"estimated_candidates":10,"hinted":false,"mode":"scan","ndocs":10,"reverse":false,"sort_satisfied":false}`,
		},
		{
			// Hinting the multikey index surfaces the degraded bounds:
			// the max bound is dropped (different elements may satisfy
			// the two bounds), the residual filter re-verifies.
			name:   "multikey-two-sided-hinted-degrades-to-min",
			filter: document.D{"elements": document.D{"$gte": "Fe", "$lte": "O"}},
			opts:   &FindOpts{Hint: "elements"},
			want:   `{"bounds":"elements [Fe, +inf)","collection":"materials","considered":[{"estimate":18,"index":"elements","kind":"ordered"}],"estimated_candidates":18,"hinted":true,"index":"elements","index_kind":"ordered","mode":"index","ndocs":10,"residual_paths":[],"reverse":false,"sort_satisfied":false}`,
		},
		{
			name:   "hinted-full-index-scan",
			filter: document.D{"band_gap": document.D{"$gte": 1.0}},
			opts:   &FindOpts{Hint: "chemsys,nelectrons"},
			want:   `{"bounds":"full index scan","collection":"materials","considered":[],"estimated_candidates":10,"hinted":true,"index":"chemsys,nelectrons","index_kind":"ordered","mode":"index","ndocs":10,"residual_paths":["band_gap"],"reverse":false,"sort_satisfied":false}`,
		},
		{
			name:   "sort-only-full-index-walk",
			filter: document.D{"band_gap": document.D{"$gte": 0.0}},
			opts:   &FindOpts{Sort: []string{"nelectrons"}},
			want:   `{"bounds":"full index scan","collection":"materials","considered":[{"estimate":10,"index":"nelectrons","kind":"ordered"}],"estimated_candidates":10,"hinted":false,"index":"nelectrons","index_kind":"ordered","mode":"index","ndocs":10,"residual_paths":["band_gap"],"reverse":false,"sort_satisfied":true}`,
		},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			plan, err := c.Explain(fx.filter, fx.opts)
			if err != nil {
				t.Fatalf("explain: %v", err)
			}
			got, err := plan.ToJSON()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			if string(got) != fx.want {
				t.Errorf("plan drifted from golden\n got: %s\nwant: %s", got, fx.want)
			}
		})
	}
}

// TestExplainGoldenResultsAgree double-checks that every fixture's
// chosen plan also executes correctly: the documents returned equal an
// index-free twin's. (The oracle covers this at scale; here it guards
// the exact pinned plans.)
func TestExplainGoldenResultsAgree(t *testing.T) {
	c := explainGoldenCollection(t)
	truth := MustOpenMemory().C("materials")
	for i := 0; i < 10; i++ {
		doc := document.D{
			"_id":        fmt.Sprintf("m%02d", i),
			"chemsys":    []string{"Fe-O", "Li-O"}[i%2],
			"nelectrons": int64(10 + i),
			"band_gap":   float64(i) / 2,
			"elements":   []any{[]any{"Fe", "O"}, []any{"Li", "O"}}[i%2],
			"task_id":    fmt.Sprintf("mp-%d", i),
		}
		if _, err := truth.Insert(document.NormalizeDoc(doc)); err != nil {
			t.Fatal(err)
		}
	}
	filters := []document.D{
		{"task_id": "mp-4"},
		{"nelectrons": document.D{"$gte": int64(12), "$lt": int64(15)}},
		{"chemsys": "Fe-O", "nelectrons": document.D{"$gte": int64(12)}},
		{"elements": document.D{"$gte": "Fe", "$lte": "O"}},
		{"nelectrons": document.D{"$in": []any{int64(11), int64(13), int64(99)}}},
	}
	for _, f := range filters {
		opts := &FindOpts{Sort: []string{"_id"}}
		got, err := c.FindAll(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := truth.FindAll(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("filter %v: subject %d docs, truth %d", f, len(got), len(want))
		}
		for i := range got {
			if !document.Equal(map[string]any(got[i]), map[string]any(want[i])) {
				t.Fatalf("filter %v: doc %d differs", f, i)
			}
		}
	}
}
