package datastore

import (
	"fmt"
	"testing"

	"matproj/internal/document"
)

func seedMRTasks(tb testing.TB, n int) *Collection {
	tb.Helper()
	c := MustOpenMemory().C("tasks")
	for i := 0; i < n; i++ {
		_, err := c.Insert(document.D{
			"_id":     fmt.Sprintf("t%05d", i),
			"mps_id":  fmt.Sprintf("mps-%03d", i%10),
			"energy":  -float64(i%7) - 1,
			"state":   "done",
			"version": int64(i % 3),
		})
		if err != nil {
			tb.Fatal(err)
		}
	}
	return c
}

// bestEnergyMap/Reduce implement the paper's canonical MapReduce: group
// tasks by MPS identifier and pick the single "best" (lowest-energy)
// result per material.
func bestEnergyMap(d document.D, emit func(string, any)) {
	key := d.GetString("mps_id")
	if key == "" {
		return
	}
	e, _ := d.GetFloat("energy")
	emit(key, document.D{"energy": e, "task_id": d["_id"]})
}

func bestEnergyReduce(_ string, values []any) any {
	best := values[0].(map[string]any)
	for _, v := range values[1:] {
		m := v.(map[string]any)
		if me, _ := document.AsFloat(m["energy"]); func() bool {
			be, _ := document.AsFloat(best["energy"])
			return me < be
		}() {
			best = m
		}
	}
	return best
}

func TestMapReduceGroupsByKey(t *testing.T) {
	c := seedMRTasks(t, 100)
	res, err := c.MapReduce(nil, bestEnergyMap, bestEnergyReduce)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("groups = %d, want 10", len(res))
	}
	// Sorted by key.
	for i := 1; i < len(res); i++ {
		if res[i-1]["_id"].(string) >= res[i]["_id"].(string) {
			t.Fatal("results not key-sorted")
		}
	}
	// Each group's value should be the minimal energy among its members.
	for _, r := range res {
		v := r.GetDoc("value")
		e, _ := document.AsFloat(v["energy"])
		if e > -1 || e < -7 {
			t.Errorf("group %v best energy = %v", r["_id"], e)
		}
	}
}

func TestMapReduceFilterAndSingleValueSkipsReduce(t *testing.T) {
	c := seedMRTasks(t, 30)
	reduceCalls := 0
	res, err := c.MapReduce(
		document.D{"mps_id": "mps-003"},
		func(d document.D, emit func(string, any)) { emit(d["_id"].(string), int64(1)) },
		func(k string, vs []any) any { reduceCalls++; return int64(len(vs)) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("res = %d", len(res))
	}
	if reduceCalls != 0 {
		t.Errorf("reduce called %d times for singleton groups", reduceCalls)
	}
	for _, r := range res {
		if r["value"] != int64(1) {
			t.Errorf("value = %v", r["value"])
		}
	}
}

func TestMapReduceCountPerKey(t *testing.T) {
	c := seedMRTasks(t, 100)
	res, err := c.MapReduce(nil,
		func(d document.D, emit func(string, any)) { emit(d.GetString("mps_id"), int64(1)) },
		func(_ string, vs []any) any {
			var sum int64
			for _, v := range vs {
				n, _ := v.(int64)
				sum += n
			}
			return sum
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r["value"] != int64(10) {
			t.Errorf("count for %v = %v, want 10", r["_id"], r["value"])
		}
	}
}

func TestMapReduceInto(t *testing.T) {
	s := MustOpenMemory()
	c := s.C("tasks")
	for i := 0; i < 20; i++ {
		c.Insert(document.D{"mps_id": fmt.Sprintf("mps-%d", i%4), "energy": float64(-i)})
	}
	target := s.C("materials")
	target.Insert(document.D{"stale": true})
	n, err := c.MapReduceInto(nil, bestEnergyMap, bestEnergyReduce, target)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("n = %d", n)
	}
	cnt, _ := target.Count(nil)
	if cnt != 4 {
		t.Errorf("target count = %d (stale docs must be cleared)", cnt)
	}
	stale, _ := target.Count(document.D{"stale": true})
	if stale != 0 {
		t.Error("stale doc survived MapReduceInto")
	}
}

func TestMapReduceBadFilter(t *testing.T) {
	c := seedMRTasks(t, 5)
	if _, err := c.MapReduce(document.D{"$bad": 1}, bestEnergyMap, bestEnergyReduce); err == nil {
		t.Error("want error")
	}
}
