package datastore

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"matproj/internal/document"
)

func doc(s string) document.D { return document.MustFromJSON(s) }

func TestInsertAssignsID(t *testing.T) {
	s := MustOpenMemory()
	c := s.C("mps")
	id, err := c.Insert(doc(`{"formula": "Fe2O3"}`))
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty id")
	}
	got, err := c.FindID(id)
	if err != nil {
		t.Fatal(err)
	}
	if got["formula"] != "Fe2O3" || got["_id"] != id {
		t.Errorf("got %v", got)
	}
}

func TestInsertExplicitAndDuplicateID(t *testing.T) {
	c := MustOpenMemory().C("x")
	if _, err := c.Insert(doc(`{"_id": "m-1", "v": 1}`)); err != nil {
		t.Fatal(err)
	}
	_, err := c.Insert(doc(`{"_id": "m-1", "v": 2}`))
	if !errors.Is(err, ErrDuplicateID) {
		t.Errorf("dup insert err = %v", err)
	}
	if _, err := c.Insert(document.D{"_id": int64(3)}); err == nil {
		t.Error("non-string _id accepted")
	}
}

func TestInsertDoesNotAliasCaller(t *testing.T) {
	c := MustOpenMemory().C("x")
	d := doc(`{"nested": {"v": 1}}`)
	id, _ := c.Insert(d)
	d.Set("nested.v", 99)
	got, _ := c.FindID(id)
	if v, _ := got.Get("nested.v"); v != int64(1) {
		t.Errorf("stored doc aliased caller: %v", v)
	}
	// And FindID returns copies too.
	got.Set("nested.v", 42)
	got2, _ := c.FindID(id)
	if v, _ := got2.Get("nested.v"); v != int64(1) {
		t.Errorf("FindID aliased store: %v", v)
	}
}

func TestInsertMany(t *testing.T) {
	c := MustOpenMemory().C("x")
	ids, err := c.InsertMany([]document.D{doc(`{"n": 1}`), doc(`{"n": 2}`)})
	if err != nil || len(ids) != 2 {
		t.Fatalf("ids=%v err=%v", ids, err)
	}
	n, _ := c.Count(nil)
	if n != 2 {
		t.Errorf("count = %d", n)
	}
	// Error stops the batch.
	ids2, err := c.InsertMany([]document.D{{"_id": ids[0]}, doc(`{"n": 3}`)})
	if err == nil || len(ids2) != 0 {
		t.Errorf("batch with dup: ids=%v err=%v", ids2, err)
	}
}

func seedTasks(t *testing.T) *Collection {
	t.Helper()
	c := MustOpenMemory().C("tasks")
	rows := []string{
		`{"_id": "t1", "state": "ready", "elements": ["Li", "O"], "nelectrons": 120, "priority": 5}`,
		`{"_id": "t2", "state": "ready", "elements": ["Na", "O"], "nelectrons": 90, "priority": 9}`,
		`{"_id": "t3", "state": "running", "elements": ["Li", "Fe", "O"], "nelectrons": 250, "priority": 1}`,
		`{"_id": "t4", "state": "done", "elements": ["Li", "O"], "nelectrons": 60, "priority": 3}`,
	}
	for _, r := range rows {
		if _, err := c.Insert(doc(r)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestFindWithPaperQuery(t *testing.T) {
	c := seedTasks(t)
	got, err := c.FindAll(doc(`{"elements": {"$all": ["Li", "O"]}, "nelectrons": {"$lte": 200}}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d docs: %v", len(got), got)
	}
	if got[0]["_id"] != "t1" || got[1]["_id"] != "t4" {
		t.Errorf("ids = %v, %v", got[0]["_id"], got[1]["_id"])
	}
}

func TestFindSortSkipLimitProjection(t *testing.T) {
	c := seedTasks(t)
	got, err := c.FindAll(nil, &FindOpts{
		Sort:       []string{"-priority"},
		Skip:       1,
		Limit:      2,
		Projection: doc(`{"priority": 1}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d", len(got))
	}
	if got[0]["priority"] != int64(5) || got[1]["priority"] != int64(3) {
		t.Errorf("priorities = %v, %v", got[0]["priority"], got[1]["priority"])
	}
	if got[0].Has("state") {
		t.Error("projection leaked fields")
	}
	// Skip past the end.
	none, _ := c.FindAll(nil, &FindOpts{Skip: 100})
	if len(none) != 0 {
		t.Errorf("skip past end returned %d", len(none))
	}
}

func TestFindErrorsPropagate(t *testing.T) {
	c := seedTasks(t)
	if _, err := c.Find(doc(`{"a": {"$bogus": 1}}`), nil); err == nil {
		t.Error("bad filter: want error")
	}
	if _, err := c.Find(nil, &FindOpts{Projection: doc(`{"a": 1, "b": 0}`)}); err == nil {
		t.Error("bad projection: want error")
	}
	if _, err := c.Find(nil, &FindOpts{Sort: []string{""}}); err == nil {
		t.Error("bad sort: want error")
	}
}

func TestFindOne(t *testing.T) {
	c := seedTasks(t)
	got, err := c.FindOne(doc(`{"state": "ready"}`), &FindOpts{Sort: []string{"-priority"}})
	if err != nil {
		t.Fatal(err)
	}
	if got["_id"] != "t2" {
		t.Errorf("_id = %v", got["_id"])
	}
	if _, err := c.FindOne(doc(`{"state": "nope"}`), nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestCountAndDistinct(t *testing.T) {
	c := seedTasks(t)
	n, err := c.Count(doc(`{"state": "ready"}`))
	if err != nil || n != 2 {
		t.Errorf("count = %d err=%v", n, err)
	}
	vals, err := c.Distinct("elements", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 4 { // Fe, Li, Na, O
		t.Errorf("distinct elements = %v", vals)
	}
	states, _ := c.Distinct("state", doc(`{"nelectrons": {"$lt": 100}}`))
	if len(states) != 2 {
		t.Errorf("states = %v", states)
	}
	if _, err := c.Distinct("x", doc(`{"$bad": 1}`)); err == nil {
		t.Error("bad filter distinct: want error")
	}
}

func TestUpdateOneAndMany(t *testing.T) {
	c := seedTasks(t)
	res, err := c.UpdateOne(doc(`{"state": "ready"}`), doc(`{"$set": {"state": "claimed"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 1 || res.Modified != 1 {
		t.Errorf("res = %+v", res)
	}
	res, err = c.UpdateMany(doc(`{"state": "ready"}`), doc(`{"$inc": {"priority": 10}}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 1 || res.Modified != 1 {
		t.Errorf("many res = %+v", res)
	}
	// No-op update counts matched but not modified.
	res, _ = c.UpdateMany(doc(`{"state": "done"}`), doc(`{"$set": {"state": "done"}}`))
	if res.Matched != 1 || res.Modified != 0 {
		t.Errorf("noop res = %+v", res)
	}
}

func TestUpdateCannotChangeID(t *testing.T) {
	c := seedTasks(t)
	if _, err := c.UpdateOne(doc(`{"_id": "t1"}`), doc(`{"$set": {"_id": "hax"}}`)); err == nil {
		t.Error("want error on _id change")
	}
}

func TestUpdateMaintainsIndexes(t *testing.T) {
	c := seedTasks(t)
	c.EnsureIndex("state")
	got, _ := c.FindAll(doc(`{"state": "ready"}`), nil)
	if len(got) != 2 {
		t.Fatalf("pre: %d", len(got))
	}
	if _, err := c.UpdateMany(doc(`{"state": "ready"}`), doc(`{"$set": {"state": "claimed"}}`)); err != nil {
		t.Fatal(err)
	}
	got, _ = c.FindAll(doc(`{"state": "ready"}`), nil)
	if len(got) != 0 {
		t.Errorf("stale index: %d ready", len(got))
	}
	got, _ = c.FindAll(doc(`{"state": "claimed"}`), nil)
	if len(got) != 2 {
		t.Errorf("claimed = %d", len(got))
	}
}

func TestUpsert(t *testing.T) {
	c := MustOpenMemory().C("x")
	id, err := c.Upsert(doc(`{"key": "a"}`), doc(`{"$set": {"v": 1}}`))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := c.FindID(id)
	if got["key"] != "a" || got["v"] != int64(1) {
		t.Errorf("upsert insert: %v", got)
	}
	id2, err := c.Upsert(doc(`{"key": "a"}`), doc(`{"$inc": {"v": 5}}`))
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Errorf("upsert created new doc: %s vs %s", id2, id)
	}
	got, _ = c.FindID(id)
	if got["v"] != int64(6) {
		t.Errorf("v = %v", got["v"])
	}
	n, _ := c.Count(nil)
	if n != 1 {
		t.Errorf("count = %d", n)
	}
}

func TestFindAndModifyClaimsAtomically(t *testing.T) {
	c := seedTasks(t)
	got, err := c.FindAndModify(doc(`{"state": "ready"}`), doc(`{"$set": {"state": "claimed"}}`), []string{"-priority"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got["_id"] != "t2" || got["state"] != "claimed" {
		t.Errorf("claimed %v state %v", got["_id"], got["state"])
	}
	// returnNew=false returns the pre-image.
	got2, err := c.FindAndModify(doc(`{"state": "ready"}`), doc(`{"$set": {"state": "claimed"}}`), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if got2["state"] != "ready" {
		t.Errorf("pre-image state = %v", got2["state"])
	}
	if _, err := c.FindAndModify(doc(`{"state": "ready"}`), doc(`{"$set": {"state": "x"}}`), nil, true); !errors.Is(err, ErrNotFound) {
		t.Errorf("exhausted queue err = %v", err)
	}
}

func TestFindAndModifyConcurrentWorkersGetDistinctJobs(t *testing.T) {
	c := MustOpenMemory().C("engines")
	const jobs = 200
	for i := 0; i < jobs; i++ {
		c.Insert(document.D{"_id": fmt.Sprintf("j%03d", i), "state": "ready"})
	}
	var mu sync.Mutex
	claimed := make(map[string]int)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				got, err := c.FindAndModify(
					document.D{"state": "ready"},
					document.D{"$set": document.D{"state": "claimed", "worker": int64(worker)}},
					nil, true)
				if errors.Is(err, ErrNotFound) {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				claimed[got["_id"].(string)]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(claimed) != jobs {
		t.Fatalf("claimed %d distinct jobs, want %d", len(claimed), jobs)
	}
	for id, n := range claimed {
		if n != 1 {
			t.Errorf("job %s claimed %d times", id, n)
		}
	}
}

func TestRemove(t *testing.T) {
	c := seedTasks(t)
	n, err := c.Remove(doc(`{"state": "ready"}`))
	if err != nil || n != 2 {
		t.Fatalf("removed %d err=%v", n, err)
	}
	total, _ := c.Count(nil)
	if total != 2 {
		t.Errorf("left %d", total)
	}
	if err := c.RemoveID("t3"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveID("t3"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove err = %v", err)
	}
}

func TestCursorSnapshotIsolation(t *testing.T) {
	c := seedTasks(t)
	cur, err := c.Find(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Remove(nil)
	if cur.Len() != 4 {
		t.Errorf("cursor len = %d", cur.Len())
	}
	count := 0
	for d := cur.Next(); d != nil; d = cur.Next() {
		count++
	}
	if count != 4 {
		t.Errorf("iterated %d", count)
	}
	cur.Rewind()
	if len(cur.All()) != 4 {
		t.Error("rewind failed")
	}
}

func TestCollectionStatsAndStoreStats(t *testing.T) {
	s := MustOpenMemory()
	c := s.C("a")
	c.Insert(doc(`{"v": "abcdef"}`))
	c.EnsureIndex("v")
	st := c.Stats()
	if st.Documents != 1 || st.Bytes <= 0 || len(st.Indexes) != 1 {
		t.Errorf("stats = %+v", st)
	}
	s.C("b").Insert(doc(`{"v": 1}`))
	ss := s.Stats()
	if ss.Collections != 2 || ss.Documents != 2 || ss.Bytes <= 0 {
		t.Errorf("store stats = %+v", ss)
	}
	c.Remove(nil)
	if got := c.Stats(); got.Bytes != 0 || got.Documents != 0 {
		t.Errorf("after remove: %+v", got)
	}
}

func TestStoreCollectionLifecycle(t *testing.T) {
	s := MustOpenMemory()
	s.C("one")
	s.C("two")
	names := s.Collections()
	if len(names) != 2 || names[0] != "one" || names[1] != "two" {
		t.Errorf("names = %v", names)
	}
	s.DropCollection("one")
	if len(s.Collections()) != 1 {
		t.Error("drop failed")
	}
	if s.C("two") != s.C("two") {
		t.Error("C not idempotent")
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

func TestProfilerRecordsQueries(t *testing.T) {
	s := MustOpenMemory()
	c := s.C("x")
	c.Insert(doc(`{"n": 1}`))
	c.FindAll(nil, nil)
	ops, records := s.Profiler().Totals()
	if ops < 2 {
		t.Errorf("ops = %d", ops)
	}
	if records < 1 {
		t.Errorf("records = %d", records)
	}
	entries := s.Profiler().Entries()
	if len(entries) == 0 {
		t.Fatal("no profile entries")
	}
	found := false
	for _, e := range entries {
		if e.Op == "find" && e.Collection == "x" {
			found = true
		}
	}
	if !found {
		t.Error("find not profiled")
	}
}

func TestProfilerRingWraps(t *testing.T) {
	p := NewProfiler(4)
	for i := 0; i < 10; i++ {
		p.Record(ProfileEntry{Op: fmt.Sprintf("op%d", i)})
	}
	entries := p.Entries()
	if len(entries) != 4 {
		t.Fatalf("len = %d", len(entries))
	}
	if entries[0].Op != "op6" || entries[3].Op != "op9" {
		t.Errorf("ring order: %v ... %v", entries[0].Op, entries[3].Op)
	}
	if NewProfiler(0) == nil {
		t.Error("NewProfiler(0) nil")
	}
}
