package datastore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"matproj/internal/document"
	"matproj/internal/obs"
)

// TestInstrumentedStoreConcurrentStress hammers an instrumented store
// with concurrent writers and readers while metric snapshots are taken
// in parallel — the observability layer must never lose counts, corrupt
// a histogram, or trip the race detector. This is the datastore half of
// the obs stress pair (the registry-only half lives in internal/obs).
func TestInstrumentedStoreConcurrentStress(t *testing.T) {
	const (
		writers = 6
		readers = 4
		perG    = 120
	)
	store := MustOpenMemory()
	defer store.Close()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(time.Nanosecond, 64) // everything is "slow": stress the ring too
	store.Observe(reg, tr)

	c := store.C("stress")
	c.EnsureIndex("shard")

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perG; i++ {
				doc := document.D{
					"shard": int64(w),
					"seq":   int64(i),
					"body":  fmt.Sprintf("w%d-%d", w, i),
				}
				if _, err := c.Insert(doc); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if i%3 == 0 {
					if _, err := c.UpdateOne(
						document.D{"shard": int64(w), "seq": int64(i)},
						document.D{"$set": document.D{"touched": true}}); err != nil {
						t.Errorf("update: %v", err)
						return
					}
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.FindAll(document.D{"shard": int64(r % writers)}, nil); err != nil {
					t.Errorf("find: %v", err)
					return
				}
				// Concurrent snapshot + render must not disturb writers.
				snap := reg.Snapshot()
				if h, ok := snap.Histograms["datastore.insert_ms"]; ok {
					_ = h.Render("ms", 40)
					_ = h.Quantile(50)
				}
				_ = tr.SlowOps()
			}
		}(r)
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	snap := reg.Snapshot()
	wantInserts := uint64(writers * perG)
	if got := snap.Counters["datastore.stress.insert"]; got != wantInserts {
		t.Fatalf("insert counter: got %d, want %d", got, wantInserts)
	}
	wantUpdates := uint64(writers * ((perG + 2) / 3))
	if got := snap.Counters["datastore.stress.update"]; got != wantUpdates {
		t.Fatalf("update counter: got %d, want %d", got, wantUpdates)
	}
	h, ok := snap.Histograms["datastore.insert_ms"]
	if !ok {
		t.Fatal("no insert latency histogram")
	}
	if h.Count != wantInserts {
		t.Fatalf("insert histogram count: got %d, want %d", h.Count, wantInserts)
	}
	var bucketSum uint64
	for _, n := range h.Counts {
		bucketSum += n
	}
	if bucketSum != h.Count {
		t.Fatalf("histogram buckets sum to %d, count says %d", bucketSum, h.Count)
	}
	n, err := c.Count(nil)
	if err != nil || n != writers*perG {
		t.Fatalf("collection count: got %d (err %v), want %d", n, err, writers*perG)
	}
	total, slow := tr.Counts()
	if total == 0 || slow == 0 {
		t.Fatalf("tracer saw no ops (total %d, slow %d)", total, slow)
	}
	if ops := tr.SlowOps(); len(ops) == 0 || len(ops) > 64 {
		t.Fatalf("slow ring has %d entries, want 1..64", len(ops))
	}
}
