package datastore

import (
	"fmt"
	"math/rand"
	"testing"

	"matproj/internal/document"
)

// The scan-vs-index oracle: for every randomly generated corpus, index
// set, filter, and find-option combination, the planner-chosen execution
// must return exactly the documents — same ids, same order, same
// projected shapes — as a twin collection holding identical documents
// and no indexes at all (whose plans are always naive full scans). The
// planner only ever has to be a superset oracle (every path re-verifies
// against the full filter), so any divergence here is a real planner or
// index bug, not an estimation inaccuracy.
//
// TestOracleScanVsIndex runs >=1200 seeded corpus/query pairs; check.sh
// additionally runs it under -race (readers rebuilding the lazy sorted
// key list share the collection read lock).

// oracleGen generates corpora, filters, and options from one seeded rng.
type oracleGen struct {
	rng *rand.Rand
}

// value draws a random document value mixing the types the encoder and
// comparator have to agree on.
func (g *oracleGen) value(depth int) any {
	switch g.rng.Intn(12) {
	case 0:
		return nil
	case 1:
		return int64(g.rng.Intn(11) - 5)
	case 2:
		return float64(g.rng.Intn(11)-5) + 0.5
	case 3:
		// Exact collisions with the int64 case above (3 vs 3.0).
		return float64(g.rng.Intn(11) - 5)
	case 4:
		// Beyond 2^53: float64 rounding territory.
		return int64(1<<53) + int64(g.rng.Intn(3))
	case 5:
		return 9.007199254740992e15 // float64(1<<53)
	case 6, 7:
		return string(rune('a' + g.rng.Intn(4)))
	case 8:
		return g.rng.Intn(2) == 0
	case 9:
		if depth > 0 {
			n := g.rng.Intn(3)
			arr := make([]any, n)
			for i := range arr {
				arr[i] = g.value(depth - 1)
			}
			return arr
		}
		return int64(g.rng.Intn(5))
	case 10:
		if depth > 0 {
			return document.D{"x": g.value(depth - 1)}
		}
		return "z"
	default:
		return int64(g.rng.Intn(200))
	}
}

var oraclePaths = []string{"a", "b", "c", "s", "m.x", "tags"}

// doc draws one random document: each field present with probability
// ~3/4, arrays concentrated on "tags", a nested doc under "m".
func (g *oracleGen) doc(i int) document.D {
	d := document.D{"_id": fmt.Sprintf("d%04d", i)}
	for _, f := range []string{"a", "b", "c", "s"} {
		if g.rng.Intn(4) > 0 {
			d[f] = g.value(1)
		}
	}
	if g.rng.Intn(4) > 0 {
		d["m"] = document.D{"x": g.value(1)}
	}
	if g.rng.Intn(3) > 0 {
		n := g.rng.Intn(4)
		tags := make([]any, n)
		for j := range tags {
			tags[j] = string(rune('p' + g.rng.Intn(4)))
		}
		d["tags"] = tags
	}
	return document.NormalizeDoc(d)
}

// filter draws a random conjunctive filter over 1-3 paths.
func (g *oracleGen) filter() document.D {
	f := document.D{}
	n := 1 + g.rng.Intn(3)
	perm := g.rng.Perm(len(oraclePaths))
	for _, pi := range perm[:n] {
		p := oraclePaths[pi]
		switch g.rng.Intn(5) {
		case 0: // equality
			f[p] = g.value(1)
		case 1: // one- or two-sided range
			cond := document.D{}
			ops := []string{"$gt", "$gte", "$lt", "$lte"}
			cond[ops[g.rng.Intn(2)]] = g.value(0)
			if g.rng.Intn(2) == 0 {
				cond[ops[2+g.rng.Intn(2)]] = g.value(0)
			}
			f[p] = cond
		case 2: // $in
			k := 1 + g.rng.Intn(4)
			vals := make([]any, k)
			for i := range vals {
				vals[i] = g.value(0)
			}
			f[p] = document.D{"$in": vals}
		case 3: // containment on the array-bearing path
			if p == "tags" {
				f[p] = document.D{"$all": []any{string(rune('p' + g.rng.Intn(4)))}}
			} else {
				f[p] = g.value(0)
			}
		default: // equality against a composite value
			f[p] = g.value(2)
		}
	}
	return document.NormalizeDoc(f)
}

// opts draws random find options; hintable lists the subject collection's
// index names (a random one is forced as a Hint ~1/6 of the time).
func (g *oracleGen) opts(hintable []string) *FindOpts {
	if g.rng.Intn(4) == 0 {
		return nil
	}
	o := &FindOpts{}
	if g.rng.Intn(2) == 0 {
		n := 1 + g.rng.Intn(2)
		perm := g.rng.Perm(len(oraclePaths))
		for _, pi := range perm[:n] {
			p := oraclePaths[pi]
			if g.rng.Intn(2) == 0 {
				p = "-" + p
			}
			o.Sort = append(o.Sort, p)
		}
	}
	if g.rng.Intn(3) == 0 {
		o.Skip = g.rng.Intn(6)
	}
	if g.rng.Intn(3) == 0 {
		o.Limit = 1 + g.rng.Intn(10)
	}
	if g.rng.Intn(4) == 0 {
		o.Projection = document.D{"a": int64(1), "m.x": int64(1)}
	}
	if len(hintable) > 0 && g.rng.Intn(6) == 0 {
		o.Hint = hintable[g.rng.Intn(len(hintable))]
	}
	return o
}

// oracleIndexSets is the menu of index layouts a corpus draws from
// (including the empty layout: subject == truth except for planning).
var oracleIndexSets = [][][]string{
	{},
	{{"a"}},
	{{"a", "b"}},
	{{"s"}, {"a"}},
	{{"m.x"}},
	{{"tags"}},
	{{"a", "b"}, {"b"}, {"s"}},
	{{"c", "s"}},
}

func TestOracleScanVsIndex(t *testing.T) {
	const (
		corpora       = 40
		docsPerCorpus = 120
		queriesPer    = 30 // 40 × 30 = 1200 seeded pairs
	)
	for ci := 0; ci < corpora; ci++ {
		g := &oracleGen{rng: rand.New(rand.NewSource(int64(1000 + ci)))}
		subject := MustOpenMemory().C("subject")
		truth := MustOpenMemory().C("truth")
		for i := 0; i < docsPerCorpus; i++ {
			d := g.doc(i)
			if _, err := subject.Insert(d.Copy()); err != nil {
				t.Fatal(err)
			}
			if _, err := truth.Insert(d); err != nil {
				t.Fatal(err)
			}
		}
		// Random index layout, plus hash indexes half the time.
		layout := oracleIndexSets[g.rng.Intn(len(oracleIndexSets))]
		for _, paths := range layout {
			subject.EnsureOrderedIndex(paths...)
		}
		if g.rng.Intn(2) == 0 {
			subject.EnsureIndex(oraclePaths[g.rng.Intn(4)])
		}
		if g.rng.Intn(3) == 0 {
			subject.EnsureIndex("tags")
		}
		hintable := subject.OrderedIndexes()

		for qi := 0; qi < queriesPer; qi++ {
			filter := g.filter()
			opts := g.opts(hintable)
			var truthOpts *FindOpts
			if opts != nil {
				cp := *opts
				cp.Hint = "" // truth has no indexes to hint
				truthOpts = &cp
			}
			got, err := subject.FindAll(filter, opts)
			if err != nil {
				t.Fatalf("corpus %d query %d: subject: %v (filter %v)", ci, qi, err, filter)
			}
			want, err := truth.FindAll(filter, truthOpts)
			if err != nil {
				t.Fatalf("corpus %d query %d: truth: %v (filter %v)", ci, qi, err, filter)
			}
			describe := func() string {
				plan, _ := subject.Explain(filter, opts)
				return fmt.Sprintf("corpus %d query %d\nfilter: %v\nopts: %+v\nplan: %v", ci, qi, filter, opts, plan)
			}
			if len(got) != len(want) {
				t.Fatalf("%s\nsubject %d docs, truth %d", describe(), len(got), len(want))
			}
			for i := range got {
				if got[i]["_id"] != want[i]["_id"] {
					t.Fatalf("%s\nid order diverges at %d: subject %v, truth %v", describe(), i, got[i]["_id"], want[i]["_id"])
				}
				if !document.Equal(map[string]any(got[i]), map[string]any(want[i])) {
					t.Fatalf("%s\ndoc %d differs:\nsubject %v\ntruth   %v", describe(), i, got[i], want[i])
				}
			}
			ng, err := subject.Count(filter)
			if err != nil {
				t.Fatalf("%s\nsubject count: %v", describe(), err)
			}
			nw, err := truth.Count(filter)
			if err != nil {
				t.Fatalf("%s\ntruth count: %v", describe(), err)
			}
			if ng != nw {
				t.Fatalf("%s\nsubject count %d, truth count %d", describe(), ng, nw)
			}
		}
	}
}

// TestOracleSurvivesMutations re-runs a smaller oracle sweep after
// updates and removes, so index maintenance (add/remove/replace paths)
// is covered, not just the backfill.
func TestOracleSurvivesMutations(t *testing.T) {
	for ci := 0; ci < 8; ci++ {
		g := &oracleGen{rng: rand.New(rand.NewSource(int64(7000 + ci)))}
		subject := MustOpenMemory().C("subject")
		truth := MustOpenMemory().C("truth")
		for i := 0; i < 80; i++ {
			d := g.doc(i)
			subject.Insert(d.Copy())
			truth.Insert(d)
		}
		subject.EnsureOrderedIndex("a", "b")
		subject.EnsureOrderedIndex("tags")
		subject.EnsureIndex("s")

		// Random churn applied identically to both sides.
		for i := 0; i < 30; i++ {
			id := fmt.Sprintf("d%04d", g.rng.Intn(80))
			switch g.rng.Intn(3) {
			case 0:
				upd := document.D{"$set": document.D{"a": g.value(1), "b": g.value(0)}}
				if _, err := subject.UpdateMany(document.D{"_id": id}, upd); err != nil {
					t.Fatal(err)
				}
				if _, err := truth.UpdateMany(document.D{"_id": id}, upd); err != nil {
					t.Fatal(err)
				}
			case 1:
				if _, err := subject.Remove(document.D{"_id": id}); err != nil {
					t.Fatal(err)
				}
				if _, err := truth.Remove(document.D{"_id": id}); err != nil {
					t.Fatal(err)
				}
			default:
				d := g.doc(1000 + i)
				subject.Insert(d.Copy())
				truth.Insert(d)
			}
		}

		for qi := 0; qi < 20; qi++ {
			filter := g.filter()
			opts := g.opts(nil)
			got, err := subject.FindAll(filter, opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := truth.FindAll(filter, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("corpus %d query %d (filter %v, opts %+v): subject %d docs, truth %d",
					ci, qi, filter, opts, len(got), len(want))
			}
			for i := range got {
				if got[i]["_id"] != want[i]["_id"] {
					t.Fatalf("corpus %d query %d (filter %v, opts %+v): id order diverges at %d",
						ci, qi, filter, opts, i)
				}
			}
		}
	}
}
