package datastore

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"matproj/internal/document"
)

// sign normalizes a comparison result to -1/0/+1.
func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	}
	return 0
}

// keyencValues is a cross-section of the value space the encoder must
// order: every type rank, numeric edge cases around 2^53/2^63, escape-
// sensitive strings, and nested composites.
func keyencValues() []any {
	return []any{
		nil,
		int64(math.MinInt64), int64(-1), int64(0), int64(1), int64(3),
		int64(1 << 53), int64(1<<53) + 1, int64(1 << 60), int64(math.MaxInt64),
		float64(-1e300), -2.5, 0.0, 0.5, 3.0, 3.5, float64(1 << 53),
		9.3e18, 1e300, math.Inf(-1), math.Inf(1),
		-9.223372036854775808e18, 9.223372036854775808e18,
		"", "a", "a\x00b", "a\x00\xffc", "abc", "b",
		document.D{}, document.D{"a": int64(1)}, document.D{"a": int64(2)}, document.D{"b": int64(1)},
		[]any{}, []any{int64(1)}, []any{int64(1), "x"}, []any{"Li", "O"},
		false, true,
	}
}

func TestKeyEncodingOrderMatchesCompare(t *testing.T) {
	vals := keyencValues()
	for i, a := range vals {
		for j, b := range vals {
			ea, eb := encodeKey(nil, a), encodeKey(nil, b)
			if got, want := sign(bytes.Compare(ea, eb)), sign(document.Compare(a, b)); got != want {
				t.Errorf("order(%v [%d], %v [%d]): bytes %d, Compare %d", a, i, b, j, got, want)
			}
		}
	}
}

func TestKeyEncodingEqualValuesShareBytes(t *testing.T) {
	pairs := [][2]any{
		{int64(3), 3.0},
		{int64(0), 0.0},
		{int64(1 << 60), float64(1 << 60)},
		{int64(math.MinInt64), -9.223372036854775808e18},
		{document.D{"a": int64(3)}, document.D{"a": 3.0}},
		{[]any{int64(3)}, []any{3.0}},
	}
	for _, p := range pairs {
		if document.Compare(p[0], p[1]) != 0 {
			t.Fatalf("premise: Compare(%v, %v) != 0", p[0], p[1])
		}
		if !bytes.Equal(encodeKey(nil, p[0]), encodeKey(nil, p[1])) {
			t.Errorf("Compare-equal values %v and %v encode differently", p[0], p[1])
		}
	}
}

func TestKeyEncodingRoundTrip(t *testing.T) {
	for _, v := range keyencValues() {
		enc := encodeKey(nil, v)
		dec, rest, err := decodeKey(enc)
		if err != nil {
			t.Errorf("decode(%v): %v", v, err)
			continue
		}
		if len(rest) != 0 {
			t.Errorf("decode(%v): %d trailing bytes", v, len(rest))
		}
		if document.Compare(dec, v) != 0 {
			t.Errorf("round trip %v -> %v: Compare != 0", v, dec)
		}
	}
}

func TestKeyEncodingPrefixFree(t *testing.T) {
	// No encoding may be a strict prefix of another: compound keys
	// concatenate components, so a prefix collision would corrupt tuple
	// order.
	vals := keyencValues()
	for i, a := range vals {
		for j, b := range vals {
			if document.Compare(a, b) == 0 {
				continue
			}
			ea, eb := encodeKey(nil, a), encodeKey(nil, b)
			if len(ea) < len(eb) && bytes.HasPrefix(eb, ea) {
				t.Errorf("enc(%v [%d]) is a prefix of enc(%v [%d])", a, i, b, j)
			}
		}
	}
}

// FuzzKeyEncodingOrder fuzzes the core planner invariant: bytewise order
// of encoded keys equals document.Compare order, and decode(encode(v))
// Compares equal to v. Values arrive as JSON (the only way user data
// enters the store), so every reachable shape — mixed int64/float64,
// strings with embedded zero bytes via escapes, nested docs/arrays,
// nulls, bools — is in scope. NaN cannot appear in JSON, matching the
// encoding's documented NaN caveat.
func FuzzKeyEncodingOrder(f *testing.F) {
	seeds := [][2]string{
		{`null`, `0`},
		{`3`, `3.0`},
		{`3.5`, `4`},
		{`9007199254740993`, `9007199254740992.0`},
		{`9223372036854775807`, `9.3e18`},
		{`-9223372036854775808`, `-9.3e18`},
		{`"a"`, `"a\u0000b"`},
		{`""`, `"b"`},
		{`{"a": 1}`, `{"a": 2}`},
		{`{"a": 1}`, `{"b": 1}`},
		{`[1, "x"]`, `[1]`},
		{`["Li", "O"]`, `["Li", "O", "Fe"]`},
		{`true`, `false`},
		{`{"a": [1, {"b": null}]}`, `{"a": [1, {"b": 0}]}`},
		{`1e300`, `-1e300`},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, aJSON, bJSON string) {
		var rawA, rawB any
		da := json.NewDecoder(bytes.NewReader([]byte(aJSON)))
		da.UseNumber()
		if err := da.Decode(&rawA); err != nil {
			t.Skip()
		}
		db := json.NewDecoder(bytes.NewReader([]byte(bJSON)))
		db.UseNumber()
		if err := db.Decode(&rawB); err != nil {
			t.Skip()
		}
		a := document.Normalize(rawA)
		b := document.Normalize(rawB)

		ea, eb := encodeKey(nil, a), encodeKey(nil, b)
		if got, want := sign(bytes.Compare(ea, eb)), sign(document.Compare(a, b)); got != want {
			t.Fatalf("order(%s, %s): bytes %d, Compare %d", aJSON, bJSON, got, want)
		}
		for _, v := range []any{a, b} {
			enc := encodeKey(nil, v)
			dec, rest, err := decodeKey(enc)
			if err != nil {
				t.Fatalf("decode(enc(%v)): %v", v, err)
			}
			if len(rest) != 0 {
				t.Fatalf("decode(enc(%v)): trailing bytes", v)
			}
			if document.Compare(dec, v) != 0 {
				t.Fatalf("round trip %v -> %v: Compare != 0", v, dec)
			}
		}
	})
}
