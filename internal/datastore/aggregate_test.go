package datastore

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"matproj/internal/document"
)

func seedAgg(t *testing.T) *Collection {
	t.Helper()
	c := MustOpenMemory().C("materials")
	rows := []string{
		`{"_id": "m1", "formula": "LiFePO4", "elements": ["Li","Fe","P","O"], "band_gap": 3.4, "e_per_atom": -1.7, "nsites": 7}`,
		`{"_id": "m2", "formula": "LiCoO2",  "elements": ["Li","Co","O"],     "band_gap": 2.1, "e_per_atom": -1.9, "nsites": 4}`,
		`{"_id": "m3", "formula": "Fe2O3",   "elements": ["Fe","O"],          "band_gap": 2.0, "e_per_atom": -1.6, "nsites": 5}`,
		`{"_id": "m4", "formula": "Fe3O4",   "elements": ["Fe","O"],          "band_gap": 0.1, "e_per_atom": -1.5, "nsites": 7}`,
		`{"_id": "m5", "formula": "NaCl",    "elements": ["Cl","Na"],         "band_gap": 5.0, "e_per_atom": -1.4, "nsites": 2}`,
	}
	for _, r := range rows {
		if _, err := c.Insert(doc(r)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestAggregateMatchSortLimit(t *testing.T) {
	c := seedAgg(t)
	out, err := c.Aggregate([]document.D{
		{"$match": doc(`{"band_gap": {"$gte": 2.0}}`)},
		{"$sort": doc(`{"band_gap": -1}`)},
		{"$limit": int64(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0]["_id"] != "m5" || out[1]["_id"] != "m1" {
		t.Errorf("out = %v", out)
	}
}

func TestAggregateGroupAccumulators(t *testing.T) {
	c := seedAgg(t)
	out, err := c.Aggregate([]document.D{
		{"$unwind": "$elements"},
		{"$group": doc(`{
			"_id": "$elements",
			"n": {"$sum": 1},
			"avg_gap": {"$avg": "$band_gap"},
			"best_e": {"$min": "$e_per_atom"},
			"worst_e": {"$max": "$e_per_atom"},
			"formulas": {"$push": "$formula"}
		}`)},
		{"$sort": doc(`{"_id": 1}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Elements: Cl, Co, Fe, Li, Na, O, P -> 7 groups.
	if len(out) != 7 {
		t.Fatalf("groups = %d: %v", len(out), out)
	}
	var fe document.D
	for _, g := range out {
		if g["_id"] == "Fe" {
			fe = g
		}
	}
	if fe == nil {
		t.Fatal("no Fe group")
	}
	if fe["n"] != int64(3) {
		t.Errorf("Fe n = %v", fe["n"])
	}
	if v, _ := fe.GetFloat("avg_gap"); math.Abs(v-(3.4+2.0+0.1)/3) > 1e-9 {
		t.Errorf("Fe avg_gap = %v", v)
	}
	if v, _ := fe.GetFloat("best_e"); v != -1.7 {
		t.Errorf("Fe best_e = %v", v)
	}
	if v, _ := fe.GetFloat("worst_e"); v != -1.5 {
		t.Errorf("Fe worst_e = %v", v)
	}
	if len(fe.GetArray("formulas")) != 3 {
		t.Errorf("Fe formulas = %v", fe.GetArray("formulas"))
	}
}

func TestAggregateGroupConstantKeyAndAddToSet(t *testing.T) {
	c := seedAgg(t)
	out, err := c.Aggregate([]document.D{
		{"$unwind": "$elements"},
		{"$group": doc(`{"_id": null, "all_elements": {"$addToSet": "$elements"}, "rows": {"$count": {}}}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	if got := len(out[0].GetArray("all_elements")); got != 7 {
		t.Errorf("distinct elements = %d", got)
	}
	if out[0]["rows"] != int64(13) { // total element mentions: 4+3+2+2+2
		t.Errorf("rows = %v", out[0]["rows"])
	}
}

func TestAggregateProjectComputed(t *testing.T) {
	c := seedAgg(t)
	out, err := c.Aggregate([]document.D{
		{"$match": doc(`{"_id": "m1"}`)},
		{"$project": doc(`{
			"formula": 1,
			"gap_mev": {"$multiply": ["$band_gap", 1000]},
			"total_e": {"$multiply": ["$e_per_atom", "$nsites"]},
			"label": {"$concat": ["mat:", "$formula"]},
			"nel": {"$size": "$elements"},
			"absdiff": {"$abs": {"$subtract": ["$band_gap", 5]}}
		}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	d0 := out[0]
	if d0["formula"] != "LiFePO4" || d0["_id"] != "m1" {
		t.Errorf("doc = %v", d0)
	}
	if v, _ := d0.GetFloat("gap_mev"); v != 3400 {
		t.Errorf("gap_mev = %v", v)
	}
	if v, _ := d0.GetFloat("total_e"); math.Abs(v-(-1.7*7)) > 1e-9 {
		t.Errorf("total_e = %v", v)
	}
	if d0["label"] != "mat:LiFePO4" {
		t.Errorf("label = %v", d0["label"])
	}
	if d0["nel"] != int64(4) {
		t.Errorf("nel = %v", d0["nel"])
	}
	if v, _ := d0.GetFloat("absdiff"); math.Abs(v-1.6) > 1e-9 {
		t.Errorf("absdiff = %v", v)
	}
}

func TestAggregateSkipCountFirstLast(t *testing.T) {
	c := seedAgg(t)
	out, err := c.Aggregate([]document.D{
		{"$sort": doc(`{"band_gap": 1}`)},
		{"$skip": int64(1)},
		{"$count": "remaining"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0]["remaining"] != int64(4) {
		t.Errorf("remaining = %v", out[0]["remaining"])
	}
	fl, err := c.Aggregate([]document.D{
		{"$sort": doc(`{"band_gap": 1}`)},
		{"$group": doc(`{"_id": null, "lowest": {"$first": "$formula"}, "highest": {"$last": "$formula"}}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fl[0]["lowest"] != "Fe3O4" || fl[0]["highest"] != "NaCl" {
		t.Errorf("first/last = %v", fl[0])
	}
}

func TestAggregateUnwindBehaviour(t *testing.T) {
	c := MustOpenMemory().C("x")
	c.Insert(doc(`{"_id": "a", "tags": ["p", "q"]}`))
	c.Insert(doc(`{"_id": "b", "tags": "scalar"}`))
	c.Insert(doc(`{"_id": "c"}`)) // missing field drops
	out, err := c.Aggregate([]document.D{{"$unwind": "$tags"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 { // a×2 + b×1
		t.Fatalf("out = %v", out)
	}
}

func TestAggregateHeadMatchUsesIndexPath(t *testing.T) {
	c := seedAgg(t)
	c.EnsureIndex("elements")
	out, err := c.Aggregate([]document.D{
		{"$match": doc(`{"elements": "Fe"}`)},
		{"$count": "n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0]["n"] != int64(3) {
		t.Errorf("n = %v", out[0]["n"])
	}
}

func TestAggregateErrors(t *testing.T) {
	c := seedAgg(t)
	bad := [][]document.D{
		{{"$bogus": doc(`{}`)}},
		{{"$match": doc(`{}`), "$sort": doc(`{}`)}}, // two ops in one stage
		{{"$match": "notadoc"}},
		{{"$sort": doc(`{"x": 2}`)}},
		{{"$limit": "x"}},
		{{"$limit": int64(-1)}},
		{{"$skip": "x"}},
		{{"$unwind": 3}},
		{{"$unwind": "noDollar"}},
		{{"$count": int64(3)}},
		{{"$group": doc(`{"n": {"$sum": 1}}`)}}, // missing _id
		{{"$group": doc(`{"_id": null, "n": {"$bogus": 1}}`)}},
		{{"$group": doc(`{"_id": null, "n": 3}`)}},
		{{"$project": doc(`{"x": {"$divide": ["$band_gap", 0]}}`)}},
		{{"$project": doc(`{"x": {"$divide": ["$band_gap"]}}`)}},
		{{"$project": doc(`{"x": {"$bogus": 1}}`)}},
		{{"$project": doc(`{"x": {"$size": "$formula"}}`)}},
		{{"$project": doc(`{"x": {"$concat": ["$band_gap"]}}`)}},
		{{"$project": doc(`{"x": "plainstring"}`)}},
		{{"$project": doc(`{"x": {"$add": ["$formula", 1]}}`)}},
	}
	for i, p := range bad {
		if _, err := c.Aggregate(p); err == nil {
			t.Errorf("pipeline %d accepted: %v", i, p)
		}
	}
}

func TestAggregateLiteralAndSumFloat(t *testing.T) {
	c := seedAgg(t)
	out, err := c.Aggregate([]document.D{
		{"$group": doc(`{"_id": null, "total_gap": {"$sum": "$band_gap"}}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := out[0].GetFloat("total_gap"); math.Abs(v-12.6) > 1e-9 {
		t.Errorf("total_gap = %v", v)
	}
	lit, err := c.Aggregate([]document.D{
		{"$limit": int64(1)},
		{"$project": document.D{"tag": document.D{"$literal": "fixed"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lit[0]["tag"] != "fixed" {
		t.Errorf("literal = %v", lit[0])
	}
}

// The paper's canonical materials-build query expressed as an aggregation:
// group tasks by structure and keep the best energy.
func TestAggregateBestTaskPerMaterial(t *testing.T) {
	c := MustOpenMemory().C("tasks")
	rows := []string{
		`{"sid": "s1", "energy": -7.0}`,
		`{"sid": "s1", "energy": -9.0}`,
		`{"sid": "s2", "energy": -3.0}`,
	}
	for _, r := range rows {
		c.Insert(doc(r))
	}
	out, err := c.Aggregate([]document.D{
		{"$group": doc(`{"_id": "$sid", "best": {"$min": "$energy"}}`)},
		{"$sort": doc(`{"_id": 1}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0]["best"] != -9.0 || out[1]["best"] != -3.0 {
		t.Errorf("out = %v", out)
	}
}

func TestQuickGroupSumEqualsCount(t *testing.T) {
	f := func(groups []uint8) bool {
		c := MustOpenMemory().C("q")
		for _, g := range groups {
			c.Insert(document.D{"g": fmt.Sprintf("g%d", g%5)})
		}
		out, err := c.Aggregate([]document.D{
			{"$group": document.D{"_id": "$g", "n": document.D{"$sum": int64(1)}}},
		})
		if err != nil {
			return false
		}
		var total int64
		for _, row := range out {
			n, _ := row.GetInt("n")
			total += n
		}
		return total == int64(len(groups))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMatchThenCountAgreesWithCount(t *testing.T) {
	f := func(vals []int16, pivot int16) bool {
		c := MustOpenMemory().C("q")
		for _, v := range vals {
			c.Insert(document.D{"v": int64(v)})
		}
		filter := document.D{"v": document.D{"$gte": int64(pivot)}}
		want, err := c.Count(filter)
		if err != nil {
			return false
		}
		out, err := c.Aggregate([]document.D{
			{"$match": filter},
			{"$count": "n"},
		})
		if err != nil {
			return false
		}
		if len(out) == 0 {
			return want == 0
		}
		got, _ := out[0].GetInt("n")
		return int(got) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
