package datastore

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"

	"matproj/internal/document"
	"matproj/internal/query"
)

// index is a secondary index over one dotted path. It maintains both a
// hash map (value key -> ids) for equality/contains lookups and a sorted
// key list for range scans. Array values are multikey: each element is
// indexed, matching MongoDB.
type index struct {
	path string
	// buckets maps a canonical key string to the set of doc ids holding
	// that value (or containing it, for arrays).
	buckets map[string]*bucket
	// sorted holds bucket keys in document.Compare order of their sample
	// values, rebuilt lazily for range scans. The lazy rebuild happens
	// under the collection's *shared* lock, so concurrent readers
	// serialize on sortMu (writers hold the exclusive lock and never
	// race it).
	sortMu sync.Mutex
	sorted []string
	dirty  bool
	// multikey is set once an array value is indexed and never cleared
	// (writers hold the collection's exclusive lock; readers its shared
	// lock). A multikey path makes two-sided ranges unsound as a single
	// sorted interval — see rangeLookup.
	multikey bool
}

type bucket struct {
	value any
	ids   map[string]struct{}
}

// canonicalKey renders an indexable value to a map key. Numbers collapse
// across int64/float64 exactly when they are numerically equal: 3 and 3.0
// share a bucket, but integers beyond float64's exact range (|x| > 2^53)
// keep their own buckets rather than collapsing through a lossy float64
// conversion.
func canonicalKey(v any) string {
	switch x := v.(type) {
	case nil:
		return "z:null"
	case bool:
		return fmt.Sprintf("b:%v", x)
	case int64:
		return "i:" + strconv.FormatInt(x, 10)
	case float64:
		// Integral floats exactly representable as int64 use the integer
		// form so they collapse with their int64 equals; everything else
		// (fractions, huge magnitudes, ±Inf, NaN) keys on the float form.
		if x == math.Trunc(x) && x >= -9.223372036854775808e18 && x < 9.223372036854775808e18 {
			return "i:" + strconv.FormatInt(int64(x), 10)
		}
		return fmt.Sprintf("n:%g", x)
	case string:
		return "s:" + x
	default:
		// Documents/arrays index by their JSON form.
		b, err := document.D{"v": v}.ToJSON()
		if err != nil {
			return fmt.Sprintf("x:%v", v)
		}
		return "j:" + string(b)
	}
}

func newIndex(path string) *index {
	return &index{path: path, buckets: make(map[string]*bucket)}
}

// keysFor lists the index keys a document contributes for this path.
func (ix *index) keysFor(d document.D) []any {
	v, ok := d.Get(ix.path)
	if !ok {
		return nil
	}
	if arr, isArr := v.([]any); isArr {
		// Elements for multikey lookups, plus the whole array so an
		// equality filter on the full array value also hits the index
		// (without this, {path: [1,2]} planned through the index found
		// nothing even when documents matched).
		ix.multikey = true
		out := make([]any, 0, len(arr)+1)
		out = append(out, arr...)
		out = append(out, v)
		return out
	}
	return []any{v}
}

func (ix *index) add(id string, d document.D) {
	for _, v := range ix.keysFor(d) {
		k := canonicalKey(v)
		b, ok := ix.buckets[k]
		if !ok {
			b = &bucket{value: v, ids: make(map[string]struct{})}
			ix.buckets[k] = b
			ix.dirty = true
		}
		b.ids[id] = struct{}{}
	}
}

func (ix *index) remove(id string, d document.D) {
	for _, v := range ix.keysFor(d) {
		k := canonicalKey(v)
		if b, ok := ix.buckets[k]; ok {
			delete(b.ids, id)
			if len(b.ids) == 0 {
				delete(ix.buckets, k)
				ix.dirty = true
			}
		}
	}
}

// lookup returns ids of documents whose indexed path equals (or, for
// multikey, contains) v.
func (ix *index) lookup(v any) map[string]struct{} {
	b, ok := ix.buckets[canonicalKey(v)]
	if !ok {
		return nil
	}
	return b.ids
}

// rangeLookup returns ids whose indexed value lies within the constraint
// bounds.
func (ix *index) rangeLookup(rc query.RangeConstraint) map[string]struct{} {
	ix.sortMu.Lock()
	if ix.dirty {
		ix.sorted = ix.sorted[:0]
		for k := range ix.buckets {
			ix.sorted = append(ix.sorted, k)
		}
		sort.Slice(ix.sorted, func(i, j int) bool {
			return document.Compare(ix.buckets[ix.sorted[i]].value, ix.buckets[ix.sorted[j]].value) < 0
		})
		ix.dirty = false
	}
	sorted := ix.sorted
	ix.sortMu.Unlock()
	// On a multikey path a two-sided range cannot be applied bucket-wise:
	// cmpPred tests each array element independently, so one element may
	// satisfy the min bound while another satisfies the max — yet no
	// single bucket value satisfies both. Apply only the min bound there
	// (a superset; callers re-verify against the full filter).
	useMax := rc.HasMax && !(ix.multikey && rc.HasMin)
	out := make(map[string]struct{})
	for _, k := range sorted {
		b := ix.buckets[k]
		if rc.HasMin {
			c := document.Compare(b.value, rc.Min)
			if c < 0 || (c == 0 && rc.MinOpen) {
				continue
			}
		}
		if useMax {
			c := document.Compare(b.value, rc.Max)
			if c > 0 || (c == 0 && rc.MaxOpen) {
				break
			}
		}
		for id := range b.ids {
			out[id] = struct{}{}
		}
	}
	return out
}

// EnsureIndex creates a secondary index on a dotted path, backfilling from
// existing documents. Creating an existing index is a no-op. The
// definition is journaled so durable stores rebuild it on replay and
// replicas receive it through the log.
func (c *Collection) EnsureIndex(path string) {
	if path == "" || path == "_id" {
		return // _id is always the primary key
	}
	var p pendingCommit
	c.mu.Lock()
	if c.ensureHashLocked(path) {
		p = c.stageLocked(journalIndex, path, hashIndexDefDoc(path))
	}
	c.mu.Unlock()
	_ = p.commit()
}

// ensureHashLocked creates a hash index without journaling (shared by
// EnsureIndex and journal/replication replay). Returns whether a new
// index was created.
func (c *Collection) ensureHashLocked(path string) bool {
	if _, ok := c.indexes[path]; ok {
		return false
	}
	ix := newIndex(path)
	for id, d := range c.docs {
		ix.add(id, d)
	}
	c.indexes[path] = ix
	c.bumpGenLocked()
	return true
}

// DropIndex removes a secondary index.
func (c *Collection) DropIndex(path string) {
	var p pendingCommit
	c.mu.Lock()
	if _, had := c.indexes[path]; had {
		delete(c.indexes, path)
		c.bumpGenLocked()
		p = c.stageLocked(journalIndexDrop, path, hashIndexDefDoc(path))
	}
	c.mu.Unlock()
	_ = p.commit()
}

// scanLocked evaluates a compiled filter and returns matching ids in
// insertion order. The caller must hold at least a read lock.
//
// Planning: _id equality resolves directly; otherwise planQueryLocked
// (planner.go) estimates a cardinality for every usable index — hash
// equality/contains buckets, ordered key ranges — and the cheapest
// access path's candidates are verified against the full filter. With
// no usable index the whole collection is scanned.
func (c *Collection) scanLocked(flt *query.Filter) []string {
	if ids, handled := c.idLookupLocked(flt); handled {
		c.notePlan(&queryPlan{mode: "id", estimate: len(ids), ndocs: len(c.docs)})
		return ids
	}
	plan := c.planQueryLocked(flt, nil, nil)
	c.notePlan(plan)
	return c.execPlanLocked(flt, plan, 0)
}

// idLookupLocked resolves an _id-pinned filter directly against the
// primary key map. The second return reports whether the filter was
// handled (an _id equality on a string value, present or not).
func (c *Collection) idLookupLocked(flt *query.Filter) ([]string, bool) {
	if flt == nil {
		return nil, false
	}
	idv, ok := flt.EqualityFields()["_id"]
	if !ok {
		return nil, false
	}
	id, isStr := idv.(string)
	if !isStr {
		return nil, false
	}
	if d, exists := c.docs[id]; exists && flt.Matches(d) {
		return []string{id}, true
	}
	return nil, true
}

// execPlanLocked runs a chosen plan, returning matching ids in insertion
// order. maxMatches > 0 stops after that many matches — valid whenever
// the caller wants an insertion-order prefix (no-sort limit pushdown).
func (c *Collection) execPlanLocked(flt *query.Filter, plan *queryPlan, maxMatches int) []string {
	var out []string
	if plan.mode != "index" || plan.access == nil {
		for _, id := range c.order {
			if flt.Matches(c.docs[id]) {
				out = append(out, id)
				if maxMatches > 0 && len(out) >= maxMatches {
					break
				}
			}
		}
		return out
	}
	candidates := c.candidateIDsLocked(plan.access)
	// Verify only the candidates, restoring insertion order via the
	// per-id sequence numbers (cheaper than walking the whole order
	// slice when the index is selective).
	ids := make([]string, 0, len(candidates))
	for id := range candidates {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return c.seq[ids[i]] < c.seq[ids[j]] })
	for _, id := range ids {
		if flt.Matches(c.docs[id]) {
			out = append(out, id)
			if maxMatches > 0 && len(out) >= maxMatches {
				break
			}
		}
	}
	return out
}

// Cursor iterates a result snapshot. Cursors are not safe for concurrent
// use; each goroutine should obtain its own.
type Cursor struct {
	docs []document.D
	pos  int
}

// Next returns the next document, or nil when exhausted.
func (cur *Cursor) Next() document.D {
	if cur.pos >= len(cur.docs) {
		return nil
	}
	d := cur.docs[cur.pos]
	cur.pos++
	return d
}

// All drains the cursor from the current position.
func (cur *Cursor) All() []document.D {
	out := cur.docs[cur.pos:]
	cur.pos = len(cur.docs)
	return out
}

// Len reports the total number of documents in the cursor's snapshot.
func (cur *Cursor) Len() int { return len(cur.docs) }

// Rewind resets the cursor to the beginning of its snapshot.
func (cur *Cursor) Rewind() { cur.pos = 0 }
