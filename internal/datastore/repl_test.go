package datastore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"matproj/internal/document"
)

func insertN(t *testing.T, s *Store, coll string, n, base int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.C(coll).Insert(document.D{"_id": fmt.Sprintf("d%d", base+i), "n": base + i}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReplGenMintingDurable(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if g := s.ReplGen(); g != 0 {
		t.Fatalf("fresh store gen %d, want 0", g)
	}
	insertN(t, s, "m", 5, 0)
	if g := s.ReplGen(); g != 5 {
		t.Fatalf("gen %d after 5 inserts, want 5", g)
	}
	if _, err := s.C("m").Remove(document.D{"_id": "d0"}); err != nil {
		t.Fatal(err)
	}
	if g := s.ReplGen(); g != 6 {
		t.Fatalf("gen %d after remove, want 6", g)
	}
}

func TestReplGenSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	insertN(t, s, "m", 7, 0)
	want := s.ReplGen()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if g := s2.ReplGen(); g != want {
		t.Fatalf("replayed gen %d, want %d", g, want)
	}
	// New writes keep minting past the restored head.
	insertN(t, s2, "m", 1, 100)
	if g := s2.ReplGen(); g != want+1 {
		t.Fatalf("gen %d after post-replay insert, want %d", g, want+1)
	}
}

func TestReplSnapshotSetsBaseAndGap(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	insertN(t, s, "m", 4, 0)
	head := s.ReplGen()
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// The journal was truncated: entries before the snapshot are gone.
	_, _, err = s.ReplTail(0, 100)
	if !errors.Is(err, ErrReplGap) {
		t.Fatalf("tail from 0 after snapshot: err %v, want ErrReplGap", err)
	}
	// Tailing from the snapshot head is fine and empty.
	lines, h, err := s.ReplTail(head, 100)
	if err != nil || len(lines) != 0 || h != head {
		t.Fatalf("tail from head: lines=%d head=%d err=%v", len(lines), h, err)
	}
	// Gen keeps minting; the new entry is servable.
	insertN(t, s, "m", 1, 50)
	lines, h, err = s.ReplTail(head, 100)
	if err != nil || len(lines) != 1 || h != head+1 {
		t.Fatalf("tail past snapshot: lines=%d head=%d err=%v", len(lines), h, err)
	}
}

func TestReplBaseSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	insertN(t, s, "m", 4, 0)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	insertN(t, s, "m", 2, 10)
	want := s.ReplGen()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if g := s2.ReplGen(); g != want {
		t.Fatalf("replayed gen %d, want %d", g, want)
	}
	// Base was restored from the snapshot meta record: pre-snapshot
	// generations are still a gap, post-snapshot ones still servable.
	if _, _, err := s2.ReplTail(0, 100); !errors.Is(err, ErrReplGap) {
		t.Fatalf("tail from 0 after replay: err %v, want ErrReplGap", err)
	}
	lines, _, err := s2.ReplTail(4, 100)
	if err != nil || len(lines) != 2 {
		t.Fatalf("tail from base after replay: lines=%d err=%v", len(lines), err)
	}
}

func TestReplTailAndApplyRoundTrip(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	insertN(t, src, "m", 6, 0)
	if _, err := src.C("m").UpdateMany(document.D{"_id": "d2"}, document.D{"$set": document.D{"n": 99}}); err != nil {
		t.Fatal(err)
	}
	lines, head, err := src.ReplTail(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if head != src.ReplGen() || len(lines) != 7 {
		t.Fatalf("tail: %d lines head %d, want 7 lines head %d", len(lines), head, src.ReplGen())
	}

	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	applied, gen, torn, err := dst.ApplyReplEntries(lines)
	if err != nil || torn {
		t.Fatalf("apply: err=%v torn=%v", err, torn)
	}
	if applied != 7 || gen != head {
		t.Fatalf("applied=%d gen=%d, want 7/%d", applied, gen, head)
	}
	n, err := dst.C("m").Count(nil)
	if err != nil || n != 6 {
		t.Fatalf("dst count %d err %v, want 6", n, err)
	}
	cur, err := dst.C("m").Find(document.D{"_id": "d2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	docs := cur.All()
	if len(docs) != 1 || docs[0].GetString("_id") != "d2" {
		t.Fatalf("updated doc missing: %v", docs)
	}
	if v, _ := docs[0].GetFloat("n"); v != 99 {
		t.Fatalf("update not applied: %v", docs[0])
	}
}

func TestReplApplyTornBatchAppliesGoodPrefix(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	insertN(t, src, "m", 5, 0)
	lines, _, err := src.ReplTail(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Clip the final framed line mid-checksum: the follower must apply
	// the 4 good entries and refuse the torn one.
	last := lines[len(lines)-1]
	lines[len(lines)-1] = last[:len(last)-3]

	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	applied, gen, torn, err := dst.ApplyReplEntries(lines)
	if err != nil {
		t.Fatal(err)
	}
	if !torn || applied != 4 || gen != 4 {
		t.Fatalf("torn apply: applied=%d gen=%d torn=%v, want 4/4/true", applied, gen, torn)
	}
	n, _ := dst.C("m").Count(nil)
	if n != 4 {
		t.Fatalf("dst count %d after torn batch, want 4", n)
	}
	// A corrupted-but-complete line must not apply either.
	bad := bytes.Replace(lines[0], []byte(`"d0"`), []byte(`"dX"`), 1)
	applied, _, torn, err = dst.ApplyReplEntries([][]byte{bad})
	if err != nil || applied != 0 || !torn {
		t.Fatalf("checksum-mismatch line: applied=%d torn=%v err=%v, want 0/true/nil", applied, torn, err)
	}
}

func TestReplSnapshotEntriesAndReset(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	insertN(t, src, "m", 5, 0)
	insertN(t, src, "tasks", 2, 0)
	if _, err := src.C("m").Remove(document.D{"_id": "d3"}); err != nil {
		t.Fatal(err)
	}
	snap, head, err := src.ReplSnapshotEntries()
	if err != nil {
		t.Fatal(err)
	}
	if head != src.ReplGen() {
		t.Fatalf("snapshot head %d, want %d", head, src.ReplGen())
	}

	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	insertN(t, dst, "stale", 3, 0) // pre-existing state must be wiped
	if err := dst.ReplReset(snap, head); err != nil {
		t.Fatal(err)
	}
	if g := dst.ReplGen(); g != head {
		t.Fatalf("dst gen %d after reset, want %d", g, head)
	}
	if n, _ := dst.C("m").Count(nil); n != 4 {
		t.Fatalf("dst materials %d, want 4", n)
	}
	if n, _ := dst.C("tasks").Count(nil); n != 2 {
		t.Fatalf("dst tasks %d, want 2", n)
	}
	if n, _ := dst.C("stale").Count(nil); n != 0 {
		t.Fatalf("stale collection survived reset: %d docs", n)
	}
	// Reset also set the base: older gens are a gap on dst too.
	if _, _, err := dst.ReplTail(0, 10); !errors.Is(err, ErrReplGap) {
		t.Fatalf("dst tail from 0 after reset: %v, want ErrReplGap", err)
	}
}

func TestReplMemoryRing(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	// Without EnableReplication a memory store mints nothing.
	insertN(t, s, "m", 2, 0)
	if g := s.ReplGen(); g != 0 {
		t.Fatalf("memory store minted gens without EnableReplication: %d", g)
	}

	s2, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	s2.EnableReplication(4)
	insertN(t, s2, "m", 3, 0)
	lines, head, err := s2.ReplTail(0, 10)
	if err != nil || len(lines) != 3 || head != 3 {
		t.Fatalf("ring tail: lines=%d head=%d err=%v", len(lines), head, err)
	}
	// Overflow the capacity-4 ring: oldest entries evict, gap appears.
	insertN(t, s2, "m", 4, 10)
	if _, _, err := s2.ReplTail(0, 10); !errors.Is(err, ErrReplGap) {
		t.Fatalf("overflowed ring tail from 0: %v, want ErrReplGap", err)
	}
	lines, head, err = s2.ReplTail(3, 10)
	if err != nil || len(lines) != 4 || head != 7 {
		t.Fatalf("ring tail from 3: lines=%d head=%d err=%v", len(lines), head, err)
	}
	// Ship the ring entries to a durable follower: framed bytes are
	// format-compatible across backends.
	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	full, fullHead, err := s2.ReplSnapshotEntries()
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ReplReset(full, fullHead); err != nil {
		t.Fatal(err)
	}
	if n, _ := dst.C("m").Count(nil); n != 7 {
		t.Fatalf("durable follower count %d, want 7", n)
	}
}

func TestReplTailLimit(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	insertN(t, s, "m", 10, 0)
	lines, head, err := s.ReplTail(0, 3)
	if err != nil || len(lines) != 3 {
		t.Fatalf("limited tail: lines=%d err=%v", len(lines), err)
	}
	if head != 10 {
		t.Fatalf("head %d, want 10 (full head even when limited)", head)
	}
}
