package datastore

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"matproj/internal/document"
	"matproj/internal/query"
)

// Aggregation pipelines: the paper notes that "both the web interface
// and workflow components perform complex ad-hoc queries over these
// structures". This file implements the MongoDB aggregation stages those
// ad-hoc queries use: $match, $project, $group, $sort, $limit, $skip,
// $unwind, and $count, with the standard accumulator operators.

// Aggregate runs a pipeline over the collection and returns the
// resulting documents. Each stage is a single-key document naming the
// stage, e.g. {"$match": {...}}.
func (c *Collection) Aggregate(pipeline []document.D) ([]document.D, error) {
	// Stage 1 ($match at the head) can use indexes via Find.
	var docs []document.D
	start := 0
	if len(pipeline) > 0 {
		if m, ok := stageBody(pipeline[0], "$match"); ok {
			var err error
			docs, err = c.FindAll(m, nil)
			if err != nil {
				return nil, err
			}
			start = 1
		}
	}
	if start == 0 {
		var err error
		docs, err = c.FindAll(nil, nil)
		if err != nil {
			return nil, err
		}
	}
	return RunPipeline(docs, pipeline[start:])
}

// RunPipeline applies aggregation stages to an in-memory document slice
// (exported so pipelines compose with MapReduce output and shard
// mergers).
func RunPipeline(docs []document.D, stages []document.D) ([]document.D, error) {
	var err error
	for i, stage := range stages {
		if len(stage) != 1 {
			return nil, fmt.Errorf("datastore: aggregation stage %d must have exactly one operator, got %d", i, len(stage))
		}
		for op, body := range stage {
			switch op {
			case "$match":
				docs, err = stageMatch(docs, body)
			case "$project":
				docs, err = stageProject(docs, body)
			case "$group":
				docs, err = stageGroup(docs, body)
			case "$sort":
				docs, err = stageSort(docs, body)
			case "$limit":
				docs, err = stageLimit(docs, body)
			case "$skip":
				docs, err = stageSkip(docs, body)
			case "$unwind":
				docs, err = stageUnwind(docs, body)
			case "$count":
				docs, err = stageCount(docs, body)
			default:
				return nil, fmt.Errorf("datastore: unknown aggregation stage %q", op)
			}
			if err != nil {
				return nil, fmt.Errorf("datastore: stage %d (%s): %w", i, op, err)
			}
		}
	}
	return docs, nil
}

func stageBody(stage document.D, name string) (document.D, bool) {
	if len(stage) != 1 {
		return nil, false
	}
	v, ok := stage[name]
	if !ok {
		return nil, false
	}
	switch m := v.(type) {
	case map[string]any:
		return document.D(m), true
	case document.D:
		return m, true
	}
	return nil, false
}

func asDoc(v any) (document.D, bool) {
	switch m := v.(type) {
	case map[string]any:
		return document.D(m), true
	case document.D:
		return m, true
	}
	return nil, false
}

func stageMatch(docs []document.D, body any) ([]document.D, error) {
	m, ok := asDoc(body)
	if !ok {
		return nil, fmt.Errorf("$match requires a document")
	}
	flt, err := query.Compile(m)
	if err != nil {
		return nil, err
	}
	out := docs[:0:0]
	for _, d := range docs {
		if flt.Matches(d) {
			out = append(out, d)
		}
	}
	return out, nil
}

func stageProject(docs []document.D, body any) ([]document.D, error) {
	m, ok := asDoc(body)
	if !ok {
		return nil, fmt.Errorf("$project requires a document")
	}
	// Split into plain include/exclude flags and computed fields
	// ("$path" references and expression documents).
	flags := document.D{}
	computed := map[string]any{}
	for k, v := range m {
		switch x := v.(type) {
		case string:
			if strings.HasPrefix(x, "$") {
				computed[k] = x
				continue
			}
			return nil, fmt.Errorf("$project field %q: string value must be a $path reference", k)
		case map[string]any, document.D:
			computed[k] = v
		default:
			flags[k] = v
		}
	}
	var proj *query.Projection
	if len(flags) > 0 {
		var err error
		proj, err = query.CompileProjection(flags)
		if err != nil {
			return nil, err
		}
	}
	out := make([]document.D, 0, len(docs))
	for _, d := range docs {
		var nd document.D
		if proj != nil {
			nd = proj.Apply(d)
		} else {
			nd = document.D{}
			if id, ok := d["_id"]; ok {
				nd["_id"] = id
			}
		}
		for k, expr := range computed {
			v, err := evalExpr(expr, d)
			if err != nil {
				return nil, fmt.Errorf("field %q: %w", k, err)
			}
			if err := nd.Set(k, v); err != nil {
				return nil, err
			}
		}
		out = append(out, nd)
	}
	return out, nil
}

// evalExpr evaluates an aggregation expression against a document:
// "$path" field references, literals, and arithmetic/array operators.
func evalExpr(expr any, d document.D) (any, error) {
	switch x := expr.(type) {
	case string:
		if strings.HasPrefix(x, "$") {
			v, _ := d.Get(x[1:])
			return v, nil
		}
		return x, nil
	case map[string]any:
		return evalOpExpr(document.D(x), d)
	case document.D:
		return evalOpExpr(x, d)
	default:
		return x, nil
	}
}

func evalOpExpr(m document.D, d document.D) (any, error) {
	if len(m) != 1 {
		return nil, fmt.Errorf("expression must have exactly one operator: %v", m)
	}
	for op, arg := range m {
		switch op {
		case "$add", "$subtract", "$multiply", "$divide":
			args, err := evalNumericArgs(arg, d)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", op, err)
			}
			return applyArith(op, args)
		case "$abs":
			v, err := evalExpr(arg, d)
			if err != nil {
				return nil, err
			}
			f, ok := document.AsFloat(v)
			if !ok {
				return nil, fmt.Errorf("$abs: non-numeric %v", v)
			}
			return math.Abs(f), nil
		case "$size":
			v, err := evalExpr(arg, d)
			if err != nil {
				return nil, err
			}
			arr, ok := v.([]any)
			if !ok {
				return nil, fmt.Errorf("$size: not an array")
			}
			return int64(len(arr)), nil
		case "$concat":
			parts, ok := arg.([]any)
			if !ok {
				return nil, fmt.Errorf("$concat requires an array")
			}
			var b strings.Builder
			for _, p := range parts {
				v, err := evalExpr(p, d)
				if err != nil {
					return nil, err
				}
				s, ok := v.(string)
				if !ok {
					return nil, fmt.Errorf("$concat: non-string %v", v)
				}
				b.WriteString(s)
			}
			return b.String(), nil
		case "$literal":
			return arg, nil
		default:
			return nil, fmt.Errorf("unknown expression operator %q", op)
		}
	}
	return nil, nil
}

func evalNumericArgs(arg any, d document.D) ([]float64, error) {
	arr, ok := arg.([]any)
	if !ok {
		return nil, fmt.Errorf("requires an array of operands")
	}
	out := make([]float64, len(arr))
	for i, a := range arr {
		v, err := evalExpr(a, d)
		if err != nil {
			return nil, err
		}
		f, ok := document.AsFloat(v)
		if !ok {
			return nil, fmt.Errorf("operand %d is not numeric: %v", i, v)
		}
		out[i] = f
	}
	return out, nil
}

func applyArith(op string, args []float64) (any, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("%s: no operands", op)
	}
	switch op {
	case "$add":
		s := 0.0
		for _, a := range args {
			s += a
		}
		return s, nil
	case "$multiply":
		s := 1.0
		for _, a := range args {
			s *= a
		}
		return s, nil
	case "$subtract":
		if len(args) != 2 {
			return nil, fmt.Errorf("$subtract needs exactly 2 operands")
		}
		return args[0] - args[1], nil
	case "$divide":
		if len(args) != 2 {
			return nil, fmt.Errorf("$divide needs exactly 2 operands")
		}
		if args[1] == 0 {
			return nil, fmt.Errorf("$divide by zero")
		}
		return args[0] / args[1], nil
	}
	return nil, fmt.Errorf("unknown arithmetic %q", op)
}

// groupAccumulator folds values for one group key.
type groupAccumulator struct {
	op   string
	expr any

	sum    float64
	count  int64
	min    any
	max    any
	first  any
	last   any
	seen   bool
	pushed []any
	set    []any
}

func (a *groupAccumulator) add(d document.D) error {
	if a.op == "$count" {
		// $count ignores its argument ({} by convention).
		a.count++
		return nil
	}
	v, err := evalExpr(a.expr, d)
	if err != nil {
		return err
	}
	switch a.op {
	case "$sum":
		if f, ok := document.AsFloat(v); ok {
			a.sum += f
		}
		a.count++
	case "$avg":
		if f, ok := document.AsFloat(v); ok {
			a.sum += f
			a.count++
		}
	case "$min":
		if v == nil {
			return nil
		}
		if !a.seen || document.Compare(v, a.min) < 0 {
			a.min = v
			a.seen = true
		}
	case "$max":
		if v == nil {
			return nil
		}
		if !a.seen || document.Compare(v, a.max) > 0 {
			a.max = v
			a.seen = true
		}
	case "$first":
		if !a.seen {
			a.first = v
			a.seen = true
		}
	case "$last":
		a.last = v
		a.seen = true
	case "$push":
		a.pushed = append(a.pushed, v)
	case "$addToSet":
		for _, el := range a.set {
			if document.Equal(el, v) {
				return nil
			}
		}
		a.set = append(a.set, v)
	}
	return nil
}

func (a *groupAccumulator) result() any {
	switch a.op {
	case "$sum":
		if a.sum == math.Trunc(a.sum) {
			return int64(a.sum)
		}
		return a.sum
	case "$avg":
		if a.count == 0 {
			return nil
		}
		return a.sum / float64(a.count)
	case "$min":
		return a.min
	case "$max":
		return a.max
	case "$first":
		return a.first
	case "$last":
		return a.last
	case "$push":
		if a.pushed == nil {
			return []any{}
		}
		return a.pushed
	case "$addToSet":
		if a.set == nil {
			return []any{}
		}
		return a.set
	case "$count":
		return a.count
	}
	return nil
}

func stageGroup(docs []document.D, body any) ([]document.D, error) {
	spec, ok := asDoc(body)
	if !ok {
		return nil, fmt.Errorf("$group requires a document")
	}
	idExpr, hasID := spec["_id"]
	if !hasID {
		return nil, fmt.Errorf("$group requires an _id expression")
	}
	type fieldSpec struct {
		name string
		op   string
		expr any
	}
	var fields []fieldSpec
	names := make([]string, 0, len(spec))
	for name := range spec {
		if name != "_id" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		accSpec, ok := asDoc(spec[name])
		if !ok || len(accSpec) != 1 {
			return nil, fmt.Errorf("$group field %q must be {<accumulator>: <expr>}", name)
		}
		for op, expr := range accSpec {
			switch op {
			case "$sum", "$avg", "$min", "$max", "$first", "$last", "$push", "$addToSet", "$count":
			default:
				return nil, fmt.Errorf("$group field %q: unknown accumulator %q", name, op)
			}
			fields = append(fields, fieldSpec{name: name, op: op, expr: expr})
		}
	}

	type groupState struct {
		key  any
		accs []*groupAccumulator
	}
	groups := map[string]*groupState{}
	var order []string
	for _, d := range docs {
		keyVal, err := evalExpr(idExpr, d)
		if err != nil {
			return nil, err
		}
		kb, err := document.D{"k": keyVal}.ToJSON()
		if err != nil {
			return nil, err
		}
		k := string(kb)
		g, ok := groups[k]
		if !ok {
			g = &groupState{key: keyVal}
			for _, f := range fields {
				g.accs = append(g.accs, &groupAccumulator{op: f.op, expr: f.expr})
			}
			groups[k] = g
			order = append(order, k)
		}
		for _, acc := range g.accs {
			if err := acc.add(d); err != nil {
				return nil, err
			}
		}
	}
	sort.Strings(order)
	out := make([]document.D, 0, len(order))
	for _, k := range order {
		g := groups[k]
		nd := document.D{"_id": g.key}
		for i, f := range fields {
			nd[f.name] = document.Normalize(g.accs[i].result())
		}
		out = append(out, nd)
	}
	return out, nil
}

func stageSort(docs []document.D, body any) ([]document.D, error) {
	spec, ok := asDoc(body)
	if !ok {
		return nil, fmt.Errorf("$sort requires a document")
	}
	// Deterministic multi-key order: fields sorted by name, since Go maps
	// are unordered. (Callers needing a specific precedence should chain
	// $sort stages, last-most-significant.)
	var keys []query.SortKey
	names := make([]string, 0, len(spec))
	for name := range spec {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		dir, ok := document.AsFloat(spec[name])
		if !ok || (dir != 1 && dir != -1) {
			return nil, fmt.Errorf("$sort field %q must be 1 or -1", name)
		}
		keys = append(keys, query.SortKey{Path: name, Desc: dir == -1})
	}
	out := append([]document.D(nil), docs...)
	query.SortDocs(out, keys)
	return out, nil
}

func stageLimit(docs []document.D, body any) ([]document.D, error) {
	n, ok := document.AsFloat(body)
	if !ok || n < 0 {
		return nil, fmt.Errorf("$limit requires a non-negative number")
	}
	if int(n) < len(docs) {
		return docs[:int(n)], nil
	}
	return docs, nil
}

func stageSkip(docs []document.D, body any) ([]document.D, error) {
	n, ok := document.AsFloat(body)
	if !ok || n < 0 {
		return nil, fmt.Errorf("$skip requires a non-negative number")
	}
	if int(n) >= len(docs) {
		return nil, nil
	}
	return docs[int(n):], nil
}

func stageUnwind(docs []document.D, body any) ([]document.D, error) {
	path, ok := body.(string)
	if !ok || !strings.HasPrefix(path, "$") {
		return nil, fmt.Errorf("$unwind requires a $path string")
	}
	field := path[1:]
	var out []document.D
	for _, d := range docs {
		v, exists := d.Get(field)
		if !exists {
			continue
		}
		arr, isArr := v.([]any)
		if !isArr {
			out = append(out, d)
			continue
		}
		for _, el := range arr {
			nd := d.Copy()
			if err := nd.Set(field, el); err != nil {
				return nil, err
			}
			out = append(out, nd)
		}
	}
	return out, nil
}

func stageCount(docs []document.D, body any) ([]document.D, error) {
	name, ok := body.(string)
	if !ok || name == "" {
		return nil, fmt.Errorf("$count requires a field name")
	}
	return []document.D{{name: int64(len(docs))}}, nil
}
