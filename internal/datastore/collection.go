package datastore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"matproj/internal/document"
	"matproj/internal/query"
)

var idCounter atomic.Uint64

// nextID generates a process-unique object id.
func nextID() string {
	return fmt.Sprintf("oid%012x", idCounter.Add(1))
}

// noteOID advances the id allocator past a generated-format id ("oid"
// followed by hex). Every insert that reaches insertLocked — journal
// replay, snapshot restore, ReplReset, replicated applies — flows
// through this, so after a restart nextID never re-mints an id that a
// pre-crash insert already acknowledged (which would surface as a
// spurious ErrDuplicateID on a fresh insert).
func noteOID(id string) {
	if !strings.HasPrefix(id, "oid") {
		return
	}
	n, err := strconv.ParseUint(id[3:], 16, 64)
	if err != nil {
		return
	}
	for {
		cur := idCounter.Load()
		if n <= cur || idCounter.CompareAndSwap(cur, n) {
			return
		}
	}
}

// genCounter issues write generations. It is process-global (not
// per-collection) so a collection that is dropped and re-created can
// never repeat a generation that a cache entry was stored under.
var genCounter atomic.Uint64

// Collection is a named set of documents keyed by "_id". All methods are
// safe for concurrent use; writes take an exclusive lock, reads a shared
// lock, mirroring MongoDB's (v2-era) per-collection locking.
type Collection struct {
	name  string
	store *Store

	mu      sync.RWMutex
	docs    map[string]document.D
	order   []string       // insertion order of ids, for stable scans
	seq     map[string]int // id -> insertion sequence, for candidate sorting
	seqNext int
	indexes map[string]*index
	ordered map[string]*orderedIndex // canonical name -> sorted compound index
	bytes   int

	// gen is the collection's write generation: it takes a fresh value
	// from genCounter after every mutation (insert, update, remove —
	// including journal replay and snapshot restore, which flow through
	// the same *Locked mutators). A read result captured at generation g
	// is valid iff Generation() still returns g.
	gen atomic.Uint64
}

func newCollection(name string, store *Store) *Collection {
	c := &Collection{
		name:    name,
		store:   store,
		docs:    make(map[string]document.D),
		seq:     make(map[string]int),
		indexes: make(map[string]*index),
		ordered: make(map[string]*orderedIndex),
	}
	c.gen.Store(genCounter.Add(1))
	return c
}

// Generation reports the collection's current write generation. It
// changes after every acknowledged write: the bump happens inside the
// write lock, after the mutation is applied, so a reader that loads the
// generation *before* reading data can safely cache the result under it
// — any later write produces a different generation.
func (c *Collection) Generation() uint64 { return c.gen.Load() }

// bumpGenLocked advances the write generation. Callers hold c.mu
// exclusively, so per-collection generations are strictly increasing.
func (c *Collection) bumpGenLocked() { c.gen.Store(genCounter.Add(1)) }

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// CollStats summarizes a collection.
type CollStats struct {
	Documents int
	Bytes     int
	Indexes   []string
	// Ordered lists the canonical names of sorted compound indexes.
	Ordered []string
}

// Stats reports size and index information.
func (c *Collection) Stats() CollStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	idx := make([]string, 0, len(c.indexes))
	for p := range c.indexes {
		idx = append(idx, p)
	}
	sort.Strings(idx)
	ord := make([]string, 0, len(c.ordered))
	for n := range c.ordered {
		ord = append(ord, n)
	}
	sort.Strings(ord)
	return CollStats{Documents: len(c.docs), Bytes: c.bytes, Indexes: idx, Ordered: ord}
}

// Insert stores a document. If it has no "_id", one is assigned; the
// (possibly new) id is returned. The stored document is a deep copy: the
// caller's document is never aliased.
func (c *Collection) Insert(doc document.D) (string, error) {
	start := time.Now()
	d := document.NormalizeDoc(doc).Copy()
	id, hasID := d["_id"].(string)
	if !hasID {
		if raw, ok := d["_id"]; ok {
			return "", fmt.Errorf("datastore: _id must be a string, got %T", raw)
		}
		id = nextID()
		d["_id"] = id
	}
	c.mu.Lock()
	if _, exists := c.docs[id]; exists {
		c.mu.Unlock()
		return "", fmt.Errorf("%w: %q in %q", ErrDuplicateID, id, c.name)
	}
	c.insertLocked(id, d)
	p := c.stageLocked(journalInsert, id, d)
	c.mu.Unlock()
	if err := p.commit(); err != nil {
		return "", err
	}
	c.profile("insert", start, 0)
	return id, nil
}

// InsertMany inserts a batch under a single lock acquisition, returning
// the assigned ids. The batch is validated up front (id types, intra-
// batch and stored duplicates) and applied all-or-nothing; its journal
// records ride one group commit, so the whole batch costs one fsync.
func (c *Collection) InsertMany(docs []document.D) ([]string, error) {
	start := time.Now()
	if len(docs) == 0 {
		return nil, nil
	}
	prepared := make([]document.D, len(docs))
	ids := make([]string, len(docs))
	seen := make(map[string]struct{}, len(docs))
	for i, doc := range docs {
		d := document.NormalizeDoc(doc).Copy()
		id, hasID := d["_id"].(string)
		if !hasID {
			if raw, ok := d["_id"]; ok {
				return nil, fmt.Errorf("datastore: _id must be a string, got %T", raw)
			}
			id = nextID()
			d["_id"] = id
		}
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("%w: %q repeated in batch", ErrDuplicateID, id)
		}
		seen[id] = struct{}{}
		prepared[i] = d
		ids[i] = id
	}
	var p pendingCommit
	c.mu.Lock()
	for _, id := range ids {
		if _, exists := c.docs[id]; exists {
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: %q in %q", ErrDuplicateID, id, c.name)
		}
	}
	for i, d := range prepared {
		c.insertLocked(ids[i], d)
		p = c.stageLocked(journalInsert, ids[i], d)
	}
	c.mu.Unlock()
	if err := p.commit(); err != nil {
		return nil, err
	}
	c.profile("insertMany", start, len(ids))
	return ids, nil
}

// insertLocked assumes c.mu is held and id is fresh.
func (c *Collection) insertLocked(id string, d document.D) {
	noteOID(id)
	c.docs[id] = d
	c.order = append(c.order, id)
	c.seq[id] = c.seqNext
	c.seqNext++
	c.bytes += document.ApproxSize(d)
	for _, idx := range c.indexes {
		idx.add(id, d)
	}
	for _, ox := range c.ordered {
		ox.add(id, d)
	}
	c.bumpGenLocked()
}

func (c *Collection) removeLocked(id string) {
	d, ok := c.docs[id]
	if !ok {
		return
	}
	delete(c.docs, id)
	delete(c.seq, id)
	c.bytes -= document.ApproxSize(d)
	for i, oid := range c.order {
		if oid == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	for _, idx := range c.indexes {
		idx.remove(id, d)
	}
	for _, ox := range c.ordered {
		ox.remove(id, d)
	}
	c.bumpGenLocked()
}

// replaceLocked swaps the stored document for id, maintaining indexes.
func (c *Collection) replaceLocked(id string, newDoc document.D) {
	old := c.docs[id]
	for _, idx := range c.indexes {
		idx.remove(id, old)
		idx.add(id, newDoc)
	}
	for _, ox := range c.ordered {
		ox.remove(id, old)
		ox.add(id, newDoc)
	}
	c.bytes += document.ApproxSize(newDoc) - document.ApproxSize(old)
	c.docs[id] = newDoc
	c.bumpGenLocked()
}

// FindOpts controls a query: projection, sort order, skip and limit.
type FindOpts struct {
	Projection document.D
	Sort       []string // "field" or "-field"
	Skip       int
	Limit      int // 0 means no limit
	// MaxStaleness, when > 0, permits a routed read to be served by a
	// replica whose applied replication generation lags the group head
	// by at most this many generations. 0 (the default) keeps the read
	// on the primary. Local (non-routed) reads ignore it — a single
	// store is never stale relative to itself.
	MaxStaleness int
	// Hint forces the query planner to use the named index (a hash
	// index's path or an ordered index's comma-joined component paths)
	// when that index is usable for the filter at all. Routed reads
	// forward the hint to every shard, so the whole scatter runs the
	// same plan regardless of per-shard statistics. Unknown or unusable
	// hints are ignored.
	Hint string
}

// Find returns a cursor over documents matching filter. The cursor holds
// deep copies; iterating never observes later writes.
func (c *Collection) Find(filter document.D, opts *FindOpts) (*Cursor, error) {
	start := time.Now()
	flt, err := query.Compile(filter)
	if err != nil {
		return nil, err
	}
	var proj *query.Projection
	var sortKeys []query.SortKey
	skip, limit := 0, 0
	if opts != nil {
		proj, err = query.CompileProjection(opts.Projection)
		if err != nil {
			return nil, err
		}
		sortKeys, err = query.ParseSort(opts.Sort)
		if err != nil {
			return nil, err
		}
		skip, limit = opts.Skip, opts.Limit
	}

	c.mu.RLock()
	var results []document.D
	var plan *queryPlan
	if ids, handled := c.idLookupLocked(flt); handled {
		plan = &queryPlan{mode: "id", estimate: len(ids), ndocs: len(c.docs)}
		c.notePlan(plan)
		results = make([]document.D, 0, len(ids))
		for _, id := range ids {
			results = append(results, proj.Apply(c.docs[id]))
		}
		c.mu.RUnlock()
	} else {
		plan = c.planQueryLocked(flt, sortKeys, opts)
		c.notePlan(plan)
		if plan.sortSatisfied {
			// The chosen ordered index emits matches already in sort
			// order, so sort, skip and limit are all satisfied during
			// the index walk — nothing is materialized beyond the
			// returned page.
			want := -1
			if limit > 0 {
				want = skip + limit
			}
			matched := 0
			c.orderedEmitLocked(plan.access, plan.reverse, func(id string) bool {
				if !flt.Matches(c.docs[id]) {
					return true
				}
				matched++
				if matched <= skip {
					return true
				}
				results = append(results, proj.Apply(c.docs[id]))
				return want < 0 || matched < want
			})
			c.mu.RUnlock()
			c.profilePlan("find", start, len(results), plan)
			return &Cursor{docs: results}, nil
		}
		// Limit pushdown without a sort: matches come back in insertion
		// order, so the first skip+limit of them are the page.
		maxMatches := 0
		if len(sortKeys) == 0 && limit > 0 {
			maxMatches = skip + limit
		}
		matched := c.execPlanLocked(flt, plan, maxMatches)
		// Copy out under the read lock so the cursor is a stable snapshot.
		results = make([]document.D, 0, len(matched))
		for _, id := range matched {
			results = append(results, proj.Apply(c.docs[id]))
		}
		c.mu.RUnlock()
	}

	query.SortDocs(results, sortKeys)
	if skip > 0 {
		if skip >= len(results) {
			results = nil
		} else {
			results = results[skip:]
		}
	}
	if limit > 0 && limit < len(results) {
		results = results[:limit]
	}
	c.profilePlan("find", start, len(results), plan)
	return &Cursor{docs: results}, nil
}

// FindAll is Find followed by draining the cursor.
func (c *Collection) FindAll(filter document.D, opts *FindOpts) ([]document.D, error) {
	cur, err := c.Find(filter, opts)
	if err != nil {
		return nil, err
	}
	return cur.All(), nil
}

// FindOne returns the first matching document, or ErrNotFound.
func (c *Collection) FindOne(filter document.D, opts *FindOpts) (document.D, error) {
	o := FindOpts{Limit: 1}
	if opts != nil {
		o = *opts
		o.Limit = 1
	}
	docs, err := c.FindAll(filter, &o)
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, ErrNotFound
	}
	return docs[0], nil
}

// FindID fetches a document by _id directly.
func (c *Collection) FindID(id string) (document.D, error) {
	c.mu.RLock()
	d, ok := c.docs[id]
	if !ok {
		c.mu.RUnlock()
		return nil, ErrNotFound
	}
	out := d.Copy()
	c.mu.RUnlock()
	return out, nil
}

// Count returns the number of documents matching filter.
func (c *Collection) Count(filter document.D) (int, error) {
	start := time.Now()
	flt, err := query.Compile(filter)
	if err != nil {
		return 0, err
	}
	c.mu.RLock()
	n := len(c.scanLocked(flt))
	c.mu.RUnlock()
	c.profile("count", start, n)
	return n, nil
}

// Distinct returns the distinct values at a dotted path among matching
// documents. Array values contribute their elements. The result is sorted
// by document.Compare order. Deduplication keys a map on canonicalKey, so
// int64/float64 values that are numerically equal collapse (3 and 3.0 are
// one value), matching index-bucket semantics.
func (c *Collection) Distinct(path string, filter document.D) ([]any, error) {
	start := time.Now()
	flt, err := query.Compile(filter)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	seen := make(map[string]struct{}, 16)
	vals := make([]any, 0, 16)
	add := func(v any) {
		k := canonicalKey(v)
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		vals = append(vals, v)
	}
	for _, id := range c.scanLocked(flt) {
		v, ok := c.docs[id].Get(path)
		if !ok {
			continue
		}
		if arr, isArr := v.([]any); isArr {
			for _, el := range arr {
				add(el)
			}
		} else {
			add(v)
		}
	}
	c.mu.RUnlock()
	sort.Slice(vals, func(i, j int) bool { return document.Compare(vals[i], vals[j]) < 0 })
	c.profile("distinct", start, len(vals))
	return vals, nil
}

// UpdateResult reports what an update did.
type UpdateResult struct {
	Matched  int
	Modified int
}

// UpdateOne applies an update to the first matching document.
func (c *Collection) UpdateOne(filter, update document.D) (UpdateResult, error) {
	return c.update(filter, update, false)
}

// UpdateMany applies an update to every matching document.
func (c *Collection) UpdateMany(filter, update document.D) (UpdateResult, error) {
	return c.update(filter, update, true)
}

func (c *Collection) update(filter, update document.D, many bool) (UpdateResult, error) {
	start := time.Now()
	flt, err := query.Compile(filter)
	if err != nil {
		return UpdateResult{}, err
	}
	upd, err := query.CompileUpdate(update)
	if err != nil {
		return UpdateResult{}, err
	}
	var res UpdateResult
	var p pendingCommit
	var opErr error
	c.mu.Lock()
	for _, id := range c.scanLocked(flt) {
		res.Matched++
		cur := c.docs[id]
		next, err := upd.Apply(cur.Copy())
		if err != nil {
			opErr = err
			break
		}
		if nid, ok := next["_id"].(string); !ok || nid != id {
			opErr = fmt.Errorf("datastore: update may not change _id (collection %q)", c.name)
			break
		}
		if !document.Equal(cur, next) {
			c.replaceLocked(id, next)
			res.Modified++
			p = c.stageLocked(journalUpdate, id, next)
		}
		if !many {
			break
		}
	}
	c.mu.Unlock()
	// Commit even on a mid-batch error: earlier documents were already
	// modified in memory, so their records must still become durable.
	if err := p.commit(); err != nil && opErr == nil {
		opErr = err
	}
	if opErr != nil {
		return res, opErr
	}
	c.profile("update", start, res.Modified)
	return res, nil
}

// Upsert behaves like UpdateOne, but inserts a new document when nothing
// matches: equality fields of the filter seed the new document, then the
// update applies. Returns the id of the updated or inserted document.
func (c *Collection) Upsert(filter, update document.D) (string, error) {
	flt, err := query.Compile(filter)
	if err != nil {
		return "", err
	}
	upd, err := query.CompileUpdate(update)
	if err != nil {
		return "", err
	}
	start := time.Now()
	c.mu.Lock()
	ids := c.scanLocked(flt)
	if len(ids) > 0 {
		id := ids[0]
		next, err := upd.Apply(c.docs[id].Copy())
		if err != nil {
			c.mu.Unlock()
			return "", err
		}
		if nid, ok := next["_id"].(string); !ok || nid != id {
			c.mu.Unlock()
			return "", fmt.Errorf("datastore: upsert may not change _id")
		}
		c.replaceLocked(id, next)
		p := c.stageLocked(journalUpdate, id, next)
		c.mu.Unlock()
		if err := p.commit(); err != nil {
			return "", err
		}
		c.profile("update", start, 1)
		return id, nil
	}
	seed := document.New()
	for path, v := range flt.EqualityFields() {
		if err := seed.Set(path, v); err != nil {
			c.mu.Unlock()
			return "", err
		}
	}
	next, err := upd.Apply(seed)
	if err != nil {
		c.mu.Unlock()
		return "", err
	}
	id, hasID := next["_id"].(string)
	if !hasID {
		id = nextID()
		next["_id"] = id
	}
	if _, exists := c.docs[id]; exists {
		c.mu.Unlock()
		return "", fmt.Errorf("%w: %q in %q", ErrDuplicateID, id, c.name)
	}
	c.insertLocked(id, next)
	p := c.stageLocked(journalInsert, id, next)
	c.mu.Unlock()
	if err := p.commit(); err != nil {
		return "", err
	}
	c.profile("insert", start, 1)
	return id, nil
}

// FindAndModify atomically finds the first document matching filter (in
// the given sort order), applies the update, and returns the document.
// If returnNew is true the post-update document is returned, otherwise the
// pre-update one. This is the task-queue claim primitive: concurrent
// workers calling FindAndModify on {state: "ready"} each receive a
// distinct job.
func (c *Collection) FindAndModify(filter, update document.D, sortSpec []string, returnNew bool) (document.D, error) {
	start := time.Now()
	flt, err := query.Compile(filter)
	if err != nil {
		return nil, err
	}
	upd, err := query.CompileUpdate(update)
	if err != nil {
		return nil, err
	}
	sortKeys, err := query.ParseSort(sortSpec)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	ids := c.scanLocked(flt)
	if len(ids) == 0 {
		c.mu.Unlock()
		return nil, ErrNotFound
	}
	best := ids[0]
	if len(sortKeys) > 0 {
		for _, id := range ids[1:] {
			if query.CompareByKeys(c.docs[id], c.docs[best], sortKeys) < 0 {
				best = id
			}
		}
	}
	before := c.docs[best].Copy()
	next, err := upd.Apply(c.docs[best].Copy())
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	if nid, ok := next["_id"].(string); !ok || nid != best {
		c.mu.Unlock()
		return nil, fmt.Errorf("datastore: findAndModify may not change _id")
	}
	c.replaceLocked(best, next)
	p := c.stageLocked(journalUpdate, best, next)
	out := before
	if returnNew {
		out = next.Copy()
	}
	c.mu.Unlock()
	if err := p.commit(); err != nil {
		return nil, err
	}
	c.profile("findAndModify", start, 1)
	return out, nil
}

// Remove deletes matching documents and reports how many were removed.
func (c *Collection) Remove(filter document.D) (int, error) {
	start := time.Now()
	flt, err := query.Compile(filter)
	if err != nil {
		return 0, err
	}
	var p pendingCommit
	c.mu.Lock()
	ids := c.scanLocked(flt)
	for _, id := range ids {
		c.removeLocked(id)
		p = c.stageLocked(journalRemove, id, nil)
	}
	c.mu.Unlock()
	if err := p.commit(); err != nil {
		return len(ids), err
	}
	c.profile("remove", start, len(ids))
	return len(ids), nil
}

// RemoveID deletes one document by id.
func (c *Collection) RemoveID(id string) error {
	c.mu.Lock()
	_, ok := c.docs[id]
	if !ok {
		c.mu.Unlock()
		return ErrNotFound
	}
	c.removeLocked(id)
	p := c.stageLocked(journalRemove, id, nil)
	c.mu.Unlock()
	return p.commit()
}

// profile records an operation in the store profiler and, when the store
// is observed, in the live metrics registry and slow-op tracer.
func (c *Collection) profile(op string, start time.Time, returned int) {
	c.profileDetail(op, start, returned, "")
}

// profilePlan is profile plus the chosen query plan in the slow-op trace
// detail, so a slow query's trace line shows how it was executed.
func (c *Collection) profilePlan(op string, start time.Time, returned int, plan *queryPlan) {
	summary := ""
	if plan != nil {
		summary = plan.planSummary()
	}
	c.profileDetail(op, start, returned, summary)
}

func (c *Collection) profileDetail(op string, start time.Time, returned int, planStr string) {
	if c.store == nil {
		return
	}
	dur := time.Since(start)
	if c.store.profiler != nil {
		c.store.profiler.Record(ProfileEntry{
			Collection: c.name,
			Op:         op,
			Duration:   dur,
			Returned:   returned,
			At:         start,
		})
	}
	reg, tr := c.store.metrics()
	if reg != nil {
		reg.Counter("datastore." + c.name + "." + op).Inc()
		reg.LatencyHistogram("datastore." + op + "_ms").ObserveDuration(dur)
		if returned > 0 {
			reg.Counter("datastore.docs_returned").Add(uint64(returned))
		}
	}
	tr.ObserveFunc("datastore."+op, dur, func() string {
		if planStr != "" {
			return fmt.Sprintf("collection=%s returned=%d plan=%s", c.name, returned, planStr)
		}
		return fmt.Sprintf("collection=%s returned=%d", c.name, returned)
	})
}

// pendingCommit is a staged journal record awaiting its group commit.
// The zero value (memory store, or nothing staged) commits as a no-op.
type pendingCommit struct {
	j *journal
	t *commitTicket
}

// commit waits for the fsync covering the staged record. Called after
// the collection lock is released.
func (p pendingCommit) commit() error {
	if p.j == nil || p.t == nil {
		return nil
	}
	return p.j.commit(p.t)
}

// stageLocked mints and enqueues the journal record for one applied
// mutation. It MUST be called while holding c.mu exclusively, in the
// same critical section that applied the mutation: that is what makes
// journal (and replication-ring) order provably equal to apply order —
// two racing writers cannot apply A→B in memory but journal B→A, so
// crash replay can never resurrect a lost update. The returned
// pendingCommit is committed after c.mu is released; callers batching
// several records need only commit the last one (batches drain FIFO, so
// its fsync covers all earlier records, and the journal's sticky error
// fails every later record once an earlier one fails).
func (c *Collection) stageLocked(op journalOp, id string, doc document.D) pendingCommit {
	if c.store == nil {
		return pendingCommit{}
	}
	if j := c.store.journal.Load(); j != nil {
		return pendingCommit{j: j, t: j.stageWrite(c.name, op, id, doc)}
	}
	// Memory store: feed the in-memory replication ring instead (no-op
	// unless EnableReplication was called). record mints the generation
	// under its own leaf mutex while we hold c.mu, so ring order matches
	// apply order too.
	c.store.repl.record(c.name, op, id, doc)
	return pendingCommit{}
}
