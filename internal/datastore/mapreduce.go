package datastore

import (
	"sort"

	"matproj/internal/document"
)

// Built-in MapReduce, modelled on MongoDB's: the paper (§IV-C2) notes that
// "MongoDB's built-in MapReduce functionality is severely limited by
// implementation within a single-threaded Javascript engine". We
// reproduce that limitation faithfully: this engine runs strictly
// single-threaded and pays a serialization round trip per document,
// mirroring the BSON→JS value conversion that dominates Mongo's MR cost.
// The parallel alternative lives in internal/mapreduce (the "Hadoop" of
// the §IV-B2 comparison).

// MapFunc emits zero or more key/value pairs for a document.
type MapFunc func(doc document.D, emit func(key string, value any))

// ReduceFunc folds the values emitted for one key into a single value.
// It may be called repeatedly on partial results (re-reduce), so it must
// be associative over its output type.
type ReduceFunc func(key string, values []any) any

// MapReduce runs the built-in single-threaded engine over documents
// matching filter and returns one document per key:
// {"_id": key, "value": reduced}. Results are sorted by key.
func (c *Collection) MapReduce(filter document.D, mapper MapFunc, reducer ReduceFunc) ([]document.D, error) {
	docs, err := c.FindAll(filter, nil)
	if err != nil {
		return nil, err
	}
	groups := make(map[string][]any)
	var keys []string
	for _, d := range docs {
		// The serialization round trip is the deliberate single-threaded
		// JS-engine tax (see package comment above).
		b, err := d.ToJSON()
		if err != nil {
			return nil, err
		}
		jsDoc, err := document.FromJSON(b)
		if err != nil {
			return nil, err
		}
		mapper(jsDoc, func(key string, value any) {
			if _, seen := groups[key]; !seen {
				keys = append(keys, key)
			}
			groups[key] = append(groups[key], document.Normalize(value))
		})
	}
	sort.Strings(keys)
	out := make([]document.D, 0, len(keys))
	for _, k := range keys {
		vals := groups[k]
		var v any
		if len(vals) == 1 {
			v = vals[0]
		} else {
			v = document.Normalize(reducer(k, vals))
		}
		out = append(out, document.D{"_id": k, "value": v})
	}
	return out, nil
}

// MapReduceInto runs MapReduce and replaces the target collection's
// contents with the results, mirroring MongoDB's {out: <collection>}
// option. This is how the materials collection is rebuilt from tasks in
// the builder.
func (c *Collection) MapReduceInto(filter document.D, mapper MapFunc, reducer ReduceFunc, target *Collection) (int, error) {
	res, err := c.MapReduce(filter, mapper, reducer)
	if err != nil {
		return 0, err
	}
	if _, err := target.Remove(document.D{}); err != nil {
		return 0, err
	}
	for _, d := range res {
		if _, err := target.Insert(d); err != nil {
			return 0, err
		}
	}
	return len(res), nil
}
