package datastore

import (
	"sort"
	"strings"
	"sync"

	"matproj/internal/document"
)

// orderedIndex is a sorted compound secondary index. Each document
// contributes one key per combination of its component values (arrays
// are multikey: every element plus the whole array, so both element
// equality and whole-array comparisons hit the index; a missing path
// indexes as null, matching both {path: null} filters and sort order,
// where missing sorts with null). Keys are order-preserving encodings
// (keyenc.go), so the sorted key list is the index order and a range
// scan is a contiguous slice of it.
//
// The sorted key list is rebuilt lazily: mutations (under the
// collection's exclusive lock) just mark it dirty; the first range scan
// afterwards re-sorts under sortMu. sortMu is a leaf mutex taken only
// by readers holding the collection's shared lock — writers never race
// the rebuild because they hold the exclusive lock.
type orderedIndex struct {
	name  string
	paths []string
	// entries maps an encoded composite key to the ids holding it.
	entries map[string]*oBucket
	// nids counts id entries across all buckets (for cost estimates).
	nids int
	// multikey is set once any document contributes more than one key
	// (i.e. an array appeared on a component path). A multikey index
	// can emit a document at several positions, so it can accelerate
	// lookups but never satisfy a sort. Sticky: never unset.
	multikey bool

	sortMu sync.Mutex
	sorted []string
	dirty  bool
}

type oBucket struct {
	ids map[string]struct{}
}

// orderedIndexName is the canonical name for an ordered index over the
// given component paths.
func orderedIndexName(paths []string) string {
	return strings.Join(paths, ",")
}

func newOrderedIndex(paths []string) *orderedIndex {
	cp := make([]string, len(paths))
	copy(cp, paths)
	return &orderedIndex{
		name:    orderedIndexName(cp),
		paths:   cp,
		entries: make(map[string]*oBucket),
	}
}

// keysFor returns the (deduplicated) composite keys a document
// contributes, and whether it contributed in a multikey way.
func (ox *orderedIndex) keysFor(d document.D) ([]string, bool) {
	multi := false
	parts := make([][]string, len(ox.paths))
	for i, p := range ox.paths {
		v, ok := d.Get(p)
		if !ok {
			parts[i] = []string{encodeKeyString(nil)}
			continue
		}
		if arr, isArr := v.([]any); isArr {
			multi = true
			alts := make([]string, 0, len(arr)+1)
			for _, el := range arr {
				alts = append(alts, encodeKeyString(el))
			}
			alts = append(alts, encodeKeyString(arr))
			parts[i] = dedupeSortedStrings(alts)
			continue
		}
		parts[i] = []string{encodeKeyString(v)}
	}
	keys := []string{""}
	for _, alts := range parts {
		if len(alts) == 1 {
			for j := range keys {
				keys[j] += alts[0]
			}
			continue
		}
		next := make([]string, 0, len(keys)*len(alts))
		for _, k := range keys {
			for _, a := range alts {
				next = append(next, k+a)
			}
		}
		keys = next
	}
	if len(keys) > 1 {
		keys = dedupeSortedStrings(keys)
	}
	return keys, multi
}

func dedupeSortedStrings(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	for i, s := range in {
		if i > 0 && s == in[i-1] {
			continue
		}
		out = append(out, s)
	}
	return out
}

// add indexes a document. Caller holds the collection lock exclusively.
func (ox *orderedIndex) add(id string, d document.D) {
	keys, multi := ox.keysFor(d)
	if multi {
		ox.multikey = true
	}
	for _, k := range keys {
		b, ok := ox.entries[k]
		if !ok {
			b = &oBucket{ids: make(map[string]struct{})}
			ox.entries[k] = b
			ox.dirty = true
		}
		if _, dup := b.ids[id]; !dup {
			b.ids[id] = struct{}{}
			ox.nids++
		}
	}
}

// remove unindexes a document. Caller holds the collection lock
// exclusively. The multikey flag stays set: sort-satisfaction must hold
// for the index's whole history, not just its current contents.
func (ox *orderedIndex) remove(id string, d document.D) {
	keys, _ := ox.keysFor(d)
	for _, k := range keys {
		b, ok := ox.entries[k]
		if !ok {
			continue
		}
		if _, had := b.ids[id]; !had {
			continue
		}
		delete(b.ids, id)
		ox.nids--
		if len(b.ids) == 0 {
			delete(ox.entries, k)
			ox.dirty = true
		}
	}
}

// sortedKeys returns the encoded keys in byte (= document.Compare)
// order, rebuilding lazily after mutations. Callers hold the
// collection's read lock; concurrent readers serialize on sortMu.
// Callers must not mutate the returned slice.
func (ox *orderedIndex) sortedKeys() []string {
	ox.sortMu.Lock()
	defer ox.sortMu.Unlock()
	if ox.dirty {
		keys := make([]string, 0, len(ox.entries))
		for k := range ox.entries {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ox.sorted = keys
		ox.dirty = false
	}
	return ox.sorted
}

// keyRange locates the half-open position range [lo, hi) of keys
// between the encoded bounds. hiPrefix, when non-empty, extends the
// range to also include keys carrying that byte prefix (an inclusive
// upper bound on a component: the component's encoding is a prefix of
// every key that continues past it).
func (ox *orderedIndex) keyRange(keys []string, lo, hi, hiPrefix string) (int, int) {
	start := sort.SearchStrings(keys, lo)
	var end int
	if hiPrefix != "" {
		// First key past the inclusive-prefix region: the prefix with a
		// terminator-sized bump covers every continuation.
		end = sort.SearchStrings(keys, hiPrefix+string(byte(keyTagEnd)))
	} else {
		end = sort.SearchStrings(keys, hi)
	}
	if end < start {
		end = start
	}
	return start, end
}

// EnsureOrderedIndex creates (and backfills) a sorted compound index
// over the given dotted paths. Creating an index that already exists is
// a no-op. The definition is journaled, so durable stores rebuild it on
// replay and replicas receive it through the log.
func (c *Collection) EnsureOrderedIndex(paths ...string) {
	if len(paths) == 0 {
		return
	}
	for _, p := range paths {
		if p == "" {
			return
		}
	}
	var pc pendingCommit
	c.mu.Lock()
	if c.ensureOrderedLocked(paths) {
		pc = c.stageLocked(journalIndex, orderedIndexName(paths), orderedIndexDefDoc(paths))
	}
	c.mu.Unlock()
	_ = pc.commit()
}

// ensureOrderedLocked creates the index without journaling (shared by
// EnsureOrderedIndex and journal/replication replay). Returns whether a
// new index was created.
func (c *Collection) ensureOrderedLocked(paths []string) bool {
	if c.ordered == nil {
		c.ordered = make(map[string]*orderedIndex)
	}
	name := orderedIndexName(paths)
	if _, ok := c.ordered[name]; ok {
		return false
	}
	ox := newOrderedIndex(paths)
	for id, d := range c.docs {
		ox.add(id, d)
	}
	c.ordered[name] = ox
	// Index creation changes query plans (and $explain output), so it
	// invalidates generation-keyed result caches like any write.
	c.bumpGenLocked()
	return true
}

// DropOrderedIndex removes a sorted index by its canonical name
// (comma-joined paths).
func (c *Collection) DropOrderedIndex(name string) {
	var pc pendingCommit
	c.mu.Lock()
	if _, had := c.ordered[name]; had {
		delete(c.ordered, name)
		c.bumpGenLocked()
		pc = c.stageLocked(journalIndexDrop, name, document.D{"ordered": true, "name": name})
	}
	c.mu.Unlock()
	_ = pc.commit()
}

// OrderedIndexes returns the canonical names of the collection's sorted
// indexes, sorted.
func (c *Collection) OrderedIndexes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.ordered))
	for n := range c.ordered {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// orderedIndexDefDoc renders an ordered-index definition as a journal
// payload document.
func orderedIndexDefDoc(paths []string) document.D {
	ps := make([]any, len(paths))
	for i, p := range paths {
		ps[i] = p
	}
	return document.D{"ordered": true, "paths": ps}
}

// hashIndexDefDoc renders a hash-index definition as a journal payload.
func hashIndexDefDoc(path string) document.D {
	return document.D{"path": path}
}
